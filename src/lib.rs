#![warn(missing_docs)]
//! Meta-crate for the Flick reproduction; see the member crates.
pub use flick as core;

