//! Differential proof that the decoded-instruction fast path is a pure
//! host-side optimization: a machine with the fast path disabled must
//! produce **bit-identical** results — final simulated clock, every
//! stats counter, the full trace event stream, exit code and console —
//! for every workload, including chaos runs that stress migration
//! recovery. Only host wall-clock time may differ.

use flick::{Machine, Outcome};
use flick_isa::{abi, FuncBuilder, MemSize, TargetIsa};
use flick_sim::{FaultPlan, TraceConfig};
use flick_toolchain::{DataDef, ProgramBuilder};

const CHASE_LEN: u64 = 64;
const CHASE_STEPS: i64 = 48;

fn chase_table() -> Vec<u8> {
    let mut bytes = Vec::with_capacity((CHASE_LEN * 8) as usize);
    for i in 0..CHASE_LEN {
        let next = (i.wrapping_mul(17).wrapping_add(5)) % CHASE_LEN;
        bytes.extend_from_slice(&next.to_le_bytes());
    }
    bytes
}

/// Tight host ALU loop — the workload the fast path accelerates most.
fn build_alu_loop(p: &mut ProgramBuilder) {
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    main.li(abi::S1, 5_000);
    main.bind(lp);
    main.addi(abi::A0, abi::A0, 1);
    main.addi(abi::A1, abi::A1, 2);
    main.addi(abi::S1, abi::S1, -1);
    main.bne(abi::S1, abi::ZERO, lp);
    main.call("flick_exit");
    p.func(main.finish());
}

/// Migration round trips: exercises both cores, CR3 switches and the
/// full descriptor protocol.
fn build_null_call(p: &mut ProgramBuilder) {
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::S1, 0);
    for k in 1..=4 {
        main.li(abi::A0, k);
        main.call("nxp_inc");
        main.add(abi::S1, abi::S1, abi::A0);
    }
    main.mv(abi::A0, abi::S1);
    main.call("flick_exit");
    p.func(main.finish());
    let mut inc = FuncBuilder::new("nxp_inc", TargetIsa::Nxp);
    inc.addi(abi::A0, abi::A0, 1);
    inc.ret();
    p.func(inc.finish());
}

/// Pointer chase with a nested NxP→host→NxP ping-pong: loads, stores,
/// both TLBs, both ISAs.
fn build_chase(p: &mut ProgramBuilder) {
    p.data(DataDef::new("table", chase_table()));

    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li_sym(abi::A0, "table");
    main.li(abi::A1, CHASE_STEPS);
    main.call("nxp_chase");
    main.mv(abi::S1, abi::A0);
    main.li(abi::A0, 5);
    main.call("nxp_pingpong");
    main.add(abi::A0, abi::A0, abi::S1);
    main.call("flick_exit");
    p.func(main.finish());

    let mut chase = FuncBuilder::new("nxp_chase", TargetIsa::Nxp);
    chase.li(abi::T0, 0);
    chase.li(abi::T1, 0);
    chase.mv(abi::T2, abi::A1);
    let top = chase.new_label();
    let done = chase.new_label();
    chase.bind(top);
    chase.beq(abi::T2, abi::ZERO, done);
    chase.slli(abi::T3, abi::T0, 3);
    chase.add(abi::T3, abi::A0, abi::T3);
    chase.ld(abi::T0, abi::T3, 0, MemSize::B8);
    chase.add(abi::T1, abi::T1, abi::T0);
    chase.addi(abi::T2, abi::T2, -1);
    chase.jmp(top);
    chase.bind(done);
    chase.mv(abi::A0, abi::T1);
    chase.ret();
    p.func(chase.finish());

    let mut ping = FuncBuilder::new("nxp_pingpong", TargetIsa::Nxp);
    ping.prologue(16, &[]);
    ping.addi(abi::A0, abi::A0, 1);
    ping.call("host_leaf");
    ping.addi(abi::A0, abi::A0, 7);
    ping.epilogue(16, &[]);
    p.func(ping.finish());

    let mut leaf = FuncBuilder::new("host_leaf", TargetIsa::Host);
    leaf.slli(abi::T0, abi::A0, 1);
    leaf.add(abi::A0, abi::A0, abi::T0);
    leaf.ret();
    p.func(leaf.finish());
}

fn run_one(
    fast_path: bool,
    plan: Option<FaultPlan>,
    build: impl FnOnce(&mut ProgramBuilder),
) -> (Machine, Outcome) {
    let mut p = ProgramBuilder::new("fastpath");
    build(&mut p);
    let mut b = Machine::builder()
        .fast_path(fast_path)
        .trace(TraceConfig {
            enabled: true,
            capacity: 1 << 20,
        });
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    let mut m = b.build();
    let pid = m.load_program(&mut p).expect("load");
    let out = m.run(pid).expect("run");
    (m, out)
}

/// Runs the workload with the fast path on and off and asserts every
/// simulated observable is bit-identical.
fn assert_bit_identical(
    label: &str,
    plan: Option<FaultPlan>,
    build: fn(&mut ProgramBuilder),
) {
    let (m_on, out_on) = run_one(true, plan.clone(), build);
    let (m_off, out_off) = run_one(false, plan, build);

    assert_eq!(out_on.exit_code, out_off.exit_code, "{label}: exit code");
    assert_eq!(out_on.console, out_off.console, "{label}: console");
    assert_eq!(out_on.sim_time, out_off.sim_time, "{label}: final clock");

    // Full stats identity: the same set of keys with the same values —
    // a key present on one side but not the other is a failure even at
    // value zero.
    let stats_on: Vec<(&str, u64)> = out_on.stats.iter().collect();
    let stats_off: Vec<(&str, u64)> = out_off.stats.iter().collect();
    assert_eq!(stats_on, stats_off, "{label}: stats");

    // Byte-identical trace streams: same events, timestamps, order.
    assert_eq!(
        m_on.trace().events(),
        m_off.trace().events(),
        "{label}: trace"
    );
    assert_eq!(
        format!("{:?}", m_on.trace().events()),
        format!("{:?}", m_off.trace().events())
    );
}

#[test]
fn fast_path_is_on_by_default() {
    use flick_cpu::CoreConfig;
    assert!(CoreConfig::host().fast_path);
    assert!(CoreConfig::nxp().fast_path);
}

#[test]
fn alu_loop_bit_identical() {
    assert_bit_identical("alu_loop", None, build_alu_loop);
}

#[test]
fn null_call_bit_identical() {
    assert_bit_identical("null_call", None, build_null_call);
}

#[test]
fn chase_bit_identical() {
    assert_bit_identical("chase", None, build_chase);
}

/// Long enough that the scheduler quantum expires many times, at
/// offsets that walk through every position inside the loop's
/// 4-instruction block — preemption mid-block must reschedule exactly
/// like preemption between steps.
fn build_quantum_crossing_loop(p: &mut ProgramBuilder) {
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    main.li(abi::S1, 60_001);
    main.bind(lp);
    main.addi(abi::A0, abi::A0, 1);
    main.addi(abi::A1, abi::A1, 2);
    main.addi(abi::S1, abi::S1, -1);
    main.bne(abi::S1, abi::ZERO, lp);
    main.call("flick_exit");
    p.func(main.finish());
}

#[test]
fn quantum_expiry_mid_block_bit_identical() {
    assert_bit_identical("quantum_crossing", None, build_quantum_crossing_loop);
}

#[test]
fn chaos_seeds_bit_identical() {
    // Chaos plans inject PCIe faults, retransmissions, watchdog fires
    // and spurious wakeups — timeline perturbations that reorder TLB
    // fills and CR3 switches. The fast path must shadow all of it.
    for seed in [1, 2, 7, 100, 104, 0xD1CE] {
        assert_bit_identical(
            &format!("chaos_null_call seed {seed}"),
            Some(FaultPlan::chaos(seed)),
            build_null_call,
        );
        assert_bit_identical(
            &format!("chaos_chase seed {seed}"),
            Some(FaultPlan::chaos(seed)),
            build_chase,
        );
    }
}
