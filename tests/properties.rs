//! Property-based tests over the core data structures and the machine:
//! encodings, memory, paging, descriptors, graphs, and the migration
//! semantics themselves.

use flick::{DescKind, MigrationDescriptor};
use flick_isa::{abi, AluOp, FuncBuilder, Isa, MemSize, Reg, TargetIsa};
use flick_mem::{PhysAddr, PhysMem, VirtAddr};
use flick_paging::{flags, AddressSpace, BumpFrameAlloc, PageSize};
use flick_sim::Xoshiro256;
use flick_toolchain::ProgramBuilder;
use flick_workloads::graph::rmat;
use proptest::prelude::*;

// ---- instruction encodings ------------------------------------------------

/// Strategy for a random straight-line instruction (no control flow —
/// control flow needs labels, tested via the builder elsewhere).
fn arb_inst() -> impl Strategy<Value = flick_isa::Inst> {
    let reg = (0u8..32).prop_map(Reg);
    let size = prop_oneof![
        Just(MemSize::B1),
        Just(MemSize::B2),
        Just(MemSize::B4),
        Just(MemSize::B8)
    ];
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Divu),
        Just(AluOp::Remu),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ];
    prop_oneof![
        (alu.clone(), reg.clone(), reg.clone(), reg.clone()).prop_map(|(op, rd, rs1, rs2)| {
            flick_isa::Inst::Alu { op, rd, rs1, rs2 }
        }),
        (alu, reg.clone(), reg.clone(), any::<i32>()).prop_map(|(op, rd, rs1, imm)| {
            flick_isa::Inst::AluImm { op, rd, rs1, imm }
        }),
        (reg.clone(), any::<i64>()).prop_map(|(rd, imm)| flick_isa::Inst::Li { rd, imm }),
        (reg.clone(), reg.clone(), any::<i32>(), size.clone()).prop_map(
            |(rd, base, off, size)| flick_isa::Inst::Ld { rd, base, off, size }
        ),
        (reg.clone(), reg.clone(), any::<i32>(), size).prop_map(|(rs, base, off, size)| {
            flick_isa::Inst::St { rs, base, off, size }
        }),
        (reg.clone(), reg, any::<i32>()).prop_map(|(rd, rs1, off)| flick_isa::Inst::Jalr {
            rd,
            rs1,
            off
        }),
        any::<u16>().prop_map(|service| flick_isa::Inst::Ecall { service }),
        Just(flick_isa::Inst::Ret),
        Just(flick_isa::Inst::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_instruction_sequence_round_trips_both_isas(
        insts in prop::collection::vec(arb_inst(), 1..40)
    ) {
        for isa in [Isa::X64, Isa::Rv64] {
            let mut f = FuncBuilder::new("f", TargetIsa::Host);
            for i in &insts {
                f.push(*i);
            }
            let enc = isa.encode(&f.finish()).unwrap();
            let mut off = 0usize;
            let mut decoded = Vec::new();
            while off < enc.bytes.len() {
                let (inst, len) = isa.decode(&enc.bytes[off..]).unwrap();
                decoded.push(inst);
                off += len;
            }
            prop_assert_eq!(&decoded, &insts, "{} mis-round-tripped", isa);
        }
    }

    #[test]
    fn physmem_read_back_exact(
        writes in prop::collection::vec((0u64..1 << 20, prop::collection::vec(any::<u8>(), 1..64)), 1..20)
    ) {
        let mut mem = PhysMem::new();
        // Apply writes in order; then the final state of each byte is
        // the last write covering it.
        let mut model = std::collections::HashMap::new();
        for (addr, bytes) in &writes {
            mem.write_bytes(PhysAddr(*addr), bytes);
            for (i, b) in bytes.iter().enumerate() {
                model.insert(addr + i as u64, *b);
            }
        }
        for (addr, byte) in model {
            prop_assert_eq!(mem.read_u8(PhysAddr(addr)), byte);
        }
    }

    #[test]
    fn paging_translates_every_mapped_page(
        pages in prop::collection::btree_set(0u64..512, 1..40),
        offset in 0u64..4096,
    ) {
        let mut mem = PhysMem::new();
        let mut alloc = BumpFrameAlloc::new(PhysAddr(0x100_0000), PhysAddr(0x400_0000));
        let mut asp = AddressSpace::new(&mut mem, &mut alloc);
        for &p in &pages {
            asp.map(
                &mut mem,
                &mut alloc,
                VirtAddr(0x40_0000 + p * 4096),
                PhysAddr(0x80_0000 + p * 4096),
                PageSize::Size4K,
                flags::PRESENT | flags::USER,
            )
            .unwrap();
        }
        for &p in &pages {
            let va = VirtAddr(0x40_0000 + p * 4096 + offset);
            let t = asp.translate(&mem, va).unwrap();
            prop_assert_eq!(t.pa, PhysAddr(0x80_0000 + p * 4096 + offset));
        }
        // And an unmapped neighbour page faults.
        if let Some(unmapped) = (0u64..512).find(|p| !pages.contains(p)) {
            prop_assert!(asp
                .translate(&mem, VirtAddr(0x40_0000 + unmapped * 4096))
                .is_err());
        }
    }

    #[test]
    fn descriptor_wire_format_total(
        target in any::<u64>(),
        ret in any::<u64>(),
        args in any::<[u64; 6]>(),
        pid in any::<u64>(),
        cr3 in any::<u64>(),
        nxp_sp in any::<u64>(),
        kind_tag in 1u64..=4,
    ) {
        let d = MigrationDescriptor {
            kind: DescKind::from_tag(kind_tag).unwrap(),
            target,
            ret,
            args,
            pid,
            cr3,
            nxp_sp,
        };
        prop_assert_eq!(MigrationDescriptor::from_bytes(&d.to_bytes()), Some(d));
    }

    #[test]
    fn rmat_always_valid_csr(v in 2u64..2000, e in 1u64..8000, seed in any::<u64>()) {
        let g = rmat(v, e, seed);
        prop_assert_eq!(g.v, v);
        prop_assert_eq!(g.e(), e);
        prop_assert_eq!(*g.row_ptr.last().unwrap(), e);
        for u in 0..v {
            prop_assert!(g.row_ptr[u as usize] <= g.row_ptr[u as usize + 1]);
        }
        for &w in &g.col {
            prop_assert!((w as u64) < v);
        }
    }

    #[test]
    fn rng_range_always_in_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut rng = Xoshiro256::seeded(seed);
        for _ in 0..100 {
            let x = rng.gen_range(lo, lo + span);
            prop_assert!((lo..lo + span).contains(&x));
        }
    }
}

// ---- machine-level properties ---------------------------------------------

/// Reference semantics of the random cross-ISA pipeline below.
fn reference_chain(stages: &[(bool, u32, u32)], x0: u64) -> u64 {
    stages
        .iter()
        .fold(x0, |x, (_, k, c)| x.wrapping_mul(*k as u64).wrapping_add(*c as u64))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random chains of functions with random ISA placements compute
    /// the same value as native Rust, no matter how many times the
    /// thread crosses the boundary.
    #[test]
    fn random_cross_isa_chain_matches_reference(
        stages in prop::collection::vec((any::<bool>(), 1u32..50, 0u32..1000), 1..6),
        x0 in 0u64..1_000_000,
    ) {
        let mut p = ProgramBuilder::new("chain");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.li(abi::A0, x0 as i64);
        main.call("stage0");
        main.call("flick_exit");
        p.func(main.finish());
        for (i, (on_nxp, k, c)) in stages.iter().enumerate() {
            let target = if *on_nxp { TargetIsa::Nxp } else { TargetIsa::Host };
            let mut f = FuncBuilder::new(format!("stage{i}"), target);
            f.li(abi::T0, *k as i64);
            f.mul(abi::A0, abi::A0, abi::T0);
            f.addi(abi::A0, abi::A0, *c as i32);
            if i + 1 < stages.len() {
                f.prologue(16, &[]);
                f.call(&format!("stage{}", i + 1));
                f.epilogue(16, &[]);
            } else {
                f.ret();
            }
            p.func(f.finish());
        }
        let mut m = flick::Machine::builder()
            .trace(flick_sim::TraceConfig { enabled: false, capacity: 0 })
            .build();
        let pid = m.load_program(&mut p).unwrap();
        let out = m.run(pid).unwrap();
        prop_assert_eq!(out.exit_code, reference_chain(&stages, x0));
    }
}
