//! Randomised property tests over the core data structures and the
//! machine: encodings, memory, paging, descriptors, graphs, and the
//! migration semantics themselves.
//!
//! Cases are generated from the repo's own deterministic [`Xoshiro256`]
//! so every run explores the same inputs — a failure reproduces by
//! rerunning the test, no external shrinker required.

use flick::{DescKind, MigrationDescriptor};
use flick_isa::{abi, AluOp, FuncBuilder, MemSize, Reg, TargetIsa};
use flick_mem::{PhysAddr, PhysMem, VirtAddr};
use flick_paging::{flags, AddressSpace, BumpFrameAlloc, PageSize};
use flick_sim::Xoshiro256;
use flick_toolchain::ProgramBuilder;
use flick_workloads::graph::rmat;

const ALL_ALU: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Divu,
    AluOp::Remu,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

const ALL_SIZES: [MemSize; 4] = [MemSize::B1, MemSize::B2, MemSize::B4, MemSize::B8];

/// One random straight-line instruction (no control flow — control flow
/// needs labels, tested via the builder elsewhere).
fn arb_inst(rng: &mut Xoshiro256) -> flick_isa::Inst {
    let reg = |rng: &mut Xoshiro256| Reg(rng.gen_range(0, 32) as u8);
    let alu = |rng: &mut Xoshiro256| ALL_ALU[rng.gen_range(0, ALL_ALU.len() as u64) as usize];
    let size = |rng: &mut Xoshiro256| ALL_SIZES[rng.gen_range(0, 4) as usize];
    match rng.gen_range(0, 9) {
        0 => flick_isa::Inst::Alu {
            op: alu(rng),
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        1 => flick_isa::Inst::AluImm {
            op: alu(rng),
            rd: reg(rng),
            rs1: reg(rng),
            imm: rng.next_u64() as i32,
        },
        2 => flick_isa::Inst::Li {
            rd: reg(rng),
            imm: rng.next_u64() as i64,
        },
        3 => flick_isa::Inst::Ld {
            rd: reg(rng),
            base: reg(rng),
            off: rng.next_u64() as i32,
            size: size(rng),
        },
        4 => flick_isa::Inst::St {
            rs: reg(rng),
            base: reg(rng),
            off: rng.next_u64() as i32,
            size: size(rng),
        },
        5 => flick_isa::Inst::Jalr {
            rd: reg(rng),
            rs1: reg(rng),
            off: rng.next_u64() as i32,
        },
        6 => flick_isa::Inst::Ecall {
            service: rng.next_u64() as u16,
        },
        7 => flick_isa::Inst::Ret,
        _ => flick_isa::Inst::Nop,
    }
}

#[test]
fn any_instruction_sequence_round_trips_every_registered_isa() {
    let mut rng = Xoshiro256::seeded(0x9cb1);
    for _case in 0..64 {
        let n = rng.gen_range(1, 40) as usize;
        let insts: Vec<_> = (0..n).map(|_| arb_inst(&mut rng)).collect();
        for d in flick_isa::IsaId::all() {
            let isa = d.id;
            let mut f = FuncBuilder::new("f", TargetIsa::Host);
            for i in &insts {
                f.push(*i);
            }
            let enc = isa.encode(&f.finish()).unwrap();
            // decode(encode(func)) == func …
            let mut off = 0usize;
            let mut decoded = Vec::new();
            while off < enc.bytes.len() {
                let (inst, len) = isa.decode(&enc.bytes[off..]).unwrap();
                decoded.push(inst);
                off += len;
            }
            assert_eq!(&decoded, &insts, "{isa} mis-round-tripped");
            // … and encode(decode(bytes)) == bytes: re-encoding the
            // decoded sequence reproduces the wire bytes exactly.
            let mut g = FuncBuilder::new("f", TargetIsa::Host);
            for i in &decoded {
                g.push(*i);
            }
            let re = isa.encode(&g.finish()).unwrap();
            assert_eq!(re.bytes, enc.bytes, "{isa} re-encode diverged");
        }
    }
}

#[test]
fn physmem_read_back_exact() {
    let mut rng = Xoshiro256::seeded(0x9cb2);
    for _case in 0..64 {
        let mut mem = PhysMem::new();
        // Apply writes in order; then the final state of each byte is
        // the last write covering it.
        let mut model = std::collections::HashMap::new();
        let writes = rng.gen_range(1, 20);
        for _ in 0..writes {
            let addr = rng.gen_range(0, 1 << 20);
            let len = rng.gen_range(1, 64) as usize;
            let bytes: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
            mem.write_bytes(PhysAddr(addr), &bytes);
            for (i, b) in bytes.iter().enumerate() {
                model.insert(addr + i as u64, *b);
            }
        }
        for (addr, byte) in model {
            assert_eq!(mem.read_u8(PhysAddr(addr)), byte);
        }
    }
}

#[test]
fn paging_translates_every_mapped_page() {
    let mut rng = Xoshiro256::seeded(0x9cb3);
    for _case in 0..48 {
        let mut pages = std::collections::BTreeSet::new();
        for _ in 0..rng.gen_range(1, 40) {
            pages.insert(rng.gen_range(0, 512));
        }
        let offset = rng.gen_range(0, 4096);
        let mut mem = PhysMem::new();
        let mut alloc = BumpFrameAlloc::new(PhysAddr(0x100_0000), PhysAddr(0x400_0000));
        let mut asp = AddressSpace::new(&mut mem, &mut alloc);
        for &p in &pages {
            asp.map(
                &mut mem,
                &mut alloc,
                VirtAddr(0x40_0000 + p * 4096),
                PhysAddr(0x80_0000 + p * 4096),
                PageSize::Size4K,
                flags::PRESENT | flags::USER,
            )
            .unwrap();
        }
        for &p in &pages {
            let va = VirtAddr(0x40_0000 + p * 4096 + offset);
            let t = asp.translate(&mem, va).unwrap();
            assert_eq!(t.pa, PhysAddr(0x80_0000 + p * 4096 + offset));
        }
        // And an unmapped neighbour page faults.
        if let Some(unmapped) = (0u64..512).find(|p| !pages.contains(p)) {
            assert!(asp
                .translate(&mem, VirtAddr(0x40_0000 + unmapped * 4096))
                .is_err());
        }
    }
}

#[test]
fn descriptor_wire_format_total() {
    let mut rng = Xoshiro256::seeded(0x9cb4);
    for _case in 0..256 {
        let d = MigrationDescriptor {
            kind: DescKind::from_tag(rng.gen_range(1, 5)).unwrap(),
            target: rng.next_u64(),
            ret: rng.next_u64(),
            args: std::array::from_fn(|_| rng.next_u64()),
            pid: rng.next_u64(),
            cr3: rng.next_u64(),
            nxp_sp: rng.next_u64(),
            seq: rng.next_u64(),
            span: rng.next_u64(),
        };
        assert_eq!(MigrationDescriptor::from_bytes(&d.to_bytes()), Some(d));
        assert_eq!(
            MigrationDescriptor::from_bytes_checked(&d.to_bytes()),
            Ok(d)
        );
    }
}

#[test]
fn descriptor_checksum_rejects_any_single_byte_flip() {
    let mut rng = Xoshiro256::seeded(0x9cb5);
    for _case in 0..64 {
        let d = MigrationDescriptor {
            kind: DescKind::from_tag(rng.gen_range(1, 5)).unwrap(),
            target: rng.next_u64(),
            ret: rng.next_u64(),
            args: std::array::from_fn(|_| rng.next_u64()),
            pid: rng.next_u64(),
            cr3: rng.next_u64(),
            nxp_sp: rng.next_u64(),
            seq: rng.next_u64(),
            span: rng.next_u64(),
        };
        let mut bytes = d.to_bytes();
        let idx = rng.gen_range(0, bytes.len() as u64) as usize;
        let mut flip = rng.next_u64() as u8;
        if flip == 0 {
            flip = 1;
        }
        bytes[idx] ^= flip;
        assert!(
            MigrationDescriptor::from_bytes_checked(&bytes).is_err(),
            "flip at byte {idx} went undetected"
        );
    }
}

#[test]
fn rmat_always_valid_csr() {
    let mut rng = Xoshiro256::seeded(0x9cb6);
    for _case in 0..24 {
        let v = rng.gen_range(2, 2000);
        let e = rng.gen_range(1, 8000);
        let seed = rng.next_u64();
        let g = rmat(v, e, seed);
        assert_eq!(g.v, v);
        assert_eq!(g.e(), e);
        assert_eq!(*g.row_ptr.last().unwrap(), e);
        for u in 0..v {
            assert!(g.row_ptr[u as usize] <= g.row_ptr[u as usize + 1]);
        }
        for &w in &g.col {
            assert!((w as u64) < v);
        }
    }
}

#[test]
fn rng_range_always_in_bounds() {
    let mut meta = Xoshiro256::seeded(0x9cb7);
    for _case in 0..64 {
        let seed = meta.next_u64();
        let lo = meta.gen_range(0, 1000);
        let span = meta.gen_range(1, 1000);
        let mut rng = Xoshiro256::seeded(seed);
        for _ in 0..100 {
            let x = rng.gen_range(lo, lo + span);
            assert!((lo..lo + span).contains(&x));
        }
    }
}

// ---- machine-level properties ---------------------------------------------

/// Reference semantics of the random cross-ISA pipeline below — the
/// placement (which ISA runs each stage) must never change the value.
fn reference_chain(stages: &[(TargetIsa, u32, u32)], x0: u64) -> u64 {
    stages
        .iter()
        .fold(x0, |x, (_, k, c)| x.wrapping_mul(*k as u64).wrapping_add(*c as u64))
}

/// Random chains of functions with random placements across all three
/// ISAs compute the same value as native Rust, no matter how many times
/// the thread crosses which boundary. Adjacent stages of different
/// accelerator ISAs exercise the nested cross-accelerator bounce.
#[test]
fn random_cross_isa_chain_matches_reference() {
    const TARGETS: [TargetIsa; 3] = [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64];
    let mut rng = Xoshiro256::seeded(0x9cb8);
    for _case in 0..12 {
        let n = rng.gen_range(1, 6) as usize;
        let stages: Vec<(TargetIsa, u32, u32)> = (0..n)
            .map(|_| {
                (
                    TARGETS[rng.gen_range(0, 3) as usize],
                    rng.gen_range(1, 50) as u32,
                    rng.gen_range(0, 1000) as u32,
                )
            })
            .collect();
        let x0 = rng.gen_range(0, 1_000_000);

        let mut p = ProgramBuilder::new("chain");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.li(abi::A0, x0 as i64);
        main.call("stage0");
        main.call("flick_exit");
        p.func(main.finish());
        for (i, (target, k, c)) in stages.iter().enumerate() {
            let mut f = FuncBuilder::new(format!("stage{i}"), *target);
            f.li(abi::T0, *k as i64);
            f.mul(abi::A0, abi::A0, abi::T0);
            f.addi(abi::A0, abi::A0, *c as i32);
            if i + 1 < stages.len() {
                f.prologue(16, &[]);
                f.call(&format!("stage{}", i + 1));
                f.epilogue(16, &[]);
            } else {
                f.ret();
            }
            p.func(f.finish());
        }
        let mut m = flick::Machine::builder()
            .topology(flick::Topology {
                host_cores: 1,
                nxp_cores: 2,
            })
            .nxp_isas(vec![flick_isa::IsaId::Rv64, flick_isa::IsaId::Arm64])
            .trace(flick_sim::TraceConfig {
                enabled: false,
                capacity: 0,
            })
            .build();
        let pid = m.load_program(&mut p).unwrap();
        let out = m.run(pid).unwrap();
        assert_eq!(
            out.exit_code,
            reference_chain(&stages, x0),
            "stages {stages:?} x0 {x0}"
        );
    }
}
