//! Differential testing: a random FIR program, encoded for the host
//! ISA and for the NxP ISA, executed on the corresponding cores, must
//! leave the architectural state that a reference Rust interpretation
//! predicts — on both. This pins the two encoders, two decoders and
//! the interpreter to one shared semantics.

use flick_cpu::{Core, CoreConfig, MemEnv, StopReason};
use flick_isa::inst::AluOp;
use flick_isa::{abi, compile_expr, Expr, FuncBuilder, Inst, Isa, Reg, TargetIsa};
use flick_mem::{PhysAddr, PhysMem, VirtAddr};
use flick_paging::{flags, AddressSpace, BumpFrameAlloc};
use proptest::prelude::*;

const ALL_ALU: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Divu,
    AluOp::Remu,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

/// One straight-line step over registers r10..r18.
#[derive(Clone, Debug)]
enum Step {
    Alu(AluOp, u8, u8, u8),
    AluImm(AluOp, u8, u8, i32),
    Li(u8, i64),
}

fn arb_step() -> impl Strategy<Value = Step> {
    let reg = 10u8..18;
    let op = prop::sample::select(ALL_ALU.to_vec());
    prop_oneof![
        (op.clone(), reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(op, a, b, c)| Step::Alu(op, a, b, c)),
        (op, reg.clone(), reg.clone(), any::<i32>())
            .prop_map(|(op, a, b, i)| Step::AluImm(op, a, b, i)),
        (reg, any::<i64>()).prop_map(|(a, v)| Step::Li(a, v)),
    ]
}

/// Reference semantics in plain Rust.
fn reference(steps: &[Step], init: &[u64; 8]) -> [u64; 8] {
    let mut r = *init;
    let get = |r: &[u64; 8], i: u8| r[(i - 10) as usize];
    for s in steps {
        match *s {
            Step::Alu(op, d, a, b) => {
                let v = op.eval(get(&r, a), get(&r, b));
                r[(d - 10) as usize] = v;
            }
            Step::AluImm(op, d, a, imm) => {
                let v = op.eval(get(&r, a), imm as i64 as u64);
                r[(d - 10) as usize] = v;
            }
            Step::Li(d, v) => r[(d - 10) as usize] = v as u64,
        }
    }
    r
}

/// Executes the steps on a real core of the given target.
fn execute_on(target: TargetIsa, steps: &[Step], init: &[u64; 8]) -> [u64; 8] {
    let mut mem = PhysMem::new();
    let mut alloc = BumpFrameAlloc::new(PhysAddr(0x100_0000), PhysAddr(0x300_0000));
    let mut asp = AddressSpace::new(&mut mem, &mut alloc);
    asp.map_range(
        &mut mem,
        &mut alloc,
        VirtAddr(0),
        PhysAddr(0),
        8 << 20,
        flags::PRESENT | flags::WRITABLE | flags::USER,
    )
    .unwrap();
    if target == TargetIsa::Nxp {
        asp.protect(&mut mem, VirtAddr(0x40_0000), 0x40_0000, flags::NX, 0)
            .unwrap();
    }
    let mut f = FuncBuilder::new("t", target);
    for s in steps {
        match *s {
            Step::Alu(op, d, a, b) => {
                f.push(Inst::Alu {
                    op,
                    rd: Reg(d),
                    rs1: Reg(a),
                    rs2: Reg(b),
                });
            }
            Step::AluImm(op, d, a, imm) => {
                f.push(Inst::AluImm {
                    op,
                    rd: Reg(d),
                    rs1: Reg(a),
                    imm,
                });
            }
            Step::Li(d, v) => {
                f.li(Reg(d), v);
            }
        }
    }
    f.halt();
    let isa = match target {
        TargetIsa::Host => Isa::X64,
        TargetIsa::Nxp => Isa::Rv64,
    };
    let enc = isa.encode(&f.finish()).unwrap();
    mem.write_bytes(PhysAddr(0x40_0000), &enc.bytes);
    let cfg = match target {
        TargetIsa::Host => CoreConfig::host(),
        TargetIsa::Nxp => CoreConfig::nxp(),
    };
    let mut core = Core::new(cfg);
    core.set_cr3(asp.cr3());
    core.set_pc(VirtAddr(0x40_0000));
    for (i, v) in init.iter().enumerate() {
        core.set_reg(Reg(10 + i as u8), *v);
    }
    let env = MemEnv::paper_default();
    assert_eq!(core.run(&mut mem, &env, 100_000), StopReason::Halt);
    let mut out = [0u64; 8];
    for (i, o) in out.iter_mut().enumerate() {
        *o = core.reg(Reg(10 + i as u8));
    }
    out
}

/// Random expression trees of bounded depth.
fn arb_expr(depth: u32) -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Expr::Const),
        (0u8..6).prop_map(Expr::Arg),
    ];
    leaf.prop_recursive(depth, 64, 2, |inner| {
        (
            prop::sample::select(ALL_ALU.to_vec()),
            inner.clone(),
            inner,
        )
            .prop_map(|(op, a, b)| a.bin(op, b))
    })
}

/// Runs a compiled expression on a real core; returns a0.
fn run_expr(target: TargetIsa, e: &Expr, args: &[u64; 6]) -> u64 {
    let mut mem = PhysMem::new();
    let mut alloc = BumpFrameAlloc::new(PhysAddr(0x100_0000), PhysAddr(0x300_0000));
    let mut asp = AddressSpace::new(&mut mem, &mut alloc);
    asp.map_range(
        &mut mem,
        &mut alloc,
        VirtAddr(0),
        PhysAddr(0),
        8 << 20,
        flags::PRESENT | flags::WRITABLE | flags::USER,
    )
    .unwrap();
    if target == TargetIsa::Nxp {
        asp.protect(&mut mem, VirtAddr(0x40_0000), 0x40_0000, flags::NX, 0)
            .unwrap();
    }
    let mut f = FuncBuilder::new("e", target);
    compile_expr(&mut f, e).unwrap();
    f.halt();
    let isa = match target {
        TargetIsa::Host => Isa::X64,
        TargetIsa::Nxp => Isa::Rv64,
    };
    let enc = isa.encode(&f.finish()).unwrap();
    mem.write_bytes(PhysAddr(0x40_0000), &enc.bytes);
    let mut core = Core::new(match target {
        TargetIsa::Host => CoreConfig::host(),
        TargetIsa::Nxp => CoreConfig::nxp(),
    });
    core.set_cr3(asp.cr3());
    core.set_pc(VirtAddr(0x40_0000));
    core.set_reg(abi::SP, 0x70_0000);
    for (i, v) in args.iter().enumerate() {
        core.set_reg(Reg(10 + i as u8), *v);
    }
    let env = MemEnv::paper_default();
    assert_eq!(core.run(&mut mem, &env, 1_000_000), StopReason::Halt);
    core.reg(abi::A0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn compiled_expressions_agree_with_eval(
        e in arb_expr(6),
        args in any::<[u64; 6]>(),
    ) {
        let expect = e.eval(&args);
        prop_assert_eq!(run_expr(TargetIsa::Host, &e, &args), expect, "host: {}", e);
        prop_assert_eq!(run_expr(TargetIsa::Nxp, &e, &args), expect, "nxp: {}", e);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn both_isas_agree_with_reference(
        steps in prop::collection::vec(arb_step(), 1..60),
        init in any::<[u64; 8]>(),
    ) {
        let expect = reference(&steps, &init);
        let host = execute_on(TargetIsa::Host, &steps, &init);
        prop_assert_eq!(host, expect, "host ISA diverged from reference");
        let nxp = execute_on(TargetIsa::Nxp, &steps, &init);
        prop_assert_eq!(nxp, expect, "nxp ISA diverged from reference");
    }
}
