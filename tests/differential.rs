//! Differential testing: a random FIR program, encoded for the host
//! ISA and for the NxP ISA, executed on the corresponding cores, must
//! leave the architectural state that a reference Rust interpretation
//! predicts — on both. This pins the two encoders, two decoders and
//! the interpreter to one shared semantics.
//!
//! Cases come from the repo's deterministic [`Xoshiro256`], so every
//! run replays the same programs.

use flick_cpu::{Core, CoreConfig, MemEnv, StopReason};
use flick_isa::inst::AluOp;
use flick_isa::{abi, compile_expr, Expr, FuncBuilder, Inst, Reg, TargetIsa};
use flick_mem::{PhysAddr, PhysMem, VirtAddr};
use flick_paging::{flags, AddressSpace, BumpFrameAlloc};
use flick_sim::Xoshiro256;

const ALL_ALU: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Divu,
    AluOp::Remu,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

/// One straight-line step over registers r10..r18.
#[derive(Clone, Debug)]
enum Step {
    Alu(AluOp, u8, u8, u8),
    AluImm(AluOp, u8, u8, i32),
    Li(u8, i64),
}

fn arb_step(rng: &mut Xoshiro256) -> Step {
    let reg = |rng: &mut Xoshiro256| rng.gen_range(10, 18) as u8;
    let op = ALL_ALU[rng.gen_range(0, ALL_ALU.len() as u64) as usize];
    match rng.gen_range(0, 3) {
        0 => Step::Alu(op, reg(rng), reg(rng), reg(rng)),
        1 => Step::AluImm(op, reg(rng), reg(rng), rng.next_u64() as i32),
        _ => Step::Li(reg(rng), rng.next_u64() as i64),
    }
}

/// Reference semantics in plain Rust.
fn reference(steps: &[Step], init: &[u64; 8]) -> [u64; 8] {
    let mut r = *init;
    let get = |r: &[u64; 8], i: u8| r[(i - 10) as usize];
    for s in steps {
        match *s {
            Step::Alu(op, d, a, b) => {
                let v = op.eval(get(&r, a), get(&r, b));
                r[(d - 10) as usize] = v;
            }
            Step::AluImm(op, d, a, imm) => {
                let v = op.eval(get(&r, a), imm as i64 as u64);
                r[(d - 10) as usize] = v;
            }
            Step::Li(d, v) => r[(d - 10) as usize] = v as u64,
        }
    }
    r
}

/// Executes the steps on a real core of the given target.
fn execute_on(target: TargetIsa, steps: &[Step], init: &[u64; 8]) -> [u64; 8] {
    let mut mem = PhysMem::new();
    let mut alloc = BumpFrameAlloc::new(PhysAddr(0x100_0000), PhysAddr(0x300_0000));
    let mut asp = AddressSpace::new(&mut mem, &mut alloc);
    asp.map_range(
        &mut mem,
        &mut alloc,
        VirtAddr(0),
        PhysAddr(0),
        8 << 20,
        flags::PRESENT | flags::WRITABLE | flags::USER,
    )
    .unwrap();
    if target == TargetIsa::Nxp {
        asp.protect(&mut mem, VirtAddr(0x40_0000), 0x40_0000, flags::NX, 0)
            .unwrap();
    }
    let mut f = FuncBuilder::new("t", target);
    for s in steps {
        match *s {
            Step::Alu(op, d, a, b) => {
                f.push(Inst::Alu {
                    op,
                    rd: Reg(d),
                    rs1: Reg(a),
                    rs2: Reg(b),
                });
            }
            Step::AluImm(op, d, a, imm) => {
                f.push(Inst::AluImm {
                    op,
                    rd: Reg(d),
                    rs1: Reg(a),
                    imm,
                });
            }
            Step::Li(d, v) => {
                f.li(Reg(d), v);
            }
        }
    }
    f.halt();
    let isa = target.isa();
    let enc = isa.encode(&f.finish()).unwrap();
    mem.write_bytes(PhysAddr(0x40_0000), &enc.bytes);
    let cfg = if target == TargetIsa::Host {
        CoreConfig::host()
    } else {
        CoreConfig::accel(target)
    };
    let mut core = Core::new(cfg);
    core.set_cr3(asp.cr3());
    core.set_pc(VirtAddr(0x40_0000));
    for (i, v) in init.iter().enumerate() {
        core.set_reg(Reg(10 + i as u8), *v);
    }
    let env = MemEnv::paper_default();
    assert_eq!(core.run(&mut mem, &env, 100_000), StopReason::Halt);
    let mut out = [0u64; 8];
    for (i, o) in out.iter_mut().enumerate() {
        *o = core.reg(Reg(10 + i as u8));
    }
    out
}

/// Random expression trees of bounded depth.
fn arb_expr(rng: &mut Xoshiro256, depth: u32) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        if rng.gen_bool(0.5) {
            Expr::Const(rng.next_u64() as i64)
        } else {
            Expr::Arg(rng.gen_range(0, 6) as u8)
        }
    } else {
        let op = ALL_ALU[rng.gen_range(0, ALL_ALU.len() as u64) as usize];
        let a = arb_expr(rng, depth - 1);
        let b = arb_expr(rng, depth - 1);
        a.bin(op, b)
    }
}

/// Runs a compiled expression on a real core; returns a0.
fn run_expr(target: TargetIsa, e: &Expr, args: &[u64; 6]) -> u64 {
    let mut mem = PhysMem::new();
    let mut alloc = BumpFrameAlloc::new(PhysAddr(0x100_0000), PhysAddr(0x300_0000));
    let mut asp = AddressSpace::new(&mut mem, &mut alloc);
    asp.map_range(
        &mut mem,
        &mut alloc,
        VirtAddr(0),
        PhysAddr(0),
        8 << 20,
        flags::PRESENT | flags::WRITABLE | flags::USER,
    )
    .unwrap();
    if target == TargetIsa::Nxp {
        asp.protect(&mut mem, VirtAddr(0x40_0000), 0x40_0000, flags::NX, 0)
            .unwrap();
    }
    let mut f = FuncBuilder::new("e", target);
    compile_expr(&mut f, e).unwrap();
    f.halt();
    let isa = target.isa();
    let enc = isa.encode(&f.finish()).unwrap();
    mem.write_bytes(PhysAddr(0x40_0000), &enc.bytes);
    let mut core = Core::new(if target == TargetIsa::Host {
        CoreConfig::host()
    } else {
        CoreConfig::accel(target)
    });
    core.set_cr3(asp.cr3());
    core.set_pc(VirtAddr(0x40_0000));
    core.set_reg(abi::SP, 0x70_0000);
    for (i, v) in args.iter().enumerate() {
        core.set_reg(Reg(10 + i as u8), *v);
    }
    let env = MemEnv::paper_default();
    assert_eq!(core.run(&mut mem, &env, 1_000_000), StopReason::Halt);
    core.reg(abi::A0)
}

#[test]
fn compiled_expressions_agree_with_eval() {
    let mut rng = Xoshiro256::seeded(0xd1f1);
    for _case in 0..32 {
        let e = arb_expr(&mut rng, 6);
        let args: [u64; 6] = std::array::from_fn(|_| rng.next_u64());
        let expect = e.eval(&args);
        assert_eq!(run_expr(TargetIsa::Host, &e, &args), expect, "host: {e}");
        assert_eq!(run_expr(TargetIsa::Nxp, &e, &args), expect, "nxp: {e}");
    }
}

#[test]
fn both_isas_agree_with_reference() {
    let mut rng = Xoshiro256::seeded(0xd1f2);
    for _case in 0..48 {
        let n = rng.gen_range(1, 60) as usize;
        let steps: Vec<_> = (0..n).map(|_| arb_step(&mut rng)).collect();
        let init: [u64; 8] = std::array::from_fn(|_| rng.next_u64());
        let expect = reference(&steps, &init);
        let host = execute_on(TargetIsa::Host, &steps, &init);
        assert_eq!(host, expect, "host ISA diverged from reference");
        let nxp = execute_on(TargetIsa::Nxp, &steps, &init);
        assert_eq!(nxp, expect, "nxp ISA diverged from reference");
    }
}
