//! N-way heterogeneous fleet tests: a third (arm64-like) ISA joins the
//! classic x64 host + rv64 NxP pair, and threads migrate between every
//! ordered ISA pair — host→rv64, host→arm64, and the cross-accelerator
//! bounces rv64→arm64 / arm64→rv64 that park one frame while another
//! runs on a different core kind.

use flick::{Machine, Topology};
use flick_isa::{abi, FuncBuilder, IsaId, TargetIsa};
use flick_sim::{Event, TraceConfig};
use flick_toolchain::ProgramBuilder;

/// A 1×2 fleet with one rv64 and one arm64 NxP.
fn hetero_machine() -> Machine {
    Machine::builder()
        .topology(Topology {
            host_cores: 1,
            nxp_cores: 2,
        })
        .nxp_isas(vec![IsaId::Rv64, IsaId::Arm64])
        .trace(TraceConfig {
            enabled: true,
            capacity: 1 << 16,
        })
        .build()
}

/// The four-leg program: plain calls onto each accelerator ISA plus a
/// nested cross-accelerator call in each direction.
fn build_pairs_program(p: &mut ProgramBuilder) {
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::S1, 0);
    // x64 → rv64 → x64.
    main.li(abi::A0, 10);
    main.call("rv_compute");
    main.add(abi::S1, abi::S1, abi::A0);
    // x64 → arm64 → x64.
    main.li(abi::A0, 20);
    main.call("arm_compute");
    main.add(abi::S1, abi::S1, abi::A0);
    // rv64 → arm64 (nested bounce through the host).
    main.li(abi::A0, 3);
    main.call("rv_calls_arm");
    main.add(abi::S1, abi::S1, abi::A0);
    // arm64 → rv64 (nested bounce, other direction).
    main.li(abi::A0, 4);
    main.call("arm_calls_rv");
    main.add(abi::S1, abi::S1, abi::A0);
    main.mv(abi::A0, abi::S1);
    main.call("flick_exit");
    p.func(main.finish());

    let mut f = FuncBuilder::new("rv_compute", TargetIsa::Nxp);
    f.slli(abi::T0, abi::A0, 1);
    f.addi(abi::A0, abi::T0, 1); // 2x + 1
    f.ret();
    p.func(f.finish());

    let mut f = FuncBuilder::new("arm_compute", TargetIsa::Arm64);
    f.addi(abi::A0, abi::A0, 5); // x + 5
    f.ret();
    p.func(f.finish());

    let mut f = FuncBuilder::new("rv_calls_arm", TargetIsa::Nxp);
    f.prologue(16, &[]);
    f.call("arm_leaf");
    f.addi(abi::A0, abi::A0, 100);
    f.epilogue(16, &[]);
    p.func(f.finish());

    let mut f = FuncBuilder::new("arm_leaf", TargetIsa::Arm64);
    f.li(abi::T0, 3);
    f.mul(abi::A0, abi::A0, abi::T0); // 3x
    f.ret();
    p.func(f.finish());

    let mut f = FuncBuilder::new("arm_calls_rv", TargetIsa::Arm64);
    f.prologue(16, &[]);
    f.call("rv_leaf");
    f.addi(abi::A0, abi::A0, 200);
    f.epilogue(16, &[]);
    p.func(f.finish());

    let mut f = FuncBuilder::new("rv_leaf", TargetIsa::Nxp);
    f.addi(abi::A0, abi::A0, 7); // x + 7
    f.ret();
    p.func(f.finish());
}

#[test]
fn three_isa_fleet_migrates_between_every_ordered_pair() {
    let mut p = ProgramBuilder::new("pairs");
    build_pairs_program(&mut p);
    let mut m = hetero_machine();
    let pid = m.load_program(&mut p).unwrap();
    let out = m.run(pid).unwrap();
    // rv_compute(10)=21, arm_compute(20)=25,
    // rv_calls_arm(3)=3*3+100=109, arm_calls_rv(4)=4+7+200=211.
    assert_eq!(out.exit_code, 21 + 25 + 109 + 211);
    // Four host→accelerator calls plus one per nested bounce.
    assert_eq!(out.stats.get("migrations_host_to_nxp"), 6);
    assert_eq!(out.stats.get("returns_nxp_to_host"), 6);
    // Each nested call escalates off its accelerator exactly once.
    assert_eq!(out.stats.get("migrations_nxp_to_host"), 2);
    assert_eq!(out.stats.get("nxp_exec_faults"), 2);
    // Both accelerators faulted an NX trigger at some point.
    let nxp_side_faults = m.trace().count(|e| {
        matches!(
            e,
            Event::NxFault {
                side: flick_sim::trace::Side::Nxp,
                ..
            }
        )
    });
    assert_eq!(nxp_side_faults, 2);
}

#[test]
fn placement_routes_each_call_to_its_isa() {
    // With RoundRobin placement over a [rv64, arm64] fleet, ISA-aware
    // placement must still land every call on the one matching slot.
    let mut p = ProgramBuilder::new("routed");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::S1, 0);
    for _ in 0..3 {
        main.li(abi::A0, 1);
        main.call("rv_inc");
        main.add(abi::S1, abi::S1, abi::A0);
        main.li(abi::A0, 1);
        main.call("arm_dec");
        main.add(abi::S1, abi::S1, abi::A0);
    }
    main.mv(abi::A0, abi::S1);
    main.call("flick_exit");
    p.func(main.finish());
    let mut f = FuncBuilder::new("rv_inc", TargetIsa::Nxp);
    f.addi(abi::A0, abi::A0, 1);
    f.ret();
    p.func(f.finish());
    let mut f = FuncBuilder::new("arm_dec", TargetIsa::Arm64);
    f.addi(abi::A0, abi::A0, -1);
    f.ret();
    p.func(f.finish());

    let mut m = hetero_machine();
    let pid = m.load_program(&mut p).unwrap();
    let out = m.run(pid).unwrap();
    // 3 × (2 + 0): every rv_inc must have run on the rv64 core and
    // every arm_dec on the arm64 core, or the run would have faulted.
    assert_eq!(out.exit_code, 6);
    assert_eq!(out.stats.get("migrations_host_to_nxp"), 6);
}

#[test]
fn deterministic_across_runs() {
    let run = || {
        let mut p = ProgramBuilder::new("pairs");
        build_pairs_program(&mut p);
        let mut m = hetero_machine();
        let pid = m.load_program(&mut p).unwrap();
        let out = m.run(pid).unwrap();
        (out.exit_code, out.sim_time, m.trace().len())
    };
    assert_eq!(run(), run());
}

/// Satellite regression: a mid-migration wrong-ISA fetch must raise
/// exactly the §IV-B2 exec exception (`NxViolation` — the page is NX
/// with a foreign ISA tag), not fall through to a decode error.
#[test]
fn wrong_isa_fetch_mid_migration_raises_nx_violation() {
    use flick_cpu::{Core, CoreConfig, Exception, InstFaultKind, MemEnv, StopReason};
    use flick_mem::{PhysAddr, PhysMem, VirtAddr};
    use flick_paging::{flags, AddressSpace, BumpFrameAlloc};

    let mut mem = PhysMem::new();
    let mut alloc = BumpFrameAlloc::new(PhysAddr(0x100_0000), PhysAddr(0x300_0000));
    let mut asp = AddressSpace::new(&mut mem, &mut alloc);
    asp.map_range(
        &mut mem,
        &mut alloc,
        VirtAddr(0),
        PhysAddr(0),
        8 << 20,
        flags::PRESENT | flags::WRITABLE | flags::USER,
    )
    .unwrap();
    // Arm64 text page: NX + arm64 ISA tag, exactly as the loader maps
    // `.text.arm`.
    asp.protect(
        &mut mem,
        VirtAddr(0x40_0000),
        0x1000,
        flags::NX | flags::isa_tag_bits(IsaId::Arm64.tag() + 1),
        0,
    )
    .unwrap();
    let mut f = FuncBuilder::new("a", TargetIsa::Arm64);
    f.li(abi::A0, 1);
    f.halt();
    let enc = IsaId::Arm64.encode(&f.finish()).unwrap();
    mem.write_bytes(PhysAddr(0x40_0000), &enc.bytes);

    // An rv64 core (as if the thread were still mid-migration on the
    // wrong accelerator) must trap NxViolation at the first fetch…
    let mut rv = Core::new(CoreConfig::accel(IsaId::Rv64));
    rv.set_cr3(asp.cr3());
    rv.set_pc(VirtAddr(0x40_0000));
    let env = MemEnv::paper_default();
    assert_eq!(
        rv.run(&mut mem, &env, 100),
        StopReason::Fault(Exception::InstFault {
            va: VirtAddr(0x40_0000),
            kind: InstFaultKind::NxViolation,
        })
    );
    // …and the host must trap the same way (NX page), not decode.
    let mut host = Core::new(CoreConfig::host());
    host.set_cr3(asp.cr3());
    host.set_pc(VirtAddr(0x40_0000));
    assert_eq!(
        host.run(&mut mem, &env, 100),
        StopReason::Fault(Exception::InstFault {
            va: VirtAddr(0x40_0000),
            kind: InstFaultKind::NxViolation,
        })
    );
    // An arm64 core accepts the page.
    let mut arm = Core::new(CoreConfig::accel(IsaId::Arm64));
    arm.set_cr3(asp.cr3());
    arm.set_pc(VirtAddr(0x40_0000));
    assert_eq!(arm.run(&mut mem, &env, 100), StopReason::Halt);
    assert_eq!(arm.reg(abi::A0), 1);
}

/// Untagged (tag-0) and stale-tag call targets place by **best fit**
/// over the fleet's ISA descriptors — highest nominal ALU throughput
/// (clock over ALU CPI) wins, ties break to the lower tag, and the
/// choice ignores slot order.
#[test]
fn best_fit_placement_follows_descriptor_throughput() {
    use flick::best_fit_accel_isa;
    // Single-ISA fleets are their own best fit.
    assert_eq!(best_fit_accel_isa(&[IsaId::Rv64]), IsaId::Rv64);
    assert_eq!(best_fit_accel_isa(&[IsaId::Arm64]), IsaId::Arm64);
    // arm64 (1 GHz / CPI 1) outruns rv64 (200 MHz / CPI 1) — it wins
    // whatever slot it sits in and however often rv64 is duplicated.
    assert_eq!(best_fit_accel_isa(&[IsaId::Rv64, IsaId::Arm64]), IsaId::Arm64);
    assert_eq!(best_fit_accel_isa(&[IsaId::Arm64, IsaId::Rv64]), IsaId::Arm64);
    assert_eq!(
        best_fit_accel_isa(&[IsaId::Rv64, IsaId::Rv64, IsaId::Arm64, IsaId::Rv64]),
        IsaId::Arm64
    );
    // Host-encoding entries are not accelerator targets and are
    // skipped; an empty or all-host fleet keeps the classic rv64
    // default of the two-ISA machine.
    assert_eq!(best_fit_accel_isa(&[IsaId::X64, IsaId::Rv64]), IsaId::Rv64);
    assert_eq!(best_fit_accel_isa(&[]), IsaId::Rv64);
    assert_eq!(best_fit_accel_isa(&[IsaId::X64]), IsaId::Rv64);
    // Deterministic: same multiset in, same answer out, every time.
    let fleet = [IsaId::Arm64, IsaId::Rv64, IsaId::Arm64];
    assert_eq!(best_fit_accel_isa(&fleet), best_fit_accel_isa(&fleet));
}

/// The same program computes the same results whatever the fleet's ISA
/// mix — rv64-only, arm64-assisted, or arm64-heavy.
#[test]
fn fleet_mix_is_result_invariant() {
    let run = |isas: Vec<IsaId>| {
        let mut p = ProgramBuilder::new("pairs");
        build_pairs_program(&mut p);
        let mut m = Machine::builder()
            .topology(Topology {
                host_cores: 1,
                nxp_cores: isas.len(),
            })
            .nxp_isas(isas)
            .build();
        let pid = m.load_program(&mut p).unwrap();
        m.run(pid).unwrap().exit_code
    };
    let a = run(vec![IsaId::Rv64, IsaId::Arm64]);
    let b = run(vec![IsaId::Arm64, IsaId::Rv64]);
    let c = run(vec![IsaId::Rv64, IsaId::Arm64, IsaId::Rv64, IsaId::Arm64]);
    assert_eq!(a, 21 + 25 + 109 + 211);
    assert_eq!(a, b);
    assert_eq!(a, c);
}
