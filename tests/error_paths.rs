//! Failure-injection tests: the machine must report crashes and
//! misconfigurations precisely instead of wedging.

use flick::{Machine, RunError};
use flick_cpu::Exception;
use flick_isa::{abi, FuncBuilder, MemSize, TargetIsa};
use flick_sim::trace::Side;
use flick_toolchain::ProgramBuilder;

fn run(build: impl FnOnce(&mut ProgramBuilder)) -> Result<flick::Outcome, RunError> {
    let mut p = ProgramBuilder::new("err");
    build(&mut p);
    let mut m = Machine::paper_default();
    let pid = m.load_program(&mut p)?;
    m.run(pid)
}

#[test]
fn nxp_data_fault_reports_nxp_side() {
    let err = run(|p| {
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.call("nxp_bad");
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_bad", TargetIsa::Nxp);
        f.li(abi::A1, 0x0BAD_0000_0000u64 as i64); // unmapped VA
        f.ld(abi::A0, abi::A1, 0, MemSize::B8);
        f.ret();
        p.func(f.finish());
    });
    match err {
        Err(RunError::Crash { side: Side::Nxp, exception }) => {
            assert!(matches!(exception, Exception::DataFault { write: false, .. }));
        }
        other => panic!("expected NxP crash, got {other:?}"),
    }
}

#[test]
fn nxp_store_to_readonly_text_faults() {
    let err = run(|p| {
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.call("nxp_vandal");
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_vandal", TargetIsa::Nxp);
        // Try to overwrite main's code (text is mapped read-only).
        f.li_sym(abi::A1, "main");
        f.li(abi::T0, 0);
        f.st(abi::T0, abi::A1, 0, MemSize::B8);
        f.ret();
        p.func(f.finish());
    });
    match err {
        Err(RunError::Crash { side: Side::Nxp, exception }) => {
            assert!(matches!(exception, Exception::DataFault { write: true, .. }));
        }
        other => panic!("expected write fault, got {other:?}"),
    }
}

#[test]
fn host_jump_to_data_is_a_crash_not_a_migration() {
    // Data pages carry NX too, but a host jump into .data must be a
    // real crash: the kernel distinguishes "NxP text" from garbage by
    // the fault address — jumping to data reaches the migration
    // handler, the NxP then faults trying to run non-code. Either way
    // the run must terminate with an error, never hang.
    let err = run(|p| {
        p.data(flick_toolchain::DataDef::new("blob", vec![0u8; 64]));
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.li_sym(abi::T0, "blob");
        main.call_reg(abi::T0);
        main.call("flick_exit");
        p.func(main.finish());
    });
    assert!(err.is_err(), "jumping into data must fail, got {err:?}");
}

#[test]
fn unknown_host_service_reported() {
    let err = run(|p| {
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.ecall(0x7F); // no such service
        main.call("flick_exit");
        p.func(main.finish());
    });
    assert!(matches!(
        err,
        Err(RunError::UnknownService { side: Side::Host, service: 0x7F })
    ));
}

#[test]
fn unknown_nxp_service_reported() {
    let err = run(|p| {
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.call("nxp_weird");
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_weird", TargetIsa::Nxp);
        f.ecall(0x3FF);
        f.ret();
        p.func(f.finish());
    });
    assert!(matches!(
        err,
        Err(RunError::UnknownService { side: Side::Nxp, service: 0x3FF })
    ));
}

#[test]
fn halt_on_nxp_is_a_crash() {
    // `halt` is a host-only concept (process exit); NxP code must exit
    // via return migration.
    let err = run(|p| {
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.call("nxp_halts");
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_halts", TargetIsa::Nxp);
        f.halt();
        p.func(f.finish());
    });
    assert!(matches!(err, Err(RunError::Crash { side: Side::Nxp, .. })));
}

#[test]
fn stack_overflow_on_host_faults_eventually() {
    // Unbounded recursion runs the host stack past its guard (the
    // stack mapping is finite), producing a data fault rather than
    // silent corruption.
    let err = run(|p| {
        let mut f = FuncBuilder::new("main", TargetIsa::Host);
        let top = f.new_label();
        f.bind(top);
        f.addi(abi::SP, abi::SP, -4096);
        f.st(abi::RA, abi::SP, 0, MemSize::B8);
        f.jmp(top);
        p.func(f.finish());
    });
    assert!(matches!(
        err,
        Err(RunError::Crash { side: Side::Host, exception: Exception::DataFault { .. } })
    ));
}

// ---- fault-during-migration ------------------------------------------------

use flick_sim::FaultPlan;

/// Runs `build` on a machine with `plan` installed; returns the machine
/// for stats inspection plus the run result.
fn run_faulty(
    plan: FaultPlan,
    build: impl FnOnce(&mut ProgramBuilder),
) -> (Machine, Result<flick::Outcome, RunError>) {
    let mut p = ProgramBuilder::new("err");
    build(&mut p);
    let mut m = Machine::builder().fault_plan(plan).build();
    let pid = m.load_program(&mut p).expect("load");
    let out = m.run(pid);
    (m, out)
}

/// One NxP round trip: `main` calls `nxp_inc(41)`, exits with 42.
fn null_call(p: &mut ProgramBuilder) {
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::A0, 41);
    main.call("nxp_inc");
    main.call("flick_exit");
    p.func(main.finish());
    let mut f = FuncBuilder::new("nxp_inc", TargetIsa::Nxp);
    f.addi(abi::A0, abi::A0, 1);
    f.ret();
    p.func(f.finish());
}

/// Nested ping-pong: `main` calls `nxp_wrap(5)`, which calls the host
/// function `host_leaf` (+2), then adds 1 — exit code 8.
fn nested_call(p: &mut ProgramBuilder) {
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::A0, 5);
    main.call("nxp_wrap");
    main.call("flick_exit");
    p.func(main.finish());
    let mut w = FuncBuilder::new("nxp_wrap", TargetIsa::Nxp);
    w.prologue(16, &[]);
    w.call("host_leaf");
    w.addi(abi::A0, abi::A0, 1);
    w.epilogue(16, &[]);
    p.func(w.finish());
    let mut l = FuncBuilder::new("host_leaf", TargetIsa::Host);
    l.addi(abi::A0, abi::A0, 2);
    l.ret();
    p.func(l.finish());
}

#[test]
fn corrupt_descriptor_is_naked_and_retransmitted() {
    // One in-flight bit flip on the call descriptor: the NxP's checksum
    // rejects it, NAKs, and the host retransmits. The program never
    // notices.
    let plan = FaultPlan::seeded(7).with_corrupt(1.0).with_max_injections(1);
    let (m, out) = run_faulty(plan, null_call);
    let out = out.expect("recovered run");
    assert_eq!(out.exit_code, 42);
    assert_eq!(out.stats.get("crc_rejects"), 1);
    assert_eq!(out.stats.get("retransmits"), 1);
    assert_eq!(m.fault_counts().corrupt_burst, 1);
}

#[test]
fn corrupt_nested_return_leg_recovers() {
    // The fault lands mid-migration: the NxP→host *call* burst (the
    // nested leg of an in-flight host→NxP migration) is corrupted; the
    // host NAKs off its retained copy and the NxP retransmits.
    let plan = FaultPlan::seeded(11)
        .with_corrupt(1.0)
        .with_skip(1)
        .with_max_injections(1);
    let (_, out) = run_faulty(plan, nested_call);
    let out = out.expect("recovered run");
    assert_eq!(out.exit_code, 8);
    assert_eq!(out.stats.get("crc_rejects"), 1);
    assert_eq!(out.stats.get("retransmits"), 1);
}

#[test]
fn lost_msi_recovered_by_watchdog() {
    // The wake-up interrupt vanishes; the payload made it. The
    // suspended thread's watchdog fires at its deadline and polls the
    // ring directly.
    let plan = FaultPlan::seeded(9).with_drop_msi(1.0).with_max_injections(1);
    let (_, out) = run_faulty(plan, null_call);
    let out = out.expect("recovered run");
    assert_eq!(out.exit_code, 42);
    assert_eq!(out.stats.get("watchdog_fires"), 1);
    assert_eq!(out.stats.get("msi_losses_recovered"), 1);
    assert_eq!(out.stats.get("retransmits"), 0);
}

#[test]
fn duplicated_msi_is_drained_as_spurious() {
    let plan = FaultPlan::seeded(13).with_dup_msi(1.0).with_max_injections(1);
    let (_, out) = run_faulty(plan, null_call);
    let out = out.expect("recovered run");
    assert_eq!(out.exit_code, 42);
    assert_eq!(out.stats.get("spurious_wakeups"), 1);
}

#[test]
fn dead_call_link_degrades_to_host_emulation() {
    // Every host→NxP burst is dropped: delivery exhausts its attempts
    // and the call degrades — the thread is unwound out of the handler
    // and the NxP function runs through the host-side interpreter. The
    // result is still correct, just slow.
    let plan = FaultPlan::seeded(3).with_drop_burst(1.0);
    let (m, out) = run_faulty(plan, null_call);
    let out = out.expect("degraded run still completes");
    assert_eq!(out.exit_code, 42);
    assert_eq!(out.stats.get("migrations_degraded"), 1);
    assert!(out.stats.get("emulated_calls") >= 1);
    assert!(out.stats.get("emulated_instructions") >= 1);
    // The NxP never saw the thread.
    assert_eq!(out.stats.get("migrations_nxp_to_host"), 0);
    assert_eq!(out.stats.get("returns_nxp_to_host"), 0);
    assert!(m.fault_counts().drop_burst >= 7);
}

#[test]
fn degraded_thread_handles_nested_host_calls() {
    // Graceful degradation must survive the ping-pong: the emulated NxP
    // function calls a host function (interpreter bounces control back
    // to the native core) and the host function returns into NxP text
    // (native core bounces back into the interpreter).
    let plan = FaultPlan::seeded(5).with_drop_burst(1.0);
    let (_, out) = run_faulty(plan, nested_call);
    let out = out.expect("degraded nested run still completes");
    assert_eq!(out.exit_code, 8);
    assert_eq!(out.stats.get("migrations_degraded"), 1);
    assert!(out.stats.get("emulated_calls") >= 2, "re-entry after host leg");
}

#[test]
fn dead_return_link_is_fatal() {
    // NxP→host delivery dies for good: the watchdog retransmits up to
    // the attempt budget and then reports a dead link. No degradation
    // here — the call already ran, re-running it would double side
    // effects.
    let plan = FaultPlan::seeded(17).with_drop_burst(1.0).with_skip(1);
    let (_, out) = run_faulty(plan, null_call);
    match out {
        Err(RunError::LinkDead { pid: 1, stage: "nxp-to-host" }) => {}
        other => panic!("expected nxp-to-host LinkDead, got {other:?}"),
    }
}

#[test]
fn dead_host_return_leg_is_fatal() {
    // Same, for the host→NxP *return* leg of a nested call: the first
    // three injection points (h2n call burst, n2h call burst, its MSI)
    // deliver cleanly, then the link dies.
    let plan = FaultPlan::seeded(19).with_drop_burst(1.0).with_skip(3);
    let (_, out) = run_faulty(plan, nested_call);
    match out {
        Err(RunError::LinkDead { pid: 1, stage: "host-to-nxp return" }) => {}
        other => panic!("expected host-to-nxp return LinkDead, got {other:?}"),
    }
}

#[test]
fn abandoned_migration_wait_deadlocks_instead_of_wedging() {
    // Exhaust the fuel budget while the thread sits in MigrationWait,
    // then re-run it: the thread can never be woken (its wake-up was
    // abandoned with the aborted run), and the scheduler must report a
    // typed deadlock naming the stuck pid — not spin or panic.
    let mut seen_deadlock = false;
    for fuel in 10..200 {
        let mut p = ProgramBuilder::new("dl");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.li(abi::A0, 1);
        main.call("nxp_id");
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_id", TargetIsa::Nxp);
        f.ret();
        p.func(f.finish());
        let mut m = Machine::paper_default();
        let pid = m.load_program(&mut p).unwrap();
        if !matches!(m.run_with_fuel(pid, fuel), Err(RunError::FuelExhausted)) {
            continue;
        }
        match m.run(pid) {
            Err(RunError::Deadlock { stuck }) => {
                assert_eq!(stuck, vec![pid]);
                seen_deadlock = true;
            }
            // Fuel ran out while the thread was runnable on the host:
            // the re-run resumes from the stale context and finishes.
            Ok(_) | Err(RunError::FuelExhausted) => {}
            other => panic!("unexpected re-run result: {other:?}"),
        }
    }
    assert!(
        seen_deadlock,
        "some fuel level must abort inside MigrationWait"
    );
}

// ---- device-level failures -------------------------------------------------

use flick::Topology;
use flick_sim::{DeviceEvent, DeviceFaultKind, Picos};

/// Like [`run_faulty`] but on an explicit topology.
fn run_faulty_topo(
    topology: Topology,
    plan: FaultPlan,
    build: impl FnOnce(&mut ProgramBuilder),
) -> (Machine, Result<flick::Outcome, RunError>) {
    let mut p = ProgramBuilder::new("err");
    build(&mut p);
    let mut m = Machine::builder().topology(topology).fault_plan(plan).build();
    let pid = m.load_program(&mut p).expect("load");
    let out = m.run(pid);
    (m, out)
}

/// One long NxP leg: `main` calls `nxp_spin(spin)` once and exits with
/// the spin count — a wide window for mid-leg device death.
fn spin_call(spin: i64) -> impl FnOnce(&mut ProgramBuilder) {
    move |p: &mut ProgramBuilder| {
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.li(abi::A0, spin);
        main.call("nxp_spin");
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_spin", TargetIsa::Nxp);
        let sl = f.new_label();
        let done = f.new_label();
        f.li(abi::T0, 0);
        f.bind(sl);
        f.bge(abi::T0, abi::A0, done);
        f.addi(abi::T0, abi::T0, 1);
        f.jmp(sl);
        f.bind(done);
        f.mv(abi::A0, abi::T0);
        f.ret();
        p.func(f.finish());
    }
}

#[test]
fn crash_of_the_only_nxp_degrades_to_host_emulation() {
    // The whole fleet (of one) is gone before the first call: detection
    // costs the retry budget, then — with no survivor to fail over to —
    // the call degrades to the host-side interpreter.
    let plan = FaultPlan::none().with_device_event(DeviceEvent {
        nxp: 0,
        kind: DeviceFaultKind::Crash,
        at: Picos::from_nanos(1),
        rejoin_at: None,
    });
    let (m, out) = run_faulty(plan, null_call);
    let out = out.expect("degraded run still completes");
    assert_eq!(out.exit_code, 42);
    assert_eq!(out.stats.get("migrations_degraded"), 1);
    assert_eq!(m.stats().get("nxp_deaths"), 1);
    assert_eq!(m.health().health(0).deaths, 1);
}

#[test]
fn crash_mid_call_reexecutes_on_survivor() {
    // The serving NxP dies while the leg is in flight: the reply dies
    // with it, the watchdog notices, and the retained call descriptor
    // is re-executed on the survivor. The program sees nothing.
    let topo = Topology::new(1, 2);
    let (_, clean) = run_faulty_topo(topo, FaultPlan::none(), spin_call(4_000));
    let clean = clean.expect("clean run");
    let mid = Picos::from_nanos(clean.sim_time.as_nanos() / 2);
    let plan = FaultPlan::none().with_device_event(DeviceEvent {
        nxp: 0,
        kind: DeviceFaultKind::Crash,
        at: mid,
        rejoin_at: None,
    });
    let (m, out) = run_faulty_topo(topo, plan, spin_call(4_000));
    let out = out.expect("failover run completes");
    assert_eq!(out.exit_code, clean.exit_code);
    assert_eq!(m.stats().get("nxp_deaths"), 1);
    assert_eq!(m.stats().get("failover_reexecutions"), 1);
    assert_eq!(out.stats.get("migrations_degraded"), 0);
}

#[test]
fn nxp_death_during_link_outage_fails_over() {
    // Double failure on one delivery: the first kicks are eaten by the
    // link, and by the time the driver retries the device itself is
    // gone. The shared retry budget detects it and the victim lands on
    // the survivor.
    let plan = FaultPlan::seeded(23)
        .with_drop_burst(1.0)
        .with_max_injections(2)
        .with_device_event(DeviceEvent {
            nxp: 0,
            kind: DeviceFaultKind::Crash,
            at: Picos::from_nanos(1),
            rejoin_at: None,
        });
    let (m, out) = run_faulty_topo(Topology::new(1, 2), plan, null_call);
    let out = out.expect("failover run completes");
    assert_eq!(out.exit_code, 42);
    assert_eq!(m.stats().get("nxp_deaths"), 1);
    assert_eq!(m.stats().get("failover_replacements"), 1);
    assert_eq!(out.stats.get("migrations_degraded"), 0);
}

#[test]
fn task_census_balances_across_randomized_device_chaos() {
    // Property: whatever the crash/rejoin schedule — including double
    // failures — every spawned thread is exactly-once live or exited.
    // Here all runs complete, so the census must show every pid exited
    // exactly once, with no thread lost and none duplicated.
    let topo = Topology::new(2, 3);
    let horizon = {
        let mut m = Machine::builder().topology(topo).build();
        let mut pids = Vec::new();
        for _ in 0..3 {
            let mut p = ProgramBuilder::new("err");
            spin_call(400)(&mut p);
            pids.push(m.load_program(&mut p).unwrap());
        }
        m.run_concurrent(&pids, u64::MAX / 2).unwrap();
        m.host_now()
    };
    for seed in 0..16u64 {
        let plan = FaultPlan::chaos(seed)
            .with_device_events(FaultPlan::device_chaos(seed, 3, horizon));
        let mut m = Machine::builder().topology(topo).fault_plan(plan).build();
        let mut pids = Vec::new();
        for _ in 0..3 {
            let mut p = ProgramBuilder::new("err");
            spin_call(400)(&mut p);
            pids.push(m.load_program(&mut p).unwrap());
        }
        m.run_concurrent(&pids, u64::MAX / 2)
            .unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        let (live, mut exited) = m.task_census();
        assert!(live.is_empty(), "seed {seed}: live threads remain: {live:?}");
        exited.sort_unstable();
        let mut want = pids.clone();
        want.sort_unstable();
        assert_eq!(exited, want, "seed {seed}: census does not balance");
    }
}

#[test]
fn staging_paths_report_typed_errors() {
    // Regression: the staging helpers (`stage_alloc_nxp`, `stage_write`,
    // `stage_read`) used to `.expect(...)` and abort the process on NxP
    // window exhaustion or an unmapped address. They must surface typed
    // errors instead.
    use flick_mem::VirtAddr;

    let mut m = Machine::paper_default();
    let mut p = ProgramBuilder::new("stage");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::A0, 0);
    main.call("flick_exit");
    p.func(main.finish());
    let pid = m.load_program(&mut p).unwrap();

    // Exhaust the 4 GiB NxP window: the oversized allocation is a typed
    // load error, not a panic.
    assert!(matches!(
        m.stage_alloc_nxp(pid, u64::MAX / 2),
        Err(RunError::Load(_))
    ));
    // Unmapped staging writes and reads report the fault.
    let unmapped = VirtAddr(0x0BAD_0000_0000);
    assert!(matches!(
        m.stage_write(pid, unmapped, &[1, 2, 3]),
        Err(RunError::Load(_))
    ));
    let mut buf = [0u8; 8];
    assert!(matches!(
        m.stage_read(pid, unmapped, &mut buf),
        Err(RunError::Load(_))
    ));
    // Staging against a pid that was never loaded fails the same way.
    assert!(m.stage_alloc_nxp(4242, 64).is_err());
    // None of the failures corrupted the machine: the program still runs.
    assert_eq!(m.run(pid).unwrap().exit_code, 0);
}

#[test]
fn host_now_on_a_fresh_machine_is_zero() {
    // Regression: `host_now` on a machine whose cores never ticked used
    // to assume a nonempty clock set; it must report time zero, not
    // panic.
    let m = Machine::paper_default();
    assert_eq!(m.host_now(), Picos::ZERO);
}

#[test]
fn running_an_unknown_pid_is_a_typed_kernel_error() {
    // Regression: `Machine::run` with a PID that was never loaded used
    // to panic inside the kernel's task lookup. It must surface as a
    // typed error the caller can match on.
    use flick_os::KernelError;

    let mut m = Machine::paper_default();
    match m.run(4242) {
        Err(RunError::Kernel(KernelError::NoSuchTask(pid))) => assert_eq!(pid, 4242),
        other => panic!("expected NoSuchTask, got {other:?}"),
    }
    // A machine that already ran real work rejects bad PIDs the same
    // way, without corrupting its own state.
    let mut p = ProgramBuilder::new("ok");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::A0, 5);
    main.call("flick_exit");
    p.func(main.finish());
    let pid = m.load_program(&mut p).unwrap();
    assert!(matches!(
        m.run_concurrent(&[pid, 9999], u64::MAX / 2),
        Err(RunError::Kernel(KernelError::NoSuchTask(9999)))
    ));
    assert_eq!(m.run(pid).unwrap().exit_code, 5);
}
