//! Failure-injection tests: the machine must report crashes and
//! misconfigurations precisely instead of wedging.

use flick::{Machine, RunError};
use flick_cpu::Exception;
use flick_isa::{abi, FuncBuilder, MemSize, TargetIsa};
use flick_sim::trace::Side;
use flick_toolchain::ProgramBuilder;

fn run(build: impl FnOnce(&mut ProgramBuilder)) -> Result<flick::Outcome, RunError> {
    let mut p = ProgramBuilder::new("err");
    build(&mut p);
    let mut m = Machine::paper_default();
    let pid = m.load_program(&mut p)?;
    m.run(pid)
}

#[test]
fn nxp_data_fault_reports_nxp_side() {
    let err = run(|p| {
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.call("nxp_bad");
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_bad", TargetIsa::Nxp);
        f.li(abi::A1, 0x0BAD_0000_0000u64 as i64); // unmapped VA
        f.ld(abi::A0, abi::A1, 0, MemSize::B8);
        f.ret();
        p.func(f.finish());
    });
    match err {
        Err(RunError::Crash { side: Side::Nxp, exception }) => {
            assert!(matches!(exception, Exception::DataFault { write: false, .. }));
        }
        other => panic!("expected NxP crash, got {other:?}"),
    }
}

#[test]
fn nxp_store_to_readonly_text_faults() {
    let err = run(|p| {
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.call("nxp_vandal");
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_vandal", TargetIsa::Nxp);
        // Try to overwrite main's code (text is mapped read-only).
        f.li_sym(abi::A1, "main");
        f.li(abi::T0, 0);
        f.st(abi::T0, abi::A1, 0, MemSize::B8);
        f.ret();
        p.func(f.finish());
    });
    match err {
        Err(RunError::Crash { side: Side::Nxp, exception }) => {
            assert!(matches!(exception, Exception::DataFault { write: true, .. }));
        }
        other => panic!("expected write fault, got {other:?}"),
    }
}

#[test]
fn host_jump_to_data_is_a_crash_not_a_migration() {
    // Data pages carry NX too, but a host jump into .data must be a
    // real crash: the kernel distinguishes "NxP text" from garbage by
    // the fault address — jumping to data reaches the migration
    // handler, the NxP then faults trying to run non-code. Either way
    // the run must terminate with an error, never hang.
    let err = run(|p| {
        p.data(flick_toolchain::DataDef::new("blob", vec![0u8; 64]));
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.li_sym(abi::T0, "blob");
        main.call_reg(abi::T0);
        main.call("flick_exit");
        p.func(main.finish());
    });
    assert!(err.is_err(), "jumping into data must fail, got {err:?}");
}

#[test]
fn unknown_host_service_reported() {
    let err = run(|p| {
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.ecall(0x7F); // no such service
        main.call("flick_exit");
        p.func(main.finish());
    });
    assert!(matches!(
        err,
        Err(RunError::UnknownService { side: Side::Host, service: 0x7F })
    ));
}

#[test]
fn unknown_nxp_service_reported() {
    let err = run(|p| {
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.call("nxp_weird");
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_weird", TargetIsa::Nxp);
        f.ecall(0x3FF);
        f.ret();
        p.func(f.finish());
    });
    assert!(matches!(
        err,
        Err(RunError::UnknownService { side: Side::Nxp, service: 0x3FF })
    ));
}

#[test]
fn halt_on_nxp_is_a_crash() {
    // `halt` is a host-only concept (process exit); NxP code must exit
    // via return migration.
    let err = run(|p| {
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.call("nxp_halts");
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_halts", TargetIsa::Nxp);
        f.halt();
        p.func(f.finish());
    });
    assert!(matches!(err, Err(RunError::Crash { side: Side::Nxp, .. })));
}

#[test]
fn stack_overflow_on_host_faults_eventually() {
    // Unbounded recursion runs the host stack past its guard (the
    // stack mapping is finite), producing a data fault rather than
    // silent corruption.
    let err = run(|p| {
        let mut f = FuncBuilder::new("main", TargetIsa::Host);
        let top = f.new_label();
        f.bind(top);
        f.addi(abi::SP, abi::SP, -4096);
        f.st(abi::RA, abi::SP, 0, MemSize::B8);
        f.jmp(top);
        p.func(f.finish());
    });
    assert!(matches!(
        err,
        Err(RunError::Crash { side: Side::Host, exception: Exception::DataFault { .. } })
    ));
}
