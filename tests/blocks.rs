//! Differential proof that the basic-block execution engine is a pure
//! host-side optimization at the **core** level: a `Core` with the fast
//! path disabled steps one instruction at a time through the full
//! fetch→translate→decode→execute path; with it enabled the core
//! replays decoded superblocks, and with block *chaining* enabled on
//! top it follows patched successor links (and spins batched self-loop
//! iterations) without returning to top-level dispatch. All three
//! engines must agree bit-for-bit on the simulated clock, cycle count,
//! every counter, the PC, all registers and the stop reason — for
//! random programs, at every fuel cutoff, across faults raised
//! mid-block, self-modifying text (including text a live chain points
//! at), page-spanning instructions and TLB/CR3 invalidations, on all
//! three ISAs.
//!
//! Cases are generated from the repo's own deterministic [`Xoshiro256`]
//! so every run explores the same inputs — a failure reproduces by
//! rerunning the test, no external shrinker required. (The machine-level
//! twin of this suite lives in `tests/fastpath.rs`.)

use flick_cpu::{Core, CoreConfig, CoreCounters, MemEnv, StopReason};
use flick_isa::inst::AluOp;
use flick_isa::{abi, FuncBuilder, Inst, Isa, MemSize, Reg, TargetIsa};
use flick_mem::{PhysAddr, PhysMem, VirtAddr};
use flick_paging::{flags, AddressSpace, BumpFrameAlloc};
use flick_sim::{Picos, Xoshiro256};

const TEXT: u64 = 0x40_0000;

fn isa_of(target: TargetIsa) -> Isa {
    target.isa()
}

/// Identity-maps the low 16 MiB, plants `bytes` at [`TEXT`], and marks
/// the text range NX when the NxP core will run it (inverted
/// convention, as in the cpu crate's own fixtures).
fn fixture(target: TargetIsa, bytes: &[u8]) -> (PhysMem, PhysAddr) {
    let mut mem = PhysMem::new();
    let mut alloc = BumpFrameAlloc::new(PhysAddr(0x100_0000), PhysAddr(0x300_0000));
    let mut asp = AddressSpace::new(&mut mem, &mut alloc);
    asp.map_range(
        &mut mem,
        &mut alloc,
        VirtAddr(0),
        PhysAddr(0),
        16 << 20,
        flags::PRESENT | flags::WRITABLE | flags::USER,
    )
    .unwrap();
    if target != TargetIsa::Host {
        asp.protect(&mut mem, VirtAddr(TEXT), 0x10_0000, flags::NX, 0)
            .unwrap();
    }
    let cr3 = asp.cr3();
    mem.write_bytes(PhysAddr(TEXT), bytes);
    (mem, cr3)
}

/// The engine variants every differential runs: blocks with chaining
/// (the production default), blocks without chaining, and the pure
/// step path. Chaining without the block engine is meaningless, so
/// `(false, true)` is not a configuration.
const ENGINES: [(bool, bool); 3] = [(true, true), (true, false), (false, false)];

fn core_for(target: TargetIsa, (fast_path, chain): (bool, bool), cr3: PhysAddr) -> Core {
    let mut cfg = if target == TargetIsa::Host {
        CoreConfig::host()
    } else {
        CoreConfig::accel(target)
    };
    cfg.fast_path = fast_path;
    cfg.chain = chain;
    let mut core = Core::new(cfg);
    core.set_cr3(cr3);
    core.set_pc(VirtAddr(TEXT));
    // Seed every register with an address inside the identity map so
    // random loads/stores sometimes land on mapped memory and sometimes
    // (with large random offsets) fault — both outcomes must match.
    for r in 1..32u8 {
        core.set_reg(Reg(r), 0x2000 * r as u64);
    }
    core.set_reg(abi::SP, 0xF0_0000);
    core
}

/// Everything the simulation can observe about a core after a run.
#[derive(Debug, PartialEq, Eq)]
struct Snap {
    stop: StopReason,
    pc: u64,
    regs: [u64; 32],
    now: Picos,
    cycles: u64,
    counters: CoreCounters,
}

fn snap(stop: StopReason, core: &Core) -> Snap {
    Snap {
        stop,
        pc: core.pc().0,
        regs: std::array::from_fn(|i| core.reg(Reg(i as u8))),
        now: core.clock().now(),
        cycles: core.clock().cycles().count(),
        counters: *core.counters(),
    }
}

/// Runs `bytes` on both engine variants with the given fuel and asserts
/// the snapshots are identical; returns one of them for further checks.
fn diff_run(target: TargetIsa, bytes: &[u8], fuel: u64, label: &str) -> Snap {
    let mut snaps = Vec::new();
    for engine in ENGINES {
        let (mut mem, cr3) = fixture(target, bytes);
        let mut core = core_for(target, engine, cr3);
        let stop = core.run(&mut mem, &MemEnv::paper_default(), fuel);
        snaps.push(snap(stop, &core));
    }
    let step = snaps.pop().unwrap();
    let blocks = snaps.pop().unwrap();
    let chained = snaps.pop().unwrap();
    assert_eq!(blocks, step, "{label}: block vs step diverged at fuel {fuel}");
    assert_eq!(
        chained, step,
        "{label}: chained vs step diverged at fuel {fuel}"
    );
    chained
}

const ALL_ALU: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Divu,
    AluOp::Remu,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

const ALL_SIZES: [MemSize; 4] = [MemSize::B1, MemSize::B2, MemSize::B4, MemSize::B8];

/// One random instruction. Memory offsets are small half the time (so
/// they hit the identity map) and fully random otherwise (so they
/// fault); terminators appear with low probability so most programs
/// contain several multi-instruction blocks.
fn arb_inst(rng: &mut Xoshiro256) -> Inst {
    let reg = |rng: &mut Xoshiro256| Reg(rng.gen_range(0, 32) as u8);
    let alu = |rng: &mut Xoshiro256| ALL_ALU[rng.gen_range(0, ALL_ALU.len() as u64) as usize];
    let size = |rng: &mut Xoshiro256| ALL_SIZES[rng.gen_range(0, 4) as usize];
    let off = |rng: &mut Xoshiro256| {
        if rng.gen_bool(0.5) {
            rng.gen_range(0, 0x1000) as i32
        } else {
            rng.next_u64() as i32
        }
    };
    match rng.gen_range(0, 16) {
        0..=3 => Inst::Alu {
            op: alu(rng),
            rd: reg(rng),
            rs1: reg(rng),
            rs2: reg(rng),
        },
        4..=7 => Inst::AluImm {
            op: alu(rng),
            rd: reg(rng),
            rs1: reg(rng),
            imm: rng.next_u64() as i32,
        },
        8..=9 => Inst::Li {
            rd: reg(rng),
            imm: rng.next_u64() as i64,
        },
        10..=11 => Inst::Ld {
            rd: reg(rng),
            base: reg(rng),
            off: off(rng),
            size: size(rng),
        },
        12..=13 => Inst::St {
            rs: reg(rng),
            base: reg(rng),
            off: off(rng),
            size: size(rng),
        },
        14 => match rng.gen_range(0, 4) {
            0 => Inst::Jalr {
                rd: reg(rng),
                rs1: reg(rng),
                off: off(rng),
            },
            1 => Inst::Ecall {
                service: rng.next_u64() as u16,
            },
            2 => Inst::Ret,
            _ => Inst::Halt,
        },
        _ => Inst::Nop,
    }
}

fn encode(target: TargetIsa, insts: &[Inst]) -> Vec<u8> {
    let mut f = FuncBuilder::new("t", target);
    for i in insts {
        f.push(*i);
    }
    isa_of(target).encode(&f.finish()).unwrap().bytes
}

/// Random programs, all three ISAs, several fuel cutoffs each —
/// including cutoffs that land mid-block and past the program's
/// natural stop.
#[test]
fn random_programs_step_vs_block_identical() {
    let mut rng = Xoshiro256::seeded(0xb10c_0001);
    for case in 0..48 {
        let n = rng.gen_range(1, 48);
        for target in [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64] {
            let insts: Vec<Inst> = (0..n).map(|_| arb_inst(&mut rng)).collect();
            let bytes = encode(target, &insts);
            let extra = rng.gen_range(1, n + 1);
            for fuel in [0, 1, 2, 3, n / 2, n - 1, n, n + extra, 10_000] {
                diff_run(target, &bytes, fuel, &format!("random case {case} {target:?}"));
            }
        }
    }
}

/// The bench interpreter loop (4-instruction blocks ending in a taken
/// branch) at **every** fuel cutoff: fuel must expire on exactly the
/// same instruction whether or not that instruction sits mid-block.
#[test]
fn tight_loop_identical_at_every_fuel_cutoff() {
    for target in [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64] {
        let mut f = FuncBuilder::new("t", target);
        let lp = f.new_label();
        f.li(abi::S1, 12);
        f.bind(lp);
        f.addi(abi::A0, abi::A0, 1);
        f.addi(abi::A1, abi::A1, 2);
        f.addi(abi::S1, abi::S1, -1);
        f.bne(abi::S1, abi::ZERO, lp);
        f.halt();
        let bytes = isa_of(target).encode(&f.finish()).unwrap().bytes;
        let mut halted = None;
        for fuel in 0..=60 {
            let s = diff_run(target, &bytes, fuel, "tight loop");
            if s.stop == StopReason::Halt && halted.is_none() {
                halted = Some(fuel);
            }
        }
        // 1 li + 12 iterations of 4 + halt.
        assert_eq!(halted, Some(50), "{target:?}: loop retired a wrong count");
    }
}

/// Lays out the self-modifying-text program. `patch` is the 8-byte
/// payload the store writes over the instruction at `victim_off`; both
/// depend on the encoding, so [`smc_program`] iterates to a fixpoint.
fn smc_insts(patch: u64, victim_off: i32) -> Vec<Inst> {
    vec![
        Inst::Li {
            rd: abi::T0,
            imm: TEXT as i64,
        },
        Inst::Li {
            rd: abi::T1,
            imm: patch as i64,
        },
        Inst::St {
            rs: abi::T1,
            base: abi::T0,
            off: victim_off,
            size: MemSize::B8,
        },
        // The victim and its tail: decoded into the same block as the
        // store. A block engine that kept replaying the stale decode
        // would retire these adds; the real text now halts first.
        Inst::AluImm {
            op: AluOp::Add,
            rd: abi::A0,
            rs1: abi::A0,
            imm: 1,
        },
        Inst::AluImm {
            op: AluOp::Add,
            rd: abi::A0,
            rs1: abi::A0,
            imm: 2,
        },
        Inst::Halt,
    ]
}

/// Per-instruction byte offsets of an encoded stream.
fn offsets(isa: Isa, bytes: &[u8]) -> Vec<usize> {
    let mut offs = Vec::new();
    let mut off = 0;
    while off < bytes.len() {
        offs.push(off);
        let (_, len) = isa.decode(&bytes[off..]).unwrap();
        off += len;
    }
    offs
}

/// Builds the host-ISA SMC program: a store inside a straight-line
/// block overwrites the very next instruction with a `halt`. Immediate
/// values feed back into instruction lengths on x86-64, so iterate the
/// layout until it stabilises.
fn smc_program() -> (Vec<u8>, i32) {
    let halt = encode(TargetIsa::Host, &[Inst::Halt]);
    assert!(halt.len() <= 8, "halt encoding must fit the 8-byte patch");
    let mut patch = 0u64;
    let mut victim_off = 0i32;
    for _round in 0..8 {
        let bytes = encode(TargetIsa::Host, &smc_insts(patch, victim_off));
        let offs = offsets(Isa::X64, &bytes);
        let new_off = offs[3] as i32; // first add = the victim
        // Patch = halt's encoding, padded with the victim's original
        // tail bytes so the 8-byte store clobbers nothing it shouldn't.
        let mut p = [0u8; 8];
        p.copy_from_slice(&bytes[offs[3]..offs[3] + 8]);
        p[..halt.len()].copy_from_slice(&halt);
        let new_patch = u64::from_le_bytes(p);
        if new_off == victim_off && new_patch == patch {
            return (bytes, victim_off);
        }
        victim_off = new_off;
        patch = new_patch;
    }
    panic!("smc layout did not converge");
}

/// Self-modifying text mid-block: the store retires, the block aborts,
/// and the freshly written `halt` executes — never the stale adds.
#[test]
fn self_modifying_text_mid_block_identical() {
    let (bytes, _) = smc_program();
    for fuel in 0..=8 {
        let s = diff_run(TargetIsa::Host, &bytes, fuel, "smc");
        if s.stop == StopReason::Halt {
            // li, li, st, then the patched-in halt: the adds are gone.
            assert_eq!(s.regs[abi::A0.0 as usize], 0x2000 * abi::A0.0 as u64);
            assert_eq!(s.counters.instructions, 4);
        }
    }
    assert_eq!(
        diff_run(TargetIsa::Host, &bytes, 100, "smc full").stop,
        StopReason::Halt
    );
}

/// Builds the chained-SMC program for `target`: a loop whose body
/// stores an 8-byte patch over the loop's *fall-through successor*
/// (the first instruction after the backward branch), turning
/// `addi a1, a1, 2` into `addi a1, a1, 7`. The loop block and its
/// fall-through are exactly the shape the chain lane links, so every
/// iteration's store hits text a live chain points at. Immediates feed
/// back into the layout (and the patch payload contains the victim's
/// tail bytes), so iterate to a fixpoint like [`smc_program`].
fn chained_smc_program(target: TargetIsa) -> Vec<u8> {
    let new_inst = encode(
        target,
        &[Inst::AluImm {
            op: AluOp::Add,
            rd: abi::A1,
            rs1: abi::A1,
            imm: 7,
        }],
    );
    assert!(new_inst.len() <= 8, "patched add must fit the 8-byte store");
    let mut patch = 0u64;
    let mut victim_off = 0i32;
    for _round in 0..8 {
        let mut f = FuncBuilder::new("t", target);
        let lp = f.new_label();
        f.li(abi::T0, TEXT as i64);
        f.li(abi::T1, patch as i64);
        f.li(abi::S1, 6);
        f.bind(lp);
        f.addi(abi::A0, abi::A0, 1);
        f.push(Inst::St {
            rs: abi::T1,
            base: abi::T0,
            off: victim_off,
            size: MemSize::B8,
        });
        f.addi(abi::S1, abi::S1, -1);
        f.bne(abi::S1, abi::ZERO, lp);
        f.addi(abi::A1, abi::A1, 2);
        f.halt();
        let bytes = isa_of(target).encode(&f.finish()).unwrap().bytes;
        let offs = offsets(isa_of(target), &bytes);
        let new_off = offs[offs.len() - 2] as i32; // the victim add
        let mut p = [0u8; 8];
        let have = (bytes.len() - new_off as usize).min(8);
        p[..have].copy_from_slice(&bytes[new_off as usize..new_off as usize + have]);
        p[..new_inst.len()].copy_from_slice(&new_inst);
        let new_patch = u64::from_le_bytes(p);
        if new_off == victim_off && new_patch == patch {
            return bytes;
        }
        victim_off = new_off;
        patch = new_patch;
    }
    panic!("chained smc layout did not converge");
}

/// Self-modifying text aimed at a **chained successor**: every loop
/// iteration stores over the first instruction of the loop's
/// fall-through block, so a live chain repeatedly points at text that
/// just changed. Each store bumps the text generation, which must
/// break the chain and drop the decode — on loop exit the *patched*
/// fall-through executes, never the stale one, at every fuel cutoff,
/// on all three ISAs.
#[test]
fn smc_rewriting_chained_successor_identical() {
    for target in [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64] {
        let bytes = chained_smc_program(target);
        let full = diff_run(target, &bytes, u64::MAX, "chained smc full");
        assert_eq!(full.stop, StopReason::Halt, "{target:?}");
        // Six loop iterations, then the patched `addi a1, a1, 7`.
        assert_eq!(
            full.regs[abi::A0.0 as usize],
            0x2000 * abi::A0.0 as u64 + 6,
            "{target:?}: loop iterations"
        );
        assert_eq!(
            full.regs[abi::A1.0 as usize],
            0x2000 * abi::A1.0 as u64 + 7,
            "{target:?}: patched successor must execute"
        );
        for fuel in 0..40 {
            diff_run(target, &bytes, fuel, "chained smc");
        }
    }
}

/// A straight-line run long enough that one x86-64 instruction straddles
/// the 0x1000 page boundary: blocks must end at the boundary and the
/// spanning instruction must replay identically through the step path.
#[test]
fn page_spanning_instruction_identical() {
    let mut insts = Vec::new();
    for k in 0..1500 {
        insts.push(Inst::AluImm {
            op: AluOp::Add,
            rd: abi::A0,
            rs1: abi::A0,
            imm: 1 + (k & 0x3f),
        });
    }
    insts.push(Inst::Halt);
    let bytes = encode(TargetIsa::Host, &insts);
    assert!(bytes.len() > 0x1000, "program must cross the page boundary");
    let offs = offsets(Isa::X64, &bytes);
    let spanning = offs
        .iter()
        .position(|&o| o < 0x1000 && {
            let (_, len) = Isa::X64.decode(&bytes[o..]).unwrap();
            o + len > 0x1000
        })
        .expect("an instruction must straddle the boundary") as u64;
    for fuel in spanning.saturating_sub(3)..=spanning + 3 {
        diff_run(TargetIsa::Host, &bytes, fuel, "page-spanning");
    }
    diff_run(TargetIsa::Host, &bytes, u64::MAX, "page-spanning full");
}

/// TLB shootdowns and CR3 reloads between quanta: invalidations must
/// leave the block engine's caches coherent, not just its first run.
#[test]
fn flush_and_cr3_reload_between_quanta_identical() {
    for target in [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64] {
        let mut f = FuncBuilder::new("t", target);
        let lp = f.new_label();
        f.li(abi::S1, 40);
        f.bind(lp);
        f.addi(abi::A0, abi::A0, 3);
        f.ld(abi::T2, abi::SP, -8, MemSize::B8);
        f.addi(abi::S1, abi::S1, -1);
        f.bne(abi::S1, abi::ZERO, lp);
        f.halt();
        let bytes = isa_of(target).encode(&f.finish()).unwrap().bytes;

        let mut cores = Vec::new();
        for engine in ENGINES {
            let (mut mem, cr3) = fixture(target, &bytes);
            let mut core = core_for(target, engine, cr3);
            let env = MemEnv::paper_default();
            let mut stops = Vec::new();
            // Fuel 7 never divides the 4-instruction iteration, so every
            // resume lands at a different block offset; flush/CR3-reload
            // on alternating quanta.
            for quantum in 0..40 {
                stops.push(core.run(&mut mem, &env, 7));
                if *stops.last().unwrap() != StopReason::OutOfFuel {
                    break;
                }
                if quantum % 2 == 0 {
                    core.flush_tlbs();
                } else {
                    core.set_cr3(cr3);
                }
            }
            cores.push((snap(*stops.last().unwrap(), &core), stops));
        }
        let (snap_step, stops_step) = cores.pop().unwrap();
        for (snap_x, stops_x) in cores {
            assert_eq!(stops_x, stops_step, "{target:?}: stop sequence");
            assert_eq!(
                snap_x, snap_step,
                "{target:?}: state after interleaved invalidations"
            );
        }
        assert_eq!(snap_step.stop, StopReason::Halt);
    }
}
