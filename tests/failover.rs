//! Fleet-level failure domains: seeded device chaos (NxP crash, hang,
//! hot-unplug, rejoin) layered on top of link-level chaos.
//!
//! The failover orchestrator must make device death invisible to the
//! *programs*: every victim thread is re-placed onto a surviving NxP
//! (or host-side emulation when the fleet is gone) and completes with
//! the same exit code as a fault-free run. The task census must show
//! every spawned thread exactly-once exited — nothing lost, nothing
//! duplicated — and because both the link plan and the device schedule
//! are seeded, every run must replay bit-identically.

use flick::{BreakerState, Machine, Topology};
use flick_isa::{abi, FuncBuilder, TargetIsa};
use flick_sim::{DeviceEvent, DeviceFaultKind, FaultPlan, Picos, TraceConfig};
use flick_toolchain::ProgramBuilder;

/// A process that ships `calls` chunks of spin work to the NxP and
/// exits with `calls * spin + tag`. The NxP function is pure, so
/// at-least-once re-execution after a device death is harmless.
fn worker(calls: i64, spin: i64, tag: i64) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("worker");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    main.li(abi::S1, calls);
    main.li(abi::S2, 0);
    main.bind(lp);
    main.li(abi::A0, spin);
    main.call("nxp_spin");
    main.add(abi::S2, abi::S2, abi::A0);
    main.addi(abi::S1, abi::S1, -1);
    main.bne(abi::S1, abi::ZERO, lp);
    main.li(abi::T0, tag);
    main.add(abi::A0, abi::S2, abi::T0);
    main.call("flick_exit");
    p.func(main.finish());
    let mut f = FuncBuilder::new("nxp_spin", TargetIsa::Nxp);
    let sl = f.new_label();
    let done = f.new_label();
    f.li(abi::T0, 0);
    f.bind(sl);
    f.bge(abi::T0, abi::A0, done);
    f.addi(abi::T0, abi::T0, 1);
    f.jmp(sl);
    f.bind(done);
    f.mv(abi::A0, abi::T0);
    f.ret();
    p.func(f.finish());
    p
}

const PROCS: i64 = 4;
const CALLS: i64 = 4;
const SPIN: i64 = 600;

/// Runs the fleet workload on `topology` with `plan` (if any) and
/// returns the machine plus per-pid `(pid, exit_code)` pairs.
fn run_fleet(topology: Topology, plan: Option<FaultPlan>) -> (Machine, Vec<(u64, u64)>) {
    let mut b = Machine::builder().topology(topology).trace(TraceConfig {
        enabled: true,
        capacity: 1 << 20,
    });
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    let mut m = b.build();
    let mut pids = Vec::new();
    for tag in 0..PROCS {
        pids.push(m.load_program(&mut worker(CALLS, SPIN, tag * 100_000)).unwrap());
    }
    let done = m.run_concurrent(&pids, u64::MAX / 2).unwrap();
    // Keyed by pid: failover legitimately changes *completion order*,
    // never results.
    let mut codes: Vec<(u64, u64)> = done.iter().map(|(pid, o)| (*pid, o.exit_code)).collect();
    codes.sort_unstable();
    (m, codes)
}

/// Asserts the exactly-once census invariant: no live threads remain,
/// and the exited set equals the spawned set with no duplicates.
fn assert_census(m: &Machine, spawned: &[u64], label: &str) {
    let (live, mut exited) = m.task_census();
    assert!(live.is_empty(), "{label}: threads still live: {live:?}");
    exited.sort_unstable();
    let mut want: Vec<u64> = spawned.to_vec();
    want.sort_unstable();
    assert_eq!(exited, want, "{label}: exited set != spawned set");
}

#[test]
fn device_chaos_soak_is_result_invisible() {
    // ≥12 seeds mixing link faults with device crash/hang/unplug/rejoin
    // on a 2×3 fleet. Exit codes must match the fault-free twin; the
    // task census must balance on every seed.
    let topo = Topology::new(2, 3);
    let (clean_m, clean) = run_fleet(topo, None);
    let horizon = clean_m.host_now();
    assert!(horizon > Picos::ZERO);

    let mut deaths = 0u64;
    let mut scheduled = 0usize;
    for seed in 1..=12u64 {
        let plan = FaultPlan::chaos(seed)
            .with_device_events(FaultPlan::device_chaos(seed, 3, horizon));
        scheduled += plan.device_events().len();
        let (m, codes) = run_fleet(topo, Some(plan));
        assert_eq!(codes, clean, "seed {seed}: results diverged from clean twin");
        let pids: Vec<u64> = codes.iter().map(|(pid, _)| *pid).collect();
        assert_census(&m, &pids, &format!("seed {seed}"));
        deaths += (0..3).map(|n| m.health().health(n).deaths).sum::<u64>();
    }
    assert!(scheduled > 0, "device chaos must schedule events");
    assert!(deaths > 0, "the soak must actually kill NxPs");
}

#[test]
fn device_chaos_replays_bit_identically() {
    let topo = Topology::new(2, 3);
    let (clean_m, _) = run_fleet(topo, None);
    let horizon = clean_m.host_now();
    let mk = || {
        FaultPlan::chaos(0xFA11)
            .with_device_events(FaultPlan::device_chaos(0xFA11, 3, horizon))
    };
    let (m1, c1) = run_fleet(topo, Some(mk()));
    let (m2, c2) = run_fleet(topo, Some(mk()));
    assert_eq!(c1, c2);
    assert_eq!(m1.host_now(), m2.host_now());
    assert_eq!(m1.trace().events(), m2.trace().events());
}

#[test]
fn empty_device_schedule_is_timeline_inert() {
    // A plan that merely *mentions* the device-event API without
    // scheduling anything must be indistinguishable from no plan at
    // all: no RNG draws, no clock changes, no trace changes.
    let topo = Topology::new(2, 3);
    let (base_m, base) = run_fleet(topo, None);
    let plan = FaultPlan::none().with_device_events(std::iter::empty());
    assert!(!plan.has_device_events());
    let (none_m, none) = run_fleet(topo, Some(plan));
    assert_eq!(base, none);
    assert_eq!(base_m.host_now(), none_m.host_now());
    assert_eq!(base_m.trace().events(), none_m.trace().events());
    for key in ["nxp_deaths", "nxp_rejoins", "failover_replacements", "failover_reexecutions"] {
        assert_eq!(none_m.stats().get(key), 0, "counter {key} moved on an inert plan");
    }
}

#[test]
fn targeted_crash_fails_over_to_survivor() {
    // Kill NxP 1 of a 1×2 machine mid-run: round-robin placement keeps
    // steering calls at it, so the crash must be detected (retry budget
    // exhaustion — crashed devices never answer) and the victim work
    // re-placed on NxP 0. Results stay correct.
    let topo = Topology::new(1, 2);
    let (clean_m, clean) = run_fleet(topo, None);
    let mid = Picos::from_nanos(clean_m.host_now().as_nanos() / 4);
    let plan = FaultPlan::none().with_device_event(DeviceEvent {
        nxp: 1,
        kind: DeviceFaultKind::Crash,
        at: mid,
        rejoin_at: None,
    });
    let (m, codes) = run_fleet(topo, Some(plan));
    assert_eq!(codes, clean, "failover changed program results");
    let pids: Vec<u64> = codes.iter().map(|(pid, _)| *pid).collect();
    assert_census(&m, &pids, "targeted crash");

    assert_eq!(m.stats().get("nxp_deaths"), 1);
    assert_eq!(m.health().health(1).deaths, 1);
    assert_eq!(m.health().state(1), BreakerState::Open);
    assert!(
        m.stats().get("failover_replacements") + m.stats().get("failover_reexecutions") >= 1,
        "victim work must be re-placed or re-executed"
    );
    // Dead device excluded from placement: everything after the death
    // ran on NxP 0, and nothing degraded to host emulation.
    assert_eq!(m.stats().get("migrations_degraded"), 0);
}

#[test]
fn unplug_with_rejoin_probes_and_closes_the_breaker() {
    // Hot-unplug NxP 1 early, plug it back in at mid-run. The host must
    // see the unplug instantly (presence detect at the doorbell), open
    // the breaker, then on rejoin go half-open, route one probe, and
    // close the breaker when the probe round-trips.
    let topo = Topology::new(1, 2);
    let (clean_m, clean) = run_fleet(topo, None);
    let end = clean_m.host_now().as_nanos();
    let plan = FaultPlan::none().with_device_event(DeviceEvent {
        nxp: 1,
        kind: DeviceFaultKind::Unplug,
        at: Picos::from_nanos(end / 8),
        rejoin_at: Some(Picos::from_nanos(end / 3)),
    });
    let (m, codes) = run_fleet(topo, Some(plan));
    assert_eq!(codes, clean, "unplug/rejoin changed program results");
    let pids: Vec<u64> = codes.iter().map(|(pid, _)| *pid).collect();
    assert_census(&m, &pids, "unplug/rejoin");

    let h = m.health().health(1);
    assert_eq!(h.deaths, 1, "exactly one death");
    assert_eq!(h.recoveries, 1, "the probe must close the breaker");
    assert_eq!(m.health().state(1), BreakerState::Closed);
    assert_eq!(m.stats().get("nxp_rejoins"), 1);
    assert!(m.stats().get("nxp_probes_ok") >= 1);
    // After recovery both NxPs serve work again.
    let per_core = m.per_core_stats();
    for want in [flick_sim::CoreId::nxp(0), flick_sim::CoreId::nxp(1)] {
        let (_, stats) = per_core.iter().find(|(core, _)| *core == want).unwrap();
        assert!(stats.get("instructions") > 0, "{want} never ran");
    }
}

#[test]
fn double_failure_still_balances_the_census() {
    // Two of three NxPs die at staggered times (one comes back); NxP 0
    // carries the fleet in between. Nothing lost, nothing duplicated.
    let topo = Topology::new(2, 3);
    let (clean_m, clean) = run_fleet(topo, None);
    let end = clean_m.host_now().as_nanos();
    let plan = FaultPlan::chaos(0xD0B1)
        .with_device_event(DeviceEvent {
            nxp: 1,
            kind: DeviceFaultKind::Crash,
            at: Picos::from_nanos(end / 6),
            rejoin_at: Some(Picos::from_nanos(end / 2)),
        })
        .with_device_event(DeviceEvent {
            nxp: 2,
            kind: DeviceFaultKind::Hang,
            at: Picos::from_nanos(end / 4),
            rejoin_at: None,
        });
    let (m, codes) = run_fleet(topo, Some(plan));
    assert_eq!(codes, clean, "double failure changed program results");
    let pids: Vec<u64> = codes.iter().map(|(pid, _)| *pid).collect();
    assert_census(&m, &pids, "double failure");
    assert!(m.stats().get("nxp_deaths") >= 1, "at least one death detected");
}

#[test]
fn failover_lifecycle_is_traced() {
    // The death of an NxP must leave a legible audit trail: device
    // fault → declared dead → descriptors reaped, and the rendered
    // timeline must mention the failover.
    use flick_sim::Event;

    let topo = Topology::new(1, 2);
    let (clean_m, _) = run_fleet(topo, None);
    let mid = Picos::from_nanos(clean_m.host_now().as_nanos() / 4);
    let plan = FaultPlan::none().with_device_event(DeviceEvent {
        nxp: 1,
        kind: DeviceFaultKind::Unplug,
        at: mid,
        rejoin_at: None,
    });
    let (m, _) = run_fleet(topo, Some(plan));
    let events: Vec<&Event> = m.trace().events().iter().map(|(_, e)| e).collect();
    let fault = events
        .iter()
        .position(|e| matches!(e, Event::DeviceFault { nxp: 1, .. }))
        .expect("DeviceFault traced");
    let dead = events
        .iter()
        .position(|e| matches!(e, Event::NxpDeclaredDead { nxp: 1 }))
        .expect("NxpDeclaredDead traced");
    assert!(fault <= dead, "fault observed before declaration");
    let text = flick::timeline::format(m.trace());
    assert!(text.contains("declare nxp1 dead"), "timeline renders the death");
}
