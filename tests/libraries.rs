//! Shared-library style linking: separately compiled objects resolved
//! into one multi-ISA executable — the §III-B argument for OS-level
//! migration triggers ("typical software routinely calls functions in
//! pre-compiled shared libraries ... which do not have migration code
//! inserted").

use flick::Machine;
use flick_isa::{abi, FuncBuilder, TargetIsa};
use flick_toolchain::{compile, link, DataDef, ProgramBuilder};

/// "libgraph": a pre-compiled library with one function per ISA and a
/// lookup table, built as its *own object file* with no knowledge of
/// the application.
fn libgraph_object() -> flick_toolchain::ObjectFile {
    let mut scale = FuncBuilder::new("lib_scale", TargetIsa::Host);
    scale.li_sym(abi::T0, "lib_factor");
    scale.ld(abi::T1, abi::T0, 0, flick_isa::MemSize::B8);
    scale.mul(abi::A0, abi::A0, abi::T1);
    scale.ret();
    let mut square = FuncBuilder::new("lib_nxp_square", TargetIsa::Nxp);
    square.mul(abi::A0, abi::A0, abi::A0);
    square.ret();
    compile(
        &[scale.finish(), square.finish()],
        &[DataDef::new("lib_factor", 3u64.to_le_bytes().to_vec())],
    )
    .unwrap()
}

#[test]
fn app_links_against_precompiled_multi_isa_library() {
    // Application object, compiled separately; calls into the library
    // across the ISA boundary without knowing where its functions run.
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::A0, 7);
    main.call("lib_nxp_square"); // library code on the NxP
    main.call("lib_scale"); // library code on the host
    main.call("flick_exit");
    let mut app_funcs = vec![main.finish()];
    app_funcs.push(flick::handlers::host_migration_handler());
    app_funcs.push(flick::handlers::nxp_migration_handler());
    app_funcs.extend(flick::handlers::runtime_funcs());
    let app = compile(&app_funcs, &[]).unwrap();

    let image = link(&[app, libgraph_object()], "app+lib", "main").unwrap();
    let mut m = Machine::paper_default();
    let pid = m.load(&image).unwrap();
    let out = m.run(pid).unwrap();
    assert_eq!(out.exit_code, 7 * 7 * 3);
    assert_eq!(out.stats.get("migrations_host_to_nxp"), 1);
}

#[test]
fn stdlib_links_like_a_library() {
    // The built-in stdlib is exactly such a library: both-ISA variants,
    // no instrumentation, works through the same NX trigger.
    let mut p = ProgramBuilder::new("app");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::A0, 48);
    main.li(abi::A1, 36);
    main.call("nxp_gcd"); // the NxP variant: one migration
    main.call("flick_exit");
    p.func(main.finish());
    flick::stdlib::add_stdlib(&mut p);
    let mut m = Machine::paper_default();
    let pid = m.load_program(&mut p).unwrap();
    let out = m.run(pid).unwrap();
    assert_eq!(out.exit_code, 12);
    assert_eq!(out.stats.get("migrations_host_to_nxp"), 1);
}

#[test]
fn duplicate_symbols_across_app_and_library_rejected() {
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.call("flick_exit");
    let mut clash = FuncBuilder::new("lib_scale", TargetIsa::Host);
    clash.ret();
    let app = compile(&[main.finish(), clash.finish()], &[]).unwrap();
    let err = link(&[app, libgraph_object()], "x", "main");
    assert!(matches!(
        err,
        Err(flick_toolchain::LinkError::Duplicate(s)) if s == "lib_scale"
    ));
}
