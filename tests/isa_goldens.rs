//! Pre-refactor golden digests for the ISA-descriptor refactor.
//!
//! The descriptor refactor (third ISA, N-way fleets) must not move a
//! single observable bit of the existing two-ISA machine: exit codes,
//! simulated clocks, stats, the full event trace with core tags,
//! per-core stats and observability spans. These digests were captured
//! on the pre-refactor tree over 1×1 and 2×2 x64/rv64 fleets — clean
//! plus eight chaos+device-chaos seeds — and the full fingerprint is
//! identical at threads ∈ {1, 2, 4} (the PR-7 contract), so one digest
//! pins all three worker counts.
//!
//! To re-capture after an *intentional* timing change, run with
//! `FLICK_GOLDEN_PRINT=1` and paste the printed table:
//! `FLICK_GOLDEN_PRINT=1 cargo test --test isa_goldens -- --nocapture`

use flick::{Machine, Outcome, Topology};
use flick_isa::{abi, FuncBuilder, TargetIsa};
use flick_sim::{FaultPlan, TraceConfig};
use flick_toolchain::ProgramBuilder;
use std::fmt::Write as _;

/// Same worker program as tests/determinism.rs: `calls` chunks of spin
/// work shipped to the NxP, exiting with `calls * spin + tag`.
fn worker(calls: i64, spin: i64, tag: i64) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("worker");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    main.li(abi::S1, calls);
    main.li(abi::S2, 0);
    main.bind(lp);
    main.li(abi::A0, spin);
    main.call("nxp_work");
    main.add(abi::S2, abi::S2, abi::A0);
    main.addi(abi::S1, abi::S1, -1);
    main.bne(abi::S1, abi::ZERO, lp);
    main.li(abi::T0, tag);
    main.add(abi::A0, abi::S2, abi::T0);
    main.call("flick_exit");
    p.func(main.finish());
    let mut f = FuncBuilder::new("nxp_work", TargetIsa::Nxp);
    let sl = f.new_label();
    let done = f.new_label();
    f.li(abi::T0, 0);
    f.bind(sl);
    f.bge(abi::T0, abi::A0, done);
    f.addi(abi::T0, abi::T0, 1);
    f.jmp(sl);
    f.bind(done);
    f.mv(abi::A0, abi::T0);
    f.ret();
    p.func(f.finish());
    p
}

/// Serializes every observable surface into one string (the
/// determinism-test fingerprint).
fn fingerprint(m: &Machine, done: &[(u64, Outcome)]) -> String {
    let mut s = String::new();
    for (pid, o) in done {
        let _ = writeln!(
            s,
            "pid {pid} exit {} at {:?} stats {:?}",
            o.exit_code, o.sim_time, o.stats
        );
    }
    let _ = writeln!(s, "host_now {:?}", m.host_now());
    let _ = writeln!(s, "machine_stats {:?}", m.stats());
    let _ = writeln!(s, "fault_counts {:?}", m.fault_counts());
    for (core, st) in m.per_core_stats() {
        let _ = writeln!(s, "core {core} {st:?}");
    }
    let _ = writeln!(s, "trace_len {} dropped {}", m.trace().len(), m.trace().dropped());
    for ((t, e), tag) in m.trace().events().iter().zip(m.trace().core_tags()) {
        let _ = writeln!(s, "{t:?} {tag:?} {e:?}");
    }
    for sp in m.spans() {
        let _ = writeln!(s, "span {sp:?}");
    }
    s
}

/// FNV-1a 64 over the fingerprint text.
fn digest(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn run_fleet(topo: Topology, threads: usize, procs: i64, plan: Option<FaultPlan>) -> String {
    let mut b = Machine::builder()
        .topology(topo)
        .threads(threads)
        .observability(true)
        .trace(TraceConfig {
            enabled: true,
            capacity: 1 << 20,
        });
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    let mut m = b.build();
    let mut pids = Vec::new();
    for tag in 0..procs {
        pids.push(m.load_program(&mut worker(6, 2_000, tag * 100_000)).unwrap());
    }
    let done = m.run_concurrent(&pids, u64::MAX / 2).unwrap();
    fingerprint(&m, &done)
}

/// Fault-free finish time, used to bound the device-chaos horizon.
fn horizon(topo: Topology, procs: i64) -> flick_sim::Picos {
    let mut m = Machine::builder().topology(topo).build();
    let mut pids = Vec::new();
    for tag in 0..procs {
        pids.push(m.load_program(&mut worker(6, 2_000, tag * 100_000)).unwrap());
    }
    m.run_concurrent(&pids, u64::MAX / 2).unwrap();
    m.host_now()
}

/// One golden digest per (topology, plan); seed 0 = clean run.
fn golden_digest(hosts: usize, nxps: usize, procs: i64, seed: u64) -> u64 {
    let topo = Topology::new(hosts, nxps);
    let plan = if seed == 0 {
        None
    } else {
        let h = horizon(topo, procs);
        Some(FaultPlan::chaos(seed).with_device_events(FaultPlan::device_chaos(seed, 3, h)))
    };
    let base = run_fleet(topo, 1, procs, plan.clone());
    // The PR-7 determinism contract folds the thread sweep into one
    // digest: any divergence at 2 or 4 workers fails here first.
    for threads in [2, 4] {
        let got = run_fleet(topo, threads, procs, plan.clone());
        assert_eq!(
            base, got,
            "{hosts}x{nxps} seed={seed}: fingerprint moved at threads={threads}"
        );
    }
    digest(&base)
}

/// Pinned digests, captured on the pre-refactor tree. Chaos-seed rows
/// (seed > 0) were re-captured after the wake-up path switched from
/// due-time MSI scanning to exact-instant claiming
/// ([`flick_pcie::InterruptController::take_vector_at`]): the old scan
/// let a waiter consume a neighbour's earlier interrupt when several
/// threads were suspended on one channel, and these digests had pinned
/// that misdelivery. Clean rows (seed 0) are untouched by the fix.
/// Rows: (hosts, nxps, procs, seed, digest).
const GOLDENS: &[(usize, usize, i64, u64, u64)] = &[
    (1, 1, 3, 0, 0x8f3702d38d011ffb),
    (1, 1, 3, 1, 0xd8167aebe215a507),
    (1, 1, 3, 2, 0x0d1ed9b6eaf62764),
    (1, 1, 3, 3, 0xafbc50be6f8648dd),
    (1, 1, 3, 4, 0x2e079c33188cda84),
    (1, 1, 3, 5, 0x50dc20f0ae597bdf),
    (1, 1, 3, 6, 0x49cb19e8e31eea75),
    (1, 1, 3, 7, 0x3103433bd519eec0),
    (1, 1, 3, 8, 0x891c6f09ec830bd9),
    (2, 2, 4, 0, 0xc109327af365062e),
    (2, 2, 4, 1, 0x593526437662a0d4),
    (2, 2, 4, 2, 0x6cf0c57dd1504292),
    (2, 2, 4, 3, 0xfccf09227701ca5b),
    (2, 2, 4, 4, 0xb5b4dff4850661a4),
    (2, 2, 4, 5, 0x970d2f510e02220d),
    (2, 2, 4, 6, 0xf44975d81dd546c7),
    (2, 2, 4, 7, 0x017330a4674ee48d),
    (2, 2, 4, 8, 0x6c880d8ca29a5aa8),
];

#[test]
fn two_isa_fleet_digests_are_pinned() {
    let print = std::env::var("FLICK_GOLDEN_PRINT").is_ok();
    for &(hosts, nxps, procs, seed, want) in GOLDENS {
        let got = golden_digest(hosts, nxps, procs, seed);
        if print {
            println!("    ({hosts}, {nxps}, {procs}, {seed}, {got:#018x}),");
        } else {
            assert_eq!(
                got, want,
                "{hosts}x{nxps} seed={seed}: golden digest moved \
                 ({got:#018x} != pinned {want:#018x})"
            );
        }
    }
}
