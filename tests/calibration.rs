//! Locks the paper's headline numbers in place: if a refactor drifts
//! the calibrated timing model, these tests fail before the bench
//! harnesses would show it.

use flick_sim::Picos;
use flick_workloads::chase::{run_chase, ChaseConfig, ChaseMode};
use flick_workloads::measure_null_call;
use flick_workloads::nullcall::decompose_round_trip;

fn within(measured: Picos, expected_us: f64, tol: f64) -> bool {
    let m = measured.as_micros_f64();
    (m - expected_us).abs() / expected_us <= tol
}

#[test]
fn table3_round_trips_within_two_percent() {
    let r = measure_null_call(2_000);
    assert!(
        within(r.host_nxp_host, 18.3, 0.02),
        "H-N-H drifted: {} vs paper 18.3us",
        r.host_nxp_host
    );
    assert!(
        within(r.nxp_host_nxp, 16.9, 0.02),
        "N-H-N drifted: {} vs paper 16.9us",
        r.nxp_host_nxp
    );
}

#[test]
fn page_fault_share_is_exactly_the_papers() {
    let r = measure_null_call(64);
    assert_eq!(r.page_fault_share, Picos::from_nanos(700));
}

#[test]
fn decomposition_is_complete_and_ordered() {
    let phases = decompose_round_trip();
    assert_eq!(phases.len(), 6);
    for p in &phases {
        assert!(p.duration > Picos::ZERO, "empty phase {}", p.name);
    }
    let total: Picos = phases.iter().map(|p| p.duration).sum();
    assert!(within(total, 18.3, 0.05), "decomposed total {total}");
}

#[test]
fn fig5a_crossover_and_plateau_shapes() {
    // Break-even between 24 and 48 accesses (paper ~32), plateau
    // between 2.3x and 2.9x (paper ~2.6x).
    let norm_at = |k: u64| {
        let base = run_chase(&ChaseConfig {
            calls: 6,
            ..ChaseConfig::frequent(k, ChaseMode::HostDirect)
        })
        .unwrap();
        let flick = run_chase(&ChaseConfig {
            calls: 6,
            ..ChaseConfig::frequent(k, ChaseMode::Flick)
        })
        .unwrap();
        base.per_call.as_nanos_f64() / flick.per_call.as_nanos_f64()
    };
    assert!(norm_at(24) < 1.0, "24 accesses must still lose");
    assert!(norm_at(48) > 1.0, "48 accesses must already win");
    let plateau = norm_at(1024);
    assert!(
        (2.3..2.9).contains(&plateau),
        "plateau {plateau:.2} out of band"
    );
}

#[test]
fn memory_calibration_points_hold_end_to_end() {
    // 825ns/node host-direct, ~310ns/node on the NxP — measured through
    // the full interpreter, not just the latency table.
    let host = run_chase(&ChaseConfig {
        calls: 4,
        ..ChaseConfig::frequent(512, ChaseMode::HostDirect)
    })
    .unwrap();
    let host_ns = host.per_node.as_nanos_f64();
    assert!((800.0..900.0).contains(&host_ns), "host {host_ns:.0}ns/node");
    let flick = run_chase(&ChaseConfig {
        calls: 4,
        ..ChaseConfig::frequent(512, ChaseMode::Flick)
    })
    .unwrap();
    // per_call includes one ~18us migration; remove it for the pure
    // per-node cost.
    let pure =
        (flick.per_call.as_nanos_f64() - 18_300.0) / 512.0;
    assert!((280.0..360.0).contains(&pure), "nxp {pure:.0}ns/node");
}
