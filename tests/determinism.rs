//! Differential determinism for parallel host execution.
//!
//! The `threads(n)` knob shards NxP leg execution across OS worker
//! threads. The contract is absolute: the merged timeline — exit
//! codes, simulated clocks, counters, the full event trace with core
//! tags, per-core stats, and observability spans — must be
//! bit-identical regardless of the worker count, of OS scheduling
//! between runs, and of whether chaos/failover plans are active. These
//! tests sweep `threads ∈ {1, 2, 4}` over clean fleets and over eight
//! seeded chaos+device-chaos schedules, and re-run each configuration
//! to shake out scheduling-dependent divergence.

use flick::{Machine, Outcome, Topology};
use flick_isa::{abi, FuncBuilder, TargetIsa};
use flick_sim::{FaultPlan, TraceConfig};
use flick_toolchain::ProgramBuilder;
use std::fmt::Write as _;

/// A process that ships `calls` chunks of spin work to the NxP and
/// exits with `calls * spin + tag`. The NxP function is pure, so
/// at-least-once re-execution after a device death is harmless.
fn worker(calls: i64, spin: i64, tag: i64) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("worker");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    main.li(abi::S1, calls);
    main.li(abi::S2, 0);
    main.bind(lp);
    main.li(abi::A0, spin);
    main.call("nxp_work");
    main.add(abi::S2, abi::S2, abi::A0);
    main.addi(abi::S1, abi::S1, -1);
    main.bne(abi::S1, abi::ZERO, lp);
    main.li(abi::T0, tag);
    main.add(abi::A0, abi::S2, abi::T0);
    main.call("flick_exit");
    p.func(main.finish());
    let mut f = FuncBuilder::new("nxp_work", TargetIsa::Nxp);
    let sl = f.new_label();
    let done = f.new_label();
    f.li(abi::T0, 0);
    f.bind(sl);
    f.bge(abi::T0, abi::A0, done);
    f.addi(abi::T0, abi::T0, 1);
    f.jmp(sl);
    f.bind(done);
    f.mv(abi::A0, abi::T0);
    f.ret();
    p.func(f.finish());
    p
}

/// Serializes every observable the machine exposes into one string:
/// any divergence between thread counts shows up as a text diff.
fn fingerprint(m: &Machine, done: &[(u64, Outcome)]) -> String {
    let mut s = String::new();
    for (pid, o) in done {
        let _ = writeln!(
            s,
            "pid {pid} exit {} at {:?} stats {:?}",
            o.exit_code, o.sim_time, o.stats
        );
    }
    let _ = writeln!(s, "host_now {:?}", m.host_now());
    let _ = writeln!(s, "machine_stats {:?}", m.stats());
    let _ = writeln!(s, "fault_counts {:?}", m.fault_counts());
    for (core, st) in m.per_core_stats() {
        let _ = writeln!(s, "core {core} {st:?}");
    }
    let _ = writeln!(s, "trace_len {} dropped {}", m.trace().len(), m.trace().dropped());
    for ((t, e), tag) in m.trace().events().iter().zip(m.trace().core_tags()) {
        let _ = writeln!(s, "{t:?} {tag:?} {e:?}");
    }
    for sp in m.spans() {
        let _ = writeln!(s, "span {sp:?}");
    }
    s
}

/// Builds a machine, runs `procs` workers concurrently, fingerprints.
fn run_fleet(
    topo: Topology,
    threads: usize,
    procs: i64,
    plan: Option<FaultPlan>,
) -> String {
    let mut b = Machine::builder()
        .topology(topo)
        .threads(threads)
        .observability(true)
        .trace(TraceConfig {
            enabled: true,
            capacity: 1 << 20,
        });
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    let mut m = b.build();
    let mut pids = Vec::new();
    for tag in 0..procs {
        pids.push(m.load_program(&mut worker(6, 2_000, tag * 100_000)).unwrap());
    }
    let done = m.run_concurrent(&pids, u64::MAX / 2).unwrap();
    fingerprint(&m, &done)
}

/// Asserts two fingerprints match, pointing at the first diverging
/// line rather than dumping megabytes of trace.
fn assert_same(label: &str, want: &str, got: &str) {
    if want == got {
        return;
    }
    for (i, (w, g)) in want.lines().zip(got.lines()).enumerate() {
        assert_eq!(w, g, "{label}: first divergence at fingerprint line {i}");
    }
    panic!(
        "{label}: fingerprints differ in length ({} vs {} lines)",
        want.lines().count(),
        got.lines().count()
    );
}

#[test]
fn clean_fleet_identical_across_thread_counts_1x1() {
    let topo = Topology::new(1, 1);
    let base = run_fleet(topo, 1, 3, None);
    for threads in [2, 4] {
        let got = run_fleet(topo, threads, 3, None);
        assert_same(&format!("1x1 threads={threads}"), &base, &got);
    }
}

#[test]
fn clean_fleet_identical_across_thread_counts_2x2() {
    let topo = Topology::new(2, 2);
    let base = run_fleet(topo, 1, 4, None);
    for threads in [2, 4] {
        let got = run_fleet(topo, threads, 4, None);
        assert_same(&format!("2x2 threads={threads}"), &base, &got);
    }
    // Repeat runs at the same worker count must also replay exactly:
    // OS scheduling between runs is not allowed to show through.
    let again = run_fleet(topo, 4, 4, None);
    assert_same("2x2 threads=4 repeat", &base, &again);
}

#[test]
fn wide_fleet_identical_across_thread_counts_4x4() {
    let topo = Topology::new(4, 4);
    let base = run_fleet(topo, 1, 8, None);
    for threads in [2, 4] {
        let got = run_fleet(topo, threads, 8, None);
        assert_same(&format!("4x4 threads={threads}"), &base, &got);
    }
}

#[test]
fn auto_thread_count_is_still_deterministic() {
    // threads(0) resolves to the host's core count — whatever that is
    // on the machine running this test, the timeline must not move.
    let topo = Topology::new(2, 2);
    let base = run_fleet(topo, 1, 4, None);
    let auto = run_fleet(topo, 0, 4, None);
    assert_same("2x2 threads=auto", &base, &auto);
}

#[test]
fn chaos_and_failover_seed_sweep_identical_across_thread_counts() {
    // Link chaos + seeded device deaths/rejoins layered together, the
    // harshest replay surface the machine has. Eight seeds, each run
    // at 1, 2 and 4 workers plus one repeat.
    let topo = Topology::new(2, 3);
    for seed in 1..=8u64 {
        // Fault-free twin bounds the device-chaos horizon (same recipe
        // as the failover example and tests).
        let clean = run_fleet(topo, 1, 4, None);
        let horizon = {
            // Cheap parse-free horizon: rebuild the clean machine once
            // to read its finish time.
            let mut m = Machine::builder().topology(topo).build();
            let mut pids = Vec::new();
            for tag in 0..4 {
                pids.push(m.load_program(&mut worker(6, 2_000, tag * 100_000)).unwrap());
            }
            m.run_concurrent(&pids, u64::MAX / 2).unwrap();
            m.host_now()
        };
        drop(clean);
        let plan = || {
            FaultPlan::chaos(seed)
                .with_device_events(FaultPlan::device_chaos(seed, 3, horizon))
        };
        let base = run_fleet(topo, 1, 4, Some(plan()));
        for threads in [2, 4] {
            let got = run_fleet(topo, threads, 4, Some(plan()));
            assert_same(&format!("seed={seed} threads={threads}"), &base, &got);
        }
        let again = run_fleet(topo, 4, 4, Some(plan()));
        assert_same(&format!("seed={seed} threads=4 repeat"), &base, &again);
    }
}
