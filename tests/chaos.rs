//! Chaos soak: randomized, seeded fault plans over full workloads.
//!
//! The recovery machinery (CRC + NAK + bounded retransmission, the
//! migration watchdog, duplicate discard) must make every injected
//! fault invisible to the program: results are bit-identical to a
//! fault-free run, only the timeline stretches. And because the fault
//! plan is seeded, every chaos run must replay bit-identically.

use flick::{Machine, Outcome};
use flick_isa::{abi, FuncBuilder, MemSize, TargetIsa};
use flick_sim::{FaultPlan, TraceConfig};
use flick_toolchain::{DataDef, ProgramBuilder};

const CHASE_LEN: u64 = 64;
const CHASE_STEPS: i64 = 48;

/// Index-chase table: entry `i` holds the next index. The traversal
/// sums visited indices, so any silently corrupted descriptor or
/// misdelivered wakeup shows up in the exit code.
fn chase_table() -> Vec<u8> {
    let mut bytes = Vec::with_capacity((CHASE_LEN * 8) as usize);
    for i in 0..CHASE_LEN {
        let next = (i.wrapping_mul(17).wrapping_add(5)) % CHASE_LEN;
        bytes.extend_from_slice(&next.to_le_bytes());
    }
    bytes
}

/// Null-call soak: four back-to-back migration round trips.
fn build_null_call(p: &mut ProgramBuilder) {
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::S1, 0);
    for k in 1..=4 {
        main.li(abi::A0, k);
        main.call("nxp_inc");
        main.add(abi::S1, abi::S1, abi::A0);
    }
    main.mv(abi::A0, abi::S1);
    main.call("flick_exit");
    p.func(main.finish());
    let mut inc = FuncBuilder::new("nxp_inc", TargetIsa::Nxp);
    inc.addi(abi::A0, abi::A0, 1);
    inc.ret();
    p.func(inc.finish());
}

/// Expected exit code of [`build_null_call`].
const NULL_CALL_EXIT: u64 = (1 + 1) + (2 + 1) + (3 + 1) + (4 + 1);

/// Pointer-chase soak with a nested cross-ISA ping-pong: one long NxP
/// leg (the chase) plus an NxP→host→NxP round trip.
fn build_chase(p: &mut ProgramBuilder) {
    p.data(DataDef::new("table", chase_table()));

    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li_sym(abi::A0, "table");
    main.li(abi::A1, CHASE_STEPS);
    main.call("nxp_chase");
    main.mv(abi::S1, abi::A0);
    main.li(abi::A0, 5);
    main.call("nxp_pingpong");
    main.add(abi::A0, abi::A0, abi::S1);
    main.call("flick_exit");
    p.func(main.finish());

    // sum += idx over CHASE_STEPS table hops starting at index 0.
    let mut chase = FuncBuilder::new("nxp_chase", TargetIsa::Nxp);
    chase.li(abi::T0, 0); // idx
    chase.li(abi::T1, 0); // sum
    chase.mv(abi::T2, abi::A1); // remaining
    let top = chase.new_label();
    let done = chase.new_label();
    chase.bind(top);
    chase.beq(abi::T2, abi::ZERO, done);
    chase.slli(abi::T3, abi::T0, 3);
    chase.add(abi::T3, abi::A0, abi::T3);
    chase.ld(abi::T0, abi::T3, 0, MemSize::B8);
    chase.add(abi::T1, abi::T1, abi::T0);
    chase.addi(abi::T2, abi::T2, -1);
    chase.jmp(top);
    chase.bind(done);
    chase.mv(abi::A0, abi::T1);
    chase.ret();
    p.func(chase.finish());

    let mut ping = FuncBuilder::new("nxp_pingpong", TargetIsa::Nxp);
    ping.prologue(16, &[]);
    ping.addi(abi::A0, abi::A0, 1);
    ping.call("host_leaf");
    ping.addi(abi::A0, abi::A0, 7);
    ping.epilogue(16, &[]);
    p.func(ping.finish());

    let mut leaf = FuncBuilder::new("host_leaf", TargetIsa::Host);
    leaf.slli(abi::T0, abi::A0, 1);
    leaf.add(abi::A0, abi::A0, abi::T0); // *3
    leaf.ret();
    p.func(leaf.finish());
}

/// Expected exit code of [`build_chase`], computed in plain Rust.
fn chase_exit() -> u64 {
    let table: Vec<u64> = chase_table()
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let (mut idx, mut sum) = (0u64, 0u64);
    for _ in 0..CHASE_STEPS {
        idx = table[idx as usize];
        sum = sum.wrapping_add(idx);
    }
    sum + ((5 + 1) * 3 + 7)
}

fn run_with(plan: Option<FaultPlan>, build: impl FnOnce(&mut ProgramBuilder)) -> (Machine, Outcome) {
    let mut p = ProgramBuilder::new("chaos");
    build(&mut p);
    let mut b = Machine::builder().trace(TraceConfig {
        enabled: true,
        capacity: 1 << 20,
    });
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    let mut m = b.build();
    let pid = m.load_program(&mut p).expect("load");
    let out = m.run(pid).expect("run");
    (m, out)
}

/// Checks one chaos run against its fault-free twin: identical results,
/// no degradation, and per-kind bookkeeping proving every injected
/// fault was detected and recovered.
fn check_against_clean(seed: u64, clean: &Outcome, m: &Machine, out: &Outcome) -> u64 {
    assert_eq!(out.exit_code, clean.exit_code, "seed {seed}: exit code diverged");
    assert_eq!(out.console, clean.console, "seed {seed}: console diverged");
    for key in [
        "migrations_host_to_nxp",
        "returns_host_to_nxp",
        "migrations_nxp_to_host",
        "returns_nxp_to_host",
    ] {
        assert_eq!(
            out.stats.get(key),
            clean.stats.get(key),
            "seed {seed}: protocol count {key} diverged"
        );
    }
    assert_eq!(out.stats.get("migrations_degraded"), 0, "seed {seed}");
    assert!(
        out.sim_time >= clean.sim_time,
        "seed {seed}: recovery cannot make the run faster"
    );

    // Every fault is accounted for by a matching recovery action.
    let c = m.fault_counts();
    assert_eq!(
        out.stats.get("crc_rejects"),
        c.corrupt_burst,
        "seed {seed}: every corrupted burst must be CRC-rejected"
    );
    assert_eq!(
        out.stats.get("retransmits"),
        c.corrupt_burst + c.drop_burst,
        "seed {seed}: every lost/corrupted burst must be retransmitted"
    );
    assert_eq!(
        out.stats.get("spurious_wakeups"),
        c.dup_msi,
        "seed {seed}: every duplicated MSI must be drained as spurious"
    );
    assert!(
        out.stats.get("watchdog_fires") >= c.drop_msi,
        "seed {seed}: every lost MSI must trip the watchdog"
    );
    assert!(
        out.stats.get("msi_losses_recovered") <= out.stats.get("watchdog_fires"),
        "seed {seed}"
    );
    c.total()
}

#[test]
fn chaos_soak_null_call() {
    let (_, clean) = run_with(None, build_null_call);
    assert_eq!(clean.exit_code, NULL_CALL_EXIT);
    let mut injected = 0;
    for seed in 1..=8 {
        let (m, out) = run_with(Some(FaultPlan::chaos(seed)), build_null_call);
        injected += check_against_clean(seed, &clean, &m, &out);
    }
    assert!(injected > 0, "the soak must actually inject faults");
}

#[test]
fn chaos_soak_pointer_chase() {
    let (_, clean) = run_with(None, build_chase);
    assert_eq!(clean.exit_code, chase_exit());
    let mut injected = 0;
    for seed in 100..=108 {
        let (m, out) = run_with(Some(FaultPlan::chaos(seed)), build_chase);
        injected += check_against_clean(seed, &clean, &m, &out);
    }
    assert!(injected > 0, "the soak must actually inject faults");
}

#[test]
fn same_seed_replays_bit_identically() {
    let (m1, o1) = run_with(Some(FaultPlan::chaos(0xD1CE)), build_chase);
    let (m2, o2) = run_with(Some(FaultPlan::chaos(0xD1CE)), build_chase);
    assert_eq!(o1.exit_code, o2.exit_code);
    assert_eq!(o1.sim_time, o2.sim_time);
    assert_eq!(m1.fault_counts(), m2.fault_counts());
    // Byte-identical traces: same events, same timestamps, same order.
    assert_eq!(m1.trace().events(), m2.trace().events());
    assert_eq!(
        format!("{:?}", m1.trace().events()),
        format!("{:?}", m2.trace().events())
    );
}

#[test]
fn different_seeds_usually_diverge() {
    // Sanity check that the soak is not vacuous: two different chaos
    // seeds should schedule different fault sequences.
    let (m1, _) = run_with(Some(FaultPlan::chaos(1)), build_null_call);
    let (m2, _) = run_with(Some(FaultPlan::chaos(2)), build_null_call);
    assert_ne!(
        m1.trace().events(),
        m2.trace().events(),
        "seeds 1 and 2 happened to produce identical runs; pick others"
    );
}

#[test]
fn zero_fault_plan_is_timeline_identical() {
    // The acceptance bar for the whole fault layer: a machine built
    // with an explicit FaultPlan::none() must be indistinguishable —
    // event for event, picosecond for picosecond — from one that never
    // mentions faults at all.
    let (base_m, base) = run_with(None, build_chase);
    let (none_m, none) = run_with(Some(FaultPlan::none()), build_chase);

    assert_eq!(base.exit_code, none.exit_code);
    assert_eq!(base.sim_time, none.sim_time);
    assert_eq!(base_m.trace().events(), none_m.trace().events());
    assert_eq!(none_m.fault_counts().total(), 0);
}

