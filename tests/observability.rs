//! Differential proof that the migration observability layer is inert:
//! a machine with spans/histograms enabled must produce **bit-identical**
//! simulated results — final clock, every stats counter, the full trace
//! event stream, exit code and console — to one with it off, for plain
//! and chaos-injected workloads alike. On top of that, the layer itself
//! must be deterministic (seeded chaos replays yield identical spans)
//! and useful (a 2×2 topology shows genuinely overlapping migrations,
//! and the Perfetto export is valid Chrome-trace JSON).

use flick::{chrome_trace, validate_json, Machine, Outcome, SpanStage, Topology};
use flick_isa::{abi, FuncBuilder, TargetIsa};
use flick_sim::{FaultPlan, TraceConfig};
use flick_toolchain::ProgramBuilder;

/// Four back-to-back migration round trips plus a nested ping-pong.
fn build_workload(p: &mut ProgramBuilder) {
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::S1, 0);
    for k in 1..=4 {
        main.li(abi::A0, k);
        main.call("nxp_inc");
        main.add(abi::S1, abi::S1, abi::A0);
    }
    main.li(abi::A0, 3);
    main.call("nxp_pingpong");
    main.add(abi::A0, abi::A0, abi::S1);
    main.call("flick_exit");
    p.func(main.finish());

    let mut inc = FuncBuilder::new("nxp_inc", TargetIsa::Nxp);
    inc.addi(abi::A0, abi::A0, 1);
    inc.ret();
    p.func(inc.finish());

    // NxP leg that calls back into host code: exercises the
    // NxP→host-call span as well as the return legs.
    let mut pp = FuncBuilder::new("nxp_pingpong", TargetIsa::Nxp);
    pp.prologue(16, &[]);
    pp.call("host_leaf");
    pp.epilogue(16, &[]);
    p.func(pp.finish());

    let mut leaf = FuncBuilder::new("host_leaf", TargetIsa::Host);
    leaf.slli(abi::T0, abi::A0, 1);
    leaf.add(abi::A0, abi::A0, abi::T0);
    leaf.ret();
    p.func(leaf.finish());
}

fn run_one(observability: bool, plan: Option<FaultPlan>) -> (Machine, Outcome) {
    let mut p = ProgramBuilder::new("obs");
    build_workload(&mut p);
    let mut b = Machine::builder()
        .observability(observability)
        .trace(TraceConfig {
            enabled: true,
            capacity: 1 << 20,
        });
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    let mut m = b.build();
    let pid = m.load_program(&mut p).expect("load");
    let out = m.run(pid).expect("run");
    (m, out)
}

/// Everything simulated must match between obs-on and obs-off runs.
fn assert_sim_identical(label: &str, plan: Option<FaultPlan>) -> (Machine, Outcome) {
    let (m_on, out_on) = run_one(true, plan.clone());
    let (m_off, out_off) = run_one(false, plan);

    assert_eq!(out_on.exit_code, out_off.exit_code, "{label}: exit code");
    assert_eq!(out_on.console, out_off.console, "{label}: console");
    assert_eq!(out_on.sim_time, out_off.sim_time, "{label}: final clock");

    // Counter identity: same keys, same values. (The obs-on run also
    // carries histograms, but those live in a separate map and must
    // never perturb the counters.)
    let counters_on: Vec<(&str, u64)> = out_on.stats.iter().collect();
    let counters_off: Vec<(&str, u64)> = out_off.stats.iter().collect();
    assert_eq!(counters_on, counters_off, "{label}: counters");

    // Byte-identical trace streams: same events, timestamps, order.
    assert_eq!(
        m_on.trace().events(),
        m_off.trace().events(),
        "{label}: trace"
    );

    // And the off side really recorded nothing.
    assert!(m_off.spans().is_empty(), "{label}: off side has spans");
    assert_eq!(
        m_off.observability_stats().hists().count(),
        0,
        "{label}: off side has histograms"
    );
    (m_on, out_on)
}

#[test]
fn observability_is_bit_inert_on_clean_runs() {
    let (m, out) = assert_sim_identical("clean", None);
    // The on side did record: one span per host suspension round trip.
    let expected = out.stats.get("migrations_host_to_nxp") + out.stats.get("returns_host_to_nxp");
    assert_eq!(m.spans().len(), expected as usize, "span per round trip");
    // Histograms rode into the outcome without touching counters.
    let total = out.stats.hist("span:total").expect("span:total histogram");
    assert_eq!(total.count(), expected);
    assert!(total.p50() > 0, "round trips take simulated time");
}

#[test]
fn observability_is_bit_inert_under_chaos() {
    for seed in [1u64, 3, 5, 0xD1CE] {
        assert_sim_identical(
            &format!("chaos seed {seed}"),
            Some(FaultPlan::chaos(seed)),
        );
    }
}

#[test]
fn chaos_replays_identically_with_observability_on() {
    for seed in [2u64, 7, 0xD1CE] {
        let (m1, o1) = run_one(true, Some(FaultPlan::chaos(seed)));
        let (m2, o2) = run_one(true, Some(FaultPlan::chaos(seed)));
        assert_eq!(o1.exit_code, o2.exit_code, "seed {seed}: exit");
        assert_eq!(o1.sim_time, o2.sim_time, "seed {seed}: clock");
        assert_eq!(m1.spans(), m2.spans(), "seed {seed}: spans replay");
        let h1: Vec<String> = m1
            .observability_stats()
            .hists()
            .map(|(k, h)| format!("{k}: {h}"))
            .collect();
        let h2: Vec<String> = m2
            .observability_stats()
            .hists()
            .map(|(k, h)| format!("{k}: {h}"))
            .collect();
        assert_eq!(h1, h2, "seed {seed}: histograms replay");
    }
}

#[test]
fn clean_call_span_visits_the_full_pipeline() {
    let (m, _) = run_one(true, None);
    let span = m
        .spans()
        .iter()
        .find(|s| s.label == "h2n-call")
        .expect("at least one call span");
    let stages: Vec<SpanStage> = span.marks().iter().map(|mk| mk.stage).collect();
    assert_eq!(
        stages,
        vec![
            SpanStage::NxFault,
            SpanStage::DescPack,
            SpanStage::DmaSubmit,
            SpanStage::NxpDispatch,
            SpanStage::NxpSubmit,
            SpanStage::MsiDelivery,
            SpanStage::Woken,
        ],
        "clean call pipeline"
    );
    // Marks are monotone in simulated time.
    for w in span.marks().windows(2) {
        assert!(w[0].at <= w[1].at, "span time went backwards");
    }
    // Queue-depth gauges were sampled on both directions.
    assert!(m.observability_stats().hist("qdepth:h2n:nxp0").is_some());
    assert!(m.observability_stats().hist("qdepth:n2h:nxp0").is_some());
}

/// A 2×2 machine running a fleet must show migrations genuinely in
/// flight at the same simulated instant — the paper's concurrency
/// story, now visible per-span.
#[test]
fn two_by_two_topology_overlaps_migrations() {
    let mut m = Machine::builder()
        .topology(Topology::new(2, 2))
        .observability(true)
        .build();
    let mut pids = Vec::new();
    for tag in 0..4i64 {
        let mut p = ProgramBuilder::new("fleet");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        let lp = main.new_label();
        main.li(abi::S1, 4);
        main.bind(lp);
        main.li(abi::A0, 2_000);
        main.call("nxp_spin");
        main.addi(abi::S1, abi::S1, -1);
        main.bne(abi::S1, abi::ZERO, lp);
        main.li(abi::A0, tag);
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_spin", TargetIsa::Nxp);
        let sl = f.new_label();
        let done = f.new_label();
        f.li(abi::T0, 0);
        f.bind(sl);
        f.bge(abi::T0, abi::A0, done);
        f.addi(abi::T0, abi::T0, 1);
        f.jmp(sl);
        f.bind(done);
        f.ret();
        p.func(f.finish());
        pids.push(m.load_program(&mut p).unwrap());
    }
    m.run_concurrent(&pids, u64::MAX / 2).unwrap();

    let spans = m.spans();
    assert!(spans.len() >= 8, "fleet produced {} spans", spans.len());
    let mut overlapping = 0usize;
    for (i, a) in spans.iter().enumerate() {
        for b in &spans[i + 1..] {
            if a.pid != b.pid && a.overlaps(b) {
                overlapping += 1;
            }
        }
    }
    assert!(
        overlapping >= 2,
        "expected concurrent in-flight migrations, found {overlapping} overlapping pairs"
    );

    // The Perfetto export of this run is valid Chrome-trace JSON with
    // per-core tracks and per-span async slices.
    let json = chrome_trace(m.trace(), spans);
    validate_json(&json).expect("export is valid JSON");
    assert!(json.contains("\"thread_name\""), "per-core track metadata");
    assert!(json.contains("host0") && json.contains("nxp1"), "core tracks");
    assert!(json.contains("\"cat\":\"migration\""), "async span events");
}

#[test]
fn export_of_empty_run_is_still_valid_json() {
    let m = Machine::builder().observability(true).build();
    let json = chrome_trace(m.trace(), m.spans());
    validate_json(&json).expect("empty export parses");
}
