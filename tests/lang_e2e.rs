//! End-to-end tests of the mini-language: programs written at the
//! C-like statement level, compiled for both ISAs, running on the full
//! machine with migrations.

use flick::Machine;
use flick_isa::lang::{compile_fn, FnDef, LExpr, Stmt};
use flick_isa::{abi, AluOp, BranchOp, FuncBuilder, MemSize, TargetIsa};
use std::ops::{Add, Mul};
use flick_toolchain::ProgramBuilder;

fn machine() -> Machine {
    Machine::builder()
        .trace(flick_sim::TraceConfig {
            enabled: false,
            capacity: 0,
        })
        .build()
}

/// gcd in the mini-language, placed on either side.
fn lang_gcd(name: &str, target: TargetIsa) -> FnDef {
    FnDef {
        name: name.into(),
        target,
        num_args: 2,
        num_locals: 3,
        body: vec![
            Stmt::Let(0, LExpr::Arg(0)),
            Stmt::Let(1, LExpr::Arg(1)),
            Stmt::While(
                (BranchOp::Ne, LExpr::Local(1), LExpr::Const(0)).into(),
                vec![
                    Stmt::Let(2, LExpr::Local(0).bin(AluOp::Remu, LExpr::Local(1))),
                    Stmt::Let(0, LExpr::Local(1)),
                    Stmt::Let(1, LExpr::Local(2)),
                ],
            ),
            Stmt::Return(LExpr::Local(0)),
        ],
    }
}

#[test]
fn lang_gcd_matches_rust_on_both_sides() {
    for target in [TargetIsa::Host, TargetIsa::Nxp] {
        let mut p = ProgramBuilder::new("lgcd");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.li(abi::A0, 252);
        main.li(abi::A1, 105);
        main.call("lgcd");
        main.call("flick_exit");
        p.func(main.finish());
        p.func(compile_fn(&lang_gcd("lgcd", target)).unwrap());
        let mut m = machine();
        let pid = m.load_program(&mut p).unwrap();
        assert_eq!(m.run(pid).unwrap().exit_code, 21, "{target}");
    }
}

#[test]
fn lang_collatz_with_if_inside_while() {
    // steps(n): count Collatz steps to 1.
    let def = FnDef {
        name: "steps".into(),
        target: TargetIsa::Nxp,
        num_args: 1,
        num_locals: 2,
        body: vec![
            Stmt::Let(0, LExpr::Arg(0)),
            Stmt::Let(1, LExpr::Const(0)),
            Stmt::While(
                (BranchOp::Ne, LExpr::Local(0), LExpr::Const(1)).into(),
                vec![
                    Stmt::If(
                        (
                            BranchOp::Eq,
                            LExpr::Local(0).bin(AluOp::And, LExpr::Const(1)),
                            LExpr::Const(0),
                        )
                            .into(),
                        vec![Stmt::Let(
                            0,
                            LExpr::Local(0).bin(AluOp::Srl, LExpr::Const(1)),
                        )],
                        vec![Stmt::Let(
                            0,
                            LExpr::Local(0).mul(LExpr::Const(3)).add(LExpr::Const(1)),
                        )],
                    ),
                    Stmt::Let(1, LExpr::Local(1).add(LExpr::Const(1))),
                ],
            ),
            Stmt::Return(LExpr::Local(1)),
        ],
    };
    let mut p = ProgramBuilder::new("collatz");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::A0, 27);
    main.call("steps");
    main.call("flick_exit");
    p.func(main.finish());
    p.func(compile_fn(&def).unwrap());
    let mut m = machine();
    let pid = m.load_program(&mut p).unwrap();
    // Reference: Collatz(27) takes 111 steps.
    let mut n = 27u64;
    let mut steps = 0;
    while n != 1 {
        n = if n.is_multiple_of(2) { n / 2 } else { 3 * n + 1 };
        steps += 1;
    }
    assert_eq!(m.run(pid).unwrap().exit_code, steps);
}

#[test]
fn lang_near_data_reduce_with_host_callbacks() {
    // A lang-written NxP reducer: sums 64-bit elements via Load in a
    // While, and calls a host-side progress function every 64 elements
    // — cross-ISA calls originating from *compiled* code.
    let reduce = FnDef {
        name: "reduce".into(),
        target: TargetIsa::Nxp,
        num_args: 2, // (ptr, n)
        num_locals: 3,
        body: vec![
            Stmt::Let(0, LExpr::Const(0)), // sum
            Stmt::Let(1, LExpr::Arg(0)),   // cursor
            Stmt::Let(2, LExpr::Const(0)), // index
            Stmt::While(
                (BranchOp::Ltu, LExpr::Local(2), LExpr::Arg(1)).into(),
                vec![
                    Stmt::Let(
                        0,
                        LExpr::Local(0)
                            .add(LExpr::Load(Box::new(LExpr::Local(1)), MemSize::B8)),
                    ),
                    Stmt::Let(1, LExpr::Local(1).add(LExpr::Const(8))),
                    Stmt::Let(2, LExpr::Local(2).add(LExpr::Const(1))),
                    Stmt::If(
                        (
                            BranchOp::Eq,
                            LExpr::Local(2).bin(AluOp::And, LExpr::Const(63)),
                            LExpr::Const(0),
                        )
                            .into(),
                        vec![Stmt::Expr(LExpr::Call(
                            "progress".into(),
                            vec![LExpr::Local(2)],
                        ))],
                        vec![],
                    ),
                ],
            ),
            Stmt::Return(LExpr::Local(0)),
        ],
    };
    let mut p = ProgramBuilder::new("reduce");
    p.data(flick_toolchain::DataDef::bss("rptr", 8));
    p.data(flick_toolchain::DataDef::bss("rlen", 8));
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li_sym(abi::T0, "rptr");
    main.ld(abi::A0, abi::T0, 0, MemSize::B8);
    main.li_sym(abi::T0, "rlen");
    main.ld(abi::A1, abi::T0, 0, MemSize::B8);
    main.call("reduce");
    main.call("flick_exit");
    p.func(main.finish());
    p.func(compile_fn(&reduce).unwrap());
    let mut progress = FuncBuilder::new("progress", TargetIsa::Host);
    progress.ret();
    p.func(progress.finish());

    let mut m = machine();
    let pid = m.load_program(&mut p).unwrap();
    let n = 200u64;
    let base = m.stage_alloc_nxp(pid, n * 8).unwrap();
    let mut bytes = Vec::new();
    for i in 0..n {
        bytes.extend_from_slice(&(i * i).to_le_bytes());
    }
    m.stage_write(pid, base, &bytes).unwrap();
    for (sym, v) in [("rptr", base.as_u64()), ("rlen", n)] {
        let va = m.symbol(pid, sym).unwrap();
        m.stage_write(pid, va, &v.to_le_bytes()).unwrap();
    }
    let out = m.run(pid).unwrap();
    let expected: u64 = (0..n).map(|i| i * i).sum();
    assert_eq!(out.exit_code, expected);
    // 200 elements → progress at 64 and 128 and 192 → 3 callbacks.
    assert_eq!(out.stats.get("migrations_nxp_to_host"), 3);
}

#[test]
fn lang_functions_call_each_other_across_isas() {
    // host_poly(x) = nxp_sq(x) * 2 + 1, both written in the language.
    let host_poly = FnDef {
        name: "host_poly".into(),
        target: TargetIsa::Host,
        num_args: 1,
        num_locals: 0,
        body: vec![Stmt::Return(
            LExpr::Call("nxp_sq".into(), vec![LExpr::Arg(0)])
                .mul(LExpr::Const(2))
                .add(LExpr::Const(1)),
        )],
    };
    let nxp_sq = FnDef {
        name: "nxp_sq".into(),
        target: TargetIsa::Nxp,
        num_args: 1,
        num_locals: 0,
        body: vec![Stmt::Return(LExpr::Arg(0).mul(LExpr::Arg(0)))],
    };
    let mut p = ProgramBuilder::new("poly");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::A0, 9);
    main.call("host_poly");
    main.call("flick_exit");
    p.func(main.finish());
    p.func(compile_fn(&host_poly).unwrap());
    p.func(compile_fn(&nxp_sq).unwrap());
    let mut m = machine();
    let pid = m.load_program(&mut p).unwrap();
    let out = m.run(pid).unwrap();
    assert_eq!(out.exit_code, 9 * 9 * 2 + 1);
    assert_eq!(out.stats.get("migrations_host_to_nxp"), 1);
}
