//! The open-loop serving scenario, end to end: seed/thread-count
//! determinism, overload behaviour of the admission path, and the
//! tenant-serialization invariant.

use flick::NxpPlacement;
use flick_workloads::serving::{
    gen_requests, kind, run_serving_scenario, summarize, ArrivalModel, ServingScenario,
};

fn base() -> ServingScenario {
    ServingScenario {
        tenants: 12,
        requests: 250,
        offered_rps: 30_000.0,
        ..ServingScenario::default()
    }
}

/// The headline determinism claim: the whole load sweep — completion
/// order, every latency, every counter — is bit-identical across
/// reruns and across worker-thread counts.
#[test]
fn serving_replays_bit_identically_across_threads_and_reruns() {
    for seed in [1u64, 0xBEEF] {
        let mut golden = None;
        for threads in [1usize, 4, 1] {
            let cfg = ServingScenario {
                seed,
                threads,
                ..base()
            };
            let r = run_serving_scenario(&cfg).unwrap();
            assert_eq!(r.completions.len(), cfg.requests);
            let fingerprint = (
                r.completions.clone(),
                r.finished_at,
                r.stats.get("migrations_host_to_nxp"),
                r.stats.get("admission_rejects"),
                r.stats.get("nx_faults"),
                r.stats.get("retransmits"),
            );
            match &golden {
                None => golden = Some(fingerprint),
                Some(g) => assert_eq!(
                    g, &fingerprint,
                    "seed {seed} threads {threads} diverged from golden"
                ),
            }
        }
    }
}

/// Bursty arrivals replay bit-identically too (the MMPP generator and
/// the machine share no state, but the schedule feeds queueing
/// decisions everywhere).
#[test]
fn mmpp_serving_is_deterministic() {
    let cfg = ServingScenario {
        arrivals: ArrivalModel::Mmpp {
            burst_factor: 6.0,
            mean_dwell_us: 150.0,
        },
        ..base()
    };
    let a = run_serving_scenario(&cfg).unwrap();
    let b = run_serving_scenario(&cfg).unwrap();
    assert_eq!(a.completions, b.completions);
    assert_eq!(a.finished_at, b.finished_at);
}

/// Offered load far past ring capacity: the occupancy admission path
/// must actually reject at the doorbell, the run must still complete
/// every request (rejects retry or degrade, never vanish), and the
/// whole overloaded run must replay bit-identically.
#[test]
fn overload_rejects_at_admission_and_replays() {
    let cfg = ServingScenario {
        tenants: 24,
        requests: 400,
        offered_rps: 2_000_000.0, // far past the fleet's drain rate
        observability: true,
        ..ServingScenario::default()
    };
    let r = run_serving_scenario(&cfg).unwrap();
    assert_eq!(r.completions.len(), cfg.requests);
    let s = summarize(&cfg, &r);
    assert!(
        s.admission_rejects > 0,
        "overload must hit the admission path, stats: rejects={}",
        s.admission_rejects
    );
    // Queueing delay must dominate the tail relative to an unloaded
    // fleet's round trip (~15 µs): p99.9 at 50x saturation is far out.
    assert!(
        s.p999_ns > s.p50_ns,
        "tail must exceed median: p50={} p999={}",
        s.p50_ns,
        s.p999_ns
    );
    // The h2n queue-depth gauges the observability layer records stay
    // bounded by the ring capacity (admission is what bounds them).
    for (name, h) in r.stats.hists() {
        if name.starts_with("qdepth:h2n:") {
            assert!(
                h.max() <= 4,
                "{name} exceeded ring capacity: max={}",
                h.max()
            );
        }
    }
    // Bit-identical replay of the overloaded run.
    let again = run_serving_scenario(&cfg).unwrap();
    assert_eq!(r.completions, again.completions);
    assert_eq!(
        r.stats.get("admission_rejects"),
        again.stats.get("admission_rejects")
    );
}

/// Without the occupancy knob the doorbell never fills under pure
/// overload (the wall ring drains before each kick) — the knob is what
/// turns offered-load pressure into typed backpressure.
#[test]
fn occupancy_knob_is_what_creates_overload_rejects() {
    let mk = |ring_admission: bool| ServingScenario {
        tenants: 16,
        requests: 250,
        offered_rps: 2_000_000.0,
        ring_admission,
        ..ServingScenario::default()
    };
    let with = run_serving_scenario(&mk(true)).unwrap();
    let without = run_serving_scenario(&mk(false)).unwrap();
    assert!(with.stats.get("admission_rejects") > 0);
    assert_eq!(without.stats.get("admission_rejects"), 0);
    // Both complete the full schedule either way.
    assert_eq!(with.completions.len(), 250);
    assert_eq!(without.completions.len(), 250);
}

/// One tenant, many requests: tenants serialize, so completions are in
/// arrival order and each later request's latency includes its queueing
/// delay (open-loop accounting).
#[test]
fn single_tenant_serializes_in_arrival_order() {
    let cfg = ServingScenario {
        tenants: 1,
        requests: 40,
        offered_rps: 500_000.0, // arrivals much faster than service
        ..ServingScenario::default()
    };
    let r = run_serving_scenario(&cfg).unwrap();
    assert_eq!(r.completions.len(), 40);
    for w in r.completions.windows(2) {
        assert!(
            w[0].request < w[1].request,
            "single tenant must complete FIFO: {:?} then {:?}",
            w[0],
            w[1]
        );
        assert!(w[0].finished <= w[1].finished);
    }
    // The last request queued behind ~39 service times; its latency
    // must dwarf the first's.
    let first = r.completions.first().unwrap().latency();
    let last = r.completions.last().unwrap().latency();
    assert!(
        last > first * 4,
        "queueing delay must accumulate: first={first} last={last}"
    );
}

/// Placement policies and quantum sizes all serve the schedule
/// completely and deterministically; ISA-aware narrowing keeps kv
/// requests on arm64 slots even under least-loaded placement.
#[test]
fn placement_policies_serve_the_same_schedule() {
    for placement in [NxpPlacement::RoundRobin, NxpPlacement::LeastLoaded] {
        for quantum in [5_000u64, 50_000] {
            let cfg = ServingScenario {
                placement,
                quantum,
                ..base()
            };
            let r = run_serving_scenario(&cfg).unwrap();
            assert_eq!(r.completions.len(), cfg.requests, "{placement:?}/{quantum}");
            let reqs = gen_requests(&cfg);
            for c in &r.completions {
                if reqs[c.request].arg == kind::NULL {
                    assert_eq!(c.exit_code, 42);
                }
            }
        }
    }
}
