//! End-to-end integration tests spanning the whole stack: toolchain →
//! image serialisation → loader → machine → migration.

use flick::Machine;
use flick_isa::{abi, FuncBuilder, MemSize, TargetIsa};
use flick_mem::VirtAddr;
use flick_sim::Picos;
use flick_toolchain::{DataDef, MultiIsaImage, Placement, ProgramBuilder};

fn machine() -> Machine {
    Machine::paper_default()
}

#[test]
fn image_survives_serialisation_and_runs() {
    // Build → serialise to the FLK1 container → parse → load → run:
    // the full "compile once, ship one binary" pipeline of §IV-C.
    let mut p = ProgramBuilder::new("serde");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::A0, 5);
    main.li(abi::A1, 9);
    main.call("nxp_mul");
    main.call("flick_exit");
    p.func(main.finish());
    let mut f = FuncBuilder::new("nxp_mul", TargetIsa::Nxp);
    f.mul(abi::A0, abi::A0, abi::A1);
    f.ret();
    p.func(f.finish());
    flick::handlers::add_runtime(&mut p);

    let image = p.build().unwrap();
    let bytes = image.to_bytes();
    let reloaded = MultiIsaImage::from_bytes(&bytes).unwrap();

    let mut m = machine();
    let pid = m.load(&reloaded).unwrap();
    assert_eq!(m.run(pid).unwrap().exit_code, 45);
}

#[test]
fn all_six_arguments_cross_the_boundary() {
    let mut p = ProgramBuilder::new("args");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    for (i, reg) in [abi::A0, abi::A1, abi::A2, abi::A3, abi::A4, abi::A5]
        .iter()
        .enumerate()
    {
        main.li(*reg, (i as i64 + 1) * 100);
    }
    main.call("nxp_sum6");
    main.call("flick_exit");
    p.func(main.finish());
    // nxp_sum6 then calls host_sum3 with three derived args, proving
    // argument marshalling in the other direction too.
    let mut f = FuncBuilder::new("nxp_sum6", TargetIsa::Nxp);
    f.prologue(16, &[]);
    f.add(abi::A0, abi::A0, abi::A1);
    f.add(abi::A0, abi::A0, abi::A2);
    f.add(abi::A0, abi::A0, abi::A3);
    f.add(abi::A0, abi::A0, abi::A4);
    f.add(abi::A0, abi::A0, abi::A5); // 2100
    f.li(abi::A1, 10);
    f.li(abi::A2, 1);
    f.call("host_sum3");
    f.epilogue(16, &[]);
    p.func(f.finish());
    let mut h = FuncBuilder::new("host_sum3", TargetIsa::Host);
    h.add(abi::A0, abi::A0, abi::A1);
    h.add(abi::A0, abi::A0, abi::A2);
    h.ret();
    p.func(h.finish());

    let mut m = machine();
    let pid = m.load_program(&mut p).unwrap();
    assert_eq!(m.run(pid).unwrap().exit_code, 2111);
}

#[test]
fn nxp_sums_array_staged_in_nxp_dram() {
    // Host-side staging writes an array into NxP DRAM; the NxP sums it
    // locally; the host gets the result back. Pointers pass unchanged
    // thanks to the unified address space (§III-A).
    let mut p = ProgramBuilder::new("sumarr");
    p.data(DataDef::bss("arr_ptr", 8));
    p.data(DataDef::bss("arr_len", 8));
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li_sym(abi::T0, "arr_ptr");
    main.ld(abi::A0, abi::T0, 0, MemSize::B8);
    main.li_sym(abi::T0, "arr_len");
    main.ld(abi::A1, abi::T0, 0, MemSize::B8);
    main.call("nxp_sum_array");
    main.call("flick_exit");
    p.func(main.finish());
    let mut f = FuncBuilder::new("nxp_sum_array", TargetIsa::Nxp);
    let lp = f.new_label();
    let done = f.new_label();
    f.li(abi::T0, 0);
    f.bind(lp);
    f.beq(abi::A1, abi::ZERO, done);
    f.ld(abi::T1, abi::A0, 0, MemSize::B8);
    f.add(abi::T0, abi::T0, abi::T1);
    f.addi(abi::A0, abi::A0, 8);
    f.addi(abi::A1, abi::A1, -1);
    f.jmp(lp);
    f.bind(done);
    f.mv(abi::A0, abi::T0);
    f.ret();
    p.func(f.finish());

    let mut m = machine();
    let pid = m.load_program(&mut p).unwrap();
    let n = 257u64;
    let arr = m.stage_alloc_nxp(pid, n * 8).unwrap();
    let mut bytes = Vec::new();
    for i in 0..n {
        bytes.extend_from_slice(&(i * 3).to_le_bytes());
    }
    m.stage_write(pid, arr, &bytes).unwrap();
    for (sym, val) in [("arr_ptr", arr.as_u64()), ("arr_len", n)] {
        let va = m.symbol(pid, sym).unwrap();
        m.stage_write(pid, va, &val.to_le_bytes()).unwrap();
    }
    let expected: u64 = (0..n).map(|i| i * 3).sum();
    assert_eq!(m.run(pid).unwrap().exit_code, expected);
}

#[test]
fn caller_stack_pointer_works_across_isas() {
    // §III-D: "in the rare event that a callee function uses pointers
    // to access data on the caller's stack frame, the unified address
    // space ensures correct execution". The host passes a pointer to
    // its own stack; the NxP reads and writes through it.
    let mut p = ProgramBuilder::new("stackptr");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.addi(abi::SP, abi::SP, -16);
    main.li(abi::T0, 4242);
    main.st(abi::T0, abi::SP, 0, MemSize::B8);
    main.mv(abi::A0, abi::SP); // pointer into the HOST stack
    main.call("nxp_incr_through_ptr");
    main.ld(abi::A0, abi::SP, 0, MemSize::B8); // NxP wrote it
    main.addi(abi::SP, abi::SP, 16);
    main.call("flick_exit");
    p.func(main.finish());
    let mut f = FuncBuilder::new("nxp_incr_through_ptr", TargetIsa::Nxp);
    f.ld(abi::T0, abi::A0, 0, MemSize::B8);
    f.addi(abi::T0, abi::T0, 1);
    f.st(abi::T0, abi::A0, 0, MemSize::B8);
    f.ret();
    p.func(f.finish());

    let mut m = machine();
    let pid = m.load_program(&mut p).unwrap();
    assert_eq!(m.run(pid).unwrap().exit_code, 4243);
}

#[test]
fn twenty_level_cross_isa_recursion() {
    // 20! through alternating ISAs: 10 host→NxP and 10 NxP→host legs
    // of nested, reentrant handler frames.
    let mut p = ProgramBuilder::new("deep");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::A0, 20);
    main.call("host_fact");
    main.call("flick_exit");
    p.func(main.finish());
    for (name, callee, target) in [
        ("host_fact", "nxp_fact", TargetIsa::Host),
        ("nxp_fact", "host_fact", TargetIsa::Nxp),
    ] {
        let mut f = FuncBuilder::new(name, target);
        let base = f.new_label();
        f.prologue(32, &[abi::S1]);
        f.beq(abi::A0, abi::ZERO, base);
        f.mv(abi::S1, abi::A0);
        f.addi(abi::A0, abi::A0, -1);
        f.call(callee);
        f.mul(abi::A0, abi::A0, abi::S1);
        f.epilogue(32, &[abi::S1]);
        f.bind(base);
        f.li(abi::A0, 1);
        f.epilogue(32, &[abi::S1]);
        p.func(f.finish());
    }
    let mut m = machine();
    let pid = m.load_program(&mut p).unwrap();
    let out = m.run(pid).unwrap();
    assert_eq!(out.exit_code, (1..=20u64).product());
    assert_eq!(out.stats.get("migrations_host_to_nxp"), 10);
    assert_eq!(out.stats.get("migrations_nxp_to_host"), 10);
}

#[test]
fn same_computation_same_result_either_placement() {
    // The §III programming-model promise: moving a function across the
    // ISA boundary changes performance, never semantics.
    let build = |target: TargetIsa| {
        let mut p = ProgramBuilder::new("either");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.li(abi::A0, 12345);
        main.call("work");
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("work", target);
        let lp = f.new_label();
        let done = f.new_label();
        // Collatz-step count for a fixed start (bounded).
        f.li(abi::T0, 0);
        f.bind(lp);
        f.li(abi::T1, 1);
        f.beq(abi::A0, abi::T1, done);
        f.andi(abi::T2, abi::A0, 1);
        let odd = f.new_label();
        let next = f.new_label();
        f.bne(abi::T2, abi::ZERO, odd);
        f.srli(abi::A0, abi::A0, 1);
        f.jmp(next);
        f.bind(odd);
        f.li(abi::T1, 3);
        f.mul(abi::A0, abi::A0, abi::T1);
        f.addi(abi::A0, abi::A0, 1);
        f.bind(next);
        f.addi(abi::T0, abi::T0, 1);
        f.jmp(lp);
        f.bind(done);
        f.mv(abi::A0, abi::T0);
        f.ret();
        p.func(f.finish());
        p
    };
    let run = |mut p: ProgramBuilder| {
        let mut m = machine();
        let pid = m.load_program(&mut p).unwrap();
        m.run(pid).unwrap()
    };
    let host = run(build(TargetIsa::Host));
    let nxp = run(build(TargetIsa::Nxp));
    assert_eq!(host.exit_code, nxp.exit_code, "placement must not change semantics");
    assert_eq!(host.stats.get("nx_faults"), 0);
    assert_eq!(nxp.stats.get("nx_faults"), 1);
    // The NxP runs the loop slower, plus one migration round trip.
    assert!(nxp.sim_time > host.sim_time);
}

#[test]
fn migration_time_scales_linearly_with_call_count() {
    let run_n = |n: i64| {
        let mut p = ProgramBuilder::new("linear");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        let lp = main.new_label();
        main.call("nxp_nop"); // warm-up: stack alloc
        main.li(abi::S1, n);
        main.call("flick_clock_ns");
        main.mv(abi::S2, abi::A0);
        main.bind(lp);
        main.call("nxp_nop");
        main.addi(abi::S1, abi::S1, -1);
        main.bne(abi::S1, abi::ZERO, lp);
        main.call("flick_clock_ns");
        main.sub(abi::A0, abi::A0, abi::S2);
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_nop", TargetIsa::Nxp);
        f.ret();
        p.func(f.finish());
        let mut m = machine();
        let pid = m.load_program(&mut p).unwrap();
        Picos::from_nanos(m.run(pid).unwrap().exit_code)
    };
    let t8 = run_n(8);
    let t64 = run_n(64);
    let ratio = t64.as_nanos_f64() / t8.as_nanos_f64();
    assert!((7.5..8.5).contains(&ratio), "8x calls → ~8x time, got {ratio:.2}");
}

#[test]
fn unified_address_space_pointer_identity() {
    // A pointer produced on the host names the same bytes on the NxP:
    // host stages a value, passes the raw pointer, NxP dereferences.
    let mut p = ProgramBuilder::new("ptr-identity");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.call("malloc_nxp_wrapper");
    main.call("flick_exit");
    p.func(main.finish());
    // wrapper: p = malloc_nxp(64); *p = 777; return nxp_deref(p)
    let mut w = FuncBuilder::new("malloc_nxp_wrapper", TargetIsa::Host);
    w.prologue(16, &[]);
    w.li(abi::A0, 64);
    w.call("malloc_nxp");
    w.li(abi::T0, 777);
    w.st(abi::T0, abi::A0, 0, MemSize::B8);
    w.call("nxp_deref");
    w.epilogue(16, &[]);
    p.func(w.finish());
    let mut d = FuncBuilder::new("nxp_deref", TargetIsa::Nxp);
    d.ld(abi::A0, abi::A0, 0, MemSize::B8);
    d.ret();
    p.func(d.finish());

    let mut m = machine();
    let pid = m.load_program(&mut p).unwrap();
    assert_eq!(m.run(pid).unwrap().exit_code, 777);
}

#[test]
fn nxp_data_annotation_lands_in_nxp_storage() {
    // §III-D source directives: data annotated for NxP placement is
    // physically in NxP DRAM and the VA is inside the NxP window.
    let mut p = ProgramBuilder::new("placement");
    p.data(DataDef::new("near_data", vec![0xAB; 8]).placed(Placement::NxpDram));
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li_sym(abi::T0, "near_data");
    main.ld(abi::A0, abi::T0, 0, MemSize::B1);
    main.call("flick_exit");
    p.func(main.finish());
    let mut m = machine();
    let pid = m.load_program(&mut p).unwrap();
    let va = m.symbol(pid, "near_data").unwrap();
    assert!(va >= VirtAddr(flick_toolchain::layout::NXP_WINDOW_VA));
    assert_eq!(m.run(pid).unwrap().exit_code, 0xAB);
}
