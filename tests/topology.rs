//! Topology tests: the N×M machine must replay bit-identically run
//! after run on every topology, the 1×1 configuration must reproduce
//! the pre-topology machine picosecond-for-picosecond, and a wider
//! topology must actually overlap migrations in simulated time.

use flick::{Machine, NxpPlacement, Topology};
use flick_isa::{abi, FuncBuilder, MemSize, TargetIsa};
use flick_sim::{CoreId, Event, FaultPlan, Picos, TraceConfig};
use flick_toolchain::{DataDef, ProgramBuilder};

const CHASE_LEN: u64 = 64;
const CHASE_STEPS: i64 = 48;

fn chase_table() -> Vec<u8> {
    let mut bytes = Vec::with_capacity((CHASE_LEN * 8) as usize);
    for i in 0..CHASE_LEN {
        let next = (i.wrapping_mul(17).wrapping_add(5)) % CHASE_LEN;
        bytes.extend_from_slice(&next.to_le_bytes());
    }
    bytes
}

/// main() calls nxp_inc(k) for k = 1..=4 and exits with the sum.
fn build_null_call(p: &mut ProgramBuilder) {
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::S1, 0);
    for k in 1..=4 {
        main.li(abi::A0, k);
        main.call("nxp_inc");
        main.add(abi::S1, abi::S1, abi::A0);
    }
    main.mv(abi::A0, abi::S1);
    main.call("flick_exit");
    p.func(main.finish());
    let mut inc = FuncBuilder::new("nxp_inc", TargetIsa::Nxp);
    inc.addi(abi::A0, abi::A0, 1);
    inc.ret();
    p.func(inc.finish());
}

/// Pointer chase on the NxP plus a host-calling ping-pong leg — the
/// workload the chaos golden was captured with.
fn build_chase(p: &mut ProgramBuilder) {
    p.data(DataDef::new("table", chase_table()));
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li_sym(abi::A0, "table");
    main.li(abi::A1, CHASE_STEPS);
    main.call("nxp_chase");
    main.mv(abi::S1, abi::A0);
    main.li(abi::A0, 5);
    main.call("nxp_pingpong");
    main.add(abi::A0, abi::A0, abi::S1);
    main.call("flick_exit");
    p.func(main.finish());
    let mut chase = FuncBuilder::new("nxp_chase", TargetIsa::Nxp);
    chase.li(abi::T0, 0);
    chase.li(abi::T1, 0);
    chase.mv(abi::T2, abi::A1);
    let top = chase.new_label();
    let done = chase.new_label();
    chase.bind(top);
    chase.beq(abi::T2, abi::ZERO, done);
    chase.slli(abi::T3, abi::T0, 3);
    chase.add(abi::T3, abi::A0, abi::T3);
    chase.ld(abi::T0, abi::T3, 0, MemSize::B8);
    chase.add(abi::T1, abi::T1, abi::T0);
    chase.addi(abi::T2, abi::T2, -1);
    chase.jmp(top);
    chase.bind(done);
    chase.mv(abi::A0, abi::T1);
    chase.ret();
    p.func(chase.finish());
    let mut ping = FuncBuilder::new("nxp_pingpong", TargetIsa::Nxp);
    ping.prologue(16, &[]);
    ping.addi(abi::A0, abi::A0, 1);
    ping.call("host_leaf");
    ping.addi(abi::A0, abi::A0, 7);
    ping.epilogue(16, &[]);
    p.func(ping.finish());
    let mut leaf = FuncBuilder::new("host_leaf", TargetIsa::Host);
    leaf.slli(abi::T0, abi::A0, 1);
    leaf.add(abi::A0, abi::A0, abi::T0);
    leaf.ret();
    p.func(leaf.finish());
}

/// A process that calls an NxP spin function `calls` times.
fn migration_loop_program(calls: i64, spin: i64, tag: i64) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("loop");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    main.li(abi::S1, calls);
    main.li(abi::S2, 0);
    main.bind(lp);
    main.li(abi::A0, spin);
    main.call("nxp_spin");
    main.add(abi::S2, abi::S2, abi::A0);
    main.addi(abi::S1, abi::S1, -1);
    main.bne(abi::S1, abi::ZERO, lp);
    main.li(abi::T0, tag);
    main.add(abi::A0, abi::S2, abi::T0);
    main.call("flick_exit");
    p.func(main.finish());
    let mut f = FuncBuilder::new("nxp_spin", TargetIsa::Nxp);
    let sl = f.new_label();
    let done = f.new_label();
    f.li(abi::T0, 0);
    f.bind(sl);
    f.bge(abi::T0, abi::A0, done);
    f.addi(abi::T0, abi::T0, 1);
    f.jmp(sl);
    f.bind(done);
    f.mv(abi::A0, abi::T0);
    f.ret();
    p.func(f.finish());
    p
}

fn traced_builder() -> flick::MachineBuilder {
    Machine::builder().trace(TraceConfig {
        enabled: true,
        capacity: 1 << 20,
    })
}

// ---------------------------------------------------------------------
// 1×1 must be bit-identical to the pre-topology machine. The constants
// below were captured from the fixed host+NxP-pair implementation
// immediately before the topology refactor; any drift in timing,
// counters or trace length is a regression.
// ---------------------------------------------------------------------

#[test]
fn one_by_one_null_call_matches_pre_topology_golden() {
    let mut p = ProgramBuilder::new("g");
    build_null_call(&mut p);
    let mut m = traced_builder().build();
    assert_eq!(m.topology(), Topology::single());
    let pid = m.load_program(&mut p).unwrap();
    let out = m.run(pid).unwrap();
    assert_eq!(out.exit_code, 14);
    assert_eq!(out.sim_time.as_picos(), 86_634_287);
    assert_eq!(m.trace().len(), 36);
    for (key, want) in [
        ("instructions", 77),
        ("nxp_instructions", 63),
        ("migrations_host_to_nxp", 4),
        ("returns_nxp_to_host", 4),
        ("nx_faults", 4),
        ("nxp_stack_allocs", 1),
        ("loads", 20),
        ("stores", 8),
        ("walks", 4),
        ("nxp_loads", 32),
        ("nxp_stores", 4),
        ("nxp_walks", 2),
        ("itlb_misses", 2),
        ("dtlb_misses", 2),
        ("icache_misses", 5),
        ("dcache_misses", 2),
        ("nxp_itlb_misses", 1),
        ("nxp_dtlb_misses", 1),
        ("nxp_icache_misses", 3),
    ] {
        assert_eq!(out.stats.get(key), want, "stat {key} drifted");
    }
}

#[test]
fn one_by_one_chaos_chase_matches_pre_topology_golden() {
    let mut p = ProgramBuilder::new("g");
    build_chase(&mut p);
    let mut m = traced_builder().fault_plan(FaultPlan::chaos(0xD1CE)).build();
    let pid = m.load_program(&mut p).unwrap();
    let out = m.run(pid).unwrap();
    assert_eq!(out.exit_code, 1553);
    assert_eq!(out.sim_time.as_picos(), 536_091_133);
    assert_eq!(m.trace().len(), 39);
    assert_eq!(m.fault_counts().total(), 4);
    for (key, want) in [
        ("crc_rejects", 1),
        ("faults_injected", 4),
        ("msi_losses_recovered", 1),
        ("retransmits", 3),
        ("watchdog_fires", 2),
        ("migrations_host_to_nxp", 2),
        ("migrations_nxp_to_host", 1),
        ("returns_host_to_nxp", 1),
        ("returns_nxp_to_host", 2),
        ("nxp_exec_faults", 1),
        ("instructions", 57),
        ("nxp_instructions", 390),
    ] {
        assert_eq!(out.stats.get(key), want, "stat {key} drifted");
    }
}

#[test]
fn one_by_one_concurrent_matches_pre_topology_golden() {
    let mut m = traced_builder().build();
    let mut pids = Vec::new();
    for tag in 0..3i64 {
        let mut p = migration_loop_program(3, 50, tag * 1000);
        pids.push(m.load_program(&mut p).unwrap());
    }
    let done = m.run_concurrent(&pids, u64::MAX / 2).unwrap();
    assert_eq!(m.host_now().as_picos(), 150_695_000);
    assert_eq!(m.trace().len(), 81);
    let sim: Vec<(u64, u64, u64)> = done
        .iter()
        .map(|(pid, o)| (*pid, o.exit_code, o.sim_time.as_picos()))
        .collect();
    assert_eq!(
        sim,
        vec![
            (pids[0], 150, 147_980_018),
            (pids[1], 1150, 149_337_509),
            (pids[2], 2150, 150_695_000),
        ]
    );
}

#[test]
fn one_by_one_concurrent_pair_matches_pre_topology_golden() {
    let mut m = traced_builder().build();
    let mut p1 = migration_loop_program(8, 2_000, 1);
    let mut p2 = migration_loop_program(8, 2_000, 2);
    let a = m.load_program(&mut p1).unwrap();
    let b = m.load_program(&mut p2).unwrap();
    let done = m.run_concurrent(&[a, b], u64::MAX / 2).unwrap();
    assert_eq!(m.host_now().as_picos(), 975_512_734);
    assert_eq!(m.trace().len(), 144);
    let by_pid: std::collections::HashMap<u64, u64> = done
        .iter()
        .map(|(pid, o)| (*pid, o.sim_time.as_picos()))
        .collect();
    assert_eq!(by_pid[&a], 916_312_734);
    assert_eq!(by_pid[&b], 975_512_734);
}

// ---------------------------------------------------------------------
// Every topology must replay bit-identically: same programs, same
// machine configuration → same exit codes, same picosecond timeline,
// same trace, run after run.
// ---------------------------------------------------------------------

/// Everything an identical replay must reproduce: per-pid
/// (pid, exit_code, sim_time_ps), final host time, and the full trace.
type Fingerprint = (Vec<(u64, u64, u64)>, u64, Vec<(Picos, Event)>);

/// Runs the 4-process migration workload on `topology` and returns
/// everything an identical replay must reproduce.
fn concurrent_fingerprint(topology: Topology, plan: Option<FaultPlan>) -> Fingerprint {
    let mut b = traced_builder().topology(topology);
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    let mut m = b.build();
    let mut pids = Vec::new();
    for tag in 0..4i64 {
        let mut p = migration_loop_program(3, 400, tag * 10_000);
        pids.push(m.load_program(&mut p).unwrap());
    }
    let done = m.run_concurrent(&pids, u64::MAX / 2).unwrap();
    let outcomes = done
        .iter()
        .map(|(pid, o)| (*pid, o.exit_code, o.sim_time.as_picos()))
        .collect();
    (outcomes, m.host_now().as_picos(), m.trace().events().to_vec())
}

#[test]
fn every_topology_replays_bit_identically() {
    for (h, n) in [(1, 1), (2, 1), (2, 2)] {
        let topo = Topology::new(h, n);
        let first = concurrent_fingerprint(topo, None);
        let second = concurrent_fingerprint(topo, None);
        assert_eq!(first.0, second.0, "{topo}: outcomes diverged");
        assert_eq!(first.1, second.1, "{topo}: host_now diverged");
        assert_eq!(first.2, second.2, "{topo}: trace diverged");
        // All four processes exit with calls*spin + tag.
        for (i, (_, code, _)) in first.0.iter().enumerate() {
            assert_eq!(code % 10_000, 1200, "{topo}: pid #{i} wrong sum");
        }
    }
}

#[test]
fn chaos_fault_plan_replays_bit_identically_on_2x2() {
    let topo = Topology::new(2, 2);
    let first = concurrent_fingerprint(topo, Some(FaultPlan::chaos(0xBEEF)));
    let second = concurrent_fingerprint(topo, Some(FaultPlan::chaos(0xBEEF)));
    assert_eq!(first.0, second.0, "chaos outcomes diverged");
    assert_eq!(first.1, second.1, "chaos host_now diverged");
    assert_eq!(first.2, second.2, "chaos trace diverged");
}

// ---------------------------------------------------------------------
// The point of M > 1: migrations from different threads must actually
// overlap in simulated time, with both NxPs doing work.
// ---------------------------------------------------------------------

#[test]
fn two_nxps_overlap_migrations_in_simulated_time() {
    let mut m = traced_builder().topology(Topology::new(2, 2)).build();
    let mut pids = Vec::new();
    for tag in 0..4i64 {
        let mut p = migration_loop_program(4, 1_000, tag * 100_000);
        pids.push(m.load_program(&mut p).unwrap());
    }
    let done = m.run_concurrent(&pids, u64::MAX / 2).unwrap();
    assert_eq!(done.len(), 4);

    // Reconstruct each thread's suspended intervals from the trace:
    // ThreadSuspended { pid } .. ThreadWoken { pid } brackets one
    // in-flight migration.
    let mut open: std::collections::HashMap<u64, Picos> = std::collections::HashMap::new();
    let mut intervals: Vec<(u64, Picos, Picos)> = Vec::new();
    for (at, ev) in m.trace().events() {
        match ev {
            Event::ThreadSuspended { pid } => {
                open.insert(*pid, *at);
            }
            Event::ThreadWoken { pid } => {
                let start = open.remove(pid).expect("woken thread was suspended");
                intervals.push((*pid, start, *at));
            }
            _ => {}
        }
    }
    assert!(intervals.len() >= 16, "4 procs × 4 calls migrate");
    let mut overlapping = 0usize;
    for (i, a) in intervals.iter().enumerate() {
        for b in &intervals[i + 1..] {
            if a.0 != b.0 && a.1 < b.2 && b.1 < a.2 {
                overlapping += 1;
            }
        }
    }
    assert!(
        overlapping >= 2,
        "expected ≥2 concurrent in-flight migrations, saw {overlapping}"
    );

    // Both NxPs served work (round-robin placement spreads the calls),
    // and the per-core breakdown agrees.
    let per_core = m.per_core_stats();
    for want in [CoreId::nxp(0), CoreId::nxp(1)] {
        let (_, stats) = per_core
            .iter()
            .find(|(core, _)| *core == want)
            .expect("per-core stats cover every NxP");
        assert!(stats.get("instructions") > 0, "{want} never ran");
    }
    for nc in 0..2 {
        assert!(
            m.trace().events_on(CoreId::nxp(nc)).count() > 0,
            "nxp{nc} recorded no events"
        );
    }
    // Host-side instruction counts across cores sum to the aggregate.
    let outcome_insts = done.last().unwrap().1.stats.get("instructions");
    let per_core_sum: u64 = per_core
        .iter()
        .filter(|(core, _)| core.side == flick_sim::trace::Side::Host)
        .map(|(_, s)| s.get("instructions"))
        .sum();
    assert_eq!(per_core_sum, outcome_insts);
}

#[test]
fn least_loaded_placement_also_uses_both_nxps() {
    let mut m = Machine::builder()
        .topology(Topology::new(1, 2))
        .nxp_placement(NxpPlacement::LeastLoaded)
        .build();
    let mut pids = Vec::new();
    for tag in 0..2i64 {
        let mut p = migration_loop_program(3, 500, tag * 10_000);
        pids.push(m.load_program(&mut p).unwrap());
    }
    m.run_concurrent(&pids, u64::MAX / 2).unwrap();
    let per_core = m.per_core_stats();
    for want in [CoreId::nxp(0), CoreId::nxp(1)] {
        let (_, stats) = per_core
            .iter()
            .find(|(core, _)| *core == want)
            .expect("per-core stats cover every NxP");
        assert!(stats.get("instructions") > 0, "{want} never ran");
    }
}

#[test]
fn wider_topology_finishes_sooner() {
    // Same 4-process workload; more NxPs → less queueing at the device
    // → earlier completion. (Host cores help too: 2×2 beats 1×1.)
    let host_now = |topo: Topology| {
        let mut m = Machine::builder().topology(topo).build();
        let mut pids = Vec::new();
        for tag in 0..4i64 {
            let mut p = migration_loop_program(4, 2_000, tag * 100_000);
            pids.push(m.load_program(&mut p).unwrap());
        }
        m.run_concurrent(&pids, u64::MAX / 2).unwrap();
        m.host_now()
    };
    let narrow = host_now(Topology::new(1, 1));
    let wide = host_now(Topology::new(2, 2));
    assert!(
        wide.as_nanos_f64() < narrow.as_nanos_f64() * 0.75,
        "2x2 ({wide}) should beat 1x1 ({narrow}) clearly"
    );
}
