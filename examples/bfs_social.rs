//! The §V-C application: BFS over a social graph stored in NxP memory,
//! with a per-vertex host callback — run fully interpreted on the
//! simulated machine, in both placements.
//!
//! Run with: `cargo run --release --example bfs_social`

use flick_workloads::bfs::{run_bfs, BfsConfig, BfsMode};
use flick_workloads::graph::rmat;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small social-like graph (the full Table IV harness lives in
    // `cargo run -p flick-bench --bin table4`).
    let g = rmat(4_000, 48_000, 2026);
    println!(
        "graph: {} vertices, {} edges ({} KiB in NxP DRAM)\n",
        g.v,
        g.e(),
        g.storage_bytes() / 1024
    );

    let base = run_bfs(
        &g,
        &BfsConfig {
            iterations: 2,
            mode: BfsMode::HostDirect,
            seed: 5,
        },
    )?;
    let flick = run_bfs(
        &g,
        &BfsConfig {
            iterations: 2,
            mode: BfsMode::Flick,
            seed: 5,
        },
    )?;

    println!("baseline (host traverses over PCIe): {} per iteration", base.per_iteration);
    println!(
        "flick (NxP traverses, host callback):  {} per iteration",
        flick.per_iteration
    );
    println!(
        "\ndiscovered {} vertices; Flick migrated {} times for callbacks",
        flick.discovered, flick.callback_migrations
    );
    assert_eq!(base.discovered, flick.discovered, "same traversal result");
    let ratio = base.per_iteration.as_nanos_f64() / flick.per_iteration.as_nanos_f64();
    println!(
        "Flick {} by {:.2}x on this edge/vertex ratio ({:.1} edges/vertex)",
        if ratio >= 1.0 { "wins" } else { "loses" },
        if ratio >= 1.0 { ratio } else { 1.0 / ratio },
        g.e() as f64 / g.v as f64
    );
    Ok(())
}
