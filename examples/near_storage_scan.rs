//! Near-storage key-value filtering — the intro's NVMe-NxP motivation
//! as a running application, with a selectivity sweep showing where
//! migrating the scan to the data pays off.
//!
//! Run with: `cargo run --release --example near_storage_scan`

use flick_workloads::kvscan::{run_kvscan, KvConfig, KvMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let records = 20_000u64;
    println!("scanning {records} 32-byte records stored in NxP DRAM;");
    println!("each match hands (key, value) to host-side program logic\n");
    println!(
        "{:>12} {:>8} {:>14} {:>14} {:>10}",
        "selectivity", "matches", "host-direct", "flick", "speedup"
    );
    for ppm in [100u64, 1_000, 10_000, 50_000, 150_000, 400_000] {
        let mk = |mode| KvConfig {
            records,
            selectivity_ppm: ppm,
            mode,
            seed: 11,
        };
        let h = run_kvscan(&mk(KvMode::HostDirect))?;
        let f = run_kvscan(&mk(KvMode::Flick))?;
        assert_eq!(h.matches, f.matches);
        println!(
            "{:>11.2}% {:>8} {:>14} {:>14} {:>9.2}x",
            ppm as f64 / 10_000.0,
            f.matches,
            format!("{}", h.scan_time),
            format!("{}", f.scan_time),
            h.scan_time.as_nanos_f64() / f.scan_time.as_nanos_f64()
        );
    }
    println!("\nLow selectivity: the scan is pure near-data work and Flick");
    println!("approaches the memory-latency ratio. High selectivity: one");
    println!("migration per match and the host-direct baseline wins —");
    println!("the same trade Table IV shows across graph densities.");
    Ok(())
}
