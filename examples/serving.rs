//! The datacenter-serving scenario end to end: a multi-tenant fleet
//! under seeded open-loop load, driven to saturation, with the
//! tail-latency table and an optional Perfetto timeline of the
//! saturated fleet (one track per simulated core, one async slice per
//! migration — open it in <https://ui.perfetto.dev>).
//!
//! Run with: `cargo run --release --example serving`
//!
//! Flags (all optional):
//!
//! - `--tenants N` — tenant processes (default 32, max 250)
//! - `--requests N` — open-loop schedule length (default 400)
//! - `--rps F` — offered load, requests/simulated-second (default
//!   100000 — just past the knee)
//! - `--threads N` — OS worker threads (default 1; the simulated
//!   result is bit-identical at any value)
//! - `--seed N` — schedule / layout seed (default scenario seed)
//! - `--sweep` — run the whole load sweep 25k..400k and print the
//!   saturation table instead of a single point
//! - `--timeline P` — also export the run as a Perfetto trace to `P`

use flick::{chrome_trace_named, validate_json, SpanStage};
use flick_workloads::serving::{
    build_serving_fleet, gen_requests, run_serving_scenario, summarize, ServingScenario,
};

fn scenario(rps: f64) -> ServingScenario {
    ServingScenario {
        tenants: 32,
        requests: 400,
        offered_rps: rps,
        observability: true,
        ..ServingScenario::default()
    }
}

fn print_summary(s: &flick_workloads::serving::ServingSummary) {
    println!(
        "offered {:>8.0} rps | goodput {:>8.0} rps | p50 {:>9} ns | p99 {:>9} ns | \
         p99.9 {:>9} ns | rejects {:>4} | migrations {:>5} | sim {:>7.2} ms",
        s.offered_rps,
        s.goodput_rps,
        s.p50_ns,
        s.p99_ns,
        s.p999_ns,
        s.admission_rejects,
        s.migrations,
        s.sim_ms
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut cfg = scenario(100_000.0);
    let mut sweep = false;
    let mut timeline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} needs a value"))
        };
        match a.as_str() {
            "--tenants" => cfg.tenants = val("--tenants")?.parse()?,
            "--requests" => cfg.requests = val("--requests")?.parse()?,
            "--rps" => cfg.offered_rps = val("--rps")?.parse()?,
            "--threads" => cfg.threads = val("--threads")?.parse()?,
            "--seed" => cfg.seed = val("--seed")?.parse()?,
            "--sweep" => sweep = true,
            "--timeline" => timeline = Some(val("--timeline")?),
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }

    if sweep {
        println!(
            "load sweep: {} tenants, {} requests/point, {} fleet, threads={}",
            cfg.tenants, cfg.requests, cfg.topology, cfg.threads
        );
        for rps in [25_000.0, 50_000.0, 100_000.0, 200_000.0, 400_000.0] {
            let point = ServingScenario {
                offered_rps: rps,
                ..cfg.clone()
            };
            let report = run_serving_scenario(&point)?;
            print_summary(&summarize(&point, &report));
        }
        return Ok(());
    }

    // Single point, with enough instrumentation for the timeline.
    cfg.trace = timeline.is_some();
    let (mut m, tenants) = build_serving_fleet(&cfg)?;
    let reqs = gen_requests(&cfg);
    let report = m.run_serving(&tenants, &reqs, u64::MAX, cfg.quantum)?;
    println!(
        "{} tenants on {} ({} threads), {} open-loop requests:",
        cfg.tenants, cfg.topology, cfg.threads, cfg.requests
    );
    print_summary(&summarize(&cfg, &report));

    // Where a migration's time goes at this load, per pipeline stage.
    println!("\nper-stage migration latency (ns):");
    let stages = [
        SpanStage::NxFault,
        SpanStage::DescPack,
        SpanStage::DmaSubmit,
        SpanStage::NxpDispatch,
        SpanStage::NxpSubmit,
        SpanStage::MsiDelivery,
        SpanStage::Woken,
    ];
    for w in stages.windows(2) {
        let key = format!("seg:{}->{}", w[0].label(), w[1].label());
        if let Some(h) = m.observability_stats().hist(&key) {
            println!(
                "  {:<28} n={:<5} p50={:>11.1} p99={:>11.1} max={:>11.1}",
                key,
                h.count(),
                h.p50() as f64 / 1e3,
                h.p99() as f64 / 1e3,
                h.max() as f64 / 1e3,
            );
        }
    }
    println!("\ndescriptor-ring depth at kick (admission bounds these):");
    for (name, h) in m.observability_stats().hists() {
        if name.starts_with("qdepth:h2n:") {
            println!("  {:<24} n={:<5} p50={} max={}", name, h.count(), h.p50(), h.max());
        }
    }

    if let Some(path) = timeline {
        let json = chrome_trace_named(m.trace(), m.spans(), m.track_namer());
        validate_json(&json).map_err(|at| format!("export is not valid JSON (byte {at})"))?;
        std::fs::write(&path, &json)?;
        println!(
            "\nwrote {path} ({} bytes) — open it in https://ui.perfetto.dev",
            json.len()
        );
    }
    Ok(())
}
