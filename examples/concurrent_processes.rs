//! The payoff of suspend-based migration: while one thread is on the
//! NxP, the host core runs other processes.
//!
//! Flick suspends the migrating thread (`TASK_KILLABLE`) instead of
//! busy-waiting, so the host core is *free* during the NxP leg. This
//! example runs two NxP-heavy processes serially and then concurrently
//! and shows the overlap.
//!
//! Run with: `cargo run --release --example concurrent_processes`

use flick::Machine;
use flick_isa::{abi, FuncBuilder, TargetIsa};
use flick_toolchain::ProgramBuilder;

/// A process that ships `calls` chunks of work to the NxP.
fn worker(calls: i64, spin: i64) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("worker");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    main.li(abi::S1, calls);
    main.bind(lp);
    main.li(abi::A0, spin);
    main.call("nxp_work");
    main.addi(abi::S1, abi::S1, -1);
    main.bne(abi::S1, abi::ZERO, lp);
    main.li(abi::A0, 0);
    main.call("flick_exit");
    p.func(main.finish());
    let mut f = FuncBuilder::new("nxp_work", TargetIsa::Nxp);
    let sl = f.new_label();
    let done = f.new_label();
    f.li(abi::T0, 0);
    f.bind(sl);
    f.bge(abi::T0, abi::A0, done);
    f.addi(abi::T0, abi::T0, 1);
    f.jmp(sl);
    f.bind(done);
    f.ret();
    p.func(f.finish());
    p
}

/// A host-only compute process (never migrates).
fn host_cruncher(iters: i64) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("cruncher");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    main.li(abi::S1, iters);
    main.bind(lp);
    main.addi(abi::A0, abi::A0, 3);
    main.addi(abi::S1, abi::S1, -1);
    main.bne(abi::S1, abi::ZERO, lp);
    main.call("flick_exit");
    p.func(main.finish());
    p
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (calls, spin) = (10, 4_000); // each call ≈ 60 µs of NxP time
    let crunch = 1_500_000; // ≈ 600 µs of pure host compute

    // Serial.
    let mut m = Machine::paper_default();
    let a = m.load_program(&mut worker(calls, spin))?;
    let b = m.load_program(&mut host_cruncher(crunch))?;
    m.run(a)?;
    m.run(b)?;
    let serial = m.host_now();

    // Concurrent: B computes on the host while A waits on the NxP.
    let mut m = Machine::paper_default();
    let a = m.load_program(&mut worker(calls, spin))?;
    let b = m.load_program(&mut host_cruncher(crunch))?;
    m.run_concurrent(&[a, b], u64::MAX / 2)?;
    let concurrent = m.host_now();

    println!("one NxP-heavy process ({calls} migrations) + one host-bound process:");
    println!("  serial:     {serial}");
    println!("  concurrent: {concurrent}");
    println!(
        "  overlap recovered {:.0}% of the serial time",
        (1.0 - concurrent.as_nanos_f64() / serial.as_nanos_f64()) * 100.0
    );
    println!("\nThe suspended thread costs the host nothing — that is what");
    println!("TASK_KILLABLE suspension (instead of polling) buys (§IV-D).");
    Ok(())
}
