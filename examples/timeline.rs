//! Migration observability end to end: run a fleet on an N×M machine
//! with span recording on, print the latency breakdown (where does the
//! ~1.8 µs of a cross-ISA call go?), and export the whole run as a
//! Perfetto/Chrome trace you can open in <https://ui.perfetto.dev> —
//! one track per simulated core, one async slice per migration, so a
//! 2×2 run visibly shows migrations in flight *concurrently*.
//!
//! Run with: `cargo run --release --example timeline -- 2 2`
//! (arguments are `<host_cores> <nxp_cores> [out.json]`, default 2 2
//! flick-timeline.json; add `--isas rv64,arm64` for a heterogeneous
//! accelerator fleet — each Perfetto track is then named with its
//! core's ISA, e.g. `nxp1 (arm64)`), then load the JSON in
//! ui.perfetto.dev or `chrome://tracing`.

use flick::{chrome_trace_named, validate_json, Machine, SpanStage, Topology};
use flick_isa::{abi, FuncBuilder, IsaId, TargetIsa};
use flick_toolchain::ProgramBuilder;

/// A process that ships `calls` chunks of accelerator work, cycling
/// over the fleet's distinct ISAs, tagged per process.
fn worker(isas: &[IsaId], calls: i64, spin: i64, tag: i64) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("worker");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    main.li(abi::S1, calls);
    main.li(abi::S2, 0);
    main.bind(lp);
    for isa in isas {
        main.li(abi::A0, spin);
        main.call(&format!("work_{}", isa.name()));
        main.add(abi::S2, abi::S2, abi::A0);
    }
    main.addi(abi::S1, abi::S1, -1);
    main.bne(abi::S1, abi::ZERO, lp);
    main.li(abi::T0, tag);
    main.add(abi::A0, abi::S2, abi::T0);
    main.call("flick_exit");
    p.func(main.finish());
    for isa in isas {
        let target = if *isa == IsaId::Arm64 { TargetIsa::Arm64 } else { TargetIsa::Nxp };
        let mut f = FuncBuilder::new(format!("work_{}", isa.name()), target);
        let sl = f.new_label();
        let done = f.new_label();
        f.li(abi::T0, 0);
        f.bind(sl);
        f.bge(abi::T0, abi::A0, done);
        f.addi(abi::T0, abi::T0, 1);
        f.jmp(sl);
        f.bind(done);
        f.mv(abi::A0, abi::T0);
        f.ret();
        p.func(f.finish());
    }
    p
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut positional = Vec::new();
    let mut isas = vec![IsaId::Rv64];
    let mut raw = std::env::args().skip(1);
    while let Some(a) = raw.next() {
        if a == "--isas" {
            let v = raw.next().ok_or("--isas needs a comma-separated list")?;
            isas = v
                .split(',')
                .map(|name| {
                    IsaId::from_name(name)
                        .filter(|i| i.descriptor().nx_text)
                        .ok_or_else(|| format!("unknown accelerator ISA: {name}"))
                })
                .collect::<Result<_, _>>()?;
        } else {
            positional.push(a);
        }
    }
    let mut args = positional.into_iter();
    let hosts: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(2);
    let nxps: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(2);
    let out_path = args.next().unwrap_or_else(|| "flick-timeline.json".into());
    let topo = Topology::new(hosts, nxps);
    let slots: Vec<IsaId> = (0..nxps).map(|i| isas[i % isas.len()]).collect();
    let mut fleet_isas: Vec<IsaId> = Vec::new();
    for isa in &slots {
        if !fleet_isas.contains(isa) {
            fleet_isas.push(*isa);
        }
    }

    let mut m = Machine::builder()
        .topology(topo)
        .nxp_isas(slots)
        .observability(true)
        .build();
    let (procs, calls, spin) = (4, 6, 3_000);
    let mut pids = Vec::new();
    for tag in 0..procs {
        pids.push(m.load_program(&mut worker(&fleet_isas, calls, spin, tag * 100_000))?);
    }
    m.run_concurrent(&pids, u64::MAX / 2)?;

    println!("topology {topo}: {procs} processes x {calls} NxP calls each\n");

    // Per-segment latency breakdown across every completed migration.
    println!("migration latency breakdown (all times in ns):");
    let stages = [
        SpanStage::NxFault,
        SpanStage::DescPack,
        SpanStage::DmaSubmit,
        SpanStage::NxpDispatch,
        SpanStage::NxpSubmit,
        SpanStage::MsiDelivery,
        SpanStage::Woken,
    ];
    for w in stages.windows(2) {
        let key = format!("seg:{}->{}", w[0].label(), w[1].label());
        if let Some(h) = m.observability_stats().hist(&key) {
            println!(
                "  {:<24} n={:<4} p50={:>9.1} p90={:>9.1} p99={:>9.1} max={:>9.1}",
                key,
                h.count(),
                h.p50() as f64 / 1e3,
                h.p90() as f64 / 1e3,
                h.p99() as f64 / 1e3,
                h.max() as f64 / 1e3,
            );
        }
    }
    if let Some(h) = m.observability_stats().hist("span:total") {
        println!(
            "  {:<24} n={:<4} p50={:>9.1} p90={:>9.1} p99={:>9.1} max={:>9.1}",
            "span:total",
            h.count(),
            h.p50() as f64 / 1e3,
            h.p90() as f64 / 1e3,
            h.p99() as f64 / 1e3,
            h.max() as f64 / 1e3,
        );
    }

    println!("\ndescriptor-channel queue depth (bursts in ring at kick):");
    for (name, h) in m.observability_stats().hists() {
        if name.starts_with("qdepth:") {
            println!("  {:<24} n={:<4} p50={} max={}", name, h.count(), h.p50(), h.max());
        }
    }

    // How concurrent was the run? Count span pairs in flight together.
    let spans = m.spans();
    let mut overlapping = 0usize;
    for (i, a) in spans.iter().enumerate() {
        for b in &spans[i + 1..] {
            if a.pid != b.pid && a.overlaps(b) {
                overlapping += 1;
            }
        }
    }
    println!(
        "\n{} migrations completed, {overlapping} cross-process pairs overlapped in flight",
        spans.len()
    );

    // Export and sanity-check the Perfetto/Chrome trace. Track names
    // carry each core's ISA (from its descriptor) so heterogeneous
    // timelines stay readable.
    let json = chrome_trace_named(m.trace(), spans, m.track_namer());
    validate_json(&json).map_err(|at| format!("export is not valid JSON (byte {at})"))?;
    std::fs::write(&out_path, &json)?;
    println!(
        "\nwrote {} ({} bytes) — open it in https://ui.perfetto.dev or chrome://tracing",
        out_path,
        json.len()
    );
    Ok(())
}
