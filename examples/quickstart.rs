//! Quickstart: one program, two ISAs, transparent migration.
//!
//! Builds a dual-ISA program where `main` (host) calls `nxp_sum_range`
//! (NxP). The call site is an ordinary `call` — no offload API, no
//! descriptors in user code. The host faults on the NX page, Flick
//! migrates the thread, the NxP computes, and the return migrates back.
//!
//! Run with: `cargo run --release --example quickstart`

use flick::Machine;
use flick_isa::{abi, FuncBuilder, TargetIsa};
use flick_toolchain::ProgramBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut program = ProgramBuilder::new("quickstart");

    // fn main() { let s = nxp_sum_range(1, 100); print(s); exit(s) }
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::A0, 1);
    main.li(abi::A1, 100);
    main.call("nxp_sum_range"); // <- crosses the ISA boundary
    main.mv(abi::S1, abi::A0);
    main.call("flick_print_u64");
    main.mv(abi::A0, abi::S1);
    main.call("flick_exit");
    program.func(main.finish());

    // fn nxp_sum_range(lo, hi) -> sum(lo..=hi), annotated for the NxP.
    let mut f = FuncBuilder::new("nxp_sum_range", TargetIsa::Nxp);
    let lp = f.new_label();
    let done = f.new_label();
    f.li(abi::T0, 0);
    f.bind(lp);
    f.bgeu(abi::A0, abi::A1, done);
    f.add(abi::T0, abi::T0, abi::A0);
    f.addi(abi::A0, abi::A0, 1);
    f.jmp(lp);
    f.bind(done);
    f.add(abi::T0, abi::T0, abi::A1); // include hi
    f.mv(abi::A0, abi::T0);
    f.ret();
    program.func(f.finish());

    let mut machine = Machine::paper_default();
    let pid = machine.load_program(&mut program)?;
    let outcome = machine.run(pid)?;

    println!("console output: {:?}", outcome.console);
    println!("exit code:      {} (expected 5050)", outcome.exit_code);
    println!("simulated time: {}", outcome.sim_time);
    println!(
        "migrations:     {} host->NxP call, {} NxP->host return",
        outcome.stats.get("migrations_host_to_nxp"),
        outcome.stats.get("returns_nxp_to_host"),
    );
    println!(
        "NX faults:      {} (the migration trigger)",
        outcome.stats.get("nx_faults")
    );
    assert_eq!(outcome.exit_code, 5050);
    Ok(())
}
