//! Fleet failover: NxP crash/hot-unplug with deterministic recovery.
//!
//! Builds a 2 host × 3 NxP machine, runs a fleet of NxP-heavy
//! processes, and kills devices mid-run from a seeded schedule. The
//! failover orchestrator detects each death (retry-budget exhaustion,
//! or instantly on hot-unplug), quiesces the channel, and re-places the
//! victim work on survivors — every process still exits with the same
//! code as on a fault-free run. Prints the health ledger, the failover
//! counters, and the failure-domain slice of the timeline.
//!
//! Run with: `cargo run --release --example failover -- 7`
//! (the argument is the chaos seed, default 7; add `--threads N` or
//! `--threads auto` to shard host execution across OS worker threads —
//! recovery stays bit-identical regardless of the worker count)

use flick::{Machine, Topology};
use flick_isa::{abi, FuncBuilder, TargetIsa};
use flick_sim::{Event, FaultPlan, TraceConfig};
use flick_toolchain::ProgramBuilder;

/// A process that ships `calls` chunks of spin work to the NxP and
/// exits with `calls * spin + tag`.
fn worker(calls: i64, spin: i64, tag: i64) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("worker");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    main.li(abi::S1, calls);
    main.li(abi::S2, 0);
    main.bind(lp);
    main.li(abi::A0, spin);
    main.call("nxp_work");
    main.add(abi::S2, abi::S2, abi::A0);
    main.addi(abi::S1, abi::S1, -1);
    main.bne(abi::S1, abi::ZERO, lp);
    main.li(abi::T0, tag);
    main.add(abi::A0, abi::S2, abi::T0);
    main.call("flick_exit");
    p.func(main.finish());
    let mut f = FuncBuilder::new("nxp_work", TargetIsa::Nxp);
    let sl = f.new_label();
    let done = f.new_label();
    f.li(abi::T0, 0);
    f.bind(sl);
    f.bge(abi::T0, abi::A0, done);
    f.addi(abi::T0, abi::T0, 1);
    f.jmp(sl);
    f.bind(done);
    f.mv(abi::A0, abi::T0);
    f.ret();
    p.func(f.finish());
    p
}

/// Per-pid `(pid, exit_code)` pairs, sorted by pid.
type ExitCodes = Vec<(u64, u64)>;

fn run(
    topo: Topology,
    threads: usize,
    plan: Option<FaultPlan>,
) -> Result<(Machine, ExitCodes), Box<dyn std::error::Error>> {
    let mut b = Machine::builder()
        .topology(topo)
        .threads(threads)
        .trace(TraceConfig {
            enabled: true,
            capacity: 1 << 20,
        });
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    let mut m = b.build();
    let mut pids = Vec::new();
    for tag in 0..4 {
        pids.push(m.load_program(&mut worker(6, 2_000, tag * 100_000))?);
    }
    let done = m.run_concurrent(&pids, u64::MAX / 2)?;
    let mut codes: Vec<(u64, u64)> = done.iter().map(|(pid, o)| (*pid, o.exit_code)).collect();
    codes.sort_unstable();
    Ok((m, codes))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut seed: u64 = 7;
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            let v = args.next().ok_or("--threads needs a value (N or auto)")?;
            threads = if v == "auto" { 0 } else { v.parse()? };
        } else {
            seed = a.parse()?;
        }
    }
    let topo = Topology::new(2, 3);

    // Fault-free twin first: its finish time bounds the chaos horizon
    // and its exit codes are the bar the chaos run must clear.
    let (clean_m, clean) = run(topo, threads, None)?;
    let horizon = clean_m.host_now();

    let events = FaultPlan::device_chaos(seed, 3, horizon);
    println!("seed {seed}: scheduling {} device event(s)", events.len());
    for e in &events {
        match e.rejoin_at {
            Some(back) => println!("  nxp{} {} at {} (rejoins {})", e.nxp, e.kind.label(), e.at, back),
            None => println!("  nxp{} {} at {} (never returns)", e.nxp, e.kind.label(), e.at),
        }
    }
    let plan = FaultPlan::chaos(seed).with_device_events(events);
    let (m, codes) = run(topo, threads, Some(plan))?;

    println!("\nresults (vs fault-free twin):");
    for ((pid, code), (_, want)) in codes.iter().zip(clean.iter()) {
        let ok = if code == want { "ok" } else { "DIVERGED" };
        println!("  pid {pid}: exit {code:>6}  {ok}");
    }
    assert_eq!(codes, clean, "failover must be invisible to results");

    println!("\nhealth ledger:");
    for nc in 0..3 {
        let h = m.health().health(nc);
        println!(
            "  nxp{nc}: {:?}, {} death(s), {} recover(ies)",
            m.health().state(nc),
            h.deaths,
            h.recoveries
        );
    }
    println!("\nfailover counters:");
    for key in [
        "nxp_deaths",
        "nxp_rejoins",
        "nxp_probes_ok",
        "descs_reaped",
        "msis_purged",
        "failover_replacements",
        "failover_reexecutions",
        "admission_rejects",
    ] {
        println!("  {key:<24} {}", m.stats().get(key));
    }

    println!("\nfailure-domain timeline:");
    for (t, e) in m.trace().events() {
        let line = match e {
            Event::DeviceFault { nxp, kind } => format!("nxp{nxp} device fault: {kind}"),
            Event::NxpDeclaredDead { nxp } => format!("nxp{nxp} declared dead (breaker open)"),
            Event::NxpRejoined { nxp } => format!("nxp{nxp} rejoined (breaker half-open)"),
            Event::ProbeSucceeded { nxp } => format!("nxp{nxp} probe ok (breaker closed)"),
            Event::DescriptorsReaped { nxp, count } => {
                format!("reaped {count} descriptor(s) from nxp{nxp}")
            }
            Event::FailoverReplaced { pid, from_nxp, to_nxp } => {
                format!("pid {pid} re-placed nxp{from_nxp} -> nxp{to_nxp}")
            }
            Event::FailoverReexecuted { pid, on_nxp } => {
                format!("pid {pid} re-executed on nxp{on_nxp}")
            }
            Event::AdmissionRejected { chan } => format!("ring full on chan {chan}"),
            _ => continue,
        };
        println!("  {t:>12}  {line}");
    }

    println!(
        "\nfleet done at {} (fault-free twin: {}) — same results, stretched timeline",
        m.host_now(),
        horizon
    );
    Ok(())
}
