//! Topology-generic machine: N host cores × M NxP cores.
//!
//! The paper's NxPs are many-core devices, so migration *throughput*
//! under concurrency is the number that matters at scale. This example
//! builds a machine at the topology you ask for, runs a small fleet of
//! NxP-heavy processes concurrently, and prints where the work landed
//! (per-core instruction counts) plus the simulated finish time —
//! wider topologies finish the same fleet sooner.
//!
//! Run with: `cargo run --release --example topology -- 2 2`
//! (arguments are `<host_cores> <nxp_cores>`, default 2 2; add
//! `--threads N` or `--threads auto` to shard the fleet across OS
//! worker threads — the simulated timeline is identical either way,
//! only the wall clock moves)

use flick::{Machine, Topology};
use flick_isa::{abi, FuncBuilder, TargetIsa};
use flick_toolchain::ProgramBuilder;

/// A process that ships `calls` chunks of work to the NxP and exits
/// with a tag-derived code so results are distinguishable.
fn worker(calls: i64, spin: i64, tag: i64) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("worker");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    main.li(abi::S1, calls);
    main.li(abi::S2, 0);
    main.bind(lp);
    main.li(abi::A0, spin);
    main.call("nxp_work");
    main.add(abi::S2, abi::S2, abi::A0);
    main.addi(abi::S1, abi::S1, -1);
    main.bne(abi::S1, abi::ZERO, lp);
    main.li(abi::T0, tag);
    main.add(abi::A0, abi::S2, abi::T0);
    main.call("flick_exit");
    p.func(main.finish());
    let mut f = FuncBuilder::new("nxp_work", TargetIsa::Nxp);
    let sl = f.new_label();
    let done = f.new_label();
    f.li(abi::T0, 0);
    f.bind(sl);
    f.bge(abi::T0, abi::A0, done);
    f.addi(abi::T0, abi::T0, 1);
    f.jmp(sl);
    f.bind(done);
    f.mv(abi::A0, abi::T0);
    f.ret();
    p.func(f.finish());
    p
}

/// Parses `--threads N|auto` out of the argument list (`auto` = one
/// worker per available host core), returning the remaining
/// positional arguments and the worker count.
fn parse_args() -> Result<(Vec<String>, usize), Box<dyn std::error::Error>> {
    let mut positional = Vec::new();
    let mut threads = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            let v = args.next().ok_or("--threads needs a value (N or auto)")?;
            threads = if v == "auto" { 0 } else { v.parse()? };
        } else {
            positional.push(a);
        }
    }
    Ok((positional, threads))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (positional, threads) = parse_args()?;
    let mut args = positional.into_iter();
    let hosts: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(2);
    let nxps: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(2);
    let topo = Topology::new(hosts, nxps);

    let mut m = Machine::builder().topology(topo).threads(threads).build();
    println!("host execution: {} worker thread(s)", m.threads());
    let (procs, calls, spin) = (4, 6, 3_000);
    let mut pids = Vec::new();
    for tag in 0..procs {
        pids.push(m.load_program(&mut worker(calls, spin, tag * 100_000))?);
    }
    let outcomes = m.run_concurrent(&pids, u64::MAX / 2)?;

    println!("topology {topo}: {procs} processes x {calls} NxP calls each\n");
    for (pid, outcome) in &outcomes {
        println!(
            "  pid {pid}: exit {:>6}  done at {}",
            outcome.exit_code,
            outcome.sim_time
        );
    }
    println!("\nwhere the instructions ran:");
    for (core, stats) in m.per_core_stats() {
        let insts = stats.get("instructions");
        if insts > 0 {
            let label = format!("{core}");
            println!("  {label:<6} {insts:>9} instructions");
        }
    }
    println!("\nall {procs} processes done at {}", m.host_now());
    println!("(re-run with different core counts to watch the finish time move)");
    Ok(())
}
