//! Topology-generic machine: N host cores × M NxP cores, with an
//! optional heterogeneous accelerator fleet.
//!
//! The paper's NxPs are many-core devices, so migration *throughput*
//! under concurrency is the number that matters at scale. This example
//! builds a machine at the topology you ask for, runs a small fleet of
//! NxP-heavy processes concurrently, and prints where the work landed
//! (per-core instruction counts, each labelled with its ISA) plus the
//! simulated finish time — wider topologies finish the same fleet
//! sooner.
//!
//! Run with: `cargo run --release --example topology -- 2 2`
//! (arguments are `<host_cores> <nxp_cores>`, default 2 2; add
//! `--threads N` or `--threads auto` to shard the fleet across OS
//! worker threads — the simulated timeline is identical either way,
//! only the wall clock moves; add `--isas rv64,arm64` to assign
//! accelerator ISAs per NxP slot, cycling when the list is shorter
//! than the slot count — workers then ship work to every ISA in the
//! fleet and ISA-aware placement routes each call to a matching core)

use flick::{Machine, Topology};
use flick_isa::{abi, FuncBuilder, IsaId, TargetIsa};
use flick_toolchain::ProgramBuilder;

/// Builder target placing a function on an accelerator ISA.
fn accel_target(isa: IsaId) -> TargetIsa {
    match isa {
        IsaId::Arm64 => TargetIsa::Arm64,
        _ => TargetIsa::Nxp,
    }
}

/// A process that ships `rounds` rounds of work — one call per distinct
/// accelerator ISA in the fleet per round — and exits with a
/// tag-derived code so results are distinguishable.
fn worker(isas: &[IsaId], rounds: i64, spin: i64, tag: i64) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("worker");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    main.li(abi::S1, rounds);
    main.li(abi::S2, 0);
    main.bind(lp);
    for isa in isas {
        main.li(abi::A0, spin);
        main.call(&format!("work_{}", isa.name()));
        main.add(abi::S2, abi::S2, abi::A0);
    }
    main.addi(abi::S1, abi::S1, -1);
    main.bne(abi::S1, abi::ZERO, lp);
    main.li(abi::T0, tag);
    main.add(abi::A0, abi::S2, abi::T0);
    main.call("flick_exit");
    p.func(main.finish());
    for isa in isas {
        let mut f = FuncBuilder::new(format!("work_{}", isa.name()), accel_target(*isa));
        let sl = f.new_label();
        let done = f.new_label();
        f.li(abi::T0, 0);
        f.bind(sl);
        f.bge(abi::T0, abi::A0, done);
        f.addi(abi::T0, abi::T0, 1);
        f.jmp(sl);
        f.bind(done);
        f.mv(abi::A0, abi::T0);
        f.ret();
        p.func(f.finish());
    }
    p
}

/// Positional arguments, worker count, and accelerator ISA list.
type Args = (Vec<String>, usize, Vec<IsaId>);

/// Parses `--threads N|auto` and `--isas a,b,...` out of the argument
/// list (`auto` = one worker per available host core), returning the
/// remaining positional arguments, the worker count, and the
/// accelerator ISA list.
fn parse_args() -> Result<Args, Box<dyn std::error::Error>> {
    let mut positional = Vec::new();
    let mut threads = 1usize;
    let mut isas = vec![IsaId::Rv64];
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--threads" {
            let v = args.next().ok_or("--threads needs a value (N or auto)")?;
            threads = if v == "auto" { 0 } else { v.parse()? };
        } else if a == "--isas" {
            let v = args.next().ok_or("--isas needs a comma-separated list")?;
            isas = v
                .split(',')
                .map(|name| {
                    IsaId::from_name(name)
                        .filter(|i| i.descriptor().nx_text)
                        .ok_or_else(|| format!("unknown accelerator ISA: {name}"))
                })
                .collect::<Result<_, _>>()?;
        } else {
            positional.push(a);
        }
    }
    Ok((positional, threads, isas))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (positional, threads, isas) = parse_args()?;
    let mut args = positional.into_iter();
    let hosts: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(2);
    let nxps: usize = args.next().map(|a| a.parse()).transpose()?.unwrap_or(2);
    let topo = Topology::new(hosts, nxps);
    // Assign the requested ISAs across the NxP slots, cycling.
    let slots: Vec<IsaId> = (0..nxps).map(|i| isas[i % isas.len()]).collect();
    // Each worker round calls each *distinct* ISA once, in slot order.
    let mut fleet_isas: Vec<IsaId> = Vec::new();
    for isa in &slots {
        if !fleet_isas.contains(isa) {
            fleet_isas.push(*isa);
        }
    }

    let mut m = Machine::builder()
        .topology(topo)
        .threads(threads)
        .nxp_isas(slots.clone())
        .build();
    println!("host execution: {} worker thread(s)", m.threads());
    let (procs, rounds, spin) = (4, 6, 3_000);
    let mut pids = Vec::new();
    for tag in 0..procs {
        pids.push(m.load_program(&mut worker(&fleet_isas, rounds, spin, tag * 100_000))?);
    }
    let outcomes = m.run_concurrent(&pids, u64::MAX / 2)?;

    let fleet: Vec<&str> = slots.iter().map(|i| i.name()).collect();
    println!(
        "topology {topo} [{}]: {procs} processes x {rounds} rounds x {} call(s)\n",
        fleet.join(","),
        fleet_isas.len()
    );
    for (pid, outcome) in &outcomes {
        println!(
            "  pid {pid}: exit {:>6}  done at {}",
            outcome.exit_code,
            outcome.sim_time
        );
    }
    println!("\nwhere the instructions ran:");
    for (core, stats) in m.per_core_stats() {
        let insts = stats.get("instructions");
        if insts > 0 {
            let label = m.core_label(core);
            println!("  {label:<14} {insts:>9} instructions");
        }
    }
    let ch = m.chain_stats();
    println!(
        "\nblock-lane chaining (host-side): {} hits, {} patches, {} breaks, {} fallback steps",
        ch.chain_hits, ch.chain_patches, ch.chain_breaks, ch.block_fallback_steps
    );
    println!("\nall {procs} processes done at {}", m.host_now());
    println!("(re-run with different core counts to watch the finish time move)");
    Ok(())
}
