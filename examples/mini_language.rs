//! The toolchain's top layer: a C-like program compiled to both ISAs.
//!
//! Everything here is written in the structured mini-language
//! (`flick_isa::lang`) — no hand assembly. The NxP-side function scans
//! a number range for primes (trial division) and reports each prime to
//! a host-side collector; the host side tallies. Each report is a
//! transparent NxP→host migration originating from *compiled* code.
//!
//! Run with: `cargo run --release --example mini_language`

use flick::Machine;
use flick_isa::lang::{compile_fn, FnDef, LExpr, Stmt};
use flick_isa::{abi, AluOp, BranchOp, FuncBuilder, TargetIsa};
use flick_toolchain::ProgramBuilder;
use std::ops::Mul;

/// count_primes(lo, hi): NxP-side trial-division scan; calls
/// report_prime(p) on the host for every prime found.
fn count_primes() -> FnDef {
    use BranchOp::*;
    use LExpr::*;
    let local = |i| Local(i);
    FnDef {
        name: "count_primes".into(),
        target: TargetIsa::Nxp,
        num_args: 2,
        num_locals: 4, // 0: n, 1: divisor, 2: is_prime, 3: count
        body: vec![
            Stmt::Let(0, Arg(0)),
            Stmt::Let(3, Const(0)),
            Stmt::While(
                (Ltu, local(0), Arg(1)).into(),
                vec![
                    Stmt::Let(2, Const(1)),
                    Stmt::Let(1, Const(2)),
                    // while (d*d <= n) { if (n % d == 0) { prime=0; d=n } d++ }
                    Stmt::While(
                        (Geu, local(0), local(1).mul(local(1))).into(),
                        vec![Stmt::If(
                            (Eq, local(0).bin(AluOp::Remu, local(1)), Const(0)).into(),
                            vec![Stmt::Let(2, Const(0)), Stmt::Let(1, local(0))],
                            vec![Stmt::Let(1, local(1) + Const(1))],
                        )],
                    ),
                    Stmt::If(
                        (Ne, local(2), Const(0)).into(),
                        vec![
                            // Cross-ISA call: report to the host.
                            Stmt::Expr(Call("report_prime".into(), vec![local(0)])),
                            Stmt::Let(3, local(3) + Const(1)),
                        ],
                        vec![],
                    ),
                    Stmt::Let(0, local(0) + Const(1)),
                ],
            ),
            Stmt::Return(local(3)),
        ],
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (lo, hi) = (2i64, 100i64);
    let mut p = ProgramBuilder::new("primes");

    let mut main_fn = FuncBuilder::new("main", TargetIsa::Host);
    main_fn.li(abi::A0, lo);
    main_fn.li(abi::A1, hi);
    main_fn.call("count_primes");
    main_fn.call("flick_exit");
    p.func(main_fn.finish());

    p.func(compile_fn(&count_primes())?);

    // Host-side collector: prints each reported prime.
    let mut report = FuncBuilder::new("report_prime", TargetIsa::Host);
    report.prologue(16, &[]);
    report.call("flick_print_u64");
    report.epilogue(16, &[]);
    p.func(report.finish());

    let mut m = Machine::paper_default();
    let pid = m.load_program(&mut p)?;
    let out = m.run(pid)?;

    let reference: Vec<u64> = (lo as u64..hi as u64)
        .filter(|&n| (2..n).take_while(|d| d * d <= n).all(|d| n % d != 0))
        .collect();
    println!(
        "primes in [{lo}, {hi}) found on the NxP, reported to the host:\n{}",
        out.console.join(" ")
    );
    println!(
        "\ncount = {} (reference {}), NxP→host reports = {}",
        out.exit_code,
        reference.len(),
        out.stats.get("migrations_nxp_to_host")
    );
    println!("simulated time: {}", out.sim_time);
    assert_eq!(out.exit_code, reference.len() as u64);
    assert_eq!(
        out.console,
        reference.iter().map(u64::to_string).collect::<Vec<_>>()
    );
    Ok(())
}
