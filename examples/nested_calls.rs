//! Nested bidirectional ISA-crossing calls (§IV-B's reentrancy claim).
//!
//! A host function and an NxP function recurse into each other to
//! compute a factorial; every level crosses the ISA boundary, and the
//! trace shows the full descriptor ping-pong of the paper's Fig. 2.
//!
//! Run with: `cargo run --release --example nested_calls`

use flick::Machine;
use flick_isa::{abi, FuncBuilder, TargetIsa};
use flick_sim::Event;
use flick_toolchain::ProgramBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8u64;
    let mut program = ProgramBuilder::new("nested");

    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::A0, n as i64);
    main.call("host_fact");
    main.call("flick_exit");
    program.func(main.finish());

    // host_fact(n) = n == 0 ? 1 : n * nxp_fact(n - 1)   (host ISA)
    // nxp_fact(n)  = n == 0 ? 1 : n * host_fact(n - 1)  (NxP ISA)
    for (name, callee, target) in [
        ("host_fact", "nxp_fact", TargetIsa::Host),
        ("nxp_fact", "host_fact", TargetIsa::Nxp),
    ] {
        let mut f = FuncBuilder::new(name, target);
        let base = f.new_label();
        f.prologue(32, &[abi::S1]);
        f.beq(abi::A0, abi::ZERO, base);
        f.mv(abi::S1, abi::A0);
        f.addi(abi::A0, abi::A0, -1);
        f.call(callee); // crosses the ISA boundary at every level
        f.mul(abi::A0, abi::A0, abi::S1);
        f.epilogue(32, &[abi::S1]);
        f.bind(base);
        f.li(abi::A0, 1);
        f.epilogue(32, &[abi::S1]);
        program.func(f.finish());
    }

    let mut machine = Machine::paper_default();
    let pid = machine.load_program(&mut program)?;
    let outcome = machine.run(pid)?;

    let expected: u64 = (1..=n).product();
    println!("{n}! computed across the ISA boundary = {}", outcome.exit_code);
    assert_eq!(outcome.exit_code, expected);
    println!(
        "host->NxP calls: {}, NxP->host calls: {}",
        outcome.stats.get("migrations_host_to_nxp"),
        outcome.stats.get("migrations_nxp_to_host"),
    );
    println!("simulated time: {}", outcome.sim_time);

    // Show the first dozen migration events of the Fig. 2 ping-pong.
    println!("\nfirst migration events:");
    let mut shown = 0;
    for (t, e) in machine.trace().events() {
        let line = match e {
            Event::NxFault { side, fault_va } => {
                format!("{side} exec fault at {fault_va:#x}")
            }
            Event::DescriptorSent { from, kind, .. } => format!("{from} sends {kind}"),
            Event::ThreadWoken { pid } => format!("host wakes thread {pid}"),
            _ => continue,
        };
        println!("  [{t}] {line}");
        shown += 1;
        if shown >= 12 {
            break;
        }
    }
    Ok(())
}
