//! The Fig. 5 scenario as an application: traverse linked lists stored
//! in NxP-side memory, comparing direct host access over PCIe with
//! Flick migration, at a few list lengths.
//!
//! Run with: `cargo run --release --example pointer_chasing`

use flick_workloads::chase::{run_chase, ChaseConfig, ChaseMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("pointer chasing: host-direct vs Flick (lists in NxP DRAM)\n");
    println!("{:>12} {:>14} {:>14} {:>10}", "nodes/call", "host-direct", "flick", "speedup");
    for k in [8u64, 32, 128, 512, 1024] {
        let base = run_chase(&ChaseConfig::frequent(k, ChaseMode::HostDirect))?;
        let flick = run_chase(&ChaseConfig::frequent(k, ChaseMode::Flick))?;
        println!(
            "{:>12} {:>14} {:>14} {:>9.2}x",
            k,
            format!("{}", base.per_call),
            format!("{}", flick.per_call),
            base.per_call.as_nanos_f64() / flick.per_call.as_nanos_f64()
        );
    }
    println!(
        "\nShort lists: the ~18us migration dominates and the baseline wins."
    );
    println!(
        "Long lists: migration amortises; Flick approaches the 825ns/267ns\nmemory-latency ratio (~2.6x), as in Fig. 5a."
    );
    Ok(())
}
