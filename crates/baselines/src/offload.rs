//! The conventional offload-engine comparator (§II-B).
//!
//! The paper argues that "gathering information such as the function
//! call arguments and passing them to the NxP is a necessary overhead
//! even for the conventional offload style programming model" — i.e.
//! Flick's descriptor costs are not extra. What offloading *saves* is
//! the OS involvement (no fault, no syscall, no suspend/wake): the
//! host instead **busy-waits** on a completion flag. This module prices
//! that alternative with the same latency components, so the harness
//! can show both the latency advantage of polling and what it costs —
//! a host core pinned for the whole NxP execution (which
//! `Machine::run_concurrent` shows Flick giving back).

use flick::NxpTiming;
use flick_mem::LatencyModel;
use flick_sim::Picos;

/// Cost breakdown of one busy-wait offload round trip.
#[derive(Clone, Debug)]
pub struct OffloadBreakdown {
    /// User-space job-descriptor preparation (writes into a host-DRAM
    /// ring; same information content as Flick's call descriptor).
    pub desc_prep: Picos,
    /// Doorbell + DMA fetch of the descriptor + NxP poll pickup.
    pub submit: Picos,
    /// NxP dispatch and the (empty) kernel invocation.
    pub nxp_dispatch: Picos,
    /// Completion write back to host DRAM.
    pub complete: Picos,
    /// Host spin-loop detection granularity.
    pub host_poll: Picos,
}

impl OffloadBreakdown {
    /// Total round trip.
    pub fn total(&self) -> Picos {
        self.desc_prep + self.submit + self.nxp_dispatch + self.complete + self.host_poll
    }
}

/// Prices a null offload round trip from the same component models the
/// Flick machinery uses.
pub fn offload_round_trip(lat: &LatencyModel, nxp: &NxpTiming) -> OffloadBreakdown {
    OffloadBreakdown {
        // 128-byte descriptor into write-combined host DRAM plus
        // argument marshalling — a couple hundred host cycles.
        desc_prep: Picos::from_nanos(150),
        // Same wire path as Flick's host→NxP leg.
        submit: lat.host_to_nxp_write + lat.nxp_to_host_read + lat.dma_transfer(128)
            + nxp.poll_period,
        // The offload runtime parses the job and calls the kernel; no
        // thread context to restore.
        nxp_dispatch: nxp.dispatch,
        // Completion flag + result posted back to host DRAM.
        complete: lat.dma_transfer(64) + lat.nxp_to_host_write,
        // The pinned host core spins on the flag in its cache; it sees
        // the line within a coherence round trip.
        host_poll: lat.host_to_host_dram,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_workloads::measure_null_call;

    #[test]
    fn offload_round_trip_is_a_few_microseconds() {
        let b = offload_round_trip(&LatencyModel::paper_default(), &NxpTiming::paper_default());
        let t = b.total();
        assert!(t > Picos::from_micros(2), "{t}");
        assert!(t < Picos::from_micros(8), "{t}");
    }

    #[test]
    fn flick_overhead_over_offload_is_the_os_path() {
        // Flick pays the fault + syscall + suspend + wakeup on top of
        // the shared wire costs; the difference must be close to the
        // sum of those OS components.
        let flick = measure_null_call(128).host_nxp_host;
        let offload =
            offload_round_trip(&LatencyModel::paper_default(), &NxpTiming::paper_default())
                .total();
        let os = flick_os::OsTiming::paper_default();
        let os_path = os.page_fault_path
            + os.syscall_entry
            + os.syscall_exit
            + os.ioctl_desc_prep_call
            + os.suspend_and_switch
            + os.irq_entry
            + os.desc_copy
            + os.wakeup_and_schedule;
        let diff = flick.saturating_sub(offload);
        let ratio = diff.as_nanos_f64() / os_path.as_nanos_f64();
        assert!(
            (0.7..1.3).contains(&ratio),
            "flick-offload gap {diff} should track the OS path {os_path}"
        );
    }
}
