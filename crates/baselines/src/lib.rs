#![warn(missing_docs)]
//! Baselines and comparison systems.
//!
//! Three kinds of comparators appear in the paper's evaluation:
//!
//! 1. **Prior heterogeneous-ISA migration systems** (Table II) — the
//!    paper cites their published overheads rather than re-running
//!    them; [`prior_work`] encodes those rows.
//! 2. **Added-latency variants** (Fig. 5) — Flick's own machinery with
//!    extra migration latency injected "to mimic the larger overheads
//!    incurred in the prior work"; [`added_latency_machine`] builds
//!    one.
//! 3. **The host-direct baseline** — the host core simply accesses the
//!    NxP-side storage over PCIe without migrating. That baseline is a
//!    *program* choice (compile the kernel function for the host ISA),
//!    so it lives with the workloads; [`host_direct_note`] documents
//!    the convention.

use flick::Machine;
use flick_os::OsTiming;
use flick_sim::Picos;

pub mod offload;
pub mod prior_work;

pub use offload::{offload_round_trip, OffloadBreakdown};
pub use prior_work::{prior_work_rows, PriorWorkRow};

/// Builds a machine whose migration round trip is inflated by `extra`
/// — the Fig. 5 "system with 500 µs / 1 ms migration latency".
///
/// The extra latency is charged on the host wake-up path, once per
/// round trip, exactly where prior work's binary translation and stack
/// transformation costs sit (on the CPU doing the transformation).
///
/// # Examples
///
/// ```
/// use flick_baselines::added_latency_machine;
/// use flick_sim::Picos;
///
/// let m = added_latency_machine(Picos::from_micros(500));
/// let _ = m; // ready to load the pointer-chasing workload
/// ```
pub fn added_latency_machine(extra: Picos) -> Machine {
    let mut t = OsTiming::paper_default();
    t.wakeup_and_schedule += extra;
    Machine::builder().os_timing(t).build()
}

/// The host-direct baseline convention: build the same workload with
/// the kernel function annotated [`flick_isa::TargetIsa::Host`], so the
/// host traverses NxP storage across PCIe and no migration happens.
/// This is the "baseline, where the host core directly traverses the
/// linked lists over PCIe" of §V-B.
pub fn host_direct_note() -> &'static str {
    "compile the kernel function for TargetIsa::Host; no other change"
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn added_latency_machine_builds() {
        let _ = added_latency_machine(Picos::from_millis(1));
    }

    #[test]
    fn added_latency_slows_round_trip() {
        use flick_isa::{FuncBuilder, TargetIsa};
        use flick_toolchain::ProgramBuilder;

        let build = |p: &mut ProgramBuilder| {
            let mut main = FuncBuilder::new("main", TargetIsa::Host);
            main.call("nxp_nop");
            main.call("flick_exit");
            p.func(main.finish());
            let mut f = FuncBuilder::new("nxp_nop", TargetIsa::Nxp);
            f.ret();
            p.func(f.finish());
        };

        let run = |mut m: Machine| {
            let mut p = ProgramBuilder::new("t");
            build(&mut p);
            let pid = m.load_program(&mut p).unwrap();
            m.run(pid).unwrap().sim_time
        };

        let fast = run(Machine::paper_default());
        let slow = run(added_latency_machine(Picos::from_micros(500)));
        assert!(slow > fast + Picos::from_micros(450), "{slow} vs {fast}");
    }
}
