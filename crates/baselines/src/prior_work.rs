//! The prior-work comparison rows of Table II.
//!
//! The paper does not re-run these systems; it compares against their
//! published thread-migration overheads. We encode the rows verbatim so
//! the `table2` harness can print the comparison with Flick's overhead
//! *measured* on our simulated platform.

use flick_sim::Picos;

/// One row of Table II.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PriorWorkRow {
    /// Publication shorthand used in the table.
    pub work: &'static str,
    /// Fast-core description.
    pub fast_cores: &'static str,
    /// Slow-core description.
    pub slow_cores: &'static str,
    /// Interconnect between them.
    pub interconnect: &'static str,
    /// Published migration overhead.
    pub overhead: Picos,
}

/// The four prior-work rows of Table II.
pub fn prior_work_rows() -> Vec<PriorWorkRow> {
    vec![
        PriorWorkRow {
            work: "ASPLOS'12 (DeVuyst et al.)",
            fast_cores: "MIPS @2GHz",
            slow_cores: "ARM @833MHz",
            interconnect: "Not Considered",
            overhead: Picos::from_micros(600),
        },
        PriorWorkRow {
            work: "EuroSys'15 (Popcorn)",
            fast_cores: "Xeon E5-2695 @2.4GHz",
            slow_cores: "Xeon Phi 3120A @1.1GHz",
            interconnect: "PCIe",
            overhead: Picos::from_micros(700),
        },
        PriorWorkRow {
            work: "ISCA'16 (Biscuit)",
            fast_cores: "Xeon E5-2640 @2.5GHz",
            slow_cores: "ARM Cortex R7 @750MHz",
            interconnect: "PCIe Gen3 x4",
            overhead: Picos::from_micros(430),
        },
        PriorWorkRow {
            work: "ARM big.LITTLE",
            fast_cores: "ARM Cortex A15 @1.8GHz",
            slow_cores: "ARM Cortex A7",
            interconnect: "Onchip Network",
            overhead: Picos::from_micros(22),
        },
    ]
}

/// Speedup factor of a measured Flick overhead against a prior-work
/// row (the "23x to 38x" of the abstract).
pub fn speedup_vs(flick_overhead: Picos, row: &PriorWorkRow) -> f64 {
    row.overhead.as_nanos_f64() / flick_overhead.as_nanos_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_rows_with_paper_overheads() {
        let rows = prior_work_rows();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].overhead, Picos::from_micros(600));
        assert_eq!(rows[3].overhead, Picos::from_micros(22));
    }

    #[test]
    fn paper_speedup_range_holds_at_18_3us() {
        // With Flick at its measured 18.3 µs, the heterogeneous-ISA
        // prior work is 23x–38x slower — the abstract's claim.
        let flick = Picos(18_300_000);
        let rows = prior_work_rows();
        let het: Vec<f64> = rows[..3].iter().map(|r| speedup_vs(flick, r)).collect();
        assert!(het.iter().all(|&s| (23.0..=38.5).contains(&s)), "{het:?}");
        // And faster than on-chip big.LITTLE migration.
        assert!(speedup_vs(flick, &rows[3]) > 1.0);
    }
}
