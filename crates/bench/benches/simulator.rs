//! Wall-clock benchmarks of the simulator itself: how fast the
//! reproduction executes, orthogonal to the simulated times the
//! experiment binaries report.
//!
//! Self-timing harness (`harness = false`): each workload runs a few
//! warm-up iterations, then reports mean wall-clock per iteration over
//! a sample count settable with `--samples N` (default 10). With
//! `--json PATH` the results (per-bench ns/op plus instructions/sec
//! where the bench retires a known instruction count) are also written
//! as JSON — `scripts/bench.sh` uses this to track the perf trajectory
//! in `BENCH_simulator.json` across PRs. Run with `cargo bench`.

use flick::{Machine, Topology};
use flick_cpu::{Core, CoreConfig, MemEnv, StopReason};
use flick_isa::{abi, FuncBuilder, Isa, IsaId, TargetIsa};
use flick_mem::{PhysAddr, PhysMem, VirtAddr};
use flick_paging::{flags, AddressSpace, BumpFrameAlloc};
use flick_sim::{DeviceEvent, DeviceFaultKind, FaultPlan, Picos, TraceConfig};
use flick_toolchain::ProgramBuilder;
use flick_workloads::chase::{run_chase, ChaseConfig, ChaseMode};
use flick_workloads::graph::rmat;
use flick_workloads::serving::{run_serving_scenario, summarize, ServingScenario, ServingSummary};
use std::hint::black_box;
use std::time::{Duration, Instant};

fn quiet() -> Machine {
    Machine::builder()
        .trace(TraceConfig {
            enabled: false,
            capacity: 0,
        })
        .build()
}

/// One bench's timing, plus the simulated instructions it retires per
/// iteration when that is well-defined (for instructions/sec).
struct BenchResult {
    name: &'static str,
    mean: Duration,
    best: Duration,
    samples: u32,
    insts_per_iter: Option<u64>,
    /// Simulated migration calls per simulated second, for benches
    /// that measure the machine's migration throughput at a given
    /// topology (deterministic — a property of the simulation, not of
    /// wall clock).
    sim_calls_per_sec: Option<f64>,
    /// Worker-thread count and mean of the parallel-host-execution
    /// timing, for benches that re-run the same workload with the
    /// fleet sharded across OS threads. `mean` stays the sequential
    /// (threads=1) number so the regression gate keeps comparing
    /// like with like; the speedup is `mean / par_mean`.
    par_threads: Option<usize>,
    par_mean: Option<Duration>,
    /// Simulated cost of one migration round trip, for the
    /// `fig_isa_matrix` family (deterministic — the bench gate compares
    /// it exactly, so any ISA-pair timing change fails CI explicitly).
    sim_round_trip_ns: Option<u64>,
    /// Simulated serving summary at one offered load, for the
    /// `fig_tail_latency` family (deterministic — the bench gate
    /// watches goodput and p99 so a queueing or admission regression
    /// fails CI, while `mean_ns` keeps tracking simulator wall cost).
    tail: Option<ServingSummary>,
}

impl BenchResult {
    fn host_speedup(&self) -> Option<f64> {
        Some(self.mean.as_secs_f64() / self.par_mean?.as_secs_f64())
    }
}

impl BenchResult {
    fn insts_per_sec(&self) -> Option<f64> {
        let insts = self.insts_per_iter? as f64;
        Some(insts / self.mean.as_secs_f64())
    }
}

/// Times `f` over `samples` iterations after `WARMUP` unrecorded ones;
/// returns `(mean, best)`.
fn time_loop(samples: u32, mut f: impl FnMut()) -> (Duration, Duration) {
    const WARMUP: u32 = 2;
    for _ in 0..WARMUP {
        f();
    }
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed();
        total += dt;
        best = best.min(dt);
    }
    (total / samples, best)
}

/// Times `f` over `samples` iterations after the warm-up ones.
fn bench(
    name: &'static str,
    samples: u32,
    insts_per_iter: Option<u64>,
    f: impl FnMut(),
) -> BenchResult {
    let (mean, best) = time_loop(samples, f);
    let r = BenchResult {
        name,
        mean,
        best,
        samples,
        insts_per_iter,
        sim_calls_per_sec: None,
        par_threads: None,
        par_mean: None,
        sim_round_trip_ns: None,
        tail: None,
    };
    let n = r.samples;
    match r.insts_per_sec() {
        Some(ips) => println!(
            "{name:<32} mean {mean:>12.3?}  best {best:>12.3?}  ({:.2} M inst/s, n={n})",
            ips / 1e6
        ),
        None => println!("{name:<32} mean {mean:>12.3?}  best {best:>12.3?}  (n={n})"),
    }
    r
}

/// Simulating one migration round trip (machinery cost).
fn bench_migration_round_trip(samples: u32) -> BenchResult {
    bench("simulate_32_round_trips", samples, None, || {
        let mut m = quiet();
        let mut p = ProgramBuilder::new("bench");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        let lp = main.new_label();
        main.li(abi::S1, 32);
        main.bind(lp);
        main.call("nxp_nop");
        main.addi(abi::S1, abi::S1, -1);
        main.bne(abi::S1, abi::ZERO, lp);
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_nop", TargetIsa::Nxp);
        f.ret();
        p.func(f.finish());
        let pid = m.load_program(&mut p).unwrap();
        black_box(m.run(pid).unwrap().sim_time);
    })
}

/// Process count / calls-per-process / spin length of the migration
/// throughput fleet workload.
const TPUT_PROCS: i64 = 8;
const TPUT_CALLS: i64 = 8;
const TPUT_SPIN: i64 = 2_000;

/// One throughput-fleet process: `TPUT_CALLS` NxP spin calls, exiting
/// with `TPUT_CALLS * TPUT_SPIN + tag`.
fn tput_program(tag: i64) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("tput");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    main.li(abi::S1, TPUT_CALLS);
    main.li(abi::S2, 0);
    main.bind(lp);
    main.li(abi::A0, TPUT_SPIN);
    main.call("nxp_spin");
    main.add(abi::S2, abi::S2, abi::A0);
    main.addi(abi::S1, abi::S1, -1);
    main.bne(abi::S1, abi::ZERO, lp);
    main.li(abi::T0, tag);
    main.add(abi::A0, abi::S2, abi::T0);
    main.call("flick_exit");
    p.func(main.finish());
    let mut f = FuncBuilder::new("nxp_spin", TargetIsa::Nxp);
    let sl = f.new_label();
    let done = f.new_label();
    f.li(abi::T0, 0);
    f.bind(sl);
    f.bge(abi::T0, abi::A0, done);
    f.addi(abi::T0, abi::T0, 1);
    f.jmp(sl);
    f.bind(done);
    f.mv(abi::A0, abi::T0);
    f.ret();
    p.func(f.finish());
    p
}

/// Worker-thread count the parallel-host-execution timings run at.
const PAR_WORKERS: usize = 4;

/// Runs the throughput fleet on `hosts` host cores × `nxps` NxPs with
/// `threads` OS worker threads, under an optional fault plan; returns
/// the simulated finish time (identical for every `threads` value).
fn run_tput_fleet_at(
    hosts: usize,
    nxps: usize,
    threads: usize,
    plan: Option<FaultPlan>,
) -> Picos {
    let mut b = Machine::builder()
        .trace(TraceConfig {
            enabled: false,
            capacity: 0,
        })
        .threads(threads)
        .topology(Topology::new(hosts, nxps));
    if let Some(plan) = plan {
        b = b.fault_plan(plan);
    }
    let mut m = b.build();
    let mut pids = Vec::new();
    for tag in 0..TPUT_PROCS {
        pids.push(m.load_program(&mut tput_program(tag)).unwrap());
    }
    m.run_concurrent(&pids, u64::MAX / 2).unwrap();
    m.host_now()
}

/// The 2-host variant every pre-parallel bench used.
fn run_tput_fleet(nxps: usize, plan: Option<FaultPlan>) -> Picos {
    run_tput_fleet_at(2, nxps, 1, plan)
}

/// Migration throughput at a topology: 8 processes × 8 NxP calls over
/// `hosts` host cores and a varying NxP count. The wall-clock number
/// tracks simulator cost; the attached `sim_calls_per_sec` is the
/// paper-side result — simulated calls/sec must scale with the NxP
/// count. Each topology is timed twice: sequential (`mean_ns`, what
/// the regression gate watches) and sharded across [`PAR_WORKERS`] OS
/// threads (`par_mean_ns` / `host_speedup`); both produce the same
/// simulated timeline.
fn bench_migration_throughput(
    samples: u32,
    hosts: usize,
    nxps: usize,
    name: &'static str,
) -> BenchResult {
    let sim_elapsed = run_tput_fleet_at(hosts, nxps, 1, None);
    let calls = (TPUT_PROCS * TPUT_CALLS) as f64;
    let sim_cps = calls / (sim_elapsed.as_nanos_f64() * 1e-9);
    let mut r = bench(name, samples, None, || {
        black_box(run_tput_fleet_at(hosts, nxps, 1, None));
    });
    let (par_mean, par_best) = time_loop(samples, || {
        black_box(run_tput_fleet_at(hosts, nxps, PAR_WORKERS, None));
    });
    r.sim_calls_per_sec = Some(sim_cps);
    r.par_threads = Some(PAR_WORKERS);
    r.par_mean = Some(par_mean);
    println!("{:<32} {sim_cps:>12.0} simulated calls/sec", "");
    println!(
        "{:<32} par({PAR_WORKERS}) mean {par_mean:>8.3?}  best {par_best:>8.3?}  (host speedup {:.2}x)",
        "",
        r.host_speedup().unwrap()
    );
    r
}

/// Migration throughput through a failure: the 2×2 fleet workload with
/// NxP 1 crashed (no rejoin) at the fault-free half-way mark. Exercises
/// death detection, channel quiescing, and re-placement on the
/// survivor — the wall-clock cost of the failover path is what the
/// bench gate watches.
fn bench_migration_throughput_degraded(samples: u32) -> BenchResult {
    let horizon = run_tput_fleet(2, None);
    let mid = Picos::from_nanos(horizon.as_nanos() / 2);
    let plan = || {
        FaultPlan::none().with_device_event(DeviceEvent {
            nxp: 1,
            kind: DeviceFaultKind::Crash,
            at: mid,
            rejoin_at: None,
        })
    };
    let sim_elapsed = run_tput_fleet(2, Some(plan()));
    let calls = (TPUT_PROCS * TPUT_CALLS) as f64;
    let sim_cps = calls / (sim_elapsed.as_nanos_f64() * 1e-9);
    let mut r = bench("migration_throughput_degraded", samples, None, || {
        black_box(run_tput_fleet(2, Some(plan())));
    });
    println!("{:<32} {sim_cps:>12.0} simulated calls/sec (one NxP down)", "");
    r.sim_calls_per_sec = Some(sim_cps);
    r
}

/// The `fig_isa_matrix` family: migration round-trip cost for every
/// ordered ISA pair on a 3-ISA fleet (x64 host + rv64 NxP + arm64 NxP).
/// `(bench name, caller placement, callee placement)`.
const ISA_PAIRS: [(&str, TargetIsa, TargetIsa); 6] = [
    ("fig_isa_matrix_x64_rv64", TargetIsa::Host, TargetIsa::Nxp),
    ("fig_isa_matrix_x64_arm64", TargetIsa::Host, TargetIsa::Arm64),
    ("fig_isa_matrix_rv64_x64", TargetIsa::Nxp, TargetIsa::Host),
    ("fig_isa_matrix_rv64_arm64", TargetIsa::Nxp, TargetIsa::Arm64),
    ("fig_isa_matrix_arm64_x64", TargetIsa::Arm64, TargetIsa::Host),
    ("fig_isa_matrix_arm64_rv64", TargetIsa::Arm64, TargetIsa::Nxp),
];

/// A program whose steady state is `calls` round trips from a function
/// placed on `from` to a leaf placed on `to` (the setup legs that get
/// the thread onto `from` in the first place cancel out when two call
/// counts are differenced).
fn isa_pair_program(from: TargetIsa, to: TargetIsa, calls: i64) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("pair");
    if from == TargetIsa::Host {
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        let lp = main.new_label();
        main.li(abi::S1, calls);
        main.bind(lp);
        main.call("leg");
        main.addi(abi::S1, abi::S1, -1);
        main.bne(abi::S1, abi::ZERO, lp);
        main.call("flick_exit");
        p.func(main.finish());
    } else {
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.li(abi::A0, calls);
        main.call("entry");
        main.call("flick_exit");
        p.func(main.finish());
        let mut entry = FuncBuilder::new("entry", from);
        entry.prologue(16, &[abi::S1]);
        entry.mv(abi::S1, abi::A0);
        let lp = entry.new_label();
        let done = entry.new_label();
        entry.bind(lp);
        entry.beq(abi::S1, abi::ZERO, done);
        entry.call("leg");
        entry.addi(abi::S1, abi::S1, -1);
        entry.jmp(lp);
        entry.bind(done);
        entry.epilogue(16, &[abi::S1]);
        p.func(entry.finish());
    }
    let mut leg = FuncBuilder::new("leg", to);
    leg.addi(abi::A0, abi::A0, 1);
    leg.ret();
    p.func(leg.finish());
    p
}

/// Simulated finish time of the pair workload at a call count.
fn isa_pair_sim_time(from: TargetIsa, to: TargetIsa, calls: i64) -> Picos {
    let mut m = Machine::builder()
        .trace(TraceConfig {
            enabled: false,
            capacity: 0,
        })
        .topology(Topology::new(1, 2))
        .nxp_isas(vec![IsaId::Rv64, IsaId::Arm64])
        .build();
    let pid = m.load_program(&mut isa_pair_program(from, to, calls)).unwrap();
    m.run(pid).unwrap();
    m.host_now()
}

/// One ordered ISA pair of the matrix: the simulated per-round-trip
/// cost (two call counts differenced, so process startup and the legs
/// that place the caller cancel), plus the usual wall-clock timing of
/// simulating the workload.
fn bench_isa_pair(samples: u32, name: &'static str, from: TargetIsa, to: TargetIsa) -> BenchResult {
    const LO: i64 = 4;
    const HI: i64 = 36;
    let lo = isa_pair_sim_time(from, to, LO);
    let hi = isa_pair_sim_time(from, to, HI);
    let per_trip =
        (hi.as_nanos_f64() - lo.as_nanos_f64()) / (HI - LO) as f64;
    let mut r = bench(name, samples, None, || {
        black_box(isa_pair_sim_time(from, to, HI));
    });
    r.sim_round_trip_ns = Some(per_trip.round() as u64);
    println!("{:<32} {per_trip:>12.0} ns simulated round trip", "");
    r
}

/// The whole ordered-pair matrix, plus a readable summary grid.
fn bench_isa_matrix(samples: u32) -> Vec<BenchResult> {
    let results: Vec<BenchResult> = ISA_PAIRS
        .iter()
        .map(|&(name, from, to)| bench_isa_pair(samples, name, from, to))
        .collect();
    println!("\nfig_isa_matrix: simulated migration round trip (ns), caller -> callee");
    println!("{:>8} {:>10} {:>10} {:>10}", "", "x64", "rv64", "arm64");
    for from in [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64] {
        let cell = |to: TargetIsa| -> String {
            ISA_PAIRS
                .iter()
                .zip(&results)
                .find(|((_, f, t), _)| *f == from && *t == to)
                .and_then(|(_, r)| r.sim_round_trip_ns)
                .map(|ns| ns.to_string())
                .unwrap_or_else(|| "-".into())
        };
        println!(
            "{:>8} {:>10} {:>10} {:>10}",
            from.isa().name(),
            cell(TargetIsa::Host),
            cell(TargetIsa::Nxp),
            cell(TargetIsa::Arm64)
        );
    }
    println!();
    results
}

/// The `fig_tail_latency` family: the datacenter-serving scenario — 32
/// tenant processes, 400 open-loop Poisson requests — at a sweep of
/// offered loads on the default 2-host × 4-NxP heterogeneous fleet
/// (rv64/arm64 alternating). The fleet saturates near 75k completed
/// requests per simulated second, so the sweep brackets the knee: the
/// first two points are below saturation (rejects = 0, flat tail), the
/// last three are past it, where the occupancy admission path rejects
/// at the doorbell and queueing delay dominates p99/p99.9.
/// `(bench name, offered requests per simulated second)`.
const TAIL_LOADS: [(&str, f64); 5] = [
    ("fig_tail_latency_25k", 25_000.0),
    ("fig_tail_latency_50k", 50_000.0),
    ("fig_tail_latency_100k", 100_000.0),
    ("fig_tail_latency_200k", 200_000.0),
    ("fig_tail_latency_400k", 400_000.0),
];

/// The fixed serving scenario the tail-latency sweep varies load over.
fn tail_cfg(offered_rps: f64) -> ServingScenario {
    ServingScenario {
        tenants: 32,
        requests: 400,
        offered_rps,
        ..ServingScenario::default()
    }
}

/// One offered-load point: the deterministic serving summary (goodput,
/// tail quantiles, admission rejects — what the bench gate watches)
/// plus the usual wall-clock timing of simulating the scenario.
fn bench_tail_point(samples: u32, name: &'static str, offered_rps: f64) -> BenchResult {
    let cfg = tail_cfg(offered_rps);
    let report = run_serving_scenario(&cfg).expect("serving scenario");
    let summary = summarize(&cfg, &report);
    let mut r = bench(name, samples, None, || {
        black_box(run_serving_scenario(&cfg).expect("serving scenario").finished_at);
    });
    println!(
        "{:<32} goodput {:>7.0} rps  p50 {:>7} ns  p99 {:>7} ns  p99.9 {:>7} ns  rejects {}",
        "", summary.goodput_rps, summary.p50_ns, summary.p99_ns, summary.p999_ns,
        summary.admission_rejects
    );
    r.tail = Some(summary);
    r
}

/// The whole load sweep, plus a readable saturation table.
fn bench_tail_latency(samples: u32) -> Vec<BenchResult> {
    let results: Vec<BenchResult> = TAIL_LOADS
        .iter()
        .map(|&(name, rps)| bench_tail_point(samples, name, rps))
        .collect();
    println!("\nfig_tail_latency: 32 tenants on 2x4 rv64/arm64, open-loop Poisson");
    println!(
        "{:>12} {:>12} {:>10} {:>10} {:>10} {:>8}",
        "offered", "goodput", "p50_ns", "p99_ns", "p99.9_ns", "rejects"
    );
    for r in &results {
        let t = r.tail.as_ref().unwrap();
        println!(
            "{:>12.0} {:>12.0} {:>10} {:>10} {:>10} {:>8}",
            t.offered_rps, t.goodput_rps, t.p50_ns, t.p99_ns, t.p999_ns, t.admission_rejects
        );
    }
    println!();
    results
}

/// Number of loop iterations in the interpreter benches (4 instructions
/// per iteration).
const INTERP_ITERS: i64 = 25_000;

/// Full-machine interpreter throughput (host core, tight ALU loop,
/// including kernel load/exit overhead).
fn bench_interpreter(samples: u32) -> BenchResult {
    bench(
        "interpret_100k_instructions",
        samples,
        Some(4 * INTERP_ITERS as u64),
        || {
            let mut m = quiet();
            let mut p = ProgramBuilder::new("bench");
            let mut main = FuncBuilder::new("main", TargetIsa::Host);
            let lp = main.new_label();
            main.li(abi::S1, INTERP_ITERS);
            main.bind(lp);
            main.addi(abi::A0, abi::A0, 1);
            main.addi(abi::A1, abi::A1, 2);
            main.addi(abi::S1, abi::S1, -1);
            main.bne(abi::S1, abi::ZERO, lp);
            main.call("flick_exit");
            p.func(main.finish());
            let pid = m.load_program(&mut p).unwrap();
            black_box(m.run(pid).unwrap().exit_code);
        },
    )
}

/// Pure step-loop throughput: a bare `Core` against identity-mapped
/// memory, no machine, kernel, or scheduler in the loop. This is the
/// ceiling the decoded-instruction fast path is chasing.
fn bench_pure_interpret(samples: u32) -> BenchResult {
    // Identity-map the low 16 MiB and plant the loop at 0x40_0000, like
    // the cpu crate's own fixtures.
    let mut mem = PhysMem::new();
    let mut alloc = BumpFrameAlloc::new(PhysAddr(0x100_0000), PhysAddr(0x200_0000));
    let mut aspace = AddressSpace::new(&mut mem, &mut alloc);
    aspace
        .map_range(
            &mut mem,
            &mut alloc,
            VirtAddr(0),
            PhysAddr(0),
            16 << 20,
            flags::PRESENT | flags::WRITABLE | flags::USER,
        )
        .unwrap();
    let cr3 = aspace.cr3();
    let mut f = FuncBuilder::new("loop", TargetIsa::Host);
    let lp = f.new_label();
    f.li(abi::S1, INTERP_ITERS);
    f.bind(lp);
    f.addi(abi::A0, abi::A0, 1);
    f.addi(abi::A1, abi::A1, 2);
    f.addi(abi::S1, abi::S1, -1);
    f.bne(abi::S1, abi::ZERO, lp);
    f.halt();
    let enc = Isa::X64.encode(&f.finish()).unwrap();
    mem.write_bytes(PhysAddr(0x40_0000), &enc.bytes);
    let env = MemEnv::paper_default();

    // Count retired instructions once so instructions/sec is exact.
    let mut probe = Core::new(CoreConfig::host());
    probe.set_cr3(cr3);
    probe.set_pc(VirtAddr(0x40_0000));
    assert_eq!(probe.run(&mut mem, &env, u64::MAX), StopReason::Halt);
    let insts = probe.counters().instructions;

    bench("interpret", samples, Some(insts), move || {
        let mut core = Core::new(CoreConfig::host());
        core.set_cr3(cr3);
        core.set_pc(VirtAddr(0x40_0000));
        black_box(core.run(&mut mem, &env, u64::MAX));
    })
}

/// Chaining best case: a tight loop dominated by taken back-edges —
/// the body is just a cross-register add plus the decrement, so nearly
/// every retired instruction sits on a block boundary. Without block
/// chaining every iteration re-enters top-level dispatch; with it the
/// whole run is one chain/spin entry. The cross-register `add` is
/// deliberate: it keeps the loop out of the affine closed form
/// (DESIGN.md §8), so this bench exercises the *iterating* spin tier
/// — the machinery the `bench_gate` regression gate watches for
/// "chaining fell off".
fn bench_interpret_hotloop(samples: u32) -> BenchResult {
    let mut mem = PhysMem::new();
    let mut alloc = BumpFrameAlloc::new(PhysAddr(0x100_0000), PhysAddr(0x200_0000));
    let mut aspace = AddressSpace::new(&mut mem, &mut alloc);
    aspace
        .map_range(
            &mut mem,
            &mut alloc,
            VirtAddr(0),
            PhysAddr(0),
            16 << 20,
            flags::PRESENT | flags::WRITABLE | flags::USER,
        )
        .unwrap();
    let cr3 = aspace.cr3();
    let mut f = FuncBuilder::new("hotloop", TargetIsa::Host);
    let lp = f.new_label();
    f.li(abi::S1, 4 * INTERP_ITERS);
    f.bind(lp);
    f.add(abi::A0, abi::A0, abi::A1);
    f.addi(abi::S1, abi::S1, -1);
    f.bne(abi::S1, abi::ZERO, lp);
    f.halt();
    let enc = Isa::X64.encode(&f.finish()).unwrap();
    mem.write_bytes(PhysAddr(0x40_0000), &enc.bytes);
    let env = MemEnv::paper_default();

    let mut probe = Core::new(CoreConfig::host());
    probe.set_cr3(cr3);
    probe.set_pc(VirtAddr(0x40_0000));
    assert_eq!(probe.run(&mut mem, &env, u64::MAX), StopReason::Halt);
    let insts = probe.counters().instructions;

    bench("interpret_hotloop", samples, Some(insts), move || {
        let mut core = Core::new(CoreConfig::host());
        core.set_cr3(cr3);
        core.set_pc(VirtAddr(0x40_0000));
        black_box(core.run(&mut mem, &env, u64::MAX));
    })
}

/// Pointer-chase workload end to end (Fig. 5 inner loop).
fn bench_pointer_chase(samples: u32) -> BenchResult {
    bench("chase_256_nodes_8_calls", samples, None, || {
        let cfg = ChaseConfig {
            calls: 8,
            ..ChaseConfig::frequent(256, ChaseMode::Flick)
        };
        black_box(run_chase(&cfg).unwrap().per_call);
    })
}

/// Graph generation throughput (Table IV staging).
fn bench_graph_generation(samples: u32) -> BenchResult {
    bench("rmat_64k_edges", samples, None, || {
        black_box(rmat(8_192, 65_536, 42).e());
    })
}

/// Renders results as JSON (no serializer dependency; the shape is flat
/// enough to format by hand).
fn to_json(samples: u32, results: &[BenchResult]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"samples\": {samples},\n"));
    // Self-annotate the recording host: host_speedup < 1 is expected
    // when the recorder has one core, and the gate skips parallel
    // fields accordingly.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    out.push_str(&format!("  \"host_parallelism\": {cores},\n"));
    // The note matches the recorder: on one core par_* numbers are
    // informational (sharding cannot beat sequential), on several they
    // are real and bench_gate gates them.
    if cores > 1 {
        out.push_str(
            "  \"par_note\": \"recorded on a multi-core runner; bench_gate gates \
             par_mean_ns, and host_speedup < 1 would be a real regression\",\n",
        );
    } else {
        out.push_str(
            "  \"par_note\": \"par_mean_ns/host_speedup are informational when \
             host_parallelism is 1; bench_gate only gates them on multi-core runners\",\n",
        );
    }
    out.push_str("  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        let sep = if i + 1 < results.len() { "," } else { "" };
        let mut extra = match (r.insts_per_iter, r.insts_per_sec()) {
            (Some(n), Some(ips)) => format!(
                ", \"instructions_per_iter\": {n}, \"instructions_per_sec\": {ips:.0}"
            ),
            _ => String::new(),
        };
        if let Some(cps) = r.sim_calls_per_sec {
            extra.push_str(&format!(", \"sim_calls_per_sec\": {cps:.0}"));
        }
        if let (Some(t), Some(p), Some(s)) = (r.par_threads, r.par_mean, r.host_speedup()) {
            extra.push_str(&format!(
                ", \"threads\": {t}, \"par_mean_ns\": {}, \"host_speedup\": {s:.2}",
                p.as_nanos()
            ));
        }
        if let Some(ns) = r.sim_round_trip_ns {
            extra.push_str(&format!(", \"sim_round_trip_ns\": {ns}"));
        }
        if let Some(t) = &r.tail {
            extra.push_str(&format!(
                ", \"offered_rps\": {:.0}, \"goodput_rps\": {:.0}, \"p50_ns\": {}, \
                 \"p99_ns\": {}, \"p999_ns\": {}, \"admission_rejects\": {}",
                t.offered_rps, t.goodput_rps, t.p50_ns, t.p99_ns, t.p999_ns,
                t.admission_rejects
            ));
        }
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {}, \"best_ns\": {}{}}}{}\n",
            r.name,
            r.mean.as_nanos(),
            r.best.as_nanos(),
            extra,
            sep
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let mut samples: u32 = 10;
    let mut json_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--samples" => {
                samples = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n > 0)
                    .expect("--samples needs a positive integer");
            }
            "--json" => {
                json_path = Some(args.next().expect("--json needs a path"));
            }
            // `cargo bench` passes --bench through to the harness.
            "--bench" => {}
            other => panic!("unknown argument: {other}"),
        }
    }
    let mut results = vec![
        bench_migration_round_trip(samples),
        bench_interpreter(samples),
        bench_pure_interpret(samples),
        bench_interpret_hotloop(samples),
        bench_pointer_chase(samples),
        bench_graph_generation(samples),
        bench_migration_throughput(samples, 2, 1, "migration_throughput_1nxp"),
        bench_migration_throughput(samples, 2, 2, "migration_throughput_2nxp"),
        bench_migration_throughput(samples, 2, 4, "migration_throughput_4nxp"),
        bench_migration_throughput(samples, 2, 8, "migration_throughput_8nxp"),
        bench_migration_throughput(samples, 4, 16, "migration_throughput_16nxp"),
        bench_migration_throughput_degraded(samples),
    ];
    results.extend(bench_isa_matrix(samples));
    results.extend(bench_tail_latency(samples));
    if let Some(path) = json_path {
        std::fs::write(&path, to_json(samples, &results)).expect("write json");
        println!("wrote {path}");
    }
}
