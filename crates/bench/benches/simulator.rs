//! Wall-clock benchmarks of the simulator itself: how fast the
//! reproduction executes, orthogonal to the simulated times the
//! experiment binaries report.
//!
//! Self-timing harness (`harness = false`): each workload runs a few
//! warm-up iterations, then reports mean wall-clock per iteration over
//! a fixed sample count. Run with `cargo bench`.

use flick::Machine;
use flick_isa::{abi, FuncBuilder, TargetIsa};
use flick_sim::TraceConfig;
use flick_toolchain::ProgramBuilder;
use flick_workloads::chase::{run_chase, ChaseConfig, ChaseMode};
use flick_workloads::graph::rmat;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn quiet() -> Machine {
    Machine::builder()
        .trace(TraceConfig {
            enabled: false,
            capacity: 0,
        })
        .build()
}

/// Times `f` over `samples` iterations after `warmup` unrecorded ones.
fn bench(name: &str, samples: u32, mut f: impl FnMut()) {
    const WARMUP: u32 = 2;
    for _ in 0..WARMUP {
        f();
    }
    let mut total = Duration::ZERO;
    let mut best = Duration::MAX;
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed();
        total += dt;
        best = best.min(dt);
    }
    let mean = total / samples;
    println!("{name:<32} mean {mean:>12.3?}  best {best:>12.3?}  (n={samples})");
}

/// Simulating one migration round trip (machinery cost).
fn bench_migration_round_trip() {
    bench("simulate_32_round_trips", 10, || {
        let mut m = quiet();
        let mut p = ProgramBuilder::new("bench");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        let lp = main.new_label();
        main.li(abi::S1, 32);
        main.bind(lp);
        main.call("nxp_nop");
        main.addi(abi::S1, abi::S1, -1);
        main.bne(abi::S1, abi::ZERO, lp);
        main.call("flick_exit");
        p.func(main.finish());
        let mut f = FuncBuilder::new("nxp_nop", TargetIsa::Nxp);
        f.ret();
        p.func(f.finish());
        let pid = m.load_program(&mut p).unwrap();
        black_box(m.run(pid).unwrap().sim_time);
    });
}

/// Raw interpreter throughput (host core, tight ALU loop).
fn bench_interpreter() {
    bench("interpret_100k_instructions", 10, || {
        let mut m = quiet();
        let mut p = ProgramBuilder::new("bench");
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        let lp = main.new_label();
        main.li(abi::S1, 25_000);
        main.bind(lp);
        main.addi(abi::A0, abi::A0, 1);
        main.addi(abi::A1, abi::A1, 2);
        main.addi(abi::S1, abi::S1, -1);
        main.bne(abi::S1, abi::ZERO, lp);
        main.call("flick_exit");
        p.func(main.finish());
        let pid = m.load_program(&mut p).unwrap();
        black_box(m.run(pid).unwrap().exit_code);
    });
}

/// Pointer-chase workload end to end (Fig. 5 inner loop).
fn bench_pointer_chase() {
    bench("chase_256_nodes_8_calls", 10, || {
        let cfg = ChaseConfig {
            calls: 8,
            ..ChaseConfig::frequent(256, ChaseMode::Flick)
        };
        black_box(run_chase(&cfg).unwrap().per_call);
    });
}

/// Graph generation throughput (Table IV staging).
fn bench_graph_generation() {
    bench("rmat_64k_edges", 10, || {
        black_box(rmat(8_192, 65_536, 42).e());
    });
}

fn main() {
    bench_migration_round_trip();
    bench_interpreter();
    bench_pointer_chase();
    bench_graph_generation();
}
