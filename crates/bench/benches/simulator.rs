//! Criterion benchmarks of the simulator itself: how fast the
//! reproduction executes (wall-clock), orthogonal to the simulated
//! times the experiment binaries report.

use criterion::{criterion_group, criterion_main, Criterion};
use flick::Machine;
use flick_isa::{abi, FuncBuilder, TargetIsa};
use flick_sim::TraceConfig;
use flick_toolchain::ProgramBuilder;
use flick_workloads::chase::{run_chase, ChaseConfig, ChaseMode};
use flick_workloads::graph::rmat;
use std::hint::black_box;

fn quiet() -> Machine {
    Machine::builder()
        .trace(TraceConfig {
            enabled: false,
            capacity: 0,
        })
        .build()
}

/// Simulating one migration round trip (machinery cost).
fn bench_migration_round_trip(c: &mut Criterion) {
    c.bench_function("simulate_32_round_trips", |b| {
        b.iter(|| {
            let mut m = quiet();
            let mut p = ProgramBuilder::new("bench");
            let mut main = FuncBuilder::new("main", TargetIsa::Host);
            let lp = main.new_label();
            main.li(abi::S1, 32);
            main.bind(lp);
            main.call("nxp_nop");
            main.addi(abi::S1, abi::S1, -1);
            main.bne(abi::S1, abi::ZERO, lp);
            main.call("flick_exit");
            p.func(main.finish());
            let mut f = FuncBuilder::new("nxp_nop", TargetIsa::Nxp);
            f.ret();
            p.func(f.finish());
            let pid = m.load_program(&mut p).unwrap();
            black_box(m.run(pid).unwrap().sim_time)
        })
    });
}

/// Raw interpreter throughput (host core, tight ALU loop).
fn bench_interpreter(c: &mut Criterion) {
    c.bench_function("interpret_100k_instructions", |b| {
        b.iter(|| {
            let mut m = quiet();
            let mut p = ProgramBuilder::new("bench");
            let mut main = FuncBuilder::new("main", TargetIsa::Host);
            let lp = main.new_label();
            main.li(abi::S1, 25_000);
            main.bind(lp);
            main.addi(abi::A0, abi::A0, 1);
            main.addi(abi::A1, abi::A1, 2);
            main.addi(abi::S1, abi::S1, -1);
            main.bne(abi::S1, abi::ZERO, lp);
            main.call("flick_exit");
            p.func(main.finish());
            let pid = m.load_program(&mut p).unwrap();
            black_box(m.run(pid).unwrap().exit_code)
        })
    });
}

/// Pointer-chase workload end to end (Fig. 5 inner loop).
fn bench_pointer_chase(c: &mut Criterion) {
    c.bench_function("chase_256_nodes_8_calls", |b| {
        b.iter(|| {
            let cfg = ChaseConfig {
                calls: 8,
                ..ChaseConfig::frequent(256, ChaseMode::Flick)
            };
            black_box(run_chase(&cfg).unwrap().per_call)
        })
    });
}

/// Graph generation throughput (Table IV staging).
fn bench_graph_generation(c: &mut Criterion) {
    c.bench_function("rmat_64k_edges", |b| {
        b.iter(|| black_box(rmat(8_192, 65_536, 42).e()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_migration_round_trip,
              bench_interpreter,
              bench_pointer_chase,
              bench_graph_generation
}
criterion_main!(benches);
