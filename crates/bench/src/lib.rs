#![warn(missing_docs)]
//! Shared helpers for the experiment harnesses.
//!
//! Each table and figure of the paper has a binary in `src/bin/`:
//!
//! | target | regenerates |
//! |---|---|
//! | `table2` | Table II — migration overhead vs prior work |
//! | `table3` | Table III — Flick round-trip overhead (+ Table I header) |
//! | `fig5a` | Fig. 5a — pointer chasing, frequent migration |
//! | `fig5b` | Fig. 5b — pointer chasing, 100 µs migration interval |
//! | `table4` | Table IV — BFS datasets, baseline vs Flick |
//! | `ablations` | design-point ablations (DMA burst, stacks, hugepages, poll) |
//! | `all_experiments` | everything above, in EXPERIMENTS.md format |

use flick_sim::Picos;

/// Formats a duration in microseconds with one decimal.
pub fn us(p: Picos) -> String {
    format!("{:.1}us", p.as_micros_f64())
}

/// Formats a duration in seconds with one decimal.
pub fn secs(p: Picos) -> String {
    format!("{:.1}s", p.as_secs_f64())
}

/// Relative error of `measured` against `expected`, in percent.
pub fn rel_err_pct(measured: f64, expected: f64) -> f64 {
    (measured - expected) / expected * 100.0
}

/// Prints a markdown table: header row then data rows.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) {
    println!("| {} |", headers.join(" | "));
    println!("|{}|", headers.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for row in rows {
        println!("| {} |", row.join(" | "));
    }
}

/// The Table I platform banner printed by harnesses.
pub fn platform_banner() -> String {
    [
        "Simulated platform (cf. paper Table I):",
        "  Host core     x64-like @ 2.4 GHz (Xeon E5-2620v3 class)",
        "  NxP core      rv64-like in-order scalar @ 200 MHz (RV12 class)",
        "  NxP memory    4 GiB DRAM behind BAR0, 1 GiB huge pages",
        "  Interconnect  PCIe 3.0 x8 model (825 ns host->NxP read RT,",
        "                267 ns NxP->local read RT, burst descriptor DMA)",
        "  OS            simulated kernel w/ NX-fault migration hooks",
    ]
    .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(us(Picos::from_nanos(18_300)), "18.3us");
        assert_eq!(secs(Picos::from_millis(1_500)), "1.5s");
        assert!((rel_err_pct(110.0, 100.0) - 10.0).abs() < 1e-9);
    }
}
