//! Regenerates Table IV: BFS over the three social-network datasets,
//! baseline (host traverses over PCIe) vs Flick (traversal on the NxP,
//! per-vertex dummy host callback).
//!
//! Epinions1 runs **twice**: fully interpreted on the simulated machine
//! *and* through the accounted backend, cross-validating the backend
//! that Pokec and LiveJournal1 (too large to interpret) rely on.
//!
//! Usage: `table4 [--quick]` — `--quick` scales the two big datasets
//! down 16x to keep graph generation fast; the shape (who wins) is
//! unchanged.

use flick_bench::{markdown_table, secs};
use flick_mem::LatencyModel;
use flick_workloads::accounted::{run_accounted, BfsCostModel};
use flick_workloads::bfs::{run_bfs, BfsConfig, BfsMode};
use flick_workloads::graph::{rmat, Dataset};
use flick_workloads::measure_null_call;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale: u64 = if quick { 16 } else { 1 };
    let iterations = 10u64;
    println!("## Table IV: BFS datasets and execution time\n");
    if quick {
        println!("(--quick: Pokec/LiveJournal scaled down {scale}x)\n");
    }

    // Calibrate the accounted callback cost on the real machinery.
    let rt = measure_null_call(2_000);
    let lat = LatencyModel::paper_default();
    let flick_costs = BfsCostModel::flick(&lat, rt.nxp_host_nxp);
    let base_costs = BfsCostModel::host_direct(&lat);

    let mut rows = Vec::new();
    for ds in Dataset::all() {
        // Epinions1 is small enough to run at full size always.
        let row_scale = if ds == Dataset::Epinions1 { 1 } else { scale };
        let (v, e) = (ds.vertices() / row_scale, ds.edges() / row_scale);
        let g = if row_scale == 1 {
            ds.make(1)
        } else {
            rmat(v, e, 1)
        };
        let root = g.pick_root(7);

        // Accounted runs (all datasets).
        let fa = run_accounted(&g, root, iterations, &flick_costs);
        let ba = run_accounted(&g, root, iterations, &base_costs);

        // Interpreted run (Epinions only): full-machinery cross-check.
        let interp = if ds == Dataset::Epinions1 {
            let fi = run_bfs(
                &g,
                &BfsConfig {
                    iterations,
                    mode: BfsMode::Flick,
                    seed: 7,
                },
            )
            .expect("interpreted Flick BFS");
            let bi = run_bfs(
                &g,
                &BfsConfig {
                    iterations,
                    mode: BfsMode::HostDirect,
                    seed: 7,
                },
            )
            .expect("interpreted baseline BFS");
            Some((bi.per_iteration, fi.per_iteration))
        } else {
            None
        };

        rows.push(vec![
            ds.name().to_string(),
            format!("{}k", v / 1000),
            format!("{}k", e / 1000),
            format!("{:.1}s", ds.paper_baseline_secs()),
            format!("{:.1}s", ds.paper_flick_secs()),
            secs(ba.per_iteration),
            secs(fa.per_iteration),
            format!(
                "{:.2}x",
                ba.per_iteration.as_nanos_f64() / fa.per_iteration.as_nanos_f64()
            ),
        ]);
        if let Some((bi, fi)) = interp {
            rows.push(vec![
                "  (interpreted)".into(),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
                secs(bi),
                secs(fi),
                format!("{:.2}x", bi.as_nanos_f64() / fi.as_nanos_f64()),
            ]);
        }
    }
    markdown_table(
        &[
            "Dataset",
            "Vertices",
            "Edges",
            "Paper base",
            "Paper Flick",
            "Base (sim)",
            "Flick (sim)",
            "Flick speedup",
        ],
        &rows,
    );
    println!(
        "\nShape check: Flick loses on Epinions1 (high vertex/edge ratio) and wins on Pokec/LiveJournal1."
    );
}
