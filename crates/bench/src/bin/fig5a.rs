//! Regenerates Fig. 5a: pointer chasing with frequent migration.
//! Normalized performance (baseline time / system time) vs memory
//! accesses per migration, for Flick and for systems with 500 µs / 1 ms
//! migration latency.
//!
//! Usage: `fig5a [step]` — step defaults to the paper's 4; pass a
//! larger step (e.g. `fig5a 32`) for a quick sweep.

use flick_baselines::added_latency_machine;
use flick_sim::Picos;
use flick_workloads::chase::{run_chase, run_chase_on, ChaseConfig, ChaseMode};

/// One sweep point: (baseline, flick, +500us, +1ms) per-call times.
pub fn sweep_point(k: u64, work: Picos) -> [Picos; 4] {
    let mk = |mode| {
        let mut c = ChaseConfig::frequent(k, mode);
        c.inter_call_work = work;
        c
    };
    let base = run_chase(&mk(ChaseMode::HostDirect)).expect("baseline runs");
    let flick = run_chase(&mk(ChaseMode::Flick)).expect("flick runs");
    let slow500 = {
        let mut m = added_latency_machine(Picos::from_micros(500));
        run_chase_on(&mut m, &mk(ChaseMode::Flick)).expect("500us system runs")
    };
    let slow1000 = {
        let mut m = added_latency_machine(Picos::from_millis(1));
        run_chase_on(&mut m, &mk(ChaseMode::Flick)).expect("1ms system runs")
    };
    [
        base.per_call,
        flick.per_call,
        slow500.per_call,
        slow1000.per_call,
    ]
}

fn main() {
    let step: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    println!("## Fig. 5a: pointer chasing, frequent migration (no inter-call work)\n");
    println!("normalized performance = baseline_time / system_time\n");
    println!("| accesses/migration | Flick | +500us latency | +1ms latency |");
    println!("|---|---|---|---|");
    let mut crossover = None;
    let mut last_flick = 0.0;
    let mut k = 4;
    while k <= 1024 {
        let [base, flick, s500, s1000] = sweep_point(k, Picos::ZERO);
        let norm = |t: Picos| base.as_nanos_f64() / t.as_nanos_f64();
        let nf = norm(flick);
        if crossover.is_none() && nf >= 1.0 {
            crossover = Some(k);
        }
        last_flick = nf;
        println!(
            "| {k} | {nf:.2} | {:.3} | {:.3} |",
            norm(s500),
            norm(s1000)
        );
        k += step;
    }
    println!(
        "\nFlick crosses the baseline at ~{} accesses/migration (paper: ~32){}.",
        crossover.map_or("never".to_string(), |k| k.to_string()),
        if step > 4 {
            format!(" — sampled at step {step}; run `fig5a 4` for the exact point")
        } else {
            String::new()
        }
    );
    println!(
        "Flick plateau at 1024 accesses: {last_flick:.2}x (paper: stabilises at ~2.6x)."
    );
}
