//! Regenerates Table III: Flick thread-migration round-trip overhead,
//! plus the §V-A decomposition note (page-fault share).

use flick_bench::{markdown_table, platform_banner, rel_err_pct, us};
use flick_workloads::measure_null_call;
use flick_workloads::nullcall::decompose_round_trip;

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10_000);
    println!("{}\n", platform_banner());
    println!("## Table III: Flick thread migration round trip overhead\n");
    let r = measure_null_call(iters);
    markdown_table(
        &["Direction", "Paper", "Measured", "Error"],
        &[
            vec![
                "Host-NxP-Host".into(),
                "18.3us".into(),
                us(r.host_nxp_host),
                format!("{:+.1}%", rel_err_pct(r.host_nxp_host.as_micros_f64(), 18.3)),
            ],
            vec![
                "NxP-Host-NxP".into(),
                "16.9us".into(),
                us(r.nxp_host_nxp),
                format!("{:+.1}%", rel_err_pct(r.nxp_host_nxp.as_micros_f64(), 16.9)),
            ],
        ],
    );
    println!(
        "\nHost-side page fault share: {} (paper: 0.7us) over {} iterations",
        us(r.page_fault_share),
        r.iterations
    );

    println!("\n### Round-trip decomposition (steady-state H-N-H, from the event trace)\n");
    let phases = decompose_round_trip();
    let total: flick_sim::Picos = phases.iter().map(|p| p.duration).sum();
    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|p| {
            vec![
                p.name.to_string(),
                us(p.duration),
                format!("{:.0}%", p.duration.as_nanos_f64() / total.as_nanos_f64() * 100.0),
            ]
        })
        .collect();
    markdown_table(&["Phase", "Time", "Share"], &rows);
    println!("\ntotal: {}", us(total));
}
