//! Prints a Fig. 2-style two-column timeline of a nested bidirectional
//! migration (host → NxP → host → NxP → back), from the event trace.

use flick::Machine;
use flick_isa::{abi, FuncBuilder, TargetIsa};
use flick_toolchain::ProgramBuilder;

fn main() {
    let mut m = Machine::paper_default();
    let mut p = ProgramBuilder::new("timeline");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.li(abi::A0, 5);
    main.call("nxp_outer");
    main.call("flick_exit");
    p.func(main.finish());
    let mut outer = FuncBuilder::new("nxp_outer", TargetIsa::Nxp);
    outer.prologue(16, &[]);
    outer.call("host_inner");
    outer.epilogue(16, &[]);
    p.func(outer.finish());
    let mut inner = FuncBuilder::new("host_inner", TargetIsa::Host);
    inner.add(abi::A0, abi::A0, abi::A0);
    inner.ret();
    p.func(inner.finish());
    let pid = m.load_program(&mut p).expect("loads");
    let out = m.run(pid).expect("runs");
    println!(
        "nested call chain main → nxp_outer → host_inner, exit = {}\n",
        out.exit_code
    );
    print!("{}", flick::timeline::format(m.trace()));
}
