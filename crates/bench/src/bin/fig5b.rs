//! Regenerates Fig. 5b: pointer chasing with *infrequent* migration —
//! the thread migrates every ~100 µs because the host performs 100 µs
//! of work between traversal calls. The normalized performance
//! includes that host work in both systems, which is why Flick's
//! benefit shrinks to ~2x and slow systems are penalised less.
//!
//! Usage: `fig5b [step]` (step defaults to the paper's 4).

use flick_baselines::added_latency_machine;
use flick_sim::Picos;
use flick_workloads::chase::{run_chase, run_chase_on, ChaseConfig, ChaseMode};

fn main() {
    let step: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(4);
    let work = Picos::from_micros(100);
    println!("## Fig. 5b: pointer chasing, one migration per ~100us of host work\n");
    println!("normalized performance = (baseline_time + work) / (system_time + work)\n");
    println!("| accesses/migration | Flick | +500us latency | +1ms latency |");
    println!("|---|---|---|---|");
    let mut plateau = 0.0;
    let mut k = 4;
    while k <= 1024 {
        let mk = |mode| ChaseConfig {
            inter_call_work: work,
            ..ChaseConfig::frequent(k, mode)
        };
        let base = run_chase(&mk(ChaseMode::HostDirect)).expect("baseline runs");
        let flick = run_chase(&mk(ChaseMode::Flick)).expect("flick runs");
        let s500 = {
            let mut m = added_latency_machine(Picos::from_micros(500));
            run_chase_on(&mut m, &mk(ChaseMode::Flick)).expect("500us system runs")
        };
        let s1000 = {
            let mut m = added_latency_machine(Picos::from_millis(1));
            run_chase_on(&mut m, &mk(ChaseMode::Flick)).expect("1ms system runs")
        };
        // Include the inter-call work in the figure of merit.
        let total = |t: Picos| (t + work).as_nanos_f64();
        let norm = |t: Picos| total(base.per_call) / total(t);
        plateau = norm(flick.per_call);
        println!(
            "| {k} | {:.2} | {:.3} | {:.3} |",
            norm(flick.per_call),
            norm(s500.per_call),
            norm(s1000.per_call)
        );
        k += step;
    }
    println!(
        "\nFlick benefit at 1024 accesses: {plateau:.2}x (paper: reduced to ~2x vs 2.6x in Fig. 5a)."
    );
}
