//! Runs every experiment and emits an EXPERIMENTS.md-formatted report:
//! paper value vs measured value for each table and figure.
//!
//! Usage: `all_experiments [--full]` — `--full` uses the paper's exact
//! sweep steps and full-size graphs (several minutes); the default uses
//! a coarser Fig. 5 step and 8x-scaled big graphs (same shapes).

use flick_baselines::{added_latency_machine, prior_work_rows, prior_work::speedup_vs};
use flick_bench::{markdown_table, platform_banner, secs, us};
use flick_mem::LatencyModel;
use flick_sim::Picos;
use flick_workloads::accounted::{run_accounted, BfsCostModel};
use flick_workloads::bfs::{run_bfs, BfsConfig, BfsMode};
use flick_workloads::chase::{run_chase, run_chase_on, ChaseConfig, ChaseMode};
use flick_workloads::graph::{rmat, Dataset};
use flick_workloads::measure_null_call;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let (step, scale, iters) = if full { (4, 1, 10_000) } else { (64, 8, 2_000) };

    println!("# EXPERIMENTS — paper vs reproduction\n");
    println!("```\n{}\n```\n", platform_banner());
    println!(
        "Mode: {} (fig5 step {step}, big graphs 1/{scale} scale, {iters} null-call iterations)\n",
        if full { "--full" } else { "quick" }
    );

    // ---- Table III ------------------------------------------------------
    let rt = measure_null_call(iters);
    println!("## Table III — thread migration round trip\n");
    markdown_table(
        &["Direction", "Paper", "Measured"],
        &[
            vec!["Host-NxP-Host".into(), "18.3us".into(), us(rt.host_nxp_host)],
            vec!["NxP-Host-NxP".into(), "16.9us".into(), us(rt.nxp_host_nxp)],
            vec![
                "host page-fault share".into(),
                "0.7us".into(),
                us(rt.page_fault_share),
            ],
        ],
    );
    println!();

    // ---- Table II -------------------------------------------------------
    println!("## Table II — overhead vs prior work\n");
    let rows: Vec<Vec<String>> = prior_work_rows()
        .iter()
        .map(|r| {
            vec![
                r.work.into(),
                us(r.overhead),
                format!("{:.1}x", speedup_vs(rt.host_nxp_host, r)),
            ]
        })
        .collect();
    markdown_table(&["Prior work", "Published overhead", "Flick speedup"], &rows);
    println!("\nPaper claim: 23x-38x over heterogeneous-ISA prior work.\n");

    // ---- Fig. 5a / 5b ---------------------------------------------------
    for (fig, work) in [("5a", Picos::ZERO), ("5b", Picos::from_micros(100))] {
        println!(
            "## Fig. {fig} — pointer chasing ({})\n",
            if work == Picos::ZERO {
                "frequent migration"
            } else {
                "migration every ~100us of host work"
            }
        );
        println!("| accesses/migration | Flick | +500us | +1ms |");
        println!("|---|---|---|---|");
        let mut crossover = None;
        let mut plateau = 0.0;
        let mut k = 4;
        while k <= 1024 {
            let mk = |mode| ChaseConfig {
                inter_call_work: work,
                ..ChaseConfig::frequent(k, mode)
            };
            let base = run_chase(&mk(ChaseMode::HostDirect)).expect("baseline");
            let flick = run_chase(&mk(ChaseMode::Flick)).expect("flick");
            let s500 = run_chase_on(
                &mut added_latency_machine(Picos::from_micros(500)),
                &mk(ChaseMode::Flick),
            )
            .expect("500us");
            let s1000 = run_chase_on(
                &mut added_latency_machine(Picos::from_millis(1)),
                &mk(ChaseMode::Flick),
            )
            .expect("1ms");
            let norm = |t: Picos| {
                (base.per_call + work).as_nanos_f64() / (t + work).as_nanos_f64()
            };
            let nf = norm(flick.per_call);
            if crossover.is_none() && nf >= 1.0 {
                crossover = Some(k);
            }
            plateau = nf;
            println!(
                "| {k} | {nf:.2} | {:.3} | {:.3} |",
                norm(s500.per_call),
                norm(s1000.per_call)
            );
            k += step;
        }
        if work == Picos::ZERO {
            println!(
                "\ncrossover ~{} accesses (paper ~32); plateau {plateau:.2}x (paper ~2.6x)\n",
                crossover.map_or("n/a".into(), |k| k.to_string())
            );
        } else {
            println!("\nplateau {plateau:.2}x (paper: benefit reduced to ~2x)\n");
        }
    }

    // ---- Table IV -------------------------------------------------------
    println!("## Table IV — BFS datasets\n");
    let lat = LatencyModel::paper_default();
    let flick_costs = BfsCostModel::flick(&lat, rt.nxp_host_nxp);
    let base_costs = BfsCostModel::host_direct(&lat);
    let mut rows = Vec::new();
    for ds in Dataset::all() {
        let row_scale = if ds == Dataset::Epinions1 { 1 } else { scale };
        let g = rmat(ds.vertices() / row_scale, ds.edges() / row_scale, 1);
        let root = g.pick_root(7);
        let fa = run_accounted(&g, root, 10, &flick_costs);
        let ba = run_accounted(&g, root, 10, &base_costs);
        let paper_ratio = ds.paper_baseline_secs() / ds.paper_flick_secs();
        let measured_ratio = ba.per_iteration.as_nanos_f64() / fa.per_iteration.as_nanos_f64();
        rows.push(vec![
            format!("{}{}", ds.name(), if row_scale > 1 { " (scaled)" } else { "" }),
            format!("{:.2}x", paper_ratio),
            format!("{:.2}x", measured_ratio),
            secs(ba.per_iteration),
            secs(fa.per_iteration),
        ]);
        if ds == Dataset::Epinions1 {
            // Cross-validate against full interpretation.
            let fi = run_bfs(&g, &BfsConfig { iterations: 10, mode: BfsMode::Flick, seed: 7 })
                .expect("interpreted flick bfs");
            let bi = run_bfs(&g, &BfsConfig { iterations: 10, mode: BfsMode::HostDirect, seed: 7 })
                .expect("interpreted baseline bfs");
            rows.push(vec![
                "  (interpreted cross-check)".into(),
                String::new(),
                format!(
                    "{:.2}x",
                    bi.per_iteration.as_nanos_f64() / fi.per_iteration.as_nanos_f64()
                ),
                secs(bi.per_iteration),
                secs(fi.per_iteration),
            ]);
        }
    }
    markdown_table(
        &["Dataset", "Paper speedup", "Measured speedup", "Base/iter", "Flick/iter"],
        &rows,
    );
    println!("\nShape: Flick loses on Epinions1, wins on Pokec and LiveJournal1 (as in the paper).");
}
