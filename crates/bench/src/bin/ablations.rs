//! Ablations of the design points DESIGN.md calls out:
//!
//! 1. **Descriptor transfer: burst DMA vs per-word MMIO** (§IV-B's
//!    "one PCIe burst" claim) — replace the burst cost with per-word
//!    posted writes and re-measure the round trip.
//! 2. **NxP stacks: on-chip SRAM vs host DRAM** (§III-D's local-stack
//!    placement) — every handler stack access crosses PCIe.
//! 3. **Huge pages: 1 GiB vs 2 MiB window mapping** (§IV-A / §V's
//!    four-TLB-entry point) — the 16-entry NxP TLB starts thrashing on
//!    random pointer chasing.
//! 4. **Scheduler poll period** — how descriptor pickup latency scales.

use flick::Machine;
use flick_bench::{markdown_table, us};
use flick_mem::LatencyModel;
use flick_os::KernelConfig;
use flick_paging::PageSize;
use flick_sim::{Picos, TraceConfig};
use flick_workloads::chase::{run_chase_on, ChaseConfig, ChaseMode};
use flick_workloads::nullcall::null_call_program;
use flick_baselines::offload_round_trip;

fn quiet_trace() -> TraceConfig {
    TraceConfig {
        enabled: false,
        capacity: 0,
    }
}

/// Runs the null call on a custom machine; returns the average.
/// `nested` adds an NxP→host leg, which is also the only variant whose
/// handler frames touch the NxP stack.
fn null_rt_with(mut m: Machine, iters: u64, nested: bool) -> Picos {
    let mut p = null_call_program(iters, nested);
    let pid = m.load_program(&mut p).expect("loads");
    Picos::from_nanos(m.run(pid).expect("runs").exit_code)
}

/// H-N-H round trip.
fn null_rt(m: Machine, iters: u64) -> Picos {
    null_rt_with(m, iters, false)
}

fn main() {
    let iters = 2_000;

    println!("## Ablation 1: descriptor via burst DMA vs per-word MMIO\n");
    let burst = null_rt(Machine::builder().trace(quiet_trace()).build(), iters);
    let mmio = {
        let mut lat = LatencyModel::paper_default();
        // 64-byte beat = eight 8-byte posted writes instead of one burst
        // beat; no setup amortisation.
        lat.dma_setup = Picos::ZERO;
        lat.dma_per_beat = lat.host_to_nxp_write * 8;
        null_rt(
            Machine::builder().trace(quiet_trace()).latency_model(lat).build(),
            iters,
        )
    };
    markdown_table(
        &["Transfer", "H-N-H round trip"],
        &[
            vec!["one PCIe burst (paper design)".into(), us(burst)],
            vec!["per-word MMIO writes".into(), us(mmio)],
        ],
    );
    println!();

    println!("## Ablation 2: NxP stacks in SRAM vs host DRAM\n");
    // Measured on the *nested* null call (H-N-H-N-H): the NxP handler
    // pushes/pops a frame on that path, so stack placement shows up.
    let sram = null_rt_with(Machine::builder().trace(quiet_trace()).build(), iters, true);
    let host_stacks = {
        let cfg = KernelConfig {
            stacks_in_host_dram: true,
            ..KernelConfig::default()
        };
        null_rt_with(
            Machine::builder().trace(quiet_trace()).kernel_config(cfg).build(),
            iters,
            true,
        )
    };
    markdown_table(
        &["Stack placement", "nested null-call round trip"],
        &[
            vec!["on-chip SRAM (paper design)".into(), us(sram)],
            vec!["host DRAM (every access crosses PCIe)".into(), us(host_stacks)],
        ],
    );
    println!();

    println!("## Ablation 3: NxP window huge pages (pointer chase, 256 nodes/call)\n");
    let chase_cfg = ChaseConfig {
        calls: 8,
        ..ChaseConfig::frequent(256, ChaseMode::Flick)
    };
    let huge = {
        let mut m = Machine::builder().trace(quiet_trace()).build();
        run_chase_on(&mut m, &chase_cfg).expect("1G-page chase")
    };
    let small = {
        let cfg = KernelConfig {
            nxp_window_page: PageSize::Size2M,
            ..KernelConfig::default()
        };
        let mut m = Machine::builder().trace(quiet_trace()).kernel_config(cfg).build();
        run_chase_on(&mut m, &chase_cfg).expect("2M-page chase")
    };
    markdown_table(
        &["Window mapping", "per-node latency"],
        &[
            vec![
                "4 x 1GiB pages (paper design, 4 TLB entries)".into(),
                format!("{:.0}ns", huge.per_node.as_nanos_f64()),
            ],
            vec![
                "2048 x 2MiB pages (TLB thrash, walks over PCIe)".into(),
                format!("{:.0}ns", small.per_node.as_nanos_f64()),
            ],
        ],
    );
    println!();

    println!("## Extension: Flick vs busy-wait offload engine (§II-B)\n");
    let flick_rt = burst;
    let off = offload_round_trip(
        &LatencyModel::paper_default(),
        &flick::NxpTiming::paper_default(),
    );
    markdown_table(
        &["System", "null round trip", "host core during NxP leg"],
        &[
            vec!["Flick (suspend + wake)".into(), us(flick_rt), "free for other work".into()],
            vec![
                "offload engine (busy-wait)".into(),
                us(off.total()),
                "pinned, spinning".into(),
            ],
        ],
    );
    println!(
        "\nThe gap is the OS path (fault + ioctl + suspend + wakeup); what it buys\nis shown by `cargo run --release --example concurrent_processes`.\n"
    );

    println!("## Ablation 5: hardened NxP cores (frequency sweep, §V-A claim)\n");
    let mut rows = Vec::new();
    for mhz in [200u64, 400, 1000, 2000] {
        let freq = flick_sim::Hertz::mhz(mhz);
        let mut core = flick_cpu::CoreConfig::nxp();
        core.freq = freq;
        let rt = null_rt(
            Machine::builder()
                .trace(quiet_trace())
                .nxp_core(core)
                .nxp_timing(flick::NxpTiming::at_freq(freq))
                .build(),
            iters,
        );
        rows.push(vec![format!("{mhz} MHz"), us(rt)]);
    }
    markdown_table(&["NxP clock", "H-N-H round trip"], &rows);
    println!(
        "\nPaper: \"We anticipate that the overhead of Flick can be further\nreduced when using hardened cores.\" The NxP-side share shrinks with\nthe clock; the remaining floor is the host OS path + PCIe.\n"
    );

    println!("## Ablation 4: NxP scheduler poll period\n");
    let mut rows = Vec::new();
    for poll_ns in [60u64, 500, 2_000, 10_000] {
        let mut t = flick::NxpTiming::paper_default();
        t.poll_period = Picos::from_nanos(poll_ns);
        let rt = null_rt(
            Machine::builder().trace(quiet_trace()).nxp_timing(t).build(),
            iters,
        );
        rows.push(vec![format!("{poll_ns}ns"), us(rt)]);
    }
    markdown_table(&["Poll period", "H-N-H round trip"], &rows);
}
