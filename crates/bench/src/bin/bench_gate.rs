//! CI bench-regression gate: compares a fresh bench JSON against the
//! committed baseline (`BENCH_simulator.json`) and fails loudly when a
//! gated benchmark's `mean_ns` regressed beyond the threshold.
//!
//! Only benches that are cheap enough to be stable at 1 sample are
//! gated — `interpret` (the pure step-loop ceiling the block engine
//! owns), `migration_throughput_1nxp` (the end-to-end descriptor
//! path), and `migration_throughput_degraded` (the same fleet with one
//! NxP crashed mid-run: death detection + channel quiesce + failover).
//! A 1-sample smoke run is noisy, so the threshold is generous (30%):
//! this catches "the fast path fell off a cliff", not 2% drift.
//!
//! Usage: `bench_gate <baseline.json> <current.json>`

use std::process::ExitCode;

/// Benchmarks gated against the committed baseline.
const GATED: [&str; 3] = [
    "interpret",
    "migration_throughput_1nxp",
    "migration_throughput_degraded",
];

/// Maximum tolerated `mean_ns` growth over the baseline.
const MAX_REGRESSION: f64 = 0.30;

/// Extracts `mean_ns` for the bench entry whose name is exactly `name`
/// from the flat JSON the harness emits. Dependency-free by design: the
/// match is on the `"name": "<name>"` key so that `interpret` does not
/// collide with `interpret_100k_instructions`.
fn mean_ns(json: &str, name: &str) -> Option<u64> {
    let needle = format!("\"name\": \"{name}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    let rest = line.split("\"mean_ns\": ").nth(1)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_gate <baseline.json> <current.json>");
        return ExitCode::FAILURE;
    }
    let baseline = std::fs::read_to_string(&args[1])
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", args[1]));
    let current = std::fs::read_to_string(&args[2])
        .unwrap_or_else(|e| panic!("cannot read current {}: {e}", args[2]));

    let mut failed = false;
    for name in GATED {
        let base = mean_ns(&baseline, name)
            .unwrap_or_else(|| panic!("baseline has no mean_ns for {name}"));
        let cur = mean_ns(&current, name)
            .unwrap_or_else(|| panic!("current run has no mean_ns for {name}"));
        let ratio = cur as f64 / base as f64;
        let verdict = if ratio > 1.0 + MAX_REGRESSION {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "bench_gate: {name}: baseline {base}ns, current {cur}ns ({:+.1}%) {verdict}",
            (ratio - 1.0) * 100.0
        );
    }
    if failed {
        eprintln!(
            "bench_gate: FAIL — a gated benchmark regressed more than {:.0}% \
             (re-measure with scripts/bench.sh and update BENCH_simulator.json \
             only if the slowdown is intended)",
            MAX_REGRESSION * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!("bench_gate: all gated benchmarks within {:.0}%", MAX_REGRESSION * 100.0);
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::mean_ns;

    const SAMPLE: &str = r#"{
  "samples": 1,
  "benches": [
    {"name": "interpret_100k_instructions", "mean_ns": 1198760, "best_ns": 1031501},
    {"name": "interpret", "mean_ns": 1127794, "best_ns": 1049135},
    {"name": "migration_throughput_1nxp", "mean_ns": 8400840, "best_ns": 6940299}
  ]
}"#;

    #[test]
    fn exact_name_does_not_match_prefixed_bench() {
        assert_eq!(mean_ns(SAMPLE, "interpret"), Some(1127794));
        assert_eq!(mean_ns(SAMPLE, "interpret_100k_instructions"), Some(1198760));
        assert_eq!(mean_ns(SAMPLE, "migration_throughput_1nxp"), Some(8400840));
        assert_eq!(mean_ns(SAMPLE, "missing"), None);
    }
}
