//! CI bench-regression gate: compares a fresh bench JSON against the
//! committed baseline (`BENCH_simulator.json`) and fails loudly when a
//! gated benchmark regressed.
//!
//! Three kinds of gates:
//!
//! - **Wall-clock** (`mean_ns`): only benches cheap enough to be stable
//!   at 1 sample — `interpret` (the pure step-loop ceiling the block
//!   engine owns), `interpret_hotloop` (the back-edge-dominated
//!   chaining best case), `migration_throughput_1nxp` (the end-to-end
//!   descriptor path), and `migration_throughput_degraded` (the same
//!   fleet with one NxP crashed mid-run). A 1-sample smoke run is
//!   noisy, so the threshold is generous (30%): this catches "the fast
//!   path fell off a cliff", not 2% drift.
//! - **Parallel host execution** (`par_mean_ns`): gated with the same
//!   threshold, but only when both the baseline recorder and the
//!   current runner have more than one core (`host_parallelism` in the
//!   JSON / `available_parallelism()` here) — a 1-core container runs
//!   the sharded fleet slower than sequential by construction, and
//!   that is not a regression.
//! - **ISA matrix** (`sim_round_trip_ns`): the `fig_isa_matrix_*`
//!   family reports *simulated* migration round-trip cost per ordered
//!   ISA pair. Simulated time is deterministic, so these are compared
//!   exactly: any drift means the cross-ISA call path's timing
//!   semantics changed and must be an intentional, re-recorded change.
//! - **Tail latency** (`goodput_rps` / `p99_ns`): the
//!   `fig_tail_latency_*` serving sweep. Also deterministic, but gated
//!   at the generous threshold rather than exactly: small intentional
//!   scheduler or timing tweaks legitimately move queueing delay a
//!   little, and the gate's job is to catch a collapsed drain rate or
//!   an exploded tail, not to force a re-record for every nudge.
//!   Goodput regresses downward, p99 regresses upward.
//!
//! Usage: `bench_gate <baseline.json> <current.json>`

use std::process::ExitCode;

/// Benchmarks gated on wall-clock `mean_ns`.
const GATED: [&str; 4] = [
    "interpret",
    "interpret_hotloop",
    "migration_throughput_1nxp",
    "migration_throughput_degraded",
];

/// Benchmarks gated exactly on deterministic `sim_round_trip_ns`.
const ISA_MATRIX: [&str; 6] = [
    "fig_isa_matrix_x64_rv64",
    "fig_isa_matrix_x64_arm64",
    "fig_isa_matrix_rv64_x64",
    "fig_isa_matrix_rv64_arm64",
    "fig_isa_matrix_arm64_x64",
    "fig_isa_matrix_arm64_rv64",
];

/// The serving tail-latency sweep, gated on simulated `goodput_rps`
/// (lower is worse) and `p99_ns` (higher is worse).
const TAIL_LATENCY: [&str; 5] = [
    "fig_tail_latency_25k",
    "fig_tail_latency_50k",
    "fig_tail_latency_100k",
    "fig_tail_latency_200k",
    "fig_tail_latency_400k",
];

/// Maximum tolerated wall-clock growth over the baseline.
const MAX_REGRESSION: f64 = 0.30;

/// Extracts numeric `field` from the bench entry whose name is exactly
/// `name` in the flat JSON the harness emits. Dependency-free by
/// design: the match is on the `"name": "<name>"` key so that
/// `interpret` does not collide with `interpret_100k_instructions`.
fn bench_field(json: &str, name: &str, field: &str) -> Option<u64> {
    let needle = format!("\"name\": \"{name}\"");
    let line = json.lines().find(|l| l.contains(&needle))?;
    field_in(line, field)
}

/// Extracts a top-level numeric field (e.g. `host_parallelism`).
fn top_field(json: &str, field: &str) -> Option<u64> {
    json.lines()
        .find(|l| !l.contains("\"name\":") && l.contains(&format!("\"{field}\":")))
        .and_then(|l| field_in(l, field))
}

fn field_in(line: &str, field: &str) -> Option<u64> {
    let rest = line.split(&format!("\"{field}\": ")).nth(1)?;
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

fn mean_ns(json: &str, name: &str) -> Option<u64> {
    bench_field(json, name, "mean_ns")
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    if args.len() != 3 {
        eprintln!("usage: bench_gate <baseline.json> <current.json>");
        return ExitCode::FAILURE;
    }
    let baseline = std::fs::read_to_string(&args[1])
        .unwrap_or_else(|e| panic!("cannot read baseline {}: {e}", args[1]));
    let current = std::fs::read_to_string(&args[2])
        .unwrap_or_else(|e| panic!("cannot read current {}: {e}", args[2]));

    let mut failed = false;
    for name in GATED {
        let base = mean_ns(&baseline, name)
            .unwrap_or_else(|| panic!("baseline has no mean_ns for {name}"));
        let cur = mean_ns(&current, name)
            .unwrap_or_else(|| panic!("current run has no mean_ns for {name}"));
        let ratio = cur as f64 / base as f64;
        let verdict = if ratio > 1.0 + MAX_REGRESSION {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "bench_gate: {name}: baseline {base}ns, current {cur}ns ({:+.1}%) {verdict}",
            (ratio - 1.0) * 100.0
        );
    }

    // Parallel host execution: only meaningful when both the recorder
    // and this runner actually have cores to shard across.
    let here = std::thread::available_parallelism().map_or(1, |n| n.get() as u64);
    let recorded = top_field(&baseline, "host_parallelism").unwrap_or(1);
    if here > 1 && recorded > 1 {
        for name in GATED {
            let (Some(base), Some(cur)) = (
                bench_field(&baseline, name, "par_mean_ns"),
                bench_field(&current, name, "par_mean_ns"),
            ) else {
                continue;
            };
            let ratio = cur as f64 / base as f64;
            let verdict = if ratio > 1.0 + MAX_REGRESSION {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "bench_gate: {name} (parallel): baseline {base}ns, current {cur}ns \
                 ({:+.1}%) {verdict}",
                (ratio - 1.0) * 100.0
            );
        }
    } else {
        println!(
            "bench_gate: parallel fields not gated (runner has {here} core(s), \
             baseline recorded on {recorded})"
        );
    }

    // ISA matrix: deterministic simulated cost, compared exactly.
    for name in ISA_MATRIX {
        let base = bench_field(&baseline, name, "sim_round_trip_ns")
            .unwrap_or_else(|| panic!("baseline has no sim_round_trip_ns for {name}"));
        let cur = bench_field(&current, name, "sim_round_trip_ns")
            .unwrap_or_else(|| panic!("current run has no sim_round_trip_ns for {name}"));
        if base == cur {
            println!("bench_gate: {name}: {cur}ns simulated round trip, exact match");
        } else {
            failed = true;
            println!(
                "bench_gate: {name}: simulated round trip changed \
                 {base}ns -> {cur}ns CHANGED"
            );
        }
    }

    // Tail-latency serving sweep: goodput must not collapse, p99 must
    // not explode. Both directions use the same generous threshold.
    for name in TAIL_LATENCY {
        let base_good = bench_field(&baseline, name, "goodput_rps")
            .unwrap_or_else(|| panic!("baseline has no goodput_rps for {name}"));
        let cur_good = bench_field(&current, name, "goodput_rps")
            .unwrap_or_else(|| panic!("current run has no goodput_rps for {name}"));
        let good_ratio = cur_good as f64 / base_good as f64;
        let good_verdict = if good_ratio < 1.0 - MAX_REGRESSION {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "bench_gate: {name}: goodput baseline {base_good}rps, current {cur_good}rps \
             ({:+.1}%) {good_verdict}",
            (good_ratio - 1.0) * 100.0
        );
        let base_p99 = bench_field(&baseline, name, "p99_ns")
            .unwrap_or_else(|| panic!("baseline has no p99_ns for {name}"));
        let cur_p99 = bench_field(&current, name, "p99_ns")
            .unwrap_or_else(|| panic!("current run has no p99_ns for {name}"));
        let p99_ratio = cur_p99 as f64 / base_p99 as f64;
        let p99_verdict = if p99_ratio > 1.0 + MAX_REGRESSION {
            failed = true;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "bench_gate: {name}: p99 baseline {base_p99}ns, current {cur_p99}ns \
             ({:+.1}%) {p99_verdict}",
            (p99_ratio - 1.0) * 100.0
        );
    }

    if failed {
        eprintln!(
            "bench_gate: FAIL — a gated benchmark regressed more than {:.0}% or an \
             ISA-pair's simulated migration cost drifted (re-measure with \
             scripts/bench.sh and update BENCH_simulator.json only if the change \
             is intended)",
            MAX_REGRESSION * 100.0
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_gate: all gated benchmarks within {:.0}%; ISA matrix exact; \
         tail-latency sweep within bounds",
        MAX_REGRESSION * 100.0
    );
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::{bench_field, mean_ns, top_field};

    const SAMPLE: &str = r#"{
  "samples": 1,
  "host_parallelism": 4,
  "benches": [
    {"name": "interpret_100k_instructions", "mean_ns": 1198760, "best_ns": 1031501},
    {"name": "interpret", "mean_ns": 1127794, "best_ns": 1049135},
    {"name": "migration_throughput_1nxp", "mean_ns": 8400840, "best_ns": 6940299, "par_mean_ns": 9000000},
    {"name": "fig_isa_matrix_rv64_arm64", "mean_ns": 120000, "best_ns": 110000, "sim_round_trip_ns": 41250},
    {"name": "fig_tail_latency_100k", "mean_ns": 17000000, "best_ns": 16000000, "offered_rps": 100000, "goodput_rps": 65852, "p50_ns": 943156, "p99_ns": 2742964, "p999_ns": 2965975, "admission_rejects": 181}
  ]
}"#;

    #[test]
    fn exact_name_does_not_match_prefixed_bench() {
        assert_eq!(mean_ns(SAMPLE, "interpret"), Some(1127794));
        assert_eq!(mean_ns(SAMPLE, "interpret_100k_instructions"), Some(1198760));
        assert_eq!(mean_ns(SAMPLE, "migration_throughput_1nxp"), Some(8400840));
        assert_eq!(mean_ns(SAMPLE, "missing"), None);
    }

    #[test]
    fn extracts_named_and_top_level_fields() {
        assert_eq!(
            bench_field(SAMPLE, "fig_isa_matrix_rv64_arm64", "sim_round_trip_ns"),
            Some(41250)
        );
        assert_eq!(
            bench_field(SAMPLE, "migration_throughput_1nxp", "par_mean_ns"),
            Some(9000000)
        );
        assert_eq!(bench_field(SAMPLE, "interpret", "par_mean_ns"), None);
        assert_eq!(
            bench_field(SAMPLE, "fig_tail_latency_100k", "goodput_rps"),
            Some(65852)
        );
        assert_eq!(
            bench_field(SAMPLE, "fig_tail_latency_100k", "p99_ns"),
            Some(2742964)
        );
        assert_eq!(
            bench_field(SAMPLE, "fig_tail_latency_100k", "admission_rejects"),
            Some(181)
        );
        assert_eq!(top_field(SAMPLE, "host_parallelism"), Some(4));
        assert_eq!(top_field(SAMPLE, "samples"), Some(1));
        assert_eq!(top_field(SAMPLE, "absent"), None);
    }
}
