fn main() {
    let r = flick_workloads::measure_null_call(2000);
    println!("H-N-H: {} (paper 18.3us)", r.host_nxp_host);
    println!("N-H-N: {} (paper 16.9us)", r.nxp_host_nxp);
    println!("page fault share: {}", r.page_fault_share);
}
