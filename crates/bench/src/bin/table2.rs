//! Regenerates Table II: thread migration overhead from prior work and
//! Flick. Prior-work rows carry their published numbers (the paper does
//! not re-run those systems); the Flick row is measured live.

use flick_baselines::{prior_work_rows, prior_work::speedup_vs};
use flick_bench::{markdown_table, us};
use flick_workloads::measure_null_call;

fn main() {
    let iters: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(10_000);
    println!("## Table II: thread migration overhead, prior work vs Flick\n");
    let flick = measure_null_call(iters).host_nxp_host;
    let mut rows: Vec<Vec<String>> = prior_work_rows()
        .iter()
        .map(|r| {
            vec![
                r.work.to_string(),
                r.fast_cores.to_string(),
                r.slow_cores.to_string(),
                r.interconnect.to_string(),
                us(r.overhead),
                format!("{:.1}x", speedup_vs(flick, r)),
            ]
        })
        .collect();
    rows.push(vec![
        "Flick (this reproduction)".into(),
        "x64-like @2.4GHz".into(),
        "rv64-like @200MHz".into(),
        "PCIe Gen3 x8 (model)".into(),
        us(flick),
        "1.0x".into(),
    ]);
    markdown_table(
        &[
            "Work",
            "Fast Cores",
            "Slow Cores",
            "Interconnect",
            "Overhead",
            "vs Flick",
        ],
        &rows,
    );
    println!(
        "\nPaper claim: 23x-38x below heterogeneous-ISA prior work; faster than big.LITTLE's 22us."
    );
}
