#![warn(missing_docs)]
//! PCIe interconnect model: descriptor DMA engine, doorbells and MSI
//! interrupts.
//!
//! Flick transfers each migration descriptor as **one PCIe burst** using
//! a DMA controller on the FPGA (§IV-B): "To minimize the overhead of
//! transferring the descriptor using multiple memory operations across
//! PCIe, Flick uses a DMA controller to copy the entire descriptor using
//! one PCIe burst transfer." The NxP scheduler discovers host→NxP
//! descriptors by polling a DMA status register; NxP→host descriptors
//! are DMA'd into host memory followed by an MSI interrupt that wakes the
//! suspended thread.
//!
//! This crate models exactly that machinery with explicit timestamps:
//!
//! * [`DmaEngine`] — two descriptor channels (host→NxP, NxP→host) with
//!   burst timing from [`flick_mem::LatencyModel`].
//! * Doorbell semantics are folded into the kick methods (a posted
//!   write across the link precedes the DMA fetch).
//! * [`Msi`] — an interrupt delivery record consumed by the host kernel.
//!
//! # Examples
//!
//! ```
//! use flick_pcie::DmaEngine;
//! use flick_sim::Picos;
//!
//! let mut dma = DmaEngine::paper_default();
//! let arrival = dma.kick_to_nxp(Picos::ZERO, vec![0u8; 128]);
//! assert!(arrival > Picos::from_nanos(1000)); // doorbell + fetch burst
//! assert!(dma.poll_nxp(arrival).is_some());
//! ```

use flick_mem::LatencyModel;
use flick_sim::{BurstPerturbation, FaultPlan, MsiFate, Picos};
use std::collections::VecDeque;

/// An MSI interrupt raised toward the host.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Msi {
    /// Interrupt vector (one per device function; Flick uses a single
    /// vector for descriptor arrival).
    pub vector: u32,
    /// Time the interrupt reaches the host's interrupt controller.
    pub at: Picos,
}

/// A descriptor in flight or delivered, with its arrival timestamp.
#[derive(Clone, Debug)]
struct InFlight {
    arrival: Picos,
    bytes: Vec<u8>,
}

/// The descriptor DMA engine on the NxP platform.
///
/// Two unidirectional channels:
///
/// * **host→NxP**: the kernel rings a doorbell (posted write over PCIe);
///   the engine fetches the descriptor from host DRAM with a read burst
///   and lands it in the NxP-local descriptor buffer, setting the status
///   register the NxP scheduler polls.
/// * **NxP→host**: the NxP runtime writes the engine's local registers;
///   the engine pushes the descriptor into host DRAM with a write burst
///   and follows it with an MSI.
///
/// Timing is fully deterministic; `kick_*` returns the arrival timestamp
/// so callers (which own the simulated clocks) can sequence events.
#[derive(Debug)]
pub struct DmaEngine {
    latency: LatencyModel,
    to_nxp: VecDeque<InFlight>,
    /// NxP→host ring. Entries are kept in push (= arrival) order; a
    /// selective claim ([`DmaEngine::take_host_desc_where`]) tombstones
    /// its match to `None` instead of shifting the tail, and leading
    /// tombstones are dropped whenever the ring is touched. The single
    /// mover per direction makes arrivals monotone non-decreasing, so
    /// scans can stop at the first live entry that has not arrived yet —
    /// O(1) amortized however deep the undelivered tail grows.
    to_host: VecDeque<Option<InFlight>>,
    /// Live (non-tombstone) entries in `to_host` — the queue-depth
    /// gauge, maintained so it never counts tombstones.
    to_host_live: usize,
    msi_vector: u32,
    bursts_to_nxp: u64,
    bursts_to_host: u64,
    /// The engine has one mover per direction: a burst cannot start
    /// before the previous one in the same direction has landed.
    nxp_busy_until: Picos,
    host_busy_until: Picos,
}

impl DmaEngine {
    /// Engine with the paper-calibrated latency model.
    pub fn paper_default() -> Self {
        DmaEngine::new(LatencyModel::paper_default(), 0)
    }

    /// Engine with an explicit latency model and MSI vector.
    pub fn new(latency: LatencyModel, msi_vector: u32) -> Self {
        DmaEngine {
            latency,
            to_nxp: VecDeque::new(),
            to_host: VecDeque::new(),
            to_host_live: 0,
            msi_vector,
            bursts_to_nxp: 0,
            bursts_to_host: 0,
            nxp_busy_until: Picos::ZERO,
            host_busy_until: Picos::ZERO,
        }
    }

    /// The latency model in use.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Host kernel sends a descriptor to the NxP: doorbell write, then a
    /// read burst from host DRAM into the NxP descriptor buffer.
    ///
    /// Returns the time at which the NxP-side status register shows the
    /// descriptor (the earliest instant a poll can see it).
    pub fn kick_to_nxp(&mut self, now: Picos, bytes: Vec<u8>) -> Picos {
        self.kick_to_nxp_faulty(now, bytes, &mut FaultPlan::none()).0
    }

    /// [`DmaEngine::kick_to_nxp`] with a fault-injection point: the plan
    /// may corrupt the payload in flight, stall the link, or drop the
    /// burst entirely (nothing lands; the status register never shows
    /// it).
    ///
    /// Returns the arrival time the burst lands (or would have landed,
    /// when dropped — the mover is busy either way) and what was
    /// injected.
    pub fn kick_to_nxp_faulty(
        &mut self,
        now: Picos,
        mut bytes: Vec<u8>,
        plan: &mut FaultPlan,
    ) -> (Picos, BurstPerturbation) {
        let perturbation = plan.perturb_burst(&mut bytes);
        // Doorbell: posted write host→NxP MMIO.
        let doorbell = self.latency.host_to_nxp_write;
        // Engine fetches the descriptor from host DRAM: one read round
        // trip plus per-beat payload, then lands it locally (BRAM write,
        // negligible — folded into dma_setup). One mover: bursts in the
        // same direction serialise.
        let start = (now + doorbell).max(self.nxp_busy_until);
        let fetch = self.latency.nxp_to_host_read + self.latency.dma_transfer(bytes.len());
        let arrival = start + fetch + perturbation.stall;
        self.nxp_busy_until = arrival;
        self.bursts_to_nxp += 1;
        if !perturbation.dropped {
            self.to_nxp.push_back(InFlight { arrival, bytes });
        }
        (arrival, perturbation)
    }

    /// NxP runtime sends a descriptor to the host: local register write,
    /// write burst into host DRAM, then an MSI.
    ///
    /// Returns `(descriptor_arrival, msi)`; the MSI trails the payload so
    /// the kernel never observes the interrupt before the data. The MSI
    /// is `None` when the burst is lost on the wire — impossible with a
    /// fault-free plan, but the signature is honest about the link
    /// rather than panicking if that invariant ever shifts (callers
    /// that inject faults use [`DmaEngine::kick_to_host_faulty`]).
    pub fn kick_to_host(&mut self, now: Picos, bytes: Vec<u8>) -> (Picos, Option<Msi>) {
        let (arrival, msi, _) = self.kick_to_host_faulty(now, bytes, &mut FaultPlan::none());
        (arrival, msi)
    }

    /// [`DmaEngine::kick_to_host`] with a fault-injection point.
    ///
    /// A dropped burst loses payload *and* interrupt (the engine raises
    /// the MSI only after the write burst completes), so `msi` is `None`
    /// and nothing enters the host ring; corruption and stalls land the
    /// damaged/late payload with its MSI as usual. MSI-specific faults
    /// (drop/duplicate) are injected later, at the interrupt controller
    /// — see [`InterruptController::raise_with`].
    pub fn kick_to_host_faulty(
        &mut self,
        now: Picos,
        mut bytes: Vec<u8>,
        plan: &mut FaultPlan,
    ) -> (Picos, Option<Msi>, BurstPerturbation) {
        let perturbation = plan.perturb_burst(&mut bytes);
        let start = (now + self.latency.nxp_to_local_mmio).max(self.host_busy_until);
        let push = self.latency.dma_transfer(bytes.len()) + self.latency.nxp_to_host_write;
        let arrival = start + push + perturbation.stall;
        self.host_busy_until = arrival;
        self.bursts_to_host += 1;
        if perturbation.dropped {
            return (arrival, None, perturbation);
        }
        // The MSI is one more posted write behind the payload.
        let msi_at = arrival + self.latency.nxp_to_host_write;
        debug_assert!(
            self.to_host
                .back()
                .and_then(|d| d.as_ref())
                .is_none_or(|d| d.arrival <= arrival),
            "single mover: host-ring arrivals are monotone"
        );
        self.to_host.push_back(Some(InFlight { arrival, bytes }));
        self.to_host_live += 1;
        (
            arrival,
            Some(Msi {
                vector: self.msi_vector,
                at: msi_at,
            }),
            perturbation,
        )
    }

    /// True when the NxP-side status register shows at least one
    /// descriptor at time `now` (what the scheduler's poll loop reads).
    pub fn status_nxp(&self, now: Picos) -> bool {
        self.to_nxp.front().is_some_and(|d| d.arrival <= now)
    }

    /// Earliest arrival time of a pending host→NxP descriptor, if any —
    /// used by the simulation to fast-forward an idle poll loop.
    pub fn next_nxp_arrival(&self) -> Option<Picos> {
        self.to_nxp.front().map(|d| d.arrival)
    }

    /// Pops the next host→NxP descriptor if it has arrived by `now`.
    pub fn poll_nxp(&mut self, now: Picos) -> Option<Vec<u8>> {
        if self.status_nxp(now) {
            self.to_nxp.pop_front().map(|d| d.bytes)
        } else {
            None
        }
    }

    /// Drops tombstones at the front of the host ring so the head is
    /// either a live descriptor or the ring is empty. Each entry is
    /// pushed once and removed once, so all compaction work is charged
    /// to the kick that created the entry — O(1) amortized.
    fn compact_host_front(&mut self) {
        while matches!(self.to_host.front(), Some(None)) {
            self.to_host.pop_front();
        }
    }

    /// Pops the next NxP→host descriptor if it has arrived by `now`
    /// (the kernel reads it from the host-DRAM ring after the MSI).
    pub fn take_host_desc(&mut self, now: Picos) -> Option<Vec<u8>> {
        self.compact_host_front();
        match self.to_host.front() {
            Some(Some(d)) if d.arrival <= now => {
                self.to_host_live = self.to_host_live.saturating_sub(1);
                self.to_host.pop_front().flatten().map(|d| d.bytes)
            }
            _ => None,
        }
    }

    /// Pops the earliest-arrived NxP→host descriptor at or before `now`
    /// for which `pred` holds, leaving the rest of the ring in order.
    /// The kernel's IRQ handler uses this to claim the descriptor that
    /// belongs to the thread it is waking while unrelated traffic sits
    /// in the same ring (bursts in one direction serialise, so ring
    /// order is arrival order).
    ///
    /// Arrival order lets the scan stop at the first live descriptor
    /// that has not arrived yet: everything behind it arrived even
    /// later. Combined with front compaction, the walk only ever
    /// re-visits descriptors that are *deliverable now but claimed by
    /// someone else*, not the undelivered tail, keeping the host
    /// descriptor path O(1) amortized as rings deepen.
    pub fn take_host_desc_where(
        &mut self,
        now: Picos,
        mut pred: impl FnMut(&[u8]) -> bool,
    ) -> Option<Vec<u8>> {
        self.compact_host_front();
        let mut hit = None;
        for (idx, slot) in self.to_host.iter().enumerate() {
            match slot {
                None => continue,
                Some(d) if d.arrival > now => break,
                Some(d) => {
                    if pred(&d.bytes) {
                        hit = Some(idx);
                        break;
                    }
                }
            }
        }
        let taken = self.to_host[hit?].take().map(|d| d.bytes);
        self.to_host_live = self.to_host_live.saturating_sub(1);
        self.compact_host_front();
        taken
    }

    /// Number of host→NxP bursts performed.
    pub fn bursts_to_nxp(&self) -> u64 {
        self.bursts_to_nxp
    }

    /// Number of NxP→host bursts performed.
    pub fn bursts_to_host(&self) -> u64 {
        self.bursts_to_host
    }

    /// Descriptors currently queued in the host→NxP channel (in flight
    /// or landed but not yet polled) — the observability layer samples
    /// this as a queue-depth gauge.
    pub fn depth_to_nxp(&self) -> usize {
        self.to_nxp.len()
    }

    /// Descriptors currently queued in the NxP→host channel.
    pub fn depth_to_host(&self) -> usize {
        self.to_host_live
    }

    /// Quiesces the engine after its device was declared dead: every
    /// in-flight descriptor in both directions is reaped (the device's
    /// buffer is gone; host-ring leftovers must not be claimed by a
    /// later incarnation) and the movers go idle. Returns how many
    /// descriptors were cancelled. The caller re-executes victims from
    /// its retained copies, so reaping loses no work.
    pub fn reap(&mut self) -> usize {
        let reaped = self.to_nxp.len() + self.to_host_live;
        self.to_nxp.clear();
        self.to_host.clear();
        self.to_host_live = 0;
        self.nxp_busy_until = Picos::ZERO;
        self.host_busy_until = Picos::ZERO;
        reaped
    }
}

/// The PCIe switch fabric of a topology-configured machine: one
/// descriptor channel ([`DmaEngine`]) per NxP, each with its own MSI
/// vector, behind a shared host root port.
///
/// Doorbell arbitration: host→NxP doorbells are posted writes issued
/// through the one root port, so doorbells rung closely together
/// serialise across channels (each occupies the port for the doorbell
/// write time). DMA bursts themselves ride independent point-to-point
/// links and only serialise within a channel/direction (the per-engine
/// single-mover rule). This is what lets N descriptors be in flight to
/// N different NxPs simultaneously.
#[derive(Debug)]
pub struct PcieFabric {
    channels: Vec<DmaEngine>,
    /// Host root port busy with a doorbell write until this instant.
    doorbell_busy_until: Picos,
}

impl PcieFabric {
    /// A fabric with `channels` descriptor channels, one per NxP, all
    /// sharing one latency model. Channel `k` raises MSI vector `k`.
    pub fn new(latency: LatencyModel, channels: usize) -> Self {
        assert!(channels >= 1, "a fabric needs at least one channel");
        PcieFabric {
            channels: (0..channels)
                .map(|k| DmaEngine::new(latency.clone(), k as u32))
                .collect(),
            doorbell_busy_until: Picos::ZERO,
        }
    }

    /// Number of channels (NxPs).
    pub fn channels(&self) -> usize {
        self.channels.len()
    }

    /// Immutable view of channel `k`'s DMA engine.
    pub fn channel(&self, k: usize) -> &DmaEngine {
        &self.channels[k]
    }

    /// Rings channel `k`'s doorbell and kicks a host→NxP burst,
    /// arbitrating the doorbell write against other channels' doorbells
    /// at the root port. See [`DmaEngine::kick_to_nxp_faulty`].
    pub fn kick_to_nxp_faulty(
        &mut self,
        k: usize,
        now: Picos,
        bytes: Vec<u8>,
        plan: &mut FaultPlan,
    ) -> (Picos, BurstPerturbation) {
        let issue = now.max(self.doorbell_busy_until);
        self.doorbell_busy_until = issue + self.channels[k].latency.host_to_nxp_write;
        self.channels[k].kick_to_nxp_faulty(issue, bytes, plan)
    }

    /// Kicks an NxP→host burst on channel `k`. NxP-side doorbells are
    /// device-local MMIO writes, so they need no cross-channel
    /// arbitration. See [`DmaEngine::kick_to_host_faulty`].
    pub fn kick_to_host_faulty(
        &mut self,
        k: usize,
        now: Picos,
        bytes: Vec<u8>,
        plan: &mut FaultPlan,
    ) -> (Picos, Option<Msi>, BurstPerturbation) {
        self.channels[k].kick_to_host_faulty(now, bytes, plan)
    }

    /// Polls channel `k`'s NxP-side status register. See
    /// [`DmaEngine::poll_nxp`].
    pub fn poll_nxp(&mut self, k: usize, now: Picos) -> Option<Vec<u8>> {
        self.channels[k].poll_nxp(now)
    }

    /// Takes a matching descriptor out of channel `k`'s host ring. See
    /// [`DmaEngine::take_host_desc_where`].
    pub fn take_host_desc_where(
        &mut self,
        k: usize,
        now: Picos,
        pred: impl FnMut(&[u8]) -> bool,
    ) -> Option<Vec<u8>> {
        self.channels[k].take_host_desc_where(now, pred)
    }

    /// Quiesces channel `k` after its NxP was declared dead or came
    /// back from hot-unplug: reaps every in-flight descriptor in both
    /// directions. Returns the number cancelled. See
    /// [`DmaEngine::reap`].
    pub fn reap_channel(&mut self, k: usize) -> usize {
        self.channels[k].reap()
    }

    /// Total bursts performed in either direction, summed over
    /// channels.
    pub fn total_bursts(&self) -> u64 {
        self.channels
            .iter()
            .map(|c| c.bursts_to_nxp() + c.bursts_to_host())
            .sum()
    }
}

/// A pending-interrupt queue standing in for the host's LAPIC + IRQ
/// subsystem. The kernel model drains it in timestamp order.
#[derive(Debug, Default)]
pub struct InterruptController {
    pending: VecDeque<Msi>,
}

impl InterruptController {
    /// Creates an empty controller.
    pub fn new() -> Self {
        InterruptController::default()
    }

    /// Queues an interrupt (keeps the queue sorted by delivery time).
    pub fn raise(&mut self, msi: Msi) {
        let pos = self
            .pending
            .iter()
            .position(|m| m.at > msi.at)
            .unwrap_or(self.pending.len());
        self.pending.insert(pos, msi);
    }

    /// [`InterruptController::raise`] with a fault-injection point: the
    /// plan may lose the interrupt on its way to the LAPIC (the host
    /// must then notice the descriptor by watchdog-driven ring polling)
    /// or deliver it twice (the extra edge causes a spurious wakeup).
    pub fn raise_with(&mut self, msi: Msi, plan: &mut FaultPlan) -> MsiFate {
        let fate = plan.msi_fate();
        match fate {
            MsiFate::Dropped => {}
            MsiFate::Duplicated => {
                self.raise(msi.clone());
                self.raise(msi);
            }
            MsiFate::Delivered => self.raise(msi),
        }
        fate
    }

    /// Pops the next interrupt deliverable at or before `now`.
    pub fn take_due(&mut self, now: Picos) -> Option<Msi> {
        if self.pending.front().is_some_and(|m| m.at <= now) {
            self.pending.pop_front()
        } else {
            None
        }
    }

    /// Pops the earliest interrupt on `vector` deliverable at or before
    /// `now`, leaving other vectors' interrupts queued — how a
    /// per-channel IRQ handler claims its own wake-ups on a machine
    /// with several NxP channels.
    pub fn take_due_vector(&mut self, now: Picos, vector: u32) -> Option<Msi> {
        let idx = self
            .pending
            .iter()
            .position(|m| m.at <= now && m.vector == vector)?;
        self.pending.remove(idx)
    }

    /// Removes the interrupt on `vector` raised for delivery at exactly
    /// `at`, leaving every other entry queued. A waiter that recorded
    /// its own MSI's arrival instant at raise time claims precisely
    /// that edge — with several threads suspended on one channel, a
    /// due-time scan would let an out-of-order waiter consume a
    /// neighbour's earlier interrupt and strand the neighbour.
    pub fn take_vector_at(&mut self, at: Picos, vector: u32) -> Option<Msi> {
        let idx = self
            .pending
            .iter()
            .position(|m| m.at == at && m.vector == vector)?;
        self.pending.remove(idx)
    }

    /// Removes every pending interrupt on `vector` — part of channel
    /// quiesce, so a dead NxP's stale MSIs cannot wake threads placed
    /// on its later incarnation. Returns how many were purged.
    pub fn purge_vector(&mut self, vector: u32) -> usize {
        let before = self.pending.len();
        self.pending.retain(|m| m.vector != vector);
        before - self.pending.len()
    }

    /// Earliest pending delivery time, if any.
    pub fn next_due(&self) -> Option<Picos> {
        self.pending.front().map(|m| m.at)
    }

    /// Number of undelivered interrupts.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_nxp_descriptor_arrives_after_doorbell_and_burst() {
        let mut dma = DmaEngine::paper_default();
        let lat = dma.latency().clone();
        let arrival = dma.kick_to_nxp(Picos::ZERO, vec![0u8; 128]);
        let expected = lat.host_to_nxp_write + lat.nxp_to_host_read + lat.dma_transfer(128);
        assert_eq!(arrival, expected);
        assert!(!dma.status_nxp(arrival - Picos(1)));
        assert!(dma.status_nxp(arrival));
    }

    #[test]
    fn poll_respects_arrival_time() {
        let mut dma = DmaEngine::paper_default();
        let arrival = dma.kick_to_nxp(Picos::ZERO, vec![1, 2, 3]);
        assert_eq!(dma.poll_nxp(Picos::ZERO), None);
        assert_eq!(dma.poll_nxp(arrival), Some(vec![1, 2, 3]));
        assert_eq!(dma.poll_nxp(arrival), None); // consumed
    }

    #[test]
    fn msi_trails_payload() {
        let mut dma = DmaEngine::paper_default();
        let (arrival, msi) = dma.kick_to_host(Picos::from_micros(1), vec![0u8; 64]);
        let msi = msi.expect("fault-free kick delivers");
        assert!(msi.at > arrival, "interrupt must not beat the data");
        assert_eq!(dma.take_host_desc(arrival), Some(vec![0u8; 64]));
    }

    #[test]
    fn same_direction_bursts_serialise() {
        // Two kicks at the same instant: the second burst starts after
        // the first lands (one mover per direction).
        let mut dma = DmaEngine::paper_default();
        let a1 = dma.kick_to_nxp(Picos::ZERO, vec![0u8; 128]);
        let a2 = dma.kick_to_nxp(Picos::ZERO, vec![0u8; 128]);
        let single = a1;
        assert!(a2 >= single * 2 - dma.latency().host_to_nxp_write, "{a2} vs {single}");
        // Opposite directions do not serialise with each other.
        let (b1, _) = dma.kick_to_host(Picos::ZERO, vec![0u8; 128]);
        assert!(b1 < a2);
    }

    #[test]
    fn reap_cancels_both_directions_and_idles_movers() {
        let mut dma = DmaEngine::paper_default();
        dma.kick_to_nxp(Picos::ZERO, vec![1]);
        dma.kick_to_nxp(Picos::ZERO, vec![2]);
        let (_, msi) = dma.kick_to_host(Picos::ZERO, vec![3]);
        assert!(msi.is_some());
        assert_eq!(dma.depth_to_nxp(), 2);
        assert_eq!(dma.depth_to_host(), 1);
        assert_eq!(dma.reap(), 3);
        assert_eq!(dma.depth_to_nxp(), 0);
        assert_eq!(dma.depth_to_host(), 0);
        assert_eq!(dma.poll_nxp(Picos::from_secs(1)), None);
        assert_eq!(dma.take_host_desc(Picos::from_secs(1)), None);
        // A reap does not forget history: burst counters survive.
        assert_eq!(dma.bursts_to_nxp(), 2);
        assert_eq!(dma.bursts_to_host(), 1);
        // Second reap is a no-op.
        assert_eq!(dma.reap(), 0);
    }

    #[test]
    fn purge_vector_removes_only_that_vector() {
        let mut irq = InterruptController::new();
        irq.raise(Msi { vector: 0, at: Picos::from_nanos(1) });
        irq.raise(Msi { vector: 1, at: Picos::from_nanos(2) });
        irq.raise(Msi { vector: 1, at: Picos::from_nanos(3) });
        assert_eq!(irq.purge_vector(1), 2);
        assert_eq!(irq.pending(), 1);
        let left = irq.take_due(Picos::from_nanos(9)).unwrap();
        assert_eq!(left.vector, 0);
        assert_eq!(irq.purge_vector(7), 0);
    }

    #[test]
    fn descriptors_fifo_per_direction() {
        let mut dma = DmaEngine::paper_default();
        let a1 = dma.kick_to_nxp(Picos::ZERO, vec![1]);
        let a2 = dma.kick_to_nxp(a1, vec![2]);
        assert!(a2 > a1);
        assert_eq!(dma.poll_nxp(a2), Some(vec![1]));
        assert_eq!(dma.poll_nxp(a2), Some(vec![2]));
    }

    #[test]
    fn burst_counters() {
        let mut dma = DmaEngine::paper_default();
        dma.kick_to_nxp(Picos::ZERO, vec![0; 8]);
        dma.kick_to_host(Picos::ZERO, vec![0; 8]);
        dma.kick_to_host(Picos::ZERO, vec![0; 8]);
        assert_eq!(dma.bursts_to_nxp(), 1);
        assert_eq!(dma.bursts_to_host(), 2);
    }

    #[test]
    fn bigger_descriptor_takes_longer() {
        let mut a = DmaEngine::paper_default();
        let mut b = DmaEngine::paper_default();
        let small = a.kick_to_nxp(Picos::ZERO, vec![0u8; 64]);
        let large = b.kick_to_nxp(Picos::ZERO, vec![0u8; 4096]);
        assert!(large > small);
    }

    #[test]
    fn dropped_burst_never_becomes_visible() {
        let mut dma = DmaEngine::paper_default();
        let mut plan = FaultPlan::seeded(1).with_drop_burst(1.0);
        let (arrival, p) = dma.kick_to_nxp_faulty(Picos::ZERO, vec![9u8; 128], &mut plan);
        assert!(p.dropped);
        assert!(!dma.status_nxp(arrival + Picos::from_micros(100)));
        assert_eq!(dma.poll_nxp(arrival + Picos::from_micros(100)), None);
        // The burst still counts (the wire carried it) and the mover was
        // occupied.
        assert_eq!(dma.bursts_to_nxp(), 1);
    }

    #[test]
    fn stalled_burst_arrives_late_but_intact() {
        let mut clean = DmaEngine::paper_default();
        let baseline = clean.kick_to_nxp(Picos::ZERO, vec![7u8; 128]);
        let mut dma = DmaEngine::paper_default();
        let mut plan = FaultPlan::seeded(2).with_stall(1.0, Picos::from_micros(25));
        let (arrival, p) = dma.kick_to_nxp_faulty(Picos::ZERO, vec![7u8; 128], &mut plan);
        assert!(p.stall > Picos::ZERO);
        assert_eq!(arrival, baseline + p.stall);
        assert_eq!(dma.poll_nxp(arrival), Some(vec![7u8; 128]));
    }

    #[test]
    fn corrupted_burst_lands_damaged() {
        let mut dma = DmaEngine::paper_default();
        let mut plan = FaultPlan::seeded(3).with_corrupt(1.0);
        let (arrival, msi, p) =
            dma.kick_to_host_faulty(Picos::ZERO, vec![0u8; 128], &mut plan);
        let idx = p.corrupted.unwrap();
        let landed = dma.take_host_desc(arrival).unwrap();
        assert_ne!(landed[idx], 0, "payload must land corrupted");
        assert!(msi.is_some(), "corruption does not lose the interrupt");
    }

    #[test]
    fn dropped_host_burst_loses_its_msi_too() {
        let mut dma = DmaEngine::paper_default();
        let mut plan = FaultPlan::seeded(4).with_drop_burst(1.0);
        let (arrival, msi, p) =
            dma.kick_to_host_faulty(Picos::ZERO, vec![1u8; 128], &mut plan);
        assert!(p.dropped);
        assert!(msi.is_none());
        assert_eq!(dma.take_host_desc(arrival + Picos::from_micros(50)), None);
    }

    #[test]
    fn host_leg_msi_is_optional_never_a_panic() {
        // Regression for the old `msi.expect("no-fault plan always
        // delivers")`: a plan that drops the NxP→host burst loses the
        // interrupt, and the API reports that as `None` instead of
        // asserting on an invariant the fault injector can break.
        let mut dma = DmaEngine::paper_default();
        let mut plan = FaultPlan::seeded(11).with_drop_burst(1.0);
        let (_, msi, p) = dma.kick_to_host_faulty(Picos::ZERO, vec![3u8; 128], &mut plan);
        assert!(p.dropped);
        assert_eq!(msi, None);
        // The convenience wrapper shares the Option-typed contract and
        // always delivers on its internal fault-free plan.
        let (_, msi) = dma.kick_to_host(Picos::ZERO, vec![3u8; 128]);
        assert!(msi.is_some());
    }

    #[test]
    fn queue_depth_gauges_track_rings() {
        let mut dma = DmaEngine::paper_default();
        assert_eq!((dma.depth_to_nxp(), dma.depth_to_host()), (0, 0));
        let a = dma.kick_to_nxp(Picos::ZERO, vec![1]);
        dma.kick_to_nxp(a, vec![2]);
        let (b, _) = dma.kick_to_host(Picos::ZERO, vec![3]);
        assert_eq!((dma.depth_to_nxp(), dma.depth_to_host()), (2, 1));
        dma.poll_nxp(a);
        dma.take_host_desc(b);
        assert_eq!((dma.depth_to_nxp(), dma.depth_to_host()), (1, 0));
        // A dropped burst occupies the wire but never the ring.
        let mut plan = FaultPlan::seeded(12).with_drop_burst(1.0);
        dma.kick_to_host_faulty(b, vec![4], &mut plan);
        assert_eq!(dma.depth_to_host(), 0);
    }

    #[test]
    fn faultless_plan_matches_plain_kicks_exactly() {
        let mut a = DmaEngine::paper_default();
        let mut b = DmaEngine::paper_default();
        let mut plan = FaultPlan::none();
        for i in 0..4u8 {
            let t = Picos::from_micros(i as u64);
            let plain = a.kick_to_nxp(t, vec![i; 128]);
            let (faulty, p) = b.kick_to_nxp_faulty(t, vec![i; 128], &mut plan);
            assert!(p.is_clean());
            assert_eq!(plain, faulty);
        }
        assert_eq!(a.poll_nxp(Picos::from_millis(1)), b.poll_nxp(Picos::from_millis(1)));
    }

    #[test]
    fn msi_drop_and_duplicate_at_controller() {
        let msi = Msi {
            vector: 0,
            at: Picos::from_nanos(100),
        };
        let mut ic = InterruptController::new();
        let mut drop_plan = FaultPlan::seeded(5).with_drop_msi(1.0);
        assert_eq!(ic.raise_with(msi.clone(), &mut drop_plan), MsiFate::Dropped);
        assert_eq!(ic.pending(), 0);
        let mut dup_plan = FaultPlan::seeded(6).with_dup_msi(1.0);
        assert_eq!(ic.raise_with(msi, &mut dup_plan), MsiFate::Duplicated);
        assert_eq!(ic.pending(), 2);
    }

    #[test]
    fn take_where_skips_unrelated_descriptors() {
        let mut dma = DmaEngine::paper_default();
        let a1 = dma.kick_to_nxp(Picos::ZERO, vec![0]); // park the mover
        let _ = a1;
        let (b1, _) = dma.kick_to_host(Picos::ZERO, vec![1, 1]);
        let (b2, _) = dma.kick_to_host(b1, vec![2, 2]);
        // Claim the second descriptor without disturbing the first.
        let got = dma.take_host_desc_where(b2, |b| b[0] == 2);
        assert_eq!(got, Some(vec![2, 2]));
        assert_eq!(dma.take_host_desc(b2), Some(vec![1, 1]));
        // Not-yet-arrived descriptors never match.
        let (c, _) = dma.kick_to_host(b2, vec![3, 3]);
        assert_eq!(dma.take_host_desc_where(c - Picos(1), |_| true), None);
    }

    #[test]
    fn tombstoned_claims_keep_depth_and_order() {
        let mut dma = DmaEngine::paper_default();
        let (b1, _) = dma.kick_to_host(Picos::ZERO, vec![1]);
        let (b2, _) = dma.kick_to_host(b1, vec![2]);
        let (b3, _) = dma.kick_to_host(b2, vec![3]);
        assert_eq!(dma.depth_to_host(), 3);
        // Claim the middle descriptor: the gauge must not count the
        // tombstone left behind, and FIFO order must survive around it.
        assert_eq!(dma.take_host_desc_where(b3, |b| b[0] == 2), Some(vec![2]));
        assert_eq!(dma.depth_to_host(), 2);
        assert_eq!(dma.take_host_desc(b3), Some(vec![1]));
        assert_eq!(dma.take_host_desc(b3), Some(vec![3]));
        assert_eq!(dma.depth_to_host(), 0);
        assert_eq!(dma.take_host_desc(b3), None);
        // A predicate that matches nothing arrived leaves the ring whole.
        let (c, _) = dma.kick_to_host(b3, vec![4]);
        assert_eq!(dma.take_host_desc_where(c, |b| b[0] == 9), None);
        assert_eq!(dma.depth_to_host(), 1);
        assert_eq!(dma.take_host_desc(c), Some(vec![4]));
    }

    #[test]
    fn fabric_channels_are_independent_but_doorbells_arbitrate() {
        let mut plan = FaultPlan::none();
        let lat = LatencyModel::paper_default();
        let mut fab = PcieFabric::new(lat.clone(), 2);
        // Two doorbells rung at the same instant: the root port
        // serialises the posted writes, so channel 1's burst starts one
        // doorbell-write later than channel 0's.
        let (a0, _) = fab.kick_to_nxp_faulty(0, Picos::ZERO, vec![0u8; 128], &mut plan);
        let (a1, _) = fab.kick_to_nxp_faulty(1, Picos::ZERO, vec![0u8; 128], &mut plan);
        assert_eq!(a1, a0 + lat.host_to_nxp_write);
        // But the bursts do NOT serialise against each other the way two
        // bursts on one channel would (independent links).
        let mut one = PcieFabric::new(lat.clone(), 1);
        let (b0, _) = one.kick_to_nxp_faulty(0, Picos::ZERO, vec![0u8; 128], &mut plan);
        let (b1, _) = one.kick_to_nxp_faulty(0, Picos::ZERO, vec![0u8; 128], &mut plan);
        assert!(b1 > b0 + lat.host_to_nxp_write, "{b1} vs {b0}");
        // Each channel raises its own MSI vector.
        let (_, msi0, _) = fab.kick_to_host_faulty(0, Picos::ZERO, vec![0u8; 64], &mut plan);
        let (_, msi1, _) = fab.kick_to_host_faulty(1, Picos::ZERO, vec![0u8; 64], &mut plan);
        assert_eq!(msi0.unwrap().vector, 0);
        assert_eq!(msi1.unwrap().vector, 1);
        assert_eq!(fab.total_bursts(), 4);
    }

    #[test]
    fn single_channel_fabric_matches_bare_engine() {
        // The 1×1 differential guarantee starts here: one channel, no
        // contending doorbells → timing identical to a bare DmaEngine.
        let mut plan = FaultPlan::none();
        let mut fab = PcieFabric::new(LatencyModel::paper_default(), 1);
        let mut dma = DmaEngine::paper_default();
        let t = Picos::from_micros(3);
        let (fa, _) = fab.kick_to_nxp_faulty(0, t, vec![5u8; 128], &mut plan);
        let da = dma.kick_to_nxp(t, vec![5u8; 128]);
        assert_eq!(fa, da);
        let (fb, fm, _) = fab.kick_to_host_faulty(0, fa, vec![6u8; 64], &mut plan);
        let (db, dm) = dma.kick_to_host(fa, vec![6u8; 64]);
        assert_eq!(fb, db);
        assert_eq!(fm.unwrap().at, dm.unwrap().at);
    }

    #[test]
    fn take_due_vector_leaves_other_vectors() {
        let mut ic = InterruptController::new();
        ic.raise(Msi { vector: 1, at: Picos::from_nanos(10) });
        ic.raise(Msi { vector: 0, at: Picos::from_nanos(20) });
        let now = Picos::from_nanos(30);
        assert_eq!(ic.take_due_vector(now, 0).unwrap().at, Picos::from_nanos(20));
        assert_eq!(ic.pending(), 1);
        assert_eq!(ic.take_due_vector(now, 0), None);
        assert_eq!(ic.take_due_vector(now, 1).unwrap().at, Picos::from_nanos(10));
    }

    #[test]
    fn take_vector_at_claims_only_the_exact_instant() {
        let mut ic = InterruptController::new();
        // Two waiters on one channel: an earlier and a later MSI.
        ic.raise(Msi { vector: 2, at: Picos::from_nanos(10) });
        ic.raise(Msi { vector: 2, at: Picos::from_nanos(25) });
        // The later waiter claims its own edge, not the earlier one.
        assert_eq!(
            ic.take_vector_at(Picos::from_nanos(25), 2).unwrap().at,
            Picos::from_nanos(25)
        );
        // The earlier waiter's MSI is untouched; a wrong vector or a
        // wrong instant claims nothing.
        assert_eq!(ic.take_vector_at(Picos::from_nanos(25), 2), None);
        assert_eq!(ic.take_vector_at(Picos::from_nanos(10), 3), None);
        assert_eq!(
            ic.take_vector_at(Picos::from_nanos(10), 2).unwrap().at,
            Picos::from_nanos(10)
        );
        assert_eq!(ic.pending(), 0);
    }

    #[test]
    fn irq_controller_orders_by_time() {
        let mut ic = InterruptController::new();
        ic.raise(Msi {
            vector: 0,
            at: Picos::from_nanos(50),
        });
        ic.raise(Msi {
            vector: 1,
            at: Picos::from_nanos(10),
        });
        assert_eq!(ic.pending(), 2);
        assert_eq!(ic.next_due(), Some(Picos::from_nanos(10)));
        assert_eq!(ic.take_due(Picos::from_nanos(5)), None);
        assert_eq!(ic.take_due(Picos::from_nanos(60)).unwrap().vector, 1);
        assert_eq!(ic.take_due(Picos::from_nanos(60)).unwrap().vector, 0);
        assert_eq!(ic.take_due(Picos::from_nanos(60)), None);
    }
}
