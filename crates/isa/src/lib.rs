#![warn(missing_docs)]
//! The Flick IR (FIR) and its registered machine encodings.
//!
//! The paper's prototype runs one logical program on two real ISAs:
//! x86-64 on the host and RV64-I on the NxP, with functions assigned to
//! an ISA by user annotation and compiled by *unmodified* per-ISA
//! compilers (§IV-C). Reproducing full commercial ISAs would add
//! enormous bulk without adding fidelity to the thing the paper is
//! about — the *migration mechanism* — so this reproduction defines one
//! small register IR (FIR) with deliberately different machine
//! encodings that preserve the properties the mechanism depends on.
//! Each encoding is described by an [`IsaDescriptor`] in a static
//! registry, so the rest of the system (cores, linker, loader,
//! placement) is generic over the ISA set:
//!
//! * [`X64`](IsaId::X64) — a *variable-length* encoding (1–10 byte
//!   instructions, no alignment), like x86-64. Host cores decode this.
//! * [`Rv64`](IsaId::Rv64) — a *fixed-width* encoding (8-byte words,
//!   8-byte aligned), like RISC-V. The classic NxP decodes this, and
//!   fetching x64 bytes raises exactly the exceptions §IV-B2 describes:
//!   a misaligned-instruction-address fault or an illegal opcode (the
//!   opcode spaces are disjoint).
//! * [`Arm64`](IsaId::Arm64) — a *fixed-width* encoding built from
//!   4-byte words (wide operands take extra words), like AArch64, at a
//!   third clock/CPI point. Opcodes `0x40..=0x7F`, disjoint from both.
//!
//! The crate provides:
//!
//! * [`inst`] — the instruction set ([`Inst`]), registers ([`Reg`]) and
//!   the shared logical calling convention ([`abi`]).
//! * [`func`] — [`FuncBuilder`], a label-based assembler for writing
//!   functions, and [`Func`], the unencoded result.
//! * [`encode`] — per-ISA encoders/decoders and relocation records
//!   ([`Reloc`]) consumed by the multi-ISA linker.
//! * [`disasm`] — a disassembler for debugging and tests.
//!
//! # Examples
//!
//! Build a function, encode it for two ISAs, and observe the decoders
//! reject each other's bytes with a typed foreign-encoding error:
//!
//! ```
//! use flick_isa::{abi, DecodeError, FuncBuilder, Isa, MemSize, TargetIsa};
//!
//! let mut f = FuncBuilder::new("add_one", TargetIsa::Nxp);
//! f.addi(abi::A0, abi::A0, 1);
//! f.ret();
//! let func = f.finish();
//!
//! let rv = Isa::Rv64.encode(&func)?;
//! let x = Isa::X64.encode(&func)?;
//! assert_ne!(rv.bytes, x.bytes);
//! // The x64 decoder cannot decode rv64 bytes — and says whose they are:
//! assert_eq!(
//!     Isa::X64.decode(&rv.bytes),
//!     Err(DecodeError::ForeignEncoding { isa: Isa::Rv64 })
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod disasm;
pub mod expr;
pub mod lang;
pub mod encode;
pub mod func;
pub mod inst;

pub use encode::{DecodeError, EncodeError, Encoded, Reloc, RelocKind};
pub use expr::{compile_expr, Expr, ExprError};
pub use func::{Func, FuncBuilder, Label};
pub use inst::{abi, AluOp, BranchOp, ControlKind, Inst, MemSize, Reg, Target};

use std::fmt;

/// Identifies a registered machine encoding.
///
/// The discriminant doubles as the registry index and as the on-disk /
/// page-table ISA tag (via [`IsaId::tag`]), so the order here is ABI:
/// never reorder existing entries, only append.
#[repr(u8)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum IsaId {
    /// Variable-length host encoding (1–10 bytes, unaligned).
    X64 = 0,
    /// Fixed-width NxP encoding (8-byte words, 8-aligned).
    Rv64 = 1,
    /// Fixed-width accelerator encoding (4-byte words, 4-aligned; wide
    /// operands take extra words).
    Arm64 = 2,
}

/// A machine encoding. Alias of [`IsaId`] kept for source compatibility
/// with the two-ISA era, where "which encoding" and "which target" were
/// separate closed enums.
pub type Isa = IsaId;

/// Which ISA a function targets (the user annotation of §IV-C1).
/// Alias of [`IsaId`]: a target *is* its ISA now that placement ranges
/// over an open set of core kinds instead of a host/NxP dichotomy.
pub type TargetIsa = IsaId;

/// Signature of a registered whole-function encoder.
pub type EncodeFn = fn(&Func) -> Result<Encoded, EncodeError>;

/// Signature of a registered single-instruction decoder: bytes →
/// `(instruction, encoded length)`.
pub type DecodeFn = fn(&[u8]) -> Result<(Inst, usize), DecodeError>;

/// Static description of one registered ISA: everything the rest of the
/// system needs to encode, decode, place, schedule and charge time for
/// code of this ISA. One entry per [`IsaId`] lives in the registry
/// ([`IsaId::descriptor`]).
#[derive(Debug)]
pub struct IsaDescriptor {
    /// The ID this descriptor describes.
    pub id: IsaId,
    /// Short lower-case name (`"x64"`, `"rv64"`, `"arm64"`) — used for
    /// fleet specs, section suffix selection and trace track names.
    pub name: &'static str,
    /// Name of the text section holding this ISA's code in objects and
    /// images (`.text`, `.text.riscv`, `.text.arm`). Drives the
    /// linker's per-ISA relocation-method selection (§IV-C2).
    pub text_section: &'static str,
    /// Instruction alignment requirement in bytes (power of two).
    pub fetch_align: u64,
    /// Longest instruction in bytes (fetch buffer sizing).
    pub max_inst_len: usize,
    /// True when this ISA's text pages carry the NX bit under the Flick
    /// convention — i.e. the ISA runs on accelerator-side cores and a
    /// *host* fetch of its text must trap (§III-B). False only for the
    /// host's own encoding.
    pub nx_text: bool,
    /// Nominal core clock in kHz for cores of this ISA.
    pub clock_khz: u64,
    /// Per-instruction-class cycle costs for cores of this ISA.
    pub cpi: CpiTable,
    /// Encodes a whole function into this ISA's bytes.
    pub encode: EncodeFn,
    /// Decodes one instruction, returning it and its byte length.
    pub decode: DecodeFn,
    /// True when `op` is a valid first byte of this ISA's encoding —
    /// used to classify wrong-ISA bytes as [`DecodeError::ForeignEncoding`].
    pub owns_opcode: fn(u8) -> bool,
}

/// Per-instruction-class cycle costs, as registry data. The CPU crate
/// converts this into its timing model when building a core for an ISA.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CpiTable {
    /// Simple ALU / immediate ops.
    pub alu: u64,
    /// Multiply.
    pub mul: u64,
    /// Divide / remainder.
    pub div: u64,
    /// Load/store issue overhead (memory latency added separately).
    pub mem: u64,
    /// Conditional branch.
    pub branch: u64,
    /// Jumps, calls, returns.
    pub jump: u64,
    /// Trap entry for `ecall`.
    pub ecall: u64,
}

/// The ISA registry, indexed by `IsaId as usize`.
static REGISTRY: [IsaDescriptor; 3] = [
    IsaDescriptor {
        id: IsaId::X64,
        name: "x64",
        text_section: ".text",
        fetch_align: 1,
        max_inst_len: 10,
        nx_text: false,
        // Xeon-like host core of Table I: 2.4 GHz, everything cheap.
        clock_khz: 2_400_000,
        cpi: CpiTable { alu: 1, mul: 3, div: 20, mem: 1, branch: 1, jump: 2, ecall: 50 },
        encode: encode::x64::encode,
        decode: encode::x64::decode,
        owns_opcode: encode::x64::owns_opcode,
    },
    IsaDescriptor {
        id: IsaId::Rv64,
        name: "rv64",
        text_section: ".text.riscv",
        fetch_align: 8,
        max_inst_len: 16,
        nx_text: true,
        // RV64-like soft core of Table I: 200 MHz, in-order scalar.
        clock_khz: 200_000,
        cpi: CpiTable { alu: 1, mul: 5, div: 35, mem: 3, branch: 2, jump: 2, ecall: 10 },
        encode: encode::rv64::encode,
        decode: encode::rv64::decode,
        owns_opcode: encode::rv64::owns_opcode,
    },
    IsaDescriptor {
        id: IsaId::Arm64,
        name: "arm64",
        text_section: ".text.arm",
        fetch_align: 4,
        max_inst_len: 16,
        nx_text: true,
        // A third design point between the two: 1 GHz hard macro,
        // in-order but wider than the soft core.
        clock_khz: 1_000_000,
        cpi: CpiTable { alu: 1, mul: 4, div: 24, mem: 2, branch: 1, jump: 2, ecall: 20 },
        encode: encode::arm64::encode,
        decode: encode::arm64::decode,
        owns_opcode: encode::arm64::owns_opcode,
    },
];

impl IsaId {
    /// The host's own encoding (compatibility name from the two-ISA
    /// era; prefer [`IsaId::X64`] in new code).
    #[allow(non_upper_case_globals)]
    pub const Host: IsaId = IsaId::X64;
    /// The classic NxP encoding (compatibility name from the two-ISA
    /// era; prefer [`IsaId::Rv64`] in new code).
    #[allow(non_upper_case_globals)]
    pub const Nxp: IsaId = IsaId::Rv64;

    /// Number of registered ISAs (the registry length).
    pub const COUNT: usize = 3;

    /// Every registered ISA, in registry (tag) order.
    pub fn all() -> &'static [IsaDescriptor; Self::COUNT] {
        &REGISTRY
    }

    /// This ISA's registry entry.
    pub fn descriptor(self) -> &'static IsaDescriptor {
        &REGISTRY[self as usize]
    }

    /// The machine encoding used for this target — the identity, kept
    /// so two-ISA-era call sites (`target.isa()`) still read naturally.
    pub fn isa(self) -> Isa {
        self
    }

    /// Short lower-case name from the descriptor.
    pub fn name(self) -> &'static str {
        self.descriptor().name
    }

    /// Registry tag (stable; used in image kind bytes and PTE ISA tags).
    pub const fn tag(self) -> u8 {
        self as u8
    }

    /// Inverse of [`IsaId::tag`].
    pub const fn from_tag(tag: u8) -> Option<IsaId> {
        match tag {
            0 => Some(IsaId::X64),
            1 => Some(IsaId::Rv64),
            2 => Some(IsaId::Arm64),
            _ => None,
        }
    }

    /// Looks an ISA up by its descriptor name (fleet specs, CLI flags).
    pub fn from_name(name: &str) -> Option<IsaId> {
        REGISTRY.iter().find(|d| d.name == name).map(|d| d.id)
    }

    /// Instruction alignment requirement in bytes.
    pub fn fetch_align(self) -> u64 {
        self.descriptor().fetch_align
    }

    /// Name of the text section for this ISA's code.
    pub fn text_section(self) -> &'static str {
        self.descriptor().text_section
    }

    /// Encodes a whole function, resolving internal labels and emitting
    /// relocations for symbol references.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when a label is unbound or a branch
    /// offset overflows its field.
    pub fn encode(self, func: &Func) -> Result<Encoded, EncodeError> {
        (self.descriptor().encode)(func)
    }

    /// Decodes one instruction from `bytes`, returning it and its length.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for unknown opcodes or truncated input.
    /// An opcode byte that belongs to a *different* registered ISA is
    /// reported as [`DecodeError::ForeignEncoding`] naming that ISA —
    /// the typed form of the §IV-B2 wrong-ISA-fetch trigger. The
    /// classification runs only on the (cold) decode-failure path.
    pub fn decode(self, bytes: &[u8]) -> Result<(Inst, usize), DecodeError> {
        match (self.descriptor().decode)(bytes) {
            Err(DecodeError::UnknownOpcode(op)) => {
                match REGISTRY.iter().find(|d| d.id != self && (d.owns_opcode)(op)) {
                    Some(owner) => Err(DecodeError::ForeignEncoding { isa: owner.id }),
                    None => Err(DecodeError::UnknownOpcode(op)),
                }
            }
            other => other,
        }
    }
}

impl fmt::Display for IsaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_to_isa() {
        assert_eq!(TargetIsa::Host.isa(), Isa::X64);
        assert_eq!(TargetIsa::Nxp.isa(), Isa::Rv64);
    }

    #[test]
    fn alignment_requirements() {
        assert_eq!(Isa::X64.fetch_align(), 1);
        assert_eq!(Isa::Rv64.fetch_align(), 8);
        assert_eq!(Isa::Arm64.fetch_align(), 4);
    }

    #[test]
    fn registry_is_consistent() {
        for (i, d) in IsaId::all().iter().enumerate() {
            assert_eq!(d.id as usize, i, "registry order matches tags");
            assert_eq!(d.id.descriptor().name, d.name);
            assert_eq!(IsaId::from_name(d.name), Some(d.id));
            assert_eq!(IsaId::from_tag(d.id.tag()), Some(d.id));
            assert!(d.fetch_align.is_power_of_two());
            assert!(d.text_section.starts_with(".text"));
        }
        let sections: std::collections::BTreeSet<_> =
            IsaId::all().iter().map(|d| d.text_section).collect();
        assert_eq!(sections.len(), IsaId::all().len());
        assert_eq!(IsaId::from_name("z80"), None);
        assert_eq!(IsaId::from_tag(3), None);
    }

    #[test]
    fn opcode_spaces_are_disjoint() {
        for op in 0..=255u8 {
            let owners: Vec<_> = IsaId::all()
                .iter()
                .filter(|d| (d.owns_opcode)(op))
                .map(|d| d.name)
                .collect();
            assert!(owners.len() <= 1, "opcode {op:#04x} owned by {owners:?}");
        }
    }

    #[test]
    fn only_host_text_is_nx_clear() {
        for d in IsaId::all() {
            assert_eq!(d.nx_text, d.id != IsaId::Host, "{}", d.name);
        }
    }
}
