#![warn(missing_docs)]
//! The Flick IR (FIR) and its two machine encodings.
//!
//! The paper's prototype runs one logical program on two real ISAs:
//! x86-64 on the host and RV64-I on the NxP, with functions assigned to
//! an ISA by user annotation and compiled by *unmodified* per-ISA
//! compilers (§IV-C). Reproducing two full commercial ISAs would add
//! enormous bulk without adding fidelity to the thing the paper is
//! about — the *migration mechanism* — so this reproduction defines one
//! small register IR (FIR) with two deliberately different machine
//! encodings that preserve the properties the mechanism depends on:
//!
//! * [`X64`](Isa::X64) — a *variable-length* encoding (1–10 byte
//!   instructions, no alignment), like x86-64. Host cores decode this.
//! * [`Rv64`](Isa::Rv64) — a *fixed-width* encoding (8-byte words,
//!   8-byte aligned), like RISC-V. The NxP decodes this, and fetching
//!   x64 bytes raises exactly the exceptions §IV-B2 describes: a
//!   misaligned-instruction-address fault or an illegal opcode (the two
//!   opcode spaces are disjoint).
//!
//! The crate provides:
//!
//! * [`inst`] — the instruction set ([`Inst`]), registers ([`Reg`]) and
//!   the shared logical calling convention ([`abi`]).
//! * [`func`] — [`FuncBuilder`], a label-based assembler for writing
//!   functions, and [`Func`], the unencoded result.
//! * [`encode`] — per-ISA encoders/decoders and relocation records
//!   ([`Reloc`]) consumed by the multi-ISA linker.
//! * [`disasm`] — a disassembler for debugging and tests.
//!
//! # Examples
//!
//! Build a function, encode it for both ISAs, and observe the decoders
//! reject each other's bytes:
//!
//! ```
//! use flick_isa::{abi, FuncBuilder, Isa, MemSize, TargetIsa};
//!
//! let mut f = FuncBuilder::new("add_one", TargetIsa::Nxp);
//! f.addi(abi::A0, abi::A0, 1);
//! f.ret();
//! let func = f.finish();
//!
//! let rv = Isa::Rv64.encode(&func)?;
//! let x = Isa::X64.encode(&func)?;
//! assert_ne!(rv.bytes, x.bytes);
//! // The x64 decoder cannot decode rv64 bytes:
//! assert!(Isa::X64.decode(&rv.bytes).is_err());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod disasm;
pub mod expr;
pub mod lang;
pub mod encode;
pub mod func;
pub mod inst;

pub use encode::{DecodeError, EncodeError, Encoded, Reloc, RelocKind};
pub use expr::{compile_expr, Expr, ExprError};
pub use func::{Func, FuncBuilder, Label};
pub use inst::{abi, AluOp, BranchOp, Inst, MemSize, Reg, Target};

use std::fmt;

/// Which ISA a function targets (the user annotation of §IV-C1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TargetIsa {
    /// Runs on the host cores (x64-like encoding).
    Host,
    /// Runs on the NxP core (rv64-like encoding).
    Nxp,
}

impl TargetIsa {
    /// The machine encoding used for this target.
    pub fn isa(self) -> Isa {
        match self {
            TargetIsa::Host => Isa::X64,
            TargetIsa::Nxp => Isa::Rv64,
        }
    }
}

impl fmt::Display for TargetIsa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetIsa::Host => write!(f, "host"),
            TargetIsa::Nxp => write!(f, "nxp"),
        }
    }
}

/// A machine encoding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Isa {
    /// Variable-length host encoding.
    X64,
    /// Fixed-width (8-byte) NxP encoding.
    Rv64,
}

impl Isa {
    /// Instruction alignment requirement in bytes.
    pub const fn fetch_align(self) -> u64 {
        match self {
            Isa::X64 => 1,
            Isa::Rv64 => 8,
        }
    }

    /// Encodes a whole function, resolving internal labels and emitting
    /// relocations for symbol references.
    ///
    /// # Errors
    ///
    /// Returns [`EncodeError`] when a label is unbound or a branch
    /// offset overflows its field.
    pub fn encode(self, func: &Func) -> Result<Encoded, EncodeError> {
        match self {
            Isa::X64 => encode::x64::encode(func),
            Isa::Rv64 => encode::rv64::encode(func),
        }
    }

    /// Decodes one instruction from `bytes`, returning it and its length.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] for unknown opcodes or truncated input.
    pub fn decode(self, bytes: &[u8]) -> Result<(Inst, usize), DecodeError> {
        match self {
            Isa::X64 => encode::x64::decode(bytes),
            Isa::Rv64 => encode::rv64::decode(bytes),
        }
    }
}

impl fmt::Display for Isa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Isa::X64 => write!(f, "x64"),
            Isa::Rv64 => write!(f, "rv64"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_to_isa() {
        assert_eq!(TargetIsa::Host.isa(), Isa::X64);
        assert_eq!(TargetIsa::Nxp.isa(), Isa::Rv64);
    }

    #[test]
    fn alignment_requirements() {
        assert_eq!(Isa::X64.fetch_align(), 1);
        assert_eq!(Isa::Rv64.fetch_align(), 8);
    }
}
