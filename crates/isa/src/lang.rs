//! A structured mini-language compiled to FIR: the statement layer of
//! the reproduction's "compiler".
//!
//! Where [`crate::expr`] lowers arithmetic trees, this module adds
//! locals, memory access, structured control flow (`if`/`while`) and
//! **calls** — including calls that resolve to functions on the other
//! ISA, which is where Flick's migrations come from. Together with the
//! per-ISA encoders this forms a complete (if unoptimising) pipeline
//! from a C-like program representation down to dual-ISA machine code.
//!
//! Code generation uses a fixed frame: `ra` save, an argument
//! snapshot, locals, and a memory operand stack, all at positive
//! offsets from the post-prologue `sp` — so calls (which build their
//! frames *below* `sp`) are safe at any expression depth.
//!
//! # Examples
//!
//! ```
//! use flick_isa::lang::{FnDef, LExpr, Stmt};
//! use flick_isa::{BranchOp, TargetIsa};
//!
//! // fn double_until(n, limit) { while (n < limit) { n = n + n; } return n; }
//! let f = FnDef {
//!     name: "double_until".into(),
//!     target: TargetIsa::Nxp,
//!     num_args: 2,
//!     num_locals: 1,
//!     body: vec![
//!         Stmt::Let(0, LExpr::Arg(0)),
//!         Stmt::While(
//!             (BranchOp::Ltu, LExpr::Local(0), LExpr::Arg(1)).into(),
//!             vec![Stmt::Let(0, LExpr::Local(0) + LExpr::Local(0))],
//!         ),
//!         Stmt::Return(LExpr::Local(0)),
//!     ],
//! };
//! let func = flick_isa::lang::compile_fn(&f)?;
//! assert_eq!(func.name, "double_until");
//! # Ok::<(), flick_isa::lang::LangError>(())
//! ```

use crate::expr::MAX_DEPTH;
use crate::func::{Func, FuncBuilder, Label};
use crate::inst::{abi, AluOp, BranchOp, Inst, MemSize, Reg};
use crate::TargetIsa;
use std::fmt;

/// An expression over arguments, locals and memory.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LExpr {
    /// A 64-bit constant.
    Const(i64),
    /// The `i`-th argument (`a0`–`a5`), snapshotted at entry.
    Arg(u8),
    /// The `i`-th local variable.
    Local(u8),
    /// Binary operation.
    Bin(AluOp, Box<LExpr>, Box<LExpr>),
    /// Zero-extended load of `size` bytes from the address expression.
    Load(Box<LExpr>, MemSize),
    /// Call a named function (possibly on the other ISA) with up to six
    /// argument expressions; the value is the callee's `a0`.
    Call(String, Vec<LExpr>),
}

impl LExpr {
    /// `self op rhs`.
    pub fn bin(self, op: AluOp, rhs: LExpr) -> LExpr {
        LExpr::Bin(op, Box::new(self), Box::new(rhs))
    }


    fn depth(&self) -> usize {
        match self {
            LExpr::Const(_) | LExpr::Arg(_) | LExpr::Local(_) => 1,
            LExpr::Bin(_, a, b) => 1 + a.depth().max(b.depth()),
            LExpr::Load(a, _) => a.depth(),
            // Arguments are evaluated left to right onto consecutive
            // operand slots.
            LExpr::Call(_, args) => args
                .iter()
                .enumerate()
                .map(|(i, a)| i + a.depth())
                .max()
                .unwrap_or(1)
                .max(1),
        }
    }
}

impl std::ops::Add for LExpr {
    type Output = LExpr;
    fn add(self, rhs: LExpr) -> LExpr {
        self.bin(AluOp::Add, rhs)
    }
}

impl std::ops::Sub for LExpr {
    type Output = LExpr;
    fn sub(self, rhs: LExpr) -> LExpr {
        self.bin(AluOp::Sub, rhs)
    }
}

impl std::ops::Mul for LExpr {
    type Output = LExpr;
    fn mul(self, rhs: LExpr) -> LExpr {
        self.bin(AluOp::Mul, rhs)
    }
}

impl fmt::Display for LExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LExpr::Const(c) => write!(f, "{c}"),
            LExpr::Arg(i) => write!(f, "a{i}"),
            LExpr::Local(i) => write!(f, "l{i}"),
            LExpr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
            LExpr::Load(a, s) => write!(f, "*({a}):{}", s.bytes()),
            LExpr::Call(n, args) => {
                write!(f, "{n}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// A branch condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cond {
    /// Comparison operator.
    pub op: BranchOp,
    /// Left operand.
    pub lhs: LExpr,
    /// Right operand.
    pub rhs: LExpr,
}

impl From<(BranchOp, LExpr, LExpr)> for Cond {
    fn from((op, lhs, rhs): (BranchOp, LExpr, LExpr)) -> Self {
        Cond { op, lhs, rhs }
    }
}

/// A statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `locals[i] = expr` (declaration and assignment are the same).
    Let(u8, LExpr),
    /// `*(addr) = value` with the given width.
    Store(LExpr, LExpr, MemSize),
    /// `if (cond) { then } else { otherwise }`.
    If(Cond, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { body }`.
    While(Cond, Vec<Stmt>),
    /// Evaluate for side effects (e.g. a bare call).
    Expr(LExpr),
    /// Return a value.
    Return(LExpr),
}

/// A function definition in the mini-language.
#[derive(Clone, Debug)]
pub struct FnDef {
    /// Linker symbol.
    pub name: String,
    /// ISA annotation (§IV-C1's user partitioning).
    pub target: TargetIsa,
    /// Number of arguments (≤ 6).
    pub num_args: u8,
    /// Number of local variables.
    pub num_locals: u8,
    /// Body; an implicit `return 0` is appended.
    pub body: Vec<Stmt>,
}

/// Compilation errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LangError {
    /// `Arg(i)` beyond `num_args` or ≥ 6.
    BadArg(u8),
    /// `Local(i)` beyond `num_locals`.
    BadLocal(u8),
    /// More than six call arguments.
    TooManyCallArgs(usize),
    /// Expression exceeds the operand-stack depth.
    TooDeep(usize),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::BadArg(i) => write!(f, "argument a{i} out of range"),
            LangError::BadLocal(i) => write!(f, "local l{i} out of range"),
            LangError::TooManyCallArgs(n) => write!(f, "{n} call arguments (max 6)"),
            LangError::TooDeep(d) => write!(f, "expression depth {d} exceeds {MAX_DEPTH}"),
        }
    }
}

impl std::error::Error for LangError {}

struct Frame {
    num_args: u8,
    num_locals: u8,
}

impl Frame {
    fn ra(&self) -> i32 {
        0
    }
    fn arg(&self, i: u8) -> i32 {
        8 + 8 * i as i32
    }
    fn local(&self, i: u8) -> i32 {
        8 + 48 + 8 * i as i32
    }
    fn operand(&self, depth: usize) -> i32 {
        8 + 48 + 8 * self.num_locals as i32 + 8 * depth as i32
    }
    fn size(&self) -> i32 {
        let raw = self.operand(MAX_DEPTH);
        (raw + 15) & !15
    }
}

struct Gen<'a> {
    f: &'a mut FuncBuilder,
    frame: Frame,
}

/// Compiles a [`FnDef`] into an assembled [`Func`].
///
/// # Errors
///
/// See [`LangError`].
pub fn compile_fn(def: &FnDef) -> Result<Func, LangError> {
    let mut f = FuncBuilder::new(def.name.clone(), def.target);
    let frame = Frame {
        num_args: def.num_args.min(6),
        num_locals: def.num_locals,
    };
    // Prologue: frame + ra + argument snapshot.
    f.addi(abi::SP, abi::SP, -frame.size());
    f.st(abi::RA, abi::SP, frame.ra(), MemSize::B8);
    for i in 0..frame.num_args {
        f.st(Reg(10 + i), abi::SP, frame.arg(i), MemSize::B8);
    }
    let mut gen = Gen { f: &mut f, frame };
    for s in &def.body {
        gen.stmt(s, def)?;
    }
    // Implicit `return 0`.
    gen.stmt(&Stmt::Return(LExpr::Const(0)), def)?;
    Ok(f.finish())
}

impl Gen<'_> {
    fn check_expr(&self, e: &LExpr, def: &FnDef) -> Result<(), LangError> {
        if e.depth() > MAX_DEPTH {
            return Err(LangError::TooDeep(e.depth()));
        }
        self.check_refs(e, def)
    }

    fn check_refs(&self, e: &LExpr, def: &FnDef) -> Result<(), LangError> {
        match e {
            LExpr::Const(_) => Ok(()),
            LExpr::Arg(i) => {
                if *i >= def.num_args || *i >= 6 {
                    Err(LangError::BadArg(*i))
                } else {
                    Ok(())
                }
            }
            LExpr::Local(i) => {
                if *i >= def.num_locals {
                    Err(LangError::BadLocal(*i))
                } else {
                    Ok(())
                }
            }
            LExpr::Bin(_, a, b) => {
                self.check_refs(a, def)?;
                self.check_refs(b, def)
            }
            LExpr::Load(a, _) => self.check_refs(a, def),
            LExpr::Call(_, args) => {
                if args.len() > 6 {
                    return Err(LangError::TooManyCallArgs(args.len()));
                }
                for a in args {
                    self.check_refs(a, def)?;
                }
                Ok(())
            }
        }
    }

    /// Emits `e`, leaving its value in operand slot `depth`.
    fn expr(&mut self, e: &LExpr, depth: usize) {
        match e {
            LExpr::Const(c) => {
                self.f.li(abi::T0, *c);
                self.store_op(depth);
            }
            LExpr::Arg(i) => {
                let off = self.frame.arg(*i);
                self.f.ld(abi::T0, abi::SP, off, MemSize::B8);
                self.store_op(depth);
            }
            LExpr::Local(i) => {
                let off = self.frame.local(*i);
                self.f.ld(abi::T0, abi::SP, off, MemSize::B8);
                self.store_op(depth);
            }
            LExpr::Bin(op, a, b) => {
                self.expr(a, depth);
                self.expr(b, depth + 1);
                self.load_op(abi::T0, depth);
                self.load_op(abi::T1, depth + 1);
                self.f.push(Inst::Alu {
                    op: *op,
                    rd: abi::T0,
                    rs1: abi::T0,
                    rs2: abi::T1,
                });
                self.store_op(depth);
            }
            LExpr::Load(a, size) => {
                self.expr(a, depth);
                self.load_op(abi::T0, depth);
                self.f.ld(abi::T0, abi::T0, 0, *size);
                self.store_op(depth);
            }
            LExpr::Call(name, args) => {
                for (i, a) in args.iter().enumerate() {
                    self.expr(a, depth + i);
                }
                for (i, _) in args.iter().enumerate() {
                    self.load_op(Reg(10 + i as u8), depth + i);
                }
                self.f.call(name);
                self.f.mv(abi::T0, abi::A0);
                self.store_op(depth);
            }
        }
    }

    fn store_op(&mut self, depth: usize) {
        let off = self.frame.operand(depth);
        self.f.st(abi::T0, abi::SP, off, MemSize::B8);
    }

    fn load_op(&mut self, reg: Reg, depth: usize) {
        let off = self.frame.operand(depth);
        self.f.ld(reg, abi::SP, off, MemSize::B8);
    }

    /// Emits a conditional branch to `target` when `cond` is **false**.
    fn branch_unless(&mut self, cond: &Cond, target: Label) {
        self.expr(&cond.lhs, 0);
        self.expr(&cond.rhs, 1);
        self.load_op(abi::T0, 0);
        self.load_op(abi::T1, 1);
        self.f.push(Inst::Branch {
            op: cond.op.negate(),
            rs1: abi::T0,
            rs2: abi::T1,
            target: crate::inst::Target::Label(target),
        });
    }

    fn stmt(&mut self, s: &Stmt, def: &FnDef) -> Result<(), LangError> {
        match s {
            Stmt::Let(i, e) => {
                if *i >= def.num_locals {
                    return Err(LangError::BadLocal(*i));
                }
                self.check_expr(e, def)?;
                self.expr(e, 0);
                self.load_op(abi::T0, 0);
                let off = self.frame.local(*i);
                self.f.st(abi::T0, abi::SP, off, MemSize::B8);
            }
            Stmt::Store(addr, val, size) => {
                self.check_expr(addr, def)?;
                self.check_expr(val, def)?;
                self.expr(addr, 0);
                self.expr(val, 1);
                self.load_op(abi::T0, 0);
                self.load_op(abi::T1, 1);
                self.f.st(abi::T1, abi::T0, 0, *size);
            }
            Stmt::If(cond, then, otherwise) => {
                self.check_expr(&cond.lhs, def)?;
                self.check_expr(&cond.rhs, def)?;
                let else_l = self.f.new_label();
                let end = self.f.new_label();
                self.branch_unless(cond, else_l);
                for s in then {
                    self.stmt(s, def)?;
                }
                self.f.jmp(end);
                self.f.bind(else_l);
                for s in otherwise {
                    self.stmt(s, def)?;
                }
                self.f.bind(end);
            }
            Stmt::While(cond, body) => {
                self.check_expr(&cond.lhs, def)?;
                self.check_expr(&cond.rhs, def)?;
                let head = self.f.new_label();
                let end = self.f.new_label();
                self.f.bind(head);
                self.branch_unless(cond, end);
                for s in body {
                    self.stmt(s, def)?;
                }
                self.f.jmp(head);
                self.f.bind(end);
            }
            Stmt::Expr(e) => {
                self.check_expr(e, def)?;
                self.expr(e, 0);
            }
            Stmt::Return(e) => {
                self.check_expr(e, def)?;
                self.expr(e, 0);
                self.load_op(abi::A0, 0);
                self.f.ld(abi::RA, abi::SP, self.frame.ra(), MemSize::B8);
                self.f.addi(abi::SP, abi::SP, self.frame.size());
                self.f.ret();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gcd_def(target: TargetIsa) -> FnDef {
        // while (a1 != 0) { t = a0 % a1; a0 = a1; a1 = t }
        FnDef {
            name: "lgcd".into(),
            target,
            num_args: 2,
            num_locals: 3,
            body: vec![
                Stmt::Let(0, LExpr::Arg(0)),
                Stmt::Let(1, LExpr::Arg(1)),
                Stmt::While(
                    (BranchOp::Ne, LExpr::Local(1), LExpr::Const(0)).into(),
                    vec![
                        Stmt::Let(2, LExpr::Local(0).bin(AluOp::Remu, LExpr::Local(1))),
                        Stmt::Let(0, LExpr::Local(1)),
                        Stmt::Let(1, LExpr::Local(2)),
                    ],
                ),
                Stmt::Return(LExpr::Local(0)),
            ],
        }
    }

    #[test]
    fn compiles_and_encodes_for_both_isas() {
        for target in [TargetIsa::Host, TargetIsa::Nxp] {
            let f = compile_fn(&gcd_def(target)).unwrap();
            assert!(target.isa().encode(&f).is_ok());
        }
    }

    #[test]
    fn rejects_bad_references() {
        let mut d = gcd_def(TargetIsa::Host);
        d.body.push(Stmt::Return(LExpr::Arg(5)));
        assert!(matches!(compile_fn(&d), Err(LangError::BadArg(5))));
        let mut d = gcd_def(TargetIsa::Host);
        d.body.push(Stmt::Let(9, LExpr::Const(0)));
        assert!(matches!(compile_fn(&d), Err(LangError::BadLocal(9))));
    }

    #[test]
    fn rejects_too_many_call_args() {
        let d = FnDef {
            name: "f".into(),
            target: TargetIsa::Host,
            num_args: 0,
            num_locals: 0,
            body: vec![Stmt::Expr(LExpr::Call(
                "g".into(),
                vec![LExpr::Const(0); 7],
            ))],
        };
        assert!(matches!(
            compile_fn(&d),
            Err(LangError::TooManyCallArgs(7))
        ));
    }

    #[test]
    fn frame_is_sixteen_aligned() {
        let fr = Frame {
            num_args: 3,
            num_locals: 5,
        };
        assert_eq!(fr.size() % 16, 0);
        assert!(fr.operand(MAX_DEPTH - 1) < fr.size());
    }

    #[test]
    fn display_formats() {
        let e = LExpr::Call(
            "f".into(),
            vec![LExpr::Arg(0), LExpr::Load(Box::new(LExpr::Local(1)), MemSize::B4)],
        );
        assert_eq!(e.to_string(), "f(a0, *(l1):4)");
    }
}
