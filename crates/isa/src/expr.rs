//! A small expression compiler on top of the [`FuncBuilder`] assembler.
//!
//! The paper's toolchain invokes *unmodified per-ISA compilers* on
//! annotated C (§IV-C1); this reproduction's equivalent of "the
//! compiler" is this module: it lowers arithmetic expression trees to
//! FIR, which the per-ISA encoders then turn into machine code. It
//! exists so workloads can be written at a C-expression level of
//! abstraction instead of hand-allocating scratch registers.
//!
//! Code generation is deliberately the simplest correct scheme — a
//! stack machine over a memory operand stack below `sp`, touching only
//! two scratch registers — i.e. what a non-optimizing compiler emits.
//! Correctness is locked by differential tests against [`Expr::eval`].

use crate::func::FuncBuilder;
use crate::inst::{abi, AluOp, MemSize};
use std::fmt;

/// A binary operator usable in expressions (any FIR ALU op).
pub type BinOp = AluOp;

/// Maximum supported expression depth (operand-stack slots).
pub const MAX_DEPTH: usize = 64;

/// An arithmetic expression over the function's arguments.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A 64-bit constant.
    Const(i64),
    /// The `i`-th function argument (`a0`–`a5`).
    Arg(u8),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// `self op rhs`.
    pub fn bin(self, op: BinOp, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(self), Box::new(rhs))
    }


    /// Bitwise-xor helper.
    pub fn xor(self, rhs: Expr) -> Expr {
        self.bin(AluOp::Xor, rhs)
    }

    /// Reference evaluation (the semantics code generation must match).
    pub fn eval(&self, args: &[u64]) -> u64 {
        match self {
            Expr::Const(c) => *c as u64,
            Expr::Arg(i) => args.get(*i as usize).copied().unwrap_or(0),
            Expr::Bin(op, a, b) => op.eval(a.eval(args), b.eval(args)),
        }
    }

    /// Expression depth.
    pub fn depth(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Arg(_) => 1,
            Expr::Bin(_, a, b) => 1 + a.depth().max(b.depth()),
        }
    }
}

impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        self.bin(AluOp::Add, rhs)
    }
}

impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        self.bin(AluOp::Sub, rhs)
    }
}

impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        self.bin(AluOp::Mul, rhs)
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Arg(i) => write!(f, "a{i}"),
            Expr::Bin(op, a, b) => write!(f, "({a} {op} {b})"),
        }
    }
}

/// Errors from expression compilation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExprError {
    /// `Arg(i)` with `i >= 6`.
    BadArg(u8),
    /// Expression deeper than [`MAX_DEPTH`].
    TooDeep(usize),
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::BadArg(i) => write!(f, "argument index {i} out of range (a0-a5)"),
            ExprError::TooDeep(d) => write!(f, "expression depth {d} exceeds {MAX_DEPTH}"),
        }
    }
}

impl std::error::Error for ExprError {}

// Frame layout below sp (the caller's red zone is ours to use inside
// a leaf body): [sp-8*(1+i)] = operand stack slot i, then six argument
// snapshots above the operand area.
const ARG_SAVE: i32 = -(8 * (MAX_DEPTH as i32 + 7));

fn arg_slot(i: u8) -> i32 {
    ARG_SAVE + 8 * i as i32
}

fn stack_slot(depth: usize) -> i32 {
    -(8 * (depth as i32 + 1))
}

/// Compiles `expr` so that its value ends up in `a0`.
///
/// Emits into an *entry-style* position: the function's arguments must
/// still be live in `a0`–`a5`. Clobbers `t0`/`t1` and a red-zone area
/// below `sp`; all other registers are preserved.
///
/// # Errors
///
/// [`ExprError::BadArg`] for out-of-range argument references,
/// [`ExprError::TooDeep`] for expressions beyond [`MAX_DEPTH`].
pub fn compile_expr(f: &mut FuncBuilder, expr: &Expr) -> Result<(), ExprError> {
    if expr.depth() > MAX_DEPTH {
        return Err(ExprError::TooDeep(expr.depth()));
    }
    let mut used = [false; 6];
    collect_args(expr, &mut used)?;
    // Snapshot referenced arguments: the operand stack never aliases
    // them, but the caller may reuse a0-a5 between sub-expressions.
    for (i, u) in used.iter().enumerate() {
        if *u {
            f.st(abi::A0.checked(i as u8), abi::SP, arg_slot(i as u8), MemSize::B8);
        }
    }
    emit(f, expr, 0);
    f.ld(abi::A0, abi::SP, stack_slot(0), MemSize::B8);
    Ok(())
}

trait RegExt {
    fn checked(self, offset: u8) -> crate::inst::Reg;
}

impl RegExt for crate::inst::Reg {
    fn checked(self, offset: u8) -> crate::inst::Reg {
        crate::inst::Reg(self.0 + offset)
    }
}

fn collect_args(e: &Expr, used: &mut [bool; 6]) -> Result<(), ExprError> {
    match e {
        Expr::Const(_) => Ok(()),
        Expr::Arg(i) => {
            if *i >= 6 {
                return Err(ExprError::BadArg(*i));
            }
            used[*i as usize] = true;
            Ok(())
        }
        Expr::Bin(_, a, b) => {
            collect_args(a, used)?;
            collect_args(b, used)
        }
    }
}

/// Emits code leaving the value in operand-stack slot `depth`.
fn emit(f: &mut FuncBuilder, e: &Expr, depth: usize) {
    match e {
        Expr::Const(c) => {
            f.li(abi::T0, *c);
            f.st(abi::T0, abi::SP, stack_slot(depth), MemSize::B8);
        }
        Expr::Arg(i) => {
            f.ld(abi::T0, abi::SP, arg_slot(*i), MemSize::B8);
            f.st(abi::T0, abi::SP, stack_slot(depth), MemSize::B8);
        }
        Expr::Bin(op, a, b) => {
            emit(f, a, depth);
            emit(f, b, depth + 1);
            f.ld(abi::T0, abi::SP, stack_slot(depth), MemSize::B8);
            f.ld(abi::T1, abi::SP, stack_slot(depth + 1), MemSize::B8);
            f.push(crate::inst::Inst::Alu {
                op: *op,
                rd: abi::T0,
                rs1: abi::T0,
                rs2: abi::T1,
            });
            f.st(abi::T0, abi::SP, stack_slot(depth), MemSize::B8);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::ops::{Add, Mul, Sub};

    #[test]
    fn display_is_parenthesised() {
        let e = Expr::Arg(0).add(Expr::Const(3)).mul(Expr::Arg(1));
        assert_eq!(e.to_string(), "((a0 add 3) mul a1)");
    }

    #[test]
    fn eval_matches_hand_computation() {
        let e = Expr::Arg(0)
            .add(Expr::Const(3))
            .mul(Expr::Arg(1).sub(Expr::Const(1)));
        assert_eq!(e.eval(&[7, 5]), (7 + 3) * (5 - 1));
    }

    #[test]
    fn bad_arg_rejected() {
        let mut f = FuncBuilder::new("f", crate::TargetIsa::Host);
        assert_eq!(
            compile_expr(&mut f, &Expr::Arg(6)),
            Err(ExprError::BadArg(6))
        );
    }

    #[test]
    fn too_deep_rejected() {
        let mut e = Expr::Const(1);
        for _ in 0..MAX_DEPTH + 1 {
            e = e.add(Expr::Const(1));
        }
        let mut f = FuncBuilder::new("f", crate::TargetIsa::Host);
        assert_eq!(
            compile_expr(&mut f, &e),
            Err(ExprError::TooDeep(MAX_DEPTH + 2))
        );
    }

    #[test]
    fn compiles_and_encodes_for_both_isas() {
        let e = Expr::Arg(0).mul(Expr::Const(3)).add(Expr::Arg(1));
        for target in [crate::TargetIsa::Host, crate::TargetIsa::Nxp] {
            let mut f = FuncBuilder::new("f", target);
            compile_expr(&mut f, &e).unwrap();
            f.ret();
            assert!(target.isa().encode(&f.finish()).is_ok());
        }
    }
}
