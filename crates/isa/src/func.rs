//! Functions and the label-based assembler used to write them.

use crate::inst::{abi, AluOp, BranchOp, Inst, MemSize, Reg, Target};
use crate::TargetIsa;
use std::collections::HashMap;

/// A forward-referencable position inside a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(pub u32);

/// An assembled (but not yet encoded) function.
#[derive(Clone, Debug)]
pub struct Func {
    /// Function name (the linker symbol it defines).
    pub name: String,
    /// Which ISA the user assigned this function to.
    pub target: TargetIsa,
    /// Instruction sequence; branch targets may be [`Target::Label`].
    pub insts: Vec<Inst>,
    /// Label bindings: label index → instruction index.
    pub labels: Vec<Option<usize>>,
    /// Referenced external symbol names, indexed by [`Target::Symbol`]
    /// and [`Inst::LiSym`].
    pub symbols: Vec<String>,
    /// Extra symbols this function exports at label positions (e.g. a
    /// re-entry point inside a loop), as `(name, label)` pairs.
    pub exports: Vec<(String, Label)>,
}

impl Func {
    /// Looks up the symbol name for a [`Target::Symbol`] index.
    pub fn symbol_name(&self, idx: u32) -> &str {
        &self.symbols[idx as usize]
    }
}

/// Builds a [`Func`] instruction by instruction.
///
/// This is the reproduction's "assembler": workloads and the Flick
/// migration handlers are written against it, then encoded for whichever
/// ISA their annotation selects.
///
/// # Examples
///
/// ```
/// use flick_isa::{abi, FuncBuilder, MemSize, TargetIsa};
///
/// // long count_nodes(node* p) { long n = 0; while (p) { n++; p = p->next; } return n; }
/// let mut f = FuncBuilder::new("count_nodes", TargetIsa::Nxp);
/// let loop_top = f.new_label();
/// let done = f.new_label();
/// f.li(abi::T0, 0);
/// f.bind(loop_top);
/// f.beq(abi::A0, abi::ZERO, done);
/// f.addi(abi::T0, abi::T0, 1);
/// f.ld(abi::A0, abi::A0, 0, MemSize::B8);
/// f.jmp(loop_top);
/// f.bind(done);
/// f.mv(abi::A0, abi::T0);
/// f.ret();
/// let func = f.finish();
/// assert_eq!(func.name, "count_nodes");
/// ```
#[derive(Debug)]
pub struct FuncBuilder {
    func: Func,
    sym_index: HashMap<String, u32>,
}

impl FuncBuilder {
    /// Starts a function named `name` targeting `target`.
    pub fn new(name: impl Into<String>, target: TargetIsa) -> Self {
        FuncBuilder {
            func: Func {
                name: name.into(),
                target,
                insts: Vec::new(),
                labels: Vec::new(),
                symbols: Vec::new(),
                exports: Vec::new(),
            },
            sym_index: HashMap::new(),
        }
    }

    /// Creates a fresh, unbound label.
    pub fn new_label(&mut self) -> Label {
        let l = Label(self.func.labels.len() as u32);
        self.func.labels.push(None);
        l
    }

    /// Binds `label` to the next emitted instruction.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        let slot = &mut self.func.labels[label.0 as usize];
        assert!(slot.is_none(), "label bound twice");
        *slot = Some(self.func.insts.len());
    }

    /// Exports `label`'s position under `name` in the linked image —
    /// used by the Flick runtime to enter the migration handler's loop
    /// directly (the paper's "thread starts execution inside the
    /// while() loop", §IV-B1).
    pub fn export_label(&mut self, name: impl Into<String>, label: Label) -> &mut Self {
        self.func.exports.push((name.into(), label));
        self
    }

    /// Interns `name` into the symbol table.
    pub fn symbol(&mut self, name: &str) -> u32 {
        if let Some(&i) = self.sym_index.get(name) {
            return i;
        }
        let i = self.func.symbols.len() as u32;
        self.func.symbols.push(name.to_string());
        self.sym_index.insert(name.to_string(), i);
        i
    }

    /// Emits a raw instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.func.insts.push(inst);
        self
    }

    // ---- ALU ----------------------------------------------------------

    /// `rd = rs1 + rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op: AluOp::Add, rd, rs1, rs2 })
    }

    /// `rd = rs1 - rs2`.
    pub fn sub(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op: AluOp::Sub, rd, rs1, rs2 })
    }

    /// `rd = rs1 * rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op: AluOp::Mul, rd, rs1, rs2 })
    }

    /// `rd = rs1 / rs2` (unsigned).
    pub fn divu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op: AluOp::Divu, rd, rs1, rs2 })
    }

    /// `rd = rs1 % rs2` (unsigned).
    pub fn remu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op: AluOp::Remu, rd, rs1, rs2 })
    }

    /// `rd = rs1 & rs2`.
    pub fn and(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op: AluOp::And, rd, rs1, rs2 })
    }

    /// `rd = rs1 | rs2`.
    pub fn or(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op: AluOp::Or, rd, rs1, rs2 })
    }

    /// `rd = rs1 ^ rs2`.
    pub fn xor(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op: AluOp::Xor, rd, rs1, rs2 })
    }

    /// `rd = rs1 << rs2`.
    pub fn sll(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op: AluOp::Sll, rd, rs1, rs2 })
    }

    /// `rd = rs1 >> rs2` (logical).
    pub fn srl(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op: AluOp::Srl, rd, rs1, rs2 })
    }

    /// `rd = (rs1 < rs2)` unsigned.
    pub fn sltu(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.push(Inst::Alu { op: AluOp::Sltu, rd, rs1, rs2 })
    }

    /// `rd = rs1 + imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Inst::AluImm { op: AluOp::Add, rd, rs1, imm })
    }

    /// `rd = rs1 & imm`.
    pub fn andi(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Inst::AluImm { op: AluOp::And, rd, rs1, imm })
    }

    /// `rd = rs1 << imm`.
    pub fn slli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Inst::AluImm { op: AluOp::Sll, rd, rs1, imm })
    }

    /// `rd = rs1 >> imm` (logical).
    pub fn srli(&mut self, rd: Reg, rs1: Reg, imm: i32) -> &mut Self {
        self.push(Inst::AluImm { op: AluOp::Srl, rd, rs1, imm })
    }

    /// `rd = rs1` (move).
    pub fn mv(&mut self, rd: Reg, rs: Reg) -> &mut Self {
        self.push(Inst::AluImm { op: AluOp::Add, rd, rs1: rs, imm: 0 })
    }

    /// `rd = imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.push(Inst::Li { rd, imm })
    }

    /// `rd = &name` (address of a linker symbol).
    pub fn li_sym(&mut self, rd: Reg, name: &str) -> &mut Self {
        let sym = self.symbol(name);
        self.push(Inst::LiSym { rd, sym })
    }

    // ---- memory -------------------------------------------------------

    /// `rd = mem[base+off]` of the given width (zero-extended).
    pub fn ld(&mut self, rd: Reg, base: Reg, off: i32, size: MemSize) -> &mut Self {
        self.push(Inst::Ld { rd, base, off, size })
    }

    /// `mem[base+off] = rs` of the given width.
    pub fn st(&mut self, rs: Reg, base: Reg, off: i32, size: MemSize) -> &mut Self {
        self.push(Inst::St { rs, base, off, size })
    }

    // ---- control flow --------------------------------------------------

    fn branch(&mut self, op: BranchOp, rs1: Reg, rs2: Reg, l: Label) -> &mut Self {
        self.push(Inst::Branch { op, rs1, rs2, target: Target::Label(l) })
    }

    /// Branch if equal.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, l: Label) -> &mut Self {
        self.branch(BranchOp::Eq, rs1, rs2, l)
    }

    /// Branch if not equal.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, l: Label) -> &mut Self {
        self.branch(BranchOp::Ne, rs1, rs2, l)
    }

    /// Branch if signed less-than.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, l: Label) -> &mut Self {
        self.branch(BranchOp::Lt, rs1, rs2, l)
    }

    /// Branch if signed greater-or-equal.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, l: Label) -> &mut Self {
        self.branch(BranchOp::Ge, rs1, rs2, l)
    }

    /// Branch if unsigned less-than.
    pub fn bltu(&mut self, rs1: Reg, rs2: Reg, l: Label) -> &mut Self {
        self.branch(BranchOp::Ltu, rs1, rs2, l)
    }

    /// Branch if unsigned greater-or-equal.
    pub fn bgeu(&mut self, rs1: Reg, rs2: Reg, l: Label) -> &mut Self {
        self.branch(BranchOp::Geu, rs1, rs2, l)
    }

    /// Unconditional jump to a local label.
    pub fn jmp(&mut self, l: Label) -> &mut Self {
        self.push(Inst::Jal { rd: abi::ZERO, target: Target::Label(l) })
    }

    /// Calls a named function (the linker resolves the symbol — possibly
    /// to a function on the *other* ISA, which is where migrations come
    /// from).
    pub fn call(&mut self, name: &str) -> &mut Self {
        let sym = self.symbol(name);
        self.push(Inst::Jal { rd: abi::RA, target: Target::Symbol(sym) })
    }

    /// Indirect call through a register (function pointers).
    pub fn call_reg(&mut self, rs1: Reg) -> &mut Self {
        self.push(Inst::Jalr { rd: abi::RA, rs1, off: 0 })
    }

    /// Return.
    pub fn ret(&mut self) -> &mut Self {
        self.push(Inst::Ret)
    }

    /// Service call.
    pub fn ecall(&mut self, service: u16) -> &mut Self {
        self.push(Inst::Ecall { service })
    }

    /// Halt (thread exit).
    pub fn halt(&mut self) -> &mut Self {
        self.push(Inst::Halt)
    }

    /// No-op.
    pub fn nop(&mut self) -> &mut Self {
        self.push(Inst::Nop)
    }

    // ---- stack helpers --------------------------------------------------

    /// Prologue: `sp -= bytes`, then store `ra` at `sp+0` and the given
    /// callee-saved registers at successive slots.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is too small for `ra` plus the saves.
    pub fn prologue(&mut self, bytes: i32, saves: &[Reg]) -> &mut Self {
        assert!(bytes as usize >= 8 * (1 + saves.len()), "frame too small");
        self.addi(abi::SP, abi::SP, -bytes);
        self.st(abi::RA, abi::SP, 0, MemSize::B8);
        for (i, &r) in saves.iter().enumerate() {
            self.st(r, abi::SP, 8 * (1 + i as i32), MemSize::B8);
        }
        self
    }

    /// Epilogue matching [`prologue`](Self::prologue), ending in `ret`.
    pub fn epilogue(&mut self, bytes: i32, saves: &[Reg]) -> &mut Self {
        self.ld(abi::RA, abi::SP, 0, MemSize::B8);
        for (i, &r) in saves.iter().enumerate() {
            self.ld(r, abi::SP, 8 * (1 + i as i32), MemSize::B8);
        }
        self.addi(abi::SP, abi::SP, bytes);
        self.ret()
    }

    /// Finishes the function.
    ///
    /// # Panics
    ///
    /// Panics if any label is still unbound or the body is empty.
    pub fn finish(self) -> Func {
        assert!(!self.func.insts.is_empty(), "empty function body");
        for (i, l) in self.func.labels.iter().enumerate() {
            assert!(l.is_some(), "label .L{i} never bound");
        }
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_binds_labels() {
        let mut f = FuncBuilder::new("f", TargetIsa::Host);
        let l = f.new_label();
        f.li(abi::A0, 1);
        f.bind(l);
        f.jmp(l);
        let func = f.finish();
        assert_eq!(func.labels[0], Some(1));
        assert_eq!(func.insts.len(), 2);
    }

    #[test]
    #[should_panic(expected = "label .L0 never bound")]
    fn unbound_label_rejected() {
        let mut f = FuncBuilder::new("f", TargetIsa::Host);
        let l = f.new_label();
        f.jmp(l);
        // intentionally no bind
        let mut g = f;
        g.nop();
        g.finish();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_rejected() {
        let mut f = FuncBuilder::new("f", TargetIsa::Host);
        let l = f.new_label();
        f.nop();
        f.bind(l);
        f.bind(l);
    }

    #[test]
    fn symbols_are_interned() {
        let mut f = FuncBuilder::new("f", TargetIsa::Host);
        f.call("g");
        f.call("g");
        f.call("h");
        f.ret();
        let func = f.finish();
        assert_eq!(func.symbols, vec!["g".to_string(), "h".to_string()]);
    }

    #[test]
    #[should_panic(expected = "empty function body")]
    fn empty_function_rejected() {
        FuncBuilder::new("f", TargetIsa::Host).finish();
    }

    #[test]
    fn prologue_epilogue_shape() {
        let mut f = FuncBuilder::new("f", TargetIsa::Nxp);
        f.prologue(32, &[abi::S0, abi::S1]);
        f.epilogue(32, &[abi::S0, abi::S1]);
        let func = f.finish();
        // addi, st ra, st s0, st s1 / ld ra, ld s0, ld s1, addi, ret
        assert_eq!(func.insts.len(), 9);
        assert_eq!(func.insts[8], Inst::Ret);
    }
}
