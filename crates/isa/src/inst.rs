//! The FIR instruction set, registers, and calling convention.

use std::fmt;

/// A FIR register, `r0`–`r31`.
///
/// `r0` reads as zero and ignores writes (RISC-V style); the shared
/// logical ABI is in [`abi`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

impl Reg {
    /// Constructs `r{n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn new(n: u8) -> Reg {
        assert!(n < 32, "register index out of range");
        Reg(n)
    }

    /// Register index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            0 => write!(f, "zero"),
            1 => write!(f, "ra"),
            2 => write!(f, "sp"),
            10..=15 => write!(f, "a{}", self.0 - 10),
            n => write!(f, "r{n}"),
        }
    }
}

/// The shared logical calling convention.
///
/// Both encodings use the same register *roles* so that the migration
/// descriptor can carry argument registers verbatim; the paper relies on
/// "all functions that can trigger a migration \[following\] the standard
/// function call convention" (§IV-B).
pub mod abi {
    use super::Reg;

    /// Hard-wired zero.
    pub const ZERO: Reg = Reg(0);
    /// Return address.
    pub const RA: Reg = Reg(1);
    /// Stack pointer (grows down, 16-byte aligned at calls).
    pub const SP: Reg = Reg(2);
    /// Argument/return registers `a0`–`a5`.
    pub const A0: Reg = Reg(10);
    /// Second argument register.
    pub const A1: Reg = Reg(11);
    /// Third argument register.
    pub const A2: Reg = Reg(12);
    /// Fourth argument register.
    pub const A3: Reg = Reg(13);
    /// Fifth argument register.
    pub const A4: Reg = Reg(14);
    /// Sixth argument register.
    pub const A5: Reg = Reg(15);
    /// Scratch registers not preserved across calls.
    pub const T0: Reg = Reg(5);
    /// Second scratch register.
    pub const T1: Reg = Reg(6);
    /// Third scratch register.
    pub const T2: Reg = Reg(7);
    /// Fourth scratch register.
    pub const T3: Reg = Reg(28);
    /// Fifth scratch register.
    pub const T4: Reg = Reg(29);
    /// Callee-saved registers.
    pub const S0: Reg = Reg(18);
    /// Second callee-saved register.
    pub const S1: Reg = Reg(19);
    /// Third callee-saved register.
    pub const S2: Reg = Reg(20);
    /// Fourth callee-saved register.
    pub const S3: Reg = Reg(21);
    /// Fifth callee-saved register.
    pub const S4: Reg = Reg(22);
    /// Sixth callee-saved register.
    pub const S5: Reg = Reg(23);
    /// Seventh callee-saved register.
    pub const S6: Reg = Reg(24);
    /// Eighth callee-saved register.
    pub const S7: Reg = Reg(25);
    /// Ninth callee-saved register.
    pub const S8: Reg = Reg(26);
    /// Tenth callee-saved register.
    pub const S9: Reg = Reg(27);

    /// Number of register-passed arguments (a0–a5).
    pub const NUM_ARG_REGS: usize = 6;
}

/// Memory access width.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MemSize {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl MemSize {
    /// Width in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            MemSize::B1 => 1,
            MemSize::B2 => 2,
            MemSize::B4 => 4,
            MemSize::B8 => 8,
        }
    }

    /// Encoding tag (two bits).
    pub const fn tag(self) -> u8 {
        match self {
            MemSize::B1 => 0,
            MemSize::B2 => 1,
            MemSize::B4 => 2,
            MemSize::B8 => 3,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub const fn from_tag(t: u8) -> Option<MemSize> {
        match t {
            0 => Some(MemSize::B1),
            1 => Some(MemSize::B2),
            2 => Some(MemSize::B4),
            3 => Some(MemSize::B8),
            _ => None,
        }
    }
}

/// Comparison for conditional branches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned less-than.
    Ltu,
    /// Unsigned greater-or-equal.
    Geu,
}

impl BranchOp {
    /// Evaluates the comparison.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            BranchOp::Eq => a == b,
            BranchOp::Ne => a != b,
            BranchOp::Lt => (a as i64) < (b as i64),
            BranchOp::Ge => (a as i64) >= (b as i64),
            BranchOp::Ltu => a < b,
            BranchOp::Geu => a >= b,
        }
    }

    /// Encoding tag.
    pub const fn tag(self) -> u8 {
        match self {
            BranchOp::Eq => 0,
            BranchOp::Ne => 1,
            BranchOp::Lt => 2,
            BranchOp::Ge => 3,
            BranchOp::Ltu => 4,
            BranchOp::Geu => 5,
        }
    }

    /// The logically negated comparison (`a op b` false ⇔ `a !op b`
    /// true) — used by structured-control-flow lowering.
    pub const fn negate(self) -> BranchOp {
        match self {
            BranchOp::Eq => BranchOp::Ne,
            BranchOp::Ne => BranchOp::Eq,
            BranchOp::Lt => BranchOp::Ge,
            BranchOp::Ge => BranchOp::Lt,
            BranchOp::Ltu => BranchOp::Geu,
            BranchOp::Geu => BranchOp::Ltu,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub const fn from_tag(t: u8) -> Option<BranchOp> {
        match t {
            0 => Some(BranchOp::Eq),
            1 => Some(BranchOp::Ne),
            2 => Some(BranchOp::Lt),
            3 => Some(BranchOp::Ge),
            4 => Some(BranchOp::Ltu),
            5 => Some(BranchOp::Geu),
            _ => None,
        }
    }
}

impl fmt::Display for BranchOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BranchOp::Eq => "beq",
            BranchOp::Ne => "bne",
            BranchOp::Lt => "blt",
            BranchOp::Ge => "bge",
            BranchOp::Ltu => "bltu",
            BranchOp::Geu => "bgeu",
        };
        write!(f, "{s}")
    }
}

/// Two-source ALU operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (x/0 = all-ones, RISC-V style).
    Divu,
    /// Unsigned remainder (x%0 = x).
    Remu,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical left shift (by low 6 bits).
    Sll,
    /// Logical right shift.
    Srl,
    /// Arithmetic right shift.
    Sra,
    /// Set-if-less-than, signed.
    Slt,
    /// Set-if-less-than, unsigned.
    Sltu,
}

impl AluOp {
    /// Evaluates the operation.
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Divu => a.checked_div(b).unwrap_or(u64::MAX),
            AluOp::Remu => a.checked_rem(b).unwrap_or(a),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a << (b & 63),
            AluOp::Srl => a >> (b & 63),
            AluOp::Sra => ((a as i64) >> (b & 63)) as u64,
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
        }
    }

    /// Encoding tag.
    pub const fn tag(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Sub => 1,
            AluOp::Mul => 2,
            AluOp::Divu => 3,
            AluOp::Remu => 4,
            AluOp::And => 5,
            AluOp::Or => 6,
            AluOp::Xor => 7,
            AluOp::Sll => 8,
            AluOp::Srl => 9,
            AluOp::Sra => 10,
            AluOp::Slt => 11,
            AluOp::Sltu => 12,
        }
    }

    /// Inverse of [`tag`](Self::tag).
    pub const fn from_tag(t: u8) -> Option<AluOp> {
        match t {
            0 => Some(AluOp::Add),
            1 => Some(AluOp::Sub),
            2 => Some(AluOp::Mul),
            3 => Some(AluOp::Divu),
            4 => Some(AluOp::Remu),
            5 => Some(AluOp::And),
            6 => Some(AluOp::Or),
            7 => Some(AluOp::Xor),
            8 => Some(AluOp::Sll),
            9 => Some(AluOp::Srl),
            10 => Some(AluOp::Sra),
            11 => Some(AluOp::Slt),
            12 => Some(AluOp::Sltu),
            _ => None,
        }
    }
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Divu => "divu",
            AluOp::Remu => "remu",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        };
        write!(f, "{s}")
    }
}

/// A control-flow target, at the various stages of its life.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Target {
    /// A label inside the same function (builder stage).
    Label(crate::func::Label),
    /// A named symbol, resolved by the linker (builder stage; encoders
    /// turn it into a relocation). The `u32` indexes the function's
    /// symbol table.
    Symbol(u32),
    /// Byte displacement relative to the *start of this instruction*
    /// (decoder stage — what the machine actually executes).
    Rel(i64),
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Label(l) => write!(f, ".L{}", l.0),
            Target::Symbol(s) => write!(f, "sym#{s}"),
            Target::Rel(d) => write!(f, "pc{d:+}"),
        }
    }
}

/// One FIR instruction.
///
/// Semantics are identical in both encodings; only the byte format
/// differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inst {
    /// `rd = op(rs1, rs2)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// `rd = op(rs1, imm)` (imm sign-extended to 64 bits).
    AluImm {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate.
        imm: i32,
    },
    /// `rd = imm` (full 64-bit constant).
    Li {
        /// Destination.
        rd: Reg,
        /// Constant.
        imm: i64,
    },
    /// `rd = &symbol` — materialise a linked address (function pointers,
    /// globals). Encoded as `Li` plus an `Abs64` relocation.
    LiSym {
        /// Destination.
        rd: Reg,
        /// Symbol-table index.
        sym: u32,
    },
    /// `rd = zero_extend(mem[rs1 + off])`.
    Ld {
        /// Destination.
        rd: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        off: i32,
        /// Width.
        size: MemSize,
    },
    /// `mem[base + off] = low_bytes(rs)`.
    St {
        /// Value source.
        rs: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        off: i32,
        /// Width.
        size: MemSize,
    },
    /// Conditional branch to `target` when `op(rs1, rs2)`.
    Branch {
        /// Comparison.
        op: BranchOp,
        /// First operand.
        rs1: Reg,
        /// Second operand.
        rs2: Reg,
        /// Destination.
        target: Target,
    },
    /// `rd = pc_of_next_inst; pc = target` (direct call / jump).
    Jal {
        /// Link register (`zero` discards, making this a plain jump).
        rd: Reg,
        /// Destination.
        target: Target,
    },
    /// `rd = pc_of_next_inst; pc = rs1 + off` (indirect call / jump —
    /// this is how function pointers cross the ISA boundary).
    Jalr {
        /// Link register.
        rd: Reg,
        /// Target base register.
        rs1: Reg,
        /// Byte offset.
        off: i32,
    },
    /// Return: `pc = ra`.
    Ret,
    /// Service call into the kernel (host) or the NxP runtime.
    Ecall {
        /// Service number; see the `flick` crate's service tables.
        service: u16,
    },
    /// Stops the core (end of thread); `a0` carries the exit value.
    Halt,
    /// No operation.
    Nop,
}

/// How an instruction affects straight-line decoding — the terminator
/// classification superblock formation and block chaining key off.
/// Shared across every registered ISA: the encodings differ, but the
/// decoded IR's control-flow shape does not, so one classification
/// serves x64, rv64 and arm64 blocks alike.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ControlKind {
    /// Falls through to the next instruction; never ends a block.
    Straight,
    /// Conditional branch: two static successors — the taken target at
    /// this displacement (relative to the instruction start) and the
    /// fall-through.
    CondBranch(i64),
    /// Unconditional direct transfer (`jal`/`jmp`/direct call) with one
    /// static successor at this displacement. Superblock formation may
    /// decode straight through it.
    DirectJump(i64),
    /// Register-indirect transfer (`jalr`, `ret`): the successor is
    /// dynamic, so the block ends and chaining cannot link it.
    Indirect,
    /// Traps or stops the core (`ecall`, `halt`): execution leaves the
    /// block lane entirely.
    Trap,
}

impl Inst {
    /// True for instructions that transfer control.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Ret | Inst::Halt
        )
    }

    /// True for loads and stores.
    pub fn is_mem(&self) -> bool {
        matches!(self, Inst::Ld { .. } | Inst::St { .. })
    }

    /// Terminator classification for block decoding. Unresolved targets
    /// (labels/symbols, which never reach execution) classify as
    /// [`ControlKind::Indirect`] so callers conservatively end the
    /// block rather than chase a displacement that does not exist yet.
    pub fn control_kind(&self) -> ControlKind {
        match self {
            Inst::Branch { target, .. } => match target {
                Target::Rel(d) => ControlKind::CondBranch(*d),
                _ => ControlKind::Indirect,
            },
            Inst::Jal { target, .. } => match target {
                Target::Rel(d) => ControlKind::DirectJump(*d),
                _ => ControlKind::Indirect,
            },
            Inst::Jalr { .. } | Inst::Ret => ControlKind::Indirect,
            Inst::Ecall { .. } | Inst::Halt => ControlKind::Trap,
            _ => ControlKind::Straight,
        }
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::Alu { op, rd, rs1, rs2 } => write!(f, "{op} {rd}, {rs1}, {rs2}"),
            Inst::AluImm { op, rd, rs1, imm } => write!(f, "{op}i {rd}, {rs1}, {imm}"),
            Inst::Li { rd, imm } => write!(f, "li {rd}, {imm}"),
            Inst::LiSym { rd, sym } => write!(f, "li {rd}, sym#{sym}"),
            Inst::Ld { rd, base, off, size } => {
                write!(f, "ld{} {rd}, {off}({base})", size.bytes())
            }
            Inst::St { rs, base, off, size } => {
                write!(f, "st{} {rs}, {off}({base})", size.bytes())
            }
            Inst::Branch { op, rs1, rs2, target } => write!(f, "{op} {rs1}, {rs2}, {target}"),
            Inst::Jal { rd, target } => write!(f, "jal {rd}, {target}"),
            Inst::Jalr { rd, rs1, off } => write!(f, "jalr {rd}, {off}({rs1})"),
            Inst::Ret => write!(f, "ret"),
            Inst::Ecall { service } => write!(f, "ecall {service:#x}"),
            Inst::Halt => write!(f, "halt"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.eval(3, u64::MAX), 2); // wrapping
        assert_eq!(AluOp::Sub.eval(1, 2), u64::MAX);
        assert_eq!(AluOp::Divu.eval(7, 0), u64::MAX); // RISC-V div-by-zero
        assert_eq!(AluOp::Remu.eval(7, 0), 7);
        assert_eq!(AluOp::Sra.eval(u64::MAX, 1), u64::MAX); // sign extend
        assert_eq!(AluOp::Srl.eval(u64::MAX, 63), 1);
        assert_eq!(AluOp::Slt.eval(u64::MAX, 0), 1); // -1 < 0 signed
        assert_eq!(AluOp::Sltu.eval(u64::MAX, 0), 0);
        assert_eq!(AluOp::Sll.eval(1, 64), 1); // shift masked to 6 bits
    }

    #[test]
    fn branch_semantics() {
        assert!(BranchOp::Eq.eval(5, 5));
        assert!(BranchOp::Lt.eval(u64::MAX, 0)); // signed
        assert!(!BranchOp::Ltu.eval(u64::MAX, 0));
        assert!(BranchOp::Geu.eval(u64::MAX, 0));
    }

    #[test]
    fn negate_is_logical_complement() {
        for op in [
            BranchOp::Eq,
            BranchOp::Ne,
            BranchOp::Lt,
            BranchOp::Ge,
            BranchOp::Ltu,
            BranchOp::Geu,
        ] {
            for (a, b) in [(0u64, 0u64), (1, 2), (u64::MAX, 0)] {
                assert_eq!(op.eval(a, b), !op.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn tags_round_trip() {
        for t in 0..13 {
            assert_eq!(AluOp::from_tag(t).unwrap().tag(), t);
        }
        assert_eq!(AluOp::from_tag(13), None);
        for t in 0..6 {
            assert_eq!(BranchOp::from_tag(t).unwrap().tag(), t);
        }
        for t in 0..4 {
            assert_eq!(MemSize::from_tag(t).unwrap().tag(), t);
        }
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn bad_register_panics() {
        Reg::new(32);
    }

    #[test]
    fn register_display_uses_abi_names() {
        assert_eq!(abi::ZERO.to_string(), "zero");
        assert_eq!(abi::RA.to_string(), "ra");
        assert_eq!(abi::SP.to_string(), "sp");
        assert_eq!(abi::A0.to_string(), "a0");
        assert_eq!(Reg(20).to_string(), "r20");
    }

    #[test]
    fn classification() {
        assert!(Inst::Ret.is_control_flow());
        assert!(!Inst::Nop.is_control_flow());
        assert!(Inst::Ld {
            rd: abi::A0,
            base: abi::A1,
            off: 0,
            size: MemSize::B8
        }
        .is_mem());
    }
}
