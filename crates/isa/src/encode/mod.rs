//! Per-ISA encoders and decoders, plus relocation records.
//!
//! The multi-ISA linker resolves symbols "using each ISA's relocation
//! methods" selected by section name (§IV-C2); these are those methods.

pub mod arm64;
pub mod rv64;
pub mod x64;

use std::error::Error;
use std::fmt;

/// How a relocation patches the encoded bytes once the symbol address
/// `S` and the instruction's virtual address are known.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RelocKind {
    /// 32-bit signed displacement at `field_at`, computed as
    /// `S - va_of(inst_start)` (branch/call targets are relative to the
    /// instruction start in both encodings).
    Rel32,
    /// 64-bit absolute little-endian address at `field_at` (x64 `li`).
    Abs64,
    /// Absolute address split across two 32-bit fields: low half at
    /// `field_at`, high half at `field_at + 8` (rv64 `li` pair).
    Abs64Pair,
}

/// One relocation emitted by an encoder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reloc {
    /// Byte offset of the patch field within the encoded function.
    pub field_at: u32,
    /// Byte offset of the start of the instruction containing the field
    /// (the reference point for [`RelocKind::Rel32`]).
    pub inst_start: u32,
    /// Patch method.
    pub kind: RelocKind,
    /// Name of the symbol whose address is needed.
    pub symbol: String,
}

/// An encoded function body.
#[derive(Clone, Debug, Default)]
pub struct Encoded {
    /// Machine bytes (entry point at offset 0).
    pub bytes: Vec<u8>,
    /// Relocations to apply at link time.
    pub relocs: Vec<Reloc>,
    /// Byte offset of each source instruction (diagnostics/tests).
    pub offsets: Vec<u32>,
}

/// Errors while encoding a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EncodeError {
    /// A branch target is farther than a 32-bit displacement reaches.
    BranchOutOfRange {
        /// Index of the offending instruction.
        inst: usize,
    },
    /// An immediate does not fit the field for this encoding.
    ImmOutOfRange {
        /// Index of the offending instruction.
        inst: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::BranchOutOfRange { inst } => {
                write!(f, "branch target out of range at instruction {inst}")
            }
            EncodeError::ImmOutOfRange { inst } => {
                write!(f, "immediate out of range at instruction {inst}")
            }
        }
    }
}

impl Error for EncodeError {}

/// Errors while decoding machine bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not belong to this ISA and no other
    /// registered ISA claims it either (plain garbage, e.g. a jump into
    /// data).
    UnknownOpcode(u8),
    /// The opcode byte belongs to a *different* registered ISA — the
    /// typed form of the wrong-ISA-fetch migration trigger (§IV-B2).
    /// Produced by [`IsaId::decode`](crate::IsaId::decode), which
    /// classifies unknown opcodes against the registry.
    ForeignEncoding {
        /// The ISA whose opcode space the byte belongs to.
        isa: crate::IsaId,
    },
    /// Fewer bytes than the instruction needs.
    Truncated,
    /// A constant-high word without its constant-low partner (a jump
    /// into the middle of an rv64 or arm64 `li` group).
    StrayConstHigh,
    /// A register field holds an out-of-range index — another reliable
    /// way wrong-ISA bytes fail to decode.
    BadRegister(u8),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            DecodeError::ForeignEncoding { isa } => {
                write!(f, "foreign encoding (opcode belongs to {isa})")
            }
            DecodeError::Truncated => write!(f, "truncated instruction"),
            DecodeError::StrayConstHigh => write!(f, "stray li-high word"),
            DecodeError::BadRegister(r) => write!(f, "bad register index {r}"),
        }
    }
}

impl Error for DecodeError {}

pub(crate) fn check_reg(b: u8) -> Result<crate::Reg, DecodeError> {
    if b < 32 {
        Ok(crate::Reg(b))
    } else {
        Err(DecodeError::BadRegister(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{abi, Inst, MemSize};
    use crate::{FuncBuilder, Isa, TargetIsa};

    fn sample_func() -> crate::Func {
        let mut f = FuncBuilder::new("sample", TargetIsa::Host);
        let top = f.new_label();
        let out = f.new_label();
        f.li(abi::T0, 0x1234_5678_9ABC_DEF0u64 as i64);
        f.bind(top);
        f.beq(abi::A0, abi::ZERO, out);
        f.addi(abi::T0, abi::T0, -1);
        f.ld(abi::A1, abi::A0, 8, MemSize::B8);
        f.st(abi::A1, abi::SP, -16, MemSize::B4);
        f.jmp(top);
        f.bind(out);
        f.call("helper");
        f.li_sym(abi::A2, "global_table");
        f.ecall(7);
        f.nop();
        f.ret();
        f.finish()
    }

    fn round_trip(isa: Isa) {
        let func = sample_func();
        let enc = isa.encode(&func).unwrap();
        // Decode every instruction back and compare shapes.
        let mut off = 0usize;
        let mut decoded = Vec::new();
        while off < enc.bytes.len() {
            let (inst, len) = isa.decode(&enc.bytes[off..]).unwrap();
            decoded.push((off, inst, len));
            off += len;
        }
        assert_eq!(off, enc.bytes.len());
        assert_eq!(decoded.len(), func.insts.len());
        // Non-control instructions decode exactly; branches/calls decode
        // to resolved-relative form.
        assert_eq!(
            decoded[0].1,
            Inst::Li {
                rd: abi::T0,
                imm: 0x1234_5678_9ABC_DEF0u64 as i64
            }
        );
        assert!(matches!(decoded[2].1, Inst::AluImm { imm: -1, .. }));
        assert!(matches!(decoded[3].1, Inst::Ld { off: 8, .. }));
        assert!(matches!(decoded[4].1, Inst::St { off: -16, .. }));
        assert_eq!(decoded[8].1, Inst::Ecall { service: 7 });
        assert_eq!(decoded[9].1, Inst::Nop);
        assert_eq!(decoded[10].1, Inst::Ret);
        // Two symbol relocations: the call (Rel32) and the li_sym (Abs64*).
        assert_eq!(enc.relocs.len(), 2);
        assert_eq!(enc.relocs[0].symbol, "helper");
        assert_eq!(enc.relocs[0].kind, RelocKind::Rel32);
        assert_eq!(enc.relocs[1].symbol, "global_table");
    }

    #[test]
    fn x64_round_trip() {
        round_trip(Isa::X64);
    }

    #[test]
    fn rv64_round_trip() {
        round_trip(Isa::Rv64);
    }

    #[test]
    fn branch_displacement_points_at_label() {
        for isa in [Isa::X64, Isa::Rv64] {
            let func = sample_func();
            let enc = isa.encode(&func).unwrap();
            // Instruction 1 (beq) targets label `out`, bound at source
            // instruction 6; instruction 5 (jmp) targets `top` at 1.
            let (inst, _) = isa.decode(&enc.bytes[enc.offsets[1] as usize..]).unwrap();
            match inst {
                Inst::Branch { target: crate::Target::Rel(d), .. } => {
                    assert_eq!(
                        (enc.offsets[1] as i64 + d) as u32,
                        enc.offsets[6],
                        "{isa}: branch lands on label"
                    );
                }
                other => panic!("expected branch, got {other}"),
            }
            let (inst, _) = isa.decode(&enc.bytes[enc.offsets[5] as usize..]).unwrap();
            match inst {
                Inst::Jal { target: crate::Target::Rel(d), .. } => {
                    assert_eq!((enc.offsets[5] as i64 + d) as u32, enc.offsets[1]);
                }
                other => panic!("expected jal, got {other}"),
            }
        }
    }

    #[test]
    fn isas_reject_each_other() {
        let func = sample_func();
        for victim in [Isa::X64, Isa::Rv64, Isa::Arm64] {
            for foreign in [Isa::X64, Isa::Rv64, Isa::Arm64] {
                if victim == foreign {
                    continue;
                }
                let enc = foreign.encode(&func).unwrap();
                match victim.decode(&enc.bytes) {
                    Err(DecodeError::ForeignEncoding { isa }) => assert_eq!(
                        isa, foreign,
                        "{victim} decoding {foreign} bytes misattributed"
                    ),
                    // Wrong-ISA bytes may also die on a register field
                    // before the opcode gives them away.
                    Err(DecodeError::BadRegister(_)) => {}
                    other => panic!("{victim} decoding {foreign} bytes: {other:?}"),
                }
            }
        }
        // The common pairs classify precisely.
        let x = Isa::X64.encode(&func).unwrap();
        let rv = Isa::Rv64.encode(&func).unwrap();
        assert_eq!(
            Isa::X64.decode(&rv.bytes),
            Err(DecodeError::ForeignEncoding { isa: Isa::Rv64 })
        );
        assert!(matches!(
            Isa::Rv64.decode(&x.bytes),
            Err(DecodeError::ForeignEncoding { isa: Isa::X64 } | DecodeError::BadRegister(_))
        ));
    }

    #[test]
    fn rv64_is_fixed_width_multiple() {
        let func = sample_func();
        let enc = Isa::Rv64.encode(&func).unwrap();
        assert_eq!(enc.bytes.len() % 8, 0);
        for &o in &enc.offsets {
            assert_eq!(o % 8, 0, "every rv64 instruction is 8-aligned");
        }
    }

    #[test]
    fn x64_is_variable_width() {
        let func = sample_func();
        let enc = Isa::X64.encode(&func).unwrap();
        let mut lengths = std::collections::HashSet::new();
        let mut off = 0;
        while off < enc.bytes.len() {
            let (_, len) = Isa::X64.decode(&enc.bytes[off..]).unwrap();
            lengths.insert(len);
            off += len;
        }
        assert!(lengths.len() > 2, "x64 encoding must vary in length");
    }

    #[test]
    fn truncated_input_rejected() {
        let func = sample_func();
        for isa in [Isa::X64, Isa::Rv64] {
            let enc = isa.encode(&func).unwrap();
            assert_eq!(isa.decode(&enc.bytes[..1]), Err(DecodeError::Truncated));
        }
        assert_eq!(Isa::X64.decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn empty_rv_word_is_illegal() {
        assert!(matches!(
            Isa::Rv64.decode(&[0u8; 8]),
            Err(DecodeError::UnknownOpcode(0))
        ));
        assert!(matches!(
            Isa::X64.decode(&[0u8; 8]),
            Err(DecodeError::UnknownOpcode(0))
        ));
    }
}
