//! The variable-length host encoding ("x64-like").
//!
//! Instructions are 1–10 bytes: an opcode byte followed by operand
//! bytes whose count the opcode determines — the defining property of
//! x86-style encodings, and the reason a RISC-V-style core that jumps
//! into these bytes can fault on *alignment* before it ever decodes
//! (§IV-B2). Opcodes live in `0x80..=0xBD`, disjoint from the rv64
//! space.

use super::{check_reg, DecodeError, EncodeError, Encoded, Reloc, RelocKind};
use crate::func::Func;
use crate::inst::{AluOp, BranchOp, Inst, MemSize, Target};

const OP_ALU: u8 = 0x80; // +alu_tag (13)
const OP_ALUI: u8 = 0x90; // +alu_tag (13)
const OP_LI: u8 = 0xA0;
const OP_LD: u8 = 0xA4; // +size_tag (4)
const OP_ST: u8 = 0xA8; // +size_tag (4)
const OP_BR: u8 = 0xB0; // +branch_tag (6)
const OP_JAL: u8 = 0xB8;
const OP_JALR: u8 = 0xB9;
const OP_RET: u8 = 0xBA;
const OP_ECALL: u8 = 0xBB;
const OP_HALT: u8 = 0xBC;
const OP_NOP: u8 = 0xBD;

/// Encoded length of one instruction.
fn inst_len(inst: &Inst) -> u32 {
    match inst {
        Inst::Alu { .. } => 4,
        Inst::AluImm { .. } => 7,
        Inst::Li { .. } | Inst::LiSym { .. } => 10,
        Inst::Ld { .. } | Inst::St { .. } => 7,
        Inst::Branch { .. } => 7,
        Inst::Jal { .. } => 6,
        Inst::Jalr { .. } => 7,
        Inst::Ret | Inst::Halt | Inst::Nop => 1,
        Inst::Ecall { .. } => 3,
    }
}

/// Encodes `func` into host bytes.
///
/// # Errors
///
/// Returns [`EncodeError::BranchOutOfRange`] if a label displacement
/// overflows 32 bits.
pub fn encode(func: &Func) -> Result<Encoded, EncodeError> {
    // Pass 1: layout.
    let mut offsets = Vec::with_capacity(func.insts.len());
    let mut off = 0u32;
    for inst in &func.insts {
        offsets.push(off);
        off += inst_len(inst);
    }
    let label_off = |l: crate::func::Label| offsets[func.labels[l.0 as usize].unwrap()];

    // Pass 2: emit.
    let mut out = Encoded {
        bytes: Vec::with_capacity(off as usize),
        relocs: Vec::new(),
        offsets: offsets.clone(),
    };
    for (i, inst) in func.insts.iter().enumerate() {
        let start = offsets[i];
        let b = &mut out.bytes;
        match *inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                b.extend_from_slice(&[OP_ALU + op.tag(), rd.0, rs1.0, rs2.0]);
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                b.extend_from_slice(&[OP_ALUI + op.tag(), rd.0, rs1.0]);
                b.extend_from_slice(&imm.to_le_bytes());
            }
            Inst::Li { rd, imm } => {
                b.extend_from_slice(&[OP_LI, rd.0]);
                b.extend_from_slice(&imm.to_le_bytes());
            }
            Inst::LiSym { rd, sym } => {
                out.relocs.push(Reloc {
                    field_at: start + 2,
                    inst_start: start,
                    kind: RelocKind::Abs64,
                    symbol: func.symbol_name(sym).to_string(),
                });
                b.extend_from_slice(&[OP_LI, rd.0]);
                b.extend_from_slice(&0u64.to_le_bytes());
            }
            Inst::Ld { rd, base, off, size } => {
                b.extend_from_slice(&[OP_LD + size.tag(), rd.0, base.0]);
                b.extend_from_slice(&off.to_le_bytes());
            }
            Inst::St { rs, base, off, size } => {
                b.extend_from_slice(&[OP_ST + size.tag(), rs.0, base.0]);
                b.extend_from_slice(&off.to_le_bytes());
            }
            Inst::Branch { op, rs1, rs2, target } => {
                let rel: i64 = match target {
                    Target::Label(l) => label_off(l) as i64 - start as i64,
                    Target::Rel(d) => d,
                    Target::Symbol(_) => unreachable!("branches use labels"),
                };
                let rel32 =
                    i32::try_from(rel).map_err(|_| EncodeError::BranchOutOfRange { inst: i })?;
                b.extend_from_slice(&[OP_BR + op.tag(), rs1.0, rs2.0]);
                b.extend_from_slice(&rel32.to_le_bytes());
            }
            Inst::Jal { rd, target } => {
                let rel32: i32 = match target {
                    Target::Label(l) => {
                        i32::try_from(label_off(l) as i64 - start as i64)
                            .map_err(|_| EncodeError::BranchOutOfRange { inst: i })?
                    }
                    Target::Rel(d) => {
                        i32::try_from(d).map_err(|_| EncodeError::BranchOutOfRange { inst: i })?
                    }
                    Target::Symbol(s) => {
                        out.relocs.push(Reloc {
                            field_at: start + 2,
                            inst_start: start,
                            kind: RelocKind::Rel32,
                            symbol: func.symbol_name(s).to_string(),
                        });
                        0
                    }
                };
                b.extend_from_slice(&[OP_JAL, rd.0]);
                b.extend_from_slice(&rel32.to_le_bytes());
            }
            Inst::Jalr { rd, rs1, off } => {
                b.extend_from_slice(&[OP_JALR, rd.0, rs1.0]);
                b.extend_from_slice(&off.to_le_bytes());
            }
            Inst::Ret => b.push(OP_RET),
            Inst::Ecall { service } => {
                b.push(OP_ECALL);
                b.extend_from_slice(&service.to_le_bytes());
            }
            Inst::Halt => b.push(OP_HALT),
            Inst::Nop => b.push(OP_NOP),
        }
        debug_assert_eq!(out.bytes.len() as u32, start + inst_len(inst));
    }
    Ok(out)
}

/// True when `op` is a valid first byte of an x64 instruction (the
/// registry's foreign-encoding classifier).
pub fn owns_opcode(op: u8) -> bool {
    (OP_ALU..OP_ALU + 13).contains(&op)
        || (OP_ALUI..OP_ALUI + 13).contains(&op)
        || op == OP_LI
        || (OP_LD..OP_LD + 4).contains(&op)
        || (OP_ST..OP_ST + 4).contains(&op)
        || (OP_BR..OP_BR + 6).contains(&op)
        || (OP_JAL..=OP_NOP).contains(&op)
}

fn need(bytes: &[u8], n: usize) -> Result<(), DecodeError> {
    if bytes.len() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn i32_at(bytes: &[u8], at: usize) -> i32 {
    i32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

/// Decodes one host instruction, returning it and its byte length.
///
/// # Errors
///
/// [`DecodeError::UnknownOpcode`] for bytes outside the host opcode
/// space (e.g. rv64 code), [`DecodeError::Truncated`] on short input.
pub fn decode(bytes: &[u8]) -> Result<(Inst, usize), DecodeError> {
    need(bytes, 1)?;
    let op = bytes[0];
    match op {
        _ if (OP_ALU..OP_ALU + 13).contains(&op) => {
            need(bytes, 4)?;
            Ok((
                Inst::Alu {
                    op: AluOp::from_tag(op - OP_ALU).unwrap(),
                    rd: check_reg(bytes[1])?,
                    rs1: check_reg(bytes[2])?,
                    rs2: check_reg(bytes[3])?,
                },
                4,
            ))
        }
        _ if (OP_ALUI..OP_ALUI + 13).contains(&op) => {
            need(bytes, 7)?;
            Ok((
                Inst::AluImm {
                    op: AluOp::from_tag(op - OP_ALUI).unwrap(),
                    rd: check_reg(bytes[1])?,
                    rs1: check_reg(bytes[2])?,
                    imm: i32_at(bytes, 3),
                },
                7,
            ))
        }
        OP_LI => {
            need(bytes, 10)?;
            Ok((
                Inst::Li {
                    rd: check_reg(bytes[1])?,
                    imm: i64::from_le_bytes(bytes[2..10].try_into().unwrap()),
                },
                10,
            ))
        }
        _ if (OP_LD..OP_LD + 4).contains(&op) => {
            need(bytes, 7)?;
            Ok((
                Inst::Ld {
                    rd: check_reg(bytes[1])?,
                    base: check_reg(bytes[2])?,
                    off: i32_at(bytes, 3),
                    size: MemSize::from_tag(op - OP_LD).unwrap(),
                },
                7,
            ))
        }
        _ if (OP_ST..OP_ST + 4).contains(&op) => {
            need(bytes, 7)?;
            Ok((
                Inst::St {
                    rs: check_reg(bytes[1])?,
                    base: check_reg(bytes[2])?,
                    off: i32_at(bytes, 3),
                    size: MemSize::from_tag(op - OP_ST).unwrap(),
                },
                7,
            ))
        }
        _ if (OP_BR..OP_BR + 6).contains(&op) => {
            need(bytes, 7)?;
            Ok((
                Inst::Branch {
                    op: BranchOp::from_tag(op - OP_BR).unwrap(),
                    rs1: check_reg(bytes[1])?,
                    rs2: check_reg(bytes[2])?,
                    target: Target::Rel(i32_at(bytes, 3) as i64),
                },
                7,
            ))
        }
        OP_JAL => {
            need(bytes, 6)?;
            Ok((
                Inst::Jal {
                    rd: check_reg(bytes[1])?,
                    target: Target::Rel(i32_at(bytes, 2) as i64),
                },
                6,
            ))
        }
        OP_JALR => {
            need(bytes, 7)?;
            Ok((
                Inst::Jalr {
                    rd: check_reg(bytes[1])?,
                    rs1: check_reg(bytes[2])?,
                    off: i32_at(bytes, 3),
                },
                7,
            ))
        }
        OP_RET => Ok((Inst::Ret, 1)),
        OP_ECALL => {
            need(bytes, 3)?;
            Ok((
                Inst::Ecall {
                    service: u16::from_le_bytes(bytes[1..3].try_into().unwrap()),
                },
                3,
            ))
        }
        OP_HALT => Ok((Inst::Halt, 1)),
        OP_NOP => Ok((Inst::Nop, 1)),
        other => Err(DecodeError::UnknownOpcode(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::abi;
    use crate::{FuncBuilder, TargetIsa};

    #[test]
    fn ret_is_one_byte() {
        let mut f = FuncBuilder::new("f", TargetIsa::Host);
        f.ret();
        let enc = encode(&f.finish()).unwrap();
        assert_eq!(enc.bytes, vec![OP_RET]);
    }

    #[test]
    fn jal_symbol_emits_rel32_reloc() {
        let mut f = FuncBuilder::new("f", TargetIsa::Host);
        f.call("target_fn");
        f.ret();
        let enc = encode(&f.finish()).unwrap();
        assert_eq!(enc.relocs.len(), 1);
        let r = &enc.relocs[0];
        assert_eq!(r.kind, RelocKind::Rel32);
        assert_eq!(r.inst_start, 0);
        assert_eq!(r.field_at, 2);
        assert_eq!(r.symbol, "target_fn");
    }

    #[test]
    fn function_entry_lengths_are_odd_sizes() {
        // Variable length means consecutive host functions start at
        // arbitrary (unaligned) offsets — the property that makes the
        // NxP's misaligned-fetch trigger fire.
        let mut f = FuncBuilder::new("f", TargetIsa::Host);
        f.ecall(1); // 3 bytes
        f.ret(); // 1 byte
        let enc = encode(&f.finish()).unwrap();
        assert_eq!(enc.bytes.len(), 4);
        assert_eq!(enc.bytes.len() % 8, 4);
    }

    #[test]
    fn decode_rejects_register_out_of_range() {
        let bytes = [OP_ALU, 40, 0, 0];
        assert_eq!(decode(&bytes), Err(DecodeError::BadRegister(40)));
    }

    #[test]
    fn negative_immediates_round_trip() {
        let mut f = FuncBuilder::new("f", TargetIsa::Host);
        f.addi(abi::SP, abi::SP, -4096);
        f.ret();
        let enc = encode(&f.finish()).unwrap();
        let (inst, _) = decode(&enc.bytes).unwrap();
        assert_eq!(
            inst,
            Inst::AluImm {
                op: AluOp::Add,
                rd: abi::SP,
                rs1: abi::SP,
                imm: -4096
            }
        );
    }
}
