//! The fixed-width NxP encoding ("rv64-like").
//!
//! Every instruction occupies one 8-byte word, 8-byte aligned:
//! `[opcode, rd, rs1, rs2, imm32le]`. A full 64-bit constant takes a
//! *pair* of words (`li.lo` + `li.hi`), mirroring how real RISC-V
//! synthesises wide constants with instruction sequences. Opcodes live
//! in `0x01..=0x3F`, disjoint from the x64 space, so decoding host
//! bytes fails immediately.

use super::{check_reg, DecodeError, EncodeError, Encoded, Reloc, RelocKind};
use crate::func::Func;
use crate::inst::{AluOp, BranchOp, Inst, MemSize, Target};

const W: u32 = 8;

const OP_ALU: u8 = 0x01; // +alu_tag (13) -> 0x01..=0x0D
const OP_ALUI: u8 = 0x10; // +alu_tag -> 0x10..=0x1C
const OP_LI_LO: u8 = 0x20;
const OP_LI_HI: u8 = 0x21;
const OP_LD: u8 = 0x22; // +size_tag -> 0x22..=0x25
const OP_ST: u8 = 0x26; // +size_tag -> 0x26..=0x29
const OP_BR: u8 = 0x2A; // +branch_tag -> 0x2A..=0x2F
const OP_JAL: u8 = 0x30;
const OP_JALR: u8 = 0x31;
const OP_RET: u8 = 0x32;
const OP_ECALL: u8 = 0x33;
const OP_HALT: u8 = 0x34;
const OP_NOP: u8 = 0x35;

fn inst_len(inst: &Inst) -> u32 {
    match inst {
        Inst::Li { .. } | Inst::LiSym { .. } => 2 * W,
        _ => W,
    }
}

fn word(op: u8, b1: u8, b2: u8, b3: u8, imm: i32) -> [u8; 8] {
    let i = imm.to_le_bytes();
    [op, b1, b2, b3, i[0], i[1], i[2], i[3]]
}

/// Encodes `func` into NxP bytes.
///
/// # Errors
///
/// Returns [`EncodeError::BranchOutOfRange`] if a label displacement
/// overflows 32 bits.
pub fn encode(func: &Func) -> Result<Encoded, EncodeError> {
    let mut offsets = Vec::with_capacity(func.insts.len());
    let mut off = 0u32;
    for inst in &func.insts {
        offsets.push(off);
        off += inst_len(inst);
    }
    let label_off = |l: crate::func::Label| offsets[func.labels[l.0 as usize].unwrap()];

    let mut out = Encoded {
        bytes: Vec::with_capacity(off as usize),
        relocs: Vec::new(),
        offsets: offsets.clone(),
    };
    for (i, inst) in func.insts.iter().enumerate() {
        let start = offsets[i];
        match *inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                out.bytes
                    .extend_from_slice(&word(OP_ALU + op.tag(), rd.0, rs1.0, rs2.0, 0));
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                out.bytes
                    .extend_from_slice(&word(OP_ALUI + op.tag(), rd.0, rs1.0, 0, imm));
            }
            Inst::Li { rd, imm } => {
                let lo = imm as u32 as i32;
                let hi = ((imm as u64) >> 32) as u32 as i32;
                out.bytes.extend_from_slice(&word(OP_LI_LO, rd.0, 0, 0, lo));
                out.bytes.extend_from_slice(&word(OP_LI_HI, rd.0, 0, 0, hi));
            }
            Inst::LiSym { rd, sym } => {
                out.relocs.push(Reloc {
                    field_at: start + 4,
                    inst_start: start,
                    kind: RelocKind::Abs64Pair,
                    symbol: func.symbol_name(sym).to_string(),
                });
                out.bytes.extend_from_slice(&word(OP_LI_LO, rd.0, 0, 0, 0));
                out.bytes.extend_from_slice(&word(OP_LI_HI, rd.0, 0, 0, 0));
            }
            Inst::Ld { rd, base, off, size } => {
                out.bytes
                    .extend_from_slice(&word(OP_LD + size.tag(), rd.0, base.0, 0, off));
            }
            Inst::St { rs, base, off, size } => {
                out.bytes
                    .extend_from_slice(&word(OP_ST + size.tag(), rs.0, base.0, 0, off));
            }
            Inst::Branch { op, rs1, rs2, target } => {
                let rel: i64 = match target {
                    Target::Label(l) => label_off(l) as i64 - start as i64,
                    Target::Rel(d) => d,
                    Target::Symbol(_) => unreachable!("branches use labels"),
                };
                let rel32 =
                    i32::try_from(rel).map_err(|_| EncodeError::BranchOutOfRange { inst: i })?;
                out.bytes
                    .extend_from_slice(&word(OP_BR + op.tag(), rs1.0, rs2.0, 0, rel32));
            }
            Inst::Jal { rd, target } => {
                let rel32: i32 = match target {
                    Target::Label(l) => {
                        i32::try_from(label_off(l) as i64 - start as i64)
                            .map_err(|_| EncodeError::BranchOutOfRange { inst: i })?
                    }
                    Target::Rel(d) => {
                        i32::try_from(d).map_err(|_| EncodeError::BranchOutOfRange { inst: i })?
                    }
                    Target::Symbol(s) => {
                        out.relocs.push(Reloc {
                            field_at: start + 4,
                            inst_start: start,
                            kind: RelocKind::Rel32,
                            symbol: func.symbol_name(s).to_string(),
                        });
                        0
                    }
                };
                out.bytes.extend_from_slice(&word(OP_JAL, rd.0, 0, 0, rel32));
            }
            Inst::Jalr { rd, rs1, off } => {
                out.bytes.extend_from_slice(&word(OP_JALR, rd.0, rs1.0, 0, off));
            }
            Inst::Ret => out.bytes.extend_from_slice(&word(OP_RET, 0, 0, 0, 0)),
            Inst::Ecall { service } => {
                out.bytes
                    .extend_from_slice(&word(OP_ECALL, 0, 0, 0, service as i32));
            }
            Inst::Halt => out.bytes.extend_from_slice(&word(OP_HALT, 0, 0, 0, 0)),
            Inst::Nop => out.bytes.extend_from_slice(&word(OP_NOP, 0, 0, 0, 0)),
        }
        debug_assert_eq!(out.bytes.len() as u32, start + inst_len(inst));
    }
    Ok(out)
}

/// True when `op` is a valid first byte of an rv64 instruction (the
/// registry's foreign-encoding classifier).
pub fn owns_opcode(op: u8) -> bool {
    (OP_ALU..OP_ALU + 13).contains(&op)
        || (OP_ALUI..OP_ALUI + 13).contains(&op)
        || (OP_LI_LO..=OP_NOP).contains(&op)
}

/// Decodes one NxP instruction (8 or 16 bytes).
///
/// # Errors
///
/// [`DecodeError::UnknownOpcode`] for non-NxP opcodes (e.g. host code),
/// [`DecodeError::StrayConstHigh`] for a jump into the middle of a `li`
/// pair, [`DecodeError::Truncated`] on short input.
pub fn decode(bytes: &[u8]) -> Result<(Inst, usize), DecodeError> {
    if bytes.len() < W as usize {
        return Err(DecodeError::Truncated);
    }
    let op = bytes[0];
    let imm = i32::from_le_bytes(bytes[4..8].try_into().unwrap());
    let inst = match op {
        _ if (OP_ALU..OP_ALU + 13).contains(&op) => Inst::Alu {
            op: AluOp::from_tag(op - OP_ALU).unwrap(),
            rd: check_reg(bytes[1])?,
            rs1: check_reg(bytes[2])?,
            rs2: check_reg(bytes[3])?,
        },
        _ if (OP_ALUI..OP_ALUI + 13).contains(&op) => Inst::AluImm {
            op: AluOp::from_tag(op - OP_ALUI).unwrap(),
            rd: check_reg(bytes[1])?,
            rs1: check_reg(bytes[2])?,
            imm,
        },
        OP_LI_LO => {
            if bytes.len() < 2 * W as usize {
                return Err(DecodeError::Truncated);
            }
            if bytes[8] != OP_LI_HI {
                return Err(DecodeError::StrayConstHigh);
            }
            let hi = i32::from_le_bytes(bytes[12..16].try_into().unwrap());
            let val = (imm as u32 as u64) | ((hi as u32 as u64) << 32);
            return Ok((
                Inst::Li {
                    rd: check_reg(bytes[1])?,
                    imm: val as i64,
                },
                2 * W as usize,
            ));
        }
        OP_LI_HI => return Err(DecodeError::StrayConstHigh),
        _ if (OP_LD..OP_LD + 4).contains(&op) => Inst::Ld {
            rd: check_reg(bytes[1])?,
            base: check_reg(bytes[2])?,
            off: imm,
            size: MemSize::from_tag(op - OP_LD).unwrap(),
        },
        _ if (OP_ST..OP_ST + 4).contains(&op) => Inst::St {
            rs: check_reg(bytes[1])?,
            base: check_reg(bytes[2])?,
            off: imm,
            size: MemSize::from_tag(op - OP_ST).unwrap(),
        },
        _ if (OP_BR..OP_BR + 6).contains(&op) => Inst::Branch {
            op: BranchOp::from_tag(op - OP_BR).unwrap(),
            rs1: check_reg(bytes[1])?,
            rs2: check_reg(bytes[2])?,
            target: Target::Rel(imm as i64),
        },
        OP_JAL => Inst::Jal {
            rd: check_reg(bytes[1])?,
            target: Target::Rel(imm as i64),
        },
        OP_JALR => Inst::Jalr {
            rd: check_reg(bytes[1])?,
            rs1: check_reg(bytes[2])?,
            off: imm,
        },
        OP_RET => Inst::Ret,
        OP_ECALL => Inst::Ecall {
            service: imm as u16,
        },
        OP_HALT => Inst::Halt,
        OP_NOP => Inst::Nop,
        other => return Err(DecodeError::UnknownOpcode(other)),
    };
    Ok((inst, W as usize))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::abi;
    use crate::{FuncBuilder, TargetIsa};

    #[test]
    fn all_words_are_eight_bytes() {
        let mut f = FuncBuilder::new("f", TargetIsa::Nxp);
        f.addi(abi::A0, abi::A0, 1);
        f.ret();
        let enc = encode(&f.finish()).unwrap();
        assert_eq!(enc.bytes.len(), 16);
    }

    #[test]
    fn li_is_a_pair_and_round_trips() {
        let mut f = FuncBuilder::new("f", TargetIsa::Nxp);
        f.li(abi::A0, -1);
        f.li(abi::A1, 0x7FFF_FFFF_FFFF_FFFF);
        f.ret();
        let enc = encode(&f.finish()).unwrap();
        let (i0, l0) = decode(&enc.bytes).unwrap();
        assert_eq!(i0, Inst::Li { rd: abi::A0, imm: -1 });
        assert_eq!(l0, 16);
        let (i1, _) = decode(&enc.bytes[16..]).unwrap();
        assert_eq!(
            i1,
            Inst::Li {
                rd: abi::A1,
                imm: 0x7FFF_FFFF_FFFF_FFFF
            }
        );
    }

    #[test]
    fn jump_into_li_pair_is_illegal() {
        let mut f = FuncBuilder::new("f", TargetIsa::Nxp);
        f.li(abi::A0, 42);
        f.ret();
        let enc = encode(&f.finish()).unwrap();
        assert_eq!(decode(&enc.bytes[8..]), Err(DecodeError::StrayConstHigh));
    }

    #[test]
    fn li_sym_emits_pair_reloc() {
        let mut f = FuncBuilder::new("f", TargetIsa::Nxp);
        f.nop();
        f.li_sym(abi::A0, "table");
        f.ret();
        let enc = encode(&f.finish()).unwrap();
        assert_eq!(enc.relocs.len(), 1);
        let r = &enc.relocs[0];
        assert_eq!(r.kind, RelocKind::Abs64Pair);
        assert_eq!(r.inst_start, 8);
        assert_eq!(r.field_at, 12);
    }

    #[test]
    fn ecall_service_round_trips() {
        let mut f = FuncBuilder::new("f", TargetIsa::Nxp);
        f.ecall(0x1FF);
        f.ret();
        let enc = encode(&f.finish()).unwrap();
        let (inst, _) = decode(&enc.bytes).unwrap();
        assert_eq!(inst, Inst::Ecall { service: 0x1FF });
    }
}
