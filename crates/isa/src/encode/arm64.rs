//! The fixed-width accelerator encoding ("arm64-like").
//!
//! Every instruction is built from 4-byte words, 4-byte aligned, like
//! AArch64. Register-only operations take one word `[opcode, rd, rs1,
//! rs2]`; operations with a 32-bit immediate/displacement field take a
//! second word holding the field; a full 64-bit constant takes *two*
//! header+payload pairs (`li.lo` + `li.hi`, 16 bytes), mirroring how
//! real AArch64 synthesises wide constants with `movz`/`movk`
//! sequences. Opcodes live in `0x40..=0x7F`, disjoint from both the
//! rv64 (`0x01..=0x3F`) and x64 (`0x80..=0xBD`) spaces, so fetching
//! either of their bytes fails to decode — and a 4-byte alignment rule
//! strictly looser than rv64's means an arm64 core can *also* fault on
//! alignment before decoding x64 bytes (§IV-B2's two trigger flavours).

use super::{check_reg, DecodeError, EncodeError, Encoded, Reloc, RelocKind};
use crate::func::Func;
use crate::inst::{AluOp, BranchOp, Inst, MemSize, Target};

/// Word size in bytes.
const W: u32 = 4;

const OP_ALU: u8 = 0x40; // +alu_tag (13) -> 0x40..=0x4C, one word
const OP_ALUI: u8 = 0x50; // +alu_tag -> 0x50..=0x5C, two words
const OP_LI_LO: u8 = 0x60; // two words (header + lo32)
const OP_LI_HI: u8 = 0x61; // two words (header + hi32)
const OP_LD: u8 = 0x62; // +size_tag -> 0x62..=0x65, two words
const OP_ST: u8 = 0x66; // +size_tag -> 0x66..=0x69, two words
const OP_BR: u8 = 0x6A; // +branch_tag -> 0x6A..=0x6F, two words
const OP_JAL: u8 = 0x70; // two words
const OP_JALR: u8 = 0x71; // two words
const OP_RET: u8 = 0x72; // one word
const OP_ECALL: u8 = 0x73; // one word (service packed in operand bytes)
const OP_HALT: u8 = 0x74; // one word
const OP_NOP: u8 = 0x75; // one word

/// Encoded length of one instruction.
fn inst_len(inst: &Inst) -> u32 {
    match inst {
        Inst::Alu { .. } | Inst::Ret | Inst::Ecall { .. } | Inst::Halt | Inst::Nop => W,
        Inst::Li { .. } | Inst::LiSym { .. } => 4 * W,
        _ => 2 * W,
    }
}

/// One header word.
fn head(op: u8, b1: u8, b2: u8, b3: u8) -> [u8; 4] {
    [op, b1, b2, b3]
}

/// Encodes `func` into arm64 bytes.
///
/// # Errors
///
/// Returns [`EncodeError::BranchOutOfRange`] if a label displacement
/// overflows 32 bits.
pub fn encode(func: &Func) -> Result<Encoded, EncodeError> {
    // Pass 1: layout.
    let mut offsets = Vec::with_capacity(func.insts.len());
    let mut off = 0u32;
    for inst in &func.insts {
        offsets.push(off);
        off += inst_len(inst);
    }
    let label_off = |l: crate::func::Label| offsets[func.labels[l.0 as usize].unwrap()];

    // Pass 2: emit.
    let mut out = Encoded {
        bytes: Vec::with_capacity(off as usize),
        relocs: Vec::new(),
        offsets: offsets.clone(),
    };
    for (i, inst) in func.insts.iter().enumerate() {
        let start = offsets[i];
        let b = &mut out.bytes;
        match *inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                b.extend_from_slice(&head(OP_ALU + op.tag(), rd.0, rs1.0, rs2.0));
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                b.extend_from_slice(&head(OP_ALUI + op.tag(), rd.0, rs1.0, 0));
                b.extend_from_slice(&imm.to_le_bytes());
            }
            Inst::Li { rd, imm } => {
                let lo = imm as u32;
                let hi = ((imm as u64) >> 32) as u32;
                b.extend_from_slice(&head(OP_LI_LO, rd.0, 0, 0));
                b.extend_from_slice(&lo.to_le_bytes());
                b.extend_from_slice(&head(OP_LI_HI, rd.0, 0, 0));
                b.extend_from_slice(&hi.to_le_bytes());
            }
            Inst::LiSym { rd, sym } => {
                // Low half at start+4, high half at start+12 — exactly
                // the `field_at` / `field_at + 8` split Abs64Pair
                // patches (the rv64 pair uses the same spacing).
                out.relocs.push(Reloc {
                    field_at: start + W,
                    inst_start: start,
                    kind: RelocKind::Abs64Pair,
                    symbol: func.symbol_name(sym).to_string(),
                });
                b.extend_from_slice(&head(OP_LI_LO, rd.0, 0, 0));
                b.extend_from_slice(&0u32.to_le_bytes());
                b.extend_from_slice(&head(OP_LI_HI, rd.0, 0, 0));
                b.extend_from_slice(&0u32.to_le_bytes());
            }
            Inst::Ld { rd, base, off, size } => {
                b.extend_from_slice(&head(OP_LD + size.tag(), rd.0, base.0, 0));
                b.extend_from_slice(&off.to_le_bytes());
            }
            Inst::St { rs, base, off, size } => {
                b.extend_from_slice(&head(OP_ST + size.tag(), rs.0, base.0, 0));
                b.extend_from_slice(&off.to_le_bytes());
            }
            Inst::Branch { op, rs1, rs2, target } => {
                let rel: i64 = match target {
                    Target::Label(l) => label_off(l) as i64 - start as i64,
                    Target::Rel(d) => d,
                    Target::Symbol(_) => unreachable!("branches use labels"),
                };
                let rel32 =
                    i32::try_from(rel).map_err(|_| EncodeError::BranchOutOfRange { inst: i })?;
                b.extend_from_slice(&head(OP_BR + op.tag(), rs1.0, rs2.0, 0));
                b.extend_from_slice(&rel32.to_le_bytes());
            }
            Inst::Jal { rd, target } => {
                let rel32: i32 = match target {
                    Target::Label(l) => {
                        i32::try_from(label_off(l) as i64 - start as i64)
                            .map_err(|_| EncodeError::BranchOutOfRange { inst: i })?
                    }
                    Target::Rel(d) => {
                        i32::try_from(d).map_err(|_| EncodeError::BranchOutOfRange { inst: i })?
                    }
                    Target::Symbol(s) => {
                        out.relocs.push(Reloc {
                            field_at: start + W,
                            inst_start: start,
                            kind: RelocKind::Rel32,
                            symbol: func.symbol_name(s).to_string(),
                        });
                        0
                    }
                };
                b.extend_from_slice(&head(OP_JAL, rd.0, 0, 0));
                b.extend_from_slice(&rel32.to_le_bytes());
            }
            Inst::Jalr { rd, rs1, off } => {
                b.extend_from_slice(&head(OP_JALR, rd.0, rs1.0, 0));
                b.extend_from_slice(&off.to_le_bytes());
            }
            Inst::Ret => b.extend_from_slice(&head(OP_RET, 0, 0, 0)),
            Inst::Ecall { service } => {
                let s = service.to_le_bytes();
                b.extend_from_slice(&head(OP_ECALL, s[0], s[1], 0));
            }
            Inst::Halt => b.extend_from_slice(&head(OP_HALT, 0, 0, 0)),
            Inst::Nop => b.extend_from_slice(&head(OP_NOP, 0, 0, 0)),
        }
        debug_assert_eq!(out.bytes.len() as u32, start + inst_len(inst));
    }
    Ok(out)
}

/// True when `op` is a valid first byte of an arm64 instruction (the
/// registry's foreign-encoding classifier).
pub fn owns_opcode(op: u8) -> bool {
    (OP_ALU..OP_ALU + 13).contains(&op)
        || (OP_ALUI..OP_ALUI + 13).contains(&op)
        || (OP_LI_LO..=OP_NOP).contains(&op)
}

fn need(bytes: &[u8], n: usize) -> Result<(), DecodeError> {
    if bytes.len() < n {
        Err(DecodeError::Truncated)
    } else {
        Ok(())
    }
}

fn i32_at(bytes: &[u8], at: usize) -> i32 {
    i32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

/// Decodes one arm64 instruction (4, 8 or 16 bytes).
///
/// # Errors
///
/// [`DecodeError::UnknownOpcode`] for non-arm64 opcodes (e.g. host or
/// rv64 code), [`DecodeError::StrayConstHigh`] for a jump into the
/// middle of a `li` group, [`DecodeError::Truncated`] on short input.
pub fn decode(bytes: &[u8]) -> Result<(Inst, usize), DecodeError> {
    need(bytes, W as usize)?;
    let op = bytes[0];
    match op {
        _ if (OP_ALU..OP_ALU + 13).contains(&op) => Ok((
            Inst::Alu {
                op: AluOp::from_tag(op - OP_ALU).unwrap(),
                rd: check_reg(bytes[1])?,
                rs1: check_reg(bytes[2])?,
                rs2: check_reg(bytes[3])?,
            },
            W as usize,
        )),
        _ if (OP_ALUI..OP_ALUI + 13).contains(&op) => {
            need(bytes, 2 * W as usize)?;
            Ok((
                Inst::AluImm {
                    op: AluOp::from_tag(op - OP_ALUI).unwrap(),
                    rd: check_reg(bytes[1])?,
                    rs1: check_reg(bytes[2])?,
                    imm: i32_at(bytes, 4),
                },
                2 * W as usize,
            ))
        }
        OP_LI_LO => {
            need(bytes, 4 * W as usize)?;
            if bytes[8] != OP_LI_HI {
                return Err(DecodeError::StrayConstHigh);
            }
            let lo = i32_at(bytes, 4) as u32 as u64;
            let hi = i32_at(bytes, 12) as u32 as u64;
            Ok((
                Inst::Li {
                    rd: check_reg(bytes[1])?,
                    imm: (lo | (hi << 32)) as i64,
                },
                4 * W as usize,
            ))
        }
        OP_LI_HI => Err(DecodeError::StrayConstHigh),
        _ if (OP_LD..OP_LD + 4).contains(&op) => {
            need(bytes, 2 * W as usize)?;
            Ok((
                Inst::Ld {
                    rd: check_reg(bytes[1])?,
                    base: check_reg(bytes[2])?,
                    off: i32_at(bytes, 4),
                    size: MemSize::from_tag(op - OP_LD).unwrap(),
                },
                2 * W as usize,
            ))
        }
        _ if (OP_ST..OP_ST + 4).contains(&op) => {
            need(bytes, 2 * W as usize)?;
            Ok((
                Inst::St {
                    rs: check_reg(bytes[1])?,
                    base: check_reg(bytes[2])?,
                    off: i32_at(bytes, 4),
                    size: MemSize::from_tag(op - OP_ST).unwrap(),
                },
                2 * W as usize,
            ))
        }
        _ if (OP_BR..OP_BR + 6).contains(&op) => {
            need(bytes, 2 * W as usize)?;
            Ok((
                Inst::Branch {
                    op: BranchOp::from_tag(op - OP_BR).unwrap(),
                    rs1: check_reg(bytes[1])?,
                    rs2: check_reg(bytes[2])?,
                    target: Target::Rel(i32_at(bytes, 4) as i64),
                },
                2 * W as usize,
            ))
        }
        OP_JAL => {
            need(bytes, 2 * W as usize)?;
            Ok((
                Inst::Jal {
                    rd: check_reg(bytes[1])?,
                    target: Target::Rel(i32_at(bytes, 4) as i64),
                },
                2 * W as usize,
            ))
        }
        OP_JALR => {
            need(bytes, 2 * W as usize)?;
            Ok((
                Inst::Jalr {
                    rd: check_reg(bytes[1])?,
                    rs1: check_reg(bytes[2])?,
                    off: i32_at(bytes, 4),
                },
                2 * W as usize,
            ))
        }
        OP_RET => Ok((Inst::Ret, W as usize)),
        OP_ECALL => Ok((
            Inst::Ecall {
                service: u16::from_le_bytes(bytes[1..3].try_into().unwrap()),
            },
            W as usize,
        )),
        OP_HALT => Ok((Inst::Halt, W as usize)),
        OP_NOP => Ok((Inst::Nop, W as usize)),
        other => Err(DecodeError::UnknownOpcode(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::abi;
    use crate::{FuncBuilder, TargetIsa};

    #[test]
    fn all_lengths_are_word_multiples() {
        let mut f = FuncBuilder::new("f", TargetIsa::Arm64);
        f.li(abi::A0, 0x1234_5678_9ABC_DEF0u64 as i64);
        f.addi(abi::A0, abi::A0, 1);
        f.add(abi::A0, abi::A0, abi::A0);
        f.ecall(7);
        f.ret();
        let enc = encode(&f.finish()).unwrap();
        assert_eq!(enc.bytes.len() % 4, 0);
        for &o in &enc.offsets {
            assert_eq!(o % 4, 0, "every arm64 instruction is 4-aligned");
        }
        // li 16 + addi 8 + add 4 + ecall 4 + ret 4.
        assert_eq!(enc.bytes.len(), 36);
    }

    #[test]
    fn li_round_trips_and_rejects_mid_entry() {
        let mut f = FuncBuilder::new("f", TargetIsa::Arm64);
        f.li(abi::A0, -2);
        f.li(abi::A1, 0x7FFF_FFFF_FFFF_FFFF);
        f.ret();
        let enc = encode(&f.finish()).unwrap();
        let (i0, l0) = decode(&enc.bytes).unwrap();
        assert_eq!(i0, Inst::Li { rd: abi::A0, imm: -2 });
        assert_eq!(l0, 16);
        let (i1, _) = decode(&enc.bytes[16..]).unwrap();
        assert_eq!(i1, Inst::Li { rd: abi::A1, imm: 0x7FFF_FFFF_FFFF_FFFF });
        // A jump to the high header is a stray-const fault, as in rv64.
        assert_eq!(decode(&enc.bytes[8..]), Err(DecodeError::StrayConstHigh));
    }

    #[test]
    fn li_sym_reloc_matches_abs64_pair_spacing() {
        let mut f = FuncBuilder::new("f", TargetIsa::Arm64);
        f.nop();
        f.li_sym(abi::A2, "table");
        f.ret();
        let enc = encode(&f.finish()).unwrap();
        assert_eq!(enc.relocs.len(), 1);
        let r = &enc.relocs[0];
        assert_eq!(r.kind, RelocKind::Abs64Pair);
        assert_eq!(r.inst_start, 4);
        // Low half at +4 from the instruction, high at field_at + 8.
        assert_eq!(r.field_at, 8);
    }

    #[test]
    fn jal_symbol_emits_rel32_reloc() {
        let mut f = FuncBuilder::new("f", TargetIsa::Arm64);
        f.call("target_fn");
        f.ret();
        let enc = encode(&f.finish()).unwrap();
        assert_eq!(enc.relocs.len(), 1);
        let r = &enc.relocs[0];
        assert_eq!(r.kind, RelocKind::Rel32);
        assert_eq!(r.inst_start, 0);
        assert_eq!(r.field_at, 4);
        assert_eq!(r.symbol, "target_fn");
    }

    #[test]
    fn ecall_service_packs_into_one_word() {
        let mut f = FuncBuilder::new("f", TargetIsa::Arm64);
        f.ecall(0x1FF);
        f.ret();
        let enc = encode(&f.finish()).unwrap();
        let (inst, len) = decode(&enc.bytes).unwrap();
        assert_eq!(inst, Inst::Ecall { service: 0x1FF });
        assert_eq!(len, 4);
    }

    #[test]
    fn decode_rejects_register_out_of_range() {
        let bytes = [OP_ALU, 40, 0, 0];
        assert_eq!(decode(&bytes), Err(DecodeError::BadRegister(40)));
    }

    #[test]
    fn truncated_input_rejected() {
        assert_eq!(decode(&[OP_JAL, 0, 0]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[OP_JAL, 0, 0, 0]), Err(DecodeError::Truncated));
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
    }
}
