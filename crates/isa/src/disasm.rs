//! Disassembler for encoded sections (debugging and tests).

use crate::encode::DecodeError;
use crate::Isa;
use std::fmt::Write as _;

/// One disassembled line.
#[derive(Clone, Debug)]
pub struct Line {
    /// Byte offset within the input.
    pub offset: usize,
    /// Instruction length in bytes.
    pub len: usize,
    /// Rendered text (mnemonic + operands), or the decode error.
    pub text: String,
}

/// Disassembles `bytes` from offset 0 until the end or the first decode
/// error (which is reported as the final line).
///
/// # Examples
///
/// ```
/// use flick_isa::{abi, disasm, FuncBuilder, Isa, TargetIsa};
///
/// let mut f = FuncBuilder::new("f", TargetIsa::Host);
/// f.addi(abi::A0, abi::A0, 7);
/// f.ret();
/// let enc = Isa::X64.encode(&f.finish())?;
/// let lines = disasm::disassemble(Isa::X64, &enc.bytes);
/// assert_eq!(lines.len(), 2);
/// assert!(lines[0].text.contains("addi"));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn disassemble(isa: Isa, bytes: &[u8]) -> Vec<Line> {
    let mut lines = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        match isa.decode(&bytes[off..]) {
            Ok((inst, len)) => {
                lines.push(Line {
                    offset: off,
                    len,
                    text: inst.to_string(),
                });
                off += len;
            }
            Err(e) => {
                lines.push(Line {
                    offset: off,
                    len: 0,
                    text: format!("<decode error: {e}>"),
                });
                break;
            }
        }
    }
    lines
}

/// Formats a disassembly as a multi-line string with offsets.
pub fn format(isa: Isa, bytes: &[u8]) -> String {
    let mut s = String::new();
    for line in disassemble(isa, bytes) {
        let _ = writeln!(s, "{:6x}:  {}", line.offset, line.text);
    }
    s
}

/// Checks that `bytes` decodes cleanly end-to-end for `isa`.
///
/// # Errors
///
/// Returns the offset and error of the first undecodable instruction.
pub fn verify(isa: Isa, bytes: &[u8]) -> Result<usize, (usize, DecodeError)> {
    let mut off = 0usize;
    let mut count = 0;
    while off < bytes.len() {
        match isa.decode(&bytes[off..]) {
            Ok((_, len)) => {
                off += len;
                count += 1;
            }
            Err(e) => return Err((off, e)),
        }
    }
    Ok(count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::abi;
    use crate::{FuncBuilder, TargetIsa};

    fn sample(target: TargetIsa) -> Vec<u8> {
        let mut f = FuncBuilder::new("f", target);
        f.li(abi::A0, 99);
        f.call("g");
        f.ret();
        target.isa().encode(&f.finish()).unwrap().bytes
    }

    #[test]
    fn disassembles_both_isas() {
        for target in [TargetIsa::Host, TargetIsa::Nxp] {
            let bytes = sample(target);
            let lines = disassemble(target.isa(), &bytes);
            assert_eq!(lines.len(), 3);
            assert!(lines[0].text.starts_with("li"));
            assert!(lines[2].text.starts_with("ret"));
        }
    }

    #[test]
    fn verify_counts_instructions() {
        let bytes = sample(TargetIsa::Nxp);
        assert_eq!(verify(Isa::Rv64, &bytes), Ok(3));
    }

    #[test]
    fn verify_reports_error_offset() {
        let bytes = sample(TargetIsa::Host);
        let err = verify(Isa::Rv64, &bytes);
        assert!(err.is_err());
        assert_eq!(err.unwrap_err().0, 0);
    }

    #[test]
    fn format_is_line_per_inst() {
        let bytes = sample(TargetIsa::Host);
        let text = format(Isa::X64, &bytes);
        assert_eq!(text.lines().count(), 3);
    }
}
