//! The interpreting core: fetch → translate → decode → execute, with
//! cycle/latency accounting and the Flick exception surface.

use crate::cache::{Cache, CacheConfig};
use crate::decoded::{
    BlockInst, DecodedBlock, DecodedCache, SpinBranch, SpinFoldKind, SpinOp, NO_SUCC,
};
use crate::tlb::{MmuHole, Tlb, TlbEntry};
use crate::MemEnv;
use flick_isa::inst::AluOp;
use flick_isa::{abi, ControlKind, DecodeError, Inst, Isa, MemSize, Reg, Target};
use flick_mem::{AccessKind, PhysAddr, PhysMem, Region, Requester, VirtAddr, PAGE_SIZE};
use flick_paging::{walk, WalkError};
use flick_sim::trace::Side;
use flick_sim::{Clock, Hertz, Picos, Stats};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Cycles charged per instruction class (before memory stalls).
#[derive(Clone, Copy, Debug)]
pub struct CpiModel {
    /// Simple ALU / immediate ops.
    pub alu: u64,
    /// Multiply.
    pub mul: u64,
    /// Divide / remainder.
    pub div: u64,
    /// Load/store issue overhead (memory latency added separately).
    pub mem: u64,
    /// Conditional branch.
    pub branch: u64,
    /// Jumps, calls, returns.
    pub jump: u64,
    /// Trap entry for `ecall`.
    pub ecall: u64,
}

impl CpiModel {
    /// Wide out-of-order host core: everything is cheap.
    pub fn host() -> Self {
        CpiModel {
            alu: 1,
            mul: 3,
            div: 20,
            mem: 1,
            branch: 1,
            jump: 2,
            ecall: 50,
        }
    }

    /// In-order scalar NxP core (RV64-I soft core).
    pub fn nxp() -> Self {
        CpiModel {
            alu: 1,
            mul: 5,
            div: 35,
            mem: 3,
            branch: 2,
            jump: 2,
            ecall: 10,
        }
    }

    /// Costs from an ISA descriptor's registry table (what
    /// [`CoreConfig::accel`] uses to build cores for any registered
    /// accelerator ISA).
    pub fn from_table(t: &flick_isa::CpiTable) -> Self {
        CpiModel {
            alu: t.alu,
            mul: t.mul,
            div: t.div,
            mem: t.mem,
            branch: t.branch,
            jump: t.jump,
            ecall: t.ecall,
        }
    }

    /// Host core running the software *interpreter* for foreign (NxP)
    /// text — the graceful-degradation path taken when the PCIe link is
    /// declared dead. Each guest instruction costs a dispatch loop on
    /// the wide host core, so everything is roughly an order of
    /// magnitude more expensive than native host execution.
    pub fn host_emulating() -> Self {
        CpiModel {
            alu: 14,
            mul: 18,
            div: 40,
            mem: 16,
            branch: 15,
            jump: 16,
            ecall: 80,
        }
    }
}

/// Static configuration of one core.
#[derive(Clone, Debug)]
pub struct CoreConfig {
    /// Host or NxP side (selects requester, NX convention, walker cost).
    pub side: Side,
    /// Instruction encoding the core decodes.
    pub isa: Isa,
    /// Clock frequency.
    pub freq: Hertz,
    /// Per-class cycle costs.
    pub cpi: CpiModel,
    /// I-TLB entries.
    pub itlb_entries: usize,
    /// D-TLB entries.
    pub dtlb_entries: usize,
    /// I-cache geometry.
    pub icache: CacheConfig,
    /// D-cache geometry.
    pub dcache: CacheConfig,
    /// Extra per-walk firmware overhead (the NxP's MMU is a tiny
    /// microcontroller, §IV-A; zero for the host's hardware walker).
    pub walk_overhead: Picos,
    /// Allow the D-cache to cover NxP DRAM (off by default: PCIe offers
    /// no coherence, §III-D; an ablation bench flips this).
    pub dcache_nxp_dram: bool,
    /// This core models a software interpreter executing the *other*
    /// side's text (graceful degradation after link death). Inverts the
    /// fetch NX convention: a host-side emulating core fetches NX-set
    /// (NxP) pages and faults with `IsaMismatch` on NX-clear (host)
    /// pages, so control returning to host text hands execution back to
    /// the native core.
    pub emulates_foreign_isa: bool,
    /// Enables the host-side decoded-instruction cache (see
    /// [`DecodedCache`]). Purely a host wall-clock optimization: the
    /// simulated clocks, stats, and traces are bit-identical either way
    /// (enforced by `tests/fastpath.rs`). On by default; switched off by
    /// the differential tests.
    pub fast_path: bool,
    /// Enables block chaining: a completed block whose control transfer
    /// lands on a statically known same-page successor continues in the
    /// block lane through a lazily patched [`DecodedBlock`] link instead
    /// of returning to `Core::run`'s top-level dispatch. Like
    /// `fast_path` this is purely a host wall-clock optimization —
    /// every chain follow re-validates exactly what dispatch would have
    /// (fuel, page, I-TLB generation, text generation), so simulated
    /// clocks, stats, and traces are bit-identical with chaining on or
    /// off (enforced by `tests/blocks.rs`). Only meaningful with
    /// `fast_path`; on by default.
    pub chain: bool,
}

impl CoreConfig {
    /// The Xeon-like host core of Table I (2.4 GHz, big TLBs).
    pub fn host() -> Self {
        CoreConfig {
            side: Side::Host,
            isa: Isa::X64,
            freq: Hertz::ghz_milli(2_400),
            cpi: CpiModel::host(),
            itlb_entries: 128,
            dtlb_entries: 128,
            icache: CacheConfig::host_l1(),
            dcache: CacheConfig::host_l1(),
            walk_overhead: Picos::ZERO,
            dcache_nxp_dram: false,
            emulates_foreign_isa: false,
            fast_path: true,
            chain: true,
        }
    }

    /// A host core configured as the degraded-mode interpreter: decodes
    /// RV64 text at host frequency with interpreter-loop CPI, and
    /// accepts NX-set pages (see `emulates_foreign_isa`).
    pub fn host_emulator() -> Self {
        CoreConfig::host_emulator_for(Isa::Rv64)
    }

    /// A host core interpreting `guest` text in software — the
    /// graceful-degradation path, for any registered accelerator ISA.
    pub fn host_emulator_for(guest: Isa) -> Self {
        assert!(
            guest.descriptor().nx_text,
            "{guest} is host text; nothing to emulate"
        );
        CoreConfig {
            isa: guest,
            cpi: CpiModel::host_emulating(),
            emulates_foreign_isa: true,
            ..CoreConfig::host()
        }
    }

    /// The RV64-like NxP core of Table I (200 MHz, 16-entry TLBs,
    /// programmable MMU).
    pub fn nxp() -> Self {
        CoreConfig::accel(Isa::Rv64)
    }

    /// An accelerator-side core for any registered NX-text ISA, with
    /// clock and CPI drawn from the ISA's registry descriptor. The
    /// platform plumbing (tiny TLBs, small caches, firmware-walked MMU)
    /// is common to every NxP card slot, so `accel(Isa::Rv64)` is
    /// exactly [`CoreConfig::nxp`].
    ///
    /// # Panics
    ///
    /// Panics when `isa` is the host's own encoding (host cores are
    /// [`CoreConfig::host`]; they are not behind the PCIe link).
    pub fn accel(isa: Isa) -> Self {
        let d = isa.descriptor();
        assert!(d.nx_text, "{isa} is the host ISA, not an accelerator ISA");
        CoreConfig {
            side: Side::Nxp,
            isa,
            freq: Hertz::khz(d.clock_khz),
            cpi: CpiModel::from_table(&d.cpi),
            itlb_entries: 16,
            dtlb_entries: 16,
            icache: CacheConfig::nxp(),
            dcache: CacheConfig::nxp(),
            // MicroBlaze firmware: decode request, compute slot address,
            // issue reads — per missed translation.
            walk_overhead: Picos::from_nanos(150),
            dcache_nxp_dram: false,
            emulates_foreign_isa: false,
            fast_path: true,
            chain: true,
        }
    }
}

/// Why an instruction fetch faulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InstFaultKind {
    /// No translation exists.
    NotPresent,
    /// Host core fetched from a page with NX **set** — a host thread
    /// called an NxP function. The Flick migration trigger (§III-B).
    NxViolation,
    /// NxP core fetched from a page with NX **clear** — an NxP thread
    /// called a host function. The inverted convention (§IV-B2).
    IsaMismatch,
    /// NxP fetch at a non-8-byte-aligned PC (x86 code is variable
    /// length, so host function entries are usually misaligned).
    Misaligned,
    /// Bytes did not decode in this core's ISA.
    Illegal,
}

impl fmt::Display for InstFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InstFaultKind::NotPresent => "not-present",
            InstFaultKind::NxViolation => "nx-violation",
            InstFaultKind::IsaMismatch => "isa-mismatch",
            InstFaultKind::Misaligned => "misaligned",
            InstFaultKind::Illegal => "illegal",
        };
        write!(f, "{s}")
    }
}

/// A synchronous exception. The PC is left at the faulting instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Exception {
    /// Instruction fetch fault (Flick's migration triggers live here).
    InstFault {
        /// Faulting virtual PC — for NX faults this is the *address of
        /// the target function*, which the kernel passes to the
        /// migration handler.
        va: VirtAddr,
        /// Fault classification.
        kind: InstFaultKind,
    },
    /// Data access fault.
    DataFault {
        /// Faulting data address.
        va: VirtAddr,
        /// True for stores.
        write: bool,
    },
}

impl fmt::Display for Exception {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Exception::InstFault { va, kind } => write!(f, "inst fault at {va} ({kind})"),
            Exception::DataFault { va, write } => {
                write!(f, "data fault at {va} (write={write})")
            }
        }
    }
}

/// Why [`Core::run`] stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// An `ecall` trapped to the kernel / NxP runtime; the PC has
    /// already advanced past it.
    Ecall(u16),
    /// A `halt` retired.
    Halt,
    /// A synchronous exception; PC still points at the faulting
    /// instruction.
    Fault(Exception),
    /// The fuel budget ran out before anything interesting happened.
    OutOfFuel,
}

/// A thread's CPU state, as saved/restored on context switches and
/// carried (in part) inside migration descriptors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CpuContext {
    /// General-purpose registers.
    pub regs: [u64; 32],
    /// Program counter.
    pub pc: VirtAddr,
}

impl Default for CpuContext {
    fn default() -> Self {
        CpuContext {
            regs: [0; 32],
            pc: VirtAddr::NULL,
        }
    }
}

/// Hot-path event counters, kept as plain struct fields so the
/// per-instruction loop pays a register increment instead of a
/// `BTreeMap<&str, u64>` probe. They are folded into a named [`Stats`]
/// bag only at report time ([`Core::stats`]), preserving the exact key
/// set the map-backed counters produced: a key exists iff its count is
/// nonzero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CoreCounters {
    /// Instructions retired.
    pub instructions: u64,
    /// Load instructions executed.
    pub loads: u64,
    /// Store instructions executed.
    pub stores: u64,
    /// I-TLB misses (fetch-side walks).
    pub itlb_misses: u64,
    /// D-TLB misses (data-side walks).
    pub dtlb_misses: u64,
    /// I-cache misses.
    pub icache_misses: u64,
    /// D-cache misses (reads only; writes are write-through).
    pub dcache_misses: u64,
    /// Page-table walks performed (either TLB).
    pub walks: u64,
}

impl CoreCounters {
    /// Materializes the counters into a named [`Stats`] bag. Zero-valued
    /// counters are skipped so the key set is identical to what
    /// incremental `Stats::bump` calls would have produced.
    pub fn to_stats(self) -> Stats {
        let mut s = Stats::default();
        for (name, v) in [
            ("instructions", self.instructions),
            ("loads", self.loads),
            ("stores", self.stores),
            ("itlb_misses", self.itlb_misses),
            ("dtlb_misses", self.dtlb_misses),
            ("icache_misses", self.icache_misses),
            ("dcache_misses", self.dcache_misses),
            ("walks", self.walks),
        ] {
            if v != 0 {
                s.bump_by(name, v);
            }
        }
        s
    }
}

/// Host-side chain-efficacy tallies, deliberately a *separate* bag from
/// [`CoreCounters`]: those materialize into the simulated [`Stats`] the
/// differential suites compare bit-for-bit between engine variants, and
/// chain behaviour must differ between chaining on and off. These
/// counters describe the host execution strategy (which lane retired
/// the work), not the simulated machine, so they are reported through
/// their own accessor ([`Core::chain_counters`]) and never folded into
/// simulated stats.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChainCounters {
    /// Control transfers that continued in the block lane through a
    /// chained successor instead of returning to top-level dispatch.
    pub chain_hits: u64,
    /// Successor links patched (first resolution of an edge).
    pub chain_patches: u64,
    /// Chain exits where the finished block *had* a static successor
    /// edge but the follow validation declined it (fuel exhausted, a
    /// cross-page or unexpected target, self-modified text, or an
    /// unresolvable successor), forcing a return to dispatch.
    pub chain_breaks: u64,
    /// Single instructions retired through the step-path fallback
    /// inside the block run loop (cold pages, MMU holes, page-spanning
    /// or pre-link text).
    pub block_fallback_steps: u64,
}

impl ChainCounters {
    /// Materializes the tallies into a named [`Stats`] bag (zero-valued
    /// counters skipped), for report-time printing. Never merged into
    /// simulated stats — see the type docs.
    pub fn to_stats(self) -> Stats {
        let mut s = Stats::default();
        for (name, v) in [
            ("chain_hits", self.chain_hits),
            ("chain_patches", self.chain_patches),
            ("chain_breaks", self.chain_breaks),
            ("block_fallback_steps", self.block_fallback_steps),
        ] {
            if v != 0 {
                s.bump_by(name, v);
            }
        }
        s
    }
}

/// Host-side memo of the last successful fetch translation: the page it
/// landed in, that page's physical frame, and the I-cache line it
/// touched. A fetch that stays on the same page with the same I-TLB
/// generation *would* be an MRU hit in [`Tlb::lookup`] and (same line)
/// a hit in [`Cache::access`]; both of those mutate nothing but their
/// private hit tallies, so skipping them is invisible to simulated
/// clocks, stats, and traces. Any I-TLB insert/flush bumps the TLB
/// generation and invalidates the frame.
#[derive(Clone, Copy)]
struct FetchFrame {
    /// 4 KiB-aligned VA page base of the last fetch.
    va_page: u64,
    /// Matching 4 KiB-aligned physical frame base.
    pa_page: u64,
    /// I-cache line index of the last fetch (the tag array is known to
    /// hold this line, so a same-line fetch is a guaranteed hit).
    line: u64,
    /// [`Tlb::generation`] snapshot at memo time.
    itlb_gen: u64,
}

/// Entries in the core's front block cache ([`Core::last_blocks`]).
/// Sized for the loop shapes the workloads actually run: a loop body
/// split by its exit branch is two blocks, a call-in-a-loop is three
/// or four. Lookup is a linear scan, so this must stay tiny.
const FRONT_BLOCKS: usize = 4;

/// Maximum instructions in one decoded (super)block. Extension through
/// direct jumps would otherwise decode forever (a `jal` to itself
/// re-decodes the same bytes); the cap also bounds how much decode work
/// a fuel cut can discard mid-block.
const SUPERBLOCK_CAP: usize = 128;

/// One interpreting core.
pub struct Core {
    cfg: CoreConfig,
    clock: Clock,
    regs: [u64; 32],
    pc: VirtAddr,
    cr3: PhysAddr,
    itlb: Tlb,
    dtlb: Tlb,
    icache: Cache,
    dcache: Cache,
    holes: Vec<MmuHole>,
    counters: CoreCounters,
    chain: ChainCounters,
    decoded: DecodedCache,
    /// Small front cache over [`DecodedCache`]'s block store: the most
    /// recently executed blocks, keyed by physical start address and
    /// the text generation each was decoded under. Hot loops cycle
    /// through a handful of blocks (a loop body split by its branch is
    /// already two); hitting here skips the basket lookup and all `Arc`
    /// reference traffic (the block is *moved* out and back). Misses
    /// fall through to the shared cache and land in round-robin order.
    last_blocks: [Option<(u64, u64, Arc<DecodedBlock>)>; FRONT_BLOCKS],
    /// Round-robin insert cursor for `last_blocks`.
    front_cursor: u8,
    /// Last-fetch translation memo (fast path only; see [`FetchFrame`]).
    fetch_frame: Option<FetchFrame>,
    /// `isa.fetch_align() - 1`, cached so the per-fetch alignment check
    /// is a mask instead of a division by a runtime value.
    fetch_align_mask: u64,
}

impl fmt::Debug for Core {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Core")
            .field("side", &self.cfg.side)
            .field("pc", &self.pc)
            .field("now", &self.clock.now())
            .finish()
    }
}

impl Core {
    /// Builds a core from its configuration.
    pub fn new(cfg: CoreConfig) -> Self {
        Core {
            clock: Clock::new(cfg.freq),
            regs: [0; 32],
            pc: VirtAddr::NULL,
            cr3: PhysAddr::NULL,
            itlb: Tlb::new(cfg.itlb_entries),
            dtlb: Tlb::new(cfg.dtlb_entries),
            icache: Cache::new(cfg.icache),
            dcache: Cache::new(cfg.dcache),
            holes: Vec::new(),
            counters: CoreCounters::default(),
            chain: ChainCounters::default(),
            decoded: DecodedCache::new(),
            last_blocks: [const { None }; FRONT_BLOCKS],
            front_cursor: 0,
            fetch_frame: None,
            fetch_align_mask: cfg.isa.fetch_align() - 1,
            cfg,
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Local clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Mutable clock (the OS charges kernel time here).
    pub fn clock_mut(&mut self) -> &mut Clock {
        &mut self.clock
    }

    /// Run statistics, materialized from the hot counters. For
    /// per-iteration polling prefer [`counters`](Self::counters), which
    /// is free.
    pub fn stats(&self) -> Stats {
        self.counters.to_stats()
    }

    /// Raw hot-path counters (no materialization cost).
    pub fn counters(&self) -> &CoreCounters {
        &self.counters
    }

    /// Host-side chain-efficacy tallies. Kept out of [`stats`]
    /// (see [`ChainCounters`]): they describe which host lane retired
    /// the work, not the simulated machine.
    ///
    /// [`stats`]: Self::stats
    pub fn chain_counters(&self) -> &ChainCounters {
        &self.chain
    }

    /// Reads a register (`zero` always reads 0).
    pub fn reg(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Writes a register (writes to `zero` are discarded).
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if r.index() != 0 {
            self.regs[r.index()] = v;
        }
    }

    /// Current PC.
    pub fn pc(&self) -> VirtAddr {
        self.pc
    }

    /// Redirects the PC (kernel return-address hijack, context switch).
    pub fn set_pc(&mut self, pc: VirtAddr) {
        self.pc = pc;
    }

    /// Current page-table base.
    pub fn cr3(&self) -> PhysAddr {
        self.cr3
    }

    /// Loads a new page-table base, flushing both TLBs (as a CR3 write
    /// does). The decoded-instruction cache survives: it is keyed by
    /// *physical* address and every cached page is watched in `PhysMem`,
    /// so translation changes cannot alias it and text changes bump the
    /// generation it validates against. (Clearing it here used to cost
    /// migration-heavy workloads a full re-decode per context switch.)
    pub fn set_cr3(&mut self, cr3: PhysAddr) {
        self.cr3 = cr3;
        self.itlb.flush();
        self.dtlb.flush();
        self.fetch_frame = None;
    }

    /// Flushes both TLBs without changing CR3 (mprotect shootdown). As
    /// with [`set_cr3`](Self::set_cr3) the decoded cache is untouched:
    /// permission changes are enforced by the fetch path (the fetch memo
    /// is dropped here, so the next fetch re-walks and re-checks NX),
    /// not by the PA-keyed decode memo.
    pub fn flush_tlbs(&mut self) {
        self.itlb.flush();
        self.dtlb.flush();
        self.fetch_frame = None;
    }

    /// Adds an MMU bypass hole (NxP scratchpad/debug windows, §IV-A).
    pub fn add_hole(&mut self, hole: MmuHole) {
        self.holes.push(hole);
        // Holes take priority over TLB translations, so a memoized fetch
        // translation may no longer be how this VA resolves.
        self.fetch_frame = None;
        self.last_blocks = [const { None }; FRONT_BLOCKS];
    }

    /// Captures the thread-visible CPU state.
    pub fn save_context(&self) -> CpuContext {
        CpuContext {
            regs: self.regs,
            pc: self.pc,
        }
    }

    /// Restores thread state (context switch in).
    pub fn restore_context(&mut self, ctx: &CpuContext) {
        self.regs = ctx.regs;
        self.pc = ctx.pc;
    }

    /// I-TLB miss count (for experiment decomposition).
    pub fn itlb_misses(&self) -> u64 {
        self.itlb.misses()
    }

    /// D-TLB miss count.
    pub fn dtlb_misses(&self) -> u64 {
        self.dtlb.misses()
    }

    fn requester(&self) -> Requester {
        match self.cfg.side {
            Side::Host | Side::Emu => Requester::HostCpu,
            Side::Nxp => Requester::NxpCore,
        }
    }

    fn walk_requester(&self) -> Requester {
        match self.cfg.side {
            Side::Host | Side::Emu => Requester::HostCpu,
            Side::Nxp => Requester::NxpMmu,
        }
    }

    /// Translates for data access; fills the D-TLB.
    fn translate_data(
        &mut self,
        va: VirtAddr,
        write: bool,
        mem: &PhysMem,
        env: &MemEnv,
    ) -> Result<PhysAddr, Exception> {
        // Most cores configure no holes; skip the scan outright then.
        if !self.holes.is_empty() {
            if let Some(h) = self.holes.iter().find(|h| h.contains(va)) {
                return Ok(h.translate(va));
            }
        }
        let entry = match self.dtlb.lookup(va) {
            Some(e) => e,
            None => {
                let e = self.walk_fill(va, mem, env, false)?;
                self.counters.dtlb_misses += 1;
                e
            }
        };
        if write && !entry.writable {
            return Err(Exception::DataFault { va, write: true });
        }
        Ok(entry.translate(va))
    }

    /// Walks the page tables, charging latency per level, and fills the
    /// right TLB.
    fn walk_fill(
        &mut self,
        va: VirtAddr,
        mem: &PhysMem,
        env: &MemEnv,
        exec: bool,
    ) -> Result<TlbEntry, Exception> {
        let who = self.walk_requester();
        let mut stall = self.cfg.walk_overhead;
        let result = walk(
            |pte_addr| {
                let region = env.map.classify(pte_addr);
                stall += env.latency.access(who, region, AccessKind::Read);
                mem.read_u64(pte_addr)
            },
            self.cr3,
            va,
        );
        self.clock.advance(stall);
        self.counters.walks += 1;
        match result {
            Ok(t) => {
                let entry = TlbEntry::from_translation(&t);
                if exec {
                    self.itlb.insert(entry);
                } else {
                    self.dtlb.insert(entry);
                }
                Ok(entry)
            }
            // A corrupted table (reserved-bit entry) faults exactly like
            // a missing one: real hardware raises a page fault with the
            // RSVD error-code bit, and either way the access cannot
            // complete — the task degrades to a fault, not an abort.
            Err(WalkError::NotPresent { .. } | WalkError::CorruptEntry { .. }) => {
                if exec {
                    Err(Exception::InstFault {
                        va,
                        kind: InstFaultKind::NotPresent,
                    })
                } else {
                    Err(Exception::DataFault { va, write: false })
                }
            }
        }
    }

    /// Fetch-side translation: TLB, walk, and the per-side NX
    /// convention — the heart of the migration trigger.
    fn translate_exec(
        &mut self,
        va: VirtAddr,
        mem: &PhysMem,
        env: &MemEnv,
    ) -> Result<PhysAddr, Exception> {
        // Most cores configure no holes; skip the scan outright then.
        if !self.holes.is_empty() {
            if let Some(h) = self.holes.iter().find(|h| h.contains(va)) {
                if !h.executable {
                    return Err(Exception::InstFault {
                        va,
                        kind: InstFaultKind::NotPresent,
                    });
                }
                return Ok(h.translate(va));
            }
        }
        let entry = match self.itlb.lookup(va) {
            Some(e) => e,
            None => {
                let e = self.walk_fill(va, mem, env, true)?;
                self.counters.itlb_misses += 1;
                e
            }
        };
        // Fetch NX convention: a core executes pages matching its ISA's
        // descriptor — host ISAs run NX-clear pages, accelerator ISAs
        // NX-set pages (this also covers the host-side emulator, whose
        // `cfg.isa` is the *guest* ISA and which therefore accepts NX-set
        // pages, interpreting foreign text in software). In N-way fleets
        // the PTE additionally carries an ISA tag, so an accelerator core
        // rejects NX-set text of a *different* accelerator ISA; tag 0
        // (pre-tagging images, host text, data) is accepted by any
        // NX-side core, preserving classic two-ISA behaviour. The fault
        // kind follows the page, not the core: fetching NX-set text the
        // core cannot run is the Flick migration trigger (NxViolation);
        // fetching NX-clear text is an encoding mismatch.
        let expects_nx = self.cfg.isa.descriptor().nx_text;
        let wrong_nx = entry.nx != expects_nx;
        let wrong_tag =
            entry.nx && entry.isa_tag != 0 && entry.isa_tag != self.cfg.isa.tag() + 1;
        if wrong_nx || wrong_tag {
            return Err(Exception::InstFault {
                va,
                kind: if entry.nx {
                    InstFaultKind::NxViolation
                } else {
                    InstFaultKind::IsaMismatch
                },
            });
        }
        if va.as_u64() & self.fetch_align_mask != 0 {
            return Err(Exception::InstFault {
                va,
                kind: InstFaultKind::Misaligned,
            });
        }
        Ok(entry.translate(va))
    }

    /// Charges I-cache / memory time for a fetch at `pa`.
    fn charge_fetch(&mut self, pa: PhysAddr, env: &MemEnv) {
        if !self.icache.access(pa.as_u64()) {
            self.counters.icache_misses += 1;
            let region = env.map.classify(pa);
            self.clock
                .advance(env.latency.access(self.requester(), region, AccessKind::Fetch));
        }
    }

    /// Fast-path fetch translation through the last-fetch memo. Returns
    /// `Ok(Some(pa))` only when the slow path would have taken an I-TLB
    /// MRU hit with the same entry (same page, no entry-set change) —
    /// in which case the only state the slow path would touch is private
    /// hit tallies. Alignment still depends on the PC, so it is
    /// re-checked; the I-cache charge still runs whenever the fetch
    /// moves to a different line.
    fn fetch_frame_translate(
        &mut self,
        pc: VirtAddr,
        env: &MemEnv,
    ) -> Result<Option<PhysAddr>, Exception> {
        if !self.cfg.fast_path {
            return Ok(None);
        }
        let Some(fc) = self.fetch_frame else {
            return Ok(None);
        };
        if fc.va_page != pc.page_base().as_u64() || fc.itlb_gen != self.itlb.generation() {
            return Ok(None);
        }
        if pc.as_u64() & self.fetch_align_mask != 0 {
            return Err(Exception::InstFault {
                va: pc,
                kind: InstFaultKind::Misaligned,
            });
        }
        let pa = PhysAddr(fc.pa_page | pc.page_offset());
        let line = self.icache.line_index(pa.as_u64());
        if line != fc.line {
            self.charge_fetch(pa, env);
            if let Some(fc) = &mut self.fetch_frame {
                fc.line = line;
            }
        }
        Ok(Some(pa))
    }

    /// Reads instruction bytes at the current PC, handling page-spanning
    /// instructions.
    ///
    /// Simulated-time charging (`translate_exec`, `charge_fetch`) runs
    /// unconditionally; the fast path only short-circuits the host-side
    /// byte read + decode, which are deterministic functions of the text
    /// bytes. That is why fast-path on/off cannot change simulated
    /// clocks, stats, or traces.
    fn fetch_decode(
        &mut self,
        mem: &mut PhysMem,
        env: &MemEnv,
    ) -> Result<(Inst, u64), Exception> {
        let pc = self.pc;
        let pa = match self.fetch_frame_translate(pc, env)? {
            Some(pa) => pa,
            None => {
                let pa = self.translate_exec(pc, mem, env)?;
                self.charge_fetch(pa, env);
                self.fetch_frame = if self.cfg.fast_path && self.holes.is_empty() {
                    Some(FetchFrame {
                        va_page: pc.page_base().as_u64(),
                        pa_page: pa.as_u64() & !(PAGE_SIZE - 1),
                        line: self.icache.line_index(pa.as_u64()),
                        itlb_gen: self.itlb.generation(),
                    })
                } else {
                    None
                };
                pa
            }
        };
        if self.cfg.fast_path {
            if let Some((inst, len)) = self.decoded.get(pa, mem.text_gen()) {
                return Ok((inst, len as u64));
            }
        }
        let in_page = (PAGE_SIZE - pc.page_offset()) as usize;
        let avail = in_page.min(16);
        let mut buf = [0u8; 16];
        mem.read_bytes(pa, &mut buf[..avail]);
        match self.cfg.isa.decode(&buf[..avail]) {
            Ok((inst, len)) => {
                // The decode succeeded within this page (len <= avail),
                // so it is safe to memoize; page-spanning instructions
                // take the branch below and are never cached (their
                // next-page translation and fetch charge must replay).
                if self.cfg.fast_path {
                    mem.watch_text(pa);
                    self.decoded.put(pa, inst, len as u8);
                }
                Ok((inst, len as u64))
            }
            Err(DecodeError::Truncated) if avail < 16 => {
                // Instruction spans a page boundary: fetch from the next
                // page (with full permission checks there). The extra
                // translation/charge can touch I-TLB and I-cache state
                // the fetch memo assumed stable, so drop it.
                self.fetch_frame = None;
                let next_va = VirtAddr(pc.page_base().as_u64() + PAGE_SIZE);
                let next_pa = self.translate_exec(next_va, mem, env)?;
                self.charge_fetch(next_pa, env);
                mem.read_bytes(next_pa, &mut buf[avail..]);
                match self.cfg.isa.decode(&buf) {
                    Ok((inst, len)) => Ok((inst, len as u64)),
                    Err(_) => Err(Exception::InstFault {
                        va: pc,
                        kind: InstFaultKind::Illegal,
                    }),
                }
            }
            Err(_) => Err(Exception::InstFault {
                va: pc,
                kind: InstFaultKind::Illegal,
            }),
        }
    }

    fn dcacheable(&self, region: Region) -> bool {
        match (self.cfg.side, region) {
            (Side::Host | Side::Emu, Region::HostDram) => true,
            (Side::Nxp, Region::NxpDram) => self.cfg.dcache_nxp_dram,
            _ => false,
        }
    }

    fn charge_data(&mut self, pa: PhysAddr, write: bool, env: &MemEnv) {
        let region = env.map.classify(pa);
        let kind = if write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        if self.dcacheable(region) {
            if write {
                // Write-through: always pay the memory write.
                self.clock
                    .advance(env.latency.access(self.requester(), region, kind));
                self.dcache.access(pa.as_u64());
            } else if !self.dcache.access(pa.as_u64()) {
                self.counters.dcache_misses += 1;
                self.clock
                    .advance(env.latency.access(self.requester(), region, kind));
            }
        } else {
            self.clock
                .advance(env.latency.access(self.requester(), region, kind));
        }
    }

    /// Loads `size` bytes at `va` (zero-extended), splitting at page
    /// boundaries.
    pub fn mem_read(
        &mut self,
        va: VirtAddr,
        size: MemSize,
        mem: &PhysMem,
        env: &MemEnv,
    ) -> Result<u64, Exception> {
        self.counters.loads += 1;
        let n = size.bytes();
        let mut bytes = [0u8; 8];
        let first = (PAGE_SIZE - va.page_offset()).min(n);
        let pa = self.translate_data(va, false, mem, env)?;
        self.charge_data(pa, false, env);
        mem.read_bytes(pa, &mut bytes[..first as usize]);
        if first < n {
            let va2 = VirtAddr(va.page_base().as_u64() + PAGE_SIZE);
            let pa2 = self.translate_data(va2, false, mem, env)?;
            self.charge_data(pa2, false, env);
            mem.read_bytes(pa2, &mut bytes[first as usize..n as usize]);
        }
        Ok(u64::from_le_bytes(bytes) & mask(n))
    }

    /// Stores the low `size` bytes of `val` at `va`.
    pub fn mem_write(
        &mut self,
        va: VirtAddr,
        size: MemSize,
        val: u64,
        mem: &mut PhysMem,
        env: &MemEnv,
    ) -> Result<(), Exception> {
        self.counters.stores += 1;
        let n = size.bytes();
        let bytes = val.to_le_bytes();
        let first = (PAGE_SIZE - va.page_offset()).min(n);
        let pa = self.translate_data(va, true, mem, env)?;
        self.charge_data(pa, true, env);
        mem.write_bytes(pa, &bytes[..first as usize]);
        if first < n {
            let va2 = VirtAddr(va.page_base().as_u64() + PAGE_SIZE);
            let pa2 = self.translate_data(va2, true, mem, env)?;
            self.charge_data(pa2, true, env);
            mem.write_bytes(pa2, &bytes[first as usize..n as usize]);
        }
        Ok(())
    }

    /// Executes one instruction.
    ///
    /// # Errors
    ///
    /// `Err(stop)` when the core cannot simply continue: an `ecall`, a
    /// `halt`, or a fault (PC is then still at the faulting
    /// instruction).
    pub fn step(&mut self, mem: &mut PhysMem, env: &MemEnv) -> Result<(), StopReason> {
        let (inst, len) = match self.fetch_decode(mem, env) {
            Ok(x) => x,
            Err(e) => return Err(StopReason::Fault(e)),
        };
        let pc = self.pc;
        let next = VirtAddr(pc.as_u64() + len);
        self.counters.instructions += 1;
        let cpi = self.cfg.cpi;
        match inst {
            Inst::Alu { op, rd, rs1, rs2 } => {
                let cycles = match op {
                    AluOp::Mul => cpi.mul,
                    AluOp::Divu | AluOp::Remu => cpi.div,
                    _ => cpi.alu,
                };
                self.clock.tick(cycles);
                let v = op.eval(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
                self.pc = next;
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let cycles = match op {
                    AluOp::Mul => cpi.mul,
                    AluOp::Divu | AluOp::Remu => cpi.div,
                    _ => cpi.alu,
                };
                self.clock.tick(cycles);
                let v = op.eval(self.reg(rs1), imm as i64 as u64);
                self.set_reg(rd, v);
                self.pc = next;
            }
            Inst::Li { rd, imm } => {
                self.clock.tick(cpi.alu);
                self.set_reg(rd, imm as u64);
                self.pc = next;
            }
            Inst::LiSym { .. } => {
                // LiSym only exists pre-link; linked images contain Li.
                return Err(StopReason::Fault(Exception::InstFault {
                    va: pc,
                    kind: InstFaultKind::Illegal,
                }));
            }
            Inst::Ld { rd, base, off, size } => {
                self.clock.tick(cpi.mem);
                let va = VirtAddr(self.reg(base).wrapping_add(off as i64 as u64));
                match self.mem_read(va, size, mem, env) {
                    Ok(v) => {
                        self.set_reg(rd, v);
                        self.pc = next;
                    }
                    Err(e) => return Err(StopReason::Fault(e)),
                }
            }
            Inst::St { rs, base, off, size } => {
                self.clock.tick(cpi.mem);
                let va = VirtAddr(self.reg(base).wrapping_add(off as i64 as u64));
                let v = self.reg(rs);
                match self.mem_write(va, size, v, mem, env) {
                    Ok(()) => self.pc = next,
                    Err(e) => return Err(StopReason::Fault(e)),
                }
            }
            Inst::Branch { op, rs1, rs2, target } => {
                self.clock.tick(cpi.branch);
                let taken = op.eval(self.reg(rs1), self.reg(rs2));
                self.pc = if taken {
                    let d = rel_of(target);
                    VirtAddr((pc.as_u64() as i64 + d) as u64)
                } else {
                    next
                };
            }
            Inst::Jal { rd, target } => {
                self.clock.tick(cpi.jump);
                self.set_reg(rd, next.as_u64());
                let d = rel_of(target);
                self.pc = VirtAddr((pc.as_u64() as i64 + d) as u64);
            }
            Inst::Jalr { rd, rs1, off } => {
                self.clock.tick(cpi.jump);
                let dest = self.reg(rs1).wrapping_add(off as i64 as u64);
                self.set_reg(rd, next.as_u64());
                self.pc = VirtAddr(dest);
            }
            Inst::Ret => {
                self.clock.tick(cpi.jump);
                self.pc = VirtAddr(self.reg(abi::RA));
            }
            Inst::Ecall { service } => {
                self.clock.tick(cpi.ecall);
                self.pc = next;
                return Err(StopReason::Ecall(service));
            }
            Inst::Halt => {
                self.clock.tick(cpi.alu);
                self.pc = next;
                return Err(StopReason::Halt);
            }
            Inst::Nop => {
                self.clock.tick(cpi.alu);
                self.pc = next;
            }
        }
        Ok(())
    }

    /// Runs until a stop event or `fuel` instructions.
    pub fn run(&mut self, mem: &mut PhysMem, env: &MemEnv, fuel: u64) -> StopReason {
        if self.cfg.fast_path {
            return self.run_blocks(mem, env, fuel);
        }
        for _ in 0..fuel {
            if let Err(stop) = self.step(mem, env) {
                return stop;
            }
        }
        StopReason::OutOfFuel
    }

    /// Block-at-a-time run loop (fast path only). Executes decoded
    /// basic blocks where the per-block validation holds, and falls
    /// back to [`step`](Self::step) for everything else — cold pages,
    /// page-spanning instructions, MMU holes, pre-link text. Fuel is
    /// still charged per instruction, so `OutOfFuel` lands on exactly
    /// the same instruction as the step loop.
    fn run_blocks(&mut self, mem: &mut PhysMem, env: &MemEnv, fuel: u64) -> StopReason {
        let mut left = fuel;
        while left > 0 {
            match self.block_step(mem, env, &mut left) {
                Ok(true) => {}
                Ok(false) => {
                    // One slow-path step: raises the fault the block
                    // path declined to classify, installs the fetch
                    // memo the next block entry validates against.
                    self.chain.block_fallback_steps += 1;
                    if let Err(stop) = self.step(mem, env) {
                        return stop;
                    }
                    left -= 1;
                }
                Err(stop) => return stop,
            }
        }
        StopReason::OutOfFuel
    }

    /// Attempts one block execution at the current PC. Returns
    /// `Ok(false)` — with **zero** simulated side effects — when the
    /// per-block validation fails or no block starts here, so the
    /// caller can replay the instruction through `step` without
    /// double-charging anything.
    ///
    /// Validation is the per-instruction fetch fast path hoisted to
    /// block granularity, checked once against state that cannot change
    /// mid-block:
    /// - no MMU holes (holes shadow TLB translations);
    /// - the fetch memo covers the PC's page with a current I-TLB
    ///   generation (data-side walks fill only the D-TLB, and
    ///   flushes/CR3 loads/hole edits never happen inside `run`, so the
    ///   generation is stable until the block ends);
    /// - the PC is fetch-aligned (blocks only contain decode points
    ///   that preserve alignment, so this holds for every instruction
    ///   in the block);
    /// - the decoded block's text generation is current (any store to a
    ///   watched text frame bumps it; `exec_block` re-checks after
    ///   every store).
    fn block_step(
        &mut self,
        mem: &mut PhysMem,
        env: &MemEnv,
        left: &mut u64,
    ) -> Result<bool, StopReason> {
        if !self.holes.is_empty() {
            return Ok(false);
        }
        let Some(fc) = self.fetch_frame else {
            return Ok(false);
        };
        let pc = self.pc;
        if fc.va_page != pc.page_base().as_u64()
            || fc.itlb_gen != self.itlb.generation()
            || pc.as_u64() & self.fetch_align_mask != 0
        {
            return Ok(false);
        }
        let pa_page = fc.pa_page;
        let text_gen = mem.text_gen();
        // Lane-local working set, seeded from the front cache: every
        // front-cache block of this page and generation, keyed by start
        // offset (page and generation are lane constants, so the short
        // key suffices). Chain follows hit here with a 4-entry scan and
        // *move* the Arc out — steady-state loops do no reference
        // counting and never touch the shared baskets. Everything is
        // written back at lane exit. Stale-generation front entries are
        // dropped on the way in (the generation only grows); entries
        // for other pages stay put.
        let mut ws: [Option<(u16, Arc<DecodedBlock>)>; FRONT_BLOCKS] =
            [const { None }; FRONT_BLOCKS];
        let mut n_ws = 0;
        for e in &mut self.last_blocks {
            match e {
                Some((bpa, bgen, _))
                    if *bgen == text_gen && *bpa & !(PAGE_SIZE - 1) == pa_page =>
                {
                    let (bpa, _, b) = e.take().expect("matched entry is occupied");
                    ws[n_ws] = Some(((bpa & (PAGE_SIZE - 1)) as u16, b));
                    n_ws += 1;
                }
                Some((_, bgen, _)) if *bgen != text_gen => *e = None,
                _ => {}
            }
        }
        let mut ws_cursor = 0usize;
        let mut cur_off = pc.page_offset() as u16;
        let mut cur = match Self::ws_take(&mut ws, cur_off) {
            Some(b) => b,
            None => match self.lookup_or_build(pa_page, cur_off, text_gen, mem) {
                Some(b) => b,
                None => {
                    // Not even the first instruction decodes into a
                    // block; restore the working set and fall back.
                    self.park_front(pa_page, text_gen, ws);
                    return Ok(false);
                }
            },
        };
        let chain = self.cfg.chain;
        // The chain loop: run the current block; while its control
        // transfer lands on a statically known same-page successor and
        // the follow validation holds, continue in the lane. The
        // validation re-checks exactly what top-level dispatch would
        // have: fuel, the PC's page against the (unchanged) fetch
        // frame, the I-TLB generation, and the text generation.
        // Alignment needs no re-check — successor offsets were
        // alignment-checked at decode time. Holes cannot appear inside
        // `run`, and only the fetch frame's `line` mutates in the lane,
        // so the entry validation above still covers everything else.
        let res = 'lane: loop {
            let Some(fcv) = self.fetch_frame else {
                // The lane never drops the frame; defensive only.
                break Ok(());
            };
            match self.exec_block(&cur, &fcv, mem, env, text_gen, left) {
                Err(stop) => break Err(stop),
                Ok(completed) => {
                    if !chain || !completed {
                        break Ok(());
                    }
                }
            }
            // Follow edges until a block must execute again (`continue
            // 'lane`) or the lane ends. Iterates without an intervening
            // exec only after a spin batch, whose exit PC is a fresh
            // transfer target needing its own validation.
            loop {
                let Some(fcv) = self.fetch_frame else {
                    break 'lane Ok(());
                };
                let pc = self.pc;
                let off = pc.page_offset() as u16;
                // Which successor edge did the transfer take?
                // (succ_off entries are NO_SUCC when absent, which no
                // in-page offset equals.)
                let idx = if cur.succ_off[0] == off {
                    0
                } else if cur.succ_off[1] == off {
                    1
                } else {
                    2
                };
                if idx == 2
                    || *left == 0
                    || pc.page_base().as_u64() != fcv.va_page
                    || mem.text_gen() != text_gen
                    || self.itlb.generation() != fcv.itlb_gen
                {
                    if cur.succ_off != [NO_SUCC; 2] {
                        self.chain.chain_breaks += 1;
                    }
                    break 'lane Ok(());
                }
                if off == cur_off {
                    // Self-loop — the tightest hot loops chain to
                    // themselves; skip the working-set traffic.
                    if cur.links[idx].get().is_none() && cur.patch(idx, &cur) {
                        self.chain.chain_patches += 1;
                    }
                    self.chain.chain_hits += 1;
                    if cur.mem_free && *left >= cur.insts.len() as u64 {
                        // Spin batch: replay full iterations back to
                        // back (see `exec_block_spin` for why the
                        // per-follow validation is provably constant
                        // here), then re-validate from the exit PC.
                        let iters = self.exec_block_spin(&cur, env, left);
                        self.chain.chain_hits += iters - 1;
                        continue;
                    }
                    // Memory-touching or fuel-short self-loop: execute
                    // normally (handles faults, SMC, partial fuel).
                    continue 'lane;
                }
                let next = match Self::ws_take(&mut ws, off) {
                    Some(b) => b,
                    None => match cur.link(idx) {
                        Some(b) => b,
                        None => match self.lookup_or_build(pa_page, off, text_gen, mem) {
                            Some(b) => b,
                            None => {
                                // Successor bytes don't decode;
                                // dispatch + step will fault.
                                self.chain.chain_breaks += 1;
                                break 'lane Ok(());
                            }
                        },
                    },
                };
                if cur.links[idx].get().is_none() && cur.patch(idx, &next) {
                    self.chain.chain_patches += 1;
                }
                Self::ws_park(&mut ws, &mut ws_cursor, cur_off, cur);
                cur_off = off;
                cur = next;
                self.chain.chain_hits += 1;
                continue 'lane;
            }
        };
        Self::ws_park(&mut ws, &mut ws_cursor, cur_off, cur);
        self.park_front(pa_page, text_gen, ws);
        res.map(|()| true)
    }

    /// Takes the working-set block starting at page offset `off`.
    #[inline]
    fn ws_take(
        ws: &mut [Option<(u16, Arc<DecodedBlock>)>; FRONT_BLOCKS],
        off: u16,
    ) -> Option<Arc<DecodedBlock>> {
        ws.iter_mut()
            .find(|e| matches!(e, Some((o, _)) if *o == off))
            .and_then(|e| e.take())
            .map(|(_, b)| b)
    }

    /// Parks a block into the lane working set: an empty slot if any,
    /// else round-robin replacement.
    #[inline]
    fn ws_park(
        ws: &mut [Option<(u16, Arc<DecodedBlock>)>; FRONT_BLOCKS],
        cursor: &mut usize,
        off: u16,
        b: Arc<DecodedBlock>,
    ) {
        let slot = match ws.iter().position(|e| e.is_none()) {
            Some(s) => s,
            None => {
                let s = *cursor;
                *cursor = (*cursor + 1) % FRONT_BLOCKS;
                s
            }
        };
        ws[slot] = Some((off, b));
    }

    /// Writes a lane's working set back into the front cache: empty
    /// slots first, then round-robin replacement. Entries for other
    /// pages were left in place by the lane entry scan, so keys never
    /// duplicate.
    fn park_front(
        &mut self,
        pa_page: u64,
        text_gen: u64,
        ws: [Option<(u16, Arc<DecodedBlock>)>; FRONT_BLOCKS],
    ) {
        for (off, b) in ws.into_iter().flatten() {
            let slot = match self.last_blocks.iter().position(|e| e.is_none()) {
                Some(s) => s,
                None => {
                    let s = self.front_cursor as usize;
                    self.front_cursor = (self.front_cursor + 1) % FRONT_BLOCKS as u8;
                    s
                }
            };
            self.last_blocks[slot] = Some((pa_page | off as u64, text_gen, b));
        }
    }

    /// Resolves the decoded block starting at page offset `off` of the
    /// lane's (validated) frame: shared-cache lookup, else a fresh
    /// decode, watched and published. `None` when not even the first
    /// instruction decodes into a block.
    fn lookup_or_build(
        &mut self,
        pa_page: u64,
        off: u16,
        text_gen: u64,
        mem: &mut PhysMem,
    ) -> Option<Arc<DecodedBlock>> {
        let pa = PhysAddr(pa_page | off as u64);
        if let Some(b) = self.decoded.get_block(pa, text_gen) {
            return Some(b);
        }
        let b = Arc::new(self.build_block(pa_page, off as u64, mem)?);
        mem.watch_text(pa);
        self.decoded.put_block(pa, Arc::clone(&b));
        Some(b)
    }

    /// Decodes a (super)block starting at page offset `start_off` of
    /// frame `pa_page`: straight-line instructions, decoding *through*
    /// unconditional direct jumps/calls whose target is in the same
    /// page and fetch-aligned — the vec's order is execution order, so
    /// a hot trace replays as one block with one validation — and
    /// ending at the first conditional branch, indirect transfer, or
    /// trap, at the page boundary, or just before anything the step
    /// path must handle itself (page-spanning or undecodable bytes,
    /// pre-link `LiSym`, a next-PC that would fault the alignment
    /// check). Returns `None` when not even the first instruction
    /// qualifies.
    ///
    /// The terminator's statically known same-page successors are
    /// recorded in `succ_off` (`[taken, fall-through]` for a branch)
    /// for the chain lane to follow; offsets are PA-anchored, so the
    /// edges stay valid across CR3 scopes.
    ///
    /// Pure host work: reads text bytes without simulated charges and
    /// precomputes each instruction's CPI cycles and I-cache
    /// line-crossing flag for replay.
    fn build_block(&self, pa_page: u64, start_off: u64, mem: &PhysMem) -> Option<DecodedBlock> {
        let cpi = self.cfg.cpi;
        let align_mask = self.fetch_align_mask;
        // In-page, fetch-aligned — what a decoded transfer target must
        // satisfy for the lane to keep going without a re-walk.
        let fits = |t: i64| t >= 0 && (t as u64) < PAGE_SIZE && t as u64 & align_mask == 0;
        let mut insts = Vec::new();
        let mut off = start_off;
        let mut prev_line = 0u64;
        let mut succ = [NO_SUCC; 2];
        loop {
            let avail = ((PAGE_SIZE - off) as usize).min(16);
            let mut buf = [0u8; 16];
            mem.read_bytes(PhysAddr(pa_page | off), &mut buf[..avail]);
            // Decode failures (illegal bytes, page-spanning truncation)
            // end the block *before* the offending point; the step path
            // raises the right fault or replays the next-page charges.
            let Ok((inst, len)) = self.cfg.isa.decode(&buf[..avail]) else {
                break;
            };
            if matches!(inst, Inst::LiSym { .. }) {
                break; // pre-link text: step raises Illegal
            }
            let cycles = match inst {
                Inst::Alu { op, .. } | Inst::AluImm { op, .. } => match op {
                    AluOp::Mul => cpi.mul,
                    AluOp::Divu | AluOp::Remu => cpi.div,
                    _ => cpi.alu,
                },
                Inst::Li { .. } | Inst::Nop | Inst::Halt => cpi.alu,
                Inst::Ld { .. } | Inst::St { .. } => cpi.mem,
                Inst::Branch { .. } => cpi.branch,
                Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Ret => cpi.jump,
                Inst::Ecall { .. } => cpi.ecall,
                Inst::LiSym { .. } => unreachable!("filtered above"),
            };
            let line = self.icache.line_index(pa_page | off);
            insts.push(BlockInst {
                inst,
                off: off as u16,
                next_off: (off + len as u64) as u16,
                cycles,
                // Exactly what one `Clock::tick(cycles)` call adds.
                picos: self.clock.freq().cycles(cycles).0,
                new_line: !insts.is_empty() && line != prev_line,
            });
            prev_line = line;
            let next_off = off + len as u64;
            match inst.control_kind() {
                ControlKind::Straight => {
                    if next_off >= PAGE_SIZE || next_off & align_mask != 0 {
                        break;
                    }
                    off = next_off;
                }
                ControlKind::DirectJump(d) => {
                    let t = off as i64 + d;
                    if insts.len() < SUPERBLOCK_CAP && fits(t) {
                        // Superblock extension: keep decoding at the
                        // jump target. Backward targets re-decode bytes
                        // already in the block (natural loop unrolling),
                        // bounded by the cap.
                        off = t as u64;
                    } else {
                        if fits(t) {
                            succ[0] = t as u16;
                        }
                        break;
                    }
                }
                ControlKind::CondBranch(d) => {
                    let t = off as i64 + d;
                    if fits(t) {
                        succ[0] = t as u16;
                    }
                    if fits(next_off as i64) {
                        succ[1] = next_off as u16;
                    }
                    break;
                }
                ControlKind::Indirect | ControlKind::Trap => break,
            }
        }
        if insts.is_empty() {
            None
        } else {
            let total_cycles = insts.iter().map(|bi| bi.cycles).sum();
            let total_picos = insts.iter().map(|bi| bi.picos).sum();
            let mem_free = insts
                .iter()
                .all(|bi| !matches!(bi.inst, Inst::Ld { .. } | Inst::St { .. }));
            // Only blocks with a successor edge can ever spin; skip the
            // lowering for the rest (trap terminators, page exits).
            let spin = if mem_free && succ != [NO_SUCC; 2] {
                DecodedBlock::lower_spin(&insts)
            } else {
                Vec::new()
            };
            let fold = DecodedBlock::fold_spin(&spin, insts[0].off);
            Some(DecodedBlock {
                insts,
                total_cycles,
                total_picos,
                mem_free,
                succ_off: succ,
                links: [OnceLock::new(), OnceLock::new()],
                spin,
                fold,
            })
        }
    }

    /// Executes a validated block, charging simulated time exactly as
    /// the step loop would:
    ///
    /// - **Fetch charges** replay the memoized fetch-frame path: the
    ///   first instruction charges the I-cache iff its line differs
    ///   from the memo's `line` (the last line actually fetched); later
    ///   instructions use the precomputed `new_line` flags, which
    ///   encode the same line-change comparison. The memo's `line` is
    ///   updated on every charge, so an early exit (fault, fuel,
    ///   self-modifying store) leaves it exactly where the step loop
    ///   would have.
    /// - **Fuel** decrements per instruction, checked *before* each
    ///   one: running dry mid-block stops with the PC at the first
    ///   unexecuted instruction and none of its charges applied.
    /// - **PC** is advanced after each instruction, so a data fault on
    ///   the Nth instruction leaves the PC pointing at it, exactly like
    ///   `step`.
    /// - A **store** that bumps the text generation (self-modifying
    ///   code into any watched frame) ends the block after the store
    ///   retires; the next `block_step` misses on the stale generation
    ///   and re-decodes fresh bytes, which is precisely what the
    ///   per-instruction `DecodedCache::get` does.
    ///
    /// `Ok(true)` means the block *completed*: every instruction
    /// retired, so the PC is wherever the final transfer (or
    /// fall-through) sent it and the chain lane may consider following
    /// a successor edge. `Ok(false)` means the block was cut short
    /// (fuel, self-modified text) — the PC points mid-block and
    /// coincidental matches against successor offsets must not chain.
    fn exec_block(
        &mut self,
        block: &DecodedBlock,
        fc: &FetchFrame,
        mem: &mut PhysMem,
        env: &MemEnv,
        text_gen: u64,
        left: &mut u64,
    ) -> Result<bool, StopReason> {
        let va_page = fc.va_page;
        let pa_page = fc.pa_page;
        // The per-instruction bookkeeping — PC, fuel, retired count,
        // tick time — lives in locals so the loop keeps it in
        // registers; everything is flushed exactly once below, at every
        // kind of exit. `credit` applies the tick time with per-call
        // rounding already baked into `BlockInst::picos`, and stall
        // charges inside `charge_fetch`/`mem_read`/`mem_write` add to
        // the clock directly — addition commutes, so the flushed total
        // is bit-identical to step-at-a-time ticking.
        let mut pc = self.pc.as_u64();
        let mut fuel = *left;
        let mut first = true;
        // Fast lane: a memory-free block entered with fuel for every
        // instruction cannot exit early — ALU and control instructions
        // never fault, the fuel check cannot trip, and `ecall`/`halt`
        // terminators are always last — so every instruction retires
        // and the per-instruction retired/fuel/cycle/pico arithmetic
        // collapses into the block totals precomputed at decode time.
        // Fetch charges and architectural effects still replay per
        // instruction, in order, so the observable sequence (clock
        // stalls, stats, memo line updates) is unchanged.
        let n = block.insts.len() as u64;
        if block.mem_free && fuel >= n {
            let mut stop = None;
            for bi in &block.insts {
                let charge = if first {
                    first = false;
                    self.icache.line_index(pa_page | bi.off as u64) != fc.line
                } else {
                    bi.new_line
                };
                if charge {
                    let pa = PhysAddr(pa_page | bi.off as u64);
                    self.charge_fetch(pa, env);
                    let line = self.icache.line_index(pa.as_u64());
                    if let Some(fc) = &mut self.fetch_frame {
                        fc.line = line;
                    }
                }
                let next = va_page + bi.next_off as u64;
                match bi.inst {
                    Inst::Alu { op, rd, rs1, rs2 } => {
                        let v = op.eval(self.reg(rs1), self.reg(rs2));
                        self.set_reg(rd, v);
                        pc = next;
                    }
                    Inst::AluImm { op, rd, rs1, imm } => {
                        let v = op.eval(self.reg(rs1), imm as i64 as u64);
                        self.set_reg(rd, v);
                        pc = next;
                    }
                    Inst::Li { rd, imm } => {
                        self.set_reg(rd, imm as u64);
                        pc = next;
                    }
                    Inst::Branch { op, rs1, rs2, target } => {
                        let taken = op.eval(self.reg(rs1), self.reg(rs2));
                        pc = if taken {
                            let pc_va = va_page + bi.off as u64;
                            (pc_va as i64 + rel_of(target)) as u64
                        } else {
                            next
                        };
                    }
                    Inst::Jal { rd, target } => {
                        self.set_reg(rd, next);
                        let pc_va = va_page + bi.off as u64;
                        pc = (pc_va as i64 + rel_of(target)) as u64;
                    }
                    Inst::Jalr { rd, rs1, off } => {
                        let dest = self.reg(rs1).wrapping_add(off as i64 as u64);
                        self.set_reg(rd, next);
                        pc = dest;
                    }
                    Inst::Ret => {
                        pc = self.reg(abi::RA);
                    }
                    Inst::Ecall { service } => {
                        // Terminator: always the block's last
                        // instruction, so recording the stop (instead
                        // of breaking) changes nothing.
                        pc = next;
                        stop = Some(StopReason::Ecall(service));
                    }
                    Inst::Halt => {
                        pc = next;
                        stop = Some(StopReason::Halt);
                    }
                    Inst::Nop => {
                        pc = next;
                    }
                    Inst::Ld { .. } | Inst::St { .. } | Inst::LiSym { .. } => {
                        unreachable!("excluded from mem-free blocks at build")
                    }
                }
            }
            self.pc = VirtAddr(pc);
            *left = fuel - n;
            self.counters.instructions += n;
            self.clock.credit(block.total_cycles, Picos(block.total_picos));
            return match stop {
                None => Ok(true),
                Some(s) => Err(s),
            };
        }
        let mut retired = 0u64;
        let mut cycles = 0u64;
        let mut picos = 0u64;
        // `Ok(None)`: block ended or was cut short (fuel, self-modified
        // text) with execution simply continuing at `pc`.
        let res: Result<Option<StopReason>, Exception> = 'blk: {
            for bi in &block.insts {
                if fuel == 0 {
                    break 'blk Ok(None);
                }
                let charge = if first {
                    first = false;
                    self.icache.line_index(pa_page | bi.off as u64) != fc.line
                } else {
                    bi.new_line
                };
                if charge {
                    let pa = PhysAddr(pa_page | bi.off as u64);
                    self.charge_fetch(pa, env);
                    let line = self.icache.line_index(pa.as_u64());
                    if let Some(fc) = &mut self.fetch_frame {
                        fc.line = line;
                    }
                }
                retired += 1;
                fuel -= 1;
                cycles += bi.cycles;
                picos += bi.picos;
                let next = va_page + bi.next_off as u64;
                match bi.inst {
                    Inst::Alu { op, rd, rs1, rs2 } => {
                        let v = op.eval(self.reg(rs1), self.reg(rs2));
                        self.set_reg(rd, v);
                        pc = next;
                    }
                    Inst::AluImm { op, rd, rs1, imm } => {
                        let v = op.eval(self.reg(rs1), imm as i64 as u64);
                        self.set_reg(rd, v);
                        pc = next;
                    }
                    Inst::Li { rd, imm } => {
                        self.set_reg(rd, imm as u64);
                        pc = next;
                    }
                    Inst::Ld { rd, base, off, size } => {
                        let va = VirtAddr(self.reg(base).wrapping_add(off as i64 as u64));
                        match self.mem_read(va, size, mem, env) {
                            Ok(v) => {
                                self.set_reg(rd, v);
                                pc = next;
                            }
                            // `pc` still points at this instruction.
                            Err(e) => break 'blk Err(e),
                        }
                    }
                    Inst::St { rs, base, off, size } => {
                        let va = VirtAddr(self.reg(base).wrapping_add(off as i64 as u64));
                        let v = self.reg(rs);
                        match self.mem_write(va, size, v, mem, env) {
                            Ok(()) => pc = next,
                            Err(e) => break 'blk Err(e),
                        }
                        if mem.text_gen() != text_gen {
                            // Self-modifying text: the rest of this
                            // block may be stale. Stop here; the next
                            // block_step re-decodes under the new
                            // generation.
                            break 'blk Ok(None);
                        }
                    }
                    Inst::Branch { op, rs1, rs2, target } => {
                        let taken = op.eval(self.reg(rs1), self.reg(rs2));
                        pc = if taken {
                            let pc_va = va_page + bi.off as u64;
                            (pc_va as i64 + rel_of(target)) as u64
                        } else {
                            next
                        };
                    }
                    Inst::Jal { rd, target } => {
                        self.set_reg(rd, next);
                        let pc_va = va_page + bi.off as u64;
                        pc = (pc_va as i64 + rel_of(target)) as u64;
                    }
                    Inst::Jalr { rd, rs1, off } => {
                        let dest = self.reg(rs1).wrapping_add(off as i64 as u64);
                        self.set_reg(rd, next);
                        pc = dest;
                    }
                    Inst::Ret => {
                        pc = self.reg(abi::RA);
                    }
                    Inst::Ecall { service } => {
                        pc = next;
                        break 'blk Ok(Some(StopReason::Ecall(service)));
                    }
                    Inst::Halt => {
                        pc = next;
                        break 'blk Ok(Some(StopReason::Halt));
                    }
                    Inst::Nop => {
                        pc = next;
                    }
                    Inst::LiSym { .. } => {
                        // build_block never includes LiSym; mirror
                        // `step`'s fault anyway so the arm is total.
                        debug_assert!(false, "LiSym inside a decoded block");
                        break 'blk Err(Exception::InstFault {
                            va: VirtAddr(va_page + bi.off as u64),
                            kind: InstFaultKind::Illegal,
                        });
                    }
                }
            }
            Ok(None)
        };
        self.pc = VirtAddr(pc);
        *left = fuel;
        self.counters.instructions += retired;
        self.clock.credit(cycles, Picos(picos));
        match res {
            Ok(None) => Ok(retired == n),
            Ok(Some(stop)) => Err(stop),
            Err(e) => Err(StopReason::Fault(e)),
        }
    }

    /// Replays a validated, memory-free self-loop block — the hottest
    /// shape there is — for as many *full* iterations as fuel allows
    /// without leaving the function between follows. Correctness leans
    /// on `mem_free`: no loads or stores means no data walks, no
    /// faults, and no way to bump the text or I-TLB generations
    /// mid-batch, so the per-follow validation the chain loop normally
    /// re-runs is provably constant and the only live exit conditions
    /// are the loop transfer leaving the block start and fuel.
    /// Per-instruction effects (register writes, PC, I-cache line
    /// charges) still replay in order; only the accounting is batched,
    /// flushed once by multiplying the pre-rounded per-iteration
    /// totals — bit-identical to per-iteration crediting because each
    /// summand already carries `Clock::tick`'s rounding.
    ///
    /// A trap or indirect terminator never carries a successor edge, so
    /// a self-chained block can only end in a conditional branch or
    /// direct jump; `Ecall`/`Halt` (and, via `mem_free`, loads and
    /// stores) are structurally absent.
    ///
    /// Returns the number of iterations executed (≥ 1; the caller
    /// checked fuel covers one). The caller re-validates the exit PC.
    fn exec_block_spin(&mut self, block: &DecodedBlock, env: &MemEnv, left: &mut u64) -> u64 {
        let Some(fc) = self.fetch_frame else {
            unreachable!("spin is entered from a validated lane");
        };
        let va_page = fc.va_page;
        let pa_page = fc.pa_page;
        let start = self.pc.as_u64();
        let mut cur_line = fc.line;
        let mut pc = start;
        let mut fuel = *left;
        let n = block.insts.len() as u64;
        let mut iters = 0u64;
        // Charge-free tier: when no instruction inside the block starts
        // a new I-cache line and the block's first line is the memoized
        // one, an iteration performs *zero* I-cache charges — and since
        // charges are the only thing that can move `cur_line`, that
        // holds for every subsequent iteration too. The loop body then
        // shrinks to pure architectural effects, executed from the
        // block's pre-lowered micro-ops ([`SpinOp`]): one jump table
        // per instruction, bounds-check-free register-file indexing,
        // pre-resolved branch displacements. The register file moves
        // into a local array for the duration (no aliasing with `self`,
        // so nothing reloads across instructions); `r0` stays zero
        // because lowering turned every write to it into a `Nop` (the
        // `Jalr` link is the one runtime discard left). The simulated
        // machine sees the identical hit sequence the careful tier
        // would have replayed (all hits, all free).
        if !block.spin.is_empty()
            && block.insts.iter().all(|bi| !bi.new_line)
            && self.icache.line_index(pa_page | block.insts[0].off as u64) == cur_line
        {
            // Affine fold: when the loop has a closed form (see
            // [`SpinFold`]), the whole run of iterations collapses to
            // O(1) — trip count solved from the counter's entry value,
            // each register bumped by `delta × iters`, and the same
            // batched accounting flush the iterating tiers do. `iters`
            // is clamped so the accounting multiplications cannot
            // overflow; a clamped entry exits with `pc` still at the
            // block start and the caller simply re-enters.
            if let Some(f) = &block.fold {
                let t_fuel = fuel / n;
                let t_cond = match f.kind {
                    SpinFoldKind::Never => u64::MAX,
                    SpinFoldKind::Down => match self.regs[f.counter as usize & 31] {
                        0 => u64::MAX,
                        v => v,
                    },
                    SpinFoldKind::Up => match self.regs[f.counter as usize & 31] {
                        0 => u64::MAX,
                        v => v.wrapping_neg(),
                    },
                };
                let cap = (u64::MAX / block.total_picos.max(1))
                    .min(u64::MAX / block.total_cycles.max(1))
                    .max(1);
                let iters = t_cond.min(t_fuel).min(cap);
                for &(r, d) in &f.deltas {
                    let i = r as usize & 31;
                    self.regs[i] = self.regs[i].wrapping_add(d.wrapping_mul(iters));
                }
                let cond_exit = iters == t_cond && !matches!(f.kind, SpinFoldKind::Never);
                self.pc = VirtAddr(if cond_exit {
                    va_page + f.next as u64
                } else {
                    start
                });
                *left = fuel - iters * n;
                self.counters.instructions += iters * n;
                self.clock
                    .credit(iters * block.total_cycles, Picos(iters * block.total_picos));
                return iters;
            }
            let mut lr = self.regs;
            let take = |b: &SpinBranch, cond: bool| -> u64 {
                if cond {
                    (va_page as i64 + b.taken) as u64
                } else {
                    va_page + b.next as u64
                }
            };
            loop {
                for op in &block.spin {
                    match *op {
                        SpinOp::AddImm { rd, rs1, imm } => {
                            lr[rd as usize & 31] = lr[rs1 as usize & 31].wrapping_add(imm);
                        }
                        SpinOp::Add { rd, rs1, rs2 } => {
                            lr[rd as usize & 31] =
                                lr[rs1 as usize & 31].wrapping_add(lr[rs2 as usize & 31]);
                        }
                        SpinOp::Alu { op, rd, rs1, rs2 } => {
                            lr[rd as usize & 31] =
                                op.eval(lr[rs1 as usize & 31], lr[rs2 as usize & 31]);
                        }
                        SpinOp::AluImm { op, rd, rs1, imm } => {
                            lr[rd as usize & 31] = op.eval(lr[rs1 as usize & 31], imm);
                        }
                        SpinOp::Li { rd, imm } => {
                            lr[rd as usize & 31] = imm;
                        }
                        SpinOp::Beq(ref b) => {
                            pc = take(b, lr[b.rs1 as usize & 31] == lr[b.rs2 as usize & 31]);
                        }
                        SpinOp::Bne(ref b) => {
                            pc = take(b, lr[b.rs1 as usize & 31] != lr[b.rs2 as usize & 31]);
                        }
                        SpinOp::Blt(ref b) => {
                            pc = take(
                                b,
                                (lr[b.rs1 as usize & 31] as i64) < (lr[b.rs2 as usize & 31] as i64),
                            );
                        }
                        SpinOp::Bge(ref b) => {
                            pc = take(
                                b,
                                (lr[b.rs1 as usize & 31] as i64)
                                    >= (lr[b.rs2 as usize & 31] as i64),
                            );
                        }
                        SpinOp::Bltu(ref b) => {
                            pc = take(b, lr[b.rs1 as usize & 31] < lr[b.rs2 as usize & 31]);
                        }
                        SpinOp::Bgeu(ref b) => {
                            pc = take(b, lr[b.rs1 as usize & 31] >= lr[b.rs2 as usize & 31]);
                        }
                        SpinOp::Jal { rd, taken, next } => {
                            lr[rd as usize & 31] = va_page + next as u64;
                            pc = (va_page as i64 + taken) as u64;
                        }
                        SpinOp::Jmp { taken } => {
                            pc = (va_page as i64 + taken) as u64;
                        }
                        SpinOp::Jalr { rd, rs1, off, next } => {
                            let dest = lr[rs1 as usize & 31].wrapping_add(off);
                            lr[rd as usize & 31] = va_page + next as u64;
                            lr[0] = 0;
                            pc = dest;
                        }
                        SpinOp::Ret => {
                            pc = lr[abi::RA.index()];
                        }
                        SpinOp::Nop => {}
                    }
                }
                iters += 1;
                fuel -= n;
                if pc != start || fuel < n {
                    break;
                }
            }
            self.regs = lr;
            self.pc = VirtAddr(pc);
            *left = fuel;
            self.counters.instructions += iters * n;
            self.clock
                .credit(iters * block.total_cycles, Picos(iters * block.total_picos));
            return iters;
        }
        loop {
            let mut first = true;
            for bi in &block.insts {
                let charge = if first {
                    first = false;
                    self.icache.line_index(pa_page | bi.off as u64) != cur_line
                } else {
                    bi.new_line
                };
                if charge {
                    let pa = PhysAddr(pa_page | bi.off as u64);
                    self.charge_fetch(pa, env);
                    cur_line = self.icache.line_index(pa.as_u64());
                }
                let next = va_page + bi.next_off as u64;
                match bi.inst {
                    Inst::Alu { op, rd, rs1, rs2 } => {
                        let v = op.eval(self.reg(rs1), self.reg(rs2));
                        self.set_reg(rd, v);
                        pc = next;
                    }
                    Inst::AluImm { op, rd, rs1, imm } => {
                        let v = op.eval(self.reg(rs1), imm as i64 as u64);
                        self.set_reg(rd, v);
                        pc = next;
                    }
                    Inst::Li { rd, imm } => {
                        self.set_reg(rd, imm as u64);
                        pc = next;
                    }
                    Inst::Branch { op, rs1, rs2, target } => {
                        let taken = op.eval(self.reg(rs1), self.reg(rs2));
                        pc = if taken {
                            let pc_va = va_page + bi.off as u64;
                            (pc_va as i64 + rel_of(target)) as u64
                        } else {
                            next
                        };
                    }
                    Inst::Jal { rd, target } => {
                        self.set_reg(rd, next);
                        let pc_va = va_page + bi.off as u64;
                        pc = (pc_va as i64 + rel_of(target)) as u64;
                    }
                    Inst::Jalr { rd, rs1, off } => {
                        let dest = self.reg(rs1).wrapping_add(off as i64 as u64);
                        self.set_reg(rd, next);
                        pc = dest;
                    }
                    Inst::Ret => {
                        pc = self.reg(abi::RA);
                    }
                    Inst::Nop => {
                        pc = next;
                    }
                    Inst::Ecall { .. } | Inst::Halt => {
                        unreachable!("trap terminator cannot carry a successor edge")
                    }
                    Inst::Ld { .. } | Inst::St { .. } | Inst::LiSym { .. } => {
                        unreachable!("excluded from mem-free blocks at build")
                    }
                }
            }
            iters += 1;
            fuel -= n;
            if pc != start || fuel < n {
                break;
            }
        }
        self.pc = VirtAddr(pc);
        *left = fuel;
        self.counters.instructions += iters * n;
        self.clock
            .credit(iters * block.total_cycles, Picos(iters * block.total_picos));
        if let Some(fc) = &mut self.fetch_frame {
            fc.line = cur_line;
        }
        iters
    }
}

fn rel_of(t: Target) -> i64 {
    match t {
        Target::Rel(d) => d,
        // Labels/symbols never reach execution: encoders resolve labels
        // and the linker resolves symbols.
        Target::Label(_) | Target::Symbol(_) => {
            unreachable!("unresolved target reached execution")
        }
    }
}

fn mask(n: u64) -> u64 {
    if n >= 8 {
        u64::MAX
    } else {
        (1u64 << (n * 8)) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_isa::{FuncBuilder, TargetIsa};
    use flick_paging::{flags, AddressSpace, BumpFrameAlloc};

    /// Builds a machine-less test fixture: physical memory, page tables
    /// identity-mapping the low 16 MiB, and a core of the given side.
    struct Fixture {
        mem: PhysMem,
        env: MemEnv,
        core: Core,
        aspace: AddressSpace,
    }

    fn fixture(cfg: CoreConfig) -> Fixture {
        let mut mem = PhysMem::new();
        let mut alloc = BumpFrameAlloc::new(PhysAddr(0x100_0000), PhysAddr(0x200_0000));
        let mut aspace = AddressSpace::new(&mut mem, &mut alloc);
        // Identity-map low 16 MiB with 4 KiB pages (so per-page
        // mprotect works), writable, executable (NX clear).
        aspace
            .map_range(
                &mut mem,
                &mut alloc,
                VirtAddr(0),
                PhysAddr(0),
                16 << 20,
                flags::PRESENT | flags::WRITABLE | flags::USER,
            )
            .unwrap();
        let mut core = Core::new(cfg);
        core.set_cr3(aspace.cr3());
        Fixture {
            mem,
            env: MemEnv::paper_default(),
            core,
            aspace,
        }
    }

    fn load_host_prog(fx: &mut Fixture, build: impl FnOnce(&mut FuncBuilder)) {
        let mut f = FuncBuilder::new("main", TargetIsa::Host);
        build(&mut f);
        let enc = Isa::X64.encode(&f.finish()).unwrap();
        fx.mem.write_bytes(PhysAddr(0x40_0000), &enc.bytes);
        fx.core.set_pc(VirtAddr(0x40_0000));
    }

    #[test]
    fn arithmetic_program_runs() {
        let mut fx = fixture(CoreConfig::host());
        load_host_prog(&mut fx, |f| {
            f.li(abi::A0, 6);
            f.li(abi::A1, 7);
            f.mul(abi::A0, abi::A0, abi::A1);
            f.halt();
        });
        let stop = fx.core.run(&mut fx.mem, &fx.env, 100);
        assert_eq!(stop, StopReason::Halt);
        assert_eq!(fx.core.reg(abi::A0), 42);
        assert_eq!(fx.core.stats().get("instructions"), 4);
    }

    #[test]
    fn loads_and_stores_round_trip() {
        let mut fx = fixture(CoreConfig::host());
        load_host_prog(&mut fx, |f| {
            f.li(abi::A1, 0x50_0000);
            f.li(abi::A0, 0xDEAD_BEEF);
            f.st(abi::A0, abi::A1, 8, MemSize::B8);
            f.ld(abi::A2, abi::A1, 8, MemSize::B4);
            f.halt();
        });
        assert_eq!(fx.core.run(&mut fx.mem, &fx.env, 100), StopReason::Halt);
        assert_eq!(fx.core.reg(abi::A2), 0xDEAD_BEEF);
        assert_eq!(fx.mem.read_u64(PhysAddr(0x50_0008)), 0xDEAD_BEEF);
    }

    #[test]
    fn call_and_return() {
        // main calls f, f returns 5.
        let mut main = FuncBuilder::new("main", TargetIsa::Host);
        main.call("f");
        main.halt();
        let mut f = FuncBuilder::new("f", TargetIsa::Host);
        f.li(abi::A0, 5);
        f.ret();
        let obj = flick_toolchain_compile(vec![main.finish(), f.finish()]);
        let mut fx = fixture(CoreConfig::host());
        fx.mem.write_bytes(PhysAddr(0x40_0000), &obj);
        fx.core.set_pc(VirtAddr(0x40_0000));
        fx.core.set_reg(abi::SP, 0xF0_0000);
        assert_eq!(fx.core.run(&mut fx.mem, &fx.env, 100), StopReason::Halt);
        assert_eq!(fx.core.reg(abi::A0), 5);
    }

    /// Minimal "link": encode funcs back to back at 0x40_0000 with
    /// rel32 call patching (avoids a dev-dependency cycle on the real
    /// toolchain crate).
    fn flick_toolchain_compile(funcs: Vec<flick_isa::Func>) -> Vec<u8> {
        let mut offsets = std::collections::HashMap::new();
        let mut bytes = Vec::new();
        let mut encs = Vec::new();
        for f in &funcs {
            let enc = Isa::X64.encode(f).unwrap();
            offsets.insert(f.name.clone(), bytes.len() as u32);
            bytes.extend_from_slice(&enc.bytes);
            encs.push(enc);
        }
        let mut cursor = 0usize;
        for (f, enc) in funcs.iter().zip(&encs) {
            for r in &enc.relocs {
                let target = offsets[f.symbol_name(
                    // find index by name
                    f.symbols.iter().position(|s| *s == r.symbol).unwrap() as u32,
                )];
                let disp = target as i64 - (cursor as i64 + r.inst_start as i64);
                let at = cursor + r.field_at as usize;
                bytes[at..at + 4].copy_from_slice(&(disp as i32).to_le_bytes());
            }
            cursor += enc.bytes.len();
        }
        bytes
    }

    #[test]
    fn ecall_stops_and_resumes() {
        let mut fx = fixture(CoreConfig::host());
        load_host_prog(&mut fx, |f| {
            f.li(abi::A0, 1);
            f.ecall(9);
            f.addi(abi::A0, abi::A0, 1);
            f.halt();
        });
        assert_eq!(fx.core.run(&mut fx.mem, &fx.env, 100), StopReason::Ecall(9));
        // Kernel "handles" the call, e.g. doubling a0.
        let v = fx.core.reg(abi::A0);
        fx.core.set_reg(abi::A0, v * 10);
        assert_eq!(fx.core.run(&mut fx.mem, &fx.env, 100), StopReason::Halt);
        assert_eq!(fx.core.reg(abi::A0), 11);
    }

    #[test]
    fn host_nx_fetch_faults_with_target_address() {
        let mut fx = fixture(CoreConfig::host());
        // Map an NX page at 0x80_0000 (the "NxP function" page).
        fx.aspace
            .protect(&mut fx.mem, VirtAddr(0x80_0000), 0x1000, flags::NX, 0)
            .unwrap();
        fx.core.flush_tlbs();
        load_host_prog(&mut fx, |f| {
            f.li(abi::T0, 0x80_0000);
            f.call_reg(abi::T0);
            f.halt();
        });
        fx.core.set_reg(abi::SP, 0xF0_0000);
        let stop = fx.core.run(&mut fx.mem, &fx.env, 100);
        assert_eq!(
            stop,
            StopReason::Fault(Exception::InstFault {
                va: VirtAddr(0x80_0000),
                kind: InstFaultKind::NxViolation,
            })
        );
        // The return address was linked before the fault: the hijack
        // point the kernel relies on.
        assert_ne!(fx.core.reg(abi::RA), 0);
    }

    #[test]
    fn nxp_fetch_from_host_page_faults_isa_mismatch() {
        let mut fx = fixture(CoreConfig::nxp());
        // All pages have NX clear → any fetch is an ISA mismatch for
        // the NxP (inverted convention).
        fx.core.set_pc(VirtAddr(0x40_0000));
        let stop = fx.core.run(&mut fx.mem, &fx.env, 10);
        assert_eq!(
            stop,
            StopReason::Fault(Exception::InstFault {
                va: VirtAddr(0x40_0000),
                kind: InstFaultKind::IsaMismatch,
            })
        );
    }

    #[test]
    fn nxp_runs_code_from_nx_page() {
        let mut fx = fixture(CoreConfig::nxp());
        fx.aspace
            .protect(&mut fx.mem, VirtAddr(0x40_0000), 0x1000, flags::NX, 0)
            .unwrap();
        fx.core.flush_tlbs();
        let mut f = FuncBuilder::new("w", TargetIsa::Nxp);
        f.li(abi::A0, 3);
        f.addi(abi::A0, abi::A0, 4);
        f.halt();
        let enc = Isa::Rv64.encode(&f.finish()).unwrap();
        fx.mem.write_bytes(PhysAddr(0x40_0000), &enc.bytes);
        fx.core.set_pc(VirtAddr(0x40_0000));
        assert_eq!(fx.core.run(&mut fx.mem, &fx.env, 100), StopReason::Halt);
        assert_eq!(fx.core.reg(abi::A0), 7);
    }

    #[test]
    fn emulator_core_runs_nx_pages_and_bounces_off_host_text() {
        // The degraded-mode interpreter accepts NX-set (NxP) text...
        let mut fx = fixture(CoreConfig::host_emulator());
        fx.aspace
            .protect(&mut fx.mem, VirtAddr(0x40_0000), 0x1000, flags::NX, 0)
            .unwrap();
        fx.core.flush_tlbs();
        let mut f = FuncBuilder::new("w", TargetIsa::Nxp);
        f.li(abi::A0, 21);
        f.addi(abi::A0, abi::A0, 21);
        f.halt();
        let enc = Isa::Rv64.encode(&f.finish()).unwrap();
        fx.mem.write_bytes(PhysAddr(0x40_0000), &enc.bytes);
        fx.core.set_pc(VirtAddr(0x40_0000));
        assert_eq!(fx.core.run(&mut fx.mem, &fx.env, 100), StopReason::Halt);
        assert_eq!(fx.core.reg(abi::A0), 42);
        // ...and faults with IsaMismatch on NX-clear (host) pages, the
        // signal that hands control back to the native host core.
        fx.core.set_pc(VirtAddr(0x50_0000));
        let stop = fx.core.run(&mut fx.mem, &fx.env, 10);
        assert_eq!(
            stop,
            StopReason::Fault(Exception::InstFault {
                va: VirtAddr(0x50_0000),
                kind: InstFaultKind::IsaMismatch,
            })
        );
    }

    #[test]
    fn nxp_misaligned_fetch_faults() {
        let mut fx = fixture(CoreConfig::nxp());
        fx.aspace
            .protect(&mut fx.mem, VirtAddr(0x40_0000), 0x1000, flags::NX, 0)
            .unwrap();
        fx.core.set_pc(VirtAddr(0x40_0004)); // NX page, but odd entry
        let stop = fx.core.run(&mut fx.mem, &fx.env, 10);
        assert_eq!(
            stop,
            StopReason::Fault(Exception::InstFault {
                va: VirtAddr(0x40_0004),
                kind: InstFaultKind::Misaligned,
            })
        );
    }

    #[test]
    fn nxp_illegal_decode_faults() {
        let mut fx = fixture(CoreConfig::nxp());
        fx.aspace
            .protect(&mut fx.mem, VirtAddr(0x40_0000), 0x1000, flags::NX, 0)
            .unwrap();
        // Write x64-looking bytes (opcode 0xBA) at an aligned address.
        fx.mem.write_bytes(PhysAddr(0x40_0000), &[0xBA; 16]);
        fx.core.set_pc(VirtAddr(0x40_0000));
        let stop = fx.core.run(&mut fx.mem, &fx.env, 10);
        assert_eq!(
            stop,
            StopReason::Fault(Exception::InstFault {
                va: VirtAddr(0x40_0000),
                kind: InstFaultKind::Illegal,
            })
        );
    }

    #[test]
    fn unmapped_data_access_faults() {
        let mut fx = fixture(CoreConfig::host());
        load_host_prog(&mut fx, |f| {
            f.li(abi::A1, 0x7000_0000_0000u64 as i64);
            f.ld(abi::A0, abi::A1, 0, MemSize::B8);
            f.halt();
        });
        let stop = fx.core.run(&mut fx.mem, &fx.env, 10);
        assert_eq!(
            stop,
            StopReason::Fault(Exception::DataFault {
                va: VirtAddr(0x7000_0000_0000),
                write: false,
            })
        );
    }

    #[test]
    fn write_to_readonly_page_faults() {
        let mut fx = fixture(CoreConfig::host());
        fx.aspace
            .protect(&mut fx.mem, VirtAddr(0x60_0000), 0x1000, 0, flags::WRITABLE)
            .unwrap();
        fx.core.flush_tlbs();
        load_host_prog(&mut fx, |f| {
            f.li(abi::A1, 0x60_0000);
            f.st(abi::A0, abi::A1, 0, MemSize::B8);
            f.halt();
        });
        let stop = fx.core.run(&mut fx.mem, &fx.env, 10);
        assert_eq!(
            stop,
            StopReason::Fault(Exception::DataFault {
                va: VirtAddr(0x60_0000),
                write: true,
            })
        );
    }

    #[test]
    fn nxp_time_advances_slower_core() {
        let mut host_fx = fixture(CoreConfig::host());
        let mut nxp_fx = fixture(CoreConfig::nxp());
        // Same logical program for both ISAs.
        let prog = |target| {
            let mut f = FuncBuilder::new("m", target);
            for _ in 0..100 {
                f.addi(abi::A0, abi::A0, 1);
            }
            f.halt();
            f.finish()
        };
        let x = Isa::X64.encode(&prog(TargetIsa::Host)).unwrap();
        host_fx.mem.write_bytes(PhysAddr(0x40_0000), &x.bytes);
        host_fx.core.set_pc(VirtAddr(0x40_0000));
        host_fx.core.run(&mut host_fx.mem, &host_fx.env, 1000);

        let rv = Isa::Rv64.encode(&prog(TargetIsa::Nxp)).unwrap();
        nxp_fx
            .aspace
            .protect(&mut nxp_fx.mem, VirtAddr(0x40_0000), 0x2000, flags::NX, 0)
            .unwrap();
        nxp_fx.mem.write_bytes(PhysAddr(0x40_0000), &rv.bytes);
        nxp_fx.core.set_pc(VirtAddr(0x40_0000));
        nxp_fx.core.run(&mut nxp_fx.mem, &nxp_fx.env, 1000);

        assert_eq!(host_fx.core.reg(abi::A0), 100);
        assert_eq!(nxp_fx.core.reg(abi::A0), 100);
        assert!(
            nxp_fx.core.clock().now() > host_fx.core.clock().now() * 5,
            "200 MHz in-order core must be much slower: {} vs {}",
            nxp_fx.core.clock().now(),
            host_fx.core.clock().now()
        );
    }

    #[test]
    fn tlb_miss_charges_walk_latency() {
        let mut fx = fixture(CoreConfig::nxp());
        fx.aspace
            .protect(&mut fx.mem, VirtAddr(0x40_0000), 0x1000, flags::NX, 0)
            .unwrap();
        let mut f = FuncBuilder::new("w", TargetIsa::Nxp);
        f.li(abi::A1, 0x50_0000);
        f.ld(abi::A0, abi::A1, 0, MemSize::B8);
        f.halt();
        let enc = Isa::Rv64.encode(&f.finish()).unwrap();
        fx.mem.write_bytes(PhysAddr(0x40_0000), &enc.bytes);
        fx.core.set_pc(VirtAddr(0x40_0000));
        fx.core.run(&mut fx.mem, &fx.env, 100);
        // One I-TLB miss + one D-TLB miss, each a 3-level walk (2 MiB
        // pages) over PCIe at 850ns/level plus firmware overhead.
        assert_eq!(fx.core.stats().get("itlb_misses"), 1);
        assert_eq!(fx.core.stats().get("dtlb_misses"), 1);
        let wall = fx.core.clock().now();
        assert!(
            wall > Picos::from_nanos(2 * (3 * 850 + 150)),
            "walks dominate: {wall}"
        );
    }

    #[test]
    fn mmu_hole_bypasses_walk() {
        let mut fx = fixture(CoreConfig::nxp());
        fx.aspace
            .protect(&mut fx.mem, VirtAddr(0x40_0000), 0x1000, flags::NX, 0)
            .unwrap();
        fx.core.add_hole(MmuHole {
            va_base: VirtAddr(0x9000_0000_0000),
            size: 1 << 20,
            pa_base: PhysAddr(0x9000_0000), // NxP SRAM via BAR1
            executable: false,
        });
        let mut f = FuncBuilder::new("w", TargetIsa::Nxp);
        f.li(abi::A1, 0x9000_0000_0000u64 as i64);
        f.li(abi::A0, 77);
        f.st(abi::A0, abi::A1, 0, MemSize::B8);
        f.ld(abi::A2, abi::A1, 0, MemSize::B8);
        f.halt();
        let enc = Isa::Rv64.encode(&f.finish()).unwrap();
        fx.mem.write_bytes(PhysAddr(0x40_0000), &enc.bytes);
        fx.core.set_pc(VirtAddr(0x40_0000));
        assert_eq!(fx.core.run(&mut fx.mem, &fx.env, 100), StopReason::Halt);
        assert_eq!(fx.core.reg(abi::A2), 77);
        assert_eq!(fx.core.stats().get("dtlb_misses"), 0, "hole bypasses TLB");
    }

    #[test]
    fn context_save_restore_round_trips() {
        let mut core = Core::new(CoreConfig::host());
        core.set_reg(abi::A0, 123);
        core.set_pc(VirtAddr(0x1000));
        let ctx = core.save_context();
        core.set_reg(abi::A0, 0);
        core.set_pc(VirtAddr::NULL);
        core.restore_context(&ctx);
        assert_eq!(core.reg(abi::A0), 123);
        assert_eq!(core.pc(), VirtAddr(0x1000));
    }

    #[test]
    fn zero_register_is_hardwired() {
        let mut core = Core::new(CoreConfig::nxp());
        core.set_reg(abi::ZERO, 999);
        assert_eq!(core.reg(abi::ZERO), 0);
    }

    #[test]
    fn page_spanning_host_instruction_decodes() {
        let mut fx = fixture(CoreConfig::host());
        // Place a 10-byte `li` so it straddles a page boundary.
        let mut f = FuncBuilder::new("m", TargetIsa::Host);
        f.li(abi::A0, 0x0102_0304_0506_0708);
        f.halt();
        let enc = Isa::X64.encode(&f.finish()).unwrap();
        let start = 0x40_1000 - 4; // 10-byte inst crosses into next page
        fx.mem.write_bytes(PhysAddr(start), &enc.bytes);
        fx.core.set_pc(VirtAddr(start));
        assert_eq!(fx.core.run(&mut fx.mem, &fx.env, 10), StopReason::Halt);
        assert_eq!(fx.core.reg(abi::A0), 0x0102_0304_0506_0708);
    }

    #[test]
    fn cr3_switch_flushes_tlbs() {
        let mut fx = fixture(CoreConfig::host());
        load_host_prog(&mut fx, |f| {
            f.li(abi::A1, 0x50_0000);
            f.ld(abi::A0, abi::A1, 0, MemSize::B8);
            f.halt();
        });
        fx.core.run(&mut fx.mem, &fx.env, 100);
        let misses_before = fx.core.dtlb_misses();
        let cr3 = fx.core.cr3();
        fx.core.set_cr3(cr3); // reload same root — still flushes
        fx.core.set_pc(VirtAddr(0x40_0000));
        fx.core.run(&mut fx.mem, &fx.env, 100);
        assert!(fx.core.dtlb_misses() > misses_before);
    }
}
