//! Small direct-mapped caches (I-cache and D-cache).
//!
//! The paper's NxP keeps its `.text` in *host* memory and "\[relies\] on
//! the I-cache of the NxP core to minimize access latency" (§III-D);
//! its D-cache can only cover NxP-local regions because PCIe offers no
//! coherence. A direct-mapped tag array captures both effects.

/// Cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total size in bytes.
    pub size: u64,
    /// Line size in bytes (power of two).
    pub line: u64,
}

impl CacheConfig {
    /// A 32 KiB, 64-byte-line cache (host L1-ish).
    pub fn host_l1() -> Self {
        CacheConfig {
            size: 32 << 10,
            line: 64,
        }
    }

    /// A 16 KiB, 64-byte-line cache (NxP BRAM cache).
    pub fn nxp() -> Self {
        CacheConfig {
            size: 16 << 10,
            line: 64,
        }
    }
}

/// A direct-mapped tag-only cache model.
///
/// Tracks hits/misses; data always lives in [`flick_mem::PhysMem`], so
/// the cache influences *timing* only — which is all the experiments
/// need.
///
/// # Examples
///
/// ```
/// use flick_cpu::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig { size: 128, line: 64 });
/// assert!(!c.access(0));   // cold miss
/// assert!(c.access(63));   // same line
/// assert!(!c.access(64));  // next line
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    tags: Vec<Option<u64>>,
    /// `log2(line)` — line and set math use shifts/masks instead of the
    /// two u64 divisions, which sit on the per-instruction fetch path.
    line_shift: u32,
    /// `sets - 1` (sets is a power of two).
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics unless `size` is a multiple of `line` and both are powers
    /// of two.
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line.is_power_of_two() && cfg.size.is_power_of_two());
        assert!(cfg.size >= cfg.line);
        let sets = (cfg.size / cfg.line) as usize;
        Cache {
            cfg,
            tags: vec![None; sets],
            line_shift: cfg.line.trailing_zeros(),
            set_mask: sets as u64 - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `addr`, filling the line on miss. Returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        if self.tags[set] == Some(line) {
            self.hits += 1;
            true
        } else {
            self.tags[set] = Some(line);
            self.misses += 1;
            false
        }
    }

    /// Probe without filling (for assertions).
    pub fn probe(&self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        self.tags[set] == Some(line)
    }

    /// Invalidates everything.
    pub fn flush(&mut self) {
        self.tags.fill(None);
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Line size in bytes.
    pub fn line(&self) -> u64 {
        self.cfg.line
    }

    /// The line number `addr` falls in (for callers that memoize the
    /// last accessed line). The block builder precomputes, per decoded
    /// instruction, whether this value differs from the previous
    /// instruction's — the new-line flags the block engine replays in
    /// place of calling into the cache on every fetch.
    pub fn line_index(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conflict_eviction() {
        let mut c = Cache::new(CacheConfig { size: 128, line: 64 }); // 2 sets
        assert!(!c.access(0));
        assert!(!c.access(128)); // maps to set 0, evicts line 0
        assert!(!c.access(0)); // miss again
        assert_eq!(c.misses(), 3);
        assert_eq!(c.hits(), 0);
    }

    #[test]
    fn spatial_locality_hits() {
        let mut c = Cache::new(CacheConfig::nxp());
        assert!(!c.access(0x1000));
        for off in 1..64 {
            assert!(c.access(0x1000 + off));
        }
        assert_eq!(c.hits(), 63);
    }

    #[test]
    fn flush_invalidates() {
        let mut c = Cache::new(CacheConfig::host_l1());
        c.access(0x40);
        assert!(c.probe(0x40));
        c.flush();
        assert!(!c.probe(0x40));
    }

    #[test]
    #[should_panic]
    fn bad_geometry_rejected() {
        Cache::new(CacheConfig { size: 100, line: 64 });
    }
}
