//! Decoded-instruction cache: the host-side fast path through
//! fetch/translate/decode.
//!
//! Interpreter fetch pays, per simulated instruction, a 16-byte
//! `PhysMem` read plus a full byte-level re-decode of bytes that almost
//! never change. This cache memoizes the decoder's output keyed by
//! *physical* address — per-page baskets of `(offset → (Inst, len))`
//! slots, after terminus's `ICache`/`ICacheBasket` — so a hot loop
//! fetches at array-index speed. Baskets also record [`DecodedBlock`]s:
//! straight-line instruction runs the core's block-execution loop
//! replays without re-entering fetch or dispatch per instruction (see
//! `Core::run` in [`core_`](crate::core_)).
//!
//! Keying by physical address keeps the cache honest across address
//! spaces: the same text frame decoded through two mappings shares one
//! basket, and remaps cannot alias stale decodes. That key choice also
//! means the cache needs exactly one invalidation mechanism — **text
//! writes**: every cached page is marked *watched* in
//! [`PhysMem`](flick_mem::PhysMem); any write into a watched frame
//! bumps the store's `text_gen`. [`DecodedCache::get`] compares that
//! generation against its snapshot — one `u64` compare per fetch —
//! and drops everything on mismatch. Self-modifying or reloaded code
//! is therefore never served stale.
//!
//! CR3 switches and TLB flushes/shootdowns deliberately do *not* touch
//! the cache: decode is a pure function of text bytes, so translation
//! changes cannot invalidate a physically-keyed decode, and permission
//! changes (mprotect NX flips) are enforced by the fetch path, which
//! re-walks and re-checks on every fetch-frame fill. Keeping decodes
//! across context switches is what lets migration-heavy workloads run
//! at fast-path speed — each switch used to force a full re-decode of
//! both processes' hot loops.
//!
//! Baskets are organised as hashed, 2-way set-associative sets: the
//! page frame number is Fibonacci-hashed into a set index, and each set
//! holds two baskets with LRU replacement. Direct mapping by `pfn %
//! baskets` let two hot text pages a power-of-two stride apart ping-pong
//! one basket and re-decode forever; the hash decorrelates strides and
//! the second way absorbs the pathological pair.
//!
//! The cache is purely a *host* optimization: hits and misses here are
//! invisible to the simulated machine. Simulated I-TLB/I-cache charging
//! still runs on every fetch, so clocks, stats, and traces are
//! bit-identical with the cache on or off (`tests/fastpath.rs` and
//! `tests/blocks.rs` enforce this).

use flick_isa::{AluOp, BranchOp, Inst, Target};
use flick_mem::{PhysAddr, PAGE_SHIFT, PAGE_SIZE};
use std::sync::{Arc, OnceLock, Weak};

/// Successor-offset value meaning "no static successor on this edge".
pub const NO_SUCC: u16 = u16::MAX;

/// Number of basket sets. Conflicts only cost host time (re-decode on
/// the next fetch), so a small power of two covering the text working
/// set of both cores is enough.
const SETS: usize = 32;

/// Ways per set.
const WAYS: usize = 2;

/// Tag value meaning "basket holds no page".
const NO_PAGE: u64 = u64::MAX;

type Slot = Option<(Inst, u8)>;

/// One pre-decoded instruction of a [`DecodedBlock`], with everything
/// the block-execution loop needs resolved at decode time.
#[derive(Clone, Copy, Debug)]
pub struct BlockInst {
    /// The decoded instruction.
    pub inst: Inst,
    /// Page offset of the instruction's first byte.
    pub off: u16,
    /// Page offset of the *next* instruction (`off + len`).
    pub next_off: u16,
    /// Base cycles this instruction ticks (its CPI class, with the
    /// ALU-op subclass already resolved).
    pub cycles: u64,
    /// `cycles` converted to picoseconds with the exact per-call
    /// rounding of `Clock::tick`, so the block loop can accumulate
    /// time in a register and flush it once per block bit-identically.
    pub picos: u64,
    /// True when this instruction starts on a different I-cache line
    /// than its predecessor in the block — the points where the
    /// memoized fetch path would charge the I-cache. The first
    /// instruction's charge depends on the incoming fetch memo, so it
    /// is decided at execution time instead.
    pub new_line: bool,
}

/// Operand bundle of a lowered conditional branch ([`SpinOp`]): source
/// register indices pre-masked, the taken target pre-resolved to a
/// displacement from the page base (it may leave the page; the spin
/// loop exits on the resulting PC mismatch), and the fall-through page
/// offset.
#[derive(Clone, Copy, Debug)]
pub struct SpinBranch {
    /// First source register index, pre-masked.
    pub rs1: u8,
    /// Second source register index, pre-masked.
    pub rs2: u8,
    /// Taken-target displacement from the page base.
    pub taken: i64,
    /// Fall-through page offset.
    pub next: u16,
}

/// A pre-lowered micro-op of the *spin* tier: the memory-free
/// instruction subset re-encoded for single-dispatch execution. The
/// general [`Inst`] form needs two jump tables per instruction (the
/// `Inst` match, then `AluOp::eval`/`BranchOp::eval`) plus nested
/// payload decode; lowering at block-build time folds the dominant
/// ALU forms and every comparison into dedicated variants, pre-masks
/// register indices (so indexing a `[u64; 32]` file needs no bounds
/// check), pre-converts immediates to their wrapping-`u64` form, and
/// pre-resolves control targets to page-relative displacements.
/// Writes to `r0` are lowered to [`SpinOp::Nop`], so the executing
/// register file never needs a zero-discard check.
///
/// Straight-line variants carry no "next PC": within one decoded
/// block the intermediate PC values are dead (the vec order *is* the
/// execution order, and a spin-lowered block always ends in a control
/// op — [`lower_spin`] callers gate on a successor edge existing), so
/// only control variants set the PC. Purely a host-side re-encoding:
/// the net architectural effect of one pass over the micro-ops equals
/// one pass over the source instructions.
#[derive(Clone, Copy, Debug)]
pub enum SpinOp {
    /// `rd = rs1 + imm` — the dominant ALU-immediate form.
    AddImm {
        /// Destination register index, pre-masked.
        rd: u8,
        /// Source register index, pre-masked.
        rs1: u8,
        /// Immediate, pre-converted for `wrapping_add`.
        imm: u64,
    },
    /// `rd = rs1 + rs2`.
    Add {
        /// Destination register index, pre-masked.
        rd: u8,
        /// First source register index, pre-masked.
        rs1: u8,
        /// Second source register index, pre-masked.
        rs2: u8,
    },
    /// Any other register-register ALU operation.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register index, pre-masked.
        rd: u8,
        /// First source register index, pre-masked.
        rs1: u8,
        /// Second source register index, pre-masked.
        rs2: u8,
    },
    /// Any other ALU-immediate operation.
    AluImm {
        /// The operation.
        op: AluOp,
        /// Destination register index, pre-masked.
        rd: u8,
        /// Source register index, pre-masked.
        rs1: u8,
        /// Immediate, pre-converted to the `u64` operand form.
        imm: u64,
    },
    /// `rd = imm`.
    Li {
        /// Destination register index, pre-masked.
        rd: u8,
        /// The value.
        imm: u64,
    },
    /// Branch if equal.
    Beq(SpinBranch),
    /// Branch if not equal.
    Bne(SpinBranch),
    /// Branch if less-than, signed.
    Blt(SpinBranch),
    /// Branch if greater-or-equal, signed.
    Bge(SpinBranch),
    /// Branch if less-than, unsigned.
    Bltu(SpinBranch),
    /// Branch if greater-or-equal, unsigned.
    Bgeu(SpinBranch),
    /// Direct jump with link.
    Jal {
        /// Link register index, pre-masked (never `r0`; that lowers to
        /// [`SpinOp::Jmp`]).
        rd: u8,
        /// Target displacement from the page base.
        taken: i64,
        /// Page offset of the next instruction (the link value).
        next: u16,
    },
    /// Direct jump without link (`jal r0`).
    Jmp {
        /// Target displacement from the page base.
        taken: i64,
    },
    /// Indirect jump with link. The executor must discard the link
    /// write when `rd` is 0 (the only runtime zero-register case left).
    Jalr {
        /// Link register index, pre-masked.
        rd: u8,
        /// Base register index, pre-masked.
        rs1: u8,
        /// Displacement, pre-converted for `wrapping_add`.
        off: u64,
        /// Page offset of the next instruction (the link value).
        next: u16,
    },
    /// Return (`pc = ra`).
    Ret,
    /// No architectural effect (including lowered writes to `r0`).
    Nop,
}

/// How an affine spin block's trip count derives from its counter
/// register's entry value (see [`SpinFold`]).
#[derive(Clone, Copy, Debug)]
pub enum SpinFoldKind {
    /// Counter nets −1 per iteration, `bne counter, r0` terminator:
    /// the loop runs `counter` iterations (entry value 0 wraps first,
    /// so it reads as "practically unbounded" — fuel exits long before
    /// 2⁶⁴ iterations).
    Down,
    /// Counter nets +1 per iteration: `counter.wrapping_neg()`
    /// iterations until the wrap back to zero falls through.
    Up,
    /// Unconditional self-jump — only fuel ever exits.
    Never,
}

/// Closed-form execution plan for an *affine* self-loop: a spin block
/// whose body is nothing but self-increments (`rd = rd + imm`) and
/// `Nop`s, terminated by a back-edge that tests one of those counters
/// against `r0` (or by an unconditional self-jump). Such a loop's
/// state after `k` iterations is linear in `k` — each register gains
/// `delta × k` (wrapping multiplication *is* `k` wrapping additions,
/// addition being associative mod 2⁶⁴) and the first fall-through
/// iteration solves exactly from the counter's entry value — so the
/// spin tier executes the whole run of iterations in O(1) instead of
/// O(k), with bit-identical registers, PC, fuel, instruction counts
/// and clock credit. The canonical `li n; lp: ...; addi n, n, -1;
/// bne n, r0, lp` countdown every toolchain loop emits folds; anything
/// with a cross-register read falls back to the per-op spin loop.
#[derive(Clone, Debug)]
pub struct SpinFold {
    /// Net per-iteration wrapping delta for every register the body
    /// writes (register index, delta). Applied as `reg += delta × k`.
    pub deltas: Vec<(u8, u64)>,
    /// The register the terminator tests against `r0` (unused for
    /// [`SpinFoldKind::Never`]). Never `r0` itself.
    pub counter: u8,
    /// Trip-count rule.
    pub kind: SpinFoldKind,
    /// Fall-through page offset on a condition exit.
    pub next: u16,
}

/// Derives the closed form of an affine self-loop from its lowered
/// ops, or `None` when the block is not affine: any body op that is
/// not a self-increment or `Nop`, a terminator other than
/// `bne counter, r0` / self-`Jmp`, a back-edge that is not the block
/// entry, or a counter step other than ±1 (other steps need modular
/// division to solve and are not worth the code).
fn fold_spin(ops: &[SpinOp], entry_off: u16) -> Option<SpinFold> {
    let (last, body) = ops.split_last()?;
    let mut deltas: Vec<(u8, u64)> = Vec::new();
    for op in body {
        match *op {
            SpinOp::AddImm { rd, rs1, imm } if rd == rs1 => {
                match deltas.iter_mut().find(|e| e.0 == rd) {
                    Some(e) => e.1 = e.1.wrapping_add(imm),
                    None => deltas.push((rd, imm)),
                }
            }
            SpinOp::Nop => {}
            _ => return None,
        }
    }
    match *last {
        SpinOp::Jmp { taken } if taken == entry_off as i64 => Some(SpinFold {
            deltas,
            counter: 0,
            kind: SpinFoldKind::Never,
            next: 0,
        }),
        SpinOp::Bne(b) if b.taken == entry_off as i64 => {
            let counter = match (b.rs1, b.rs2) {
                (c, 0) if c != 0 => c,
                (0, c) if c != 0 => c,
                _ => return None,
            };
            let step = deltas.iter().find(|e| e.0 == counter).map_or(0, |e| e.1);
            let kind = match step {
                u64::MAX => SpinFoldKind::Down,
                1 => SpinFoldKind::Up,
                _ => return None,
            };
            Some(SpinFold { deltas, counter, kind, next: b.next })
        }
        _ => None,
    }
}

/// Lowers a block's instructions to [`SpinOp`]s. Returns an empty
/// vector when any instruction falls outside the spin subset (loads,
/// stores, traps, unresolved targets) — such a block either is not
/// `mem_free` or ends in a trap terminator, and the spin tier never
/// runs it.
fn lower_spin(insts: &[BlockInst]) -> Vec<SpinOp> {
    let m = |r: flick_isa::Reg| (r.index() & 31) as u8;
    let rel = |t: Target| match t {
        Target::Rel(d) => Some(d),
        Target::Label(_) | Target::Symbol(_) => None,
    };
    let mut ops = Vec::with_capacity(insts.len());
    for bi in insts {
        let next = bi.next_off;
        let op = match bi.inst {
            Inst::Alu { rd, .. } | Inst::AluImm { rd, .. } | Inst::Li { rd, .. }
                if rd.index() & 31 == 0 =>
            {
                SpinOp::Nop
            }
            Inst::Alu { op: AluOp::Add, rd, rs1, rs2 } => SpinOp::Add {
                rd: m(rd),
                rs1: m(rs1),
                rs2: m(rs2),
            },
            Inst::Alu { op, rd, rs1, rs2 } => SpinOp::Alu {
                op,
                rd: m(rd),
                rs1: m(rs1),
                rs2: m(rs2),
            },
            Inst::AluImm { op: AluOp::Add, rd, rs1, imm } => SpinOp::AddImm {
                rd: m(rd),
                rs1: m(rs1),
                imm: imm as i64 as u64,
            },
            Inst::AluImm { op, rd, rs1, imm } => SpinOp::AluImm {
                op,
                rd: m(rd),
                rs1: m(rs1),
                imm: imm as i64 as u64,
            },
            Inst::Li { rd, imm } => SpinOp::Li {
                rd: m(rd),
                imm: imm as u64,
            },
            Inst::Branch { op, rs1, rs2, target } => match rel(target) {
                Some(d) => {
                    let b = SpinBranch {
                        rs1: m(rs1),
                        rs2: m(rs2),
                        taken: bi.off as i64 + d,
                        next,
                    };
                    match op {
                        BranchOp::Eq => SpinOp::Beq(b),
                        BranchOp::Ne => SpinOp::Bne(b),
                        BranchOp::Lt => SpinOp::Blt(b),
                        BranchOp::Ge => SpinOp::Bge(b),
                        BranchOp::Ltu => SpinOp::Bltu(b),
                        BranchOp::Geu => SpinOp::Bgeu(b),
                    }
                }
                None => return Vec::new(),
            },
            Inst::Jal { rd, target } => match rel(target) {
                Some(d) => {
                    let taken = bi.off as i64 + d;
                    if rd.index() & 31 == 0 {
                        SpinOp::Jmp { taken }
                    } else {
                        SpinOp::Jal { rd: m(rd), taken, next }
                    }
                }
                None => return Vec::new(),
            },
            Inst::Jalr { rd, rs1, off } => SpinOp::Jalr {
                rd: m(rd),
                rs1: m(rs1),
                off: off as i64 as u64,
                next,
            },
            Inst::Ret => SpinOp::Ret,
            Inst::Nop => SpinOp::Nop,
            Inst::Ld { .. } | Inst::St { .. } | Inst::LiSym { .. } | Inst::Ecall { .. }
            | Inst::Halt => return Vec::new(),
        };
        ops.push(op);
    }
    ops
}

/// A decoded basic block: a straight-line instruction run within one
/// page, ending at the first control transfer (branch/jump/`ecall`/
/// `halt`), at the page boundary, or just before anything the step path
/// must handle itself (page-spanning, undecodable, misaligned or
/// pre-link instructions).
#[derive(Debug)]
pub struct DecodedBlock {
    /// The instructions, in execution order. Never empty.
    pub insts: Vec<BlockInst>,
    /// Sum of every instruction's `cycles` — the whole-block charge
    /// when nothing can cut the block short.
    pub total_cycles: u64,
    /// Sum of every instruction's `picos`. Each summand already
    /// carries `Clock::tick`'s per-call rounding, so charging this
    /// total once equals ticking instruction by instruction.
    pub total_picos: u64,
    /// True when the block contains no loads or stores. Such a block,
    /// entered with fuel for every instruction, cannot exit early —
    /// ALU and control instructions never fault and terminators are
    /// always last — so the execution loop batches its per-instruction
    /// accounting into the totals above.
    pub mem_free: bool,
    /// Page offsets of the terminator's static successors within the
    /// same page — `[taken, fall-through]` for a conditional branch,
    /// `[target, NO_SUCC]` for a direct jump the builder chose not to
    /// extend through, `[NO_SUCC; 2]` otherwise (indirect transfers,
    /// traps, page exits). Offsets are PA-anchored (blocks are keyed by
    /// physical address), so a successor edge is valid in *every*
    /// address space that maps the frame — links never need clearing on
    /// a CR3 switch, only on text_gen invalidation, which drops the
    /// blocks themselves.
    pub succ_off: [u16; 2],
    /// Lazily patched successor links, parallel to `succ_off`: the
    /// first execution that resolves an edge stores a `Weak` to the
    /// successor block. `Weak` (not `Arc`) so self-loops and cycles —
    /// every hot loop is one — cannot keep invalidated blocks alive
    /// past a text_gen bump; `OnceLock` keeps the block `Sync`, so an
    /// `Arc<DecodedBlock>` inside a `Core` still crosses the leg-handoff
    /// thread boundary. An upgrade failure (the successor's basket was
    /// evicted) degrades to a shared-cache lookup on that follow.
    pub links: [OnceLock<Weak<DecodedBlock>>; 2],
    /// The block pre-lowered to spin micro-ops ([`SpinOp`]), parallel
    /// to `insts`, or empty when any instruction falls outside the spin
    /// subset. Only the charge-free spin tier reads this.
    pub spin: Vec<SpinOp>,
    /// The closed form of this block as an affine self-loop (see
    /// [`SpinFold`]), when it has one. Only the charge-free spin tier
    /// reads this.
    pub fold: Option<SpinFold>,
}

impl DecodedBlock {
    /// Lowers `insts` to the spin micro-op form (see [`SpinOp`]);
    /// block builders populate the `spin` field with this.
    pub fn lower_spin(insts: &[BlockInst]) -> Vec<SpinOp> {
        lower_spin(insts)
    }

    /// Derives the affine-self-loop closed form of a lowered block
    /// (see [`SpinFold`]); block builders populate the `fold` field
    /// with this. `entry_off` is the block's first instruction offset
    /// — only a back-edge to it makes a self-loop.
    pub fn fold_spin(ops: &[SpinOp], entry_off: u16) -> Option<SpinFold> {
        fold_spin(ops, entry_off)
    }
    /// Resolves successor edge `idx` if it has been patched and the
    /// target block is still alive.
    #[inline]
    pub fn link(&self, idx: usize) -> Option<Arc<DecodedBlock>> {
        self.links[idx].get().and_then(Weak::upgrade)
    }

    /// Patches successor edge `idx`; returns true when this call did
    /// the patch. First writer wins — a dead `Weak` can never be
    /// replaced (`OnceLock` is write-once), so that edge degrades to a
    /// cache lookup per follow, which is rare (it needs a basket
    /// eviction under a live chain) and only costs host time.
    #[inline]
    pub fn patch(&self, idx: usize, succ: &Arc<DecodedBlock>) -> bool {
        self.links[idx].set(Arc::downgrade(succ)).is_ok()
    }
}

/// One cached text page: decoded instructions and blocks by page offset.
struct Basket {
    /// Physical frame number this basket caches, or [`NO_PAGE`].
    tag: u64,
    /// One slot per byte offset (x64-style text places instructions at
    /// arbitrary byte offsets).
    slots: Vec<Slot>,
    /// Decoded blocks by the page offset of their first instruction.
    blocks: Vec<Option<Arc<DecodedBlock>>>,
}

impl Basket {
    fn new() -> Self {
        Basket {
            tag: NO_PAGE,
            slots: vec![None; PAGE_SIZE as usize],
            blocks: vec![None; PAGE_SIZE as usize],
        }
    }
}

/// One associative set: its ways plus which way was used last (the
/// other one is the eviction victim).
struct BasketSet {
    ways: [Option<Box<Basket>>; WAYS],
    mru: u8,
}

/// Fibonacci hash of a page frame number into a set index. The
/// multiplicative constant spreads arithmetic pfn progressions (text
/// segments are contiguous, collisions used to be exact power-of-two
/// strides) across the whole set array.
fn set_of(pfn: u64) -> usize {
    const SHIFT: u32 = u64::BITS - SETS.trailing_zeros();
    (pfn.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> SHIFT) as usize
}

/// Physically-indexed decoded-instruction cache. See the module docs for
/// keying and invalidation rules.
pub struct DecodedCache {
    sets: Vec<BasketSet>,
    /// `PhysMem::text_gen` snapshot the cached decodes were taken at.
    gen: u64,
}

impl Default for DecodedCache {
    fn default() -> Self {
        DecodedCache::new()
    }
}

impl DecodedCache {
    /// Creates an empty cache. Baskets are allocated lazily, so idle
    /// cores (the degraded-mode emulator until link death) cost nothing.
    pub fn new() -> Self {
        let mut sets = Vec::with_capacity(SETS);
        sets.resize_with(SETS, || BasketSet {
            ways: [None, None],
            mru: 0,
        });
        DecodedCache { sets, gen: 0 }
    }

    /// Checks the generation snapshot; a mismatch (some watched frame
    /// was written since) drops the whole cache and re-snapshots.
    /// Returns false when the caller's lookup must miss.
    fn check_gen(&mut self, text_gen: u64) -> bool {
        if text_gen != self.gen {
            self.clear();
            self.gen = text_gen;
            return false;
        }
        true
    }

    /// Finds the way holding `pfn` in its set and marks it
    /// most-recently-used.
    fn find(&mut self, pfn: u64) -> Option<&Basket> {
        let set = &mut self.sets[set_of(pfn)];
        let w = (0..WAYS)
            .find(|&w| set.ways[w].as_ref().is_some_and(|b| b.tag == pfn))?;
        set.mru = w as u8;
        set.ways[w].as_deref()
    }

    /// Finds or claims the basket for `pfn`: a tag match, else an empty
    /// way, else the LRU way (repurposed and scrubbed).
    fn claim(&mut self, pfn: u64) -> &mut Basket {
        let set = &mut self.sets[set_of(pfn)];
        let w = (0..WAYS)
            .find(|&w| set.ways[w].as_ref().is_some_and(|b| b.tag == pfn))
            .or_else(|| (0..WAYS).find(|&w| set.ways[w].is_none()))
            .unwrap_or(1 - set.mru as usize);
        set.mru = w as u8;
        let basket = set.ways[w].get_or_insert_with(|| Box::new(Basket::new()));
        if basket.tag != pfn {
            // Conflict (or first use): repurpose the basket.
            basket.slots.fill(None);
            basket.blocks.fill(None);
            basket.tag = pfn;
        }
        basket
    }

    /// Looks up the decoded instruction at physical address `pa`,
    /// validating against the current text generation.
    pub fn get(&mut self, pa: PhysAddr, text_gen: u64) -> Option<(Inst, u8)> {
        if !self.check_gen(text_gen) {
            return None;
        }
        let basket = self.find(pa.as_u64() >> PAGE_SHIFT)?;
        basket.slots[(pa.as_u64() & (PAGE_SIZE - 1)) as usize]
    }

    /// Records a decode result. The caller must have called [`get`]
    /// with the current generation this fetch (so the snapshot is
    /// up to date) and must not cache page-spanning instructions —
    /// their second-page translation and fetch charge must replay on
    /// every execution.
    ///
    /// [`get`]: DecodedCache::get
    pub fn put(&mut self, pa: PhysAddr, inst: Inst, len: u8) {
        debug_assert!(
            (pa.as_u64() & (PAGE_SIZE - 1)) + len as u64 <= PAGE_SIZE,
            "page-spanning instructions are not cacheable"
        );
        let basket = self.claim(pa.as_u64() >> PAGE_SHIFT);
        basket.slots[(pa.as_u64() & (PAGE_SIZE - 1)) as usize] = Some((inst, len));
    }

    /// Looks up the decoded block starting at physical address `pa`,
    /// with the same generation validation as [`get`](Self::get).
    pub fn get_block(&mut self, pa: PhysAddr, text_gen: u64) -> Option<Arc<DecodedBlock>> {
        if !self.check_gen(text_gen) {
            return None;
        }
        let basket = self.find(pa.as_u64() >> PAGE_SHIFT)?;
        basket.blocks[(pa.as_u64() & (PAGE_SIZE - 1)) as usize].clone()
    }

    /// Records a decoded block starting at `pa`. Same caller contract
    /// as [`put`](Self::put): the generation snapshot must be current,
    /// and the block must lie entirely within one page.
    pub fn put_block(&mut self, pa: PhysAddr, block: Arc<DecodedBlock>) {
        debug_assert!(!block.insts.is_empty(), "blocks are never empty");
        // Superblocks decode through direct jumps, so offsets are not
        // monotonic and may land before the entry offset; the only
        // invariant is containment in the page.
        debug_assert!(
            block
                .insts
                .iter()
                .all(|bi| (bi.off as u64) < PAGE_SIZE && bi.next_off as u64 <= PAGE_SIZE),
            "blocks must lie within their page"
        );
        debug_assert!(
            block
                .succ_off
                .iter()
                .all(|&s| s == NO_SUCC || (s as u64) < PAGE_SIZE),
            "successor offsets must lie within the page"
        );
        let basket = self.claim(pa.as_u64() >> PAGE_SHIFT);
        basket.blocks[(pa.as_u64() & (PAGE_SIZE - 1)) as usize] = Some(block);
    }

    /// Drops every cached decode (CR3 switch, TLB flush/shootdown).
    /// O(sets): slots and blocks are lazily scrubbed when a basket is
    /// reused.
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            for b in set.ways.iter_mut().flatten() {
                b.tag = NO_PAGE;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_isa::Reg;

    fn inst(i: u64) -> Inst {
        Inst::Li {
            rd: Reg::new(1),
            imm: i as i64,
        }
    }

    fn block(off: u16) -> Arc<DecodedBlock> {
        Arc::new(DecodedBlock {
            insts: vec![BlockInst {
                inst: Inst::Halt,
                off,
                next_off: off + 1,
                cycles: 1,
                picos: 417,
                new_line: false,
            }],
            total_cycles: 1,
            total_picos: 417,
            mem_free: true,
            succ_off: [NO_SUCC; 2],
            links: [OnceLock::new(), OnceLock::new()],
            spin: Vec::new(),
            fold: None,
        })
    }

    /// Three pfns that hash into the same set (sharing one set of two
    /// ways forces an eviction on the third).
    fn colliding_pfns() -> [u64; 3] {
        let first = 1u64;
        let mut found = [first; 3];
        let mut n = 1;
        let mut pfn = first + 1;
        while n < 3 {
            if set_of(pfn) == set_of(first) {
                found[n] = pfn;
                n += 1;
            }
            pfn += 1;
        }
        found
    }

    #[test]
    fn hit_after_put() {
        let mut c = DecodedCache::new();
        assert_eq!(c.get(PhysAddr(0x40_0010), 0), None);
        c.put(PhysAddr(0x40_0010), inst(7), 10);
        assert_eq!(c.get(PhysAddr(0x40_0010), 0), Some((inst(7), 10)));
        assert_eq!(c.get(PhysAddr(0x40_0011), 0), None);
    }

    #[test]
    fn generation_bump_invalidates_everything() {
        let mut c = DecodedCache::new();
        c.get(PhysAddr(0x1000), 0);
        c.put(PhysAddr(0x1000), inst(1), 4);
        c.put(PhysAddr(0x2000), inst(2), 4);
        c.put_block(PhysAddr(0x1000), block(0));
        assert_eq!(c.get(PhysAddr(0x1000), 1), None, "stale gen must miss");
        assert_eq!(c.get(PhysAddr(0x2000), 1), None);
        assert!(c.get_block(PhysAddr(0x1000), 1).is_none());
        // Re-populated under the new generation.
        c.put(PhysAddr(0x1000), inst(3), 4);
        assert_eq!(c.get(PhysAddr(0x1000), 1), Some((inst(3), 4)));
    }

    #[test]
    fn two_conflicting_pages_coexist() {
        // The direct-mapped layout thrashed here: two pages in one set
        // ping-ponged a single basket. Two ways absorb the pair.
        let mut c = DecodedCache::new();
        let [p0, p1, _] = colliding_pfns();
        let a = PhysAddr(p0 << PAGE_SHIFT);
        let b = PhysAddr(p1 << PAGE_SHIFT);
        c.get(a, 0);
        c.put(a, inst(1), 4);
        c.put(b, inst(2), 4);
        assert_eq!(c.get(a, 0), Some((inst(1), 4)), "both ways live");
        assert_eq!(c.get(b, 0), Some((inst(2), 4)));
    }

    #[test]
    fn third_conflicting_page_evicts_lru_cleanly() {
        let mut c = DecodedCache::new();
        let [p0, p1, p2] = colliding_pfns();
        let a = PhysAddr(p0 << PAGE_SHIFT);
        let b = PhysAddr(p1 << PAGE_SHIFT);
        let d = PhysAddr(p2 << PAGE_SHIFT);
        c.get(a, 0);
        c.put(a, inst(1), 4);
        c.put(b, inst(2), 4);
        c.get(a, 0); // touch a: b becomes LRU
        c.put(d, inst(3), 4); // evicts b
        assert_eq!(c.get(b, 0), None, "LRU page evicted by the third");
        assert_eq!(c.get(a, 0), Some((inst(1), 4)));
        assert_eq!(c.get(d, 0), Some((inst(3), 4)));
        // And the offsets from the old page must not leak into the new.
        assert_eq!(c.get(PhysAddr(d.as_u64() + 8), 0), None);
        c.put(b, inst(4), 4);
        assert_eq!(c.get(PhysAddr(b.as_u64() + 8), 0), None);
    }

    #[test]
    fn blocks_follow_basket_eviction() {
        let mut c = DecodedCache::new();
        let [p0, p1, p2] = colliding_pfns();
        let a = PhysAddr(p0 << PAGE_SHIFT);
        c.get_block(a, 0);
        c.put_block(a, block(0));
        c.put_block(PhysAddr(p1 << PAGE_SHIFT), block(0));
        c.put_block(PhysAddr((p2 << PAGE_SHIFT) + 16), block(16));
        // `a` was LRU after the second put; the third evicted it.
        assert!(c.get_block(a, 0).is_none(), "block evicted with basket");
        assert!(c
            .get_block(PhysAddr((p2 << PAGE_SHIFT) + 16), 0)
            .is_some());
    }

    #[test]
    fn chain_links_are_weak_and_write_once() {
        let a = block(0);
        let b = block(8);
        assert!(a.link(0).is_none(), "unpatched edge resolves to none");
        assert!(a.patch(0, &b), "first patch wins");
        assert!(!a.patch(0, &b), "second patch is a no-op");
        assert!(Arc::ptr_eq(&a.link(0).unwrap(), &b));
        // Self-loops must not keep the block alive through its own link.
        assert!(b.patch(0, &b));
        let w = Arc::downgrade(&b);
        drop(b);
        assert!(w.upgrade().is_none(), "weak links cannot leak cycles");
        drop(a.link(0)); // dead edge now resolves to none...
        assert!(a.link(0).is_none());
        let c = block(16);
        assert!(!a.patch(0, &c), "...and cannot be re-patched (write-once)");
    }

    #[test]
    fn clear_drops_all() {
        let mut c = DecodedCache::new();
        c.get(PhysAddr(0x5000), 0);
        c.put(PhysAddr(0x5000), inst(9), 2);
        c.put_block(PhysAddr(0x5000), block(0));
        c.clear();
        assert_eq!(c.get(PhysAddr(0x5000), 0), None);
        assert!(c.get_block(PhysAddr(0x5000), 0).is_none());
    }
}
