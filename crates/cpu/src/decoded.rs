//! Decoded-instruction cache: the host-side fast path through
//! fetch/translate/decode.
//!
//! Interpreter fetch pays, per simulated instruction, a 16-byte
//! `PhysMem` read plus a full byte-level re-decode of bytes that almost
//! never change. This cache memoizes the decoder's output keyed by
//! *physical* address — per-page baskets of `(offset → (Inst, len))`
//! slots, after terminus's `ICache`/`ICacheBasket` — so a hot loop
//! fetches at array-index speed.
//!
//! Keying by physical address keeps the cache honest across address
//! spaces: the same text frame decoded through two mappings shares one
//! basket, and remaps cannot alias stale decodes. Two invalidation
//! mechanisms keep it coherent:
//!
//! - **Text writes**: every cached page is marked *watched* in
//!   [`PhysMem`](flick_mem::PhysMem); any write into a watched frame
//!   bumps the store's `text_gen`. [`DecodedCache::get`] compares that
//!   generation against its snapshot — one `u64` compare per fetch —
//!   and drops everything on mismatch. Self-modifying or reloaded code
//!   is therefore never served stale.
//! - **Structural events**: the owning core clears the cache outright on
//!   CR3 switches and TLB flushes/shootdowns (mprotect NX flips flow
//!   through those). This is belt-and-braces — permissions are
//!   re-checked by `translate_exec` on every fetch regardless, the
//!   cache only short-circuits the byte read + decode.
//!
//! The cache is purely a *host* optimization: hits and misses here are
//! invisible to the simulated machine. Simulated I-TLB/I-cache charging
//! still runs on every fetch, so clocks, stats, and traces are
//! bit-identical with the cache on or off (`tests/fastpath.rs` enforces
//! this).

use flick_isa::Inst;
use flick_mem::{PhysAddr, PAGE_SHIFT, PAGE_SIZE};

/// Direct-mapped basket count. Conflicts only cost host time (re-decode
/// on the next fetch), so a small power of two covering the text working
/// set of both cores is enough.
const BASKETS: usize = 32;

/// Tag value meaning "basket holds no page".
const NO_PAGE: u64 = u64::MAX;

type Slot = Option<(Inst, u8)>;

/// One cached text page: decoded instructions by page offset.
struct Basket {
    /// Physical frame number this basket caches, or [`NO_PAGE`].
    tag: u64,
    /// One slot per byte offset (x64-style text places instructions at
    /// arbitrary byte offsets).
    slots: Vec<Slot>,
}

impl Basket {
    fn new() -> Self {
        Basket {
            tag: NO_PAGE,
            slots: vec![None; PAGE_SIZE as usize],
        }
    }
}

/// Physically-indexed decoded-instruction cache. See the module docs for
/// keying and invalidation rules.
pub struct DecodedCache {
    baskets: Vec<Option<Box<Basket>>>,
    /// `PhysMem::text_gen` snapshot the cached decodes were taken at.
    gen: u64,
}

impl Default for DecodedCache {
    fn default() -> Self {
        DecodedCache::new()
    }
}

impl DecodedCache {
    /// Creates an empty cache. Baskets are allocated lazily, so idle
    /// cores (the degraded-mode emulator until link death) cost nothing.
    pub fn new() -> Self {
        let mut baskets = Vec::with_capacity(BASKETS);
        baskets.resize_with(BASKETS, || None);
        DecodedCache { baskets, gen: 0 }
    }

    /// Looks up the decoded instruction at physical address `pa`,
    /// validating against the current text generation. A generation
    /// mismatch (some watched frame was written since the snapshot)
    /// drops the whole cache and re-snapshots.
    pub fn get(&mut self, pa: PhysAddr, text_gen: u64) -> Option<(Inst, u8)> {
        if text_gen != self.gen {
            self.clear();
            self.gen = text_gen;
            return None;
        }
        let pfn = pa.as_u64() >> PAGE_SHIFT;
        let basket = self.baskets[(pfn as usize) % BASKETS].as_ref()?;
        if basket.tag != pfn {
            return None;
        }
        basket.slots[(pa.as_u64() & (PAGE_SIZE - 1)) as usize]
    }

    /// Records a decode result. The caller must have called [`get`]
    /// with the current generation this fetch (so the snapshot is
    /// up to date) and must not cache page-spanning instructions —
    /// their second-page translation and fetch charge must replay on
    /// every execution.
    ///
    /// [`get`]: DecodedCache::get
    pub fn put(&mut self, pa: PhysAddr, inst: Inst, len: u8) {
        debug_assert!(
            (pa.as_u64() & (PAGE_SIZE - 1)) + len as u64 <= PAGE_SIZE,
            "page-spanning instructions are not cacheable"
        );
        let pfn = pa.as_u64() >> PAGE_SHIFT;
        let basket =
            self.baskets[(pfn as usize) % BASKETS].get_or_insert_with(|| Box::new(Basket::new()));
        if basket.tag != pfn {
            // Conflict (or first use): repurpose the basket.
            basket.slots.fill(None);
            basket.tag = pfn;
        }
        basket.slots[(pa.as_u64() & (PAGE_SIZE - 1)) as usize] = Some((inst, len));
    }

    /// Drops every cached decode (CR3 switch, TLB flush/shootdown).
    /// O(baskets): slots are lazily scrubbed when a basket is reused.
    pub fn clear(&mut self) {
        for b in self.baskets.iter_mut().flatten() {
            b.tag = NO_PAGE;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_isa::Reg;

    fn inst(i: u64) -> Inst {
        Inst::Li {
            rd: Reg::new(1),
            imm: i as i64,
        }
    }

    #[test]
    fn hit_after_put() {
        let mut c = DecodedCache::new();
        assert_eq!(c.get(PhysAddr(0x40_0010), 0), None);
        c.put(PhysAddr(0x40_0010), inst(7), 10);
        assert_eq!(c.get(PhysAddr(0x40_0010), 0), Some((inst(7), 10)));
        assert_eq!(c.get(PhysAddr(0x40_0011), 0), None);
    }

    #[test]
    fn generation_bump_invalidates_everything() {
        let mut c = DecodedCache::new();
        c.get(PhysAddr(0x1000), 0);
        c.put(PhysAddr(0x1000), inst(1), 4);
        c.put(PhysAddr(0x2000), inst(2), 4);
        assert_eq!(c.get(PhysAddr(0x1000), 1), None, "stale gen must miss");
        assert_eq!(c.get(PhysAddr(0x2000), 1), None);
        // Re-populated under the new generation.
        c.put(PhysAddr(0x1000), inst(3), 4);
        assert_eq!(c.get(PhysAddr(0x1000), 1), Some((inst(3), 4)));
    }

    #[test]
    fn conflicting_pages_evict_cleanly() {
        let mut c = DecodedCache::new();
        let a = PhysAddr(0x1000);
        let b = PhysAddr(0x1000 + (BASKETS as u64) * PAGE_SIZE); // same basket
        c.get(a, 0);
        c.put(a, inst(1), 4);
        c.put(b, inst(2), 4);
        assert_eq!(c.get(a, 0), None, "evicted by conflicting page");
        assert_eq!(c.get(b, 0), Some((inst(2), 4)));
        // And the offset from the old page must not leak into the new one.
        c.put(a, inst(3), 4);
        assert_eq!(c.get(PhysAddr(b.as_u64() + 8), 0), None);
    }

    #[test]
    fn clear_drops_all() {
        let mut c = DecodedCache::new();
        c.get(PhysAddr(0x5000), 0);
        c.put(PhysAddr(0x5000), inst(9), 2);
        c.clear();
        assert_eq!(c.get(PhysAddr(0x5000), 0), None);
    }
}
