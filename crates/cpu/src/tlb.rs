//! TLBs with BAR remap windows and MMU bypass holes.
//!
//! The NxP's TLB is the crate's most paper-specific hardware: besides
//! caching translations of the *host's* page tables, it (a) rewrites
//! physical addresses that fall in dynamically-assigned BAR windows
//! into NxP-local bus addresses via driver-programmed remap registers
//! (Fig. 3), and (b) supports *holes* — VA ranges the programmable MMU
//! resolves directly, bypassing the page-table walk, used for debugging
//! and scratchpad access (§IV-A).

use flick_mem::{PhysAddr, VirtAddr};
use flick_paging::{PageSize, Translation};

/// One cached translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page base.
    pub va_base: VirtAddr,
    /// Physical page base (host view).
    pub pa_base: PhysAddr,
    /// Leaf page size.
    pub page: PageSize,
    /// Effective NX bit.
    pub nx: bool,
    /// Effective writability.
    pub writable: bool,
}

impl TlbEntry {
    /// Builds an entry from a walker result.
    pub fn from_translation(t: &Translation) -> Self {
        TlbEntry {
            va_base: t.va_base,
            pa_base: t.pa_base,
            page: t.page,
            nx: t.nx,
            writable: t.writable,
        }
    }

    /// True when `va` falls in this entry's page.
    pub fn covers(&self, va: VirtAddr) -> bool {
        va.as_u64() & !(self.page.bytes() - 1) == self.va_base.as_u64()
    }

    /// Translates `va` (must be covered).
    pub fn translate(&self, va: VirtAddr) -> PhysAddr {
        debug_assert!(self.covers(va));
        PhysAddr(self.pa_base.as_u64() | (va.as_u64() & (self.page.bytes() - 1)))
    }
}

/// An MMU bypass hole: a VA range translated by configuration rather
/// than by walking page tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmuHole {
    /// Virtual base.
    pub va_base: VirtAddr,
    /// Size in bytes.
    pub size: u64,
    /// Physical base the hole maps to.
    pub pa_base: PhysAddr,
    /// Whether code may execute from the hole.
    pub executable: bool,
}

impl MmuHole {
    /// True when `va` falls inside the hole.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.va_base && va.as_u64() < self.va_base.as_u64() + self.size
    }

    /// Translates `va` (must be contained).
    pub fn translate(&self, va: VirtAddr) -> PhysAddr {
        debug_assert!(self.contains(va));
        self.pa_base + (va - self.va_base)
    }
}

/// A fully-associative TLB with LRU replacement.
///
/// The prototype's NxP L1 I/D-TLBs have 16 entries each with one-cycle
/// hit latency (§IV-A); the host TLBs are just bigger instances.
///
/// # Examples
///
/// ```
/// use flick_cpu::{Tlb, TlbEntry};
/// use flick_mem::{PhysAddr, VirtAddr};
/// use flick_paging::PageSize;
///
/// let mut tlb = Tlb::new(2);
/// tlb.insert(TlbEntry {
///     va_base: VirtAddr(0x1000),
///     pa_base: PhysAddr(0x8000),
///     page: PageSize::Size4K,
///     nx: false,
///     writable: true,
/// });
/// let e = tlb.lookup(VirtAddr(0x1abc)).unwrap();
/// assert_eq!(e.translate(VirtAddr(0x1abc)), PhysAddr(0x8abc));
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(TlbEntry, u64)>, // (entry, last-use stamp)
    capacity: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Looks up `va`, refreshing LRU on hit.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
        self.stamp += 1;
        for (e, used) in &mut self.entries {
            if e.covers(va) {
                *used = self.stamp;
                self.hits += 1;
                return Some(*e);
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts a translation, evicting the LRU entry when full.
    pub fn insert(&mut self, entry: TlbEntry) {
        self.stamp += 1;
        // Replace an existing mapping of the same page, if any.
        if let Some(slot) = self.entries.iter_mut().find(|(e, _)| e.va_base == entry.va_base) {
            *slot = (entry, self.stamp);
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((entry, self.stamp));
        } else {
            let lru = self
                .entries
                .iter_mut()
                .min_by_key(|(_, used)| *used)
                .expect("capacity > 0");
            *lru = (entry, self.stamp);
        }
    }

    /// Drops every entry (context switch / mprotect shootdown).
    pub fn flush(&mut self) {
        self.entries.clear();
    }

    /// Drops entries covering `va` (single-page shootdown).
    pub fn flush_page(&mut self, va: VirtAddr) {
        self.entries.retain(|(e, _)| !e.covers(va));
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(va: u64, pa: u64, page: PageSize) -> TlbEntry {
        TlbEntry {
            va_base: VirtAddr(va),
            pa_base: PhysAddr(pa),
            page,
            nx: false,
            writable: true,
        }
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.insert(entry(0x1000, 0x1000, PageSize::Size4K));
        tlb.insert(entry(0x2000, 0x2000, PageSize::Size4K));
        tlb.lookup(VirtAddr(0x1000)); // touch first
        tlb.insert(entry(0x3000, 0x3000, PageSize::Size4K)); // evicts 0x2000
        assert!(tlb.lookup(VirtAddr(0x1000)).is_some());
        assert!(tlb.lookup(VirtAddr(0x2000)).is_none());
        assert!(tlb.lookup(VirtAddr(0x3000)).is_some());
    }

    #[test]
    fn huge_page_covers_gig() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(1 << 30, 1 << 30, PageSize::Size1G));
        let e = tlb.lookup(VirtAddr((1 << 30) + 0x1234_5678)).unwrap();
        assert_eq!(
            e.translate(VirtAddr((1 << 30) + 0x1234_5678)),
            PhysAddr((1 << 30) + 0x1234_5678)
        );
    }

    #[test]
    fn four_entries_cover_nxp_storage() {
        // §V: 1 GiB pages let four TLB entries cover the 4 GiB NxP
        // window, avoiding most TLB misses.
        let mut tlb = Tlb::new(16);
        for i in 0..4u64 {
            tlb.insert(entry(
                0x5000_0000_0000 + i * (1 << 30),
                0x1_0000_0000 + i * (1 << 30),
                PageSize::Size1G,
            ));
        }
        let (h0, m0) = (tlb.hits(), tlb.misses());
        for i in 0..1000u64 {
            let va = VirtAddr(0x5000_0000_0000 + (i * 7919) % (4 << 30));
            assert!(tlb.lookup(va).is_some());
        }
        assert_eq!(tlb.hits() - h0, 1000);
        assert_eq!(tlb.misses(), m0);
    }

    #[test]
    fn same_page_reinsert_replaces() {
        let mut tlb = Tlb::new(2);
        tlb.insert(entry(0x1000, 0x1000, PageSize::Size4K));
        let mut e2 = entry(0x1000, 0x9000, PageSize::Size4K);
        e2.nx = true;
        tlb.insert(e2);
        assert_eq!(tlb.len(), 1);
        let got = tlb.lookup(VirtAddr(0x1000)).unwrap();
        assert!(got.nx);
        assert_eq!(got.pa_base, PhysAddr(0x9000));
    }

    #[test]
    fn page_shootdown() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(0x1000, 0x1000, PageSize::Size4K));
        tlb.insert(entry(0x2000, 0x2000, PageSize::Size4K));
        tlb.flush_page(VirtAddr(0x1000));
        assert!(tlb.lookup(VirtAddr(0x1000)).is_none());
        assert!(tlb.lookup(VirtAddr(0x2000)).is_some());
    }

    #[test]
    fn hole_translation() {
        let hole = MmuHole {
            va_base: VirtAddr(0x9000_0000_0000),
            size: 1 << 20,
            pa_base: PhysAddr(0x8000_0000),
            executable: false,
        };
        assert!(hole.contains(VirtAddr(0x9000_0000_0010)));
        assert!(!hole.contains(VirtAddr(0x9000_0010_0000)));
        assert_eq!(
            hole.translate(VirtAddr(0x9000_0000_0010)),
            PhysAddr(0x8000_0010)
        );
    }
}
