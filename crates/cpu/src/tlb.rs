//! TLBs with BAR remap windows and MMU bypass holes.
//!
//! The NxP's TLB is the crate's most paper-specific hardware: besides
//! caching translations of the *host's* page tables, it (a) rewrites
//! physical addresses that fall in dynamically-assigned BAR windows
//! into NxP-local bus addresses via driver-programmed remap registers
//! (Fig. 3), and (b) supports *holes* — VA ranges the programmable MMU
//! resolves directly, bypassing the page-table walk, used for debugging
//! and scratchpad access (§IV-A).

use flick_mem::{PhysAddr, U64BuildHasher, VirtAddr};
use flick_paging::{PageSize, Translation};
use std::collections::HashMap;

/// One cached translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    /// Virtual page base.
    pub va_base: VirtAddr,
    /// Physical page base (host view).
    pub pa_base: PhysAddr,
    /// Leaf page size.
    pub page: PageSize,
    /// Effective NX bit.
    pub nx: bool,
    /// Effective writability.
    pub writable: bool,
    /// ISA tag of the leaf PTE (0 = untagged; otherwise `isa.tag() + 1`
    /// of the ISA whose text the page holds).
    pub isa_tag: u8,
}

impl TlbEntry {
    /// Builds an entry from a walker result.
    pub fn from_translation(t: &Translation) -> Self {
        TlbEntry {
            va_base: t.va_base,
            pa_base: t.pa_base,
            page: t.page,
            nx: t.nx,
            writable: t.writable,
            isa_tag: t.isa_tag,
        }
    }

    /// True when `va` falls in this entry's page.
    pub fn covers(&self, va: VirtAddr) -> bool {
        va.as_u64() & !(self.page.bytes() - 1) == self.va_base.as_u64()
    }

    /// Translates `va` (must be covered).
    pub fn translate(&self, va: VirtAddr) -> PhysAddr {
        debug_assert!(self.covers(va));
        PhysAddr(self.pa_base.as_u64() | (va.as_u64() & (self.page.bytes() - 1)))
    }
}

/// An MMU bypass hole: a VA range translated by configuration rather
/// than by walking page tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MmuHole {
    /// Virtual base.
    pub va_base: VirtAddr,
    /// Size in bytes.
    pub size: u64,
    /// Physical base the hole maps to.
    pub pa_base: PhysAddr,
    /// Whether code may execute from the hole.
    pub executable: bool,
}

impl MmuHole {
    /// True when `va` falls inside the hole.
    pub fn contains(&self, va: VirtAddr) -> bool {
        va >= self.va_base && va.as_u64() < self.va_base.as_u64() + self.size
    }

    /// Translates `va` (must be contained).
    pub fn translate(&self, va: VirtAddr) -> PhysAddr {
        debug_assert!(self.contains(va));
        self.pa_base + (va - self.va_base)
    }
}

/// A fully-associative TLB with LRU replacement.
///
/// The prototype's NxP L1 I/D-TLBs have 16 entries each with one-cycle
/// hit latency (§IV-A); the host TLBs are just bigger instances.
///
/// # Examples
///
/// ```
/// use flick_cpu::{Tlb, TlbEntry};
/// use flick_mem::{PhysAddr, VirtAddr};
/// use flick_paging::PageSize;
///
/// let mut tlb = Tlb::new(2);
/// tlb.insert(TlbEntry {
///     va_base: VirtAddr(0x1000),
///     pa_base: PhysAddr(0x8000),
///     page: PageSize::Size4K,
///     nx: false,
///     writable: true,
///     isa_tag: 0,
/// });
/// let e = tlb.lookup(VirtAddr(0x1abc)).unwrap();
/// assert_eq!(e.translate(VirtAddr(0x1abc)), PhysAddr(0x8abc));
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Vec<(TlbEntry, u64)>, // (entry, last-use stamp)
    capacity: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
    /// Most-recently-hit entry index: a one-entry micro-cache consulted
    /// before the indexed probe. Repeated hits on the MRU entry skip both
    /// the probe and the stamp assignment — safe, because the MRU entry
    /// already holds the maximum stamp, so re-stamping it cannot change
    /// the *relative* LRU order that eviction decisions depend on.
    mru: Option<usize>,
    /// Page-base → entry index. Keyed by `va_base | class` where the
    /// class id lives in the low (page-offset) bits, so one map serves
    /// all page sizes; lookups probe once per size class present.
    index: HashMap<u64, usize, U64BuildHasher>,
    /// Entry count per page-size class, to skip probes for absent sizes.
    class_counts: [usize; PAGE_CLASSES.len()],
    /// Bumped whenever the entry set changes (insert, flush, shootdown).
    /// Callers that cache a translation outside the TLB (the core's
    /// last-fetch micro-cache, and through it the basic-block engine's
    /// once-per-block validation) compare this to detect that their
    /// entry may have been evicted or invalidated. Data-side walks fill
    /// only the D-TLB, so the I-TLB generation is stable across a
    /// straight-line block — the invariant that lets a block charge its
    /// fetches without re-translating per instruction.
    generation: u64,
}

/// Page-size classes probed by [`Tlb::lookup`], smallest first.
const PAGE_CLASSES: [PageSize; 3] = [PageSize::Size4K, PageSize::Size2M, PageSize::Size1G];

fn class_of(page: PageSize) -> usize {
    page.leaf_level() as usize
}

/// Index key for a page: base address with the class id folded into the
/// always-zero offset bits (every base is at least 4 KiB aligned).
fn key_of(va_base: VirtAddr, page: PageSize) -> u64 {
    debug_assert_eq!(va_base.as_u64() & (page.bytes() - 1), 0);
    va_base.as_u64() | class_of(page) as u64
}

impl Tlb {
    /// Creates an empty TLB with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "TLB needs at least one entry");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            stamp: 0,
            hits: 0,
            misses: 0,
            mru: None,
            index: HashMap::with_capacity_and_hasher(capacity, U64BuildHasher::default()),
            class_counts: [0; PAGE_CLASSES.len()],
            generation: 0,
        }
    }

    /// Looks up `va`, refreshing LRU on hit.
    ///
    /// The stamp counter is consumed only when it is assigned to an
    /// entry (scan-path hits and inserts); empty lookups, MRU hits, and
    /// misses leave it alone. Only the relative order of stamps is ever
    /// observable (through eviction), and that order is preserved.
    pub fn lookup(&mut self, va: VirtAddr) -> Option<TlbEntry> {
        if self.entries.is_empty() {
            self.misses += 1;
            return None;
        }
        if let Some(i) = self.mru {
            let (e, _) = self.entries[i];
            if e.covers(va) {
                self.hits += 1;
                return Some(e);
            }
        }
        for (c, page) in PAGE_CLASSES.iter().enumerate() {
            if self.class_counts[c] == 0 {
                continue;
            }
            let key = (va.as_u64() & !(page.bytes() - 1)) | c as u64;
            if let Some(&i) = self.index.get(&key) {
                self.stamp += 1;
                self.entries[i].1 = self.stamp;
                self.hits += 1;
                self.mru = Some(i);
                return Some(self.entries[i].0);
            }
        }
        self.misses += 1;
        None
    }

    /// Inserts a translation, evicting the LRU entry when full.
    ///
    /// Insert sits behind a page walk, so the same-page scan and the LRU
    /// search stay linear; only `lookup` is on the per-instruction path.
    pub fn insert(&mut self, entry: TlbEntry) {
        self.generation += 1;
        self.stamp += 1;
        // Replace an existing mapping of the same page, if any.
        let pos = if let Some(pos) = self
            .entries
            .iter()
            .position(|(e, _)| e.va_base == entry.va_base)
        {
            self.unindex(pos);
            self.entries[pos] = (entry, self.stamp);
            pos
        } else if self.entries.len() < self.capacity {
            self.entries.push((entry, self.stamp));
            self.entries.len() - 1
        } else {
            let pos = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(i, _)| i)
                .expect("capacity > 0");
            self.unindex(pos);
            self.entries[pos] = (entry, self.stamp);
            pos
        };
        self.index.insert(key_of(entry.va_base, entry.page), pos);
        self.class_counts[class_of(entry.page)] += 1;
        self.mru = Some(pos);
    }

    /// Removes entry `pos` from the index and class counts.
    fn unindex(&mut self, pos: usize) {
        let (e, _) = self.entries[pos];
        self.index.remove(&key_of(e.va_base, e.page));
        self.class_counts[class_of(e.page)] -= 1;
    }

    /// Drops every entry (context switch / mprotect shootdown).
    pub fn flush(&mut self) {
        self.generation += 1;
        self.entries.clear();
        self.index.clear();
        self.class_counts = [0; PAGE_CLASSES.len()];
        self.mru = None;
    }

    /// Drops entries covering `va` (single-page shootdown).
    pub fn flush_page(&mut self, va: VirtAddr) {
        self.generation += 1;
        self.entries.retain(|(e, _)| !e.covers(va));
        // Removal shifts indices; rebuild the side structures. Shootdowns
        // are rare (mprotect, munmap), so this stays off the hot path.
        self.index.clear();
        self.class_counts = [0; PAGE_CLASSES.len()];
        for (i, (e, _)) in self.entries.iter().enumerate() {
            self.index.insert(key_of(e.va_base, e.page), i);
            self.class_counts[class_of(e.page)] += 1;
        }
        self.mru = None;
    }

    /// Entry-set change counter (see the `generation` field). Lookups do
    /// not bump it: a hit changes which entries are *recent*, never
    /// which entries *exist*.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of valid entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(va: u64, pa: u64, page: PageSize) -> TlbEntry {
        TlbEntry {
            va_base: VirtAddr(va),
            pa_base: PhysAddr(pa),
            page,
            nx: false,
            writable: true,
            isa_tag: 0,
        }
    }

    #[test]
    fn lru_eviction() {
        let mut tlb = Tlb::new(2);
        tlb.insert(entry(0x1000, 0x1000, PageSize::Size4K));
        tlb.insert(entry(0x2000, 0x2000, PageSize::Size4K));
        tlb.lookup(VirtAddr(0x1000)); // touch first
        tlb.insert(entry(0x3000, 0x3000, PageSize::Size4K)); // evicts 0x2000
        assert!(tlb.lookup(VirtAddr(0x1000)).is_some());
        assert!(tlb.lookup(VirtAddr(0x2000)).is_none());
        assert!(tlb.lookup(VirtAddr(0x3000)).is_some());
    }

    #[test]
    fn huge_page_covers_gig() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(1 << 30, 1 << 30, PageSize::Size1G));
        let e = tlb.lookup(VirtAddr((1 << 30) + 0x1234_5678)).unwrap();
        assert_eq!(
            e.translate(VirtAddr((1 << 30) + 0x1234_5678)),
            PhysAddr((1 << 30) + 0x1234_5678)
        );
    }

    #[test]
    fn four_entries_cover_nxp_storage() {
        // §V: 1 GiB pages let four TLB entries cover the 4 GiB NxP
        // window, avoiding most TLB misses.
        let mut tlb = Tlb::new(16);
        for i in 0..4u64 {
            tlb.insert(entry(
                0x5000_0000_0000 + i * (1 << 30),
                0x1_0000_0000 + i * (1 << 30),
                PageSize::Size1G,
            ));
        }
        let (h0, m0) = (tlb.hits(), tlb.misses());
        for i in 0..1000u64 {
            let va = VirtAddr(0x5000_0000_0000 + (i * 7919) % (4 << 30));
            assert!(tlb.lookup(va).is_some());
        }
        assert_eq!(tlb.hits() - h0, 1000);
        assert_eq!(tlb.misses(), m0);
    }

    #[test]
    fn same_page_reinsert_replaces() {
        let mut tlb = Tlb::new(2);
        tlb.insert(entry(0x1000, 0x1000, PageSize::Size4K));
        let mut e2 = entry(0x1000, 0x9000, PageSize::Size4K);
        e2.nx = true;
        tlb.insert(e2);
        assert_eq!(tlb.len(), 1);
        let got = tlb.lookup(VirtAddr(0x1000)).unwrap();
        assert!(got.nx);
        assert_eq!(got.pa_base, PhysAddr(0x9000));
    }

    #[test]
    fn page_shootdown() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(0x1000, 0x1000, PageSize::Size4K));
        tlb.insert(entry(0x2000, 0x2000, PageSize::Size4K));
        tlb.flush_page(VirtAddr(0x1000));
        assert!(tlb.lookup(VirtAddr(0x1000)).is_none());
        assert!(tlb.lookup(VirtAddr(0x2000)).is_some());
    }

    #[test]
    fn empty_lookup_counts_miss_without_scan() {
        let mut tlb = Tlb::new(4);
        assert!(tlb.lookup(VirtAddr(0x1000)).is_none());
        assert!(tlb.lookup(VirtAddr(0x2000)).is_none());
        assert_eq!(tlb.misses(), 2);
        assert_eq!(tlb.hits(), 0);
    }

    #[test]
    fn mru_repeats_preserve_lru_order() {
        // Hammering one entry through the MRU micro-cache must not
        // change which entry gets evicted: relative LRU order is the
        // only thing eviction observes, and the MRU entry already holds
        // the maximum stamp.
        let mut tlb = Tlb::new(3);
        tlb.insert(entry(0x1000, 0x1000, PageSize::Size4K));
        tlb.insert(entry(0x2000, 0x2000, PageSize::Size4K));
        tlb.insert(entry(0x3000, 0x3000, PageSize::Size4K));
        // Touch order: 0x1000 then 0x2000 (many MRU repeats) — so
        // 0x3000 is now least recent.
        tlb.lookup(VirtAddr(0x1000));
        for _ in 0..100 {
            assert!(tlb.lookup(VirtAddr(0x2abc)).is_some());
        }
        tlb.insert(entry(0x4000, 0x4000, PageSize::Size4K)); // must evict 0x3000
        assert!(tlb.lookup(VirtAddr(0x3000)).is_none());
        assert!(tlb.lookup(VirtAddr(0x1000)).is_some());
        assert!(tlb.lookup(VirtAddr(0x2000)).is_some());
        assert!(tlb.lookup(VirtAddr(0x4000)).is_some());
        assert_eq!(tlb.hits(), 101 + 3);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn mixed_page_sizes_probe_all_classes() {
        let mut tlb = Tlb::new(8);
        tlb.insert(entry(0x1000, 0x1000, PageSize::Size4K));
        tlb.insert(entry(2 << 30, 1 << 30, PageSize::Size1G));
        tlb.insert(entry(4 << 20, 2 << 20, PageSize::Size2M));
        assert!(tlb.lookup(VirtAddr(0x1abc)).is_some());
        assert!(tlb.lookup(VirtAddr((2 << 30) + 12345)).is_some());
        assert!(tlb.lookup(VirtAddr((4 << 20) + 777)).is_some());
        assert!(tlb.lookup(VirtAddr(0x8000)).is_none());
        assert_eq!(tlb.hits(), 3);
        assert_eq!(tlb.misses(), 1);
    }

    #[test]
    fn shootdown_then_reuse_keeps_index_consistent() {
        let mut tlb = Tlb::new(4);
        tlb.insert(entry(0x1000, 0x1000, PageSize::Size4K));
        tlb.insert(entry(0x2000, 0x2000, PageSize::Size4K));
        tlb.insert(entry(0x3000, 0x3000, PageSize::Size4K));
        tlb.flush_page(VirtAddr(0x2000));
        assert_eq!(tlb.len(), 2);
        assert!(tlb.lookup(VirtAddr(0x1000)).is_some());
        assert!(tlb.lookup(VirtAddr(0x3000)).is_some());
        tlb.insert(entry(0x2000, 0x9000, PageSize::Size4K));
        assert_eq!(
            tlb.lookup(VirtAddr(0x2000)).unwrap().pa_base,
            PhysAddr(0x9000)
        );
        tlb.flush();
        assert!(tlb.is_empty());
        assert!(tlb.lookup(VirtAddr(0x1000)).is_none());
    }

    #[test]
    fn hole_translation() {
        let hole = MmuHole {
            va_base: VirtAddr(0x9000_0000_0000),
            size: 1 << 20,
            pa_base: PhysAddr(0x8000_0000),
            executable: false,
        };
        assert!(hole.contains(VirtAddr(0x9000_0000_0010)));
        assert!(!hole.contains(VirtAddr(0x9000_0010_0000)));
        assert_eq!(
            hole.translate(VirtAddr(0x9000_0000_0010)),
            PhysAddr(0x8000_0010)
        );
    }
}
