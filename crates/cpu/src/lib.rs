#![warn(missing_docs)]
//! Core models: interpreting CPUs with TLBs, a programmable MMU, small
//! caches and the exception surface Flick's migration mechanism rides.
//!
//! Two core flavours are configured from the paper's Table I platform:
//!
//! * the **host core** — an x86-64-like core at 2.4 GHz decoding the
//!   variable-length encoding, walking page tables in local DRAM, and
//!   faulting when it fetches from a page with the **NX bit set**;
//! * the **NxP core** — an in-order RV64-like core at 200 MHz whose
//!   16-entry TLBs are filled by a *programmable MMU* that walks the
//!   host's page tables **across the PCIe link** (§IV-A), with BAR
//!   remap windows and optional bypass "holes", and which faults when
//!   it fetches from a page with the NX bit **clear** (the inverted
//!   convention of §IV-B2) or at a misaligned / undecodable address.
//!
//! The interpreter charges simulated time for every instruction and
//! memory access, so microbenchmark timing emerges from the same
//! mechanisms the paper measures rather than from hard-coded totals.
//!
//! # Examples
//!
//! ```
//! use flick_cpu::{Core, CoreConfig, MemEnv};
//! use flick_mem::PhysMem;
//!
//! let env = MemEnv::paper_default();
//! let host = Core::new(CoreConfig::host());
//! let nxp = Core::new(CoreConfig::nxp());
//! assert!(host.clock().freq() > nxp.clock().freq());
//! ```

pub mod cache;
pub mod core_;
pub mod decoded;
pub mod tlb;

pub use cache::{Cache, CacheConfig};
pub use core_::{
    ChainCounters, Core, CoreConfig, CoreCounters, CpiModel, CpuContext, Exception, InstFaultKind,
    StopReason,
};
pub use decoded::DecodedCache;
pub use tlb::{MmuHole, Tlb, TlbEntry};

use flick_mem::{LatencyModel, SystemMap};

/// The memory environment shared by every requester: the physical map
/// and the latency model. Owned by the machine, passed by reference.
#[derive(Clone, Debug)]
pub struct MemEnv {
    /// Physical memory map (host view + BAR windows).
    pub map: SystemMap,
    /// Access latency model.
    pub latency: LatencyModel,
}

impl MemEnv {
    /// Paper-calibrated environment.
    pub fn paper_default() -> Self {
        MemEnv {
            map: SystemMap::paper_default(),
            latency: LatencyModel::paper_default(),
        }
    }
}

impl Default for MemEnv {
    fn default() -> Self {
        MemEnv::paper_default()
    }
}
