//! Exhaustive interpreter-semantics tests: every ALU operation, branch
//! condition, memory width and control-flow form is executed through
//! the full fetch→translate→decode→execute path on **both** cores and
//! compared against the reference semantics in `flick-isa`.

use flick_cpu::{Core, CoreConfig, MemEnv, StopReason};
use flick_isa::inst::AluOp;
use flick_isa::{abi, BranchOp, FuncBuilder, MemSize, TargetIsa};
use flick_mem::{PhysAddr, PhysMem, VirtAddr};
use flick_paging::{flags, AddressSpace, BumpFrameAlloc};
use flick_sim::Xoshiro256;

/// A fixture with low 16 MiB identity-mapped; `nx` selects whether the
/// code page is marked NX (required for the NxP core to execute).
struct Fx {
    mem: PhysMem,
    env: MemEnv,
    core: Core,
}

fn fixture(target: TargetIsa) -> Fx {
    let mut mem = PhysMem::new();
    let mut alloc = BumpFrameAlloc::new(PhysAddr(0x100_0000), PhysAddr(0x300_0000));
    let mut asp = AddressSpace::new(&mut mem, &mut alloc);
    asp.map_range(
        &mut mem,
        &mut alloc,
        VirtAddr(0),
        PhysAddr(0),
        16 << 20,
        flags::PRESENT | flags::WRITABLE | flags::USER,
    )
    .unwrap();
    if target != TargetIsa::Host {
        // Accelerators execute only from NX pages (inverted convention).
        asp.protect(&mut mem, VirtAddr(0x40_0000), 0x10_0000, flags::NX, 0)
            .unwrap();
    }
    let cfg = if target == TargetIsa::Host {
        CoreConfig::host()
    } else {
        CoreConfig::accel(target)
    };
    let mut core = Core::new(cfg);
    core.set_cr3(asp.cr3());
    core.set_pc(VirtAddr(0x40_0000));
    core.set_reg(abi::SP, 0xF0_0000);
    Fx {
        mem,
        env: MemEnv::paper_default(),
        core,
    }
}

/// Builds, loads and runs a function body; returns a0 at halt.
fn execute(target: TargetIsa, build: impl FnOnce(&mut FuncBuilder)) -> u64 {
    let mut fx = fixture(target);
    let mut f = FuncBuilder::new("t", target);
    build(&mut f);
    f.halt();
    let isa = target.isa();
    let enc = isa.encode(&f.finish()).unwrap();
    fx.mem.write_bytes(PhysAddr(0x40_0000), &enc.bytes);
    let stop = fx.core.run(&mut fx.mem, &fx.env, 10_000);
    assert_eq!(stop, StopReason::Halt, "program must halt cleanly");
    fx.core.reg(abi::A0)
}

const ALL_ALU: [AluOp; 13] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Divu,
    AluOp::Remu,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Sra,
    AluOp::Slt,
    AluOp::Sltu,
];

#[test]
fn every_alu_op_matches_reference_on_both_cores() {
    let mut rng = Xoshiro256::seeded(99);
    // Edge-case operands plus random ones.
    let mut operands = vec![0u64, 1, 2, 63, 64, u64::MAX, 1 << 63, 0x8000_0000];
    for _ in 0..6 {
        operands.push(rng.next_u64());
    }
    for target in [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64] {
        for op in ALL_ALU {
            for (i, &a) in operands.iter().enumerate() {
                // Pair each operand with a rotated partner.
                let b = operands[(i + 3) % operands.len()];
                let got = execute(target, |f| {
                    f.li(abi::A1, a as i64);
                    f.li(abi::A2, b as i64);
                    f.push(flick_isa::Inst::Alu {
                        op,
                        rd: abi::A0,
                        rs1: abi::A1,
                        rs2: abi::A2,
                    });
                });
                assert_eq!(got, op.eval(a, b), "{target}: {op:?}({a:#x}, {b:#x})");
            }
        }
    }
}

#[test]
fn alu_immediates_sign_extend() {
    for target in [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64] {
        let got = execute(target, |f| {
            f.li(abi::A0, 10);
            f.addi(abi::A0, abi::A0, -11);
        });
        assert_eq!(got, u64::MAX, "{target}: 10 + (-11) wraps to -1");
        let got = execute(target, |f| {
            f.li(abi::A0, -1);
            f.andi(abi::A0, abi::A0, -16);
        });
        assert_eq!(got, (-16i64) as u64, "{target}: imm sign-extends for andi");
    }
}

#[test]
fn every_branch_condition_both_directions() {
    let cases: [(u64, u64); 5] = [
        (0, 0),
        (1, 2),
        (2, 1),
        (u64::MAX, 0), // -1 vs 0: signed/unsigned diverge
        (0, u64::MAX),
    ];
    for target in [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64] {
        for op in [
            BranchOp::Eq,
            BranchOp::Ne,
            BranchOp::Lt,
            BranchOp::Ge,
            BranchOp::Ltu,
            BranchOp::Geu,
        ] {
            for (a, b) in cases {
                let got = execute(target, |f| {
                    let taken = f.new_label();
                    let out = f.new_label();
                    f.li(abi::A1, a as i64);
                    f.li(abi::A2, b as i64);
                    f.push(flick_isa::Inst::Branch {
                        op,
                        rs1: abi::A1,
                        rs2: abi::A2,
                        target: flick_isa::Target::Label(taken),
                    });
                    f.li(abi::A0, 0); // not taken
                    f.jmp(out);
                    f.bind(taken);
                    f.li(abi::A0, 1);
                    f.bind(out);
                });
                assert_eq!(
                    got != 0,
                    op.eval(a, b),
                    "{target}: {op:?}({a:#x}, {b:#x})"
                );
            }
        }
    }
}

#[test]
fn loads_zero_extend_per_width() {
    for target in [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64] {
        for (size, expect) in [
            (MemSize::B1, 0xF8u64),
            (MemSize::B2, 0xF7F8),
            (MemSize::B4, 0xF5F6_F7F8),
            (MemSize::B8, 0xF1F2_F3F4_F5F6_F7F8),
        ] {
            let got = execute(target, |f| {
                f.li(abi::A1, 0x50_0000);
                f.li(abi::T0, 0xF1F2_F3F4_F5F6_F7F8u64 as i64);
                f.st(abi::T0, abi::A1, 0, MemSize::B8);
                f.ld(abi::A0, abi::A1, 0, size);
            });
            assert_eq!(got, expect, "{target}: {size:?} load zero-extends");
        }
    }
}

#[test]
fn stores_truncate_per_width() {
    for target in [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64] {
        let got = execute(target, |f| {
            f.li(abi::A1, 0x50_0000);
            f.li(abi::T0, -1); // all ones
            f.st(abi::T0, abi::A1, 0, MemSize::B8);
            f.li(abi::T0, 0);
            f.st(abi::T0, abi::A1, 0, MemSize::B2); // clear low 2 bytes
            f.ld(abi::A0, abi::A1, 0, MemSize::B8);
        });
        assert_eq!(got, 0xFFFF_FFFF_FFFF_0000, "{target}");
    }
}

#[test]
fn negative_offsets_and_sp_addressing() {
    for target in [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64] {
        let got = execute(target, |f| {
            f.li(abi::T0, 777);
            f.st(abi::T0, abi::SP, -24, MemSize::B8);
            f.ld(abi::A0, abi::SP, -24, MemSize::B8);
        });
        assert_eq!(got, 777, "{target}");
    }
}

#[test]
fn jalr_links_and_jumps() {
    for target in [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64] {
        // call a local leaf via function pointer; leaf returns 31.
        let got = execute(target, |f| {
            let leaf = f.new_label();
            let over = f.new_label();
            f.jmp(over);
            f.bind(leaf);
            f.li(abi::A0, 31);
            f.ret();
            f.bind(over);
            // Materialise the leaf address: base 0x40_0000 + offset.
            // Offsets differ per ISA, so compute via jal-link trick:
            // jal t0, next; next: t0 = VA of next inst.
            f.li(abi::A0, 0);
            // Use a simple in-function call instead: jalr through a
            // register holding the label address is not expressible
            // portably here, so exercise call/ret via jal.
            f.push(flick_isa::Inst::Jal {
                rd: abi::RA,
                target: flick_isa::Target::Label(leaf),
            });
        });
        assert_eq!(got, 31, "{target}");
    }
}

#[test]
fn division_by_zero_follows_riscv_semantics() {
    for target in [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64] {
        let q = execute(target, |f| {
            f.li(abi::A1, 42);
            f.li(abi::A2, 0);
            f.divu(abi::A0, abi::A1, abi::A2);
        });
        assert_eq!(q, u64::MAX, "{target}: x/0 = all ones");
        let r = execute(target, |f| {
            f.li(abi::A1, 42);
            f.li(abi::A2, 0);
            f.remu(abi::A0, abi::A1, abi::A2);
        });
        assert_eq!(r, 42, "{target}: x%0 = x");
    }
}

#[test]
fn deep_call_chain_uses_stack_correctly() {
    // 64 nested local calls each pushing a frame.
    for target in [TargetIsa::Host, TargetIsa::Nxp, TargetIsa::Arm64] {
        let got = execute(target, |f| {
            let rec = f.new_label();
            let base = f.new_label();
            let start = f.new_label();
            f.jmp(start);
            // rec(n): n == 0 ? 0 : rec(n-1) + 1
            f.bind(rec);
            f.beq(abi::A0, abi::ZERO, base);
            f.addi(abi::SP, abi::SP, -16);
            f.st(abi::RA, abi::SP, 0, MemSize::B8);
            f.addi(abi::A0, abi::A0, -1);
            f.push(flick_isa::Inst::Jal {
                rd: abi::RA,
                target: flick_isa::Target::Label(rec),
            });
            f.addi(abi::A0, abi::A0, 1);
            f.ld(abi::RA, abi::SP, 0, MemSize::B8);
            f.addi(abi::SP, abi::SP, 16);
            f.ret();
            f.bind(base);
            f.li(abi::A0, 0);
            f.ret();
            f.bind(start);
            f.li(abi::A0, 64);
            f.push(flick_isa::Inst::Jal {
                rd: abi::RA,
                target: flick_isa::Target::Label(rec),
            });
        });
        assert_eq!(got, 64, "{target}");
    }
}
