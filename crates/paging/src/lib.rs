#![warn(missing_docs)]
//! x86-64 four-level page tables with the NX bit and huge pages.
//!
//! Flick repurposes ordinary x86-64 virtual-memory machinery as its
//! migration trigger: functions compiled for the NxP live in pages whose
//! PTE has the **NX (no-execute, bit 63)** bit set, so a host fetch traps,
//! while the NxP inverts the convention and traps on pages *without* NX
//! (§III-B). The NxP's programmable MMU walks the *same* page tables as
//! the host — same CR3, same PTE layout, including 2 MiB and 1 GiB huge
//! pages, which §V uses to keep the 4 GiB NxP storage in just four 1 GiB
//! TLB entries.
//!
//! This crate implements the PTE bit layout, table construction
//! ([`AddressSpace`]), the software walker ([`walk`]) and
//! `mprotect`-style permission flipping ([`AddressSpace::protect`]).
//!
//! # Examples
//!
//! ```
//! use flick_mem::{PhysAddr, PhysMem, VirtAddr};
//! use flick_paging::{flags, AddressSpace, BumpFrameAlloc, PageSize};
//!
//! let mut mem = PhysMem::new();
//! let mut alloc = BumpFrameAlloc::new(PhysAddr(0x10_0000), PhysAddr(0x20_0000));
//! let mut aspace = AddressSpace::new(&mut mem, &mut alloc);
//! aspace.map(
//!     &mut mem, &mut alloc,
//!     VirtAddr(0x40_0000), PhysAddr(0x5000), PageSize::Size4K,
//!     flags::PRESENT | flags::WRITABLE | flags::USER,
//! )?;
//! let t = flick_paging::walk(|a| mem.read_u64(a), aspace.cr3(), VirtAddr(0x40_0123))?;
//! assert_eq!(t.pa, PhysAddr(0x5123));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use flick_mem::{PhysAddr, PhysMem, VirtAddr, PAGE_SIZE};
use std::error::Error;
use std::fmt;

/// PTE flag bits (x86-64 layout).
pub mod flags {
    /// Present.
    pub const PRESENT: u64 = 1 << 0;
    /// Writable.
    pub const WRITABLE: u64 = 1 << 1;
    /// User-accessible.
    pub const USER: u64 = 1 << 2;
    /// Accessed (set by walkers in hardware; unused in the model).
    pub const ACCESSED: u64 = 1 << 5;
    /// Dirty.
    pub const DIRTY: u64 = 1 << 6;
    /// Page size — at PDPT/PD level marks a 1 GiB / 2 MiB leaf.
    pub const HUGE: u64 = 1 << 7;
    /// No-execute (XD). This is the bit Flick's migration trigger rides.
    pub const NX: u64 = 1 << 63;

    /// Low bit of the ISA-tag field. Bits 52–62 of an x86-64 PTE are
    /// software-available when 4-level paging is in use; Flick's loader
    /// stores `isa.tag() + 1` of the text's ISA in bits 52–54 of NX-set
    /// text pages so an N-way fleet can tell *whose* accelerator code a
    /// page holds. `0` means untagged (host text, data, stacks — or
    /// images produced before tagging existed, which every consumer must
    /// treat as classic-NxP text).
    pub const ISA_TAG_SHIFT: u64 = 52;
    /// Mask of the ISA-tag field (bits 52–54).
    pub const ISA_TAG_MASK: u64 = 0x7 << ISA_TAG_SHIFT;

    /// Flag bits encoding ISA tag `t` (pass `isa.tag() + 1`).
    ///
    /// # Panics
    ///
    /// Panics when `t` does not fit the 3-bit field.
    pub const fn isa_tag_bits(t: u8) -> u64 {
        assert!(t < 8, "ISA tag field is 3 bits");
        (t as u64) << ISA_TAG_SHIFT
    }
}

/// Mask of the physical-frame address bits in a PTE.
const ADDR_MASK: u64 = 0x000F_FFFF_FFFF_F000;

/// Leaf page sizes supported by the x86-64 format.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PageSize {
    /// 4 KiB leaf in the PT.
    Size4K,
    /// 2 MiB leaf in the PD.
    Size2M,
    /// 1 GiB leaf in the PDPT.
    Size1G,
}

impl PageSize {
    /// Size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            PageSize::Size4K => 4 << 10,
            PageSize::Size2M => 2 << 20,
            PageSize::Size1G => 1 << 30,
        }
    }

    /// Page-table level at which this leaf lives (0 = PT, 1 = PD, 2 = PDPT).
    pub const fn leaf_level(self) -> u8 {
        match self {
            PageSize::Size4K => 0,
            PageSize::Size2M => 1,
            PageSize::Size1G => 2,
        }
    }
}

impl fmt::Display for PageSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageSize::Size4K => write!(f, "4KiB"),
            PageSize::Size2M => write!(f, "2MiB"),
            PageSize::Size1G => write!(f, "1GiB"),
        }
    }
}

/// A raw page-table entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Pte(pub u64);

impl Pte {
    /// Builds an entry from a frame address and flags.
    ///
    /// # Panics
    ///
    /// Panics if `pa` has bits outside the frame-address mask.
    pub fn new(pa: PhysAddr, fl: u64) -> Self {
        assert_eq!(pa.as_u64() & !ADDR_MASK, 0, "frame address {pa} misaligned");
        Pte(pa.as_u64() | fl)
    }

    /// The frame (or next-level table) address.
    pub fn addr(self) -> PhysAddr {
        PhysAddr(self.0 & ADDR_MASK)
    }

    /// True when present.
    pub fn present(self) -> bool {
        self.0 & flags::PRESENT != 0
    }

    /// True when the NX bit is set.
    pub fn nx(self) -> bool {
        self.0 & flags::NX != 0
    }

    /// True when this is a huge-page leaf (only meaningful at PD/PDPT).
    pub fn huge(self) -> bool {
        self.0 & flags::HUGE != 0
    }

    /// True when writable.
    pub fn writable(self) -> bool {
        self.0 & flags::WRITABLE != 0
    }

    /// The ISA-tag field (0 = untagged; otherwise `isa.tag() + 1`).
    pub fn isa_tag(self) -> u8 {
        ((self.0 & flags::ISA_TAG_MASK) >> flags::ISA_TAG_SHIFT) as u8
    }

    /// Raw bits.
    pub fn bits(self) -> u64 {
        self.0
    }
}

/// A successful translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Translation {
    /// Physical address corresponding to the queried virtual address.
    pub pa: PhysAddr,
    /// Leaf page size (what a TLB entry would cover).
    pub page: PageSize,
    /// Virtual base of the leaf page.
    pub va_base: VirtAddr,
    /// Physical base of the leaf page.
    pub pa_base: PhysAddr,
    /// Effective NX: true if *any* level sets NX (x86 semantics).
    pub nx: bool,
    /// Effective writability: true only if every level allows writes.
    pub writable: bool,
    /// ISA tag of the *leaf* entry (0 = untagged). Unlike NX, the tag is
    /// pure software metadata, so intermediate levels do not contribute.
    pub isa_tag: u8,
    /// Number of page-table loads the walk performed (1 GiB page = 2,
    /// 2 MiB = 3, 4 KiB = 4) — this is what the programmable MMU pays
    /// over PCIe per miss.
    pub levels: u8,
}

/// A failed walk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalkError {
    /// A non-present entry was found at the given level (3 = PML4 … 0 = PT).
    NotPresent {
        /// Level index of the missing entry.
        level: u8,
        /// The address whose translation failed.
        va: VirtAddr,
    },
    /// An entry used a layout the hardware forbids — e.g. the PS (huge)
    /// bit set in a PML4 entry, which x86-64 reserves. Real MMUs raise a
    /// reserved-bit page fault here; the model surfaces the same thing
    /// as a typed error so a corrupted table degrades to a fault instead
    /// of aborting the simulator.
    CorruptEntry {
        /// Level index of the malformed entry.
        level: u8,
        /// The address whose translation failed.
        va: VirtAddr,
    },
}

impl fmt::Display for WalkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalkError::NotPresent { level, va } => {
                write!(f, "page not present at level {level} translating {va}")
            }
            WalkError::CorruptEntry { level, va } => {
                write!(f, "corrupt page-table entry at level {level} translating {va}")
            }
        }
    }
}

impl Error for WalkError {}

/// Walks the four-level tables rooted at `cr3`, reading each entry via
/// `read_pte` (callers charge per-read latency there — the NxP MMU passes
/// a closure that crosses the simulated PCIe link).
///
/// # Errors
///
/// Returns [`WalkError::NotPresent`] when an entry on the path is not
/// present, [`WalkError::CorruptEntry`] when an entry sets reserved
/// bits (the PS bit in a PML4 entry).
pub fn walk(
    mut read_pte: impl FnMut(PhysAddr) -> u64,
    cr3: PhysAddr,
    va: VirtAddr,
) -> Result<Translation, WalkError> {
    let mut table = cr3;
    let mut nx = false;
    let mut writable = true;
    for level in (0..=3u8).rev() {
        let loads = 4 - level;
        let slot = table + va.pt_index(level) as u64 * 8;
        let pte = Pte(read_pte(slot.as_u64().into()));
        if !pte.present() {
            return Err(WalkError::NotPresent { level, va });
        }
        if level == 3 && pte.huge() {
            // PS is reserved in PML4 entries: a table this malformed can
            // only come from corruption, and hardware faults on it.
            return Err(WalkError::CorruptEntry { level, va });
        }
        nx |= pte.nx();
        writable &= pte.writable();
        let is_leaf = level == 0 || (pte.huge() && (level == 1 || level == 2));
        if is_leaf {
            let page = match level {
                0 => PageSize::Size4K,
                1 => PageSize::Size2M,
                _ => PageSize::Size1G,
            };
            let mask = page.bytes() - 1;
            let pa_base = PhysAddr(pte.addr().as_u64() & !mask);
            return Ok(Translation {
                pa: PhysAddr(pa_base.as_u64() | (va.as_u64() & mask)),
                page,
                va_base: VirtAddr(va.as_u64() & !mask),
                pa_base,
                nx,
                writable,
                isa_tag: pte.isa_tag(),
                levels: loads,
            });
        }
        table = pte.addr();
    }
    // Level 0 entries are always leaves, so the loop cannot fall
    // through — but a typed error beats `unreachable!` if that
    // invariant ever breaks under corruption.
    Err(WalkError::CorruptEntry { level: 0, va })
}

/// Allocates physical frames for page tables (and anything else the OS
/// model needs) by bumping through a reserved range of host DRAM.
///
/// # Examples
///
/// ```
/// use flick_mem::PhysAddr;
/// use flick_paging::BumpFrameAlloc;
///
/// let mut a = BumpFrameAlloc::new(PhysAddr(0x1000), PhysAddr(0x4000));
/// assert_eq!(a.alloc_frame(), PhysAddr(0x1000));
/// assert_eq!(a.alloc_frame(), PhysAddr(0x2000));
/// assert_eq!(a.remaining_frames(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct BumpFrameAlloc {
    next: PhysAddr,
    end: PhysAddr,
}

impl BumpFrameAlloc {
    /// Creates an allocator over `[start, end)`; both must be 4 KiB
    /// aligned.
    ///
    /// # Panics
    ///
    /// Panics on misaligned bounds or an empty range.
    pub fn new(start: PhysAddr, end: PhysAddr) -> Self {
        assert!(start.is_aligned(PAGE_SIZE) && end.is_aligned(PAGE_SIZE));
        assert!(start < end, "empty frame range");
        BumpFrameAlloc { next: start, end }
    }

    /// Allocates one zeroed-by-convention 4 KiB frame.
    ///
    /// # Panics
    ///
    /// Panics when the range is exhausted.
    pub fn alloc_frame(&mut self) -> PhysAddr {
        assert!(self.next < self.end, "frame allocator exhausted");
        let f = self.next;
        self.next += PAGE_SIZE;
        f
    }

    /// Allocates `n` physically contiguous frames and returns the base.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` frames remain.
    pub fn alloc_contiguous(&mut self, n: u64) -> PhysAddr {
        assert!(
            self.next.as_u64() + n * PAGE_SIZE <= self.end.as_u64(),
            "frame allocator exhausted"
        );
        let f = self.next;
        self.next += n * PAGE_SIZE;
        f
    }

    /// Frames still available.
    pub fn remaining_frames(&self) -> u64 {
        (self.end - self.next) / PAGE_SIZE
    }

    /// The next frame this allocator would hand out. Because allocation
    /// is a pure bump, the frames a code path consumed are exactly
    /// `[watermark-before, watermark-after)` — the OS model uses this
    /// to attribute frame ranges to the process that allocated them.
    pub fn watermark(&self) -> PhysAddr {
        self.next
    }
}

/// Errors from address-space manipulation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapError {
    /// The virtual or physical address is not aligned to the page size.
    Misaligned,
    /// The mapping would replace an existing leaf.
    AlreadyMapped(VirtAddr),
    /// `protect` hit a non-present page.
    NotMapped(VirtAddr),
    /// `protect` range partially covers a huge page.
    SplitsHugePage(VirtAddr),
}

impl fmt::Display for MapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MapError::Misaligned => write!(f, "address not aligned to page size"),
            MapError::AlreadyMapped(va) => write!(f, "{va} is already mapped"),
            MapError::NotMapped(va) => write!(f, "{va} is not mapped"),
            MapError::SplitsHugePage(va) => write!(f, "range splits huge page at {va}"),
        }
    }
}

impl Error for MapError {}

/// A process address space: a CR3 root plus construction helpers.
///
/// Tables are stored *in simulated host DRAM* ([`PhysMem`]), exactly as on
/// the prototype — which is why the NxP's TLB misses are expensive: its
/// MMU must read these very bytes across PCIe.
#[derive(Clone, Copy, Debug)]
pub struct AddressSpace {
    cr3: PhysAddr,
}

impl AddressSpace {
    /// Allocates an empty PML4 and wraps it.
    pub fn new(mem: &mut PhysMem, alloc: &mut BumpFrameAlloc) -> Self {
        let cr3 = alloc.alloc_frame();
        mem.fill(cr3, PAGE_SIZE, 0);
        AddressSpace { cr3 }
    }

    /// Adopts an existing root (used when switching to a saved CR3).
    pub fn from_cr3(cr3: PhysAddr) -> Self {
        AddressSpace { cr3 }
    }

    /// The page-table base register value (what x86 calls CR3).
    pub fn cr3(&self) -> PhysAddr {
        self.cr3
    }

    /// Maps one page of the given size.
    ///
    /// # Errors
    ///
    /// [`MapError::Misaligned`] for unaligned addresses,
    /// [`MapError::AlreadyMapped`] if a leaf already exists.
    pub fn map(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BumpFrameAlloc,
        va: VirtAddr,
        pa: PhysAddr,
        size: PageSize,
        fl: u64,
    ) -> Result<(), MapError> {
        if !va.is_aligned(size.bytes()) || !pa.is_aligned(size.bytes()) {
            return Err(MapError::Misaligned);
        }
        let leaf_level = size.leaf_level();
        let table = self.leaf_table(mem, alloc, va, leaf_level)?;
        let slot = PhysAddr(table.as_u64() + va.pt_index(leaf_level) as u64 * 8);
        if Pte(mem.read_u64(slot)).present() {
            return Err(MapError::AlreadyMapped(va));
        }
        let leaf_fl = if leaf_level > 0 { fl | flags::HUGE } else { fl };
        mem.write_u64(slot, Pte::new(pa, leaf_fl).bits());
        Ok(())
    }

    /// Walks (allocating tables as needed) down to the table that holds
    /// `va`'s leaf entry at `leaf_level`, returning the table base.
    fn leaf_table(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BumpFrameAlloc,
        va: VirtAddr,
        leaf_level: u8,
    ) -> Result<PhysAddr, MapError> {
        let mut table = self.cr3;
        for level in (leaf_level + 1..=3).rev() {
            let slot = PhysAddr(table.as_u64() + va.pt_index(level) as u64 * 8);
            let pte = Pte(mem.read_u64(slot));
            if pte.present() {
                if pte.huge() {
                    return Err(MapError::AlreadyMapped(va));
                }
                table = pte.addr();
            } else {
                let new = alloc.alloc_frame();
                mem.fill(new, PAGE_SIZE, 0);
                // Intermediate entries are maximally permissive; leaves
                // decide effective permissions (Linux convention).
                mem.write_u64(
                    slot,
                    Pte::new(new, flags::PRESENT | flags::WRITABLE | flags::USER).bits(),
                );
                table = new;
            }
        }
        Ok(table)
    }

    /// Maps a contiguous `[va, va+len)` → `[pa, pa+len)` range with 4 KiB
    /// pages.
    ///
    /// One leaf table serves 512 consecutive 4 KiB pages, so the walk
    /// from CR3 is resolved once per 2 MiB block instead of once per
    /// page, and the block's whole PTE run is read, checked and written
    /// back as one slice (two `PhysMem` accesses per block instead of
    /// two per page). The tables and PTEs written are byte-identical to
    /// mapping each page individually — including on error, where every
    /// page before the colliding one stays mapped; multi-MiB loader
    /// mappings (stacks, BAR windows) just stop paying per-page
    /// `PhysMem` tolls to rediscover the same table.
    ///
    /// # Errors
    ///
    /// Propagates [`MapError`] from individual page mappings.
    pub fn map_range(
        &mut self,
        mem: &mut PhysMem,
        alloc: &mut BumpFrameAlloc,
        va: VirtAddr,
        pa: PhysAddr,
        len: u64,
        fl: u64,
    ) -> Result<(), MapError> {
        if !va.is_aligned(PAGE_SIZE) || !pa.is_aligned(PAGE_SIZE) {
            return Err(MapError::Misaligned);
        }
        const ENTRIES: u64 = PAGE_SIZE / 8;
        let pages = len.div_ceil(PAGE_SIZE);
        let mut i = 0u64;
        while i < pages {
            let v = va + i * PAGE_SIZE;
            let table = self.leaf_table(mem, alloc, v, 0)?;
            let first = v.pt_index(0) as u64;
            let run = (ENTRIES - first).min(pages - i);
            let base = PhysAddr(table.as_u64() + first * 8);
            let mut buf = [0u8; PAGE_SIZE as usize];
            let bytes = (run * 8) as usize;
            mem.read_bytes(base, &mut buf[..bytes]);
            for k in 0..run {
                let off = (k * 8) as usize;
                let old = u64::from_le_bytes(buf[off..off + 8].try_into().unwrap());
                if Pte(old).present() {
                    // Keep the partially-mapped state identical to
                    // page-at-a-time mapping: everything before the
                    // collision lands, nothing after.
                    mem.write_bytes(base, &buf[..off]);
                    return Err(MapError::AlreadyMapped(v + k * PAGE_SIZE));
                }
                let p = pa + (i + k) * PAGE_SIZE;
                buf[off..off + 8].copy_from_slice(&Pte::new(p, fl).bits().to_le_bytes());
            }
            mem.write_bytes(base, &buf[..bytes]);
            i += run;
        }
        Ok(())
    }

    /// Finds the leaf PTE slot for `va`, if mapped. Returns `None` for
    /// unmapped addresses *and* for malformed tables (PS bit in a PML4
    /// entry), so `protect` reports [`MapError::NotMapped`] on a
    /// corrupted subtree rather than aborting.
    fn leaf_slot(&self, mem: &PhysMem, va: VirtAddr) -> Option<(PhysAddr, PageSize)> {
        let mut table = self.cr3;
        for level in (0..=3u8).rev() {
            let slot = PhysAddr(table.as_u64() + va.pt_index(level) as u64 * 8);
            let pte = Pte(mem.read_u64(slot));
            if !pte.present() {
                return None;
            }
            if level == 3 && pte.huge() {
                return None;
            }
            let is_leaf = level == 0 || (pte.huge() && level <= 2);
            if is_leaf {
                let size = match level {
                    0 => PageSize::Size4K,
                    1 => PageSize::Size2M,
                    _ => PageSize::Size1G,
                };
                return Some((slot, size));
            }
            table = pte.addr();
        }
        None
    }

    /// The `mprotect`-style primitive Flick's loader uses: sets or clears
    /// flag bits on every leaf covering `[va, va+len)`.
    ///
    /// This models the paper's *extended `mprotect()`* (§IV-C3), which the
    /// multi-ISA loader calls to set the NX bit on `.text.riscv` pages.
    ///
    /// # Errors
    ///
    /// [`MapError::NotMapped`] if part of the range has no translation;
    /// [`MapError::SplitsHugePage`] if the range does not cover an entire
    /// huge page it touches.
    pub fn protect(
        &mut self,
        mem: &mut PhysMem,
        va: VirtAddr,
        len: u64,
        set: u64,
        clear: u64,
    ) -> Result<(), MapError> {
        let mut cur = va.page_base();
        let end = VirtAddr(va.as_u64() + len).page_align_up();
        while cur < end {
            let (slot, size) = self.leaf_slot(mem, cur).ok_or(MapError::NotMapped(cur))?;
            let page_base = VirtAddr(cur.as_u64() & !(size.bytes() - 1));
            if (page_base < va.page_base()
                || page_base.as_u64() + size.bytes() > end.as_u64())
                && size != PageSize::Size4K
            {
                return Err(MapError::SplitsHugePage(cur));
            }
            let pte = Pte(mem.read_u64(slot));
            mem.write_u64(slot, (pte.bits() | set) & !clear);
            cur = VirtAddr(page_base.as_u64() + size.bytes());
        }
        Ok(())
    }

    /// Convenience: translation through this space with plain reads (host
    /// walker; no latency accounting).
    ///
    /// # Errors
    ///
    /// Propagates [`WalkError`] from the walk.
    pub fn translate(&self, mem: &PhysMem, va: VirtAddr) -> Result<Translation, WalkError> {
        walk(|a| mem.read_u64(a), self.cr3, va)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PhysMem, BumpFrameAlloc) {
        (
            PhysMem::new(),
            BumpFrameAlloc::new(PhysAddr(0x100_0000), PhysAddr(0x200_0000)),
        )
    }

    #[test]
    fn map_and_walk_4k() {
        let (mut mem, mut alloc) = setup();
        let mut asp = AddressSpace::new(&mut mem, &mut alloc);
        asp.map(
            &mut mem,
            &mut alloc,
            VirtAddr(0x40_0000),
            PhysAddr(0x7000),
            PageSize::Size4K,
            flags::PRESENT | flags::WRITABLE | flags::USER,
        )
        .unwrap();
        let t = asp.translate(&mem, VirtAddr(0x40_0ABC)).unwrap();
        assert_eq!(t.pa, PhysAddr(0x7ABC));
        assert_eq!(t.page, PageSize::Size4K);
        assert_eq!(t.levels, 4);
        assert!(!t.nx);
        assert!(t.writable);
    }

    #[test]
    fn walk_2m_huge_page() {
        let (mut mem, mut alloc) = setup();
        let mut asp = AddressSpace::new(&mut mem, &mut alloc);
        asp.map(
            &mut mem,
            &mut alloc,
            VirtAddr(0x20_0000),
            PhysAddr(0x20_0000),
            PageSize::Size2M,
            flags::PRESENT | flags::WRITABLE | flags::USER,
        )
        .unwrap();
        let t = asp.translate(&mem, VirtAddr(0x20_1234)).unwrap();
        assert_eq!(t.pa, PhysAddr(0x20_1234));
        assert_eq!(t.page, PageSize::Size2M);
        assert_eq!(t.levels, 3);
    }

    #[test]
    fn walk_1g_huge_page_covers_nxp_storage() {
        let (mut mem, mut alloc) = setup();
        let mut asp = AddressSpace::new(&mut mem, &mut alloc);
        // Map the 4 GiB NxP window with four 1 GiB pages, as §V does.
        for i in 0..4u64 {
            asp.map(
                &mut mem,
                &mut alloc,
                VirtAddr(0x40_0000_0000 + i * (1 << 30)),
                PhysAddr(0x1_0000_0000 + i * (1 << 30)),
                PageSize::Size1G,
                flags::PRESENT | flags::WRITABLE | flags::USER,
            )
            .unwrap();
        }
        let t = asp
            .translate(&mem, VirtAddr(0x40_0000_0000 + 3 * (1 << 30) + 0x55))
            .unwrap();
        assert_eq!(t.pa, PhysAddr(0x1_0000_0000 + 3 * (1 << 30) + 0x55));
        assert_eq!(t.page, PageSize::Size1G);
        assert_eq!(t.levels, 2);
    }

    #[test]
    fn not_present_reports_level() {
        let (mut mem, mut alloc) = setup();
        let asp = AddressSpace::new(&mut mem, &mut alloc);
        match asp.translate(&mem, VirtAddr(0x1234_5000)) {
            Err(WalkError::NotPresent { level: 3, .. }) => {}
            other => panic!("expected PML4 miss, got {other:?}"),
        }
    }

    #[test]
    fn double_map_rejected() {
        let (mut mem, mut alloc) = setup();
        let mut asp = AddressSpace::new(&mut mem, &mut alloc);
        let fl = flags::PRESENT | flags::USER;
        asp.map(&mut mem, &mut alloc, VirtAddr(0x1000), PhysAddr(0x1000), PageSize::Size4K, fl)
            .unwrap();
        assert_eq!(
            asp.map(&mut mem, &mut alloc, VirtAddr(0x1000), PhysAddr(0x2000), PageSize::Size4K, fl),
            Err(MapError::AlreadyMapped(VirtAddr(0x1000)))
        );
    }

    #[test]
    fn misaligned_map_rejected() {
        let (mut mem, mut alloc) = setup();
        let mut asp = AddressSpace::new(&mut mem, &mut alloc);
        assert_eq!(
            asp.map(
                &mut mem,
                &mut alloc,
                VirtAddr(0x1008),
                PhysAddr(0x1000),
                PageSize::Size4K,
                flags::PRESENT
            ),
            Err(MapError::Misaligned)
        );
    }

    #[test]
    fn protect_sets_and_clears_nx() {
        let (mut mem, mut alloc) = setup();
        let mut asp = AddressSpace::new(&mut mem, &mut alloc);
        let fl = flags::PRESENT | flags::USER;
        asp.map_range(&mut mem, &mut alloc, VirtAddr(0x8000), PhysAddr(0x8000), 0x3000, fl)
            .unwrap();
        // Set NX on the middle page only — the loader does exactly this
        // per-section operation for .text.riscv.
        asp.protect(&mut mem, VirtAddr(0x9000), 0x1000, flags::NX, 0).unwrap();
        assert!(!asp.translate(&mem, VirtAddr(0x8000)).unwrap().nx);
        assert!(asp.translate(&mem, VirtAddr(0x9000)).unwrap().nx);
        assert!(!asp.translate(&mem, VirtAddr(0xA000)).unwrap().nx);
        // And clear it back.
        asp.protect(&mut mem, VirtAddr(0x9000), 0x1000, 0, flags::NX).unwrap();
        assert!(!asp.translate(&mem, VirtAddr(0x9000)).unwrap().nx);
    }

    #[test]
    fn protect_sets_isa_tag_with_nx() {
        // The N-way loader's actual call shape: NX plus the text ISA's
        // tag in one protect, and both visible through the walker.
        let (mut mem, mut alloc) = setup();
        let mut asp = AddressSpace::new(&mut mem, &mut alloc);
        let fl = flags::PRESENT | flags::USER;
        asp.map_range(&mut mem, &mut alloc, VirtAddr(0x8000), PhysAddr(0x8000), 0x2000, fl)
            .unwrap();
        asp.protect(
            &mut mem,
            VirtAddr(0x9000),
            0x1000,
            flags::NX | flags::isa_tag_bits(3),
            0,
        )
        .unwrap();
        let t = asp.translate(&mem, VirtAddr(0x9000)).unwrap();
        assert!(t.nx);
        assert_eq!(t.isa_tag, 3);
        assert_eq!(asp.translate(&mem, VirtAddr(0x8000)).unwrap().isa_tag, 0);
        // Retagging: clear the old field, then set the new one (`protect`
        // applies `set` before `clear`, so one call cannot do both).
        asp.protect(&mut mem, VirtAddr(0x9000), 0x1000, 0, flags::ISA_TAG_MASK)
            .unwrap();
        asp.protect(&mut mem, VirtAddr(0x9000), 0x1000, flags::isa_tag_bits(1), 0)
            .unwrap();
        assert_eq!(asp.translate(&mem, VirtAddr(0x9000)).unwrap().isa_tag, 1);
    }

    #[test]
    fn protect_unmapped_errors() {
        let (mut mem, mut alloc) = setup();
        let mut asp = AddressSpace::new(&mut mem, &mut alloc);
        assert_eq!(
            asp.protect(&mut mem, VirtAddr(0x5000), 0x1000, flags::NX, 0),
            Err(MapError::NotMapped(VirtAddr(0x5000)))
        );
    }

    #[test]
    fn protect_partial_huge_page_errors() {
        let (mut mem, mut alloc) = setup();
        let mut asp = AddressSpace::new(&mut mem, &mut alloc);
        asp.map(
            &mut mem,
            &mut alloc,
            VirtAddr(0x20_0000),
            PhysAddr(0x20_0000),
            PageSize::Size2M,
            flags::PRESENT,
        )
        .unwrap();
        assert_eq!(
            asp.protect(&mut mem, VirtAddr(0x20_0000), 0x1000, flags::NX, 0),
            Err(MapError::SplitsHugePage(VirtAddr(0x20_0000)))
        );
    }

    #[test]
    fn nx_inherited_from_any_level() {
        // x86 semantics: XD on an upper-level entry poisons the subtree.
        let (mut mem, mut alloc) = setup();
        let mut asp = AddressSpace::new(&mut mem, &mut alloc);
        asp.map(
            &mut mem,
            &mut alloc,
            VirtAddr(0x1000),
            PhysAddr(0x1000),
            PageSize::Size4K,
            flags::PRESENT,
        )
        .unwrap();
        // Manually set NX on the PML4 entry.
        let slot = PhysAddr(asp.cr3().as_u64() + VirtAddr(0x1000).pt_index(3) as u64 * 8);
        let pte = mem.read_u64(slot);
        mem.write_u64(slot, pte | flags::NX);
        assert!(asp.translate(&mem, VirtAddr(0x1000)).unwrap().nx);
    }

    #[test]
    fn writable_requires_all_levels() {
        let (mut mem, mut alloc) = setup();
        let mut asp = AddressSpace::new(&mut mem, &mut alloc);
        asp.map(
            &mut mem,
            &mut alloc,
            VirtAddr(0x1000),
            PhysAddr(0x1000),
            PageSize::Size4K,
            flags::PRESENT | flags::WRITABLE,
        )
        .unwrap();
        // Clear WRITABLE on the PML4 entry; effective permission drops.
        let slot = PhysAddr(asp.cr3().as_u64() + VirtAddr(0x1000).pt_index(3) as u64 * 8);
        let pte = mem.read_u64(slot);
        mem.write_u64(slot, pte & !flags::WRITABLE);
        assert!(!asp.translate(&mem, VirtAddr(0x1000)).unwrap().writable);
    }

    #[test]
    fn corrupt_pml4_entry_degrades_to_typed_error() {
        // Regression for the `unreachable!` walk paths: a PML4 entry
        // with the reserved PS bit set (only possible via corruption)
        // must produce a typed error, not abort the simulator.
        let (mut mem, mut alloc) = setup();
        let mut asp = AddressSpace::new(&mut mem, &mut alloc);
        asp.map(
            &mut mem,
            &mut alloc,
            VirtAddr(0x1000),
            PhysAddr(0x1000),
            PageSize::Size4K,
            flags::PRESENT | flags::USER,
        )
        .unwrap();
        // Corrupt the PML4 entry: set the reserved huge bit.
        let slot = PhysAddr(asp.cr3().as_u64() + VirtAddr(0x1000).pt_index(3) as u64 * 8);
        let pte = mem.read_u64(slot);
        mem.write_u64(slot, pte | flags::HUGE);
        assert_eq!(
            asp.translate(&mem, VirtAddr(0x1000)),
            Err(WalkError::CorruptEntry { level: 3, va: VirtAddr(0x1000) })
        );
        // protect over the corrupted subtree degrades to NotMapped.
        assert_eq!(
            asp.protect(&mut mem, VirtAddr(0x1000), 0x1000, flags::NX, 0),
            Err(MapError::NotMapped(VirtAddr(0x1000)))
        );
        // Repairing the entry restores translation.
        mem.write_u64(slot, pte);
        assert!(asp.translate(&mem, VirtAddr(0x1000)).is_ok());
    }

    #[test]
    fn frame_alloc_exhaustion_panics() {
        let mut a = BumpFrameAlloc::new(PhysAddr(0x1000), PhysAddr(0x2000));
        a.alloc_frame();
        assert!(std::panic::catch_unwind(move || a.alloc_frame()).is_err());
    }

    #[test]
    fn contiguous_alloc_is_contiguous() {
        let mut a = BumpFrameAlloc::new(PhysAddr(0x1000), PhysAddr(0x10000));
        let base = a.alloc_contiguous(4);
        assert_eq!(base, PhysAddr(0x1000));
        assert_eq!(a.alloc_frame(), PhysAddr(0x5000));
    }
}
