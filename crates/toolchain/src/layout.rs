//! The virtual-address layout baked into the linker script.
//!
//! One address space, shared by every core regardless of ISA (§III-A);
//! the loader backs each range with the appropriate physical region.

/// Base of the host `.text` section.
pub const HOST_TEXT_BASE: u64 = 0x0040_0000;
/// Base of `.data`/`.bss` (host DRAM placement).
pub const HOST_DATA_BASE: u64 = 0x0080_0000;
/// Window mapping the entire 4 GiB NxP DRAM; `.data.nxp`, `.bss.nxp`
/// and the NxP heap live at its bottom. The loader covers it with four
/// 1 GiB huge pages, which is how §V keeps the whole NxP storage in
/// four TLB entries.
pub const NXP_WINDOW_VA: u64 = 0x5000_0000_0000;
/// Size of the NxP DRAM window.
pub const NXP_WINDOW_SIZE: u64 = 4 << 30;
/// Window mapping the NxP stack SRAM (BAR1).
pub const NXP_STACK_VA: u64 = 0x6000_0000_0000;
/// Size of the NxP stack window.
pub const NXP_STACK_SIZE: u64 = 16 << 20;
/// Top of the host user stack (grows down).
pub const HOST_STACK_TOP: u64 = 0x7FFF_FFFF_F000;
/// Host stack reservation.
pub const HOST_STACK_SIZE: u64 = 8 << 20;
/// Base of the host heap.
pub const HOST_HEAP_BASE: u64 = 0x1000_0000_0000;
/// Descriptor page: one shared page the kernel maps into the process for
/// migration descriptors (user handlers read call/return descriptors
/// from here).
pub const DESC_PAGE_VA: u64 = 0x2000_0000_0000;
/// NxP-side descriptor buffer: the last page of the stack-SRAM window,
/// where the DMA engine lands host→NxP descriptors (§IV-B1). The NxP
/// migration handler reads descriptors here at SRAM latency.
pub const NXP_DESC_VA: u64 = NXP_STACK_VA + NXP_STACK_SIZE - 4096;
/// Per-thread NxP stack slot size carved out of the SRAM window.
pub const NXP_STACK_SLOT: u64 = 64 << 10;

/// Section alignment the linker script enforces for all `.text`
/// sections: page granularity, so "pages holding code for each ISA have
/// different page table entries" (§IV-C2).
pub const TEXT_ALIGN: u64 = 4096;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_bases_are_page_aligned() {
        assert_eq!(HOST_TEXT_BASE % TEXT_ALIGN, 0);
        assert_eq!(NXP_WINDOW_VA % (1 << 30), 0, "1 GiB pages need 1 GiB VAs");
        assert_eq!(NXP_STACK_VA % TEXT_ALIGN, 0);
    }

    #[test]
    fn regions_do_not_overlap() {
        // Coarse sanity: ordered, disjoint ranges.
        let ranges = [
            (HOST_TEXT_BASE, HOST_DATA_BASE),
            (HOST_DATA_BASE, HOST_HEAP_BASE),
            (HOST_HEAP_BASE, DESC_PAGE_VA),
            (DESC_PAGE_VA, NXP_WINDOW_VA),
            (NXP_WINDOW_VA, NXP_WINDOW_VA + NXP_WINDOW_SIZE),
            (NXP_STACK_VA, NXP_STACK_VA + NXP_STACK_SIZE),
            (HOST_STACK_TOP - HOST_STACK_SIZE, HOST_STACK_TOP),
        ];
        for w in ranges.windows(2) {
            assert!(w[0].1 <= w[1].0, "{:#x?} overlaps {:#x?}", w[0], w[1]);
        }
    }
}
