//! Object files: sections, symbols, data definitions, and the compile
//! step that encodes functions into per-ISA sections.

use flick_isa::{EncodeError, Func, Reloc, TargetIsa};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Errors from [`compile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// A function failed to encode.
    Encode(EncodeError),
    /// Two functions or data objects share a name.
    DuplicateSymbol(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Encode(e) => write!(f, "encode error: {e}"),
            CompileError::DuplicateSymbol(s) => write!(f, "duplicate symbol `{s}`"),
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Encode(e) => Some(e),
            CompileError::DuplicateSymbol(_) => None,
        }
    }
}

impl From<EncodeError> for CompileError {
    fn from(e: EncodeError) -> Self {
        CompileError::Encode(e)
    }
}

/// Where the loader should place a section's bytes (§III-D's
/// instruction/data placement rules).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Placement {
    /// Host DRAM (default for `.text`, `.data`, `.bss`).
    HostDram,
    /// NxP local DRAM (annotated `.data.nxp` / `.bss.nxp`; also the
    /// region workloads allocate graph/list storage in).
    NxpDram,
}

/// What a section contains.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SectionKind {
    /// Executable code for one ISA.
    Text(TargetIsa),
    /// Initialised data.
    Data,
    /// Zero-initialised data (no bytes in the image).
    Bss,
}

/// A named section within an object file or linked image.
#[derive(Clone, Debug)]
pub struct Section {
    /// Section name (`.text`, `.text.riscv`, `.data`, `.data.nxp`, …).
    pub name: String,
    /// Content classification.
    pub kind: SectionKind,
    /// Placement target for the loader.
    pub placement: Placement,
    /// Initialised bytes (empty for `.bss`).
    pub bytes: Vec<u8>,
    /// Size (for `.bss`, may exceed `bytes.len()`).
    pub size: u64,
    /// Required alignment.
    pub align: u64,
    /// Symbols this section defines: name → offset.
    pub symbols: BTreeMap<String, u64>,
    /// Relocations into this section.
    pub relocs: Vec<Reloc>,
}

impl Section {
    fn new(name: &str, kind: SectionKind, placement: Placement, align: u64) -> Self {
        Section {
            name: name.to_string(),
            kind,
            placement,
            bytes: Vec::new(),
            size: 0,
            align,
            symbols: BTreeMap::new(),
            relocs: Vec::new(),
        }
    }

    /// True for `.text.riscv` / `.text.arm`-style sections: accelerator
    /// code, which the loader must mark NX for the host.
    pub fn is_nxp_text(&self) -> bool {
        matches!(self.kind, SectionKind::Text(isa) if isa.descriptor().nx_text)
    }

    /// The ISA whose code this section holds, if it is a text section.
    pub fn text_isa(&self) -> Option<TargetIsa> {
        match self.kind {
            SectionKind::Text(isa) => Some(isa),
            _ => None,
        }
    }
}

/// A global data definition supplied by the program.
#[derive(Clone, Debug)]
pub struct DataDef {
    /// Symbol name.
    pub name: String,
    /// Initialised contents; `None` means `.bss` of `size` bytes.
    pub bytes: Option<Vec<u8>>,
    /// Object size in bytes.
    pub size: u64,
    /// Alignment.
    pub align: u64,
    /// Placement annotation (the paper's source directive for NxP-local
    /// variables).
    pub placement: Placement,
    /// Pointer fields inside the object to patch with symbol addresses
    /// (offset, symbol) — e.g. function-pointer tables.
    pub pointers: Vec<(u64, String)>,
}

impl DataDef {
    /// An initialised data object.
    pub fn new(name: impl Into<String>, bytes: Vec<u8>) -> Self {
        let size = bytes.len() as u64;
        DataDef {
            name: name.into(),
            bytes: Some(bytes),
            size,
            align: 8,
            placement: Placement::HostDram,
            pointers: Vec::new(),
        }
    }

    /// A zero-initialised object of `size` bytes.
    pub fn bss(name: impl Into<String>, size: u64) -> Self {
        DataDef {
            name: name.into(),
            bytes: None,
            size,
            align: 8,
            placement: Placement::HostDram,
            pointers: Vec::new(),
        }
    }

    /// Sets the placement annotation.
    pub fn placed(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the alignment.
    pub fn aligned(mut self, align: u64) -> Self {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        self.align = align;
        self
    }

    /// Registers a pointer field at `offset` to be patched with the
    /// address of `symbol`.
    pub fn pointer_to(mut self, offset: u64, symbol: impl Into<String>) -> Self {
        self.pointers.push((offset, symbol.into()));
        self
    }
}

/// A compiled translation unit: one or more sections.
#[derive(Clone, Debug, Default)]
pub struct ObjectFile {
    /// Sections in this object.
    pub sections: Vec<Section>,
}

impl fmt::Display for ObjectFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.sections {
            writeln!(
                f,
                "{:16} {:?} {:?} size={} syms={}",
                s.name,
                s.kind,
                s.placement,
                s.size,
                s.symbols.len()
            )?;
        }
        Ok(())
    }
}

/// Pads a section so the next item starts aligned.
fn pad_to(sec: &mut Section, align: u64) {
    let pad = (align - (sec.size % align)) % align;
    sec.bytes.extend(std::iter::repeat_n(0u8, pad as usize));
    sec.size += pad;
}

/// The "compiler": partitions `funcs` by annotation, encodes each with
/// its ISA's encoder and gathers one text section per registered ISA
/// (`.text`, `.text.riscv`, `.text.arm`) plus data sections from
/// `data`. The classic host and NxP sections are always present; text
/// sections of further ISAs appear only when the program uses them, so
/// two-ISA programs produce byte-identical objects to the two-ISA era.
///
/// This mirrors §IV-C1: no instrumentation is inserted anywhere — the
/// migration trigger is entirely the OS's business.
///
/// # Errors
///
/// Propagates [`EncodeError`] from the per-ISA encoders.
pub fn compile(funcs: &[Func], data: &[DataDef]) -> Result<ObjectFile, CompileError> {
    // One text section slot per registry entry, in tag order.
    let mut texts: Vec<Section> = flick_isa::IsaId::all()
        .iter()
        .map(|d| {
            Section::new(
                d.text_section,
                SectionKind::Text(d.id),
                Placement::HostDram, // accelerator instructions stay in host DRAM (§III-D)
                crate::layout::TEXT_ALIGN,
            )
        })
        .collect();

    for func in funcs {
        let sec = &mut texts[func.target.tag() as usize];
        // Function entries align to the ISA's fetch alignment only — host
        // entries land at arbitrary byte offsets (variable length).
        pad_to(sec, func.target.isa().fetch_align());
        let enc = func.target.isa().encode(func)?;
        let base = sec.size;
        if sec.symbols.insert(func.name.clone(), base).is_some() {
            return Err(CompileError::DuplicateSymbol(func.name.clone()));
        }
        for mut r in enc.relocs {
            r.field_at += base as u32;
            r.inst_start += base as u32;
            sec.relocs.push(r);
        }
        for (name, label) in &func.exports {
            let inst_idx = func.labels[label.0 as usize].expect("bound label");
            let off = base + enc.offsets[inst_idx] as u64;
            if sec.symbols.insert(name.clone(), off).is_some() {
                return Err(CompileError::DuplicateSymbol(name.clone()));
            }
        }
        sec.bytes.extend_from_slice(&enc.bytes);
        sec.size += enc.bytes.len() as u64;
    }

    // Host and classic-NxP text are always emitted (even empty), as in
    // the two-ISA era; later ISAs' sections only when populated.
    let mut sections: Vec<Section> = texts
        .into_iter()
        .enumerate()
        .filter(|(i, s)| *i < 2 || s.size > 0)
        .map(|(_, s)| s)
        .collect();

    // Data sections, one per (placement, initialised?) bucket.
    let mut buckets: BTreeMap<(&str, SectionKind, Placement), Section> = BTreeMap::new();
    for d in data {
        let (name, kind) = match (&d.bytes, d.placement) {
            (Some(_), Placement::HostDram) => (".data", SectionKind::Data),
            (Some(_), Placement::NxpDram) => (".data.nxp", SectionKind::Data),
            (None, Placement::HostDram) => (".bss", SectionKind::Bss),
            (None, Placement::NxpDram) => (".bss.nxp", SectionKind::Bss),
        };
        let sec = buckets
            .entry((name, kind, d.placement))
            .or_insert_with(|| Section::new(name, kind, d.placement, 4096));
        let pad = (d.align - (sec.size % d.align)) % d.align;
        sec.size += pad;
        if let Some(bytes) = &d.bytes {
            sec.bytes.extend(std::iter::repeat_n(0u8, pad as usize));
            sec.bytes.extend_from_slice(bytes);
        }
        let base = sec.size;
        if sec.symbols.insert(d.name.clone(), base).is_some() {
            return Err(CompileError::DuplicateSymbol(d.name.clone()));
        }
        for (off, sym) in &d.pointers {
            sec.relocs.push(Reloc {
                field_at: (base + off) as u32,
                inst_start: (base + off) as u32,
                kind: flick_isa::RelocKind::Abs64,
                symbol: sym.clone(),
            });
        }
        sec.size += d.size;
    }
    sections.extend(buckets.into_values());

    Ok(ObjectFile { sections })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_isa::{abi, FuncBuilder};

    fn host_fn(name: &str) -> Func {
        let mut f = FuncBuilder::new(name, TargetIsa::Host);
        f.ret();
        f.finish()
    }

    fn nxp_fn(name: &str) -> Func {
        let mut f = FuncBuilder::new(name, TargetIsa::Nxp);
        f.addi(abi::A0, abi::A0, 1);
        f.ret();
        f.finish()
    }

    #[test]
    fn partitions_by_annotation() {
        let obj = compile(&[host_fn("a"), nxp_fn("b"), host_fn("c")], &[]).unwrap();
        let host = &obj.sections[0];
        let nxp = &obj.sections[1];
        assert_eq!(host.name, ".text");
        assert_eq!(nxp.name, ".text.riscv");
        assert!(host.symbols.contains_key("a"));
        assert!(host.symbols.contains_key("c"));
        assert!(nxp.symbols.contains_key("b"));
        assert!(!host.symbols.contains_key("b"));
    }

    #[test]
    fn nxp_entries_eight_aligned_host_entries_packed() {
        let obj = compile(
            &[host_fn("a"), host_fn("b"), nxp_fn("x"), nxp_fn("y")],
            &[],
        )
        .unwrap();
        let host = &obj.sections[0];
        // ret = 1 byte, so "b" starts at offset 1: unaligned, as real
        // x86 function entries are.
        assert_eq!(host.symbols["b"], 1);
        let nxp = &obj.sections[1];
        assert_eq!(nxp.symbols["y"] % 8, 0);
    }

    #[test]
    fn reloc_offsets_are_section_relative() {
        let mut f = FuncBuilder::new("caller", TargetIsa::Host);
        f.nop(); // 1 byte
        f.call("callee");
        f.ret();
        let obj = compile(&[host_fn("first"), f.finish()], &[]).unwrap();
        let host = &obj.sections[0];
        // first=1 byte, caller at 1, nop 1 byte, call at 2 → field at 4.
        assert_eq!(host.relocs[0].inst_start, 2);
        assert_eq!(host.relocs[0].field_at, 4);
    }

    #[test]
    fn data_buckets_by_placement() {
        let data = vec![
            DataDef::new("host_table", vec![1, 2, 3, 4]),
            DataDef::bss("nxp_buf", 1 << 20).placed(Placement::NxpDram),
            DataDef::new("nxp_init", vec![9; 16]).placed(Placement::NxpDram),
        ];
        let obj = compile(&[host_fn("main")], &data).unwrap();
        let names: Vec<_> = obj.sections.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&".data"));
        assert!(names.contains(&".data.nxp"));
        assert!(names.contains(&".bss.nxp"));
    }

    #[test]
    fn data_pointer_fields_become_relocs() {
        let data = vec![DataDef::new("fptr_table", vec![0u8; 16])
            .pointer_to(0, "main")
            .pointer_to(8, "main")];
        let obj = compile(&[host_fn("main")], &data).unwrap();
        let dsec = obj.sections.iter().find(|s| s.name == ".data").unwrap();
        assert_eq!(dsec.relocs.len(), 2);
        assert_eq!(dsec.relocs[1].field_at, 8);
    }

    #[test]
    fn bss_has_size_but_no_bytes() {
        let obj = compile(&[host_fn("main")], &[DataDef::bss("big", 4096)]).unwrap();
        let bss = obj.sections.iter().find(|s| s.name == ".bss").unwrap();
        assert_eq!(bss.size, 4096);
        assert!(bss.bytes.is_empty());
    }
}
