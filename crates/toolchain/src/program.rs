//! The user-facing program builder: what "writing a Flick application"
//! looks like in this reproduction.

use crate::image::MultiIsaImage;
use crate::link::{link, LinkError};
use crate::object::{compile, CompileError, DataDef};
use flick_isa::Func;
use std::error::Error;
use std::fmt;

/// Errors from [`ProgramBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// Compilation (encoding / symbol collection) failed.
    Compile(CompileError),
    /// Linking failed.
    Link(LinkError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Compile(e) => write!(f, "compile error: {e}"),
            BuildError::Link(e) => write!(f, "link error: {e}"),
        }
    }
}

impl Error for BuildError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            BuildError::Compile(e) => Some(e),
            BuildError::Link(e) => Some(e),
        }
    }
}

impl From<CompileError> for BuildError {
    fn from(e: CompileError) -> Self {
        BuildError::Compile(e)
    }
}

impl From<LinkError> for BuildError {
    fn from(e: LinkError) -> Self {
        BuildError::Link(e)
    }
}

/// Collects annotated functions and data, then compiles and links them
/// into a [`MultiIsaImage`].
///
/// # Examples
///
/// ```
/// use flick_isa::{abi, FuncBuilder, TargetIsa};
/// use flick_toolchain::{DataDef, Placement, ProgramBuilder};
///
/// let mut p = ProgramBuilder::new("app");
/// let mut main = FuncBuilder::new("main", TargetIsa::Host);
/// main.halt();
/// p.func(main.finish());
/// p.data(DataDef::bss("buffer", 4096).placed(Placement::NxpDram));
/// let image = p.build()?;
/// assert_eq!(image.name, "app");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    entry: String,
    funcs: Vec<Func>,
    data: Vec<DataDef>,
}

impl ProgramBuilder {
    /// Starts a program named `name` with entry symbol `main`.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            entry: "main".to_string(),
            funcs: Vec::new(),
            data: Vec::new(),
        }
    }

    /// Overrides the entry symbol.
    pub fn entry(&mut self, symbol: impl Into<String>) -> &mut Self {
        self.entry = symbol.into();
        self
    }

    /// Adds a function (its [`flick_isa::TargetIsa`] annotation decides
    /// which `.text` section it lands in).
    pub fn func(&mut self, f: Func) -> &mut Self {
        self.funcs.push(f);
        self
    }

    /// Adds a global data definition.
    pub fn data(&mut self, d: DataDef) -> &mut Self {
        self.data.push(d);
        self
    }

    /// Functions added so far.
    pub fn funcs(&self) -> &[Func] {
        &self.funcs
    }

    /// Compiles and links.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] for encoding or linking failures.
    pub fn build(&self) -> Result<MultiIsaImage, BuildError> {
        let obj = compile(&self.funcs, &self.data)?;
        Ok(link(&[obj], &self.name, &self.entry)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_isa::{abi, FuncBuilder, TargetIsa};

    #[test]
    fn builds_minimal_program() {
        let mut p = ProgramBuilder::new("x");
        let mut m = FuncBuilder::new("main", TargetIsa::Host);
        m.halt();
        p.func(m.finish());
        let img = p.build().unwrap();
        assert_eq!(img.entry, img.find_symbol("main").unwrap());
    }

    #[test]
    fn custom_entry() {
        let mut p = ProgramBuilder::new("x");
        p.entry("start");
        let mut m = FuncBuilder::new("start", TargetIsa::Host);
        m.halt();
        p.func(m.finish());
        assert!(p.build().is_ok());
    }

    #[test]
    fn link_error_surfaces() {
        let mut p = ProgramBuilder::new("x");
        let mut m = FuncBuilder::new("main", TargetIsa::Host);
        m.call("ghost");
        m.halt();
        p.func(m.finish());
        assert!(matches!(
            p.build(),
            Err(BuildError::Link(LinkError::Undefined(_)))
        ));
    }

    #[test]
    fn mixed_isa_program_links() {
        let mut p = ProgramBuilder::new("x");
        let mut m = FuncBuilder::new("main", TargetIsa::Host);
        m.call("nxp_work");
        m.halt();
        p.func(m.finish());
        let mut w = FuncBuilder::new("nxp_work", TargetIsa::Nxp);
        w.addi(abi::A0, abi::ZERO, 1);
        w.call("host_helper");
        w.ret();
        p.func(w.finish());
        let mut h = FuncBuilder::new("host_helper", TargetIsa::Host);
        h.ret();
        p.func(h.finish());
        let img = p.build().unwrap();
        assert_eq!(
            img.segments
                .iter()
                .filter(|s| matches!(s.kind, crate::SegmentKind::Text(_)))
                .count(),
            2
        );
    }
}
