//! The FatELF-like multi-ISA executable image.

use crate::object::Placement;
use flick_isa::TargetIsa;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Segment content classification (loader behaviour hangs off this).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SegmentKind {
    /// Executable code for one ISA. The loader sets the host NX bit on
    /// text pages of every `nx_text` ISA — that is Flick's whole
    /// trigger.
    Text(TargetIsa),
    /// Initialised data.
    Data,
    /// Zero-fill.
    Bss,
}

/// One loadable segment.
#[derive(Clone, Debug)]
pub struct Segment {
    /// Originating section name.
    pub name: String,
    /// Content kind.
    pub kind: SegmentKind,
    /// Physical placement the loader should honour.
    pub placement: Placement,
    /// Virtual base address (4 KiB aligned for text).
    pub va: u64,
    /// Size in bytes (≥ `bytes.len()`; the tail is zero-fill).
    pub size: u64,
    /// Initialised contents.
    pub bytes: Vec<u8>,
}

impl Segment {
    /// True when this segment holds accelerator-side instructions
    /// (NX-set under the Flick convention).
    pub fn is_nxp_text(&self) -> bool {
        matches!(self.kind, SegmentKind::Text(isa) if isa.descriptor().nx_text)
    }

    /// The ISA whose code this segment holds, if it is a text segment.
    pub fn text_isa(&self) -> Option<TargetIsa> {
        match self.kind {
            SegmentKind::Text(isa) => Some(isa),
            _ => None,
        }
    }

    /// True when `va` falls inside this segment.
    pub fn contains(&self, va: u64) -> bool {
        va >= self.va && va < self.va + self.size
    }
}

/// A linked multi-ISA executable: the reproduction's equivalent of the
/// paper's dual-ISA ELF file.
///
/// All internal references are resolved — "host code directly refers to
/// the code and data in the NxP sections" and vice versa (§IV-C2).
#[derive(Clone, Debug)]
pub struct MultiIsaImage {
    /// Program name.
    pub name: String,
    /// Entry point VA (the host `main`; threads always start on the
    /// host, §IV-B1).
    pub entry: u64,
    /// Loadable segments, sorted by VA.
    pub segments: Vec<Segment>,
    /// Global symbol table: name → VA.
    pub symbols: BTreeMap<String, u64>,
}

impl MultiIsaImage {
    /// Looks up a symbol's VA.
    pub fn find_symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// The segment containing `va`, if any.
    pub fn segment_containing(&self, va: u64) -> Option<&Segment> {
        self.segments.iter().find(|s| s.contains(va))
    }

    /// Total loadable size (including zero-fill).
    pub fn load_size(&self) -> u64 {
        self.segments.iter().map(|s| s.size).sum()
    }

    /// Serialises to the on-disk container format (`FLK1`).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"FLK1");
        write_str(&mut out, &self.name);
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.extend_from_slice(&(self.segments.len() as u32).to_le_bytes());
        for s in &self.segments {
            write_str(&mut out, &s.name);
            // Kind bytes 0/1 predate the registry (host text / NxP
            // text); 2/3 are data/bss. Text of later ISAs continues at
            // 4 (`tag + 2`) so old images parse unchanged.
            let kind: u8 = match s.kind {
                SegmentKind::Text(isa) if isa.tag() < 2 => isa.tag(),
                SegmentKind::Text(isa) => isa.tag() + 2,
                SegmentKind::Data => 2,
                SegmentKind::Bss => 3,
            };
            out.push(kind);
            out.push(match s.placement {
                Placement::HostDram => 0,
                Placement::NxpDram => 1,
            });
            out.extend_from_slice(&s.va.to_le_bytes());
            out.extend_from_slice(&s.size.to_le_bytes());
            out.extend_from_slice(&(s.bytes.len() as u64).to_le_bytes());
            out.extend_from_slice(&s.bytes);
        }
        out.extend_from_slice(&(self.symbols.len() as u32).to_le_bytes());
        for (name, va) in &self.symbols {
            write_str(&mut out, name);
            out.extend_from_slice(&va.to_le_bytes());
        }
        out
    }

    /// Parses the `FLK1` container.
    ///
    /// # Errors
    ///
    /// Returns [`ImageFormatError`] on bad magic or truncation.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, ImageFormatError> {
        let mut r = Reader { bytes, at: 0 };
        if r.take(4)? != b"FLK1" {
            return Err(ImageFormatError::BadMagic);
        }
        let name = r.str()?;
        let entry = r.u64()?;
        let nseg = r.u32()? as usize;
        let mut segments = Vec::with_capacity(nseg);
        for _ in 0..nseg {
            let name = r.str()?;
            let kind = match r.u8()? {
                0 => SegmentKind::Text(TargetIsa::Host),
                1 => SegmentKind::Text(TargetIsa::Nxp),
                2 => SegmentKind::Data,
                3 => SegmentKind::Bss,
                k => match TargetIsa::from_tag(k - 2) {
                    Some(isa) => SegmentKind::Text(isa),
                    None => return Err(ImageFormatError::BadTag(k)),
                },
            };
            let placement = match r.u8()? {
                0 => Placement::HostDram,
                1 => Placement::NxpDram,
                k => return Err(ImageFormatError::BadTag(k)),
            };
            let va = r.u64()?;
            let size = r.u64()?;
            let blen = r.u64()? as usize;
            let bytes = r.take(blen)?.to_vec();
            segments.push(Segment {
                name,
                kind,
                placement,
                va,
                size,
                bytes,
            });
        }
        let nsym = r.u32()? as usize;
        let mut symbols = BTreeMap::new();
        for _ in 0..nsym {
            let name = r.str()?;
            let va = r.u64()?;
            symbols.insert(name, va);
        }
        Ok(MultiIsaImage {
            name,
            entry,
            segments,
            symbols,
        })
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ImageFormatError> {
        if self.at + n > self.bytes.len() {
            return Err(ImageFormatError::Truncated);
        }
        let s = &self.bytes[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ImageFormatError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, ImageFormatError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ImageFormatError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, ImageFormatError> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|_| ImageFormatError::BadString)
    }
}

/// Container-format parse errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImageFormatError {
    /// Not an `FLK1` file.
    BadMagic,
    /// Ran out of bytes.
    Truncated,
    /// Unknown enum tag.
    BadTag(u8),
    /// Non-UTF-8 string.
    BadString,
}

impl fmt::Display for ImageFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImageFormatError::BadMagic => write!(f, "bad image magic"),
            ImageFormatError::Truncated => write!(f, "truncated image"),
            ImageFormatError::BadTag(t) => write!(f, "invalid tag {t}"),
            ImageFormatError::BadString => write!(f, "invalid string encoding"),
        }
    }
}

impl Error for ImageFormatError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MultiIsaImage {
        MultiIsaImage {
            name: "demo".into(),
            entry: 0x40_0000,
            segments: vec![
                Segment {
                    name: ".text".into(),
                    kind: SegmentKind::Text(TargetIsa::Host),
                    placement: Placement::HostDram,
                    va: 0x40_0000,
                    size: 16,
                    bytes: vec![0xBA; 16],
                },
                Segment {
                    name: ".bss.nxp".into(),
                    kind: SegmentKind::Bss,
                    placement: Placement::NxpDram,
                    va: 0x5000_0000_0000,
                    size: 4096,
                    bytes: vec![],
                },
            ],
            symbols: [("main".to_string(), 0x40_0000u64)].into_iter().collect(),
        }
    }

    #[test]
    fn serde_round_trip() {
        let img = sample();
        let bytes = img.to_bytes();
        let back = MultiIsaImage::from_bytes(&bytes).unwrap();
        assert_eq!(back.name, img.name);
        assert_eq!(back.entry, img.entry);
        assert_eq!(back.segments.len(), 2);
        assert_eq!(back.segments[1].size, 4096);
        assert_eq!(back.segments[1].placement, Placement::NxpDram);
        assert_eq!(back.find_symbol("main"), Some(0x40_0000));
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            MultiIsaImage::from_bytes(b"ELF!rest"),
            Err(ImageFormatError::BadMagic)
        );
    }

    #[test]
    fn truncation_rejected() {
        let bytes = sample().to_bytes();
        for cut in [3, 10, bytes.len() - 1] {
            assert!(MultiIsaImage::from_bytes(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn segment_queries() {
        let img = sample();
        assert!(img.segment_containing(0x40_0008).unwrap().name == ".text");
        assert!(img.segment_containing(0x999).is_none());
        assert_eq!(img.load_size(), 16 + 4096);
        assert!(img.segments[1].contains(0x5000_0000_0FFF));
        assert!(!img.segments[1].contains(0x5000_0000_1000));
    }

    // PartialEq for error comparison in tests only.
    impl PartialEq for MultiIsaImage {
        fn eq(&self, other: &Self) -> bool {
            self.to_bytes() == other.to_bytes()
        }
    }
}
