#![warn(missing_docs)]
//! The multi-ISA toolchain: compiler driver, linker and fat image format.
//!
//! §IV-C of the paper describes a toolchain flow that produces *one*
//! executable containing `.text` sections for several ISAs sharing a
//! single virtual address space:
//!
//! 1. **Compiler** — user annotations assign each function to an ISA;
//!    scripts split the source and invoke unmodified per-ISA compilers.
//!    Here, [`compile`] encodes each [`flick_isa::Func`] with its
//!    target's encoder into per-ISA object sections (`.text` vs
//!    `.text.riscv`).
//! 2. **Linker** — a custom linker script keeps per-ISA sections
//!    separate and 4 KiB-aligned (so each ISA's code has its own page
//!    table entries), then resolves symbols *across* sections with each
//!    ISA's relocation functions. [`link()`](link()) does exactly this and fails
//!    on undefined or duplicate symbols.
//! 3. **Image** — the result is a FatELF-like [`MultiIsaImage`] whose
//!    segments carry placement metadata (which sections the loader must
//!    put in NxP-local memory, which must get the NX bit).
//!
//! # Examples
//!
//! ```
//! use flick_isa::{abi, FuncBuilder, TargetIsa};
//! use flick_toolchain::ProgramBuilder;
//!
//! let mut p = ProgramBuilder::new("demo");
//! let mut main = FuncBuilder::new("main", TargetIsa::Host);
//! main.call("work");
//! main.halt();
//! p.func(main.finish());
//! let mut work = FuncBuilder::new("work", TargetIsa::Nxp);
//! work.addi(abi::A0, abi::ZERO, 42);
//! work.ret();
//! p.func(work.finish());
//!
//! let image = p.build()?;
//! assert!(image.find_symbol("work").is_some());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod image;
pub mod layout;
pub mod link;
pub mod object;
pub mod program;

pub use image::{MultiIsaImage, Segment, SegmentKind};
pub use link::{link, LinkError};
pub use object::{compile, CompileError, DataDef, ObjectFile, Placement, Section, SectionKind};
pub use program::ProgramBuilder;
