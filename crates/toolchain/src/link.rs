//! The multi-ISA linker.
//!
//! Implements the custom linker script of §IV-C2: per-ISA text sections
//! stay separate and 4 KiB-aligned, data sections are bucketed by
//! placement, and symbols are resolved *across* ISA boundaries with each
//! section's relocation method. The output image has every internal
//! reference resolved.

use crate::image::{MultiIsaImage, Segment, SegmentKind};
use crate::layout;
use crate::object::{ObjectFile, Placement, Section, SectionKind};
use flick_isa::RelocKind;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Linking errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// A referenced symbol is defined nowhere.
    Undefined(String),
    /// A symbol is defined more than once.
    Duplicate(String),
    /// A relocation points into a zero-fill section.
    RelocInBss(String),
    /// No entry symbol (`main` by default).
    NoEntry(String),
    /// A `Rel32` displacement overflowed (sections too far apart).
    RelocOverflow(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Undefined(s) => write!(f, "undefined symbol `{s}`"),
            LinkError::Duplicate(s) => write!(f, "duplicate symbol `{s}`"),
            LinkError::RelocInBss(s) => write!(f, "relocation against zero-fill data `{s}`"),
            LinkError::NoEntry(s) => write!(f, "entry symbol `{s}` not found"),
            LinkError::RelocOverflow(s) => write!(f, "relocation overflow for `{s}`"),
        }
    }
}

impl Error for LinkError {}

fn align_up(v: u64, a: u64) -> u64 {
    v.div_ceil(a) * a
}

/// Assigns virtual addresses to sections per the linker script.
fn assign_va(sections: &[Section]) -> Vec<u64> {
    let mut vas = vec![0u64; sections.len()];
    let mut host_text_cursor = layout::HOST_TEXT_BASE;
    let mut host_data_cursor = layout::HOST_DATA_BASE;
    let mut nxp_data_cursor = layout::NXP_WINDOW_VA;
    for (i, s) in sections.iter().enumerate() {
        let cursor = match (s.kind, s.placement) {
            (SectionKind::Text(_), _) => &mut host_text_cursor,
            (_, Placement::HostDram) => &mut host_data_cursor,
            (_, Placement::NxpDram) => &mut nxp_data_cursor,
        };
        *cursor = align_up(*cursor, s.align.max(layout::TEXT_ALIGN));
        vas[i] = *cursor;
        *cursor += s.size;
    }
    vas
}

/// Links one or more objects into a [`MultiIsaImage`].
///
/// # Errors
///
/// See [`LinkError`].
pub fn link(
    objects: &[ObjectFile],
    program_name: &str,
    entry_symbol: &str,
) -> Result<MultiIsaImage, LinkError> {
    // Flatten sections (merging same-name sections across objects would
    // be straightforward but our compiler emits one object).
    let sections: Vec<&Section> = objects.iter().flat_map(|o| o.sections.iter()).collect();
    let owned: Vec<Section> = sections.into_iter().cloned().collect();
    let vas = assign_va(&owned);

    // Global symbol table.
    let mut symbols: BTreeMap<String, u64> = BTreeMap::new();
    for (sec, &va) in owned.iter().zip(&vas) {
        for (name, off) in &sec.symbols {
            if symbols.insert(name.clone(), va + off).is_some() {
                return Err(LinkError::Duplicate(name.clone()));
            }
        }
    }

    // Apply relocations.
    let mut segments = Vec::with_capacity(owned.len());
    for (mut sec, &va) in owned.into_iter().zip(&vas) {
        for r in std::mem::take(&mut sec.relocs) {
            let target = *symbols
                .get(&r.symbol)
                .ok_or_else(|| LinkError::Undefined(r.symbol.clone()))?;
            if sec.kind == SectionKind::Bss {
                return Err(LinkError::RelocInBss(r.symbol.clone()));
            }
            let field = r.field_at as usize;
            match r.kind {
                RelocKind::Rel32 => {
                    let inst_va = va + r.inst_start as u64;
                    let disp = target as i64 - inst_va as i64;
                    let disp32 = i32::try_from(disp)
                        .map_err(|_| LinkError::RelocOverflow(r.symbol.clone()))?;
                    sec.bytes[field..field + 4].copy_from_slice(&disp32.to_le_bytes());
                }
                RelocKind::Abs64 => {
                    sec.bytes[field..field + 8].copy_from_slice(&target.to_le_bytes());
                }
                RelocKind::Abs64Pair => {
                    let lo = target as u32;
                    let hi = (target >> 32) as u32;
                    sec.bytes[field..field + 4].copy_from_slice(&lo.to_le_bytes());
                    sec.bytes[field + 8..field + 12].copy_from_slice(&hi.to_le_bytes());
                }
            }
        }
        if sec.size == 0 {
            continue; // drop empty sections (e.g. no NxP data)
        }
        segments.push(Segment {
            name: sec.name,
            kind: match sec.kind {
                SectionKind::Text(isa) => SegmentKind::Text(isa),
                SectionKind::Data => SegmentKind::Data,
                SectionKind::Bss => SegmentKind::Bss,
            },
            placement: sec.placement,
            va,
            size: sec.size,
            bytes: sec.bytes,
        });
    }
    segments.sort_by_key(|s| s.va);

    let entry = *symbols
        .get(entry_symbol)
        .ok_or_else(|| LinkError::NoEntry(entry_symbol.to_string()))?;

    Ok(MultiIsaImage {
        name: program_name.to_string(),
        entry,
        segments,
        symbols,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{compile, DataDef};
    use flick_isa::{abi, FuncBuilder, Isa, TargetIsa};

    fn build(funcs: Vec<flick_isa::Func>, data: Vec<DataDef>) -> Result<MultiIsaImage, LinkError> {
        let obj = compile(&funcs, &data).unwrap();
        link(&[obj], "t", "main")
    }

    fn main_calling(callee: &str) -> flick_isa::Func {
        let mut f = FuncBuilder::new("main", TargetIsa::Host);
        f.call(callee);
        f.halt();
        f.finish()
    }

    fn nxp_leaf(name: &str) -> flick_isa::Func {
        let mut f = FuncBuilder::new(name, TargetIsa::Nxp);
        f.addi(abi::A0, abi::ZERO, 7);
        f.ret();
        f.finish()
    }

    #[test]
    fn cross_isa_call_resolves() {
        let img = build(vec![main_calling("leaf"), nxp_leaf("leaf")], vec![]).unwrap();
        let text = img.segment_containing(img.entry).unwrap();
        assert_eq!(text.kind, SegmentKind::Text(TargetIsa::Host));
        // Decode main's call and check the displacement reaches `leaf`
        // in .text.riscv.
        let (inst, _) = Isa::X64.decode(&text.bytes).unwrap();
        match inst {
            flick_isa::Inst::Jal {
                target: flick_isa::Target::Rel(d),
                ..
            } => {
                assert_eq!((img.entry as i64 + d) as u64, img.find_symbol("leaf").unwrap());
            }
            other => panic!("expected jal, got {other}"),
        }
    }

    #[test]
    fn text_sections_page_separated() {
        let img = build(vec![main_calling("leaf"), nxp_leaf("leaf")], vec![]).unwrap();
        let host = img.segments.iter().find(|s| s.name == ".text").unwrap();
        let nxp = img
            .segments
            .iter()
            .find(|s| s.name == ".text.riscv")
            .unwrap();
        assert_eq!(host.va % 4096, 0);
        assert_eq!(nxp.va % 4096, 0);
        assert!(
            nxp.va >= align_up(host.va + host.size, 4096),
            "per-ISA text never shares a page"
        );
    }

    #[test]
    fn undefined_symbol_reported() {
        assert_eq!(
            build(vec![main_calling("nowhere")], vec![]),
            Err(LinkError::Undefined("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_symbol_across_objects_reported() {
        // Same symbol defined in two separately compiled objects.
        let a = compile(&[main_calling("leaf"), nxp_leaf("leaf")], &[]).unwrap();
        let b = compile(&[nxp_leaf("leaf")], &[]).unwrap();
        assert_eq!(
            link(&[a, b], "t", "main"),
            Err(LinkError::Duplicate("leaf".into()))
        );
    }

    #[test]
    fn missing_entry_reported() {
        let obj = compile(&[nxp_leaf("leaf")], &[]).unwrap();
        assert_eq!(
            link(&[obj], "t", "main"),
            Err(LinkError::NoEntry("main".into()))
        );
    }

    #[test]
    fn nxp_data_lands_in_nxp_window() {
        let img = build(
            vec![main_calling("leaf"), nxp_leaf("leaf")],
            vec![DataDef::bss("graph", 1 << 20).placed(Placement::NxpDram)],
        )
        .unwrap();
        let sym = img.find_symbol("graph").unwrap();
        assert!(sym >= layout::NXP_WINDOW_VA);
        assert!(sym < layout::NXP_WINDOW_VA + layout::NXP_WINDOW_SIZE);
    }

    #[test]
    fn abs64_data_pointer_patched() {
        let img = build(
            vec![main_calling("leaf"), nxp_leaf("leaf")],
            vec![DataDef::new("table", vec![0u8; 8]).pointer_to(0, "leaf")],
        )
        .unwrap();
        let data = img.segments.iter().find(|s| s.name == ".data").unwrap();
        let table_va = img.find_symbol("table").unwrap();
        let off = (table_va - data.va) as usize;
        let ptr = u64::from_le_bytes(data.bytes[off..off + 8].try_into().unwrap());
        assert_eq!(ptr, img.find_symbol("leaf").unwrap());
    }

    #[test]
    fn li_sym_pair_patched_for_nxp() {
        // An NxP function taking the address of a host function: the
        // Abs64Pair relocation splits the VA across the li pair.
        let mut f = FuncBuilder::new("take_ptr", TargetIsa::Nxp);
        f.li_sym(abi::A0, "main");
        f.ret();
        let img = build(vec![main_calling("take_ptr"), f.finish()], vec![]).unwrap();
        let nxp = img
            .segments
            .iter()
            .find(|s| s.name == ".text.riscv")
            .unwrap();
        let (inst, _) = Isa::Rv64.decode(&nxp.bytes).unwrap();
        assert_eq!(
            inst,
            flick_isa::Inst::Li {
                rd: abi::A0,
                imm: img.find_symbol("main").unwrap() as i64
            }
        );
    }

    #[test]
    fn bss_reloc_rejected() {
        let err = build(
            vec![main_calling("leaf"), nxp_leaf("leaf")],
            vec![DataDef::bss("z", 16).pointer_to(0, "leaf")],
        );
        assert_eq!(err, Err(LinkError::RelocInBss("leaf".into())));
    }
}
