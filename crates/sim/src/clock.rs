//! Per-component simulated clocks.

use crate::time::{Cycles, Hertz, Picos};

/// A simulated clock belonging to one component (a core, a DMA engine, …).
///
/// The clock tracks the component's local time in picoseconds and its
/// cycle count on the component's frequency. Components advance their own
/// clocks; the machine-level orchestration synchronises them by passing
/// explicit timestamps (e.g. "this descriptor arrives at T").
///
/// # Examples
///
/// ```
/// use flick_sim::{Clock, Hertz, Picos};
///
/// let mut c = Clock::new(Hertz::mhz(200));
/// c.tick(3);
/// c.advance(Picos::from_nanos(100));
/// assert_eq!(c.now(), Picos::from_nanos(115));
/// assert_eq!(c.cycles().count(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct Clock {
    freq: Hertz,
    now: Picos,
    cycles: u64,
    /// `freq.cycles(n).0` precomputed for n below [`SMALL_TICKS`]. The
    /// interpreter ticks 1–80 cycles per retired instruction, and the
    /// u128 division inside [`Hertz::cycles`] would otherwise sit on
    /// that per-instruction path. Values are identical by construction
    /// (the table is filled by calling `Hertz::cycles` itself).
    small: [u64; SMALL_TICKS],
}

/// Tick counts served from the precomputed table.
const SMALL_TICKS: usize = 128;

impl Clock {
    /// Creates a clock at time zero running at `freq`.
    pub fn new(freq: Hertz) -> Self {
        let mut small = [0u64; SMALL_TICKS];
        for (n, slot) in small.iter_mut().enumerate() {
            *slot = freq.cycles(n as u64).0;
        }
        Clock {
            freq,
            now: Picos::ZERO,
            cycles: 0,
            small,
        }
    }

    /// The clock's frequency.
    pub fn freq(&self) -> Hertz {
        self.freq
    }

    /// Current local time.
    pub fn now(&self) -> Picos {
        self.now
    }

    /// Total cycles ticked so far (does not include [`advance`] time).
    ///
    /// [`advance`]: Clock::advance
    pub fn cycles(&self) -> Cycles {
        Cycles(self.cycles)
    }

    /// Advances by `n` cycles of this clock's frequency.
    pub fn tick(&mut self, n: u64) {
        self.cycles += n;
        self.now += if (n as usize) < SMALL_TICKS {
            Picos(self.small[n as usize])
        } else {
            self.freq.cycles(n)
        };
    }

    /// Advances by an absolute duration (e.g. a memory stall), without
    /// counting cycles.
    pub fn advance(&mut self, d: Picos) {
        self.now += d;
    }

    /// Applies a batch of tick credit accumulated by the caller:
    /// `cycles` total cycles whose time `d` was pre-rounded per call
    /// with the exact [`tick`] rounding (i.e. `d` is a sum of
    /// `freq().cycles(n)` values, one per original tick). The block
    /// interpreter accumulates per-instruction ticks in registers and
    /// flushes them here once per block; the result is bit-identical to
    /// having called [`tick`] for each instruction.
    ///
    /// [`tick`]: Clock::tick
    pub fn credit(&mut self, cycles: u64, d: Picos) {
        self.cycles += cycles;
        self.now += d;
    }

    /// Moves local time forward to `t` if `t` is later; used when an
    /// external event (descriptor arrival, interrupt) wakes the component.
    pub fn sync_to(&mut self, t: Picos) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Resets time and cycle count to zero, keeping the frequency.
    pub fn reset(&mut self) {
        self.now = Picos::ZERO;
        self.cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_advances_by_cycle_time() {
        let mut c = Clock::new(Hertz::mhz(100)); // 10ns cycles
        c.tick(7);
        assert_eq!(c.now(), Picos::from_nanos(70));
        assert_eq!(c.cycles(), Cycles(7));
    }

    #[test]
    fn advance_does_not_count_cycles() {
        let mut c = Clock::new(Hertz::mhz(100));
        c.advance(Picos::from_micros(1));
        assert_eq!(c.cycles(), Cycles::ZERO);
        assert_eq!(c.now(), Picos::from_micros(1));
    }

    #[test]
    fn sync_to_only_moves_forward() {
        let mut c = Clock::new(Hertz::mhz(100));
        c.advance(Picos::from_nanos(50));
        c.sync_to(Picos::from_nanos(20));
        assert_eq!(c.now(), Picos::from_nanos(50));
        c.sync_to(Picos::from_nanos(80));
        assert_eq!(c.now(), Picos::from_nanos(80));
    }

    #[test]
    fn reset_keeps_frequency() {
        let mut c = Clock::new(Hertz::mhz(200));
        c.tick(10);
        c.reset();
        assert_eq!(c.now(), Picos::ZERO);
        assert_eq!(c.freq(), Hertz::mhz(200));
    }
}
