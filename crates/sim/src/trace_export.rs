//! Chrome-trace / Perfetto JSON export.
//!
//! Renders a [`Trace`] plus completed migration [`Span`]s as the Chrome
//! trace-event format (the JSON flavour understood by `ui.perfetto.dev`
//! and `chrome://tracing`): one track per [`CoreId`], an instant event
//! per traced hardware/OS event, a complete ("X") slice per span
//! segment on the core that executed it, and an async ("b"/"e") track
//! per migration so concurrent in-flight migrations are visible as
//! overlapping bars.
//!
//! The format is documented in the "Trace Event Format" spec; only the
//! stable subset is emitted (`traceEvents` array, `ph` ∈ {M, i, X, b,
//! e}, timestamps in microseconds). The workspace deliberately has no
//! external dependencies, so the JSON is built by hand and a small
//! validator ([`validate_json`]) is provided for tests and CI smokes.

use crate::span::Span;
use crate::time::Picos;
use crate::trace::{CoreId, Event, Side, Trace};
use std::fmt::Write as _;

/// Stable thread id for a core's track (hosts first, then NxPs).
fn tid_of(core: Option<CoreId>) -> u64 {
    match core {
        Some(CoreId { side: Side::Host, index }) => index as u64,
        Some(CoreId { side: Side::Nxp, index }) => 1000 + index as u64,
        Some(CoreId { side: Side::Emu, index }) => 2000 + index as u64,
        None => 9990,
    }
}

fn track_name(core: Option<CoreId>) -> String {
    match core {
        Some(c) => c.to_string(),
        None => "untagged".to_string(),
    }
}

/// Simulated picoseconds → trace microseconds (the unit Chrome expects).
fn us(p: Picos) -> String {
    let v = p.as_picos() as f64 / 1e6;
    let mut s = format!("{v:.6}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

/// Escapes a string for embedding in a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Short human name for a traced event, used as the instant-event label.
fn event_name(e: &Event) -> String {
    match e {
        Event::NxFault { side, fault_va } => format!("nx-fault {side} va={fault_va:#x}"),
        Event::MisalignedFetch { fault_va } => format!("misaligned-fetch va={fault_va:#x}"),
        Event::DescriptorSent { from, kind, bytes } => {
            format!("desc-sent {from} {kind} {bytes}B")
        }
        Event::DescriptorReceived { to, kind } => format!("desc-recv {to} {kind}"),
        Event::ThreadSuspended { pid } => format!("suspend pid{pid}"),
        Event::ThreadWoken { pid } => format!("wake pid{pid}"),
        Event::NxpContextSwitch { switch_in } => {
            format!("ctx-switch-{}", if *switch_in { "in" } else { "out" })
        }
        Event::TlbMiss { side, va, levels } => {
            format!("tlb-miss {side} va={va:#x} levels={levels}")
        }
        Event::FaultInjected { kind, to } => format!("fault-injected {kind} -> {to}"),
        Event::CorruptDescriptor { to, seq } => format!("crc-reject {to} seq={seq}"),
        Event::DuplicateDescriptor { to, seq } => format!("dup-drop {to} seq={seq}"),
        Event::NakSent { from, seq } => format!("nak {from} seq={seq}"),
        Event::Retransmit { to, seq, attempt } => {
            format!("retransmit -> {to} seq={seq} attempt={attempt}")
        }
        Event::SpuriousWakeup { pid } => format!("spurious-wake pid{pid}"),
        Event::WatchdogFired { pid } => format!("watchdog pid{pid}"),
        Event::MsiLossRecovered { pid, seq } => format!("msi-loss-recovered pid{pid} seq={seq}"),
        Event::Degraded { pid } => format!("degraded pid{pid}"),
        Event::EmulatedSegment { pid, from_va } => {
            format!("emulate pid{pid} va={from_va:#x}")
        }
        Event::DeviceFault { nxp, kind } => format!("device-fault nxp{nxp} {kind}"),
        Event::NxpDeclaredDead { nxp } => format!("nxp-dead nxp{nxp}"),
        Event::NxpRejoined { nxp } => format!("nxp-rejoin nxp{nxp}"),
        Event::ProbeSucceeded { nxp } => format!("probe-ok nxp{nxp}"),
        Event::DescriptorsReaped { nxp, count } => {
            format!("reaped nxp{nxp} count={count}")
        }
        Event::FailoverReplaced { pid, from_nxp, to_nxp } => {
            format!("failover pid{pid} nxp{from_nxp}->nxp{to_nxp}")
        }
        Event::FailoverReexecuted { pid, on_nxp } => {
            format!("reexecute pid{pid} on nxp{on_nxp}")
        }
        Event::AdmissionRejected { chan } => format!("admission-reject chan{chan}"),
        Event::Marker(m) => format!("marker {m}"),
    }
}

/// Renders `trace` and `spans` as a Chrome trace-event JSON document.
///
/// Open the result in `ui.perfetto.dev` (or `chrome://tracing`) to see
/// per-core tracks with migration spans overlaid. Deterministic: the
/// same trace and spans always produce byte-identical JSON.
///
/// # Examples
///
/// ```
/// use flick_sim::{chrome_trace, validate_json, CoreId, Event, Picos, Trace};
///
/// let mut t = Trace::default();
/// t.record_on(CoreId::host(0), Picos::from_nanos(5), Event::Marker("boot"));
/// let json = chrome_trace(&t, &[]);
/// assert!(validate_json(&json).is_ok());
/// assert!(json.contains("\"traceEvents\""));
/// ```
pub fn chrome_trace(trace: &Trace, spans: &[Span]) -> String {
    chrome_trace_named(trace, spans, track_name)
}

/// [`chrome_trace`] with caller-supplied track names.
///
/// `namer` maps each core (or `None` for the untagged track) to its
/// Perfetto track name — a heterogeneous machine uses this to render
/// each core's ISA from its descriptor (`nxp1 (arm64)`) instead of the
/// bare default. `chrome_trace(t, s)` is byte-identical to
/// `chrome_trace_named(t, s, |c| ...default...)`; only the
/// `thread_name` metadata records differ under a custom namer.
pub fn chrome_trace_named(
    trace: &Trace,
    spans: &[Span],
    namer: impl Fn(Option<CoreId>) -> String,
) -> String {
    let mut events: Vec<String> = Vec::new();

    // Track metadata: one named, sorted track per core that appears in
    // either the trace tags or the span marks.
    let mut tids: Vec<(u64, String)> = Vec::new();
    let mut note = |core: Option<CoreId>| {
        let tid = tid_of(core);
        if !tids.iter().any(|(t, _)| *t == tid) {
            tids.push((tid, namer(core)));
        }
    };
    for c in trace.core_tags() {
        note(*c);
    }
    for s in spans {
        for m in s.marks() {
            note(Some(m.core));
        }
    }
    tids.sort_by_key(|(t, _)| *t);
    for (tid, name) in &tids {
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            esc(name)
        ));
        events.push(format!(
            "{{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"sort_index\":{tid}}}}}"
        ));
    }

    // Instant events, one per traced event, on the recording core's track.
    for ((at, e), core) in trace.events().iter().zip(trace.core_tags()) {
        events.push(format!(
            "{{\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\
             \"name\":\"{}\",\"cat\":\"event\"}}",
            us(*at),
            tid_of(*core),
            esc(&event_name(e))
        ));
    }

    // Span segments as complete slices on the core where each began,
    // plus one async track per migration for the overlap picture.
    for s in spans {
        for (from, to) in s.segments() {
            let dur = to.at.saturating_sub(from.at);
            events.push(format!(
                "{{\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\
                 \"name\":\"{}\",\"cat\":\"span\",\"args\":{{\"span\":{},\"pid\":{}}}}}",
                us(from.at),
                us(dur),
                tid_of(Some(from.core)),
                esc(&format!("{} {}->{}", s.label, from.stage.label(), to.stage.label())),
                s.id,
                s.pid
            ));
        }
        if !s.marks().is_empty() {
            let name = esc(&format!("{} pid{}", s.label, s.pid));
            events.push(format!(
                "{{\"ph\":\"b\",\"cat\":\"migration\",\"id\":{},\"ts\":{},\
                 \"pid\":1,\"tid\":0,\"name\":\"{name}\"}}",
                s.id,
                us(s.begin())
            ));
            events.push(format!(
                "{{\"ph\":\"e\",\"cat\":\"migration\",\"id\":{},\"ts\":{},\
                 \"pid\":1,\"tid\":0,\"name\":\"{name}\"}}",
                s.id,
                us(s.end())
            ));
        }
    }

    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('\n');
        out.push_str(e);
    }
    out.push_str("\n]}\n");
    out
}

/// Minimal JSON syntax validator (structure only, no data model).
///
/// Returns `Err(byte_offset)` at the first syntax violation. Used by
/// tests and the CI timeline smoke to check exporter output without an
/// external JSON dependency.
pub fn validate_json(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0 };
    p.ws();
    p.value()?;
    p.ws();
    if p.i == b.len() {
        Ok(())
    } else {
        Err(p.i)
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), usize> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.i)
        }
    }

    fn value(&mut self) -> Result<(), usize> {
        match self.peek().ok_or(self.i)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.lit(b"true"),
            b'f' => self.lit(b"false"),
            b'n' => self.lit(b"null"),
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.i),
        }
    }

    fn lit(&mut self, w: &[u8]) -> Result<(), usize> {
        if self.b[self.i..].starts_with(w) {
            self.i += w.len();
            Ok(())
        } else {
            Err(self.i)
        }
    }

    fn object(&mut self) -> Result<(), usize> {
        self.eat(b'{')?;
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            self.value()?;
            self.ws();
            match self.peek().ok_or(self.i)? {
                b',' => self.i += 1,
                b'}' => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.i),
            }
        }
    }

    fn array(&mut self) -> Result<(), usize> {
        self.eat(b'[')?;
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.ws();
            self.value()?;
            self.ws();
            match self.peek().ok_or(self.i)? {
                b',' => self.i += 1,
                b']' => {
                    self.i += 1;
                    return Ok(());
                }
                _ => return Err(self.i),
            }
        }
    }

    fn string(&mut self) -> Result<(), usize> {
        self.eat(b'"')?;
        while let Some(c) = self.peek() {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let e = self.peek().ok_or(self.i)?;
                    self.i += 1;
                    match e {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = self.peek().ok_or(self.i)?;
                                if !h.is_ascii_hexdigit() {
                                    return Err(self.i);
                                }
                                self.i += 1;
                            }
                        }
                        _ => return Err(self.i - 1),
                    }
                }
                0x00..=0x1f => return Err(self.i - 1),
                _ => {}
            }
        }
        Err(self.i)
    }

    fn number(&mut self) -> Result<(), usize> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        match self.peek() {
            Some(b'0') => self.i += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.i += 1;
                }
            }
            _ => return Err(start),
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            let mut frac = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(self.i);
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.i += 1;
            }
            let mut exp = 0;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(self.i);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanStage;

    #[test]
    fn validator_accepts_and_rejects() {
        assert!(validate_json("{}").is_ok());
        assert!(validate_json("[1, -2.5, 1e9, \"a\\n\", true, null]").is_ok());
        assert!(validate_json("{\"a\":{\"b\":[]}}").is_ok());
        assert!(validate_json("{").is_err());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,]").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("01").is_err()); // trailing garbage after `0`
    }

    #[test]
    fn empty_export_is_valid() {
        let json = chrome_trace(&Trace::disabled(), &[]);
        validate_json(&json).unwrap();
        assert!(json.contains("traceEvents"));
    }

    #[test]
    fn export_names_tracks_and_events() {
        let mut t = Trace::default();
        t.record_on(
            CoreId::host(0),
            Picos::from_nanos(3),
            Event::NxFault { side: Side::Host, fault_va: 0x4000 },
        );
        t.record_on(
            CoreId::nxp(1),
            Picos::from_nanos(9),
            Event::DescriptorReceived { to: Side::Nxp, kind: "h2n-call" },
        );
        let mut span = Span::new(7, 3, "h2n-call");
        span.push(SpanStage::NxFault, Picos::from_nanos(3), CoreId::host(0));
        span.push(SpanStage::NxpDispatch, Picos::from_nanos(9), CoreId::nxp(1));
        span.push(SpanStage::Woken, Picos::from_nanos(20), CoreId::host(0));
        let json = chrome_trace(&t, &[span]);
        validate_json(&json).unwrap();
        assert!(json.contains("\"host0\""));
        assert!(json.contains("\"nxp1\""));
        assert!(json.contains("nx-fault host va=0x4000"));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"b\""));
        assert!(json.contains("nx-fault->nxp-dispatch"));
    }

    #[test]
    fn microsecond_formatting_trims_zeros() {
        assert_eq!(us(Picos::from_micros(2)), "2");
        assert_eq!(us(Picos::from_nanos(1500)), "1.5");
        assert_eq!(us(Picos(1)), "0.000001");
        assert_eq!(us(Picos::ZERO), "0");
    }

    #[test]
    fn named_export_defaults_byte_identical() {
        let mut t = Trace::default();
        t.record_on(
            CoreId::nxp(0),
            Picos::from_nanos(3),
            Event::NxFault { side: Side::Nxp, fault_va: 0x4000 },
        );
        let mut span = Span::new(1, 2, "h2n-call");
        span.push(SpanStage::NxFault, Picos::from_nanos(3), CoreId::host(0));
        span.push(SpanStage::Woken, Picos::from_nanos(9), CoreId::host(0));
        let spans = [span];
        assert_eq!(
            chrome_trace(&t, &spans),
            chrome_trace_named(&t, &spans, super::track_name)
        );
        let named = chrome_trace_named(&t, &spans, |c| match c {
            Some(c) => format!("{c} (rv64)"),
            None => "untagged".into(),
        });
        validate_json(&named).unwrap();
        assert!(named.contains("\"nxp0 (rv64)\""));
        // Only thread_name metadata differs from the default export.
        let default = chrome_trace(&t, &spans);
        let strip = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| !l.contains("thread_name"))
                .map(str::to_string)
                .collect()
        };
        assert_eq!(strip(&named), strip(&default));
    }

    #[test]
    fn export_is_deterministic() {
        let mut t = Trace::default();
        t.record_on(CoreId::host(1), Picos::from_nanos(5), Event::Marker("x"));
        let a = chrome_trace(&t, &[]);
        let b = chrome_trace(&t, &[]);
        assert_eq!(a, b);
    }
}
