//! Seeded, deterministic fault injection for the interconnect model.
//!
//! A [`FaultPlan`] decides — from its own [`Xoshiro256`] stream — which
//! DMA bursts get corrupted, dropped or stalled and which MSIs get lost
//! or duplicated. Because every decision is a pure function of the seed
//! and the (deterministic) order of injection-point calls, any chaos run
//! replays bit-identically from its seed.
//!
//! [`FaultPlan::none`] is the zero-cost default: it is `enabled: false`,
//! draws nothing from the RNG and perturbs nothing, so a machine built
//! with it produces timelines identical to one with no fault layer at
//! all.

use crate::rng::Xoshiro256;
use crate::time::Picos;

/// How a single DMA burst was perturbed at an injection point.
///
/// Faults layer: a burst can be both corrupted and stalled. A dropped
/// burst is exclusive — nothing arrives, so the other perturbations are
/// moot and not drawn.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BurstPerturbation {
    /// The burst never arrives at the receiver.
    pub dropped: bool,
    /// One payload byte was flipped (its index), defeating naive trust
    /// in the wire format; receivers detect this via the descriptor
    /// checksum.
    pub corrupted: Option<usize>,
    /// Extra link latency added to the arrival time.
    pub stall: Picos,
}

impl BurstPerturbation {
    /// True when nothing was perturbed.
    pub fn is_clean(&self) -> bool {
        !self.dropped && self.corrupted.is_none() && self.stall == Picos::ZERO
    }
}

/// What the fault injector decided for one MSI delivery.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsiFate {
    /// Delivered normally.
    Delivered,
    /// Silently lost; the host must notice via its migration watchdog.
    Dropped,
    /// Delivered twice; the second wakeup is spurious.
    Duplicated,
}

/// Device-level failure kinds: how an entire NxP (not just the link to
/// it) misbehaves. These are *scheduled* rather than drawn per transfer
/// because a device death is a state, not an event stream — the plan
/// answers "is NxP `k` alive at time `t`?" as a pure function of the
/// schedule, consuming no randomness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DeviceFaultKind {
    /// The NxP stops executing and stops responding; the link itself is
    /// electrically up but nothing answers. Detected by retry
    /// exhaustion.
    Crash,
    /// The NxP stops draining its descriptor ring but the link stays up:
    /// already-queued outbound traffic (NAKs, retransmits of completed
    /// work) still flows.
    Hang,
    /// Hot-unplug: presence detect drops, so the host sees the death
    /// *instantly* at the next doorbell write instead of waiting out a
    /// retry budget.
    Unplug,
}

impl DeviceFaultKind {
    /// Short tag used in traces.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceFaultKind::Crash => "crash",
            DeviceFaultKind::Hang => "hang",
            DeviceFaultKind::Unplug => "unplug",
        }
    }
}

/// One scheduled device-level failure: NxP `nxp` enters `kind` at
/// simulated time `at`, and (optionally) rejoins the fleet — healthy,
/// with empty rings and reset sequence spaces — at `rejoin_at`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceEvent {
    /// Index of the affected NxP.
    pub nxp: usize,
    /// What happens to it.
    pub kind: DeviceFaultKind,
    /// When the failure begins.
    pub at: Picos,
    /// When the device comes back, if ever. While `at <= t < rejoin_at`
    /// the device is down; at `rejoin_at` it is healthy again.
    pub rejoin_at: Option<Picos>,
}

/// Per-kind injection counters, for post-run audits ("every injected
/// fault was recovered").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Corrupted DMA bursts.
    pub corrupt_burst: u64,
    /// Dropped DMA bursts.
    pub drop_burst: u64,
    /// Transient link stalls.
    pub link_stall: u64,
    /// Dropped MSIs.
    pub drop_msi: u64,
    /// Duplicated MSIs.
    pub dup_msi: u64,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.corrupt_burst + self.drop_burst + self.link_stall + self.drop_msi + self.dup_msi
    }
}

/// A seeded, replayable fault-injection plan.
///
/// # Examples
///
/// ```
/// use flick_sim::{FaultPlan, Picos};
///
/// // Disabled plan: zero cost, zero perturbation.
/// let mut none = FaultPlan::none();
/// let mut burst = [0u8; 128];
/// assert!(none.perturb_burst(&mut burst).is_clean());
///
/// // Seeded plan: deterministic — two plans with the same seed and the
/// // same call sequence make identical decisions.
/// let mk = || {
///     FaultPlan::seeded(7)
///         .with_corrupt(0.5)
///         .with_stall(0.5, Picos::from_micros(10))
/// };
/// let (mut a, mut b) = (mk(), mk());
/// for _ in 0..32 {
///     let mut x = [0u8; 128];
///     let mut y = [0u8; 128];
///     assert_eq!(a.perturb_burst(&mut x), b.perturb_burst(&mut y));
///     assert_eq!(x, y);
/// }
/// ```
#[derive(Clone, Debug)]
pub struct FaultPlan {
    enabled: bool,
    seed: u64,
    rng: Xoshiro256,
    p_corrupt_burst: f64,
    p_drop_burst: f64,
    p_link_stall: f64,
    max_stall: Picos,
    p_drop_msi: f64,
    p_dup_msi: f64,
    max_injections: u64,
    skip: u64,
    counts: FaultCounts,
    /// Scheduled device-level failures. Queried, never drawn: an empty
    /// schedule keeps the plan bit-inert regardless of `enabled`.
    device_events: Vec<DeviceEvent>,
}

impl FaultPlan {
    /// The disabled plan: no RNG draws, no perturbation, no cost.
    pub fn none() -> Self {
        FaultPlan {
            enabled: false,
            seed: 0,
            rng: Xoshiro256::seeded(0),
            p_corrupt_burst: 0.0,
            p_drop_burst: 0.0,
            p_link_stall: 0.0,
            max_stall: Picos::ZERO,
            p_drop_msi: 0.0,
            p_dup_msi: 0.0,
            max_injections: u64::MAX,
            skip: 0,
            counts: FaultCounts::default(),
            device_events: Vec::new(),
        }
    }

    /// An enabled plan with all probabilities zero; dial in faults with
    /// the `with_*` knobs.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            enabled: true,
            seed,
            rng: Xoshiro256::seeded(seed),
            ..FaultPlan::none()
        }
    }

    /// A moderately hostile preset used by the chaos soak tests: every
    /// fault kind enabled at a rate where multi-fault migrations are
    /// common but bounded retransmission always converges.
    pub fn chaos(seed: u64) -> Self {
        FaultPlan::seeded(seed)
            .with_corrupt(0.10)
            .with_drop_burst(0.08)
            .with_stall(0.12, Picos::from_micros(25))
            .with_drop_msi(0.10)
            .with_dup_msi(0.10)
    }

    /// Probability that a DMA burst has one byte flipped.
    pub fn with_corrupt(mut self, p: f64) -> Self {
        self.p_corrupt_burst = p;
        self
    }

    /// Probability that a DMA burst is silently dropped.
    pub fn with_drop_burst(mut self, p: f64) -> Self {
        self.p_drop_burst = p;
        self
    }

    /// Probability of a transient link stall, and the worst-case extra
    /// latency (the actual stall is uniform in `(0, max]`).
    pub fn with_stall(mut self, p: f64, max: Picos) -> Self {
        self.p_link_stall = p;
        self.max_stall = max;
        self
    }

    /// Probability that an MSI is lost.
    pub fn with_drop_msi(mut self, p: f64) -> Self {
        self.p_drop_msi = p;
        self
    }

    /// Probability that an MSI is delivered twice.
    pub fn with_dup_msi(mut self, p: f64) -> Self {
        self.p_dup_msi = p;
        self
    }

    /// Stops injecting after `n` faults (the plan then behaves as
    /// disabled); keeps adversarial runs finite.
    pub fn with_max_injections(mut self, n: u64) -> Self {
        self.max_injections = n;
        self
    }

    /// Leaves the first `n` injection points (bursts *and* MSIs,
    /// counted together in call order) unperturbed, without consuming
    /// randomness. This stages fault onset deep into a protocol — e.g.
    /// letting a call leg deliver cleanly and then killing the return
    /// leg.
    pub fn with_skip(mut self, n: u64) -> Self {
        self.skip = n;
        self
    }

    /// Schedules one device-level failure. Device events are a static
    /// schedule, independent of the link-fault probabilities and the
    /// RNG stream: adding them never changes which link faults fire.
    pub fn with_device_event(mut self, event: DeviceEvent) -> Self {
        self.device_events.push(event);
        self
    }

    /// Schedules a batch of device-level failures.
    pub fn with_device_events(mut self, events: impl IntoIterator<Item = DeviceEvent>) -> Self {
        self.device_events.extend(events);
        self
    }

    /// A seeded device-failure schedule for chaos soaks: a handful of
    /// crash/hang/unplug events across NxPs `1..nxps` within `horizon`,
    /// most with a rejoin. NxP 0 is never a victim so the fleet always
    /// has a survivor to fail over to. Uses its own RNG (derived from
    /// `seed`) at construction time, so pairing this schedule with
    /// [`FaultPlan::chaos`] of the same seed leaves the link-fault
    /// stream untouched.
    ///
    /// Returns an empty schedule for single-NxP fleets.
    pub fn device_chaos(seed: u64, nxps: usize, horizon: Picos) -> Vec<DeviceEvent> {
        if nxps < 2 || horizon == Picos::ZERO {
            return Vec::new();
        }
        let mut rng = Xoshiro256::seeded(seed ^ 0x00DE_71CE_FA17);
        let n_events = rng.gen_range(1, 4);
        let mut events = Vec::new();
        for _ in 0..n_events {
            let nxp = rng.gen_range(1, nxps as u64) as usize;
            let kind = match rng.gen_range(0, 3) {
                0 => DeviceFaultKind::Crash,
                1 => DeviceFaultKind::Hang,
                _ => DeviceFaultKind::Unplug,
            };
            let at = Picos(rng.gen_range(1, horizon.0 + 1));
            // Two in three events rejoin, up to one horizon after the
            // outage began; the rest stay dead.
            let rejoin_at = if rng.gen_range(0, 3) < 2 {
                Some(at + Picos(rng.gen_range(1, horizon.0 + 1)))
            } else {
                None
            };
            events.push(DeviceEvent {
                nxp,
                kind,
                at,
                rejoin_at,
            });
        }
        events
    }

    /// The scheduled device-level failures.
    pub fn device_events(&self) -> &[DeviceEvent] {
        &self.device_events
    }

    /// True when this plan schedules any device-level failures.
    pub fn has_device_events(&self) -> bool {
        !self.device_events.is_empty()
    }

    /// The device-level failure (if any) afflicting NxP `nxp` at time
    /// `now`. Pure query — no RNG draw, no state change — so an empty
    /// schedule is bit-inert. Overlapping events resolve to the one
    /// scheduled last.
    pub fn device_state(&self, nxp: usize, now: Picos) -> Option<DeviceFaultKind> {
        let mut state = None;
        for e in &self.device_events {
            if e.nxp != nxp || e.at > now {
                continue;
            }
            match e.rejoin_at {
                Some(r) if r <= now => {}
                _ => state = Some(e.kind),
            }
        }
        state
    }

    /// True when NxP `nxp` is healthy at time `now`.
    pub fn device_up(&self, nxp: usize, now: Picos) -> bool {
        self.device_state(nxp, now).is_none()
    }

    /// True when this plan can still inject faults.
    pub fn is_active(&self) -> bool {
        self.enabled && self.counts.total() < self.max_injections
    }

    /// The seed this plan was built from (0 for [`FaultPlan::none`]).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// What has been injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Injection point for one DMA burst: decides drop/corrupt/stall
    /// and applies the corruption to `bytes` in place.
    pub fn perturb_burst(&mut self, bytes: &mut [u8]) -> BurstPerturbation {
        if !self.is_active() {
            return BurstPerturbation::default();
        }
        if self.skip > 0 {
            self.skip -= 1;
            return BurstPerturbation::default();
        }
        if self.rng.gen_bool(self.p_drop_burst) {
            self.counts.drop_burst += 1;
            return BurstPerturbation {
                dropped: true,
                ..BurstPerturbation::default()
            };
        }
        let mut p = BurstPerturbation::default();
        if !bytes.is_empty() && self.rng.gen_bool(self.p_corrupt_burst) {
            let idx = self.rng.gen_range(0, bytes.len() as u64) as usize;
            let flip = (self.rng.gen_range(1, 256)) as u8;
            bytes[idx] ^= flip;
            self.counts.corrupt_burst += 1;
            p.corrupted = Some(idx);
        }
        if self.rng.gen_bool(self.p_link_stall) && self.max_stall > Picos::ZERO {
            let stall = Picos(self.rng.gen_range(1, self.max_stall.0 + 1));
            self.counts.link_stall += 1;
            p.stall = stall;
        }
        p
    }

    /// Injection point for one MSI delivery.
    pub fn msi_fate(&mut self) -> MsiFate {
        if !self.is_active() {
            return MsiFate::Delivered;
        }
        if self.skip > 0 {
            self.skip -= 1;
            return MsiFate::Delivered;
        }
        if self.rng.gen_bool(self.p_drop_msi) {
            self.counts.drop_msi += 1;
            return MsiFate::Dropped;
        }
        if self.rng.gen_bool(self.p_dup_msi) {
            self.counts.dup_msi += 1;
            return MsiFate::Duplicated;
        }
        MsiFate::Delivered
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_and_drawless() {
        let mut plan = FaultPlan::none();
        let before = plan.rng.clone();
        let mut bytes = [0xAA; 64];
        for _ in 0..100 {
            assert!(plan.perturb_burst(&mut bytes).is_clean());
            assert_eq!(plan.msi_fate(), MsiFate::Delivered);
        }
        assert_eq!(bytes, [0xAA; 64]);
        assert_eq!(plan.counts().total(), 0);
        // The RNG stream was never consumed.
        assert_eq!(plan.rng.next_u64(), before.clone().next_u64());
    }

    #[test]
    fn same_seed_same_decisions() {
        let mk = || FaultPlan::chaos(0xFEED);
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..500 {
            let mut x = [0x5Au8; 128];
            let mut y = [0x5Au8; 128];
            assert_eq!(a.perturb_burst(&mut x), b.perturb_burst(&mut y));
            assert_eq!(x, y);
            assert_eq!(a.msi_fate(), b.msi_fate());
        }
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn chaos_plan_injects_every_kind() {
        let mut plan = FaultPlan::chaos(3);
        for _ in 0..2000 {
            let mut bytes = [0u8; 128];
            plan.perturb_burst(&mut bytes);
            plan.msi_fate();
        }
        let c = plan.counts();
        assert!(c.corrupt_burst > 0, "{c:?}");
        assert!(c.drop_burst > 0, "{c:?}");
        assert!(c.link_stall > 0, "{c:?}");
        assert!(c.drop_msi > 0, "{c:?}");
        assert!(c.dup_msi > 0, "{c:?}");
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let mut plan = FaultPlan::seeded(11).with_corrupt(1.0);
        let clean = [0x33u8; 128];
        let mut bytes = clean;
        let p = plan.perturb_burst(&mut bytes);
        let idx = p.corrupted.expect("p=1 must corrupt");
        assert_ne!(bytes[idx], clean[idx]);
        let diffs = bytes.iter().zip(&clean).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn max_injections_caps_the_plan() {
        let mut plan = FaultPlan::seeded(5).with_drop_burst(1.0).with_max_injections(3);
        let mut dropped = 0;
        for _ in 0..10 {
            let mut b = [0u8; 8];
            if plan.perturb_burst(&mut b).dropped {
                dropped += 1;
            }
        }
        assert_eq!(dropped, 3);
        assert!(!plan.is_active());
    }

    #[test]
    fn skip_delays_fault_onset() {
        let mut plan = FaultPlan::seeded(2).with_drop_burst(1.0).with_skip(3);
        let mut fates = Vec::new();
        for _ in 0..5 {
            let mut b = [0u8; 8];
            fates.push(plan.perturb_burst(&mut b).dropped);
        }
        assert_eq!(fates, [false, false, false, true, true]);
    }

    #[test]
    fn device_schedule_is_a_pure_drawless_query() {
        let mut plan = FaultPlan::chaos(42).with_device_event(DeviceEvent {
            nxp: 1,
            kind: DeviceFaultKind::Crash,
            at: Picos::from_micros(10),
            rejoin_at: Some(Picos::from_micros(50)),
        });
        let before = plan.rng.clone();
        // Before onset, during the outage, after rejoin.
        assert!(plan.device_up(1, Picos::ZERO));
        assert_eq!(
            plan.device_state(1, Picos::from_micros(10)),
            Some(DeviceFaultKind::Crash)
        );
        assert_eq!(
            plan.device_state(1, Picos::from_micros(49)),
            Some(DeviceFaultKind::Crash)
        );
        assert!(plan.device_up(1, Picos::from_micros(50)));
        // Other NxPs are unaffected.
        assert!(plan.device_up(0, Picos::from_micros(20)));
        // Querying the schedule consumed no randomness.
        assert_eq!(plan.rng.next_u64(), before.clone().next_u64());
    }

    #[test]
    fn device_event_without_rejoin_is_permanent() {
        let plan = FaultPlan::none().with_device_event(DeviceEvent {
            nxp: 2,
            kind: DeviceFaultKind::Unplug,
            at: Picos::from_nanos(5),
            rejoin_at: None,
        });
        assert!(plan.has_device_events());
        assert!(plan.device_up(2, Picos::from_nanos(4)));
        assert_eq!(
            plan.device_state(2, Picos::from_millis(999)),
            Some(DeviceFaultKind::Unplug)
        );
    }

    #[test]
    fn device_chaos_spares_nxp_zero_and_replays() {
        let horizon = Picos::from_millis(2);
        let a = FaultPlan::device_chaos(7, 4, horizon);
        let b = FaultPlan::device_chaos(7, 4, horizon);
        assert_eq!(a, b, "same seed must yield the same schedule");
        assert!(!a.is_empty());
        for e in &a {
            assert!(e.nxp >= 1 && e.nxp < 4, "{e:?}");
            assert!(e.at > Picos::ZERO && e.at <= horizon, "{e:?}");
        }
        // Single-NxP fleets get no device events: there is nothing to
        // fail over to.
        assert!(FaultPlan::device_chaos(7, 1, horizon).is_empty());
        // Different seeds usually differ.
        assert_ne!(a, FaultPlan::device_chaos(8, 4, horizon));
    }

    #[test]
    fn device_schedule_does_not_shift_link_fault_stream() {
        // The acceptance-critical property: adding device events to a
        // chaos plan must not change which link faults fire.
        let mut plain = FaultPlan::chaos(0xBEEF);
        let mut with_devices = FaultPlan::chaos(0xBEEF).with_device_events(
            FaultPlan::device_chaos(0xBEEF, 3, Picos::from_millis(1)),
        );
        for _ in 0..300 {
            let mut x = [0x77u8; 128];
            let mut y = [0x77u8; 128];
            assert_eq!(
                plain.perturb_burst(&mut x),
                with_devices.perturb_burst(&mut y)
            );
            assert_eq!(x, y);
            assert_eq!(plain.msi_fate(), with_devices.msi_fate());
        }
        assert_eq!(plain.counts(), with_devices.counts());
    }

    #[test]
    fn stall_bounded_by_max() {
        let max = Picos::from_micros(25);
        let mut plan = FaultPlan::seeded(9).with_stall(1.0, max);
        for _ in 0..200 {
            let mut b = [0u8; 8];
            let p = plan.perturb_burst(&mut b);
            assert!(p.stall > Picos::ZERO && p.stall <= max, "{:?}", p.stall);
        }
    }
}
