//! Migration lifecycle spans.
//!
//! A *span* follows one cross-ISA call from the moment the host core
//! traps (NX fault) to the moment the suspended thread wakes with the
//! return value. Along the way the machine drops *marks* — timestamped
//! stage transitions tagged with the core they happened on — so a run
//! can answer "where did the 1.8 µs go?" per migration, not just in
//! aggregate counters.
//!
//! The span id is carried inside the migration descriptor's padding
//! bytes, so both sides of the PCIe link attribute their marks to the
//! same span without any side channel. Ids are assigned by the machine
//! deterministically (a plain counter driven by simulated events), which
//! keeps chaos-seed replays bit-identical with observability on.
//!
//! The whole layer is inert when disabled: [`SpanRecorder::mark`] and
//! friends return immediately and allocate nothing, and nothing here
//! ever advances a clock.

use crate::time::Picos;
use crate::trace::CoreId;

/// A stage transition inside a migration span.
///
/// Stages are marked in wall-clock (simulated) order but not every span
/// visits every stage: a return leg has no NX fault, and a migration
/// recovered by the watchdog never sees `MsiDelivery`. Segment
/// reporting therefore pairs *consecutive recorded* marks rather than
/// assuming the full pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanStage {
    /// Host core executed an NX-protected page: the migration trigger.
    NxFault,
    /// Kernel packed the 128-byte migration descriptor (ioctl path).
    DescPack,
    /// Descriptor burst handed to the DMA engine (first attempt).
    DmaSubmit,
    /// NxP accepted the descriptor and dispatched the thread.
    NxpDispatch,
    /// NxP finished its leg and submitted the return descriptor.
    NxpSubmit,
    /// MSI for the return descriptor delivered to the host IRQ path.
    MsiDelivery,
    /// Suspended host thread woken with the return value: span end.
    Woken,
}

impl SpanStage {
    /// Short stable label used in histogram keys and trace exports.
    pub fn label(self) -> &'static str {
        match self {
            SpanStage::NxFault => "nx-fault",
            SpanStage::DescPack => "desc-pack",
            SpanStage::DmaSubmit => "dma-submit",
            SpanStage::NxpDispatch => "nxp-dispatch",
            SpanStage::NxpSubmit => "nxp-submit",
            SpanStage::MsiDelivery => "msi",
            SpanStage::Woken => "woken",
        }
    }
}

/// One timestamped stage transition: when, where, and which stage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanMark {
    /// The stage reached.
    pub stage: SpanStage,
    /// Simulated time of the transition.
    pub at: Picos,
    /// Core on which the transition happened.
    pub core: CoreId,
}

/// The recorded lifecycle of one cross-ISA call.
///
/// # Examples
///
/// ```
/// use flick_sim::{CoreId, Picos, Span, SpanStage};
///
/// let mut s = Span::new(1, 7, "h2n-call");
/// s.push(SpanStage::NxFault, Picos::from_nanos(10), CoreId::host(0));
/// s.push(SpanStage::Woken, Picos::from_nanos(1810), CoreId::host(0));
/// assert_eq!(s.total(), Picos::from_nanos(1800));
/// assert_eq!(s.segments().count(), 1);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Span id as carried in the descriptor (never zero for real spans).
    pub id: u64,
    /// Pid of the migrating task.
    pub pid: u64,
    /// Descriptor-kind label of the leg that opened the span.
    pub label: &'static str,
    marks: Vec<SpanMark>,
}

impl Span {
    /// Creates an empty span.
    pub fn new(id: u64, pid: u64, label: &'static str) -> Self {
        Span { id, pid, label, marks: Vec::new() }
    }

    /// Appends a mark unless this stage was already recorded
    /// (first occurrence wins, so retransmitted legs keep the time of
    /// the attempt that started the recovery dance).
    pub fn push(&mut self, stage: SpanStage, at: Picos, core: CoreId) {
        if self.marks.iter().any(|m| m.stage == stage) {
            return;
        }
        self.marks.push(SpanMark { stage, at, core });
    }

    /// All marks in recording order.
    pub fn marks(&self) -> &[SpanMark] {
        &self.marks
    }

    /// Time of the first mark, zero when empty.
    pub fn begin(&self) -> Picos {
        self.marks.first().map(|m| m.at).unwrap_or(Picos::ZERO)
    }

    /// Time of the last mark, zero when empty.
    pub fn end(&self) -> Picos {
        self.marks.last().map(|m| m.at).unwrap_or(Picos::ZERO)
    }

    /// End-to-end duration (last mark minus first).
    pub fn total(&self) -> Picos {
        self.end().saturating_sub(self.begin())
    }

    /// Iterates consecutive mark pairs as `(from, to)` segments.
    pub fn segments(&self) -> impl Iterator<Item = (&SpanMark, &SpanMark)> + '_ {
        self.marks.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// True when simulated intervals `[self.begin(), self.end()]` and
    /// `[other.begin(), other.end()]` overlap — i.e. both migrations
    /// were in flight at the same simulated instant.
    pub fn overlaps(&self, other: &Span) -> bool {
        !self.marks.is_empty()
            && !other.marks.is_empty()
            && self.begin() <= other.end()
            && other.begin() <= self.end()
    }
}

/// Collects spans for a whole run.
///
/// When constructed disabled, every method is a no-op and the recorder
/// holds no allocations beyond two empty containers — this is the
/// "provably inert" half of the observability contract.
///
/// # Examples
///
/// ```
/// use flick_sim::{CoreId, Picos, SpanRecorder, SpanStage};
///
/// let mut r = SpanRecorder::new(true);
/// r.begin(1, 7, "h2n-call");
/// r.mark(1, SpanStage::NxFault, Picos::from_nanos(5), CoreId::host(0));
/// r.mark(1, SpanStage::Woken, Picos::from_nanos(25), CoreId::host(0));
/// let span = r.finish(1).unwrap();
/// assert_eq!(span.total(), Picos::from_nanos(20));
/// assert_eq!(r.spans().len(), 1);
///
/// let mut off = SpanRecorder::new(false);
/// off.begin(1, 7, "h2n-call");
/// assert!(off.finish(1).is_none());
/// ```
#[derive(Clone, Debug, Default)]
pub struct SpanRecorder {
    enabled: bool,
    open: Vec<Span>,
    done: Vec<Span>,
}

impl SpanRecorder {
    /// Creates a recorder; a disabled recorder ignores every call.
    pub fn new(enabled: bool) -> Self {
        SpanRecorder { enabled, open: Vec::new(), done: Vec::new() }
    }

    /// Whether recording is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a span. Re-opening an id that is already open is ignored.
    pub fn begin(&mut self, id: u64, pid: u64, label: &'static str) {
        if !self.enabled || id == 0 {
            return;
        }
        if self.open.iter().any(|s| s.id == id) {
            return;
        }
        self.open.push(Span::new(id, pid, label));
    }

    /// Marks a stage on an open span; unknown ids are ignored.
    pub fn mark(&mut self, id: u64, stage: SpanStage, at: Picos, core: CoreId) {
        if !self.enabled {
            return;
        }
        if let Some(s) = self.open.iter_mut().find(|s| s.id == id) {
            s.push(stage, at, core);
        }
    }

    /// Closes a span, moving it to the completed list, and returns it.
    pub fn finish(&mut self, id: u64) -> Option<&Span> {
        let idx = self.open.iter().position(|s| s.id == id)?;
        let span = self.open.remove(idx);
        self.done.push(span);
        self.done.last()
    }

    /// Drops an open span without completing it (degraded migrations).
    pub fn abandon(&mut self, id: u64) {
        if let Some(idx) = self.open.iter().position(|s| s.id == id) {
            self.open.remove(idx);
        }
    }

    /// Completed spans in completion order.
    pub fn spans(&self) -> &[Span] {
        &self.done
    }

    /// Number of spans still open (in-flight migrations).
    pub fn open_count(&self) -> usize {
        self.open.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(id: u64) -> Span {
        let mut s = Span::new(id, 3, "h2n-call");
        s.push(SpanStage::NxFault, Picos::from_nanos(10 * id), CoreId::host(0));
        s.push(SpanStage::Woken, Picos::from_nanos(10 * id + 15), CoreId::host(0));
        s
    }

    #[test]
    fn first_occurrence_wins() {
        let mut s = Span::new(1, 1, "x");
        s.push(SpanStage::DmaSubmit, Picos::from_nanos(5), CoreId::host(0));
        s.push(SpanStage::DmaSubmit, Picos::from_nanos(9), CoreId::host(0));
        assert_eq!(s.marks().len(), 1);
        assert_eq!(s.marks()[0].at, Picos::from_nanos(5));
    }

    #[test]
    fn overlap_detection() {
        let a = mk(1); // [10, 25] ns
        let b = mk(2); // [20, 35] ns
        let c = mk(9); // [90, 105] ns
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
        assert!(!Span::new(4, 4, "empty").overlaps(&a));
    }

    #[test]
    fn recorder_lifecycle() {
        let mut r = SpanRecorder::new(true);
        r.begin(1, 7, "h2n-call");
        r.begin(2, 8, "h2n-call");
        assert_eq!(r.open_count(), 2);
        r.mark(1, SpanStage::NxFault, Picos::from_nanos(1), CoreId::host(0));
        r.mark(99, SpanStage::NxFault, Picos::from_nanos(1), CoreId::host(0)); // ignored
        assert!(r.finish(1).is_some());
        assert!(r.finish(1).is_none());
        r.abandon(2);
        assert_eq!(r.open_count(), 0);
        assert_eq!(r.spans().len(), 1);
    }

    #[test]
    fn disabled_recorder_is_inert() {
        let mut r = SpanRecorder::new(false);
        r.begin(1, 7, "h2n-call");
        r.mark(1, SpanStage::NxFault, Picos::from_nanos(1), CoreId::host(0));
        assert_eq!(r.open_count(), 0);
        assert!(r.finish(1).is_none());
        assert!(r.spans().is_empty());
    }

    #[test]
    fn zero_id_never_opens() {
        let mut r = SpanRecorder::new(true);
        r.begin(0, 7, "h2n-call");
        assert_eq!(r.open_count(), 0);
    }
}
