#![warn(missing_docs)]
//! Simulation substrate for the Flick reproduction.
//!
//! The original Flick prototype ran on real hardware (a Xeon host plus a
//! PCIe-attached FPGA). This reproduction replaces the hardware with a
//! deterministic discrete-time simulation; this crate provides the shared
//! building blocks:
//!
//! * [`time`] — picosecond-resolution simulated time ([`Picos`]) and
//!   frequency/cycle conversions ([`Hertz`], [`Cycles`]).
//! * [`clock`] — per-component simulated clocks ([`Clock`]).
//! * [`rng`] — a small deterministic RNG ([`SplitMix64`], [`Xoshiro256`])
//!   used by workload generators so every experiment is reproducible.
//! * [`trace`] — an event trace ([`Trace`], [`Event`]) recording faults,
//!   migrations and DMA transfers for inspection and testing.
//! * [`fault`] — seeded, deterministic fault injection ([`FaultPlan`])
//!   for chaos-testing the interconnect and migration recovery paths.
//! * [`stats`] — counters, summary statistics and log-bucketed
//!   latency histograms ([`Histogram`]).
//! * [`span`] — migration lifecycle spans ([`Span`], [`SpanRecorder`])
//!   attributing per-call latency to pipeline stages.
//! * [`trace_export`] — Chrome-trace/Perfetto JSON export
//!   ([`chrome_trace`]) of traces and spans.
//!
//! # Examples
//!
//! ```
//! use flick_sim::{Clock, Hertz, Picos};
//!
//! let mut clock = Clock::new(Hertz::mhz(200));
//! clock.tick(10); // ten 200 MHz cycles = 50 ns
//! assert_eq!(clock.now(), Picos::from_nanos(50));
//! ```

pub mod clock;
pub mod fault;
pub mod rng;
pub mod span;
pub mod stats;
pub mod time;
pub mod trace;
pub mod trace_export;

pub use clock::Clock;
pub use fault::{BurstPerturbation, DeviceEvent, DeviceFaultKind, FaultCounts, FaultPlan, MsiFate};
pub use rng::{SplitMix64, Xoshiro256};
pub use span::{Span, SpanMark, SpanRecorder, SpanStage};
pub use stats::{Counter, Histogram, Stats, Summary};
pub use time::{Cycles, Hertz, Picos};
pub use trace::{CoreId, Event, Side, Trace, TraceConfig};
pub use trace_export::{chrome_trace, chrome_trace_named, validate_json};
