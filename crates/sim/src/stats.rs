//! Counters and summary statistics.

use crate::time::Picos;
use std::collections::BTreeMap;
use std::fmt;

/// A named monotonically increasing counter.
///
/// # Examples
///
/// ```
/// use flick_sim::Counter;
///
/// let mut c = Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A bag of named counters, used by the machine to expose run statistics
/// (migrations, faults, TLB misses, DMA bursts, instructions retired, …).
///
/// # Examples
///
/// ```
/// use flick_sim::Stats;
///
/// let mut s = Stats::default();
/// s.bump("nx_faults");
/// s.bump_by("instructions", 100);
/// assert_eq!(s.get("nx_faults"), 1);
/// assert_eq!(s.get("missing"), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Stats {
    counters: BTreeMap<&'static str, u64>,
}

impl Stats {
    /// Increments counter `name` by one.
    pub fn bump(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    /// Increments counter `name` by `n`.
    pub fn bump_by(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Reads counter `name`, zero when absent.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Merges another stats bag into this one (summing counters).
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in other.iter() {
            *self.counters.entry(k).or_insert(0) += v;
        }
    }

    /// Clears every counter.
    pub fn clear(&mut self) {
        self.counters.clear();
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k:>32}: {v}")?;
        }
        Ok(())
    }
}

/// Summary of a sample of durations: count, mean, min, max.
///
/// # Examples
///
/// ```
/// use flick_sim::{Picos, Summary};
///
/// let mut s = Summary::default();
/// s.record(Picos::from_micros(18));
/// s.record(Picos::from_micros(20));
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.mean(), Picos::from_micros(19));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    count: u64,
    total: Picos,
    min: Option<Picos>,
    max: Option<Picos>,
}

impl Summary {
    /// Adds one sample.
    pub fn record(&mut self, sample: Picos) {
        self.count += 1;
        self.total += sample;
        self.min = Some(match self.min {
            Some(m) => m.min(sample),
            None => sample,
        });
        self.max = Some(match self.max {
            Some(m) => m.max(sample),
            None => sample,
        });
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn total(&self) -> Picos {
        self.total
    }

    /// Mean sample, zero when empty.
    pub fn mean(&self) -> Picos {
        if self.count == 0 {
            Picos::ZERO
        } else {
            self.total / self.count
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<Picos> {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> Option<Picos> {
        self.max
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} min={} max={}",
            self.count,
            self.mean(),
            self.min.unwrap_or(Picos::ZERO),
            self.max.unwrap_or(Picos::ZERO)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn stats_bump_and_get() {
        let mut s = Stats::default();
        s.bump("a");
        s.bump("a");
        s.bump_by("b", 5);
        assert_eq!(s.get("a"), 2);
        assert_eq!(s.get("b"), 5);
        assert_eq!(s.get("c"), 0);
    }

    #[test]
    fn stats_merge_sums() {
        let mut a = Stats::default();
        a.bump_by("x", 2);
        let mut b = Stats::default();
        b.bump_by("x", 3);
        b.bump("y");
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::default();
        for us in [5u64, 1, 9, 3] {
            s.record(Picos::from_micros(us));
        }
        assert_eq!(s.min(), Some(Picos::from_micros(1)));
        assert_eq!(s.max(), Some(Picos::from_micros(9)));
        assert_eq!(s.mean(), Picos::from_micros(18) / 4);
    }

    #[test]
    fn empty_summary_mean_is_zero() {
        let s = Summary::default();
        assert_eq!(s.mean(), Picos::ZERO);
        assert_eq!(s.min(), None);
    }
}
