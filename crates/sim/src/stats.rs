//! Counters and summary statistics.

use crate::time::Picos;
use std::collections::BTreeMap;
use std::fmt;

/// A named monotonically increasing counter.
///
/// # Examples
///
/// ```
/// use flick_sim::Counter;
///
/// let mut c = Counter::default();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A log-bucketed histogram over `u64` samples.
///
/// Samples land in power-of-two buckets (bucket `i` holds values whose
/// highest set bit is `i - 1`; bucket 0 holds zero), so `record` is O(1)
/// and the whole histogram is a fixed 65-slot array regardless of range.
/// Quantiles are estimated by linear interpolation inside the bucket that
/// crosses the requested rank — good to within a factor-of-two bucket
/// width, which is plenty for latency attribution — except for the very
/// last sample, where [`Histogram::max`] is exact.
///
/// The machine uses this for migration-span segment latencies (in
/// picoseconds) and descriptor-channel queue depths; see
/// [`Stats::record_hist`].
///
/// # Examples
///
/// ```
/// use flick_sim::Histogram;
///
/// let mut h = Histogram::default();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// assert_eq!(h.max(), 1000);
/// let p50 = h.quantile(0.50);
/// assert!((256..=512).contains(&p50));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[0]` counts zeros; `buckets[i]` counts samples in
    /// `[2^(i-1), 2^i)` for `i in 1..=64`.
    buckets: [u64; 65],
    count: u64,
    total: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            total: 0,
            min: 0,
            max: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Adds one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_of(v)] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.total += u128::from(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest sample, zero when empty.
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest sample, zero when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, zero when empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.total / u128::from(self.count)) as u64
        }
    }

    /// Estimated value at quantile `q` (clamped to `0.0..=1.0`), zero when
    /// empty. The estimate interpolates linearly within the bucket that
    /// crosses rank `q * count`. The bucket's nominal power-of-two value
    /// range is first tightened against the observed extremes — every
    /// sample in the crossing bucket lies in `[max(lo, min), min(hi,
    /// max+1))` — so tight distributions (all samples in a narrow slice of
    /// one bucket) are not overstated by a whole bucket width.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = q * self.count as f64;
        let mut seen = 0.0f64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = seen + n as f64;
            if next >= rank {
                // Interpolate inside bucket `i`: value range [lo, hi).
                let (lo, hi) = if i == 0 {
                    (0u64, 1u64)
                } else {
                    (1u64 << (i - 1), if i == 64 { u64::MAX } else { 1u64 << i })
                };
                // Tighten against observed extremes: the bucket holds at
                // least one sample, and all samples are in [min, max].
                let lo = lo.max(self.min);
                let hi = hi.min(self.max.saturating_add(1)).max(lo + 1);
                let frac = if n == 0 { 0.0 } else { (rank - seen) / n as f64 };
                let est = lo as f64 + frac * (hi - lo) as f64;
                return (est as u64).clamp(self.min, self.max);
            }
            seen = next;
        }
        self.max
    }

    /// Median estimate (`quantile(0.50)`).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// 99.9th-percentile estimate — the tail that decides serving
    /// viability under open-loop load.
    pub fn p999(&self) -> u64 {
        self.quantile(0.999)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.total += other.total;
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={} p90={} p99={} max={}",
            self.count,
            self.p50(),
            self.p90(),
            self.p99(),
            self.max
        )
    }
}

/// A bag of named counters, used by the machine to expose run statistics
/// (migrations, faults, TLB misses, DMA bursts, instructions retired, …).
///
/// Alongside the flat counters, a `Stats` can carry named [`Histogram`]s
/// (migration-span segment latencies, queue-depth gauges). The histogram
/// map is empty unless something records into it, so runs that never use
/// it produce `Stats` indistinguishable from pre-histogram builds.
///
/// # Examples
///
/// ```
/// use flick_sim::Stats;
///
/// let mut s = Stats::default();
/// s.bump("nx_faults");
/// s.bump_by("instructions", 100);
/// assert_eq!(s.get("nx_faults"), 1);
/// assert_eq!(s.get("missing"), 0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Stats {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<String, Histogram>,
}

impl Stats {
    /// Increments counter `name` by one.
    pub fn bump(&mut self, name: &'static str) {
        *self.counters.entry(name).or_insert(0) += 1;
    }

    /// Increments counter `name` by `n`.
    pub fn bump_by(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Reads counter `name`, zero when absent.
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// Adds one sample to histogram `name`, creating it when absent.
    pub fn record_hist(&mut self, name: &str, sample: u64) {
        self.hists.entry(name.to_string()).or_default().record(sample);
    }

    /// Reads histogram `name`, `None` when absent.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// Iterates `(name, histogram)` in name order.
    pub fn hists(&self) -> impl Iterator<Item = (&str, &Histogram)> + '_ {
        self.hists.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges another stats bag into this one (summing counters and
    /// merging histograms).
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in other.iter() {
            *self.counters.entry(k).or_insert(0) += v;
        }
        for (k, h) in other.hists() {
            self.hists.entry(k.to_string()).or_default().merge(h);
        }
    }

    /// Clears every counter and histogram.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.hists.clear();
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k:>32}: {v}")?;
        }
        for (k, h) in &self.hists {
            writeln!(f, "{k:>32}: {h}")?;
        }
        Ok(())
    }
}

/// Summary of a sample of durations: count, mean, min, max.
///
/// # Examples
///
/// ```
/// use flick_sim::{Picos, Summary};
///
/// let mut s = Summary::default();
/// s.record(Picos::from_micros(18));
/// s.record(Picos::from_micros(20));
/// assert_eq!(s.count(), 2);
/// assert_eq!(s.mean(), Picos::from_micros(19));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    count: u64,
    total: Picos,
    min: Option<Picos>,
    max: Option<Picos>,
}

impl Summary {
    /// Adds one sample.
    pub fn record(&mut self, sample: Picos) {
        self.count += 1;
        self.total += sample;
        self.min = Some(match self.min {
            Some(m) => m.min(sample),
            None => sample,
        });
        self.max = Some(match self.max {
            Some(m) => m.max(sample),
            None => sample,
        });
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn total(&self) -> Picos {
        self.total
    }

    /// Mean sample, zero when empty.
    pub fn mean(&self) -> Picos {
        if self.count == 0 {
            Picos::ZERO
        } else {
            self.total / self.count
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<Picos> {
        self.min
    }

    /// Largest sample.
    pub fn max(&self) -> Option<Picos> {
        self.max
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} min={} max={}",
            self.count,
            self.mean(),
            self.min.unwrap_or(Picos::ZERO),
            self.max.unwrap_or(Picos::ZERO)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn stats_bump_and_get() {
        let mut s = Stats::default();
        s.bump("a");
        s.bump("a");
        s.bump_by("b", 5);
        assert_eq!(s.get("a"), 2);
        assert_eq!(s.get("b"), 5);
        assert_eq!(s.get("c"), 0);
    }

    #[test]
    fn stats_merge_sums() {
        let mut a = Stats::default();
        a.bump_by("x", 2);
        let mut b = Stats::default();
        b.bump_by("x", 3);
        b.bump("y");
        a.merge(&b);
        assert_eq!(a.get("x"), 5);
        assert_eq!(a.get("y"), 1);
    }

    #[test]
    fn summary_tracks_extremes() {
        let mut s = Summary::default();
        for us in [5u64, 1, 9, 3] {
            s.record(Picos::from_micros(us));
        }
        assert_eq!(s.min(), Some(Picos::from_micros(1)));
        assert_eq!(s.max(), Some(Picos::from_micros(9)));
        assert_eq!(s.mean(), Picos::from_micros(18) / 4);
    }

    #[test]
    fn empty_summary_mean_is_zero() {
        let s = Summary::default();
        assert_eq!(s.mean(), Picos::ZERO);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn histogram_empty_is_all_zero() {
        let h = Histogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
    }

    #[test]
    fn histogram_single_sample_quantiles_are_exact() {
        let mut h = Histogram::default();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        // Every quantile clamps into [min, max] = {42}.
        assert_eq!(h.p50(), 42);
        assert_eq!(h.p99(), 42);
    }

    #[test]
    fn histogram_zero_and_extremes() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_order_and_bounds() {
        let mut h = Histogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let (p50, p90, p99) = (h.p50(), h.p90(), h.p99());
        assert!(p50 <= p90 && p90 <= p99 && p99 <= h.max());
        // Log-bucket estimate is within a factor of two of the truth.
        assert!((2_500..=10_000).contains(&p50), "p50={p50}");
        assert!((4_500..=10_000).contains(&p90), "p90={p90}");
        assert_eq!(h.max(), 10_000);
    }

    /// Nearest-rank quantile over a sorted sample vector, matching the
    /// histogram's `rank = q * count` crossing rule.
    fn ref_quantile(sorted: &[u64], q: f64) -> u64 {
        assert!(!sorted.is_empty());
        let rank = (q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize;
        sorted[rank.max(1) - 1]
    }

    #[test]
    fn histogram_quantile_tracks_sorted_reference() {
        // Property: across seeded uniform / tight / bimodal / constant
        // distributions, every estimated quantile (a) is monotone in q,
        // (b) stays inside the observed [min, max], and (c) lands in the
        // same log2 bucket as the sorted-vector reference, i.e. within a
        // factor of two.
        for seed in 0..8u64 {
            let mut rng = crate::rng::Xoshiro256::seeded(0xC0FFEE + seed);
            let mut dists: Vec<Vec<u64>> = Vec::new();
            dists.push((0..5_000).map(|_| rng.gen_range(1, 1_000_000)).collect());
            dists.push((0..5_000).map(|_| rng.gen_range(1_024, 1_101)).collect());
            dists.push(
                (0..4_000)
                    .map(|i| {
                        if i % 10 == 0 {
                            rng.gen_range(1 << 20, 1 << 21)
                        } else {
                            rng.gen_range(100, 200)
                        }
                    })
                    .collect(),
            );
            dists.push(vec![77; 1_000]);
            for samples in dists {
                let mut h = Histogram::default();
                let mut sorted = samples.clone();
                for &v in &samples {
                    h.record(v);
                }
                sorted.sort_unstable();
                let mut prev = 0u64;
                for q in [0.01, 0.10, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
                    let est = h.quantile(q);
                    let truth = ref_quantile(&sorted, q);
                    assert!(est >= prev, "quantiles not monotone at q={q}");
                    assert!(
                        (h.min()..=h.max()).contains(&est),
                        "q={q}: est {est} outside [{}, {}]",
                        h.min(),
                        h.max()
                    );
                    assert!(
                        est <= truth.saturating_mul(2) && est >= truth / 2,
                        "q={q}: est {est} not within 2x of reference {truth}"
                    );
                    prev = est;
                }
            }
        }
    }

    #[test]
    fn histogram_tight_distribution_not_overstated() {
        // All samples in [1024, 1100]: the distribution occupies a thin
        // slice of the [1024, 2048) bucket. Interpolating over the full
        // bucket width put p50 at ~1536, clamped back to 1100 — i.e. the
        // "median" reported the maximum. Tightened interpolation against
        // the observed [min, max] lands next to the true median.
        let mut rng = crate::rng::Xoshiro256::seeded(0xBEEF);
        let samples: Vec<u64> = (0..5_000).map(|_| rng.gen_range(1_024, 1_101)).collect();
        let mut h = Histogram::default();
        let mut sorted = samples.clone();
        for &v in &samples {
            h.record(v);
        }
        sorted.sort_unstable();
        for q in [0.50, 0.99, 0.999] {
            let est = h.quantile(q);
            let truth = ref_quantile(&sorted, q);
            assert!(
                est.abs_diff(truth) <= 8,
                "q={q}: est {est} vs reference {truth}"
            );
        }
        assert!(h.p50() < 1_100, "tight-distribution p50 clamped to max");
    }

    #[test]
    fn histogram_p999_orders_with_tail() {
        let mut h = Histogram::default();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let (p99, p999) = (h.p99(), h.p999());
        assert!(p99 <= p999 && p999 <= h.max());
        // The tightened estimate keeps the 99.9th inside the true tail's
        // bucket: within a factor of two of 99_900.
        assert!((50_000..=100_000).contains(&p999), "p999={p999}");
    }

    #[test]
    fn histogram_merge_matches_combined_recording() {
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        let mut both = Histogram::default();
        for v in [3u64, 17, 900, 5] {
            a.record(v);
            both.record(v);
        }
        for v in [1u64, 2_000_000, 64] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn stats_hist_roundtrip_and_merge() {
        let mut s = Stats::default();
        s.record_hist("seg", 10);
        s.record_hist("seg", 20);
        assert_eq!(s.hist("seg").unwrap().count(), 2);
        assert!(s.hist("missing").is_none());

        let mut t = Stats::default();
        t.record_hist("seg", 30);
        t.record_hist("other", 1);
        s.merge(&t);
        assert_eq!(s.hist("seg").unwrap().count(), 3);
        assert_eq!(s.hist("other").unwrap().count(), 1);
        assert_eq!(s.hists().count(), 2);

        s.clear();
        assert_eq!(s.hists().count(), 0);
    }

    #[test]
    fn stats_display_appends_hists_only_when_present() {
        let mut s = Stats::default();
        s.bump("a");
        let plain = s.to_string();
        assert!(!plain.contains("p50"));
        s.record_hist("lat", 100);
        let with = s.to_string();
        assert!(with.contains("lat"));
        assert!(with.contains("p50"));
    }
}
