//! Event tracing for simulated runs.
//!
//! Every interesting hardware/OS event (page fault, descriptor DMA,
//! context switch, migration leg) can be recorded with its timestamp.
//! Tests assert on the trace to verify mechanism-level behaviour (e.g.
//! "a host→NxP call migration emits exactly one NX fault and one DMA
//! burst"), and the bench harnesses use it to decompose round-trip
//! overhead the way Table III of the paper does.

use crate::time::Picos;
use std::fmt;

/// Which side of the system an event happened on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// The x86-64-like host CPU / kernel.
    Host,
    /// The RV64-like NxP core / runtime.
    Nxp,
    /// A host core running the degraded-mode interpreter over NxP text
    /// (§IV ablation). Used for core *labeling* only — emulator cores
    /// are host cores architecturally.
    Emu,
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Host => write!(f, "host"),
            Side::Nxp => write!(f, "nxp"),
            Side::Emu => write!(f, "emu"),
        }
    }
}

/// Identity of one core in a topology-configured machine: which fleet
/// it belongs to and its index within that fleet.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CoreId {
    /// Host or NxP fleet.
    pub side: Side,
    /// Index within the fleet (0-based).
    pub index: usize,
}

impl CoreId {
    /// The `index`-th host core.
    pub fn host(index: usize) -> Self {
        CoreId {
            side: Side::Host,
            index,
        }
    }

    /// The `index`-th NxP core.
    pub fn nxp(index: usize) -> Self {
        CoreId {
            side: Side::Nxp,
            index,
        }
    }

    /// The degraded-mode emulator attached to the `index`-th host core.
    pub fn emu(index: usize) -> Self {
        CoreId {
            side: Side::Emu,
            index,
        }
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.side, self.index)
    }
}

/// A traced simulation event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// Instruction page fault caused by the NX-bit convention.
    NxFault {
        /// Side that faulted.
        side: Side,
        /// Virtual address of the function whose fetch faulted.
        fault_va: u64,
    },
    /// RISC-V misaligned-instruction-address exception (fetching x86 bytes).
    MisalignedFetch {
        /// Faulting virtual PC.
        fault_va: u64,
    },
    /// A migration descriptor left one side via the DMA engine.
    DescriptorSent {
        /// Sending side.
        from: Side,
        /// Descriptor kind tag (call/return).
        kind: &'static str,
        /// Payload size in bytes.
        bytes: usize,
    },
    /// A migration descriptor was picked up by the other side.
    DescriptorReceived {
        /// Receiving side.
        to: Side,
        /// Descriptor kind tag.
        kind: &'static str,
    },
    /// The kernel suspended a thread pending migration.
    ThreadSuspended {
        /// Process id.
        pid: u64,
    },
    /// An interrupt woke a suspended thread.
    ThreadWoken {
        /// Process id.
        pid: u64,
    },
    /// NxP scheduler context-switched a thread in or out.
    NxpContextSwitch {
        /// True when switching a thread in, false when switching out.
        switch_in: bool,
    },
    /// A TLB miss was serviced by the programmable MMU.
    TlbMiss {
        /// Side whose TLB missed.
        side: Side,
        /// Virtual address.
        va: u64,
        /// Number of page-table levels walked.
        levels: u8,
    },
    /// The fault injector perturbed the interconnect (chaos testing).
    FaultInjected {
        /// What was injected: `"corrupt-burst"`, `"drop-burst"`,
        /// `"link-stall"`, `"drop-msi"` or `"dup-msi"`.
        kind: &'static str,
        /// Receiving side of the affected transfer.
        to: Side,
    },
    /// A receiver rejected a descriptor whose checksum failed.
    CorruptDescriptor {
        /// Side that detected the corruption.
        to: Side,
        /// Sequence number carried by the damaged descriptor.
        seq: u64,
    },
    /// A receiver discarded a descriptor whose sequence number was
    /// already accepted (late original after a retransmit, or a
    /// duplicate delivery).
    DuplicateDescriptor {
        /// Side that discarded it.
        to: Side,
        /// The stale sequence number.
        seq: u64,
    },
    /// A NAK asked the sender to retransmit a damaged/lost descriptor.
    NakSent {
        /// Side sending the NAK (the receiver of the bad transfer).
        from: Side,
        /// Sequence number being NAKed.
        seq: u64,
    },
    /// A descriptor was retransmitted after a NAK or timeout.
    Retransmit {
        /// Receiving side of the retried transfer.
        to: Side,
        /// Sequence number (unchanged across retries).
        seq: u64,
        /// Retry attempt, 1-based; backoff doubles with each.
        attempt: u32,
    },
    /// An interrupt fired with no fresh descriptor behind it (duplicate
    /// or stale MSI); the wakeup was ignored.
    SpuriousWakeup {
        /// Process whose wait loop observed it.
        pid: u64,
    },
    /// The host migration watchdog expired for a suspended thread.
    WatchdogFired {
        /// The timed-out process.
        pid: u64,
    },
    /// A watchdog poll found the descriptor ring non-empty: the MSI was
    /// lost but the payload had landed, and delivery proceeds.
    MsiLossRecovered {
        /// The recovering process.
        pid: u64,
        /// Sequence number of the recovered descriptor.
        seq: u64,
    },
    /// Migration was abandoned after bounded retries; the task is now
    /// sticky-degraded and runs NxP functions via the host interpreter.
    Degraded {
        /// The degraded process.
        pid: u64,
    },
    /// A degraded task entered host-interpreter execution of NxP text.
    EmulatedSegment {
        /// The process.
        pid: u64,
        /// Virtual address where emulation started.
        from_va: u64,
    },
    /// A scheduled device-level failure took effect (first observed by
    /// the host at this time).
    DeviceFault {
        /// The afflicted NxP.
        nxp: usize,
        /// `"crash"`, `"hang"` or `"unplug"`.
        kind: &'static str,
    },
    /// The health monitor declared an NxP dead: its circuit breaker
    /// opened and failover begins.
    NxpDeclaredDead {
        /// The dead NxP.
        nxp: usize,
    },
    /// A previously-dead NxP rejoined the fleet: rings cleared, sequence
    /// spaces reset, breaker half-open pending a probe.
    NxpRejoined {
        /// The rejoining NxP.
        nxp: usize,
    },
    /// A half-open breaker's probe migration completed and the breaker
    /// closed: the NxP is back in normal rotation.
    ProbeSucceeded {
        /// The probed NxP.
        nxp: usize,
    },
    /// In-flight descriptors for a dead NxP were reaped from its channel
    /// rings during quiesce.
    DescriptorsReaped {
        /// The quiesced NxP/channel.
        nxp: usize,
        /// How many in-flight descriptors were cancelled.
        count: u64,
    },
    /// A victim thread was re-placed from a dead NxP onto a survivor.
    FailoverReplaced {
        /// The re-placed thread.
        pid: u64,
        /// The NxP it was running toward.
        from_nxp: usize,
        /// The surviving NxP now hosting it.
        to_nxp: usize,
    },
    /// A retained descriptor was re-executed on a survivor after its
    /// original NxP died holding the in-flight leg.
    FailoverReexecuted {
        /// The thread whose leg was re-executed.
        pid: u64,
        /// The surviving NxP that re-ran it.
        on_nxp: usize,
    },
    /// Bounded admission rejected a kick: the channel's descriptor ring
    /// was full, so the sender backed off instead of queueing unboundedly.
    AdmissionRejected {
        /// The saturated channel.
        chan: usize,
    },
    /// Free-form annotation (used by workloads to mark phases).
    Marker(&'static str),
}

/// Trace recording configuration.
#[derive(Clone, Copy, Debug)]
pub struct TraceConfig {
    /// Master switch; when false nothing is recorded.
    pub enabled: bool,
    /// Drop events once this many are stored (guards long benches).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            capacity: 1 << 20,
        }
    }
}

/// A timestamped event log.
///
/// # Examples
///
/// ```
/// use flick_sim::{Event, Picos, Trace};
///
/// let mut trace = Trace::default();
/// trace.record(Picos::from_nanos(10), Event::Marker("start"));
/// assert_eq!(trace.len(), 1);
/// assert_eq!(trace.count(|e| matches!(e, Event::Marker(_))), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Trace {
    config: TraceConfig,
    events: Vec<(Picos, Event)>,
    /// Which core recorded each event, parallel to `events`. `None` for
    /// untagged records (markers, legacy callers); kept out of the
    /// event tuples so trace-equality assertions over [`Trace::events`]
    /// are independent of the machine topology that produced them.
    cores: Vec<Option<CoreId>>,
    dropped: u64,
}

impl Trace {
    /// Creates a trace with the given configuration.
    pub fn new(config: TraceConfig) -> Self {
        Trace {
            config,
            events: Vec::new(),
            cores: Vec::new(),
            dropped: 0,
        }
    }

    /// Creates a disabled trace that records nothing.
    pub fn disabled() -> Self {
        Trace::new(TraceConfig {
            enabled: false,
            capacity: 0,
        })
    }

    /// Records `event` at time `at` (no-op when disabled or full).
    pub fn record(&mut self, at: Picos, event: Event) {
        self.push(None, at, event);
    }

    /// Records `event` at time `at`, attributed to `core` — the
    /// topology-aware variant of [`Trace::record`].
    pub fn record_on(&mut self, core: CoreId, at: Picos, event: Event) {
        self.push(Some(core), at, event);
    }

    fn push(&mut self, core: Option<CoreId>, at: Picos, event: Event) {
        if !self.config.enabled {
            return;
        }
        if self.events.len() >= self.config.capacity {
            self.dropped += 1;
            return;
        }
        self.events.push((at, event));
        self.cores.push(core);
    }

    /// Splices a batch of buffered records into the trace at `pos`
    /// (clamped to the current length), preserving the batch's internal
    /// order, and returns how many records were inserted.
    ///
    /// This is the parallel migration engine's merge primitive: a
    /// detached leg buffers its records off-thread and the coordinator
    /// splices them at the position the sequential interleaving would
    /// have recorded them (captured at dispatch time), so the merged
    /// trace is byte-identical to the sequential one regardless of when
    /// the leg actually joined. If the splice pushes the trace past its
    /// capacity, the newest records (by position) are dropped — the
    /// same drop-newest policy as [`Trace::record`], applied to the
    /// merged order.
    pub fn splice_at(&mut self, pos: usize, batch: Vec<(Option<CoreId>, Picos, Event)>) -> usize {
        if !self.config.enabled || batch.is_empty() {
            return 0;
        }
        let pos = pos.min(self.events.len());
        let n = batch.len();
        let mut evs = Vec::with_capacity(n);
        let mut tags = Vec::with_capacity(n);
        for (core, at, event) in batch {
            evs.push((at, event));
            tags.push(core);
        }
        self.events.splice(pos..pos, evs);
        self.cores.splice(pos..pos, tags);
        if self.events.len() > self.config.capacity {
            let excess = self.events.len() - self.config.capacity;
            self.events.truncate(self.config.capacity);
            self.cores.truncate(self.config.capacity);
            self.dropped += excess as u64;
        }
        n
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[(Picos, Event)] {
        &self.events
    }

    /// Which core recorded each event, parallel to [`Trace::events`]
    /// (`None` for untagged records).
    pub fn core_tags(&self) -> &[Option<CoreId>] {
        &self.cores
    }

    /// The events a particular core recorded, with timestamps.
    pub fn events_on(&self, core: CoreId) -> impl Iterator<Item = &(Picos, Event)> {
        self.events
            .iter()
            .zip(self.cores.iter())
            .filter(move |(_, c)| **c == Some(core))
            .map(|(e, _)| e)
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when no events are recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events dropped because the trace filled up.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Counts events matching a predicate.
    pub fn count(&self, mut pred: impl FnMut(&Event) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }

    /// First event matching a predicate, with its timestamp.
    pub fn find(&self, mut pred: impl FnMut(&Event) -> bool) -> Option<(Picos, &Event)> {
        self.events
            .iter()
            .find(|(_, e)| pred(e))
            .map(|(t, e)| (*t, e))
    }

    /// Clears all recorded events (configuration is kept).
    pub fn clear(&mut self) {
        self.events.clear();
        self.cores.clear();
        self.dropped = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::default();
        t.record(Picos::from_nanos(1), Event::Marker("a"));
        t.record(Picos::from_nanos(2), Event::Marker("b"));
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].1, Event::Marker("a"));
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(Picos::ZERO, Event::Marker("x"));
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn capacity_drops_and_counts() {
        let mut t = Trace::new(TraceConfig {
            enabled: true,
            capacity: 2,
        });
        for _ in 0..5 {
            t.record(Picos::ZERO, Event::Marker("m"));
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn find_returns_first_match() {
        let mut t = Trace::default();
        t.record(Picos::from_nanos(5), Event::ThreadSuspended { pid: 1 });
        t.record(Picos::from_nanos(9), Event::ThreadWoken { pid: 1 });
        let (at, e) = t.find(|e| matches!(e, Event::ThreadWoken { .. })).unwrap();
        assert_eq!(at, Picos::from_nanos(9));
        assert_eq!(*e, Event::ThreadWoken { pid: 1 });
    }

    #[test]
    fn clear_resets() {
        let mut t = Trace::default();
        t.record(Picos::ZERO, Event::Marker("m"));
        t.clear();
        assert!(t.is_empty());
        assert!(t.core_tags().is_empty());
    }

    #[test]
    fn overflow_dropped_accounting_is_exact() {
        let cap = 8;
        let mut t = Trace::new(TraceConfig {
            enabled: true,
            capacity: cap,
        });
        let total = 1000;
        for i in 0..total {
            t.record_on(
                CoreId::host(i % 3),
                Picos::from_nanos(i as u64),
                Event::Marker("m"),
            );
        }
        assert_eq!(t.len(), cap);
        assert_eq!(t.dropped(), (total - cap) as u64);
        // Dropping is stable: the survivors are exactly the first `cap`
        // records, still in order.
        for (i, (at, _)) in t.events().iter().enumerate() {
            assert_eq!(*at, Picos::from_nanos(i as u64));
        }
        // Draining more after overflow keeps counting.
        t.record(Picos::ZERO, Event::Marker("late"));
        assert_eq!(t.dropped(), (total - cap) as u64 + 1);
    }

    #[test]
    fn overflow_never_misattributes_cores() {
        // Interleave three cores, overflow the ring, then check that
        // per-core views only ever return that core's events and that
        // the tag column stays exactly parallel to the event column.
        let mut t = Trace::new(TraceConfig {
            enabled: true,
            capacity: 10,
        });
        for i in 0..50u64 {
            let core = match i % 3 {
                0 => CoreId::host(0),
                1 => CoreId::host(1),
                _ => CoreId::nxp(0),
            };
            // Timestamp encodes the owning core so any cross-talk is
            // detectable from the surviving records alone.
            t.record_on(core, Picos(i % 3), Event::Marker("m"));
        }
        assert_eq!(t.core_tags().len(), t.events().len());
        for (want, core) in [
            (0u64, CoreId::host(0)),
            (1, CoreId::host(1)),
            (2, CoreId::nxp(0)),
        ] {
            for (at, _) in t.events_on(core) {
                assert_eq!(at.0, want, "event leaked across core tracks");
            }
        }
        // An overflow-dropped record must not leave a dangling tag.
        let tagged: usize = t
            .core_tags()
            .iter()
            .filter(|c| c.is_some())
            .count();
        assert_eq!(tagged, t.len());
    }

    #[test]
    fn overflow_drops_tag_and_event_together() {
        let mut t = Trace::new(TraceConfig {
            enabled: true,
            capacity: 1,
        });
        t.record_on(CoreId::host(0), Picos::ZERO, Event::Marker("kept"));
        t.record_on(CoreId::nxp(5), Picos::ZERO, Event::Marker("dropped"));
        assert_eq!(t.len(), 1);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.core_tags(), &[Some(CoreId::host(0))]);
        assert_eq!(t.events_on(CoreId::nxp(5)).count(), 0);
    }

    #[test]
    fn splice_reproduces_sequential_interleaving() {
        // Sequential reference: leg events land between the host events
        // recorded before and after the dispatch point.
        let mut seq = Trace::default();
        seq.record_on(CoreId::host(0), Picos(1), Event::Marker("pre"));
        seq.record_on(CoreId::nxp(0), Picos(2), Event::Marker("leg-a"));
        seq.record_on(CoreId::nxp(0), Picos(3), Event::Marker("leg-b"));
        seq.record_on(CoreId::host(0), Picos(4), Event::Marker("post"));

        // Parallel: the host records past the dispatch point, then the
        // leg's buffer is spliced back at the captured position.
        let mut par = Trace::default();
        par.record_on(CoreId::host(0), Picos(1), Event::Marker("pre"));
        let pos = par.len();
        par.record_on(CoreId::host(0), Picos(4), Event::Marker("post"));
        let n = par.splice_at(
            pos,
            vec![
                (Some(CoreId::nxp(0)), Picos(2), Event::Marker("leg-a")),
                (Some(CoreId::nxp(0)), Picos(3), Event::Marker("leg-b")),
            ],
        );
        assert_eq!(n, 2);
        assert_eq!(par.events(), seq.events());
        assert_eq!(par.core_tags(), seq.core_tags());
    }

    #[test]
    fn splice_into_disabled_trace_is_a_noop() {
        let mut t = Trace::disabled();
        let n = t.splice_at(0, vec![(None, Picos::ZERO, Event::Marker("x"))]);
        assert_eq!(n, 0);
        assert!(t.is_empty());
    }

    #[test]
    fn core_tags_parallel_events() {
        let mut t = Trace::default();
        t.record_on(CoreId::host(0), Picos::from_nanos(1), Event::Marker("a"));
        t.record(Picos::from_nanos(2), Event::Marker("b"));
        t.record_on(CoreId::nxp(1), Picos::from_nanos(3), Event::Marker("c"));
        assert_eq!(t.core_tags(), &[
            Some(CoreId::host(0)),
            None,
            Some(CoreId::nxp(1)),
        ]);
        let on_nxp1: Vec<_> = t.events_on(CoreId::nxp(1)).collect();
        assert_eq!(on_nxp1, vec![&(Picos::from_nanos(3), Event::Marker("c"))]);
        assert_eq!(CoreId::nxp(1).to_string(), "nxp1");
    }
}
