//! Simulated time: picosecond instants/durations, frequencies and cycles.
//!
//! All timing in the reproduction is expressed as [`Picos`] — a `u64`
//! picosecond count. One picosecond of resolution lets us represent a
//! single cycle of the 2.4 GHz host core (≈417 ps) exactly enough while
//! still covering more than 200 days of simulated time without overflow.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A simulated instant or duration, in picoseconds.
///
/// `Picos` is used for both points in time and spans of time; the
/// arithmetic is saturating-free (plain `u64`) because a simulation that
/// overflows 2^64 ps (~213 days) has a configuration bug worth a panic.
///
/// # Examples
///
/// ```
/// use flick_sim::Picos;
///
/// let t = Picos::from_micros(18) + Picos::from_nanos(300);
/// assert_eq!(t.as_nanos_f64(), 18_300.0);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Picos(pub u64);

impl Picos {
    /// The zero instant / empty duration.
    pub const ZERO: Picos = Picos(0);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Picos(ns * 1_000)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Picos(us * 1_000_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Picos(ms * 1_000_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Picos(s * 1_000_000_000_000)
    }

    /// Raw picosecond count.
    pub const fn as_picos(self) -> u64 {
        self.0
    }

    /// Nanoseconds, truncating sub-nanosecond remainder.
    pub const fn as_nanos(self) -> u64 {
        self.0 / 1_000
    }

    /// Nanoseconds as a float (no truncation).
    pub fn as_nanos_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Microseconds as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Saturating subtraction: `self - other`, or zero if `other` is later.
    pub fn saturating_sub(self, other: Picos) -> Picos {
        Picos(self.0.saturating_sub(other.0))
    }

    /// Returns the later of two instants.
    pub fn max(self, other: Picos) -> Picos {
        Picos(self.0.max(other.0))
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: Picos) -> Picos {
        Picos(self.0.min(other.0))
    }
}

impl Add for Picos {
    type Output = Picos;
    fn add(self, rhs: Picos) -> Picos {
        Picos(self.0 + rhs.0)
    }
}

impl AddAssign for Picos {
    fn add_assign(&mut self, rhs: Picos) {
        self.0 += rhs.0;
    }
}

impl Sub for Picos {
    type Output = Picos;
    fn sub(self, rhs: Picos) -> Picos {
        Picos(self.0 - rhs.0)
    }
}

impl SubAssign for Picos {
    fn sub_assign(&mut self, rhs: Picos) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Picos {
    type Output = Picos;
    fn mul(self, rhs: u64) -> Picos {
        Picos(self.0 * rhs)
    }
}

impl Div<u64> for Picos {
    type Output = Picos;
    fn div(self, rhs: u64) -> Picos {
        Picos(self.0 / rhs)
    }
}

impl Sum for Picos {
    fn sum<I: Iterator<Item = Picos>>(iter: I) -> Picos {
        iter.fold(Picos::ZERO, Add::add)
    }
}

impl fmt::Display for Picos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if ps >= 1_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else if ps >= 1_000 {
            write!(f, "{:.3}ns", self.as_nanos_f64())
        } else {
            write!(f, "{ps}ps")
        }
    }
}

/// A clock frequency.
///
/// # Examples
///
/// ```
/// use flick_sim::{Hertz, Picos};
///
/// let host = Hertz::ghz_milli(2_400); // 2.4 GHz
/// assert_eq!(host.cycle_time(), Picos(416)); // truncated to ps
/// let nxp = Hertz::mhz(200);
/// assert_eq!(nxp.cycle_time(), Picos::from_nanos(5));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Hertz(pub u64);

impl Hertz {
    /// Frequency from megahertz.
    pub const fn mhz(mhz: u64) -> Self {
        Hertz(mhz * 1_000_000)
    }

    /// Frequency from kilohertz (the unit ISA descriptors carry).
    pub const fn khz(khz: u64) -> Self {
        Hertz(khz * 1_000)
    }

    /// Frequency from thousandths of a gigahertz (e.g. `2_400` → 2.4 GHz).
    pub const fn ghz_milli(milli_ghz: u64) -> Self {
        Hertz(milli_ghz * 1_000_000)
    }

    /// Duration of one cycle, truncated to picoseconds.
    pub const fn cycle_time(self) -> Picos {
        Picos(1_000_000_000_000 / self.0)
    }

    /// Duration of `n` cycles, computed without accumulating the
    /// single-cycle truncation error.
    pub const fn cycles(self, n: u64) -> Picos {
        // n / f seconds = n * 1e12 / f picoseconds; split to avoid overflow
        // for large n: n up to ~1e13 cycles is exact with u128.
        Picos((n as u128 * 1_000_000_000_000u128 / self.0 as u128) as u64)
    }
}

impl fmt::Display for Hertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}GHz", self.0 as f64 / 1e9)
        } else {
            write!(f, "{:.0}MHz", self.0 as f64 / 1e6)
        }
    }
}

/// A cycle count on some clock domain.
///
/// `Cycles` is a plain counter; convert to time via [`Hertz::cycles`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Raw count.
    pub const fn count(self) -> u64 {
        self.0
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picos_constructors_scale() {
        assert_eq!(Picos::from_nanos(1), Picos(1_000));
        assert_eq!(Picos::from_micros(1), Picos(1_000_000));
        assert_eq!(Picos::from_millis(1), Picos(1_000_000_000));
        assert_eq!(Picos::from_secs(1), Picos(1_000_000_000_000));
    }

    #[test]
    fn picos_arithmetic() {
        let a = Picos::from_nanos(10);
        let b = Picos::from_nanos(4);
        assert_eq!(a + b, Picos::from_nanos(14));
        assert_eq!(a - b, Picos::from_nanos(6));
        assert_eq!(a * 3, Picos::from_nanos(30));
        assert_eq!(a / 2, Picos::from_nanos(5));
        assert_eq!(b.saturating_sub(a), Picos::ZERO);
    }

    #[test]
    fn picos_display_picks_unit() {
        assert_eq!(Picos(500).to_string(), "500ps");
        assert_eq!(Picos::from_nanos(2).to_string(), "2.000ns");
        assert_eq!(Picos::from_micros(18).to_string(), "18.000us");
        assert_eq!(Picos::from_millis(3).to_string(), "3.000ms");
        assert_eq!(Picos::from_secs(2).to_string(), "2.000s");
    }

    #[test]
    fn hertz_cycle_time() {
        assert_eq!(Hertz::mhz(200).cycle_time(), Picos::from_nanos(5));
        assert_eq!(Hertz::mhz(1000).cycle_time(), Picos::from_nanos(1));
        // 2.4 GHz cycle is 416.67ps, truncated.
        assert_eq!(Hertz::ghz_milli(2_400).cycle_time(), Picos(416));
    }

    #[test]
    fn hertz_cycles_avoids_truncation_drift() {
        let f = Hertz::ghz_milli(2_400);
        // 2400 cycles at 2.4GHz is exactly 1us.
        assert_eq!(f.cycles(2_400), Picos::from_micros(1));
        // Per-cycle truncation would give 2400 * 416 = 998400ps instead.
        assert!(f.cycle_time() * 2_400 < f.cycles(2_400));
    }

    #[test]
    fn picos_sum() {
        let total: Picos = (1..=4).map(Picos::from_nanos).sum();
        assert_eq!(total, Picos::from_nanos(10));
    }
}
