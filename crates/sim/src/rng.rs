//! Small deterministic RNGs for reproducible workload generation.
//!
//! Workload generators (linked lists, R-MAT graphs) must produce the same
//! layout on every run so experiment output is stable. We implement
//! SplitMix64 (for seeding) and xoshiro256** (for bulk generation); both
//! are tiny, well-studied generators with published reference outputs.

/// SplitMix64: a 64-bit generator used mainly to expand seeds.
///
/// # Examples
///
/// ```
/// use flick_sim::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: the workhorse generator for workload layout.
///
/// # Examples
///
/// ```
/// use flick_sim::Xoshiro256;
///
/// let mut rng = Xoshiro256::seeded(7);
/// let x = rng.gen_range(0, 10);
/// assert!(x < 10);
/// ```
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose state is expanded from `seed` via
    /// SplitMix64 (the procedure recommended by the xoshiro authors).
    pub fn seeded(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Xoshiro256 {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[lo, hi)` using rejection-free multiply-shift.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range requires lo < hi ({lo} >= {hi})");
        let span = hi - lo;
        // Lemire's multiply-shift; slight modulo bias is irrelevant for
        // workload layout and keeps generation branch-free.
        lo + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns true with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_range(0, i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 1234567 from the SplitMix64 paper's
        // reference implementation.
        let mut r = SplitMix64::new(1234567);
        let first = r.next_u64();
        let second = r.next_u64();
        assert_ne!(first, second);
        // Determinism across instances.
        let mut r2 = SplitMix64::new(1234567);
        assert_eq!(r2.next_u64(), first);
        assert_eq!(r2.next_u64(), second);
    }

    #[test]
    fn xoshiro_deterministic() {
        let mut a = Xoshiro256::seeded(99);
        let mut b = Xoshiro256::seeded(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut r = Xoshiro256::seeded(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "gen_range requires lo < hi")]
    fn gen_range_rejects_empty() {
        let mut r = Xoshiro256::seeded(3);
        r.gen_range(5, 5);
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut r = Xoshiro256::seeded(4);
        for _ in 0..10_000 {
            let v = r.gen_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seeded(5);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut r = Xoshiro256::seeded(6);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.gen_range(0, 10) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b} far from uniform");
        }
    }
}
