//! Latency of kernel code paths.
//!
//! The interpreter charges user-space instructions individually, but
//! kernel paths (trap entry, scheduler, wakeup) run native code we do
//! not interpret; they are charged as calibrated constants. The NX
//! page-fault path is pinned to the paper's measurement: "the host side
//! page fault only incurs 0.7µs of the total migration overhead" (§V-A).

use flick_sim::Picos;

/// Reliability knobs for the migration transport: the watchdog that
/// guards a suspended thread, the retransmit back-off schedule, and the
/// bounds that turn "keep retrying forever" into "declare the link or
/// device dead and fail over". Previously hardcoded constants; the
/// defaults reproduce them exactly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// How long a suspended thread waits for its wake-up MSI before the
    /// migration watchdog fires and polls the descriptor ring directly
    /// (recovering from a lost interrupt, or deciding to retransmit).
    pub migration_watchdog: Picos,
    /// Base back-off before the first retransmission; doubles per
    /// attempt up to `1 << backoff_cap_shift` times the base.
    pub retry_backoff: Picos,
    /// Delivery attempts per descriptor before the link is declared
    /// dead — after which the call degrades to the host interpreter, or
    /// (with surviving NxPs) fails over to one of them.
    pub max_link_attempts: u32,
    /// Caps the exponential back-off: the multiplier saturates at
    /// `2^backoff_cap_shift` so a long retry budget cannot produce
    /// astronomically long sleeps.
    pub backoff_cap_shift: u32,
    /// Bounded admission at the descriptor ring: a kick finding this
    /// many descriptors already in flight on the channel is rejected
    /// with back-pressure (EAGAIN-style) instead of queueing unboundedly.
    pub ring_capacity: usize,
}

impl RetryPolicy {
    /// The constants PR 1 hardcoded, now in one place.
    pub fn paper_default() -> Self {
        RetryPolicy {
            // Generous versus the ~18 µs round trip so the watchdog
            // never fires on a healthy link.
            migration_watchdog: Picos::from_micros(200),
            retry_backoff: Picos::from_micros(5),
            max_link_attempts: 7,
            backoff_cap_shift: 8,
            // The synchronous migration protocol keeps at most one
            // descriptor in flight per channel, so a capacity of 4
            // never rejects in fault-free runs but bounds any future
            // pipelined sender.
            ring_capacity: 4,
        }
    }

    /// The back-off before retry `attempt` (1-based): exponential,
    /// saturating at `2^backoff_cap_shift` times the base.
    pub fn backoff_for(&self, attempt: u32) -> Picos {
        self.retry_backoff * (1u64 << attempt.saturating_sub(1).min(self.backoff_cap_shift))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::paper_default()
    }
}

/// Costs of kernel operations on the host.
#[derive(Clone, Debug)]
pub struct OsTiming {
    /// Trap entry + NX classification + `task_struct` bookkeeping +
    /// return-address hijack + IRET back to user space. The paper
    /// measures this whole path at 0.7 µs.
    pub page_fault_path: Picos,
    /// `ecall`/syscall entry into the kernel.
    pub syscall_entry: Picos,
    /// Return from kernel to user space.
    pub syscall_exit: Picos,
    /// Gathering target/CR3/PID and the six argument registers from
    /// the `task_struct` and trap frame, and building a *call*
    /// descriptor inside the `ioctl` (§IV-B1).
    pub ioctl_desc_prep_call: Picos,
    /// Building a *return* descriptor (return value only) — cheaper
    /// than the call path, which is one reason the NxP-Host-NxP trip
    /// is shorter than Host-NxP-Host in Table III.
    pub ioctl_desc_prep_return: Picos,
    /// Marking the thread `TASK_KILLABLE` and context-switching away
    /// (after which the scheduler triggers the DMA — the migration-flag
    /// mechanism of §IV-D).
    pub suspend_and_switch: Picos,
    /// Interrupt entry on the host (MSI → handler).
    pub irq_entry: Picos,
    /// Copying an arrived descriptor into the process's descriptor page.
    pub desc_copy: Picos,
    /// Waking the suspended thread and scheduling it back onto a core
    /// (run-queue insertion, context switch in, return into the
    /// suspended `ioctl`).
    pub wakeup_and_schedule: Picos,
    /// Allocating and preparing an NxP stack on first migration
    /// (§IV-B1, lines 3–4 of Listing 1) — one-time per thread.
    pub nxp_stack_setup: Picos,
    /// `mmap`-style page allocation per 4 KiB page (loader, heap).
    pub page_alloc: Picos,
    /// Building and kicking a NAK after a checksum-rejected descriptor.
    pub nak_path: Picos,
    /// Watchdog / retransmit / admission policy for the migration
    /// transport (previously three hardcoded fields here).
    pub retry: RetryPolicy,
}

impl OsTiming {
    /// Values calibrated so the end-to-end round trips land on the
    /// paper's Table III (18.3 µs / 16.9 µs); see `EXPERIMENTS.md`.
    pub fn paper_default() -> Self {
        OsTiming {
            page_fault_path: Picos::from_nanos(700),
            syscall_entry: Picos::from_nanos(250),
            syscall_exit: Picos::from_nanos(250),
            ioctl_desc_prep_call: Picos::from_nanos(1_350),
            ioctl_desc_prep_return: Picos::from_nanos(550),
            suspend_and_switch: Picos::from_nanos(1_100),
            irq_entry: Picos::from_nanos(700),
            desc_copy: Picos::from_nanos(300),
            wakeup_and_schedule: Picos::from_nanos(8_830),
            nxp_stack_setup: Picos::from_nanos(2_000),
            page_alloc: Picos::from_nanos(400),
            nak_path: Picos::from_nanos(900),
            retry: RetryPolicy::paper_default(),
        }
    }
}

impl Default for OsTiming {
    fn default() -> Self {
        OsTiming::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_fault_matches_paper() {
        assert_eq!(
            OsTiming::paper_default().page_fault_path,
            Picos::from_nanos(700)
        );
    }

    #[test]
    fn retry_defaults_reproduce_the_old_constants() {
        let r = RetryPolicy::paper_default();
        assert_eq!(r.migration_watchdog, Picos::from_micros(200));
        assert_eq!(r.retry_backoff, Picos::from_micros(5));
        assert_eq!(r.max_link_attempts, 7);
        // Back-off schedule: 5µs, 10µs, 20µs, ... saturating at 2^8x.
        assert_eq!(r.backoff_for(1), Picos::from_micros(5));
        assert_eq!(r.backoff_for(2), Picos::from_micros(10));
        assert_eq!(r.backoff_for(4), Picos::from_micros(40));
        assert_eq!(r.backoff_for(9), Picos::from_micros(5 * 256));
        assert_eq!(r.backoff_for(40), Picos::from_micros(5 * 256));
    }

    #[test]
    fn wakeup_dominates_kernel_cost() {
        // Consistency with the paper's observation that the fault is a
        // small fraction and thread wake/schedule dominates.
        let t = OsTiming::paper_default();
        assert!(t.wakeup_and_schedule > t.page_fault_path * 5);
    }
}
