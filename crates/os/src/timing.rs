//! Latency of kernel code paths.
//!
//! The interpreter charges user-space instructions individually, but
//! kernel paths (trap entry, scheduler, wakeup) run native code we do
//! not interpret; they are charged as calibrated constants. The NX
//! page-fault path is pinned to the paper's measurement: "the host side
//! page fault only incurs 0.7µs of the total migration overhead" (§V-A).

use flick_sim::Picos;

/// Costs of kernel operations on the host.
#[derive(Clone, Debug)]
pub struct OsTiming {
    /// Trap entry + NX classification + `task_struct` bookkeeping +
    /// return-address hijack + IRET back to user space. The paper
    /// measures this whole path at 0.7 µs.
    pub page_fault_path: Picos,
    /// `ecall`/syscall entry into the kernel.
    pub syscall_entry: Picos,
    /// Return from kernel to user space.
    pub syscall_exit: Picos,
    /// Gathering target/CR3/PID and the six argument registers from
    /// the `task_struct` and trap frame, and building a *call*
    /// descriptor inside the `ioctl` (§IV-B1).
    pub ioctl_desc_prep_call: Picos,
    /// Building a *return* descriptor (return value only) — cheaper
    /// than the call path, which is one reason the NxP-Host-NxP trip
    /// is shorter than Host-NxP-Host in Table III.
    pub ioctl_desc_prep_return: Picos,
    /// Marking the thread `TASK_KILLABLE` and context-switching away
    /// (after which the scheduler triggers the DMA — the migration-flag
    /// mechanism of §IV-D).
    pub suspend_and_switch: Picos,
    /// Interrupt entry on the host (MSI → handler).
    pub irq_entry: Picos,
    /// Copying an arrived descriptor into the process's descriptor page.
    pub desc_copy: Picos,
    /// Waking the suspended thread and scheduling it back onto a core
    /// (run-queue insertion, context switch in, return into the
    /// suspended `ioctl`).
    pub wakeup_and_schedule: Picos,
    /// Allocating and preparing an NxP stack on first migration
    /// (§IV-B1, lines 3–4 of Listing 1) — one-time per thread.
    pub nxp_stack_setup: Picos,
    /// `mmap`-style page allocation per 4 KiB page (loader, heap).
    pub page_alloc: Picos,
    /// How long a suspended thread waits for its wake-up MSI before the
    /// migration watchdog fires and polls the descriptor ring directly
    /// (recovering from a lost interrupt, or deciding to retransmit).
    pub migration_watchdog: Picos,
    /// Building and kicking a NAK after a checksum-rejected descriptor.
    pub nak_path: Picos,
    /// Base back-off before the first host→NxP retransmission; doubles
    /// per attempt (bounded by `max_link_attempts`).
    pub retry_backoff: Picos,
    /// Delivery attempts per descriptor before the link is declared
    /// dead and the call degrades to the host interpreter.
    pub max_link_attempts: u32,
}

impl OsTiming {
    /// Values calibrated so the end-to-end round trips land on the
    /// paper's Table III (18.3 µs / 16.9 µs); see `EXPERIMENTS.md`.
    pub fn paper_default() -> Self {
        OsTiming {
            page_fault_path: Picos::from_nanos(700),
            syscall_entry: Picos::from_nanos(250),
            syscall_exit: Picos::from_nanos(250),
            ioctl_desc_prep_call: Picos::from_nanos(1_350),
            ioctl_desc_prep_return: Picos::from_nanos(550),
            suspend_and_switch: Picos::from_nanos(1_100),
            irq_entry: Picos::from_nanos(700),
            desc_copy: Picos::from_nanos(300),
            wakeup_and_schedule: Picos::from_nanos(8_830),
            nxp_stack_setup: Picos::from_nanos(2_000),
            page_alloc: Picos::from_nanos(400),
            // Generous versus the ~18 µs round trip so the watchdog
            // never fires on a healthy link.
            migration_watchdog: Picos::from_micros(200),
            nak_path: Picos::from_nanos(900),
            retry_backoff: Picos::from_micros(5),
            max_link_attempts: 7,
        }
    }
}

impl Default for OsTiming {
    fn default() -> Self {
        OsTiming::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_fault_matches_paper() {
        assert_eq!(
            OsTiming::paper_default().page_fault_path,
            Picos::from_nanos(700)
        );
    }

    #[test]
    fn wakeup_dominates_kernel_cost() {
        // Consistency with the paper's observation that the fault is a
        // small fraction and thread wake/schedule dominates.
        let t = OsTiming::paper_default();
        assert!(t.wakeup_and_schedule > t.page_fault_path * 5);
    }
}
