//! Tasks: the `task_struct` of the model.

use flick_cpu::CpuContext;
use flick_mem::{PhysAddr, VirtAddr};
use flick_sim::Picos;
use std::fmt;

/// Scheduling state of a task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskState {
    /// Currently executing on the host core.
    Running,
    /// Ready to run.
    Runnable,
    /// Suspended awaiting a migration descriptor (the model's
    /// `TASK_KILLABLE` of §IV-D).
    MigrationWait,
    /// Finished; `exit_code` is valid.
    Zombie,
}

impl fmt::Display for TaskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskState::Running => "running",
            TaskState::Runnable => "runnable",
            TaskState::MigrationWait => "migration-wait",
            TaskState::Zombie => "zombie",
        };
        write!(f, "{s}")
    }
}

/// The per-thread kernel structure, extended with Flick's fields.
#[derive(Clone, Debug)]
pub struct TaskStruct {
    /// Process/thread id.
    pub pid: u64,
    /// Scheduler state.
    pub state: TaskState,
    /// Saved host CPU context (valid when not `Running`).
    pub context: CpuContext,
    /// Page-table base for this task's address space.
    pub cr3: PhysAddr,
    /// **Flick field**: the faulting target-function address saved by
    /// the NX page-fault handler for the migration handler (§IV-B1).
    pub fault_va: Option<VirtAddr>,
    /// **Flick field**: the thread's NxP stack pointer; `NULL` until
    /// the first migration allocates one (Listing 1, lines 3–4).
    pub nxp_stack_ptr: VirtAddr,
    /// **Flick field**: set before suspension so the scheduler triggers
    /// the descriptor DMA only *after* the context switch, avoiding the
    /// race described in §IV-D.
    pub migration_flag: bool,
    /// **Recovery field**: absolute simulated time at which the
    /// migration watchdog fires if no wake-up MSI has arrived. Armed on
    /// suspension, cleared on wake-up.
    pub deadline: Option<Picos>,
    /// **Recovery field**: the PCIe link was declared dead for this
    /// thread; its NxP calls now run through the host-side interpreter
    /// instead of migrating.
    pub degraded: bool,
    /// **Topology field**: index of the host core this task last ran
    /// on. Wake-ups re-enqueue the task on that core's runqueue (cache
    /// affinity); idle stealing updates it when the task moves.
    pub last_core: usize,
    /// **Topology field**: simulated time at which the task last became
    /// runnable. A core that picks the task up (locally or by stealing)
    /// syncs its clock forward to this instant so cross-core scheduling
    /// never runs a task before the event that readied it.
    pub ready_at: Picos,
    /// Exit code once `Zombie`.
    pub exit_code: u64,
    /// Bump pointer for this process's host heap.
    pub host_brk: VirtAddr,
    /// Bump pointer for this process's NxP-DRAM heap.
    pub nxp_brk: VirtAddr,
    /// **Parallel-engine field**: every physical frame range this
    /// process's address space owns (page tables, descriptor page, host
    /// stack, segments, heap pages). Recorded as bump-allocator
    /// watermark deltas at each allocation site, so the parallel
    /// migration engine can detach exactly this process's memory into a
    /// leg-private store and re-adopt it at join time.
    pub frame_ranges: Vec<(PhysAddr, u64)>,
}

impl TaskStruct {
    /// Creates a fresh runnable task.
    pub fn new(pid: u64, cr3: PhysAddr) -> Self {
        TaskStruct {
            pid,
            state: TaskState::Runnable,
            context: CpuContext::default(),
            cr3,
            fault_va: None,
            nxp_stack_ptr: VirtAddr::NULL,
            migration_flag: false,
            deadline: None,
            degraded: false,
            last_core: 0,
            ready_at: Picos::ZERO,
            exit_code: 0,
            host_brk: VirtAddr(flick_toolchain::layout::HOST_HEAP_BASE),
            nxp_brk: VirtAddr::NULL,
            frame_ranges: Vec::new(),
        }
    }

    /// Records a frame range delimited by bump-allocator watermarks
    /// taken before and after an allocation on this task's behalf.
    /// Adjacent ranges coalesce so `frame_ranges` stays short.
    pub fn record_frames(&mut self, from: PhysAddr, to: PhysAddr) {
        if to <= from {
            return;
        }
        let len = to - from;
        if let Some(last) = self.frame_ranges.last_mut() {
            if last.0.as_u64() + last.1 == from.as_u64() {
                last.1 += len;
                return;
            }
        }
        self.frame_ranges.push((from, len));
    }

    /// True when the thread has migrated before (its NxP stack exists).
    pub fn has_nxp_stack(&self) -> bool {
        !self.nxp_stack_ptr.is_null()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_task_has_no_nxp_stack() {
        let t = TaskStruct::new(7, PhysAddr(0x1000));
        assert!(!t.has_nxp_stack());
        assert_eq!(t.state, TaskState::Runnable);
        assert!(!t.migration_flag);
    }

    #[test]
    fn state_display() {
        assert_eq!(TaskState::MigrationWait.to_string(), "migration-wait");
    }
}
