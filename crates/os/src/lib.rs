#![warn(missing_docs)]
//! The simulated operating system: tasks, the kernel, the multi-ISA
//! loader, and the timing of kernel paths.
//!
//! The paper's headline software claim is that Flick needs **fewer than
//! 2 kLoC of changes** to stock Linux (§V, Table II discussion). This
//! crate models the *stock* parts — task management, scheduling
//! primitives, page-fault plumbing, the ELF loader — and exposes the
//! small hooks Flick's runtime (the `flick` crate) attaches to:
//!
//! * the page-fault handler's **return-address hijack** that redirects
//!   an NX instruction fault into the user-space migration handler
//!   ([`Kernel::redirect_to_handler`], §IV-B1);
//! * the `ioctl` path that gathers descriptor fields from the
//!   `task_struct` and suspends the thread ([`TaskStruct`] carries
//!   `fault_va`, `nxp_stack_ptr` and the **migration flag** used to
//!   trigger the DMA only *after* the context switch, §IV-D);
//! * the extended-`mprotect` loader that marks `.text.riscv` pages NX
//!   ([`Kernel::create_process`], §IV-C3).
//!
//! # Examples
//!
//! ```
//! use flick_os::{Kernel, OsTiming};
//! use flick_mem::PhysMem;
//!
//! let mut mem = PhysMem::new();
//! let mut kernel = Kernel::new(&mut mem);
//! assert_eq!(kernel.task_count(), 0);
//! ```

pub mod kernel;
pub mod sched;
pub mod task;
pub mod timing;

pub use kernel::{Kernel, KernelConfig, KernelError, LoadError};
pub use sched::RunQueues;
pub use task::{TaskState, TaskStruct};
pub use timing::{OsTiming, RetryPolicy};
