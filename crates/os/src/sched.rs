//! Per-core runqueues with task affinity and idle stealing.
//!
//! A topology-configured machine runs one scheduler instance per host
//! core. Each core has its own FIFO runqueue; a woken task is enqueued
//! on the core it last ran on (cache affinity), and a core whose own
//! queue drains steals the oldest task from the most-loaded sibling.
//! Both policies are fully deterministic — ties break toward the
//! lowest core index — which is what keeps N×M runs bit-reproducible.

use std::collections::VecDeque;

/// One FIFO runqueue per host core.
#[derive(Clone, Debug)]
pub struct RunQueues {
    queues: Vec<VecDeque<u64>>,
}

impl RunQueues {
    /// Empty runqueues for `cores` host cores.
    pub fn new(cores: usize) -> Self {
        assert!(cores >= 1, "a scheduler needs at least one core");
        RunQueues {
            queues: vec![VecDeque::new(); cores],
        }
    }

    /// Number of cores (queues).
    pub fn cores(&self) -> usize {
        self.queues.len()
    }

    /// Appends `pid` to `core`'s queue.
    ///
    /// Census-protecting: a pid already queued on *any* core is not
    /// queued again (returns `false`) — a duplicate runqueue entry
    /// would let one thread be scheduled twice, violating the
    /// exactly-once invariant failover relies on. Spurious wakeups and
    /// retried failover paths make double-enqueue reachable, so this is
    /// a guard, not an assert.
    pub fn enqueue(&mut self, core: usize, pid: u64) -> bool {
        if self.contains(pid) {
            return false;
        }
        self.queues[core].push_back(pid);
        true
    }

    /// True when `pid` is queued on any core.
    pub fn contains(&self, pid: u64) -> bool {
        self.queues.iter().any(|q| q.contains(&pid))
    }

    /// Pops the oldest task queued on `core`, if any.
    pub fn pop_local(&mut self, core: usize) -> Option<u64> {
        self.queues[core].pop_front()
    }

    /// Idle-steal: takes the oldest task from the most-loaded queue
    /// other than `thief`'s (ties toward the lowest core index).
    /// Returns `None` when every other queue is empty.
    pub fn steal(&mut self, thief: usize) -> Option<u64> {
        let victim = (0..self.queues.len())
            .filter(|&c| c != thief && !self.queues[c].is_empty())
            .max_by_key(|&c| (self.queues[c].len(), std::cmp::Reverse(c)))?;
        self.queues[victim].pop_front()
    }

    /// Number of tasks queued on `core`.
    pub fn len(&self, core: usize) -> usize {
        self.queues[core].len()
    }

    /// Total queued tasks across all cores.
    pub fn total(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }

    /// True when no core has queued work.
    pub fn is_empty(&self) -> bool {
        self.total() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_fifo_order() {
        let mut rq = RunQueues::new(2);
        rq.enqueue(0, 1);
        rq.enqueue(0, 2);
        assert_eq!(rq.pop_local(0), Some(1));
        assert_eq!(rq.pop_local(0), Some(2));
        assert_eq!(rq.pop_local(0), None);
    }

    #[test]
    fn steal_takes_oldest_from_most_loaded() {
        let mut rq = RunQueues::new(3);
        rq.enqueue(1, 10);
        rq.enqueue(2, 20);
        rq.enqueue(2, 21);
        // Core 0 is idle: it steals from core 2 (the longest queue),
        // taking the oldest task there.
        assert_eq!(rq.steal(0), Some(20));
        // Now the queues tie at one task each; the lowest index wins.
        assert_eq!(rq.steal(0), Some(10));
        assert_eq!(rq.steal(0), Some(21));
        assert_eq!(rq.steal(0), None);
    }

    #[test]
    fn duplicate_enqueue_is_dropped() {
        let mut rq = RunQueues::new(2);
        assert!(rq.enqueue(0, 7));
        // Same pid again — even on a different core — is refused.
        assert!(!rq.enqueue(0, 7));
        assert!(!rq.enqueue(1, 7));
        assert_eq!(rq.total(), 1);
        assert!(rq.contains(7));
        assert_eq!(rq.pop_local(0), Some(7));
        assert!(!rq.contains(7));
        // Once dequeued it may be queued again.
        assert!(rq.enqueue(1, 7));
    }

    #[test]
    fn steal_never_robs_own_queue() {
        let mut rq = RunQueues::new(2);
        rq.enqueue(0, 7);
        assert_eq!(rq.steal(0), None);
        assert_eq!(rq.total(), 1);
        assert!(!rq.is_empty());
        assert_eq!(rq.len(0), 1);
        assert_eq!(rq.cores(), 2);
    }
}
