//! The kernel: frame allocation, process loading, user-memory access,
//! heaps, NxP stack allocation, and the Flick redirect hook.

use crate::task::{TaskState, TaskStruct};
use crate::timing::OsTiming;
use flick_cpu::Core;
use flick_mem::{PhysAddr, PhysMem, SystemMap, VirtAddr, PAGE_SIZE};
use flick_paging::{flags, walk, AddressSpace, BumpFrameAlloc, MapError, PageSize};
use flick_toolchain::layout::NXP_STACK_SLOT;
use flick_toolchain::layout;
use flick_toolchain::{MultiIsaImage, Placement, SegmentKind};
use std::error::Error;
use std::fmt;

/// Task-table errors: the caller named a task the kernel does not have
/// (or one in the wrong state). These are reachable from any public API
/// that takes a pid, so they are typed errors, not panics — the machine
/// surfaces them as `RunError`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// No task with this pid exists.
    NoSuchTask(u64),
    /// A wake was requested for a task not in migration wait.
    SpuriousWake(u64),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::NoSuchTask(pid) => write!(f, "no task with pid {pid}"),
            KernelError::SpuriousWake(pid) => {
                write!(f, "task {pid} woken while not in migration wait")
            }
        }
    }
}

impl Error for KernelError {}

/// Errors while loading a multi-ISA executable or servicing a process's
/// memory requests. The resource-exhaustion and bad-pointer variants
/// are *guest-reachable*: a user program can trigger them with a large
/// enough allocation or a wild pointer, so they surface as errors
/// rather than simulator panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LoadError {
    /// Page-table manipulation failed.
    Map(MapError),
    /// An NxP-placed segment lies outside the NxP DRAM window.
    SegmentOutsideWindow(String),
    /// A host-placed segment overlaps a reserved region.
    BadSegment(String),
    /// A user-supplied pointer touched unmapped memory
    /// (`copy_from_user`/`copy_to_user` would have returned `-EFAULT`).
    UserFault(VirtAddr),
    /// The NxP SRAM stack window has no free slots left.
    NxpSramExhausted,
    /// The per-process NxP DRAM heap window is exhausted.
    NxpDramExhausted,
    /// The request named a task that does not exist.
    NoSuchTask(u64),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Map(e) => write!(f, "mapping failed: {e}"),
            LoadError::SegmentOutsideWindow(s) => {
                write!(f, "segment `{s}` outside the NxP window")
            }
            LoadError::BadSegment(s) => write!(f, "segment `{s}` not loadable"),
            LoadError::UserFault(va) => {
                write!(f, "user pointer {:#x} touches unmapped memory", va.as_u64())
            }
            LoadError::NxpSramExhausted => write!(f, "NxP stack SRAM exhausted"),
            LoadError::NxpDramExhausted => write!(f, "NxP DRAM heap exhausted"),
            LoadError::NoSuchTask(pid) => write!(f, "no task with pid {pid}"),
        }
    }
}

impl Error for LoadError {}

impl From<MapError> for LoadError {
    fn from(e: MapError) -> Self {
        LoadError::Map(e)
    }
}

impl From<KernelError> for LoadError {
    fn from(e: KernelError) -> Self {
        match e {
            KernelError::NoSuchTask(pid) | KernelError::SpuriousWake(pid) => {
                LoadError::NoSuchTask(pid)
            }
        }
    }
}

/// Kernel build-time options (ablation knobs for the bench harness).
#[derive(Clone, Debug)]
pub struct KernelConfig {
    /// Kernel path timing.
    pub timing: OsTiming,
    /// Page size used to map the 4 GiB NxP DRAM window. The paper uses
    /// 1 GiB pages so four TLB entries cover the window (§V); the
    /// hugepage ablation maps it with 2 MiB pages instead and watches
    /// the NxP TLB thrash.
    pub nxp_window_page: PageSize,
    /// Ablation: allocate NxP stacks from *host* DRAM instead of the
    /// on-chip SRAM, making every NxP stack access cross PCIe
    /// (questioning the §III-D local-stack design point).
    pub stacks_in_host_dram: bool,
    /// Bytes of host stack mapped per process, clamped to
    /// `[PAGE_SIZE, HOST_STACK_SIZE]` and rounded up to a page. The
    /// default maps the full 8 MiB window; multi-tenant serving
    /// scenarios shrink it (their request `main`s use a few KiB) so
    /// hundreds of processes fit the user-frame pool.
    pub host_stack_bytes: u64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            timing: OsTiming::paper_default(),
            nxp_window_page: PageSize::Size1G,
            stacks_in_host_dram: false,
            host_stack_bytes: layout::HOST_STACK_SIZE,
        }
    }
}

/// The simulated kernel.
///
/// Owns physical-frame allocators, the task table and the console; the
/// Flick machine (in the `flick` crate) drives it from trap events.
pub struct Kernel {
    map: SystemMap,
    config: KernelConfig,
    /// Frames for page tables and kernel structures: [64 MiB, 256 MiB).
    pt_frames: BumpFrameAlloc,
    /// Frames for user pages: [256 MiB, 2 GiB).
    user_frames: BumpFrameAlloc,
    /// Next NxP SRAM stack slot.
    next_stack_slot: u64,
    tasks: Vec<TaskStruct>,
    next_pid: u64,
    console: Vec<String>,
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("tasks", &self.tasks.len())
            .finish()
    }
}

impl Kernel {
    /// Boots a kernel over the default system map.
    pub fn new(_mem: &mut PhysMem) -> Self {
        Kernel::with_config(SystemMap::paper_default(), KernelConfig::default())
    }

    /// Boots with an explicit map and timing model.
    pub fn with_map(map: SystemMap, timing: OsTiming) -> Self {
        Kernel::with_config(
            map,
            KernelConfig {
                timing,
                ..KernelConfig::default()
            },
        )
    }

    /// Boots with full configuration (ablation knobs included).
    pub fn with_config(map: SystemMap, config: KernelConfig) -> Self {
        Kernel {
            map,
            config,
            pt_frames: BumpFrameAlloc::new(PhysAddr(64 << 20), PhysAddr(256 << 20)),
            user_frames: BumpFrameAlloc::new(PhysAddr(256 << 20), PhysAddr(2 << 30)),
            next_stack_slot: 0,
            tasks: Vec::new(),
            next_pid: 1,
            console: Vec::new(),
        }
    }

    /// Kernel path timing.
    pub fn timing(&self) -> &OsTiming {
        &self.config.timing
    }

    /// The system memory map.
    pub fn map(&self) -> &SystemMap {
        &self.map
    }

    /// Number of tasks ever created.
    pub fn task_count(&self) -> usize {
        self.tasks.len()
    }

    /// All tasks in creation order — the fleet-level census view used
    /// to audit the exactly-once invariant (every spawned thread is
    /// live in exactly one state or has exited).
    pub fn tasks(&self) -> impl Iterator<Item = &TaskStruct> {
        self.tasks.iter()
    }

    /// Looks up a task.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] if `pid` does not exist — reachable
    /// from any caller-supplied pid, so a typed error, not a panic.
    pub fn task(&self, pid: u64) -> Result<&TaskStruct, KernelError> {
        self.tasks
            .iter()
            .find(|t| t.pid == pid)
            .ok_or(KernelError::NoSuchTask(pid))
    }

    /// Mutable task lookup.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] if `pid` does not exist.
    pub fn task_mut(&mut self, pid: u64) -> Result<&mut TaskStruct, KernelError> {
        self.tasks
            .iter_mut()
            .find(|t| t.pid == pid)
            .ok_or(KernelError::NoSuchTask(pid))
    }

    /// Console lines printed by user programs.
    pub fn console(&self) -> &[String] {
        &self.console
    }

    /// Appends a console line.
    pub fn console_push(&mut self, line: String) {
        self.console.push(line);
    }

    /// Loads a multi-ISA image, creating the process address space per
    /// §III-D / §IV-C3:
    ///
    /// * host-placed segments get fresh host-DRAM frames;
    /// * `.text.riscv` pages are marked **NX via the extended
    ///   `mprotect`** after mapping;
    /// * NxP-placed segments are copied straight into NxP DRAM through
    ///   BAR0, covered by four 1 GiB huge-page mappings (the four-TLB-
    ///   entries trick of §V);
    /// * the SRAM stack window and descriptor pages are mapped.
    ///
    /// Returns the new PID.
    ///
    /// # Errors
    ///
    /// Returns [`LoadError`] for malformed images.
    pub fn create_process(
        &mut self,
        mem: &mut PhysMem,
        image: &MultiIsaImage,
    ) -> Result<u64, LoadError> {
        // Watermarks taken before any allocation: every frame the two
        // bump allocators hand out below belongs to the new process, so
        // the deltas are exactly its frame ranges (see
        // `TaskStruct::frame_ranges`).
        let pt_mark = self.pt_frames.watermark();
        let user_mark = self.user_frames.watermark();
        let mut aspace = AddressSpace::new(mem, &mut self.pt_frames);

        // 1. NxP DRAM window: four 1 GiB pages by default (the §V
        //    four-TLB-entry trick), or smaller pages under ablation.
        let bar0 = self.map.nxp_dram_host_base();
        let page = self.config.nxp_window_page;
        let n_pages = layout::NXP_WINDOW_SIZE / page.bytes();
        for i in 0..n_pages {
            aspace.map(
                mem,
                &mut self.pt_frames,
                VirtAddr(layout::NXP_WINDOW_VA + i * page.bytes()),
                bar0 + i * page.bytes(),
                page,
                flags::PRESENT | flags::WRITABLE | flags::USER | flags::NX,
            )?;
        }

        // 2. NxP stack SRAM window (4 KiB pages so per-thread slots
        //    could be protected individually).
        aspace.map_range(
            mem,
            &mut self.pt_frames,
            VirtAddr(layout::NXP_STACK_VA),
            self.map.nxp_sram_host_base(),
            layout::NXP_STACK_SIZE,
            flags::PRESENT | flags::WRITABLE | flags::USER | flags::NX,
        )?;

        // 3. Host descriptor page.
        let desc_frame = self.user_frames.alloc_frame();
        mem.fill(desc_frame, PAGE_SIZE, 0);
        aspace.map(
            mem,
            &mut self.pt_frames,
            VirtAddr(layout::DESC_PAGE_VA),
            desc_frame,
            PageSize::Size4K,
            flags::PRESENT | flags::WRITABLE | flags::USER | flags::NX,
        )?;

        // 4. Host stack: only the configured top slice of the 8 MiB
        //    window is backed by frames (the stack grows down from
        //    HOST_STACK_TOP, so the mapped slice is the hot one).
        let stack_bytes = self
            .config
            .host_stack_bytes
            .clamp(PAGE_SIZE, layout::HOST_STACK_SIZE)
            .next_multiple_of(PAGE_SIZE);
        let stack_base = layout::HOST_STACK_TOP - stack_bytes;
        let stack_frames = self.user_frames.alloc_contiguous(stack_bytes / PAGE_SIZE);
        aspace.map_range(
            mem,
            &mut self.pt_frames,
            VirtAddr(stack_base),
            stack_frames,
            stack_bytes,
            flags::PRESENT | flags::WRITABLE | flags::USER | flags::NX,
        )?;

        // 5. Image segments.
        let mut nxp_brk = VirtAddr(layout::NXP_WINDOW_VA);
        for seg in &image.segments {
            match seg.placement {
                Placement::HostDram => {
                    let pages = seg.size.div_ceil(PAGE_SIZE);
                    let frames = self.user_frames.alloc_contiguous(pages);
                    mem.fill(frames, pages * PAGE_SIZE, 0);
                    mem.write_bytes(frames, &seg.bytes);
                    let fl = match seg.kind {
                        SegmentKind::Text(_) => flags::PRESENT | flags::USER,
                        SegmentKind::Data | SegmentKind::Bss => {
                            flags::PRESENT | flags::USER | flags::WRITABLE | flags::NX
                        }
                    };
                    aspace.map_range(
                        mem,
                        &mut self.pt_frames,
                        VirtAddr(seg.va),
                        frames,
                        pages * PAGE_SIZE,
                        fl,
                    )?;
                    if seg.is_nxp_text() {
                        // The extended mprotect() of §IV-C3: NX plus the
                        // text ISA's tag, so N-way fleets can tell whose
                        // accelerator code a page holds.
                        let isa = seg.text_isa().expect("nxp text segment has an ISA");
                        aspace.protect(
                            mem,
                            VirtAddr(seg.va),
                            seg.size,
                            flags::NX | flags::isa_tag_bits(isa.tag() + 1),
                            0,
                        )?;
                    }
                }
                Placement::NxpDram => {
                    if seg.va < layout::NXP_WINDOW_VA
                        || seg.va + seg.size > layout::NXP_WINDOW_VA + layout::NXP_WINDOW_SIZE
                    {
                        return Err(LoadError::SegmentOutsideWindow(seg.name.clone()));
                    }
                    let phys = bar0 + (seg.va - layout::NXP_WINDOW_VA);
                    mem.fill(phys, seg.size, 0);
                    mem.write_bytes(phys, &seg.bytes);
                    nxp_brk = nxp_brk.max(VirtAddr(seg.va + seg.size).page_align_up());
                }
            }
        }

        let pid = self.next_pid;
        self.next_pid += 1;
        let mut task = TaskStruct::new(pid, aspace.cr3());
        task.context.pc = VirtAddr(image.entry);
        task.context.regs[flick_isa::abi::SP.index()] = layout::HOST_STACK_TOP - 64;
        task.nxp_brk = if nxp_brk.as_u64() == layout::NXP_WINDOW_VA {
            VirtAddr(layout::NXP_WINDOW_VA)
        } else {
            nxp_brk
        };
        task.record_frames(pt_mark, self.pt_frames.watermark());
        task.record_frames(user_mark, self.user_frames.watermark());
        self.tasks.push(task);
        Ok(pid)
    }

    /// Spawns a task into an *existing* process: clones the prototype
    /// `task_struct` (same CR3, same heap cursors, same NxP stack slot)
    /// under a fresh pid, runnable at the image entry point. This is
    /// the serving scenario's cheap per-request spawn — the address
    /// space, page tables and staged data are loaded once per tenant,
    /// and each request reuses them. Callers must serialize tasks that
    /// share a prototype: the clone shares the host stack, descriptor
    /// page and NxP SRAM slot, so at most one may run at a time.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] if `proto_pid` does not exist.
    pub fn spawn_task(&mut self, proto_pid: u64) -> Result<u64, KernelError> {
        let mut t = self.task(proto_pid)?.clone();
        let pid = self.next_pid;
        self.next_pid += 1;
        t.pid = pid;
        t.state = TaskState::Runnable;
        t.fault_va = None;
        t.migration_flag = false;
        t.deadline = None;
        t.degraded = false;
        t.ready_at = flick_sim::Picos::ZERO;
        t.exit_code = 0;
        self.tasks.push(t);
        Ok(pid)
    }

    /// Removes a zombie task from the table. The task table is a
    /// linear-scan vector, so long-running serving loops reap finished
    /// request tasks to keep every `task(pid)` lookup O(live tasks)
    /// instead of O(all requests ever served). The process's memory is
    /// untouched — it belongs to the prototype task's address space.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] if `pid` does not exist.
    pub fn reap_task(&mut self, pid: u64) -> Result<(), KernelError> {
        let i = self
            .tasks
            .iter()
            .position(|t| t.pid == pid)
            .ok_or(KernelError::NoSuchTask(pid))?;
        self.tasks.remove(i);
        Ok(())
    }

    /// The Flick hook: after an NX instruction fault, save the faulting
    /// target in the `task_struct` and hijack the return so the thread
    /// resumes in the user-space migration handler with the original
    /// call's argument registers intact (§IV-B1).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] if `pid` does not exist.
    pub fn redirect_to_handler(
        &mut self,
        pid: u64,
        core: &mut Core,
        fault_va: VirtAddr,
        handler_va: VirtAddr,
    ) -> Result<(), KernelError> {
        let task = self.task_mut(pid)?;
        task.fault_va = Some(fault_va);
        core.set_pc(handler_va);
        Ok(())
    }

    /// Allocates this thread's NxP stack (an SRAM slot by default, a
    /// host-DRAM block under the stack ablation) and records the stack
    /// pointer in the `task_struct`.
    ///
    /// # Errors
    ///
    /// [`LoadError::NxpSramExhausted`] when no stack slots remain — a
    /// guest-reachable condition (spawn enough threads), so it is an
    /// error, not a panic.
    pub fn alloc_nxp_stack(&mut self, mem: &mut PhysMem, pid: u64) -> Result<VirtAddr, LoadError> {
        if self.config.stacks_in_host_dram {
            let base = self.alloc_host_heap(mem, pid, NXP_STACK_SLOT)?;
            let sp = VirtAddr(base.as_u64() + NXP_STACK_SLOT - 128);
            self.task_mut(pid)?.nxp_stack_ptr = sp;
            return Ok(sp);
        }
        // Keep the last page for the descriptor buffer.
        let usable = layout::NXP_STACK_SIZE - PAGE_SIZE;
        let slot = self.next_stack_slot;
        if (slot + 1) * NXP_STACK_SLOT > usable {
            return Err(LoadError::NxpSramExhausted);
        }
        self.next_stack_slot += 1;
        // Stack grows down from the top of the slot; keep a small
        // red zone below the top.
        let sp = VirtAddr(layout::NXP_STACK_VA + (slot + 1) * NXP_STACK_SLOT - 128);
        self.task_mut(pid)?.nxp_stack_ptr = sp;
        Ok(sp)
    }

    /// `brk`-style host-heap allocation: extends the mapping as needed
    /// and returns the block's VA (16-byte aligned).
    pub fn alloc_host_heap(
        &mut self,
        mem: &mut PhysMem,
        pid: u64,
        size: u64,
    ) -> Result<VirtAddr, LoadError> {
        let cr3 = self.task(pid)?.cr3;
        let brk = self.task(pid)?.host_brk;
        let pt_mark = self.pt_frames.watermark();
        let user_mark = self.user_frames.watermark();
        let base = VirtAddr((brk.as_u64() + 15) & !15);
        let new_brk = VirtAddr(base.as_u64() + size);
        // Map any pages in [page(old mapped end), page_end(new_brk)).
        let mut aspace = AddressSpace::from_cr3(cr3);
        let mut page = brk.page_align_up();
        // If brk is mid-page, that page is already mapped.
        while page < new_brk {
            let frame = self.user_frames.alloc_frame();
            mem.fill(frame, PAGE_SIZE, 0);
            aspace.map(
                mem,
                &mut self.pt_frames,
                page,
                frame,
                PageSize::Size4K,
                flags::PRESENT | flags::WRITABLE | flags::USER | flags::NX,
            )?;
            page += PAGE_SIZE;
        }
        let pt_now = self.pt_frames.watermark();
        let user_now = self.user_frames.watermark();
        let task = self.task_mut(pid)?;
        task.host_brk = new_brk;
        task.record_frames(pt_mark, pt_now);
        task.record_frames(user_mark, user_now);
        Ok(base)
    }

    /// NxP-DRAM heap allocation: a pure bump (the window is premapped),
    /// which is the "separate memory allocator for each core's local
    /// memory" of §III-D.
    ///
    /// # Errors
    ///
    /// [`LoadError::NxpDramExhausted`] when the bump pointer would
    /// leave the window — reachable from the guest's `nxp_malloc`.
    pub fn alloc_nxp_heap(&mut self, pid: u64, size: u64) -> Result<VirtAddr, LoadError> {
        let task = self.task_mut(pid)?;
        let (base, new_brk) = nxp_heap_bump(task.nxp_brk, size)?;
        task.nxp_brk = new_brk;
        Ok(base)
    }

    /// Reads user memory through the task's page tables (kernel-style
    /// `copy_from_user`; no simulated-time charge).
    ///
    /// # Errors
    ///
    /// [`LoadError::UserFault`] if any byte of the range is unmapped —
    /// the kernel's `-EFAULT`, reachable from any guest-supplied
    /// pointer (e.g. `flick_print_str` with a wild address).
    pub fn read_user(
        &self,
        mem: &PhysMem,
        pid: u64,
        va: VirtAddr,
        buf: &mut [u8],
    ) -> Result<(), LoadError> {
        let cr3 = self.task(pid)?.cr3;
        let mut off = 0usize;
        while off < buf.len() {
            let cur = VirtAddr(va.as_u64() + off as u64);
            let t = walk(|a| mem.read_u64(a), cr3, cur).map_err(|_| LoadError::UserFault(cur))?;
            let in_page = (t.page.bytes() - (cur.as_u64() & (t.page.bytes() - 1))) as usize;
            let n = in_page.min(buf.len() - off);
            mem.read_bytes(t.pa, &mut buf[off..off + n]);
            off += n;
        }
        Ok(())
    }

    /// Writes user memory through the task's page tables
    /// (`copy_to_user`).
    ///
    /// # Errors
    ///
    /// [`LoadError::UserFault`] if any byte of the range is unmapped.
    pub fn write_user(
        &self,
        mem: &mut PhysMem,
        pid: u64,
        va: VirtAddr,
        buf: &[u8],
    ) -> Result<(), LoadError> {
        let cr3 = self.task(pid)?.cr3;
        let mut off = 0usize;
        while off < buf.len() {
            let cur = VirtAddr(va.as_u64() + off as u64);
            let t = walk(|a| mem.read_u64(a), cr3, cur).map_err(|_| LoadError::UserFault(cur))?;
            let in_page = (t.page.bytes() - (cur.as_u64() & (t.page.bytes() - 1))) as usize;
            let n = in_page.min(buf.len() - off);
            mem.write_bytes(t.pa, &buf[off..off + n]);
            off += n;
        }
        Ok(())
    }

    /// Transitions a task into the suspended migration-wait state,
    /// saving its context and setting the migration flag (§IV-D).
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] if `pid` does not exist.
    pub fn suspend_for_migration(&mut self, pid: u64, core: &Core) -> Result<(), KernelError> {
        let ctx = core.save_context();
        let task = self.task_mut(pid)?;
        task.context = ctx;
        task.state = TaskState::MigrationWait;
        task.migration_flag = true;
        Ok(())
    }

    /// Wakes a task after a descriptor arrived: `MigrationWait` →
    /// `Runnable`. The scheduler restores its context when it is next
    /// installed on a core.
    ///
    /// # Errors
    ///
    /// [`KernelError::SpuriousWake`] if the task is not in migration
    /// wait; interrupt-driven callers that can legitimately race a
    /// duplicate MSI should use [`Kernel::try_wake_from_migration`]
    /// instead. [`KernelError::NoSuchTask`] for an unknown pid.
    pub fn wake_from_migration(&mut self, pid: u64) -> Result<(), KernelError> {
        if self.try_wake_from_migration(pid)? {
            Ok(())
        } else {
            Err(KernelError::SpuriousWake(pid))
        }
    }

    /// Non-erroring wake: returns `false` (and changes nothing) if the
    /// task is not in `MigrationWait` — a *spurious* wakeup, which a
    /// duplicated MSI produces legitimately. Clears the watchdog
    /// deadline on a real wake.
    ///
    /// # Errors
    ///
    /// [`KernelError::NoSuchTask`] if `pid` does not exist.
    pub fn try_wake_from_migration(&mut self, pid: u64) -> Result<bool, KernelError> {
        let task = self.task_mut(pid)?;
        if task.state != TaskState::MigrationWait {
            return Ok(false);
        }
        task.state = TaskState::Runnable;
        task.migration_flag = false;
        task.deadline = None;
        Ok(true)
    }
}

/// The pure NxP-DRAM heap bump shared by [`Kernel::alloc_nxp_heap`] and
/// the parallel migration engine's detached leg (which carries a
/// process's `nxp_brk` cursor while the coordinator is out of reach):
/// 16-byte aligns the cursor, checks the window bound, and returns
/// `(block base, new cursor)`.
///
/// # Errors
///
/// [`LoadError::NxpDramExhausted`] when the bump would leave the
/// window — reachable from the guest's `nxp_malloc`.
pub fn nxp_heap_bump(brk: VirtAddr, size: u64) -> Result<(VirtAddr, VirtAddr), LoadError> {
    let base = VirtAddr((brk.as_u64() + 15) & !15);
    let end = match base.as_u64().checked_add(size) {
        Some(e) if e <= layout::NXP_WINDOW_VA + layout::NXP_WINDOW_SIZE => e,
        _ => return Err(LoadError::NxpDramExhausted),
    };
    Ok((base, VirtAddr(end)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use flick_cpu::{CoreConfig, MemEnv, StopReason};
    use flick_isa::{abi, FuncBuilder, TargetIsa};
    use flick_toolchain::{DataDef, ProgramBuilder};

    fn simple_image() -> MultiIsaImage {
        let mut p = ProgramBuilder::new("t");
        let mut m = FuncBuilder::new("main", TargetIsa::Host);
        m.li(abi::A0, 41);
        m.addi(abi::A0, abi::A0, 1);
        m.halt();
        p.func(m.finish());
        let mut w = FuncBuilder::new("nxp_fn", TargetIsa::Nxp);
        w.ret();
        p.func(w.finish());
        p.data(DataDef::new("hostvar", vec![7, 0, 0, 0, 0, 0, 0, 0]));
        p.data(
            DataDef::new("nxpvar", vec![9u8; 8])
                .placed(flick_toolchain::Placement::NxpDram),
        );
        p.build().unwrap()
    }

    #[test]
    fn loads_and_runs_to_halt() {
        let mut mem = PhysMem::new();
        let mut kernel = Kernel::new(&mut mem);
        let image = simple_image();
        let pid = kernel.create_process(&mut mem, &image).unwrap();
        let mut core = Core::new(CoreConfig::host());
        let env = MemEnv::paper_default();
        let task = kernel.task(pid).unwrap();
        core.set_cr3(task.cr3);
        core.restore_context(&task.context);
        assert_eq!(core.run(&mut mem, &env, 1000), StopReason::Halt);
        assert_eq!(core.reg(abi::A0), 42);
    }

    #[test]
    fn host_fetch_of_nxp_text_nx_faults() {
        let mut mem = PhysMem::new();
        let mut kernel = Kernel::new(&mut mem);
        let mut p = ProgramBuilder::new("t");
        let mut m = FuncBuilder::new("main", TargetIsa::Host);
        m.call("nxp_fn");
        m.halt();
        p.func(m.finish());
        let mut w = FuncBuilder::new("nxp_fn", TargetIsa::Nxp);
        w.ret();
        p.func(w.finish());
        let image = p.build().unwrap();
        let pid = kernel.create_process(&mut mem, &image).unwrap();
        let mut core = Core::new(CoreConfig::host());
        let env = MemEnv::paper_default();
        core.set_cr3(kernel.task(pid).unwrap().cr3);
        core.restore_context(&kernel.task(pid).unwrap().context);
        let stop = core.run(&mut mem, &env, 1000);
        let nxp_fn = image.find_symbol("nxp_fn").unwrap();
        assert_eq!(
            stop,
            StopReason::Fault(flick_cpu::Exception::InstFault {
                va: VirtAddr(nxp_fn),
                kind: flick_cpu::InstFaultKind::NxViolation,
            })
        );
    }

    #[test]
    fn data_in_both_regions_readable() {
        let mut mem = PhysMem::new();
        let mut kernel = Kernel::new(&mut mem);
        let image = simple_image();
        let pid = kernel.create_process(&mut mem, &image).unwrap();
        let hostvar = image.find_symbol("hostvar").unwrap();
        let nxpvar = image.find_symbol("nxpvar").unwrap();
        let mut buf = [0u8; 8];
        kernel.read_user(&mem, pid, VirtAddr(hostvar), &mut buf).unwrap();
        assert_eq!(buf[0], 7);
        kernel.read_user(&mem, pid, VirtAddr(nxpvar), &mut buf).unwrap();
        assert_eq!(buf, [9u8; 8]);
        assert!(nxpvar >= layout::NXP_WINDOW_VA);
    }

    #[test]
    fn nxp_data_lives_in_nxp_dram_phys() {
        let mut mem = PhysMem::new();
        let mut kernel = Kernel::new(&mut mem);
        let image = simple_image();
        kernel.create_process(&mut mem, &image).unwrap();
        let nxpvar = image.find_symbol("nxpvar").unwrap();
        let bar0 = kernel.map().nxp_dram_host_base();
        let phys = bar0 + (nxpvar - layout::NXP_WINDOW_VA);
        assert_eq!(mem.read_u8(phys), 9);
    }

    #[test]
    fn heap_allocations_are_disjoint_and_mapped() {
        let mut mem = PhysMem::new();
        let mut kernel = Kernel::new(&mut mem);
        let image = simple_image();
        let pid = kernel.create_process(&mut mem, &image).unwrap();
        let a = kernel.alloc_host_heap(&mut mem, pid, 100).unwrap();
        let b = kernel.alloc_host_heap(&mut mem, pid, 10_000).unwrap();
        assert!(b.as_u64() >= a.as_u64() + 100);
        kernel.write_user(&mut mem, pid, b, &[0xEE; 100]).unwrap();
        let mut buf = [0u8; 100];
        kernel.read_user(&mem, pid, b, &mut buf).unwrap();
        assert_eq!(buf, [0xEE; 100]);
    }

    #[test]
    fn nxp_heap_bumps_inside_window() {
        let mut mem = PhysMem::new();
        let mut kernel = Kernel::new(&mut mem);
        let image = simple_image();
        let pid = kernel.create_process(&mut mem, &image).unwrap();
        let a = kernel.alloc_nxp_heap(pid, 64).unwrap();
        let b = kernel.alloc_nxp_heap(pid, 64).unwrap();
        assert!(a.as_u64() >= layout::NXP_WINDOW_VA);
        assert!(b.as_u64() >= a.as_u64() + 64);
    }

    #[test]
    fn nxp_stacks_get_distinct_slots() {
        let mut mem = PhysMem::new();
        let mut kernel = Kernel::new(&mut mem);
        let image = simple_image();
        let p1 = kernel.create_process(&mut mem, &image).unwrap();
        let p2 = kernel.create_process(&mut mem, &image).unwrap();
        let s1 = kernel.alloc_nxp_stack(&mut mem, p1).unwrap();
        let s2 = kernel.alloc_nxp_stack(&mut mem, p2).unwrap();
        assert_ne!(s1, s2);
        assert!(kernel.task(p1).unwrap().has_nxp_stack());
        assert_eq!(
            (s2 - s1),
            NXP_STACK_SLOT,
            "slots are consecutive 64 KiB regions"
        );
    }

    #[test]
    fn suspend_and_wake_round_trip() {
        let mut mem = PhysMem::new();
        let mut kernel = Kernel::new(&mut mem);
        let image = simple_image();
        let pid = kernel.create_process(&mut mem, &image).unwrap();
        let mut core = Core::new(CoreConfig::host());
        core.set_reg(abi::A0, 55);
        core.set_pc(VirtAddr(0x1234));
        kernel.suspend_for_migration(pid, &core).unwrap();
        assert_eq!(kernel.task(pid).unwrap().state, TaskState::MigrationWait);
        assert!(kernel.task(pid).unwrap().migration_flag);
        kernel.wake_from_migration(pid).unwrap();
        assert_eq!(kernel.task(pid).unwrap().state, TaskState::Runnable);
        assert!(!kernel.task(pid).unwrap().migration_flag);
        // The saved context is what the scheduler will install.
        assert_eq!(kernel.task(pid).unwrap().context.regs[abi::A0.index()], 55);
        assert_eq!(kernel.task(pid).unwrap().context.pc, VirtAddr(0x1234));
    }

    #[test]
    fn redirect_saves_fault_va_and_hijacks_pc() {
        let mut mem = PhysMem::new();
        let mut kernel = Kernel::new(&mut mem);
        let image = simple_image();
        let pid = kernel.create_process(&mut mem, &image).unwrap();
        let mut core = Core::new(CoreConfig::host());
        kernel
            .redirect_to_handler(pid, &mut core, VirtAddr(0xAAA000), VirtAddr(0x40_1000))
            .unwrap();
        assert_eq!(kernel.task(pid).unwrap().fault_va, Some(VirtAddr(0xAAA000)));
        assert_eq!(core.pc(), VirtAddr(0x40_1000));
    }

    #[test]
    fn unknown_pid_is_a_typed_error_everywhere() {
        // Regression for the old `panic!("no task {pid}")`: every
        // pid-taking entry point must surface NoSuchTask instead.
        let mut mem = PhysMem::new();
        let mut kernel = Kernel::new(&mut mem);
        assert_eq!(kernel.task(42).err(), Some(KernelError::NoSuchTask(42)));
        assert_eq!(kernel.task_mut(42).err(), Some(KernelError::NoSuchTask(42)));
        let mut buf = [0u8; 4];
        assert_eq!(
            kernel.read_user(&mem, 42, VirtAddr(0x1000), &mut buf),
            Err(LoadError::NoSuchTask(42))
        );
        assert_eq!(
            kernel.write_user(&mut mem, 42, VirtAddr(0x1000), &buf),
            Err(LoadError::NoSuchTask(42))
        );
        assert_eq!(
            kernel.alloc_host_heap(&mut mem, 42, 64),
            Err(LoadError::NoSuchTask(42))
        );
        assert_eq!(kernel.alloc_nxp_heap(42, 64), Err(LoadError::NoSuchTask(42)));
        assert_eq!(
            kernel.alloc_nxp_stack(&mut mem, 42),
            Err(LoadError::NoSuchTask(42))
        );
        let core = Core::new(CoreConfig::host());
        assert_eq!(
            kernel.suspend_for_migration(42, &core),
            Err(KernelError::NoSuchTask(42))
        );
        assert_eq!(
            kernel.try_wake_from_migration(42),
            Err(KernelError::NoSuchTask(42))
        );
        assert_eq!(
            kernel.wake_from_migration(42),
            Err(KernelError::NoSuchTask(42))
        );
    }

    #[test]
    fn wake_of_running_task_is_spurious_not_fatal() {
        let mut mem = PhysMem::new();
        let mut kernel = Kernel::new(&mut mem);
        let pid = kernel.create_process(&mut mem, &simple_image()).unwrap();
        // Task is Runnable, not MigrationWait: try-wake reports false,
        // the strict wake reports the typed SpuriousWake error.
        assert_eq!(kernel.try_wake_from_migration(pid), Ok(false));
        assert_eq!(
            kernel.wake_from_migration(pid),
            Err(KernelError::SpuriousWake(pid))
        );
    }

    #[test]
    fn spawn_task_clones_proto_and_reap_removes() {
        let mut mem = PhysMem::new();
        let mut kernel = Kernel::new(&mut mem);
        let image = simple_image();
        let proto = kernel.create_process(&mut mem, &image).unwrap();
        kernel.alloc_nxp_stack(&mut mem, proto).unwrap();
        let spawned = kernel.spawn_task(proto).unwrap();
        assert_ne!(spawned, proto);
        let p = kernel.task(proto).unwrap().clone();
        let s = kernel.task(spawned).unwrap();
        // Same address space, heap cursors and NxP stack slot; fresh
        // runnable state at the entry point.
        assert_eq!(s.cr3, p.cr3);
        assert_eq!(s.nxp_brk, p.nxp_brk);
        assert_eq!(s.nxp_stack_ptr, p.nxp_stack_ptr);
        assert_eq!(s.context.pc, p.context.pc);
        assert_eq!(s.state, TaskState::Runnable);
        assert_eq!(s.exit_code, 0);
        // Reap removes exactly the spawned task.
        kernel.reap_task(spawned).unwrap();
        assert_eq!(
            kernel.task(spawned).err(),
            Some(KernelError::NoSuchTask(spawned))
        );
        assert!(kernel.task(proto).is_ok());
        // Unknown pids are typed errors.
        assert_eq!(kernel.spawn_task(999).err(), Some(KernelError::NoSuchTask(999)));
        assert_eq!(kernel.reap_task(999).err(), Some(KernelError::NoSuchTask(999)));
    }

    #[test]
    fn host_stack_bytes_maps_only_the_top_slice() {
        let mut mem = PhysMem::new();
        let mut kernel = Kernel::with_config(
            SystemMap::paper_default(),
            KernelConfig {
                host_stack_bytes: 64 * 1024,
                ..KernelConfig::default()
            },
        );
        let image = simple_image();
        let pid = kernel.create_process(&mut mem, &image).unwrap();
        // The top 64 KiB is mapped...
        let top = VirtAddr(layout::HOST_STACK_TOP - 64);
        kernel.write_user(&mut mem, pid, top, &[1u8; 8]).unwrap();
        let lo_mapped = VirtAddr(layout::HOST_STACK_TOP - 64 * 1024);
        kernel.write_user(&mut mem, pid, lo_mapped, &[2u8; 8]).unwrap();
        // ...and the bottom of the 8 MiB window is not.
        let unmapped = VirtAddr(layout::HOST_STACK_TOP - layout::HOST_STACK_SIZE);
        assert!(matches!(
            kernel.write_user(&mut mem, pid, unmapped, &[3u8; 8]),
            Err(LoadError::UserFault(_))
        ));
    }

    #[test]
    fn two_processes_have_separate_address_spaces() {
        let mut mem = PhysMem::new();
        let mut kernel = Kernel::new(&mut mem);
        let image = simple_image();
        let p1 = kernel.create_process(&mut mem, &image).unwrap();
        let p2 = kernel.create_process(&mut mem, &image).unwrap();
        assert_ne!(kernel.task(p1).unwrap().cr3, kernel.task(p2).unwrap().cr3);
        let hostvar = image.find_symbol("hostvar").unwrap();
        // Writing p1's copy must not affect p2's.
        kernel.write_user(&mut mem, p1, VirtAddr(hostvar), &[0xFF]).unwrap();
        let mut buf = [0u8; 1];
        kernel.read_user(&mem, p2, VirtAddr(hostvar), &mut buf).unwrap();
        assert_eq!(buf[0], 7);
    }
}
