//! The pointer-chasing microbenchmark of §V-B / Fig. 5.
//!
//! Variable-length linked lists whose nodes are 8-byte aligned and
//! randomly spread across the 4 GiB NxP-side storage. A kernel function
//! traverses one list per call; the Flick variant compiles it for the
//! NxP (one migration round trip per call), the baseline for the host
//! (PCIe access per node, no migration).

use flick::{Machine, RunError};
use flick_isa::{abi, FuncBuilder, MemSize, TargetIsa};
use flick_mem::VirtAddr;
use flick_sim::{Picos, TraceConfig, Xoshiro256};
use flick_toolchain::{DataDef, ProgramBuilder};

/// Where the traversal kernel runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaseMode {
    /// Kernel annotated for the NxP: Flick migrates per call.
    Flick,
    /// Kernel annotated for the host: direct PCIe traversal.
    HostDirect,
}

/// One pointer-chasing configuration.
#[derive(Clone, Debug)]
pub struct ChaseConfig {
    /// Nodes traversed per function call (the Fig. 5 x-axis, 4–1024).
    pub nodes_per_call: u64,
    /// Number of calls to average over.
    pub calls: u64,
    /// Host work inserted between calls (0 for Fig. 5a; 100 µs for
    /// Fig. 5b's infrequent-migration scenario).
    pub inter_call_work: Picos,
    /// Kernel placement.
    pub mode: ChaseMode,
    /// RNG seed for node placement.
    pub seed: u64,
}

impl ChaseConfig {
    /// Fig. 5a-style config (frequent migration).
    pub fn frequent(nodes_per_call: u64, mode: ChaseMode) -> Self {
        ChaseConfig {
            nodes_per_call,
            calls: 12,
            inter_call_work: Picos::ZERO,
            mode,
            seed: 0xF11C + nodes_per_call,
        }
    }

    /// Fig. 5b-style config (a migration every ~100 µs).
    pub fn infrequent(nodes_per_call: u64, mode: ChaseMode) -> Self {
        ChaseConfig {
            inter_call_work: Picos::from_micros(100),
            ..ChaseConfig::frequent(nodes_per_call, mode)
        }
    }
}

/// Result of one configuration.
#[derive(Clone, Copy, Debug)]
pub struct ChaseResult {
    /// Average time per call (traversal + migration; excludes the
    /// inter-call host work, which is subtracted out).
    pub per_call: Picos,
    /// Average time per node visited.
    pub per_node: Picos,
}

/// Builds the chase program: `main` times `calls` invocations of the
/// kernel and exits with the average nanoseconds per call (minus the
/// injected inter-call work).
fn chase_program(cfg: &ChaseConfig) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("pointer-chase");
    // Head pointer global, staged by the harness.
    p.data(DataDef::bss("chase_head", 8));

    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    let done = main.new_label();
    main.li_sym(abi::T0, "chase_head");
    main.ld(abi::S3, abi::T0, 0, MemSize::B8);
    // Warm-up call (first-migration stack setup for the Flick mode).
    main.mv(abi::A0, abi::S3);
    main.call("chase");
    main.li(abi::S1, cfg.calls as i64);
    main.li(abi::S4, 0); // accumulated sleep ns
    main.call("flick_clock_ns");
    main.mv(abi::S2, abi::A0);
    main.bind(lp);
    main.beq(abi::S1, abi::ZERO, done);
    main.mv(abi::A0, abi::S3);
    main.call("chase");
    if cfg.inter_call_work > Picos::ZERO {
        let ns = cfg.inter_call_work.as_nanos() as i64;
        main.li(abi::A0, ns);
        main.call("flick_sleep_ns");
        main.li(abi::T0, ns);
        main.add(abi::S4, abi::S4, abi::T0);
    }
    main.addi(abi::S1, abi::S1, -1);
    main.jmp(lp);
    main.bind(done);
    main.call("flick_clock_ns");
    main.sub(abi::A0, abi::A0, abi::S2);
    main.sub(abi::A0, abi::A0, abi::S4); // subtract injected work
    main.li(abi::T0, cfg.calls as i64);
    main.divu(abi::A0, abi::A0, abi::T0);
    main.call("flick_exit");
    p.func(main.finish());

    // The kernel: while (p) p = *p;
    let target = match cfg.mode {
        ChaseMode::Flick => TargetIsa::Nxp,
        ChaseMode::HostDirect => TargetIsa::Host,
    };
    let mut k = FuncBuilder::new("chase", target);
    let top = k.new_label();
    let out = k.new_label();
    k.bind(top);
    k.beq(abi::A0, abi::ZERO, out);
    k.ld(abi::A0, abi::A0, 0, MemSize::B8);
    k.jmp(top);
    k.bind(out);
    k.ret();
    p.func(k.finish());
    p
}

/// Stages a linked list of `n` nodes at random 8-byte-aligned addresses
/// inside the NxP DRAM window and returns the head VA.
fn stage_list(m: &mut Machine, pid: u64, n: u64, seed: u64) -> Result<VirtAddr, RunError> {
    // Reserve a big slab of NxP DRAM and scatter nodes inside it. The
    // paper spreads nodes across the whole 4 GiB storage; we scatter
    // across a 1 GiB slab, which equally defeats the caches and keeps
    // the same per-access latency.
    let slab_bytes: u64 = 1 << 30;
    let slab = m.stage_alloc_nxp(pid, slab_bytes)?;
    let mut rng = Xoshiro256::seeded(seed);
    let slots = slab_bytes / 8;
    // Distinct random slots via random probing.
    let mut offsets = Vec::with_capacity(n as usize);
    let mut used = std::collections::HashSet::with_capacity(n as usize);
    while offsets.len() < n as usize {
        let s = rng.gen_range(0, slots);
        if used.insert(s) {
            offsets.push(s);
        }
    }
    // Link node[i] -> node[i+1]; last -> 0.
    for i in 0..offsets.len() {
        let va = VirtAddr(slab.as_u64() + offsets[i] * 8);
        let next = if i + 1 < offsets.len() {
            slab.as_u64() + offsets[i + 1] * 8
        } else {
            0
        };
        m.stage_write(pid, va, &next.to_le_bytes())?;
    }
    Ok(VirtAddr(slab.as_u64() + offsets[0] * 8))
}

/// Runs one pointer-chasing configuration on `machine`.
///
/// Each call stages a fresh 1 GiB slab of NxP DRAM for the list, so a
/// single machine supports at most four runs before the 4 GiB window
/// is exhausted (use a fresh machine per configuration, as
/// [`run_chase`] does).
///
/// # Errors
///
/// Propagates program build/run failures, including NxP DRAM window
/// exhaustion from repeated staging.
pub fn run_chase_on(machine: &mut Machine, cfg: &ChaseConfig) -> Result<ChaseResult, RunError> {
    let mut p = chase_program(cfg);
    let pid = machine.load_program(&mut p)?;
    let head = stage_list(machine, pid, cfg.nodes_per_call, cfg.seed)?;
    // Point the `chase_head` global at the staged list.
    let head_sym = machine
        .symbol(pid, "chase_head")
        .expect("program defines chase_head");
    machine.stage_write(pid, head_sym, &head.as_u64().to_le_bytes())?;
    let out = machine.run(pid)?;
    let per_call = Picos::from_nanos(out.exit_code);
    Ok(ChaseResult {
        per_call,
        per_node: per_call / cfg.nodes_per_call.max(1),
    })
}

/// Runs a configuration on a fresh quiet machine.
///
/// # Errors
///
/// Propagates program build/run failures.
pub fn run_chase(cfg: &ChaseConfig) -> Result<ChaseResult, RunError> {
    let mut m = Machine::builder()
        .trace(TraceConfig {
            enabled: false,
            capacity: 0,
        })
        .build();
    run_chase_on(&mut m, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_direct_costs_pcie_per_node() {
        let r = run_chase(&ChaseConfig {
            calls: 4,
            ..ChaseConfig::frequent(64, ChaseMode::HostDirect)
        })
        .unwrap();
        // ~825 ns per node plus small loop overhead.
        assert!(r.per_node > Picos::from_nanos(800), "{}", r.per_node);
        assert!(r.per_node < Picos::from_nanos(1000), "{}", r.per_node);
    }

    #[test]
    fn flick_amortises_migration_with_long_lists() {
        let long = run_chase(&ChaseConfig {
            calls: 4,
            ..ChaseConfig::frequent(1024, ChaseMode::Flick)
        })
        .unwrap();
        let base = run_chase(&ChaseConfig {
            calls: 4,
            ..ChaseConfig::frequent(1024, ChaseMode::HostDirect)
        })
        .unwrap();
        let speedup = base.per_call.as_nanos_f64() / long.per_call.as_nanos_f64();
        // Fig. 5a plateau: ~2.6x. Allow a generous band here; the bench
        // harness checks the exact plateau.
        assert!(speedup > 1.8, "speedup {speedup:.2}");
        assert!(speedup < 3.5, "speedup {speedup:.2}");
    }

    #[test]
    fn short_lists_favour_baseline() {
        let flick = run_chase(&ChaseConfig {
            calls: 4,
            ..ChaseConfig::frequent(4, ChaseMode::Flick)
        })
        .unwrap();
        let base = run_chase(&ChaseConfig {
            calls: 4,
            ..ChaseConfig::frequent(4, ChaseMode::HostDirect)
        })
        .unwrap();
        assert!(
            flick.per_call > base.per_call * 2,
            "4-node migration must lose badly: {} vs {}",
            flick.per_call,
            base.per_call
        );
    }

    #[test]
    fn traversal_visits_all_nodes() {
        // The kernel's exit-code timing is garbage-in if the list is
        // mislinked; verify lengths by comparing per-call scaling.
        let short = run_chase(&ChaseConfig {
            calls: 2,
            ..ChaseConfig::frequent(32, ChaseMode::HostDirect)
        })
        .unwrap();
        let long = run_chase(&ChaseConfig {
            calls: 2,
            ..ChaseConfig::frequent(256, ChaseMode::HostDirect)
        })
        .unwrap();
        let ratio = long.per_call.as_nanos_f64() / short.per_call.as_nanos_f64();
        assert!((6.0..10.0).contains(&ratio), "8x nodes → ~8x time, got {ratio:.2}");
    }
}
