#![warn(missing_docs)]
//! The paper's workloads: the null-call microbenchmark (Table III),
//! pointer chasing (Fig. 5), and BFS over synthetic social graphs
//! (Table IV), plus the accounted-mode engine for datasets too large to
//! interpret instruction-by-instruction.
//!
//! Each workload comes as *one logical program* whose kernel function
//! is annotated for the host or the NxP — the baseline "host directly
//! traverses over PCIe" and the Flick variant differ **only** in that
//! annotation, exactly the programming model §III sells.

pub mod accounted;
pub mod bfs;
pub mod chase;
pub mod graph;
pub mod kvscan;
pub mod nullcall;
pub mod serving;

pub use bfs::{BfsConfig, BfsResult};
pub use kvscan::{run_kvscan, KvConfig, KvResult};
pub use chase::{ChaseConfig, ChaseResult};
pub use graph::{Dataset, Graph};
pub use nullcall::{measure_null_call, NullCallReport};
pub use serving::{
    gen_requests, run_serving_scenario, summarize, ArrivalModel, RequestMix, ServingScenario,
    ServingSummary,
};
