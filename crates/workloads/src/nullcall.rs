//! The null-call microbenchmark of §V-A / Table III.
//!
//! "We created a microbenchmark where the host calls a function on the
//! NxP that immediately returns. The microbenchmark calls this function
//! 10,000 times, and we measure the average round-trip overhead."
//! The NxP→host direction is measured by letting the NxP function call
//! an empty host function and subtracting the host→NxP overhead.

use flick::Machine;
use flick_isa::{abi, FuncBuilder, TargetIsa};
use flick_sim::trace::Side;
use flick_sim::{Event, Picos, TraceConfig};
use flick_toolchain::ProgramBuilder;

/// Table III, reproduced.
#[derive(Clone, Copy, Debug)]
pub struct NullCallReport {
    /// Average Host→NxP→Host round trip.
    pub host_nxp_host: Picos,
    /// Average NxP→Host→NxP round trip (subtraction method).
    pub nxp_host_nxp: Picos,
    /// The host page-fault share of the trip (kernel-path constant the
    /// paper measures at 0.7 µs).
    pub page_fault_share: Picos,
    /// Iterations used.
    pub iterations: u64,
}

fn quiet_machine() -> Machine {
    Machine::builder()
        .trace(TraceConfig {
            enabled: false,
            capacity: 0,
        })
        .build()
}

/// Builds the benchmark program.
///
/// `nested`: when false, `main` calls an empty NxP function in a loop
/// (Host→NxP→Host). When true, the NxP function itself calls an empty
/// host function (adding one NxP→Host→NxP trip per iteration).
///
/// The program self-times with `flick_clock_ns` and exits with the
/// *average nanoseconds per iteration*, mirroring the paper's
/// measurement methodology.
/// # Panics
///
/// Panics if `iterations` is zero (the guest program would divide by
/// zero when averaging).
pub fn null_call_program(iterations: u64, nested: bool) -> ProgramBuilder {
    assert!(iterations > 0, "null-call benchmark needs at least one iteration");
    let mut p = ProgramBuilder::new(if nested { "nullcall-nested" } else { "nullcall" });

    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let lp = main.new_label();
    let done = main.new_label();
    // Warm-up call: pays the one-time NxP stack allocation so the
    // steady-state average matches the paper's amortised 10k loop.
    main.call("nxp_null");
    main.li(abi::S1, iterations as i64);
    main.call("flick_clock_ns");
    main.mv(abi::S2, abi::A0);
    main.bind(lp);
    main.beq(abi::S1, abi::ZERO, done);
    main.call("nxp_null");
    main.addi(abi::S1, abi::S1, -1);
    main.jmp(lp);
    main.bind(done);
    main.call("flick_clock_ns");
    main.sub(abi::A0, abi::A0, abi::S2);
    main.li(abi::T0, iterations as i64);
    main.divu(abi::A0, abi::A0, abi::T0);
    main.call("flick_exit");
    p.func(main.finish());

    let mut nxp = FuncBuilder::new("nxp_null", TargetIsa::Nxp);
    if nested {
        nxp.prologue(16, &[]);
        nxp.call("host_null");
        nxp.epilogue(16, &[]);
    } else {
        nxp.ret();
    }
    p.func(nxp.finish());

    if nested {
        let mut h = FuncBuilder::new("host_null", TargetIsa::Host);
        h.ret();
        p.func(h.finish());
    }
    p
}

/// Runs one configuration and returns the measured average per
/// iteration.
///
/// # Panics
///
/// Panics if the benchmark program fails to build or run.
pub fn run_null_call(iterations: u64, nested: bool) -> Picos {
    let mut m = quiet_machine();
    let mut p = null_call_program(iterations, nested);
    let pid = m.load_program(&mut p).expect("benchmark program loads");
    let out = m.run(pid).expect("benchmark program runs");
    Picos::from_nanos(out.exit_code)
}

/// Reproduces Table III: measures both directions with the paper's
/// subtraction methodology.
pub fn measure_null_call(iterations: u64) -> NullCallReport {
    let hnh = run_null_call(iterations, false);
    let total_nested = run_null_call(iterations, true);
    NullCallReport {
        host_nxp_host: hnh,
        nxp_host_nxp: total_nested.saturating_sub(hnh),
        page_fault_share: flick_os::OsTiming::paper_default().page_fault_path,
        iterations,
    }
}

/// One phase of a round trip, from the event trace.
#[derive(Clone, Debug)]
pub struct Phase {
    /// Human-readable phase name.
    pub name: &'static str,
    /// Duration of the phase.
    pub duration: Picos,
}

/// Decomposes a single steady-state Host→NxP→Host round trip into its
/// phases using the machine's event trace — the reproduction's version
/// of the paper's "the host side page fault only incurs 0.7µs of the
/// total migration overhead" analysis (§V-A).
///
/// # Panics
///
/// Panics if the trace does not contain a complete round trip.
pub fn decompose_round_trip() -> Vec<Phase> {
    let mut m = Machine::paper_default();
    // Two calls: analyse the second (steady state — no stack setup).
    let mut p = ProgramBuilder::new("decompose");
    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    main.call("nxp_null");
    main.call("nxp_null");
    main.li(abi::A0, 0);
    main.call("flick_exit");
    p.func(main.finish());
    let mut f = FuncBuilder::new("nxp_null", TargetIsa::Nxp);
    f.ret();
    p.func(f.finish());
    let pid = m.load_program(&mut p).expect("loads");
    m.run(pid).expect("runs");

    // Timestamps of the second round trip's events.
    let mut faults = Vec::new();
    let mut suspends = Vec::new();
    let mut h_sends = Vec::new();
    let mut n_recvs = Vec::new();
    let mut n_sends = Vec::new();
    let mut h_recvs = Vec::new();
    let mut wakes = Vec::new();
    for (t, e) in m.trace().events() {
        match e {
            Event::NxFault { side: Side::Host, .. } => faults.push(*t),
            Event::ThreadSuspended { .. } => suspends.push(*t),
            Event::DescriptorSent { from: Side::Host, .. } => h_sends.push(*t),
            Event::DescriptorReceived { to: Side::Nxp, .. } => n_recvs.push(*t),
            Event::DescriptorSent { from: Side::Nxp, .. } => n_sends.push(*t),
            Event::DescriptorReceived { to: Side::Host, .. } => h_recvs.push(*t),
            Event::ThreadWoken { .. } => wakes.push(*t),
            _ => {}
        }
    }
    let i = 1; // second round trip
    let fault = faults[i];
    debug_assert!(suspends[i] <= h_sends[i]);
    let h_send = h_sends[i];
    let n_recv = n_recvs[i];
    let n_send = n_sends[i];
    let h_recv = h_recvs[i];
    let wake = wakes[i];
    let t = flick_os::OsTiming::paper_default();
    vec![
        Phase {
            name: "NX page fault + handler redirect",
            duration: t.page_fault_path,
        },
        Phase {
            name: "handler + ioctl (desc prep, suspend, ctx switch)",
            duration: h_send - fault - t.page_fault_path,
        },
        Phase {
            name: "doorbell + DMA burst + NxP poll",
            duration: n_recv - h_send,
        },
        Phase {
            name: "NxP dispatch, ctx switch, call, desc build",
            duration: n_send - n_recv,
        },
        Phase {
            name: "DMA to host + MSI + IRQ entry",
            duration: h_recv - n_send,
        },
        Phase {
            name: "desc copy + thread wakeup + schedule",
            duration: wake - h_recv,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_in_paper_ballpark() {
        // Table III: 18.3 µs — we require the same order of magnitude
        // (±35%); exact calibration is checked by the bench harness.
        let hnh = run_null_call(64, false);
        let lo = Picos::from_nanos(11_900);
        let hi = Picos::from_nanos(24_700);
        assert!(hnh > lo && hnh < hi, "H-N-H = {hnh}");
    }

    #[test]
    fn nested_direction_cheaper_than_outer() {
        // Table III: NxP-Host-NxP (16.9 µs) < Host-NxP-Host (18.3 µs):
        // no host NX fault or first-migration check on that leg.
        let report = measure_null_call(64);
        assert!(
            report.nxp_host_nxp < report.host_nxp_host,
            "N-H-N {} should be below H-N-H {}",
            report.nxp_host_nxp,
            report.host_nxp_host
        );
        assert!(report.nxp_host_nxp > Picos::from_micros(8));
    }

    #[test]
    fn page_fault_share_is_small_fraction() {
        let report = measure_null_call(32);
        let share = report.page_fault_share.as_nanos_f64()
            / report.host_nxp_host.as_nanos_f64();
        assert!(share < 0.1, "page fault should be <10% of the trip");
    }

    #[test]
    fn decomposition_sums_to_round_trip() {
        let phases = decompose_round_trip();
        let total: Picos = phases.iter().map(|p| p.duration).sum();
        let measured = run_null_call(256, false);
        let ratio = total.as_nanos_f64() / measured.as_nanos_f64();
        assert!(
            (0.9..1.1).contains(&ratio),
            "phases sum to {total}, measured trip {measured}"
        );
        // The fault is a small share and the wakeup dominates — the
        // paper's qualitative finding.
        assert_eq!(phases[0].duration, Picos::from_nanos(700));
        let wakeup = phases.last().unwrap().duration;
        assert!(wakeup > total / 3, "wakeup {wakeup} of {total}");
    }

    #[test]
    fn average_stable_across_iteration_counts() {
        let a = run_null_call(32, false);
        let b = run_null_call(128, false);
        let ratio = a.as_nanos_f64() / b.as_nanos_f64();
        assert!((0.9..1.1).contains(&ratio), "{a} vs {b}");
    }
}
