//! Near-storage key-value scan — the intro's NVMe motivation as a
//! workload.
//!
//! §II-D: "when running graph workloads where the graph is stored in
//! NVMe, only the graph traversal function should run on the cores
//! close to the NVMe storage. The rest of the program, including the
//! operations after the desired nodes have been found, should still
//! run on the host". This workload is the key-value version: records
//! live in NxP-side storage; a scan function filters them by key range
//! and calls a host function **per match** (the "rest of the program").
//!
//! Selectivity is the crossover knob the paper's BFS table only probes
//! at three points: at low selectivity the NxP-side scan touches
//! millions of records locally and migrates rarely (Flick wins big);
//! at high selectivity every record triggers a migration and the
//! baseline wins.

use flick::{Machine, RunError};
use flick_isa::{abi, FuncBuilder, MemSize, TargetIsa};
use flick_sim::{Picos, TraceConfig, Xoshiro256};
use flick_toolchain::{DataDef, ProgramBuilder};

/// Bytes per record: key (8) + value (8) + payload (16).
pub const RECORD_BYTES: u64 = 32;

/// Scan placement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KvMode {
    /// Scan on the NxP; per-match host callback migrates.
    Flick,
    /// Scan on the host over PCIe; callback is local.
    HostDirect,
}

/// One scan configuration.
#[derive(Clone, Debug)]
pub struct KvConfig {
    /// Number of records in the store.
    pub records: u64,
    /// Fraction of records whose key falls in the queried range,
    /// in parts per million.
    pub selectivity_ppm: u64,
    /// Placement.
    pub mode: KvMode,
    /// Data layout seed.
    pub seed: u64,
}

/// Scan result.
#[derive(Clone, Copy, Debug)]
pub struct KvResult {
    /// Simulated time for the scan.
    pub scan_time: Picos,
    /// Matching records found.
    pub matches: u64,
    /// Migrations caused by match callbacks.
    pub match_migrations: u64,
}

/// Builds the scan program.
///
/// `scan(base, n, lo, hi)`: for each record, load the key; if
/// `lo <= key < hi`, load the value and call `process_match(key, value)`
/// on the host. Returns the match count.
fn kv_program(cfg: &KvConfig) -> ProgramBuilder {
    let mut p = ProgramBuilder::new("kvscan");
    for g in ["kv_base", "kv_n", "kv_lo", "kv_hi", "kv_matches"] {
        p.data(DataDef::bss(g, 8));
    }

    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    for (reg, sym) in [
        (abi::A0, "kv_base"),
        (abi::A1, "kv_n"),
        (abi::A2, "kv_lo"),
        (abi::A3, "kv_hi"),
    ] {
        main.li_sym(abi::T0, sym);
        main.ld(reg, abi::T0, 0, MemSize::B8);
    }
    main.call("flick_clock_ns");
    main.mv(abi::S4, abi::A0);
    // reload args (clock_ns clobbered a0)
    for (reg, sym) in [
        (abi::A0, "kv_base"),
        (abi::A1, "kv_n"),
        (abi::A2, "kv_lo"),
        (abi::A3, "kv_hi"),
    ] {
        main.li_sym(abi::T0, sym);
        main.ld(reg, abi::T0, 0, MemSize::B8);
    }
    main.call("scan");
    main.li_sym(abi::T0, "kv_matches");
    main.st(abi::A0, abi::T0, 0, MemSize::B8);
    main.call("flick_clock_ns");
    main.sub(abi::A0, abi::A0, abi::S4);
    main.call("flick_exit"); // exit code = scan nanoseconds
    p.func(main.finish());

    let target = match cfg.mode {
        KvMode::Flick => TargetIsa::Nxp,
        KvMode::HostDirect => TargetIsa::Host,
    };
    let saves = [abi::S0, abi::S1, abi::S2, abi::S3, abi::S5];
    let mut f = FuncBuilder::new("scan", target);
    let lp = f.new_label();
    let skip = f.new_label();
    let done = f.new_label();
    f.prologue(64, &saves);
    f.mv(abi::S0, abi::A0); // cursor
    f.mv(abi::S1, abi::A1); // remaining
    f.mv(abi::S2, abi::A2); // lo
    f.mv(abi::S3, abi::A3); // hi
    f.li(abi::S5, 0); // matches
    f.bind(lp);
    f.beq(abi::S1, abi::ZERO, done);
    f.ld(abi::T0, abi::S0, 0, MemSize::B8); // key
    f.bltu(abi::T0, abi::S2, skip);
    f.bgeu(abi::T0, abi::S3, skip);
    // match: load value, hand off to the host-side program logic
    f.ld(abi::A1, abi::S0, 8, MemSize::B8);
    f.mv(abi::A0, abi::T0);
    f.call("process_match");
    f.addi(abi::S5, abi::S5, 1);
    f.bind(skip);
    f.addi(abi::S0, abi::S0, RECORD_BYTES as i32);
    f.addi(abi::S1, abi::S1, -1);
    f.jmp(lp);
    f.bind(done);
    f.mv(abi::A0, abi::S5);
    f.epilogue(64, &saves);
    p.func(f.finish());

    // The host-side per-match task (dummy, like Table IV's callback).
    let mut task = FuncBuilder::new("process_match", TargetIsa::Host);
    task.xor(abi::A0, abi::A0, abi::A1);
    task.ret();
    p.func(task.finish());
    p
}

/// Stages `records` 32-byte records in NxP DRAM; keys are uniform in
/// `[0, 1_000_000)` so a range `[0, selectivity_ppm)` matches the
/// requested fraction in expectation.
fn stage(m: &mut Machine, pid: u64, cfg: &KvConfig) -> Result<(), RunError> {
    let base = m.stage_alloc_nxp(pid, cfg.records * RECORD_BYTES)?;
    let mut rng = Xoshiro256::seeded(cfg.seed);
    let mut bytes = Vec::with_capacity((cfg.records * RECORD_BYTES) as usize);
    for i in 0..cfg.records {
        let key = rng.gen_range(0, 1_000_000);
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&(i * 7).to_le_bytes()); // value
        bytes.extend_from_slice(&[0u8; 16]); // payload
    }
    m.stage_write(pid, base, &bytes)?;
    for (sym, val) in [
        ("kv_base", base.as_u64()),
        ("kv_n", cfg.records),
        ("kv_lo", 0),
        ("kv_hi", cfg.selectivity_ppm),
    ] {
        let va = m.symbol(pid, sym).expect("kv globals exist");
        m.stage_write(pid, va, &val.to_le_bytes())?;
    }
    Ok(())
}

/// Runs one scan configuration.
///
/// # Errors
///
/// Propagates program build/run failures.
pub fn run_kvscan(cfg: &KvConfig) -> Result<KvResult, RunError> {
    let mut m = Machine::builder()
        .trace(TraceConfig {
            enabled: false,
            capacity: 0,
        })
        .build();
    let mut p = kv_program(cfg);
    let pid = m.load_program(&mut p)?;
    stage(&mut m, pid, cfg)?;
    let out = m.run(pid)?;
    let mut matches = [0u8; 8];
    let sym = m.symbol(pid, "kv_matches").expect("kv_matches exists");
    m.stage_read(pid, sym, &mut matches)?;
    Ok(KvResult {
        scan_time: Picos::from_nanos(out.exit_code),
        matches: u64::from_le_bytes(matches),
        match_migrations: out.stats.get("migrations_nxp_to_host"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(selectivity_ppm: u64, mode: KvMode) -> KvConfig {
        KvConfig {
            records: 3_000,
            selectivity_ppm,
            mode,
            seed: 77,
        }
    }

    #[test]
    fn match_counts_agree_across_placements() {
        let f = run_kvscan(&cfg(50_000, KvMode::Flick)).unwrap();
        let h = run_kvscan(&cfg(50_000, KvMode::HostDirect)).unwrap();
        assert_eq!(f.matches, h.matches);
        // ~5% of 3000 = ~150; allow wide statistical slack.
        assert!((50..350).contains(&f.matches), "{}", f.matches);
    }

    #[test]
    fn flick_migrates_once_per_match() {
        let f = run_kvscan(&cfg(100_000, KvMode::Flick)).unwrap();
        assert_eq!(f.match_migrations, f.matches);
        let h = run_kvscan(&cfg(100_000, KvMode::HostDirect)).unwrap();
        assert_eq!(h.match_migrations, 0);
    }

    #[test]
    fn low_selectivity_favours_flick() {
        // 0.1% matches: the scan is pure near-data work.
        let f = run_kvscan(&cfg(1_000, KvMode::Flick)).unwrap();
        let h = run_kvscan(&cfg(1_000, KvMode::HostDirect)).unwrap();
        assert!(
            f.scan_time < h.scan_time,
            "flick {} vs host {}",
            f.scan_time,
            h.scan_time
        );
    }

    #[test]
    fn high_selectivity_favours_host() {
        // 30% matches: a migration per match swamps the local-read win.
        let f = run_kvscan(&cfg(300_000, KvMode::Flick)).unwrap();
        let h = run_kvscan(&cfg(300_000, KvMode::HostDirect)).unwrap();
        assert!(
            f.scan_time > h.scan_time,
            "flick {} vs host {}",
            f.scan_time,
            h.scan_time
        );
    }
}
