//! Synthetic social graphs standing in for the SNAP datasets.
//!
//! The paper evaluates BFS on three SNAP graphs (Table IV). The actual
//! downloads are unavailable offline, so we generate *directed R-MAT
//! graphs with the same vertex and edge counts* (Graph500's generator
//! family). R-MAT reproduces the heavy-tailed degree distribution and
//! poor locality that make graph traversal memory-bound — the
//! properties Table IV actually exercises; the concrete SNAP topology
//! is not load-bearing for the baseline-vs-Flick comparison.

use flick_sim::Xoshiro256;

/// A directed graph in CSR form.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Vertex count.
    pub v: u64,
    /// CSR row offsets, length `v + 1`.
    pub row_ptr: Vec<u64>,
    /// CSR column indices (out-neighbours), length = edge count.
    pub col: Vec<u32>,
}

impl Graph {
    /// Edge count.
    pub fn e(&self) -> u64 {
        self.col.len() as u64
    }

    /// Out-neighbours of `u`.
    pub fn neighbours(&self, u: u64) -> &[u32] {
        &self.col[self.row_ptr[u as usize] as usize..self.row_ptr[u as usize + 1] as usize]
    }

    /// Out-degree of `u`.
    pub fn degree(&self, u: u64) -> u64 {
        self.row_ptr[u as usize + 1] - self.row_ptr[u as usize]
    }

    /// A vertex with non-zero out-degree, preferring high degree (a
    /// sensible BFS root, as Graph500 requires non-isolated roots).
    pub fn pick_root(&self, seed: u64) -> u64 {
        let mut rng = Xoshiro256::seeded(seed);
        let mut best = 0u64;
        let mut best_deg = 0u64;
        for _ in 0..64 {
            let u = rng.gen_range(0, self.v);
            let d = self.degree(u);
            if d > best_deg {
                best = u;
                best_deg = d;
            }
        }
        best
    }

    /// Bytes of the CSR arrays as laid out in NxP storage
    /// (`row_ptr` as u64, `col` as u32).
    pub fn storage_bytes(&self) -> u64 {
        (self.row_ptr.len() as u64) * 8 + (self.col.len() as u64) * 4
    }
}

/// Generates a directed R-MAT graph with `v` vertices and `e` edges
/// (standard Graph500 parameters a=0.57 b=0.19 c=0.19 d=0.05).
///
/// Vertices are generated in a power-of-two space and folded into
/// `[0, v)`; self-loops are redirected rather than discarded so the
/// edge count is exact.
///
/// A small fraction of the edges (≤ a quarter, at most `7v/8`) forms a
/// directed backbone path through a random vertex permutation. Pure
/// directed R-MAT strands roughly half the vertices outside the giant
/// component, whereas the SNAP social graphs Table IV uses have giant
/// components covering most vertices — and the BFS experiment's cost
/// balance depends on how many vertices a traversal *discovers* (each
/// discovery is one migration in Flick mode). The backbone restores
/// SNAP-like reachability while R-MAT keeps the degree skew.
pub fn rmat(v: u64, e: u64, seed: u64) -> Graph {
    assert!(v >= 2, "need at least two vertices");
    let levels = 64 - (v - 1).leading_zeros();
    let mut rng = Xoshiro256::seeded(seed);
    let mut src = vec![0u32; e as usize];
    let mut dst = vec![0u32; e as usize];
    let backbone = (v - v / 8).min(e / 4) as usize;
    let mut perm: Vec<u32> = (0..v as u32).collect();
    rng.shuffle(&mut perm);
    for i in 0..backbone {
        src[i] = perm[i % perm.len()];
        dst[i] = perm[(i + 1) % perm.len()];
    }
    for i in backbone..e as usize {
        let (mut u, mut w) = (0u64, 0u64);
        for _ in 0..levels {
            u <<= 1;
            w <<= 1;
            let r = rng.gen_f64();
            // Quadrant probabilities a/b/c/d.
            if r < 0.57 {
                // top-left
            } else if r < 0.76 {
                w |= 1;
            } else if r < 0.95 {
                u |= 1;
            } else {
                u |= 1;
                w |= 1;
            }
        }
        let mut uu = u % v;
        let mut ww = w % v;
        if uu == ww {
            ww = (ww + 1) % v;
        }
        // Graph500 permutes vertex labels; a multiplicative hash keeps
        // the degree skew while decorrelating ids.
        uu = scramble(uu, v);
        ww = scramble(ww, v);
        src[i] = uu as u32;
        dst[i] = ww as u32;
    }

    // Counting sort into CSR.
    let mut row_ptr = vec![0u64; v as usize + 1];
    for &u in &src {
        row_ptr[u as usize + 1] += 1;
    }
    for i in 0..v as usize {
        row_ptr[i + 1] += row_ptr[i];
    }
    let mut cursor = row_ptr.clone();
    let mut col = vec![0u32; e as usize];
    for i in 0..e as usize {
        let u = src[i] as usize;
        col[cursor[u] as usize] = dst[i];
        cursor[u] += 1;
    }
    Graph { v, row_ptr, col }
}

fn scramble(x: u64, v: u64) -> u64 {
    // Splittable-hash style mix, folded back into range.
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) % v
}

/// The three Table IV datasets (synthetic stand-ins; see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dataset {
    /// soc-Epinions1: 76 k vertices, 509 k edges, 16.7 MB.
    Epinions1,
    /// soc-Pokec: 1 633 k vertices, 30 623 k edges, 1.0 GB.
    Pokec,
    /// soc-LiveJournal1: 4 848 k vertices, 68 994 k edges, 2.2 GB.
    LiveJournal1,
}

impl Dataset {
    /// All three, in Table IV order.
    pub fn all() -> [Dataset; 3] {
        [Dataset::Epinions1, Dataset::Pokec, Dataset::LiveJournal1]
    }

    /// Table label.
    pub fn name(self) -> &'static str {
        match self {
            Dataset::Epinions1 => "Epinions1",
            Dataset::Pokec => "Pokec",
            Dataset::LiveJournal1 => "LiveJournal1",
        }
    }

    /// Vertex count from Table IV.
    pub fn vertices(self) -> u64 {
        match self {
            Dataset::Epinions1 => 76_000,
            Dataset::Pokec => 1_633_000,
            Dataset::LiveJournal1 => 4_848_000,
        }
    }

    /// Edge count from Table IV.
    pub fn edges(self) -> u64 {
        match self {
            Dataset::Epinions1 => 509_000,
            Dataset::Pokec => 30_623_000,
            Dataset::LiveJournal1 => 68_994_000,
        }
    }

    /// Paper baseline time (seconds) — for the comparison table.
    pub fn paper_baseline_secs(self) -> f64 {
        match self {
            Dataset::Epinions1 => 1.8,
            Dataset::Pokec => 107.4,
            Dataset::LiveJournal1 => 240.5,
        }
    }

    /// Paper Flick time (seconds).
    pub fn paper_flick_secs(self) -> f64 {
        match self {
            Dataset::Epinions1 => 2.4,
            Dataset::Pokec => 90.3,
            Dataset::LiveJournal1 => 220.9,
        }
    }

    /// Generates the synthetic stand-in.
    pub fn make(self, seed: u64) -> Graph {
        rmat(self.vertices(), self.edges(), seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_counts() {
        let g = rmat(1000, 8000, 1);
        assert_eq!(g.v, 1000);
        assert_eq!(g.e(), 8000);
        assert_eq!(g.row_ptr.len(), 1001);
        assert_eq!(*g.row_ptr.last().unwrap(), 8000);
    }

    #[test]
    fn csr_is_consistent() {
        let g = rmat(500, 4000, 2);
        for u in 0..g.v {
            assert!(g.row_ptr[u as usize] <= g.row_ptr[u as usize + 1]);
            for &w in g.neighbours(u) {
                assert!((w as u64) < g.v);
            }
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        // R-MAT's point: a heavy tail. Max degree should far exceed the
        // mean.
        let g = rmat(10_000, 80_000, 3);
        let mean = g.e() as f64 / g.v as f64;
        let max = (0..g.v).map(|u| g.degree(u)).max().unwrap();
        assert!(
            (max as f64) > mean * 10.0,
            "max {max} vs mean {mean:.1} — not skewed enough"
        );
    }

    #[test]
    fn deterministic_by_seed() {
        let a = rmat(100, 500, 7);
        let b = rmat(100, 500, 7);
        assert_eq!(a.col, b.col);
        let c = rmat(100, 500, 8);
        assert_ne!(a.col, c.col);
    }

    #[test]
    fn root_has_outgoing_edges() {
        let g = rmat(1000, 10_000, 4);
        let root = g.pick_root(1);
        assert!(g.degree(root) > 0);
    }

    #[test]
    fn no_self_loops() {
        let g = rmat(200, 2000, 5);
        // Scrambling maps u!=w to distinct values except on rare hash
        // collisions folded by %v; tolerate a tiny number.
        let mut loops = 0;
        for u in 0..g.v {
            loops += g.neighbours(u).iter().filter(|&&w| w as u64 == u).count();
        }
        assert!(loops < 20, "{loops} self loops");
    }

    #[test]
    fn dataset_counts_match_table_iv() {
        assert_eq!(Dataset::Epinions1.vertices(), 76_000);
        assert_eq!(Dataset::Pokec.edges(), 30_623_000);
        assert_eq!(Dataset::LiveJournal1.edges(), 68_994_000);
    }
}
