//! The datacenter-serving scenario: an open-loop multi-tenant fleet
//! whose requests each execute a short cross-ISA call chain.
//!
//! The paper's microbenchmarks measure a migration in isolation; a
//! serving fleet asks the operational question instead — what do the
//! p99/p99.9 of *request* latency look like as offered load approaches
//! the migration path's saturation point? Each tenant is one loaded
//! process (its CR3, staged data set and NxP SRAM stack slot are set up
//! once); each request is a cheap task spawn into the tenant's address
//! space whose `main` dispatches on the request argument to one of
//! three legs from the paper's workload suite:
//!
//! * **nullcall** — the Table III round trip (rv64 NxP leg),
//! * **chase** — a short pointer chase through NxP DRAM (rv64),
//! * **kvscan** — a key-range count over NxP-resident records, run on
//!   the arm64 accelerator slots of a heterogeneous fleet.
//!
//! All three kernels are *read-only* in the NxP DRAM window and return
//! their result in `A0` (the request's exit code). That is a hard
//! requirement, not a style choice: the pipelined engine ships each
//! leg a private copy of the window and adopts it back at join, so
//! concurrent legs writing the shared window would make the adopted
//! bytes depend on join order. Read-only kernels keep the serving
//! timeline bit-identical for any worker-thread count.
//!
//! Arrivals come from a seeded open-loop generator — Poisson or a
//! 2-state MMPP (bursty) — so a load sweep replays bit-identically at
//! the same seed.

use flick::{Machine, NxpPlacement, RunError, ServingReport, ServingRequest, Topology};
use flick_isa::{abi, FuncBuilder, IsaId, MemSize, TargetIsa};
use flick_mem::VirtAddr;
use flick_sim::{Picos, TraceConfig, Xoshiro256};
use flick_toolchain::{DataDef, ProgramBuilder};

/// Nodes in the per-request pointer chase.
pub const CHASE_NODES: u64 = 64;
/// Bytes of the chase slab (nodes scattered inside it).
const CHASE_SLAB_BYTES: u64 = 64 << 10;
/// Records in the kv table (32 bytes each).
pub const KV_RECORDS: u64 = 256;
/// Bytes per kv record: key (8) + value (8) + payload (16).
const KV_RECORD_BYTES: u64 = 32;
/// Keys are uniform in `[0, KEY_SPACE)`.
const KEY_SPACE: u64 = 1_000_000;
/// The kv leg counts keys in `[0, KV_HI)` — ~10% selectivity.
const KV_HI: u64 = 100_000;

/// Request-kind arguments (the `A0` dispatch values).
pub mod kind {
    /// Null call: one rv64 round trip.
    pub const NULL: u64 = 0;
    /// Pointer chase: one rv64 leg over [`super::CHASE_NODES`] nodes.
    pub const CHASE: u64 = 1;
    /// Key-range count: one arm64 leg over [`super::KV_RECORDS`] records.
    pub const KV: u64 = 2;
}

/// Open-loop arrival process.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalModel {
    /// Memoryless arrivals at the offered rate.
    Poisson,
    /// 2-state Markov-modulated Poisson process: calm and burst phases
    /// with exponential dwell times, rates chosen so the long-run
    /// average stays at the offered rate while the burst phase runs
    /// `burst_factor`× hotter.
    Mmpp {
        /// Burst-phase rate multiplier (> 1).
        burst_factor: f64,
        /// Mean phase dwell time in microseconds.
        mean_dwell_us: f64,
    },
}

/// Request-kind mix in percent (must sum to 100).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RequestMix {
    /// Percent of null-call requests.
    pub null_pct: u64,
    /// Percent of pointer-chase requests.
    pub chase_pct: u64,
    /// Percent of kv-scan requests.
    pub kv_pct: u64,
}

impl Default for RequestMix {
    fn default() -> Self {
        RequestMix {
            null_pct: 40,
            chase_pct: 30,
            kv_pct: 30,
        }
    }
}

/// One serving-scenario configuration.
#[derive(Clone, Debug)]
pub struct ServingScenario {
    /// Tenant processes (each owns one NxP SRAM stack slot; ≤ 250).
    pub tenants: usize,
    /// Total requests in the open-loop schedule.
    pub requests: usize,
    /// Aggregate offered load in requests per simulated second.
    pub offered_rps: f64,
    /// Arrival process.
    pub arrivals: ArrivalModel,
    /// Request-kind mix.
    pub mix: RequestMix,
    /// Seed for arrivals, tenant draws and data layout.
    pub seed: u64,
    /// Fleet shape.
    pub topology: Topology,
    /// Per-slot NxP ISAs (slots past the end default to rv64).
    pub nxp_isas: Vec<IsaId>,
    /// OS worker threads for NxP leg execution.
    pub threads: usize,
    /// Placement policy for fresh host→NxP calls.
    pub placement: NxpPlacement,
    /// Preemption quantum in instructions.
    pub quantum: u64,
    /// Simulated-time ring-occupancy admission control
    /// (see `MachineBuilder::ring_occupancy_admission`).
    pub ring_admission: bool,
    /// Record migration spans and per-stage latency histograms.
    pub observability: bool,
    /// Record the full event trace (needed for the Perfetto timeline
    /// export; off for benches and tests, where it only costs memory).
    pub trace: bool,
}

impl Default for ServingScenario {
    fn default() -> Self {
        ServingScenario {
            tenants: 64,
            requests: 2_000,
            offered_rps: 40_000.0,
            arrivals: ArrivalModel::Poisson,
            mix: RequestMix::default(),
            seed: 0x5E21_1106,
            topology: Topology {
                host_cores: 2,
                nxp_cores: 4,
            },
            nxp_isas: vec![IsaId::Rv64, IsaId::Arm64, IsaId::Rv64, IsaId::Arm64],
            threads: 1,
            placement: NxpPlacement::RoundRobin,
            quantum: 50_000,
            ring_admission: true,
            observability: false,
            trace: false,
        }
    }
}

/// Headline numbers of one serving run.
#[derive(Clone, Copy, Debug)]
pub struct ServingSummary {
    /// Offered load the schedule was generated for.
    pub offered_rps: f64,
    /// Requests completed.
    pub completions: usize,
    /// Median end-to-end latency in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency in nanoseconds.
    pub p99_ns: u64,
    /// 99.9th-percentile latency in nanoseconds.
    pub p999_ns: u64,
    /// Completed requests per simulated second.
    pub goodput_rps: f64,
    /// Doorbell-level admission rejections over the whole run.
    pub admission_rejects: u64,
    /// Host→NxP call migrations over the whole run.
    pub migrations: u64,
    /// Calls that exhausted delivery and degraded to host emulation.
    pub degraded_calls: u64,
    /// Simulated time at the last completion, in milliseconds.
    pub sim_ms: f64,
}

/// Generates the seeded open-loop schedule for `cfg`: arrival instants
/// from the configured process, tenant and request-kind draws uniform /
/// by mix. Same seed → bit-identical schedule.
///
/// # Panics
///
/// Panics when the mix does not sum to 100 or the offered rate is not
/// positive.
pub fn gen_requests(cfg: &ServingScenario) -> Vec<ServingRequest> {
    assert!(
        cfg.mix.null_pct + cfg.mix.chase_pct + cfg.mix.kv_pct == 100,
        "request mix must sum to 100"
    );
    assert!(cfg.offered_rps > 0.0, "offered rate must be positive");
    let mut rng = Xoshiro256::seeded(cfg.seed);
    let mean_gap_ps = 1e12 / cfg.offered_rps;
    // MMPP phase state. Rates are scaled so the long-run mean matches
    // the offered rate with 50/50 expected phase occupancy.
    let mut burst_phase = false;
    let mut next_switch = f64::INFINITY;
    if let ArrivalModel::Mmpp { mean_dwell_us, .. } = cfg.arrivals {
        next_switch = -mean_dwell_us * 1e6 * (1.0 - rng.gen_f64()).ln();
    }
    let mut t = 0.0f64; // picoseconds
    let mut reqs = Vec::with_capacity(cfg.requests);
    for _ in 0..cfg.requests {
        let gap_mean = match cfg.arrivals {
            ArrivalModel::Poisson => mean_gap_ps,
            ArrivalModel::Mmpp { burst_factor, .. } => {
                if burst_phase {
                    mean_gap_ps * (1.0 + burst_factor) / (2.0 * burst_factor)
                } else {
                    mean_gap_ps * (1.0 + burst_factor) / 2.0
                }
            }
        };
        t += -gap_mean * (1.0 - rng.gen_f64()).ln();
        if let ArrivalModel::Mmpp { mean_dwell_us, .. } = cfg.arrivals {
            while t >= next_switch {
                burst_phase = !burst_phase;
                next_switch += -mean_dwell_us * 1e6 * (1.0 - rng.gen_f64()).ln();
            }
        }
        let tenant = rng.gen_range(0, cfg.tenants as u64) as usize;
        let draw = rng.gen_range(0, 100);
        let arg = if draw < cfg.mix.null_pct {
            kind::NULL
        } else if draw < cfg.mix.null_pct + cfg.mix.chase_pct {
            kind::CHASE
        } else {
            kind::KV
        };
        reqs.push(ServingRequest {
            tenant,
            arrival: Picos(t as u64),
            arg,
        });
    }
    reqs
}

/// Builds the tenant program: `main` (host) dispatches on the request
/// argument in `A0` to one of the three NxP legs. Every leg returns its
/// result in `A0`, which becomes the request's exit code — no leg
/// writes NxP DRAM (see the module docs for why that is load-bearing).
fn serving_program() -> ProgramBuilder {
    let mut p = ProgramBuilder::new("serving");
    for g in ["srv_head", "srv_kv_base", "srv_kv_n", "srv_kv_lo", "srv_kv_hi"] {
        p.data(DataDef::bss(g, 8));
    }

    let mut main = FuncBuilder::new("main", TargetIsa::Host);
    let do_chase = main.new_label();
    let do_kv = main.new_label();
    main.li(abi::T1, kind::CHASE as i64);
    main.beq(abi::A0, abi::T1, do_chase);
    main.li(abi::T1, kind::KV as i64);
    main.beq(abi::A0, abi::T1, do_kv);
    // Null call: one migration round trip, nothing else.
    main.li(abi::A0, 7);
    main.call("req_null");
    main.call("flick_exit"); // exit code 42
    main.bind(do_chase);
    main.li_sym(abi::T0, "srv_head");
    main.ld(abi::A0, abi::T0, 0, MemSize::B8);
    main.call("req_chase");
    main.call("flick_exit"); // exit code = nodes visited
    main.bind(do_kv);
    for (reg, sym) in [
        (abi::A0, "srv_kv_base"),
        (abi::A1, "srv_kv_n"),
        (abi::A2, "srv_kv_lo"),
        (abi::A3, "srv_kv_hi"),
    ] {
        main.li_sym(abi::T0, sym);
        main.ld(reg, abi::T0, 0, MemSize::B8);
    }
    main.call("req_kv");
    main.call("flick_exit"); // exit code = matches
    p.func(main.finish());

    // req_null(x) = x + 35, on the classic rv64 NxP.
    let mut null = FuncBuilder::new("req_null", TargetIsa::Nxp);
    null.addi(abi::A0, abi::A0, 35);
    null.ret();
    p.func(null.finish());

    // req_chase(head): while (p) { p = *p; n++ }  — rv64, leaf.
    let mut chase = FuncBuilder::new("req_chase", TargetIsa::Nxp);
    let top = chase.new_label();
    let out = chase.new_label();
    chase.li(abi::T1, 0);
    chase.bind(top);
    chase.beq(abi::A0, abi::ZERO, out);
    chase.ld(abi::A0, abi::A0, 0, MemSize::B8);
    chase.addi(abi::T1, abi::T1, 1);
    chase.jmp(top);
    chase.bind(out);
    chase.mv(abi::A0, abi::T1);
    chase.ret();
    p.func(chase.finish());

    // req_kv(base, n, lo, hi): count keys in [lo, hi) — arm64, leaf,
    // pure reads (no match store, unlike the closed-loop kvscan).
    let mut kv = FuncBuilder::new("req_kv", TargetIsa::Arm64);
    let lp = kv.new_label();
    let skip = kv.new_label();
    let done = kv.new_label();
    kv.li(abi::T1, 0);
    kv.bind(lp);
    kv.beq(abi::A1, abi::ZERO, done);
    kv.ld(abi::T0, abi::A0, 0, MemSize::B8);
    kv.bltu(abi::T0, abi::A2, skip);
    kv.bgeu(abi::T0, abi::A3, skip);
    kv.addi(abi::T1, abi::T1, 1);
    kv.bind(skip);
    kv.addi(abi::A0, abi::A0, KV_RECORD_BYTES as i32);
    kv.addi(abi::A1, abi::A1, -1);
    kv.jmp(lp);
    kv.bind(done);
    kv.mv(abi::A0, abi::T1);
    kv.ret();
    p.func(kv.finish());
    p
}

/// Stages the shared data set through tenant 0 and wires every
/// tenant's heap cursor and globals to it.
///
/// The NxP DRAM window is physically shared across processes at
/// identical offsets, so allocating the same sizes in the same order
/// gives every tenant the same virtual addresses over the same bytes —
/// tenant 0 writes them once, everyone reads them. Advancing each
/// tenant's heap cursor over the data set also keeps it inside the
/// resident window slice the pipelined engine ships to legs.
fn stage_dataset(m: &mut Machine, tenants: &[u64], seed: u64) -> Result<(), RunError> {
    let mut slab = VirtAddr(0);
    let mut table = VirtAddr(0);
    for (i, &pid) in tenants.iter().enumerate() {
        let s = m.stage_alloc_nxp(pid, CHASE_SLAB_BYTES)?;
        let t = m.stage_alloc_nxp(pid, KV_RECORDS * KV_RECORD_BYTES)?;
        if i == 0 {
            slab = s;
            table = t;
        } else if s != slab || t != table {
            return Err(RunError::Build(
                "tenant NxP heap cursors diverged during staging".into(),
            ));
        }
    }
    let pid0 = tenants[0];
    let mut rng = Xoshiro256::seeded(seed ^ 0xDA7A);
    // Chase list: CHASE_NODES distinct 8-byte slots scattered in the slab.
    let slots = CHASE_SLAB_BYTES / 8;
    let mut offsets = Vec::with_capacity(CHASE_NODES as usize);
    let mut used = std::collections::HashSet::new();
    while offsets.len() < CHASE_NODES as usize {
        let s = rng.gen_range(0, slots);
        if used.insert(s) {
            offsets.push(s);
        }
    }
    for i in 0..offsets.len() {
        let va = VirtAddr(slab.as_u64() + offsets[i] * 8);
        let next = if i + 1 < offsets.len() {
            slab.as_u64() + offsets[i + 1] * 8
        } else {
            0
        };
        m.stage_write(pid0, va, &next.to_le_bytes())?;
    }
    let head = slab.as_u64() + offsets[0] * 8;
    // KV table: KV_RECORDS 32-byte records, keys uniform in KEY_SPACE.
    let mut bytes = Vec::with_capacity((KV_RECORDS * KV_RECORD_BYTES) as usize);
    for i in 0..KV_RECORDS {
        let key = rng.gen_range(0, KEY_SPACE);
        bytes.extend_from_slice(&key.to_le_bytes());
        bytes.extend_from_slice(&(i * 3).to_le_bytes());
        bytes.extend_from_slice(&[0u8; 16]);
    }
    m.stage_write(pid0, table, &bytes)?;
    // Globals live in per-process host DRAM: set them for every tenant.
    for &pid in tenants {
        for (sym, val) in [
            ("srv_head", head),
            ("srv_kv_base", table.as_u64()),
            ("srv_kv_n", KV_RECORDS),
            ("srv_kv_lo", 0),
            ("srv_kv_hi", KV_HI),
        ] {
            let va = m
                .symbol(pid, sym)
                .ok_or_else(|| RunError::Build(format!("serving image lacks `{sym}`")))?;
            m.stage_write(pid, va, &val.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Builds the serving machine and its tenant fleet for `cfg`: one
/// image, loaded once per tenant (shrunken 64 KiB host stacks so
/// hundreds of tenants fit the frame pool), data set staged and every
/// tenant's SRAM stack slot pre-allocated by the run driver.
///
/// # Errors
///
/// Propagates build/load/staging failures; rejects configurations the
/// SRAM cannot hold (more than 250 tenants) or with no requests.
pub fn build_serving_fleet(cfg: &ServingScenario) -> Result<(Machine, Vec<u64>), RunError> {
    if cfg.tenants == 0 || cfg.tenants > 250 {
        return Err(RunError::Build(format!(
            "tenant count {} outside [1, 250] (one SRAM stack slot each)",
            cfg.tenants
        )));
    }
    let mut m = Machine::builder()
        .trace(TraceConfig {
            enabled: cfg.trace,
            capacity: if cfg.trace { 1 << 20 } else { 0 },
        })
        .topology(cfg.topology)
        .nxp_isas(cfg.nxp_isas.clone())
        .nxp_placement(cfg.placement)
        .threads(cfg.threads)
        .observability(cfg.observability)
        .ring_occupancy_admission(cfg.ring_admission)
        .kernel_config(flick_os::KernelConfig {
            host_stack_bytes: 64 << 10,
            ..Default::default()
        })
        .build();
    let mut p = serving_program();
    flick::handlers::add_runtime(&mut p);
    let image = p.build().map_err(|e| RunError::Build(e.to_string()))?;
    let tenants: Vec<u64> = (0..cfg.tenants)
        .map(|_| m.load(&image))
        .collect::<Result<_, _>>()?;
    stage_dataset(&mut m, &tenants, cfg.seed)?;
    Ok((m, tenants))
}

/// Runs one serving configuration end to end: build the fleet,
/// generate the schedule, serve it.
///
/// # Errors
///
/// Propagates build/run failures.
pub fn run_serving_scenario(cfg: &ServingScenario) -> Result<ServingReport, RunError> {
    let (mut m, tenants) = build_serving_fleet(cfg)?;
    let reqs = gen_requests(cfg);
    m.run_serving(&tenants, &reqs, u64::MAX, cfg.quantum)
}

/// Boils a report down to the numbers the load-sweep tables print.
pub fn summarize(cfg: &ServingScenario, r: &ServingReport) -> ServingSummary {
    ServingSummary {
        offered_rps: cfg.offered_rps,
        completions: r.completions.len(),
        p50_ns: r.latency_quantile(0.50).as_nanos(),
        p99_ns: r.latency_quantile(0.99).as_nanos(),
        p999_ns: r.latency_quantile(0.999).as_nanos(),
        goodput_rps: r.goodput_rps(),
        admission_rejects: r.stats.get("admission_rejects"),
        migrations: r.stats.get("migrations_host_to_nxp"),
        degraded_calls: r.stats.get("degraded_calls"),
        sim_ms: r.finished_at.as_nanos_f64() / 1e6,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_seed_deterministic_and_sorted() {
        let cfg = ServingScenario {
            requests: 500,
            ..ServingScenario::default()
        };
        let a = gen_requests(&cfg);
        let b = gen_requests(&cfg);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        let other = gen_requests(&ServingScenario {
            seed: cfg.seed + 1,
            ..cfg
        });
        assert_ne!(a, other);
    }

    #[test]
    fn mix_and_tenants_cover_the_space() {
        let cfg = ServingScenario {
            requests: 3_000,
            tenants: 16,
            ..ServingScenario::default()
        };
        let reqs = gen_requests(&cfg);
        for k in [kind::NULL, kind::CHASE, kind::KV] {
            assert!(reqs.iter().any(|r| r.arg == k), "kind {k} never drawn");
        }
        let hit: std::collections::HashSet<usize> = reqs.iter().map(|r| r.tenant).collect();
        assert_eq!(hit.len(), 16, "every tenant should receive requests");
    }

    #[test]
    fn mmpp_bursts_tighten_gaps() {
        let base = ServingScenario {
            requests: 2_000,
            offered_rps: 20_000.0,
            ..ServingScenario::default()
        };
        let poisson = gen_requests(&base);
        let mmpp = gen_requests(&ServingScenario {
            arrivals: ArrivalModel::Mmpp {
                burst_factor: 8.0,
                mean_dwell_us: 200.0,
            },
            ..base
        });
        // Same average rate: total spans within 3x of each other...
        let span = |r: &[ServingRequest]| r.last().unwrap().arrival.as_picos() as f64;
        assert!(span(&mmpp) < span(&poisson) * 3.0);
        assert!(span(&mmpp) > span(&poisson) / 3.0);
        // ...but the bursty schedule's minimum gaps are much tighter in
        // aggregate: count gaps under a quarter of the mean.
        let tight = |r: &[ServingRequest]| {
            r.windows(2)
                .filter(|w| ((w[1].arrival - w[0].arrival).as_picos() as f64) < 1e12 / 20_000.0 / 4.0)
                .count()
        };
        assert!(
            tight(&mmpp) > tight(&poisson),
            "mmpp {} vs poisson {}",
            tight(&mmpp),
            tight(&poisson)
        );
    }

    #[test]
    fn small_serving_run_completes_every_request() {
        let cfg = ServingScenario {
            tenants: 8,
            requests: 60,
            offered_rps: 5_000.0,
            ..ServingScenario::default()
        };
        let r = run_serving_scenario(&cfg).unwrap();
        assert_eq!(r.completions.len(), 60);
        // Every request kind exits with its known result: null = 42,
        // chase = CHASE_NODES, kv = the staged match count (> 0 would
        // be flaky at 256 records; just pin the two deterministic ones
        // and range-check kv).
        let reqs = gen_requests(&cfg);
        for c in &r.completions {
            match reqs[c.request].arg {
                kind::NULL => assert_eq!(c.exit_code, 42),
                kind::CHASE => assert_eq!(c.exit_code, CHASE_NODES),
                _ => assert!(c.exit_code <= KV_RECORDS),
            }
            assert!(c.finished > c.arrival);
        }
        let s = summarize(&cfg, &r);
        assert!(s.migrations >= 60, "one migration per request minimum");
        assert!(s.p50_ns > 0 && s.p999_ns >= s.p99_ns && s.p99_ns >= s.p50_ns);
    }
}
