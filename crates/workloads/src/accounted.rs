//! The accounted execution backend for Table IV's large datasets.
//!
//! Interpreting 69 million edges × 10 iterations instruction-by-
//! instruction is impractical, so large BFS runs execute natively in
//! Rust while charging simulated time per operation. The cost model is
//! **not hand-tuned numbers**: per-access costs come from the same
//! [`LatencyModel`] / CPI configuration the interpreter uses (mirroring
//! the interpreted BFS kernel op-for-op), and the per-callback
//! migration cost is the round trip *measured on the real simulated
//! machinery* by the null-call microbenchmark. A cross-validation test
//! checks accounted-vs-interpreted agreement on a small graph.

use crate::graph::Graph;
use flick_mem::LatencyModel;
use flick_sim::Picos;

/// NxP cycle time (200 MHz).
fn nxp_cycles(n: u64) -> Picos {
    Picos::from_nanos(5) * n
}

/// Host cycle time (2.4 GHz), in picoseconds.
fn host_cycles(n: u64) -> Picos {
    Picos(417) * n
}

/// Per-operation costs of the BFS kernel.
///
/// The constants mirror the interpreted kernel in [`crate::bfs`]:
/// per edge — a `col` read, a `visited` read and ~12 cycles of loop
/// arithmetic; per discovered vertex — a `visited` write, a queue
/// write, ~10 cycles, plus the callback; per popped vertex — a queue
/// read and two `rowptr` reads plus ~12 cycles.
#[derive(Clone, Copy, Debug)]
pub struct BfsCostModel {
    /// Cost to scan one edge.
    pub per_edge: Picos,
    /// Extra cost when the edge discovers a new vertex (bookkeeping
    /// only, callback separate).
    pub per_discover: Picos,
    /// Cost to pop a vertex and read its row bounds.
    pub per_pop: Picos,
    /// Cost of the per-vertex task callback.
    pub per_callback: Picos,
}

impl BfsCostModel {
    /// Flick placement: traversal on the NxP (graph + bookkeeping in
    /// local DRAM), callback = one measured NxP→host→NxP round trip.
    pub fn flick(lat: &LatencyModel, callback_round_trip: Picos) -> Self {
        let local = lat.nxp_to_local_dram;
        BfsCostModel {
            per_edge: local * 2 + nxp_cycles(12),
            per_discover: local * 2 + nxp_cycles(10),
            per_pop: local * 3 + nxp_cycles(12),
            per_callback: callback_round_trip + nxp_cycles(6),
        }
    }

    /// Baseline placement: traversal on the host over PCIe. The working
    /// set (graph, visited, queue) is the same NxP-resident data the
    /// Flick variant uses — the function is unchanged, only where it
    /// runs — so every read crosses PCIe and writes are posted.
    pub fn host_direct(lat: &LatencyModel) -> Self {
        let read = lat.host_to_nxp_read;
        let write = lat.host_to_nxp_write;
        BfsCostModel {
            per_edge: read * 2 + host_cycles(12),
            per_discover: write * 2 + host_cycles(10),
            per_pop: read * 3 + host_cycles(12),
            per_callback: host_cycles(8),
        }
    }
}

/// Accounted BFS result.
#[derive(Clone, Copy, Debug)]
pub struct AccountedResult {
    /// Time per traversal iteration.
    pub per_iteration: Picos,
    /// Total over all iterations.
    pub total: Picos,
    /// Vertices discovered per iteration.
    pub discovered: u64,
    /// Edges scanned per iteration.
    pub edges_scanned: u64,
}

/// Runs BFS natively, charging the cost model per operation.
///
/// Every iteration traverses the same reachable set, so the traversal
/// runs once and the time is scaled by `iterations` (the warm-up
/// first-migration cost is amortised away exactly as in the paper's
/// averaging).
pub fn run_accounted(g: &Graph, root: u64, iterations: u64, costs: &BfsCostModel) -> AccountedResult {
    let mut seen = vec![false; g.v as usize];
    let mut queue: Vec<u32> = Vec::with_capacity(1024);
    seen[root as usize] = true;
    queue.push(root as u32);
    let mut discovered = 1u64;
    let mut edges_scanned = 0u64;
    let mut head = 0usize;
    while head < queue.len() {
        let u = queue[head] as u64;
        head += 1;
        for &w in g.neighbours(u) {
            edges_scanned += 1;
            if !seen[w as usize] {
                seen[w as usize] = true;
                discovered += 1;
                queue.push(w);
            }
        }
    }
    let per_iteration = costs.per_pop * discovered
        + costs.per_edge * edges_scanned
        + (costs.per_discover + costs.per_callback) * discovered;
    AccountedResult {
        per_iteration,
        total: per_iteration * iterations,
        discovered,
        edges_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::{run_bfs, BfsConfig, BfsMode};
    use crate::graph::rmat;
    use crate::nullcall::measure_null_call;

    #[test]
    fn accounted_matches_interpreted_within_tolerance() {
        // Cross-validation: the whole justification for using the
        // accounted backend on Pokec/LiveJournal is that it agrees with
        // full interpretation where both are feasible.
        let g = rmat(512, 4096, 11);
        let lat = LatencyModel::paper_default();
        let rt = measure_null_call(32);

        for (mode, costs) in [
            (BfsMode::Flick, BfsCostModel::flick(&lat, rt.nxp_host_nxp)),
            (BfsMode::HostDirect, BfsCostModel::host_direct(&lat)),
        ] {
            let cfg = BfsConfig {
                iterations: 1,
                mode,
                seed: 3,
            };
            let interp = run_bfs(&g, &cfg).unwrap();
            let root = g.pick_root(cfg.seed);
            let acct = run_accounted(&g, root, 1, &costs);
            assert_eq!(acct.discovered, interp.discovered);
            let ratio =
                acct.per_iteration.as_nanos_f64() / interp.per_iteration.as_nanos_f64();
            assert!(
                (0.75..1.25).contains(&ratio),
                "{mode:?}: accounted {} vs interpreted {} (ratio {ratio:.2})",
                acct.per_iteration,
                interp.per_iteration
            );
        }
    }

    #[test]
    fn counts_are_exact() {
        let g = rmat(100, 600, 5);
        let costs = BfsCostModel::host_direct(&LatencyModel::paper_default());
        let root = g.pick_root(1);
        let r = run_accounted(&g, root, 3, &costs);
        assert!(r.discovered >= 1);
        assert!(r.edges_scanned <= g.e());
        assert_eq!(r.total, r.per_iteration * 3);
    }

    #[test]
    fn flick_wins_on_low_vertex_edge_ratio() {
        // The Table IV shape: dense graphs (many edges per vertex)
        // favour Flick, sparse ones favour the baseline.
        let lat = LatencyModel::paper_default();
        let rt = Picos::from_micros(17); // ≈ measured N-H-N
        let dense = rmat(1_000, 60_000, 7); // ~60 edges/vertex
        let sparse = rmat(10_000, 30_000, 7); // 3 edges/vertex
        for (g, expect_flick_wins) in [(dense, true), (sparse, false)] {
            let root = g.pick_root(2);
            let f = run_accounted(&g, root, 1, &BfsCostModel::flick(&lat, rt));
            let b = run_accounted(&g, root, 1, &BfsCostModel::host_direct(&lat));
            let flick_wins = f.per_iteration < b.per_iteration;
            assert_eq!(
                flick_wins, expect_flick_wins,
                "v/e={:.3}: flick {} base {}",
                g.v as f64 / g.e() as f64,
                f.per_iteration,
                b.per_iteration
            );
        }
    }
}
